#!/usr/bin/env python3
"""Domain lint rules clang-tidy cannot express, run by the CI lint lane.

Four rules, each encoding a project-wide contract the engine's correctness
arguments lean on:

  rng-source    Every random draw flows through ppfs::Rng (src/util/rng.hpp).
                A stray std::mt19937 / rand() breaks seed-reproducibility
                and punches a hole in the Rng draw ledger that the
                PPFS_DRAW_FREE contracts audit.
  weight-mul    Raw 64-bit multiplies on weight/pair-count paths overflow
                silently near the n*(n-1) ~ 2^64 boundary. Products must go
                through the u128 helpers, or carry an allow comment stating
                the bound that keeps them in range.
  metric-macro  Metric emission goes through the PPFS_METRIC macros so the
                metrics layer compiles out entirely; a direct m_*_->
                dereference survives -DPPFS_METRICS=OFF builds.
  bare-assert   Semantic contracts use PPFS_AUDIT_ASSERT (util/audit.hpp),
                which survives NDEBUG under -DPPFS_AUDIT=ON; a bare
                assert() silently vanishes from Release verification runs.

Suppression: a `ppfs-lint: allow(<rule>)` comment suppresses the rule on
its own line; on a pure comment line it suppresses the rule on following
lines until the first blank line (so a justification block above a
statement covers the whole statement). Allows should state WHY the line
is safe.

Exit status: 0 clean, 1 findings, 2 usage error. `--self-test` runs each
rule against embedded violating and allowed snippets and fails loudly if
any rule has gone blind — the CI lane runs it before the tree scan.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_SCAN = ["src", "bench", "examples", "tests", "tools"]
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

ALLOW_RE = re.compile(r"ppfs-lint:\s*allow\(([a-z-]+)\)")
COMMENT_LINE_RE = re.compile(r"^\s*//")

# --- rule predicates --------------------------------------------------------

RNG_SOURCE_RE = re.compile(
    r"std::(mt19937|random_device|default_random_engine|minstd_rand|ranlux)"
    r"|\bdrand48\b|\barc4random\b|(?<![\w:.>])s?rand\s*\("
)

# A binary multiply (identifier/paren/bracket on both sides). The spaces
# are load-bearing: the tree's format always spaces binary operators, and
# requiring them keeps pointer declarations (`Histogram* m_`) and
# dereferences out of scope.
MUL_RE = re.compile(r"[A-Za-z0-9_)\]] \* [A-Za-z_(]")
# ... on a line that names a weight-path quantity: the class weights and
# per-slot weights (w_, w, wr, weight...), per-state count factors
# (cs/cr/pw), alias-table mass/cut, or the x*(x-1) ordered-pair-count shape.
WEIGHTISH_RE = re.compile(
    r"weight|\bw_\w*|\bw\b|\bwr\b|\bcs\b|\bcr\b|\bpw\b|total_|cut_|\bmass\b"
    r"|\w+ \* \(\w+ - 1\)"
)
# Floating-point and u128 arithmetic are out of scope for weight-mul.
WEIGHT_MUL_SKIP_RE = re.compile(r"128|\bdouble\b|\d\.\d")

METRIC_DEREF_RE = re.compile(r"\bm_\w+_->")

BARE_ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


def in_dir(relpath: str, top: str) -> bool:
    return relpath == top or relpath.startswith(top + "/")


def check_rng_source(relpath: str, line: str) -> bool:
    if relpath in ("src/util/rng.hpp", "src/util/rng.cpp"):
        return False
    return bool(RNG_SOURCE_RE.search(line))


def check_weight_mul(relpath: str, line: str) -> bool:
    if not in_dir(relpath, "src"):
        return False
    if WEIGHT_MUL_SKIP_RE.search(line):
        return False
    return bool(MUL_RE.search(line)) and bool(WEIGHTISH_RE.search(line))


def check_metric_macro(relpath: str, line: str) -> bool:
    if not in_dir(relpath, "src") or in_dir(relpath, "src/obs"):
        return False
    return bool(METRIC_DEREF_RE.search(line)) and "PPFS_METRIC" not in line


def check_bare_assert(relpath: str, line: str) -> bool:
    # audit.hpp defines the assert() fallback of PPFS_AUDIT_ASSERT itself.
    if not in_dir(relpath, "src") or relpath == "src/util/audit.hpp":
        return False
    if "static_assert" in line:
        line = line.replace("static_assert", "")
    return bool(BARE_ASSERT_RE.search(line))


RULES = {
    "rng-source": (
        check_rng_source,
        "randomness outside ppfs::Rng (util/rng.hpp) breaks seeded "
        "reproducibility and the draw ledger",
    ),
    "weight-mul": (
        check_weight_mul,
        "raw 64-bit multiply on a weight path: use the u128 helpers or "
        "add an allow comment stating the overflow bound",
    ),
    "metric-macro": (
        check_metric_macro,
        "direct metric-handle dereference: emit via PPFS_METRIC so the "
        "metrics layer compiles out",
    ),
    "bare-assert": (
        check_bare_assert,
        "bare assert() vanishes under NDEBUG: promote semantic contracts "
        "to PPFS_AUDIT_ASSERT (util/audit.hpp)",
    ),
}

# --- scanning ---------------------------------------------------------------


def scan_lines(relpath: str, lines):
    """Yield (lineno, rule, message) findings for one file's lines."""
    block_allows: set = set()  # from a comment block, until a blank line
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            block_allows.clear()
            continue
        line_allows = set(ALLOW_RE.findall(line))
        if COMMENT_LINE_RE.match(line):
            block_allows |= line_allows
            continue
        allows = block_allows | line_allows
        for rule, (predicate, message) in RULES.items():
            if rule in allows:
                continue
            if predicate(relpath, line):
                yield lineno, rule, message


def scan_file(path: Path):
    relpath = path.resolve().relative_to(REPO_ROOT).as_posix()
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as e:
        yield 0, "io", f"unreadable: {e}"
        return
    yield from scan_lines(relpath, lines)


def collect_targets(args_paths):
    roots = [Path(p) for p in args_paths] if args_paths else [
        REPO_ROOT / d for d in DEFAULT_SCAN
    ]
    for root in roots:
        if root.is_file():
            yield root
        elif root.is_dir():
            yield from sorted(
                p for p in root.rglob("*") if p.suffix in SOURCE_SUFFIXES
            )


# --- self-test --------------------------------------------------------------

# Each rule: a snippet that MUST fire and one that MUST stay silent (the
# allow mechanism or an exempted location). Keeps the lane honest: a regex
# edit that blinds a rule fails here before it silently passes the tree.
SELF_TEST = {
    "rng-source": (
        ("src/engine/foo.cpp", ["static std::mt19937 gen(42);"]),
        ("src/util/rng.cpp", ["// std::mt19937 reference in docs"]),
    ),
    "weight-mul": (
        ("src/engine/foo.cpp", ["const std::uint64_t x = w_real_ * cr;"]),
        (
            "src/engine/foo.cpp",
            [
                "// ppfs-lint: allow(weight-mul): counts bounded by n <= 2^31",
                "const std::uint64_t x = w_real_ * cr;",
            ],
        ),
    ),
    "metric-macro": (
        ("src/engine/foo.cpp", ["m_fires_->add();"]),
        ("src/engine/foo.cpp", ["PPFS_METRIC(m_fires_, add());"]),
    ),
    "bare-assert": (
        ("src/engine/foo.cpp", ["assert(total == expected);"]),
        ("src/engine/foo.cpp", ["static_assert(sizeof(x) == 8);"]),
    ),
}


def self_test() -> int:
    failures = []
    for rule, (firing, silent) in SELF_TEST.items():
        relpath, lines = firing
        hits = [r for (_, r, _) in scan_lines(relpath, lines)]
        if rule not in hits:
            failures.append(f"{rule}: did not fire on its violating snippet")
        relpath, lines = silent
        hits = [r for (_, r, _) in scan_lines(relpath, lines)]
        if rule in hits:
            failures.append(f"{rule}: fired on its allowed snippet")
    # Blank lines end an allow block.
    hits = [
        r
        for (_, r, _) in scan_lines(
            "src/engine/foo.cpp",
            [
                "// ppfs-lint: allow(metric-macro): scoped to next stmt",
                "m_fires_->add();",
                "",
                "m_noops_->add();",
            ],
        )
    ]
    if hits != ["metric-macro"]:
        failures.append(f"allow-block scoping broken: {hits}")
    for f in failures:
        print(f"self-test FAILED: {f}", file=sys.stderr)
    if not failures:
        print(f"self-test OK: {len(SELF_TEST)} rules armed")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", help="files/dirs (default: tree)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify every rule fires on a seeded violation, then exit",
    )
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    findings = 0
    files = 0
    for path in collect_targets(args.paths):
        files += 1
        rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        for lineno, rule, message in scan_file(path):
            print(f"{rel}:{lineno}: [{rule}] {message}")
            findings += 1
    print(
        f"ppfs-lint: {files} files, {findings} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

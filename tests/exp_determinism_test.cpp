// Determinism under parallelism: the acceptance property of the
// experiment layer. The same grid + seed must produce byte-identical
// aggregate reports AND identical per-replica results no matter how many
// threads the pool runs — replica RNG streams are keyed per (point,
// trial), results land in preallocated slots, and aggregation folds in
// trial order.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "exp/replica_runner.hpp"

namespace ppfs::exp {
namespace {

// A two-axis grid (workload x n) with an adversary thrown in so omission
// accounting participates in the comparison; trials = 32 satisfies the
// "--trials >= 32 in parallel" acceptance bar.
ScenarioGrid acceptance_grid() {
  ScenarioGrid g;
  g.workloads = {"or", "exact-majority"};
  g.sizes = {64, 128};
  g.adversaries = {"budget:20"};
  g.engines = {"batch"};
  g.trials = 32;
  g.seed = 20260731;
  g.check_every = 512;
  return g;
}

[[nodiscard]] std::string replica_digest(const Report& report) {
  std::ostringstream out;
  out << std::hexfloat;
  for (const ReportRow& row : report.rows()) {
    out << row.spec.to_string() << '\n';
    for (const ReplicaResult& r : row.replicas) {
      out << "  steps=" << r.run.steps << " conv=" << r.run.converged
          << " om=" << r.run.omissions << " cstep=" << r.convergence_step
          << " fires=" << r.fires << " noops=" << r.noops
          << " ofires=" << r.omissive_fires << " err=" << r.error;
      for (const auto& [key, value] : r.extras)
        out << ' ' << key << '=' << value;
      out << '\n';
    }
  }
  return out.str();
}

[[nodiscard]] Report run_with_threads(const ScenarioGrid& grid,
                                      std::size_t threads) {
  RunnerOptions opt;
  opt.threads = threads;
  return ReplicaRunner(opt).run_grid(grid);
}

TEST(ExpDeterminism, AggregatesAndReplicasBitIdenticalAcrossThreadCounts) {
  const ScenarioGrid grid = acceptance_grid();
  const Report t1 = run_with_threads(grid, 1);
  ASSERT_EQ(t1.rows().size(), 4u);
  for (const ReportRow& row : t1.rows()) {
    EXPECT_EQ(row.aggregate.trials(), 32u);
    EXPECT_EQ(row.aggregate.failed(), 0u) << row.spec.to_string();
  }

  const Report t2 = run_with_threads(grid, 2);
  EXPECT_EQ(t1.fingerprint(), t2.fingerprint());
  EXPECT_EQ(replica_digest(t1), replica_digest(t2));

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw < 2) hw = 4;  // still exercise a multi-thread pool on 1-core boxes
  const Report thw = run_with_threads(grid, hw);
  EXPECT_EQ(t1.fingerprint(), thw.fingerprint());
  EXPECT_EQ(replica_digest(t1), replica_digest(thw));

  // The rendered artifacts are identical too (what the CLI emits).
  std::ostringstream json1, jsonhw, csv1, csvhw;
  t1.write_json(json1);
  thw.write_json(jsonhw);
  t1.write_csv(csv1);
  thw.write_csv(csvhw);
  EXPECT_EQ(json1.str(), jsonhw.str());
  EXPECT_EQ(csv1.str(), csvhw.str());
}

TEST(ExpDeterminism, NativeSimulatorReplicasAreThreadCountInvariant) {
  // The step-wise facade path (matching verification on) through the same
  // pool: extras (sim_pairs / matching_ok / overhead) must agree as well.
  ScenarioGrid g;
  g.workloads = {"or"};
  g.sizes = {8};
  g.models = {"I3"};
  g.adversaries = {"budget:2:0.05"};
  g.sims = {"skno:o=2"};
  g.engines = {"native"};
  g.verify_matching = true;
  g.max_steps = 500'000;
  g.trials = 8;
  g.seed = 42;
  const Report a = run_with_threads(g, 1);
  const Report b = run_with_threads(g, 3);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(replica_digest(a), replica_digest(b));
  for (const ReportRow& row : a.rows())
    EXPECT_EQ(row.aggregate.extras().at("matching_ok").mean(), 1.0);
}

TEST(ExpDeterminism, SeedChangesTheWholeSweep) {
  ScenarioGrid g;
  g.workloads = {"exact-majority"};
  g.sizes = {100};
  g.engines = {"batch"};
  g.trials = 8;
  g.check_every = 256;
  g.seed = 1;
  const Report a = run_with_threads(g, 2);
  g.seed = 2;
  const Report b = run_with_threads(g, 2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ReplicaRunner, ProgressCallbackSeesEveryReplica) {
  ScenarioGrid g;
  g.workloads = {"or"};
  g.sizes = {64};
  g.engines = {"batch"};
  g.trials = 8;
  std::size_t seen = 0;
  RunnerOptions opt;
  opt.threads = 2;
  opt.on_replica = [&](const ScenarioSpec&, std::size_t,
                       const ReplicaResult& r) {
    // Serialized by the runner's mutex; a plain counter is safe here.
    ++seen;
    EXPECT_FALSE(r.failed());
  };
  const Report report = ReplicaRunner(opt).run_grid(g);
  EXPECT_EQ(seen, 8u);
  EXPECT_EQ(report.rows().front().aggregate.trials(), 8u);
}

TEST(ReplicaRunner, FailuresAreRecordedPerReplicaAndCancellable) {
  ScenarioSpec bad;
  bad.workload = "no-such-workload";
  bad.n = 16;
  bad.engine = "batch";
  bad.trials = 16;
  {
    const ScenarioOutcome out = run_scenario(bad);
    EXPECT_EQ(out.aggregate.failed(), 16u);
    EXPECT_EQ(out.aggregate.completed(), 0u);
    for (const ReplicaResult& r : out.replicas) EXPECT_TRUE(r.failed());
  }
  {
    RunnerOptions opt;
    opt.threads = 1;  // deterministic scan order for the cancellation check
    opt.cancel_on_failure = true;
    const ScenarioOutcome out = ReplicaRunner(opt).run(bad);
    EXPECT_EQ(out.aggregate.failed(), 16u);
    // First replica fails for real, the rest are skipped as cancelled.
    EXPECT_EQ(out.replicas.front().error.rfind("unknown workload", 0), 0u);
    for (std::size_t t = 1; t < out.replicas.size(); ++t)
      EXPECT_EQ(out.replicas[t].error, "cancelled");
  }
}

TEST(Report, AnyFailedAndAllConvergedReflectRows) {
  ScenarioGrid g;
  g.workloads = {"or"};
  g.sizes = {64};
  g.engines = {"batch"};
  g.trials = 4;
  const Report ok = run_with_threads(g, 1);
  EXPECT_FALSE(ok.any_failed());
  EXPECT_TRUE(ok.all_converged());

  ScenarioSpec bad;
  bad.workload = "no-such-workload";
  bad.n = 16;
  bad.trials = 2;
  const Report mixed = ReplicaRunner().run_points({bad});
  EXPECT_TRUE(mixed.any_failed());
}

}  // namespace
}  // namespace ppfs::exp

// Theorem 3.2 demonstrations: one omission (NO1) collapses simulation in
// the detection-free models T1, I1, I2 — by safety violation for the
// naive two-way wrapper, by permanent stall for the token candidates.
#include "attack/thm32.hpp"

#include <gtest/gtest.h>

namespace ppfs {
namespace {

TEST(Thm32, T1NaiveWrapperSafetyBreaksWithOneOmission) {
  const auto rep = run_t1_no1_demo();
  EXPECT_EQ(rep.model, Model::T1);
  EXPECT_TRUE(rep.works_without_omissions);
  EXPECT_EQ(rep.omissions, 1u);
  EXPECT_TRUE(rep.safety_violated);
}

class OneWayNo1 : public ::testing::TestWithParam<std::tuple<Model, std::size_t>> {};

TEST_P(OneWayNo1, TokenCandidateStallsForever) {
  const auto [model, o] = GetParam();
  const auto rep = run_oneway_no1_demo(model, o, /*probe_steps=*/50'000, /*seed=*/5);
  EXPECT_EQ(rep.model, model);
  EXPECT_TRUE(rep.works_without_omissions) << model_name(model) << " o=" << o;
  EXPECT_EQ(rep.omissions, 1u);
  EXPECT_TRUE(rep.stalled) << model_name(model) << " o=" << o << ": "
                           << rep.updates_after_omission << " updates happened";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OneWayNo1,
    ::testing::Combine(::testing::Values(Model::I1, Model::I2),
                       ::testing::Values(1, 2, 3)));

TEST(Thm32, Validation) {
  EXPECT_THROW(run_oneway_no1_demo(Model::I3, 1, 10, 1), std::invalid_argument);
  EXPECT_THROW(run_oneway_no1_demo(Model::I1, 0, 10, 1), std::invalid_argument);
}

TEST(Thm32, ContrastDetectionSavesI3) {
  // The same candidate WITH detection (true SKnO in I3) survives one
  // omission — pinpointing detection as the decisive capability.
  const auto rep_i1 = run_oneway_no1_demo(Model::I1, 2, 20'000, 9);
  EXPECT_TRUE(rep_i1.stalled);
  // I3's joker machinery is exercised all over skno tests; here we only
  // document the contrast through the demo reports.
  EXPECT_NE(rep_i1.detail.find("tokens_killed"), std::string::npos);
}

}  // namespace
}  // namespace ppfs

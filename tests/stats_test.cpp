#include "engine/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace ppfs {
namespace {

TEST(StreamStat, TracksCountMeanMinMax) {
  StreamStat s;
  s.add(2.0);
  s.add(6.0);
  s.add(4.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(StreamStat, VarianceMatchesTwoPassComputation) {
  const std::vector<double> xs = {2.0, 6.0, 4.0, 4.0, 9.0, 1.0, 5.0};
  StreamStat s;
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double expect = m2 / static_cast<double>(xs.size());
  EXPECT_NEAR(s.variance(), expect, 1e-12 * expect);
  EXPECT_NEAR(s.stddev(), std::sqrt(expect), 1e-12);
  // Degenerate cases: no samples and one sample both read 0.
  StreamStat empty;
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);
  StreamStat one;
  one.add(7.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
  // Constant samples have exactly zero spread (Welford keeps this exact).
  StreamStat flat;
  for (int i = 0; i < 100; ++i) flat.add(3.5);
  EXPECT_DOUBLE_EQ(flat.variance(), 0.0);
}

TEST(StreamStat, MergeFoldsSummariesAssociatively) {
  StreamStat a, b, c;
  a.add(2.0);
  a.add(6.0);
  b.add(1.0);
  c.add(9.0);
  c.add(3.0);

  StreamStat ab = a;
  ab.merge(b);
  StreamStat ab_c = ab;
  ab_c.merge(c);

  StreamStat bc = b;
  bc.merge(c);
  StreamStat a_bc = a;
  a_bc.merge(bc);

  // Count/sum/extrema are integer-exact; the second moment is Chan's
  // parallel combination, associative up to floating rounding.
  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_DOUBLE_EQ(ab_c.sum(), a_bc.sum());
  EXPECT_DOUBLE_EQ(ab_c.min(), a_bc.min());
  EXPECT_DOUBLE_EQ(ab_c.max(), a_bc.max());
  EXPECT_NEAR(ab_c.variance(), a_bc.variance(),
              1e-12 * (1.0 + ab_c.variance()));
  EXPECT_EQ(ab_c.count(), 5u);
  EXPECT_DOUBLE_EQ(ab_c.sum(), 21.0);
  EXPECT_DOUBLE_EQ(ab_c.min(), 1.0);
  EXPECT_DOUBLE_EQ(ab_c.max(), 9.0);

  // Merging an empty summary on either side is the identity (bit-exact:
  // these paths copy rather than recombine).
  StreamStat empty;
  StreamStat a_copy = a;
  a_copy.merge(empty);
  EXPECT_EQ(a_copy, a);
  StreamStat lhs_empty;
  lhs_empty.merge(a);
  EXPECT_EQ(lhs_empty, a);
}

TEST(StreamStat, MergedVarianceMatchesSinglePassOverConcatenation) {
  // Chan's combination across arbitrary partitions must agree with one
  // sequential pass over the whole sample — the property that makes
  // multi-threaded sweep aggregation trustworthy.
  Rng rng(20260808);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i)
    xs.push_back(static_cast<double>(rng.below(1'000'000)));

  StreamStat whole;
  for (const double x : xs) whole.add(x);

  // Partition into uneven chunks, merge left-to-right and pairwise.
  const std::size_t cuts[] = {0, 7, 8, 250, 251, 700, 1000};
  std::vector<StreamStat> parts;
  for (std::size_t i = 0; i + 1 < std::size(cuts); ++i) {
    StreamStat p;
    for (std::size_t j = cuts[i]; j < cuts[i + 1]; ++j) p.add(xs[j]);
    parts.push_back(p);
  }
  StreamStat fold;
  for (const StreamStat& p : parts) fold.merge(p);
  const double tol = 1e-9 * (1.0 + whole.variance());
  EXPECT_EQ(fold.count(), whole.count());
  EXPECT_DOUBLE_EQ(fold.sum(), whole.sum());
  EXPECT_NEAR(fold.variance(), whole.variance(), tol);

  StreamStat pairwise;
  for (std::size_t i = 0; i < parts.size(); i += 2) {
    StreamStat pair = parts[i];
    if (i + 1 < parts.size()) pair.merge(parts[i + 1]);
    pairwise.merge(pair);
  }
  EXPECT_EQ(pairwise.count(), whole.count());
  EXPECT_NEAR(pairwise.variance(), whole.variance(), tol);
}

TEST(RunStats, CountsFiresPerRule) {
  RunStats st(3);
  st.record_fire(0, 1);
  st.record_fire(0, 1, 4);
  st.record_fire(2, 2);
  st.record_noops(10);
  EXPECT_EQ(st.fires(0, 1), 5u);
  EXPECT_EQ(st.fires(2, 2), 1u);
  EXPECT_EQ(st.fires(1, 0), 0u);
  EXPECT_EQ(st.total_fires(), 6u);
  EXPECT_EQ(st.noops(), 10u);
  EXPECT_EQ(st.interactions(), 16u);
  EXPECT_THROW(st.record_fire(3, 0), std::invalid_argument);
  EXPECT_THROW((void)st.fires(0, 3), std::invalid_argument);
}

TEST(RunStats, TopRulesSortedByCount) {
  RunStats st(2);
  st.record_fire(0, 1, 3);
  st.record_fire(1, 0, 7);
  st.record_fire(1, 1, 3);
  const auto top = st.top_rules(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (RunStats::RuleCount{1, 0, 7}));
  EXPECT_EQ(top[1], (RunStats::RuleCount{0, 1, 3}));  // tie: (0,1) before (1,1)
}

TEST(RunStats, ConvergenceStepIsFirstStepOfFinalHoldingStretch) {
  RunStats st(2);
  EXPECT_EQ(st.convergence_step(), RunStats::kNoConvergence);
  st.record_probe(10, false);
  st.record_probe(20, true);
  st.record_probe(30, true);
  EXPECT_EQ(st.convergence_step(), 20u);
  st.record_probe(40, false);  // broke: earlier stretch does not count
  EXPECT_EQ(st.convergence_step(), RunStats::kNoConvergence);
  st.record_probe(50, true);
  EXPECT_EQ(st.convergence_step(), 50u);
}

TEST(RunStats, ResetClearsEverything) {
  RunStats st(2);
  st.record_fire(0, 0);
  st.record_noops(3);
  st.record_probe(5, true);
  st.reset(4);
  EXPECT_EQ(st.num_states(), 4u);
  EXPECT_EQ(st.total_fires(), 0u);
  EXPECT_EQ(st.noops(), 0u);
  EXPECT_EQ(st.convergence_step(), RunStats::kNoConvergence);
}

}  // namespace
}  // namespace ppfs

#include "engine/stats.hpp"

#include <gtest/gtest.h>

namespace ppfs {
namespace {

TEST(StreamStat, TracksCountMeanMinMax) {
  StreamStat s;
  s.add(2.0);
  s.add(6.0);
  s.add(4.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(StreamStat, MergeFoldsSummariesAssociatively) {
  StreamStat a, b, c;
  a.add(2.0);
  a.add(6.0);
  b.add(1.0);
  c.add(9.0);
  c.add(3.0);

  StreamStat ab = a;
  ab.merge(b);
  StreamStat ab_c = ab;
  ab_c.merge(c);

  StreamStat bc = b;
  bc.merge(c);
  StreamStat a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.count(), 5u);
  EXPECT_DOUBLE_EQ(ab_c.sum(), 21.0);
  EXPECT_DOUBLE_EQ(ab_c.min(), 1.0);
  EXPECT_DOUBLE_EQ(ab_c.max(), 9.0);

  // Merging an empty summary on either side is the identity.
  StreamStat empty;
  StreamStat a_copy = a;
  a_copy.merge(empty);
  EXPECT_EQ(a_copy, a);
  StreamStat lhs_empty;
  lhs_empty.merge(a);
  EXPECT_EQ(lhs_empty, a);
}

TEST(RunStats, CountsFiresPerRule) {
  RunStats st(3);
  st.record_fire(0, 1);
  st.record_fire(0, 1, 4);
  st.record_fire(2, 2);
  st.record_noops(10);
  EXPECT_EQ(st.fires(0, 1), 5u);
  EXPECT_EQ(st.fires(2, 2), 1u);
  EXPECT_EQ(st.fires(1, 0), 0u);
  EXPECT_EQ(st.total_fires(), 6u);
  EXPECT_EQ(st.noops(), 10u);
  EXPECT_EQ(st.interactions(), 16u);
  EXPECT_THROW(st.record_fire(3, 0), std::invalid_argument);
  EXPECT_THROW((void)st.fires(0, 3), std::invalid_argument);
}

TEST(RunStats, TopRulesSortedByCount) {
  RunStats st(2);
  st.record_fire(0, 1, 3);
  st.record_fire(1, 0, 7);
  st.record_fire(1, 1, 3);
  const auto top = st.top_rules(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (RunStats::RuleCount{1, 0, 7}));
  EXPECT_EQ(top[1], (RunStats::RuleCount{0, 1, 3}));  // tie: (0,1) before (1,1)
}

TEST(RunStats, ConvergenceStepIsFirstStepOfFinalHoldingStretch) {
  RunStats st(2);
  EXPECT_EQ(st.convergence_step(), RunStats::kNoConvergence);
  st.record_probe(10, false);
  st.record_probe(20, true);
  st.record_probe(30, true);
  EXPECT_EQ(st.convergence_step(), 20u);
  st.record_probe(40, false);  // broke: earlier stretch does not count
  EXPECT_EQ(st.convergence_step(), RunStats::kNoConvergence);
  st.record_probe(50, true);
  EXPECT_EQ(st.convergence_step(), 50u);
}

TEST(RunStats, ResetClearsEverything) {
  RunStats st(2);
  st.record_fire(0, 0);
  st.record_noops(3);
  st.record_probe(5, true);
  st.reset(4);
  EXPECT_EQ(st.num_states(), 4u);
  EXPECT_EQ(st.total_fires(), 0u);
  EXPECT_EQ(st.noops(), 0u);
  EXPECT_EQ(st.convergence_step(), RunStats::kNoConvergence);
}

}  // namespace
}  // namespace ppfs

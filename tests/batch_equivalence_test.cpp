// Batch/native statistical equivalence. The count chain the batch engine
// advances is the exact projection of the agent-level uniform-scheduler
// chain, so:
//   * for n <= 8 the set of reachable count configurations must agree
//     exactly with an agent-level BFS (including self-pair gating: a rule
//     (q, q) needs two agents in q);
//   * over many independent runs, the distribution of the configuration
//     after T interactions must match — checked with a two-sample
//     chi-square homogeneity test over >= 100 trials per engine, for every
//     registry protocol with <= 8 states and for random TableProtocols.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "chi_square.hpp"
#include "engine/batch/batch_system.hpp"
#include "engine/batch/dispatch.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/majority.hpp"
#include "protocols/registry.hpp"
#include "test_protocol_gen.hpp"

namespace ppfs {
namespace {

using ppfs::testing::chi_square_homogeneity;
using ppfs::testing::chi_square_limit;
using ppfs::testing::random_initial;
using ppfs::testing::random_protocol;

using Counts = ppfs::testing::Counts;

// --- Exact reachable-set agreement (n <= 8) ---------------------------------

// Agent-level BFS over explicit state tuples, projected to count vectors.
std::set<Counts> native_reachable(const Protocol& p, const std::vector<State>& init,
                                  std::size_t max_configs) {
  std::set<std::vector<State>> seen;
  std::vector<std::vector<State>> frontier{init};
  seen.insert(init);
  while (!frontier.empty() && seen.size() < max_configs) {
    std::vector<std::vector<State>> next;
    for (const auto& cfg : frontier) {
      for (std::size_t a = 0; a < cfg.size(); ++a) {
        for (std::size_t b = 0; b < cfg.size(); ++b) {
          if (a == b) continue;
          const StatePair out = p.delta(cfg[a], cfg[b]);
          std::vector<State> succ = cfg;
          succ[a] = out.starter;
          succ[b] = out.reactor;
          if (seen.insert(succ).second) next.push_back(std::move(succ));
        }
      }
    }
    frontier = std::move(next);
  }
  std::set<Counts> projected;
  for (const auto& cfg : seen) {
    Counts c(p.num_states(), 0);
    for (State q : cfg) ++c[q];
    projected.insert(std::move(c));
  }
  return projected;
}

// Count-level BFS through Configuration::apply_pair, exactly the moves the
// batch engine can make.
std::set<Counts> batch_reachable(std::shared_ptr<const Protocol> p,
                                 const Counts& init, std::size_t max_configs) {
  std::set<Counts> seen{init};
  std::vector<Counts> frontier{init};
  const std::size_t q = p->num_states();
  while (!frontier.empty() && seen.size() < max_configs) {
    std::vector<Counts> next;
    for (const auto& c : frontier) {
      for (State s = 0; s < q; ++s) {
        for (State r = 0; r < q; ++r) {
          const std::size_t need_s = 1 + static_cast<std::size_t>(s == r);
          if (c[s] < need_s || c[r] < 1) continue;
          Configuration conf(p, c);
          conf.apply_pair(s, r);
          if (seen.insert(conf.counts()).second) next.push_back(conf.counts());
        }
      }
    }
    frontier = std::move(next);
  }
  return seen;
}

TEST(BatchEquivalence, ReachableConfigurationSetsAgreeSmallN) {
  Rng meta(101);
  for (int round = 0; round < 6; ++round) {
    const std::size_t states = 2 + meta.below(3);  // q <= 4
    const std::size_t n = 4 + meta.below(3);       // n <= 6
    auto p = random_protocol(states, meta);
    const auto init = random_initial(n, states, meta);
    Counts init_counts(states, 0);
    for (State q : init) ++init_counts[q];

    const auto native = native_reachable(*p, init, 200'000);
    const auto batch = batch_reachable(p, init_counts, 200'000);
    EXPECT_EQ(native, batch) << "round " << round << " states=" << states
                             << " n=" << n;
  }
}

TEST(BatchEquivalence, ReachableSetsAgreeOnRegistryProtocols) {
  for (const Workload& w : standard_workloads(6)) {
    if (w.protocol->num_states() > 8) continue;
    Counts init_counts(w.protocol->num_states(), 0);
    for (State q : w.initial) ++init_counts[q];
    const auto native = native_reachable(*w.protocol, w.initial, 200'000);
    const auto batch = batch_reachable(w.protocol, init_counts, 200'000);
    EXPECT_EQ(native, batch) << w.name;
  }
}

// --- Chi-square distributional equivalence ----------------------------------

enum class Driver { NativeEngine, BatchEngine, BatchStep };

std::map<Counts, std::size_t> final_config_distribution(
    std::shared_ptr<const Protocol> p, const std::vector<State>& init,
    Driver driver, std::size_t interactions, std::size_t trials,
    std::uint64_t seed) {
  std::map<Counts, std::size_t> dist;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(seed + trial * 7919);
    if (driver == Driver::BatchStep) {
      BatchSystem sys(p, init);
      for (std::size_t i = 0; i < interactions; ++i) (void)sys.step(rng);
      ++dist[sys.counts()];
    } else {
      auto e = make_engine(
          driver == Driver::NativeEngine ? "native" : "batch", p, init);
      UniformScheduler sched(init.size());
      (void)run_engine_steps(*e, sched, rng, interactions);
      ++dist[e->counts()];
    }
  }
  return dist;
}

void expect_distributions_match(std::shared_ptr<const Protocol> p,
                                const std::vector<State>& init, Driver other,
                                std::size_t interactions, std::size_t trials,
                                std::uint64_t seed, const std::string& label) {
  const auto native = final_config_distribution(p, init, Driver::NativeEngine,
                                                interactions, trials, seed);
  const auto batch =
      final_config_distribution(p, init, other, interactions, trials, seed + 1);
  const auto [stat, df] = chi_square_homogeneity(native, batch, trials, trials);
  EXPECT_LE(stat, chi_square_limit(df))
      << label << ": chi2=" << stat << " df=" << df;
}

TEST(BatchEquivalence, ChiSquareOnAllRegistryProtocols) {
  const std::size_t n = 8;
  for (const Workload& w : standard_workloads(n)) {
    if (w.protocol->num_states() > 8) continue;
    expect_distributions_match(w.protocol, w.initial, Driver::BatchEngine,
                               3 * n, 120, 2024, w.name);
  }
}

TEST(BatchEquivalence, ChiSquareOnRandomProtocols) {
  Rng meta(777);
  for (int round = 0; round < 5; ++round) {
    const std::size_t states = 2 + meta.below(4);
    const std::size_t n = 5 + meta.below(4);
    auto p = random_protocol(states, meta);
    const auto init = random_initial(n, states, meta);
    expect_distributions_match(p, init, Driver::BatchEngine, 2 * n, 120,
                               900 + round, "random round " + std::to_string(round));
  }
}

TEST(BatchEquivalence, ChiSquareExactStepPathMatchesNative) {
  // The per-interaction hypergeometric step (small-n fallback) must match
  // the native chain too, not just the geometric batch path.
  Rng meta(424);
  for (int round = 0; round < 3; ++round) {
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 6;
    auto p = random_protocol(states, meta);
    const auto init = random_initial(n, states, meta);
    expect_distributions_match(p, init, Driver::BatchStep, 2 * n, 150,
                               1300 + round, "step round " + std::to_string(round));
  }
}

// --- One-way & omissive models, with and without adversaries ---------------
//
// The native reference is the per-agent engine behind the same
// EngineDispatch configuration (same RuleMatrix, same OmissionProcess
// semantics), so these tests pin the count-space leap — geometric skip,
// event-punctuated splitting, binomial omission tally — against the
// step-wise execution. Where an adversary is on, the omissions-delivered
// count is appended to the outcome category, so the chi-square also
// checks that batch omission streams match the native adversary's.

using EngineFactory = std::function<std::unique_ptr<Engine>()>;

std::map<Counts, std::size_t> engine_distribution(
    const EngineFactory& make, std::size_t n, std::size_t interactions,
    std::size_t trials, std::uint64_t seed, bool with_omissions) {
  std::map<Counts, std::size_t> dist;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(seed + trial * 7919);
    auto e = make();
    UniformScheduler sched(n);
    (void)run_engine_steps(*e, sched, rng, interactions);
    Counts key = e->counts();
    if (with_omissions) key.push_back(e->omissions());
    ++dist[key];
  }
  return dist;
}

void expect_engines_match(const EngineFactory& make_native,
                          const EngineFactory& make_batch, std::size_t n,
                          std::size_t interactions, std::size_t trials,
                          std::uint64_t seed, bool with_omissions,
                          const std::string& label) {
  const auto native = engine_distribution(make_native, n, interactions, trials,
                                          seed, with_omissions);
  const auto batch = engine_distribution(make_batch, n, interactions, trials,
                                         seed + 1, with_omissions);
  const auto [stat, df] = chi_square_homogeneity(native, batch, trials, trials);
  EXPECT_LE(stat, chi_square_limit(df))
      << label << ": chi2=" << stat << " df=" << df;
}

void expect_one_way_match(std::shared_ptr<const OneWayProtocol> p,
                          const std::vector<State>& init,
                          const EngineConfig& config, std::size_t interactions,
                          std::size_t trials, std::uint64_t seed,
                          const std::string& label) {
  const bool with_om = config.adversary.has_value();
  expect_engines_match(
      [&] { return make_engine("native", p, init, config); },
      [&] { return make_engine("batch", p, init, config); }, init.size(),
      interactions, trials, seed, with_om, label);
}

TEST(BatchEquivalence, OneWayChiSquareUnderItAndIo) {
  Rng meta(271);
  for (int round = 0; round < 4; ++round) {
    const bool io = round % 2 == 0;
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 6 + meta.below(3);
    auto p = testing::random_one_way_protocol(states, meta, io);
    const auto init = random_initial(n, states, meta);
    EngineConfig config;
    config.model = io ? Model::IO : Model::IT;
    expect_one_way_match(p, init, config, 2 * n, 120, 3100 + round,
                         std::string(io ? "IO" : "IT") + " round " +
                             std::to_string(round));
  }
}

TEST(BatchEquivalence, OneWayChiSquareUnderI2WithUoAdversary) {
  // I2 omissions force g on both parties: with a random (non-identity) g
  // they change counts, exercising the event-punctuated leap.
  Rng meta(272);
  for (int round = 0; round < 3; ++round) {
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 6 + meta.below(3);
    auto p = testing::random_one_way_protocol(states, meta, /*io=*/false);
    const auto init = random_initial(n, states, meta);
    EngineConfig config;
    config.model = Model::I2;
    config.adversary = parse_adversary_spec("uo:0.2");
    expect_one_way_match(p, init, config, 2 * n, 120, 3200 + round,
                         "I2+uo round " + std::to_string(round));
  }
}

TEST(BatchEquivalence, OneWayChiSquareUnderI3WithNoAdversary) {
  // NO adversary with a horizon inside the run: the batch leap must not
  // cross the quiet boundary. Random h exercises reactor-side detection.
  Rng meta(273);
  for (int round = 0; round < 3; ++round) {
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 6 + meta.below(2);
    auto p = testing::random_one_way_protocol(states, meta, /*io=*/false);
    const auto init = random_initial(n, states, meta);
    EngineConfig config;
    config.model = Model::I3;
    config.fns.h = testing::as_fn(testing::random_unary(states, meta));
    config.adversary = parse_adversary_spec("no:12:0.3");
    expect_one_way_match(p, init, config, 3 * n, 120, 3300 + round,
                         "I3+no round " + std::to_string(round));
  }
}

TEST(BatchEquivalence, TwoWayChiSquareUnderT3WithBudgetAdversary) {
  // T3 with random o/h: omissive outcomes differ per side; the uniform
  // adversary emits side=Both, whose (o, h) outcome can change counts.
  Rng meta(274);
  for (int round = 0; round < 3; ++round) {
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 6 + meta.below(3);
    auto p = random_protocol(states, meta);
    const auto init = random_initial(n, states, meta);
    EngineConfig config;
    config.model = Model::T3;
    config.fns.o = testing::as_fn(testing::random_unary(states, meta));
    config.fns.h = testing::as_fn(testing::random_unary(states, meta));
    config.adversary = parse_adversary_spec("budget:6:0.3");
    expect_engines_match(
        [&] { return make_engine("native", p, init, config); },
        [&] { return make_engine("batch", p, init, config); }, n, 3 * n, 120,
        3400 + round, /*with_omissions=*/true,
        "T3+budget round " + std::to_string(round));
  }
}

TEST(BatchEquivalence, CappedBurstChiSquareOnTransparentOmissions) {
  // A tight burst cap (2) at a high rate (0.6) under TW lifted to T1:
  // T1 omissions are global no-ops (o = h = id), so the batch engine runs
  // the exact within-burst Markov leg (leap::sample_capped_burst_leg).
  // The omissions-delivered count is part of the chi-square category, so
  // the burst-capped insertion stream itself must match the step-wise
  // adversary's, not just the configuration.
  Rng meta(276);
  for (int round = 0; round < 3; ++round) {
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 6 + meta.below(3);
    auto p = random_protocol(states, meta);
    const auto init = random_initial(n, states, meta);
    EngineConfig config;
    config.model = Model::TW;  // lifted to T1 by the adversary
    config.adversary = parse_adversary_spec("uo:0.6:burst=2");
    expect_engines_match(
        [&] { return make_engine("native", p, init, config); },
        [&] { return make_engine("batch", p, init, config); }, n, 3 * n, 150,
        3600 + round, /*with_omissions=*/true,
        "T1 capped-burst round " + std::to_string(round));
  }
}

TEST(BatchEquivalence, CappedBurstChiSquareUnderT3) {
  // Burst cap with COUNT-CHANGING omissive outcomes (random o/h under
  // T3): the event-punctuated loop's forced-real branch and burst
  // bookkeeping must reproduce the step-wise chain.
  Rng meta(277);
  for (int round = 0; round < 3; ++round) {
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 6 + meta.below(2);
    auto p = random_protocol(states, meta);
    const auto init = random_initial(n, states, meta);
    EngineConfig config;
    config.model = Model::T3;
    config.fns.o = testing::as_fn(testing::random_unary(states, meta));
    config.fns.h = testing::as_fn(testing::random_unary(states, meta));
    config.adversary = parse_adversary_spec("uo:0.5:burst=2");
    expect_engines_match(
        [&] { return make_engine("native", p, init, config); },
        [&] { return make_engine("batch", p, init, config); }, n, 3 * n, 150,
        3700 + round, /*with_omissions=*/true,
        "T3 capped-burst round " + std::to_string(round));
  }
}

TEST(BatchEquivalence, LiftedIoUnderBudgetMatchesNative) {
  // The omissive-closure lift (IO -> I1) must agree between engines,
  // omission counts included.
  Rng meta(275);
  const std::size_t states = 3;
  const std::size_t n = 8;
  auto p = testing::random_one_way_protocol(states, meta, /*io=*/true);
  const auto init = random_initial(n, states, meta);
  EngineConfig config;
  config.model = Model::IO;
  config.adversary = parse_adversary_spec("budget:5:0.25");
  expect_one_way_match(p, init, config, 3 * n, 150, 3500, "IO lifted + budget");
}

TEST(BatchEquivalence, OneWayStepPathMatchesNative) {
  // The per-interaction hypergeometric step must agree on one-way models
  // too, omission process included (step() honors should_omit).
  Rng meta(276);
  const std::size_t states = 3;
  const std::size_t n = 6;
  auto p = testing::random_one_way_protocol(states, meta, /*io=*/false);
  const auto init = random_initial(n, states, meta);
  AdversaryParams adv = parse_adversary_spec("uo:0.2");
  adv.max_burst = std::numeric_limits<std::size_t>::max();
  EngineConfig config;
  config.model = Model::I2;
  config.adversary = adv;

  const auto native = engine_distribution(
      [&] { return make_engine("native", p, init, config); }, n, 2 * n, 150,
      3600, /*with_omissions=*/true);
  std::map<Counts, std::size_t> stepped;
  for (std::size_t trial = 0; trial < 150; ++trial) {
    Rng rng(3601 + trial * 7919);
    std::vector<std::size_t> counts(states, 0);
    for (State q : init) ++counts[q];
    BatchSystem sys(RuleMatrix::compile(p, Model::I2, init), counts);
    sys.set_omission_process(adv);
    for (std::size_t i = 0; i < 2 * n; ++i) (void)sys.step(rng);
    Counts key = sys.counts();
    key.push_back(sys.omissions());
    ++stepped[key];
  }
  const auto [stat, df] = chi_square_homogeneity(native, stepped, 150, 150);
  EXPECT_LE(stat, chi_square_limit(df)) << "chi2=" << stat << " df=" << df;
}

TEST(BatchEquivalence, ConvergedOutputDistributionMatchesOnApproxMajority) {
  // Run to convergence (one opinion extinct) under both engines and compare
  // which opinion wins — a coarse but end-to-end distributional check.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[2];  // approx-majority
  auto probe = workload_counts_probe(w);
  std::array<std::map<Counts, std::size_t>, 2> wins;
  RunOptions opt;
  opt.max_steps = 200'000;
  for (int which = 0; which < 2; ++which) {
    for (std::size_t trial = 0; trial < 150; ++trial) {
      auto e = make_engine(which == 0 ? "native" : "batch", w.protocol, w.initial);
      UniformScheduler sched(n);
      Rng rng(5000 + trial * 13 + which);
      const RunResult res = run_engine_until(*e, sched, rng, probe, opt);
      ASSERT_TRUE(res.converged);
      Counts c = e->counts();
      // Category: which opinion survived (counts thresholded to win bits).
      const auto st = approx_majority_states();
      ++wins[which][Counts{c[st.x] > 0, c[st.y] > 0}];
    }
  }
  const auto [stat, df] = chi_square_homogeneity(wins[0], wins[1], 150, 150);
  EXPECT_LE(stat, chi_square_limit(df)) << "chi2=" << stat << " df=" << df;
}

}  // namespace
}  // namespace ppfs

// Behavior of every protocol in the library under the native TW engine:
// each workload must converge to its declared verdict under the uniform
// scheduler (globally fair with probability 1).
#include <gtest/gtest.h>

#include "engine/workload_runner.hpp"
#include "protocols/counting.hpp"
#include "protocols/leader.hpp"
#include "protocols/majority.hpp"
#include "protocols/parity.hpp"
#include "protocols/registry.hpp"

namespace ppfs {
namespace {

struct SweepParam {
  std::size_t n;
  std::uint64_t seed;
};

class WorkloadSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(WorkloadSweep, AllStandardWorkloadsConverge) {
  const auto [n, seed] = GetParam();
  for (const Workload& w : standard_workloads(n)) {
    RunOptions opt;
    opt.max_steps = 400'000 + 4000 * n;
    const RunResult res = run_native_workload(w, seed, opt);
    EXPECT_TRUE(res.converged) << w.name << " did not converge in " << res.steps
                               << " steps";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkloadSweep,
                         ::testing::Values(SweepParam{4, 1}, SweepParam{5, 2},
                                           SweepParam{8, 3}, SweepParam{13, 4},
                                           SweepParam{20, 5}, SweepParam{50, 6},
                                           SweepParam{100, 7}));

TEST(ThresholdCounting, RejectsZeroK) {
  EXPECT_THROW(make_threshold_counting(0), std::invalid_argument);
}

TEST(ThresholdCounting, PoolsWeights) {
  auto p = make_threshold_counting(4);
  EXPECT_EQ(p->delta(1, 2), (StatePair{3, 0}));
  EXPECT_EQ(p->delta(2, 2), (StatePair{4, 4}));  // reached k: broadcast
  EXPECT_EQ(p->delta(4, 0), (StatePair{4, 4}));  // sated converts
  EXPECT_EQ(p->delta(0, 4), (StatePair{4, 4}));
  EXPECT_TRUE(p->is_noop(1, 0));
}

TEST(ThresholdCounting, ExactBoundaryFalse) {
  // k-1 ones: predicate must stabilize to 0.
  const std::size_t n = 10, k = 4;
  auto p = make_threshold_counting(k);
  Workload w{"th", p, make_initial({{1, k - 1}, {0, n - k + 1}}), 0, nullptr};
  const auto res = run_native_workload(w, 99);
  EXPECT_TRUE(res.converged);
}

TEST(ThresholdCounting, ExactBoundaryTrue) {
  const std::size_t n = 10, k = 4;
  auto p = make_threshold_counting(k);
  Workload w{"th", p, make_initial({{1, k}, {0, n - k}}), 1, nullptr};
  const auto res = run_native_workload(w, 99);
  EXPECT_TRUE(res.converged);
}

TEST(ModCounting, Validates) {
  EXPECT_THROW(make_mod_counting(1, 0), std::invalid_argument);
  EXPECT_THROW(make_mod_counting(3, 3), std::invalid_argument);
}

TEST(ModCounting, MergeAndVerdict) {
  auto p = make_mod_counting(3, 2);  // sum == 2 (mod 3)?
  // active(1) meets active(1): starter active(2), reactor passive-true.
  const StatePair out = p->delta(1, 1);
  EXPECT_EQ(out.starter, 2u);
  EXPECT_EQ(p->output(out.reactor), 1);
  EXPECT_EQ(p->output(out.starter), 1);
}

class ModSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModSweep, CorrectVerdictForEveryResidue) {
  const std::size_t ones = GetParam();
  const std::size_t n = 12, m = 4;
  for (std::size_t r = 0; r < m; ++r) {
    auto p = make_mod_counting(m, r);
    const int expected = (ones % m) == r ? 1 : 0;
    Workload w{"mod", p, make_initial({{1, ones}, {0, n - ones}}), expected,
               nullptr};
    const auto res = run_native_workload(w, 7 + ones * 13 + r);
    EXPECT_TRUE(res.converged) << "ones=" << ones << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(OnesCounts, ModSweep, ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(LeaderElection, TwoAgents) {
  const auto st = leader_states();
  auto p = make_leader_election();
  Workload w{"leader", p, {st.leader, st.leader}, -1,
             [st](const std::vector<std::size_t>& c) { return c[st.leader] == 1; }};
  const auto res = run_native_workload(w, 3);
  EXPECT_TRUE(res.converged);
}

TEST(ExactMajority, MinorityOneVoteLoses) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  // 6 vs 5: opinion 1 must win even with the slimmest margin.
  Workload w{"exact", p, make_initial({{st.big_x, 6}, {st.big_y, 5}}), 1, nullptr};
  const auto res = run_native_workload(w, 17);
  EXPECT_TRUE(res.converged);
}

TEST(ExactMajority, OtherOpinionWins) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  Workload w{"exact", p, make_initial({{st.big_x, 5}, {st.big_y, 6}}), 0, nullptr};
  const auto res = run_native_workload(w, 18);
  EXPECT_TRUE(res.converged);
}

TEST(Registry, StandardSuiteShape) {
  const auto suite = standard_workloads(10);
  EXPECT_GE(suite.size(), 8u);
  for (const auto& w : suite) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_NE(w.protocol, nullptr);
    EXPECT_EQ(w.initial.empty(), false);
    EXPECT_TRUE(w.expected_output >= 0 || w.converged != nullptr) << w.name;
  }
  EXPECT_THROW(standard_workloads(3), std::invalid_argument);
}

TEST(Registry, CoreSuiteIsSubsetSized) {
  EXPECT_LT(core_workloads(10).size(), standard_workloads(10).size());
}

}  // namespace
}  // namespace ppfs

// Unit tests for the obs metrics layer: log2-bucket histogram boundaries,
// exact merge under arbitrary partitions (the property the multi-threaded
// sweep fold relies on), registry merge semantics, and the null-handle
// hot-path hook.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ppfs::obs {
namespace {

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);  // bucket 0 holds exactly {0}
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  // Every power of two opens a new bucket; its predecessor closes the old
  // one — bucket b >= 1 is exactly [2^(b-1), 2^b).
  for (unsigned k = 1; k < 64; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    EXPECT_EQ(Histogram::bucket_of(p), k + 1);
    EXPECT_EQ(Histogram::bucket_of(p - 1), k);
  }
  // The top of uint64 lands in the last of the 65 buckets.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(Histogram, BucketFloorIsTheLeftEdgeOfItsOwnBucket) {
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  for (std::size_t b = 1; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_floor(b), std::uint64_t{1} << (b - 1));
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_floor(b)), b);
    // One below the floor belongs to the previous bucket.
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_floor(b) - 1), b - 1);
  }
}

TEST(Histogram, RecordTracksCountSumExtrema) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(0);
  h.record(5);
  h.record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 8.0 / 3.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(2), 1u);  // 3 in [2,4)
  EXPECT_EQ(h.bucket(3), 1u);  // 5 in [4,8)
}

TEST(Histogram, MergeFuzzMatchesSinglePassExactly) {
  // Any partition of the sample, merged back, must be bit-identical to one
  // sequential pass: bucket counts are integers, and the double sum stays
  // exact because all values and partial sums fit in 53 bits.
  Rng rng(20260808);
  std::vector<std::uint64_t> vs;
  for (int i = 0; i < 5000; ++i) {
    const unsigned width = static_cast<unsigned>(rng.below(38));
    vs.push_back(rng.below((std::uint64_t{1} << width) + 1));
  }
  Histogram whole;
  for (const std::uint64_t v : vs) whole.record(v);

  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t k = 2 + rng.below(7);
    std::vector<Histogram> parts(k);
    for (const std::uint64_t v : vs)
      parts[static_cast<std::size_t>(rng.below(k))].record(v);
    Histogram merged;
    for (const Histogram& p : parts) merged.merge(p);
    EXPECT_EQ(merged, whole);
  }

  // Merging an empty histogram is the identity in either direction.
  Histogram empty, a = whole;
  a.merge(empty);
  EXPECT_EQ(a, whole);
  Histogram b;
  b.merge(whole);
  EXPECT_EQ(b, whole);
}

TEST(MetricRegistry, MergeSumsCountersSumsHistogramsMaxesGauges) {
  MetricRegistry a, b;
  a.counter("fires").add(3);
  b.counter("fires").add(4);
  b.counter("only_b").add(1);
  a.gauge("live").set(10.0);
  b.gauge("live").set(7.0);
  a.histogram("leap").record(5);
  b.histogram("leap").record(9);

  a.merge(b);
  EXPECT_EQ(a.counter("fires").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("live").value(), 10.0);
  EXPECT_EQ(a.histogram("leap").count(), 2u);
  EXPECT_EQ(a.histogram("leap").max(), 9u);
}

TEST(MetricRegistry, MergeIsAssociative) {
  auto make = [](std::uint64_t c, double g, std::uint64_t h) {
    MetricRegistry r;
    r.counter("c").add(c);
    r.gauge("g").set(g);
    r.histogram("h").record(h);
    return r;
  };
  const MetricRegistry a = make(1, 3.0, 2);
  const MetricRegistry b = make(5, 9.0, 70);
  const MetricRegistry c = make(2, 1.0, 2);

  MetricRegistry ab = a;
  ab.merge(b);
  MetricRegistry ab_c = ab;
  ab_c.merge(c);

  MetricRegistry bc = b;
  bc.merge(c);
  MetricRegistry a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);  // integer counts + max-fold gauges: exact
}

TEST(MetricRegistry, EqualityIgnoresWallClockTimers) {
  MetricRegistry a, b;
  a.counter("x").add(1);
  b.counter("x").add(1);
  // Different timer activity must not break equality — timers are
  // nondeterministic by nature and excluded from artifacts by design.
  const std::int64_t t0 = a.timer("phase", 0).begin();
  a.timer("phase", 0).end(t0);
  EXPECT_EQ(a, b);
}

TEST(Metrics, NullHandleHookIsANoOp) {
  // The shipping default: metrics compiled in but never attached. Every
  // PPFS_METRIC hook must be safe (and do nothing) on a null handle.
  [[maybe_unused]] Counter* h = nullptr;
  PPFS_METRIC(h, add(1));
  [[maybe_unused]] Histogram* hist = nullptr;
  PPFS_METRIC(hist, record(42));
  [[maybe_unused]] SampledTimer* timer = nullptr;
  PPFS_TIMER_BEGIN(t0, timer);
  PPFS_TIMER_END(t0, timer);

  MetricRegistry reg;
  h = &reg.counter("x");
  PPFS_METRIC(h, add(2));
#if PPFS_METRICS
  EXPECT_EQ(reg.counter("x").value(), 2u);
#else
  EXPECT_EQ(reg.counter("x").value(), 0u);  // hooks compiled out entirely
#endif
}

TEST(SampledTimer, SamplesOneEventPerWindow) {
  SampledTimer t(2);  // 1 in 4
  for (int i = 0; i < 8; ++i) {
    const std::int64_t t0 = t.begin();
    t.end(t0);
  }
  EXPECT_EQ(t.events(), 8u);
  EXPECT_EQ(t.sampled(), 2u);  // events 0 and 4
  EXPECT_GE(t.estimated_seconds(), 0.0);

  SampledTimer every(0);  // shift 0: time everything
  const std::int64_t t0 = every.begin();
  every.end(t0);
  EXPECT_EQ(every.events(), 1u);
  EXPECT_EQ(every.sampled(), 1u);
}

}  // namespace
}  // namespace ppfs::obs

// One-way workload registry: every workload converges under both the
// per-agent native engine and the count-space batch engine, in its
// declared model family.
#include <gtest/gtest.h>

#include "engine/batch/dispatch.hpp"
#include "protocols/registry.hpp"

namespace ppfs {
namespace {

CountsProbe probe_for(const OneWayWorkload& w) {
  auto conv = w.converged;
  const int expect = w.expected_output;
  return [conv, expect](const std::vector<std::size_t>& counts,
                        const Protocol& p) {
    if (conv) return conv(counts);
    return counts_consensus_output(counts, p) == expect;
  };
}

TEST(OneWayWorkloads, ConvergeUnderBothEngines) {
  const std::size_t n = 32;
  for (const auto& kind : engine_kinds()) {
    for (const OneWayWorkload& w : one_way_workloads(n)) {
      EngineConfig config;
      config.model = w.io ? Model::IO : Model::IT;
      auto engine = make_engine(kind, w.protocol, w.initial, config);
      UniformScheduler sched(n);
      Rng rng(91);
      RunOptions opt;
      opt.max_steps = 5'000'000;
      const RunResult res =
          run_engine_until(*engine, sched, rng, probe_for(w), opt);
      EXPECT_TRUE(res.converged) << kind << " on " << w.name;
      EXPECT_EQ(engine->model(), config.model) << w.name;
    }
  }
}

TEST(OneWayWorkloads, ConvergeUnderBudgetOmissions) {
  // A Budget adversary (model lifted to I1/I2 semantics as configured)
  // must not prevent convergence of the IO workloads.
  const std::size_t n = 32;
  for (const auto& kind : engine_kinds()) {
    for (const OneWayWorkload& w : one_way_workloads(n)) {
      if (!w.io) continue;
      EngineConfig config;
      config.model = Model::IO;
      config.adversary = parse_adversary_spec("budget:20:0.2");
      auto engine = make_engine(kind, w.protocol, w.initial, config);
      EXPECT_EQ(engine->model(), Model::I1) << w.name;  // lifted
      UniformScheduler sched(n);
      Rng rng(92);
      RunOptions opt;
      opt.max_steps = 5'000'000;
      const RunResult res =
          run_engine_until(*engine, sched, rng, probe_for(w), opt);
      EXPECT_TRUE(res.converged) << kind << " on " << w.name;
      EXPECT_LE(engine->omissions(), 20u) << kind << " on " << w.name;
      EXPECT_GT(engine->omissions(), 0u) << kind << " on " << w.name;
    }
  }
}

TEST(OneWayWorkloads, MajorityPrefixResolvesExactMajorityRequests) {
  // CLI requests for "exact-majority" on one-way models resolve to the
  // cancellation majority entry by prefix.
  const auto all = one_way_workloads(16);
  bool found = false;
  for (const auto& w : all)
    found |= w.name.rfind("exact-majority", 0) == 0;
  EXPECT_TRUE(found);
}

TEST(OneWayWorkloads, RegistryRejectsTinyPopulations) {
  EXPECT_THROW((void)one_way_workloads(3), std::invalid_argument);
}

}  // namespace
}  // namespace ppfs

#include "sim/tw_naive.hpp"

#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "verify/matching.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

TEST(TwSimulator, RejectsOneWayModels) {
  EXPECT_THROW(TwSimulator(make_pairing_protocol(), Model::IO, {0, 1}),
               std::invalid_argument);
}

TEST(TwSimulator, RejectsOmissionsUnderPlainTw) {
  TwSimulator sim(make_pairing_protocol(), Model::TW, {0, 1});
  EXPECT_THROW(sim.interact(Interaction{0, 1, true}), std::invalid_argument);
}

TEST(TwSimulator, OneInteractionOnePerfectPair) {
  const auto st = pairing_states();
  TwSimulator sim(make_pairing_protocol(), Model::TW, {st.consumer, st.producer});
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.simulated_state(0), st.critical);
  EXPECT_EQ(sim.simulated_state(1), st.bottom);
  ASSERT_EQ(sim.events().size(), 2u);
  const auto rep = verify_simulation(sim, 0);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.pairs, 1u);
}

TEST(TwSimulator, NoOpInteractionsEmitNothing) {
  const auto st = pairing_states();
  TwSimulator sim(make_pairing_protocol(), Model::TW,
                  {st.consumer, st.consumer});
  sim.interact(Interaction{0, 1, false});
  EXPECT_TRUE(sim.events().empty());
}

TEST(TwSimulator, CorrectSimulatorOverWorkloads) {
  for (const Workload& w : core_workloads(10)) {
    TwSimulator sim(w.protocol, Model::TW, w.initial);
    UniformScheduler sched(w.initial.size());
    Rng rng(11);
    auto counts_probe = [&](const TwSimulator& s) {
      std::vector<std::size_t> counts(w.protocol->num_states(), 0);
      for (State q : s.projection()) ++counts[q];
      if (w.converged) return w.converged(counts);
      for (State q = 0; q < counts.size(); ++q)
        if (counts[q] > 0 && w.protocol->output(q) != w.expected_output)
          return false;
      return true;
    };
    const auto res = run_until(sim, sched, rng, counts_probe);
    EXPECT_TRUE(res.converged) << w.name;
    const auto rep = verify_simulation(sim, 0);
    EXPECT_TRUE(rep.ok) << w.name << ": "
                        << (rep.errors.empty() ? "" : rep.errors[0]);
  }
}

TEST(TwSimulator, StarterSideOmissionForgesPhantomConsumption) {
  // The executable seed of every Figure 4 red cell: one starter-side
  // omission lets a single producer be consumed twice.
  const auto st = pairing_states();
  TwSimulator sim(make_pairing_protocol(), Model::T1,
                  {st.consumer, st.producer, st.consumer});
  PairingMonitor mon(sim.projection());
  sim.interact(Interaction{1, 0, true, OmitSide::Starter});
  mon.observe(sim.projection());
  EXPECT_EQ(sim.simulated_state(0), st.critical);
  EXPECT_EQ(sim.simulated_state(1), st.producer);  // unaware of being consumed
  sim.interact(Interaction{1, 2, false});
  mon.observe(sim.projection());
  EXPECT_TRUE(mon.safety_violated());
  EXPECT_EQ(mon.max_critical(), 2u);
  // The matching verifier independently flags the orphaned half.
  const auto rep = verify_simulation(sim, 0);
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.unmatched, 0u);
}

TEST(TwSimulator, ReactorSideOmissionAlsoUnsafe) {
  const auto st = pairing_states();
  TwSimulator sim(make_pairing_protocol(), Model::T2,
                  {st.consumer, st.producer, st.consumer});
  // Reactor-side omission: the producer is spent but no consumer turned
  // critical; a *different* dual of the same inconsistency.
  sim.interact(Interaction{0, 1, true, OmitSide::Reactor});
  EXPECT_EQ(sim.simulated_state(0), st.critical);
  EXPECT_EQ(sim.simulated_state(1), st.producer);
  const auto rep = verify_simulation(sim, 0);
  EXPECT_FALSE(rep.ok);
}

TEST(TwSimulator, BothSidesOmissionIsNoOp) {
  const auto st = pairing_states();
  TwSimulator sim(make_pairing_protocol(), Model::T3, {st.consumer, st.producer});
  sim.interact(Interaction{0, 1, true, OmitSide::Both});
  EXPECT_EQ(sim.simulated_state(0), st.consumer);
  EXPECT_EQ(sim.simulated_state(1), st.producer);
  EXPECT_TRUE(sim.events().empty());
}

TEST(TwSimulator, CloneIsDeepAndDeterministic) {
  const auto st = pairing_states();
  TwSimulator sim(make_pairing_protocol(), Model::TW, {st.consumer, st.producer});
  auto copy = sim.clone();
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(copy->simulated_state(0), st.consumer);  // unaffected
  copy->interact(Interaction{0, 1, false});
  EXPECT_EQ(copy->simulated_state(0), sim.simulated_state(0));
}

}  // namespace
}  // namespace ppfs

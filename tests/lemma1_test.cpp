// The Lemma 1 / Theorem 3.1 executable attack: the generic construction
// I* must make t+1 agents critical against t producers, violating the
// safety of the Pairing problem with finitely many omissions.
#include "attack/lemma1.hpp"

#include <gtest/gtest.h>

#include "protocols/pairing.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

SimFactory skno_factory(std::size_t o) {
  auto protocol = make_pairing_protocol();
  return [protocol, o](std::vector<State> init) -> std::unique_ptr<Simulator> {
    return std::make_unique<SknoSimulator>(protocol, Model::I3, o, std::move(init));
  };
}

class Lemma1Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lemma1Sweep, ConstructionViolatesSafety) {
  const std::size_t o = GetParam();
  const auto st = pairing_states();
  Lemma1Options opt;
  opt.max_ftt_depth = 2 * o + 4;
  const auto rep = run_lemma1_attack(skno_factory(o), st.producer, st.consumer, opt);
  ASSERT_TRUE(rep.has_value()) << "o=" << o;
  EXPECT_EQ(rep->ftt, 2 * (o + 1));
  EXPECT_EQ(rep->agents, 2 * rep->ftt + 2);
  EXPECT_EQ(rep->producers, rep->ftt);
  EXPECT_EQ(rep->consumers, rep->ftt + 2);
  EXPECT_EQ(rep->omissions, rep->ftt);  // one per J_k, as in the paper
  EXPECT_GE(rep->critical, rep->ftt + 1);
  EXPECT_TRUE(rep->safety_violated);
}

INSTANTIATE_TEST_SUITE_P(Bounds, Lemma1Sweep, ::testing::Values(1, 2, 3));

TEST(Lemma1, ViolationSurvivesFairSuffix) {
  // Theorem 3.1's closing argument: the critical state is irrevocable, so
  // the violation persists in any GF continuation.
  const auto st = pairing_states();
  Lemma1Options opt;
  opt.max_ftt_depth = 8;
  opt.gf_suffix = 20'000;
  const auto rep = run_lemma1_attack(skno_factory(1), st.producer, st.consumer, opt);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->safety_violated);
}

TEST(Lemma1, OmissionCountIsFinite) {
  // The attack must be producible by the (benign) NO adversary: finitely
  // many omissions, all within the scripted prefix.
  const auto st = pairing_states();
  Lemma1Options opt;
  opt.max_ftt_depth = 8;
  const auto rep = run_lemma1_attack(skno_factory(1), st.producer, st.consumer, opt);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->omissions, rep->ftt);
  EXPECT_LT(rep->omissions, rep->script_len);
}

TEST(Lemma1, RequiresSymmetricTransition) {
  // Applying the construction to a pair whose delta is a no-op must fail
  // gracefully (FTT undefined).
  const auto st = pairing_states();
  Lemma1Options opt;
  opt.max_ftt_depth = 6;
  EXPECT_FALSE(
      run_lemma1_attack(skno_factory(1), st.consumer, st.consumer, opt).has_value());
}

TEST(Lemma1, AttackBouncesOffSid) {
  // The same construction aimed at SID (run under the omissive I3, where
  // SID treats omissions as no-ops) must NOT violate safety: SID's
  // ID-locking cells of Figure 4 are green, and the redirected
  // interactions cannot complete a lock handshake with the wrong partner.
  auto protocol = make_pairing_protocol();
  SimFactory f = [protocol](std::vector<State> init) -> std::unique_ptr<Simulator> {
    return std::make_unique<SidSimulator>(protocol, Model::I3, std::move(init));
  };
  const auto st = pairing_states();
  Lemma1Options opt;
  opt.max_ftt_depth = 6;
  opt.gf_suffix = 5'000;
  const auto rep = run_lemma1_attack(f, st.producer, st.consumer, opt);
  // The construction itself executes (SID is NO1-resilient, so the
  // extensions exist), but the phantom transition never materializes.
  ASSERT_TRUE(rep.has_value());
  EXPECT_FALSE(rep->safety_violated)
      << "critical=" << rep->critical << " producers=" << rep->producers;
  EXPECT_LE(rep->critical, rep->producers);
}

TEST(Lemma1, SknoWithZeroBoundIsNotNo1Resilient) {
  // SKnO with o = 0 stalls after a single omission (no jokers exist), so
  // the Lemma 1 hypothesis — extension to a full simulation after the
  // omission — fails and the construction reports it.
  const auto st = pairing_states();
  Lemma1Options opt;
  opt.max_ftt_depth = 4;
  opt.extension_cap = 2'000;
  EXPECT_FALSE(
      run_lemma1_attack(skno_factory(0), st.producer, st.consumer, opt).has_value());
}

}  // namespace
}  // namespace ppfs

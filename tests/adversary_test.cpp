#include "sched/adversary.hpp"

#include <gtest/gtest.h>

namespace ppfs {
namespace {

AdversaryParams uo(double rate) {
  AdversaryParams p;
  p.kind = AdversaryKind::UO;
  p.rate = rate;
  return p;
}

TEST(Adversary, Validates) {
  EXPECT_THROW(OmissionAdversary(nullptr, 4, uo(0.5)), std::invalid_argument);
  EXPECT_THROW(OmissionAdversary(std::make_unique<UniformScheduler>(4), 1, uo(0.5)),
               std::invalid_argument);
}

TEST(Adversary, DeliversBaseRunUnchangedAndInOrder) {
  // The adversary must interleave, never drop or reorder, the base picks.
  std::vector<Interaction> script{{0, 1, false}, {2, 3, false}, {1, 2, false}};
  OmissionAdversary adv(std::make_unique<ScriptedScheduler>(script, nullptr), 4,
                        uo(0.5));
  Rng rng(1);
  std::vector<Interaction> real;
  for (std::size_t step = 0; real.size() < script.size(); ++step) {
    const Interaction ia = adv.next(rng, step);
    if (!ia.omissive) real.push_back(ia);
  }
  EXPECT_EQ(real, script);
}

TEST(Adversary, ZeroRateEmitsNothing) {
  OmissionAdversary adv(std::make_unique<UniformScheduler>(4), 4, uo(0.0));
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(adv.next(rng, i).omissive);
  EXPECT_EQ(adv.omissions_emitted(), 0u);
}

TEST(Adversary, UoKeepsInserting) {
  OmissionAdversary adv(std::make_unique<UniformScheduler>(4), 4, uo(0.3));
  Rng rng(3);
  std::size_t om = 0;
  for (int i = 0; i < 5000; ++i)
    if (adv.next(rng, i).omissive) ++om;
  EXPECT_GT(om, 500u);
  EXPECT_EQ(om, adv.omissions_emitted());
}

TEST(Adversary, NoGoesQuiet) {
  AdversaryParams p;
  p.kind = AdversaryKind::NO;
  p.rate = 0.5;
  p.quiet_after = 100;
  OmissionAdversary adv(std::make_unique<UniformScheduler>(4), 4, p);
  Rng rng(4);
  std::size_t before = 0, after = 0;
  for (std::size_t i = 0; i < 5000; ++i) {
    if (adv.next(rng, i).omissive) (i < 100 ? before : after) += 1;
  }
  EXPECT_GT(before, 0u);
  EXPECT_EQ(after, 0u);
}

TEST(Adversary, No1EmitsAtMostOne) {
  AdversaryParams p;
  p.kind = AdversaryKind::NO1;
  p.rate = 1.0;
  OmissionAdversary adv(std::make_unique<UniformScheduler>(4), 4, p);
  Rng rng(5);
  std::size_t om = 0;
  for (int i = 0; i < 1000; ++i)
    if (adv.next(rng, i).omissive) ++om;
  EXPECT_EQ(om, 1u);
}

TEST(Adversary, BudgetRespectsCap) {
  AdversaryParams p;
  p.kind = AdversaryKind::Budget;
  p.rate = 1.0;
  p.max_omissions = 7;
  OmissionAdversary adv(std::make_unique<UniformScheduler>(4), 4, p);
  Rng rng(6);
  std::size_t om = 0;
  for (int i = 0; i < 1000; ++i)
    if (adv.next(rng, i).omissive) ++om;
  EXPECT_EQ(om, 7u);
}

TEST(Adversary, BurstsAreFinite) {
  // Even at rate 1.0 the burst cap forces base interactions through.
  AdversaryParams p;
  p.kind = AdversaryKind::UO;
  p.rate = 1.0;
  p.max_burst = 3;
  OmissionAdversary adv(std::make_unique<UniformScheduler>(4), 4, p);
  Rng rng(7);
  std::size_t run = 0, max_run = 0, real = 0;
  for (int i = 0; i < 2000; ++i) {
    if (adv.next(rng, i).omissive) {
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
      ++real;
    }
  }
  EXPECT_LE(max_run, 3u);
  EXPECT_GT(real, 400u);
}

TEST(Adversary, VictimPickerTargetsChosenPair) {
  AdversaryParams p;
  p.kind = AdversaryKind::Budget;
  p.rate = 1.0;
  p.max_omissions = 10;
  OmissionAdversary adv(std::make_unique<UniformScheduler>(4), 4, p);
  adv.set_victim_picker(
      [](Rng&, std::size_t) { return Interaction{2, 3, false}; });
  Rng rng(8);
  std::size_t targeted = 0;
  for (int i = 0; i < 200; ++i) {
    const Interaction ia = adv.next(rng, i);
    if (ia.omissive) {
      EXPECT_EQ(ia.starter, 2u);
      EXPECT_EQ(ia.reactor, 3u);
      ++targeted;
    }
  }
  EXPECT_EQ(targeted, 10u);
}

}  // namespace
}  // namespace ppfs

#include "engine/batch/configuration.hpp"

#include <gtest/gtest.h>

#include "core/population.hpp"
#include "protocols/logic.hpp"
#include "protocols/majority.hpp"

namespace ppfs {
namespace {

TEST(Configuration, RoundTripsThroughPopulation) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  Population pop(p, make_initial({{st.big_x, 3}, {st.big_y, 2}}));
  const Configuration conf = Configuration::from_population(pop);
  EXPECT_EQ(conf.size(), 5u);
  EXPECT_EQ(conf.count(st.big_x), 3u);
  EXPECT_EQ(conf.count(st.big_y), 2u);
  EXPECT_EQ(conf.to_population().counts(), pop.counts());
}

TEST(Configuration, ValidatesShape) {
  auto p = make_or_protocol();  // 2 states
  EXPECT_THROW(Configuration(p, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(Configuration(p, {0, 0}), std::invalid_argument);
  EXPECT_THROW(Configuration(nullptr, {1, 1}), std::invalid_argument);
}

TEST(Configuration, ApplyPairFiresDeltaAtCountLevel) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  Configuration conf(p, [&] {
    std::vector<std::size_t> c(p->num_states(), 0);
    c[st.big_x] = 2;
    c[st.big_y] = 2;
    return c;
  }());
  conf.apply_pair(st.big_x, st.big_y);  // cancel to weak
  EXPECT_EQ(conf.count(st.big_x), 1u);
  EXPECT_EQ(conf.count(st.big_y), 1u);
  EXPECT_EQ(conf.count(st.x) + conf.count(st.y), 2u);
  EXPECT_EQ(conf.size(), 4u);  // population size is conserved
}

TEST(Configuration, ApplyPairRequiresOccupiedPreStates) {
  auto p = make_or_protocol();
  Configuration conf(p, {2, 0});
  EXPECT_THROW(conf.apply_pair(0, 1), std::invalid_argument);
}

TEST(Configuration, SelfPairNeedsTwoAgents) {
  auto p = make_or_protocol();
  Configuration conf(p, {1, 1});
  EXPECT_THROW(conf.apply_pair(1, 1), std::invalid_argument);
}

TEST(Configuration, MoveAndConsensus) {
  auto p = make_or_protocol();  // outputs are the states themselves
  Configuration conf(p, {3, 1});
  EXPECT_EQ(conf.consensus_output(), -1);
  conf.move(0, 1, 3);
  EXPECT_EQ(conf.count(0), 0u);
  EXPECT_EQ(conf.count(1), 4u);
  EXPECT_EQ(conf.consensus_output(), 1);
  EXPECT_THROW(conf.move(0, 1, 1), std::invalid_argument);
}

TEST(Population, FromCountsIsCanonicalInverseOfCounts) {
  auto p = make_approximate_majority();
  const Population pop =
      Population::from_counts(p, {2, 1, 3});
  EXPECT_EQ(pop.size(), 6u);
  EXPECT_EQ(pop.counts(), (std::vector<std::size_t>{2, 1, 3}));
  // Canonical: grouped by ascending state id.
  EXPECT_EQ(pop.state(0), 0u);
  EXPECT_EQ(pop.state(2), 1u);
  EXPECT_EQ(pop.state(5), 2u);
  EXPECT_THROW(Population::from_counts(p, {1, 2}), std::invalid_argument);
}

TEST(Population, CountsIntoReusesBuffer) {
  auto p = make_or_protocol();
  Population pop(p, {0, 1, 1});
  std::vector<std::size_t> buf(17, 99);
  pop.counts_into(buf);
  EXPECT_EQ(buf, (std::vector<std::size_t>{1, 2}));
}

}  // namespace
}  // namespace ppfs

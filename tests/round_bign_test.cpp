// The n = 10^9 overflow audit: standard workloads built through the
// count-vector path (registry initial_counts + make_engine_from_counts)
// must run on the auto engine's round face with every intermediate —
// pair weights C[s]*(C[r]-1) ~ 10^18, T = n(n-1), round-length and
// hypergeometric draws — staying inside u64. CI runs this file under
// UBSan, so a silent signed/unsigned overflow anywhere on the path is a
// test failure, not a wrong sample.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <vector>

#include "engine/batch/dispatch.hpp"
#include "protocols/registry.hpp"

namespace ppfs {
namespace {

constexpr std::size_t kBillion = 1'000'000'000;

std::size_t sum(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

TEST(RoundBigN, RegistryCarriesCountsAboveThePerAgentLimit) {
  // Above kPerAgentLimit every workload must switch to the counts form —
  // a per-agent vector at 10^9 would allocate gigabytes in the registry.
  for (const Workload& w : standard_workloads(kBillion)) {
    EXPECT_TRUE(w.initial.empty()) << w.name;
    ASSERT_FALSE(w.initial_counts.empty()) << w.name;
    EXPECT_EQ(sum(w.initial_counts), kBillion) << w.name;
  }
  for (const OneWayWorkload& w : one_way_workloads(kBillion)) {
    EXPECT_TRUE(w.initial.empty()) << w.name;
    ASSERT_FALSE(w.initial_counts.empty()) << w.name;
    EXPECT_EQ(sum(w.initial_counts), kBillion) << w.name;
  }
  // Below the limit the historical per-agent layout is untouched.
  for (const Workload& w : standard_workloads(64)) {
    EXPECT_EQ(w.initial.size(), 64u) << w.name;
    EXPECT_TRUE(w.initial_counts.empty()) << w.name;
  }
}

TEST(RoundBigN, BeaconOrAtBillionRunsOnTheRoundFace) {
  const OneWayWorkload w =
      find_one_way_workload("beacon-or", kBillion, Model::IT);
  EngineConfig config;
  config.model = Model::IT;
  auto e = make_engine_from_counts("auto", w.protocol, w.initial_counts, config);
  UniformScheduler sched(kBillion);
  Rng rng(90001);
  // ~70 rounds at E[L] ~ sqrt(pi n)/2 ~ 28k: enough to cross many round
  // boundaries while staying a unit test.
  const std::size_t budget = 2'000'000;
  (void)run_engine_steps(*e, sched, rng, budget);
  EXPECT_EQ(e->interactions(), budget);
  EXPECT_EQ(e->kind(), "auto");
  // beacon-or is fully dense (every real delivery fires): the monitor
  // must be on the round face, or the dense speedup never materializes.
  EXPECT_EQ(e->active_kind(), "round");
  EXPECT_EQ(sum(e->counts()), kBillion);
}

TEST(RoundBigN, BeaconOrAtBillionUnderUOAdversary) {
  const Model model = omissive_closure(Model::IT);
  const OneWayWorkload w = find_one_way_workload("beacon-or", kBillion, model);
  EngineConfig config;
  config.model = model;
  AdversaryParams adv;
  adv.rate = 0.3;
  config.adversary = adv;
  auto e = make_engine_from_counts("auto", w.protocol, w.initial_counts, config);
  UniformScheduler sched(kBillion);
  Rng rng(90002);
  const std::size_t budget = 1'000'000;
  (void)run_engine_steps(*e, sched, rng, budget);
  EXPECT_EQ(e->interactions(), budget);
  EXPECT_EQ(sum(e->counts()), kBillion);
  // At rate 0.3 over 10^6 deliveries the omission count is ~3*10^5;
  // anywhere near zero or past the budget means the round split is off.
  EXPECT_GT(e->omissions(), budget / 5);
  EXPECT_LT(e->omissions(), budget / 2);
}

TEST(RoundBigN, BudgetAdversaryBoundHoldsAtBillion) {
  const Model model = omissive_closure(Model::IT);
  const OneWayWorkload w = find_one_way_workload("beacon-or", kBillion, model);
  EngineConfig config;
  config.model = model;
  AdversaryParams adv;
  adv.kind = AdversaryKind::Budget;
  adv.rate = 0.4;
  adv.max_omissions = 1000;
  config.adversary = adv;
  auto e = make_engine_from_counts("auto", w.protocol, w.initial_counts, config);
  UniformScheduler sched(kBillion);
  Rng rng(90003);
  (void)run_engine_steps(*e, sched, rng, 500'000);
  EXPECT_GT(e->omissions(), 0u);
  EXPECT_LE(e->omissions(), 1000u);
  EXPECT_EQ(sum(e->counts()), kBillion);
}

TEST(RoundBigN, TwoWayWorkloadAtBillionOnTheBatchEngine) {
  // The two-way counts path (no one-way lowering) through the plain batch
  // engine: or-epidemic at 10^9 leaps through its sparse tail without
  // touching a per-agent array.
  const Workload w = find_workload("or", kBillion);
  auto e = make_engine_from_counts("batch", w.protocol, w.initial_counts);
  UniformScheduler sched(kBillion);
  Rng rng(90004);
  (void)run_engine_steps(*e, sched, rng, 1'000'000);
  EXPECT_EQ(e->interactions(), 1'000'000u);
  EXPECT_EQ(sum(e->counts()), kBillion);
}

TEST(RoundBigN, NativeEngineRejectsTheCountsPath) {
  const Workload w = find_workload("or", kBillion);
  EXPECT_THROW(
      (void)make_engine_from_counts("native", w.protocol, w.initial_counts),
      std::invalid_argument);
}

}  // namespace
}  // namespace ppfs

// Distribution-exactness of the round-dense face (round_system.hpp):
// chi-square homogeneity of final configurations under the round driver
// against the sequential batch drivers, across (model, adversary) cells.
//
// The reference driver per cell is the one whose omission semantics the
// round face must reproduce: BatchSystem::advance for unbounded bursts
// (the leap path treats max_burst as unbounded), BatchSystem::step for
// the capped-burst cell (step delegates to should_omit, and
// sample_round_omissions walks the same burst-cap Markov chain). Where
// an adversary is on, the omissions-delivered count joins the outcome
// category, so the chi-square also pins the round face's omission
// stream, not just its count moves.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "chi_square.hpp"
#include "engine/batch/batch_system.hpp"
#include "engine/batch/dispatch.hpp"
#include "engine/batch/round_system.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/registry.hpp"

namespace ppfs {
namespace {

using Counts = std::vector<std::size_t>;

enum class Face { Leap, Round, Step };

using SysFactory = std::function<BatchSystem()>;

std::vector<std::size_t> counts_of(const std::vector<State>& init,
                                   std::size_t q) {
  std::vector<std::size_t> counts(q, 0);
  for (const State s : init) ++counts[s];
  return counts;
}

std::map<Counts, std::size_t> face_distribution(const SysFactory& make,
                                                Face face,
                                                std::size_t interactions,
                                                std::size_t trials,
                                                std::uint64_t seed,
                                                bool with_omissions) {
  std::map<Counts, std::size_t> dist;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(seed + trial * 7919);
    BatchSystem sys = make();
    std::size_t covered = 0;
    if (face == Face::Round) {
      RoundSystem round(sys);
      while (covered < interactions)
        covered += round.advance(interactions - covered, rng).interactions;
    } else if (face == Face::Leap) {
      while (covered < interactions)
        covered += sys.advance(interactions - covered, rng).interactions;
    } else {
      for (; covered < interactions; ++covered) (void)sys.step(rng);
    }
    // Budget truncation must be exact — never overshoot, never stall.
    EXPECT_EQ(covered, interactions);
    EXPECT_EQ(sys.steps(), interactions);
    Counts key = sys.counts();
    if (with_omissions) key.push_back(sys.omissions());
    ++dist[key];
  }
  return dist;
}

void expect_round_matches(const SysFactory& make, Face reference,
                          std::size_t interactions, std::size_t trials,
                          std::uint64_t seed, bool with_omissions,
                          const std::string& label) {
  const auto ref = face_distribution(make, reference, interactions, trials,
                                     seed, with_omissions);
  const auto round = face_distribution(make, Face::Round, interactions, trials,
                                       seed + 1, with_omissions);
  const auto [stat, df] = testing::chi_square_homogeneity(ref, round, trials, trials);
  EXPECT_LE(stat, testing::chi_square_limit(df))
      << label << ": chi2=" << stat << " df=" << df;
}

// Cell 1 — the dense flagship, no adversary: beacon-or under IT (every
// real delivery fires, rounds run at full length).
TEST(RoundEquivalence, BeaconOrUnderITPlain) {
  const std::size_t n = 48;
  const OneWayWorkload w = find_one_way_workload("beacon-or", n, Model::IT);
  const SysFactory make = [&w] {
    RuleMatrix rules = RuleMatrix::compile(w.protocol, Model::IT, w.initial);
    auto counts = counts_of(w.initial, rules.num_states());
    return BatchSystem(std::move(rules), std::move(counts));
  };
  expect_round_matches(make, Face::Leap, 3 * n, 140, 8100, false,
                       "beacon-or IT");
}

// Cell 2 — one-way omissive: beacon-or lifted to I1 with a hot UO
// adversary, unbounded bursts (the leap reference's semantics).
TEST(RoundEquivalence, BeaconOrUnderI1WithUnboundedUO) {
  const std::size_t n = 48;
  const Model model = omissive_closure(Model::IT);
  const OneWayWorkload w = find_one_way_workload("beacon-or", n, model);
  AdversaryParams adv;
  adv.rate = 0.35;
  adv.max_burst = std::numeric_limits<std::size_t>::max();
  const SysFactory make = [&w, model, adv] {
    RuleMatrix rules = RuleMatrix::compile(w.protocol, model, w.initial);
    auto counts = counts_of(w.initial, rules.num_states());
    BatchSystem sys(std::move(rules), std::move(counts));
    sys.set_omission_process(adv);
    return sys;
  };
  expect_round_matches(make, Face::Leap, 3 * n, 140, 8200, true,
                       "beacon-or I1 uo:0.35");
}

// Cell 3 — capped-burst adversary: the round face's omission tally must
// reproduce the burst-cap Markov chain, so the reference is the exact
// per-interaction step path (the only sequential driver honoring
// max_burst).
TEST(RoundEquivalence, TwoWayOrUnderT1WithCappedBurstUO) {
  const std::size_t n = 16;
  const Workload w = find_workload("or", n);
  AdversaryParams adv;
  adv.rate = 0.5;
  adv.max_burst = 2;
  const SysFactory make = [&w, adv] {
    RuleMatrix rules = RuleMatrix::compile(w.protocol, Model::T1);
    auto counts = counts_of(w.initial, rules.num_states());
    BatchSystem sys(std::move(rules), std::move(counts));
    sys.set_omission_process(adv);
    return sys;
  };
  expect_round_matches(make, Face::Step, 3 * n, 150, 8300, true,
                       "or T1 uo:0.5 burst=2");
}

// Cell 4 — NO quiet horizon falling mid-run: rounds that would cross the
// horizon must truncate exactly there, then resume omission-free.
TEST(RoundEquivalence, ExactMajorityUnderT1WithQuietHorizon) {
  const std::size_t n = 18;
  const Workload w = find_workload("exact-majority", n);
  AdversaryParams adv;
  adv.kind = AdversaryKind::NO;
  adv.rate = 0.4;
  adv.quiet_after = 30;
  adv.max_burst = std::numeric_limits<std::size_t>::max();
  const SysFactory make = [&w, adv] {
    RuleMatrix rules = RuleMatrix::compile(w.protocol, Model::T1);
    auto counts = counts_of(w.initial, rules.num_states());
    BatchSystem sys(std::move(rules), std::move(counts));
    sys.set_omission_process(adv);
    return sys;
  };
  expect_round_matches(make, Face::Leap, 3 * n, 150, 8400, true,
                       "exact-majority T1 no:30:0.4");
}

// Cell 5 — the public facade: the adaptive auto engine (which arbitrates
// leap and round faces mid-run) against the plain batch engine through
// make_engine, adversary attached by EngineDispatch. Whatever face mix
// auto picks, the run distribution must be the batch engine's.
TEST(RoundEquivalence, AutoEngineMatchesBatchEngineFacade) {
  const std::size_t n = 48;
  const Workload w = find_workload("or", n);
  AdversaryParams adv;
  adv.rate = 0.3;
  EngineConfig config;
  config.model = Model::T1;
  config.adversary = adv;
  auto dist = [&](const char* kind, std::uint64_t seed) {
    std::map<Counts, std::size_t> d;
    for (std::size_t trial = 0; trial < 140; ++trial) {
      Rng rng(seed + trial * 7919);
      auto e = make_engine(kind, w.protocol, w.initial, config);
      UniformScheduler sched(n);
      (void)run_engine_steps(*e, sched, rng, 2 * n);
      Counts key = e->counts();
      key.push_back(e->omissions());
      ++d[key];
    }
    return d;
  };
  const auto batch = dist("batch", 8500);
  const auto adaptive = dist("auto", 8501);
  const auto [stat, df] = testing::chi_square_homogeneity(batch, adaptive, 140, 140);
  EXPECT_LE(stat, testing::chi_square_limit(df))
      << "auto-vs-batch: chi2=" << stat << " df=" << df;
}

}  // namespace
}  // namespace ppfs

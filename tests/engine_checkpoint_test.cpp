// Engine checkpoint/restore — the Tier-B half of the sweep service's
// resume contract. A replica interrupted at a probe-slice boundary and
// restored into a FRESH engine (same construction arguments) must finish
// with results byte-identical to the uninterrupted run: same interaction
// count, convergence step, fire/no-op totals and extras. Exercised
// end-to-end through exp::run_replica_resumable for every checkpointable
// engine kind, plus direct checks of the Engine checkpoint surface
// (non-checkpointable native engines refuse loudly).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "engine/batch/dispatch.hpp"
#include "engine/workload_runner.hpp"
#include "exp/scenario.hpp"
#include "util/binio.hpp"

namespace ppfs::exp {
namespace {

// Byte-stable digest of everything a replica reports.
std::string digest(const ReplicaResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << "steps=" << r.run.steps << " conv=" << r.run.converged
     << " om=" << r.run.omissions << " cstep=" << r.convergence_step
     << " fires=" << r.fires << " noops=" << r.noops
     << " ofires=" << r.omissive_fires << " err=" << r.error;
  for (const auto& [k, v] : r.extras) os << ' ' << k << '=' << v;
  return std::move(os).str();
}

// Run trial 0 of `spec` twice: once straight through, once split across a
// mid-run snapshot (capture at the first eligible slice, then restore into
// a fresh replica). Both halves must agree byte-for-byte.
void expect_resume_exact(const ScenarioSpec& spec) {
  const ReplicaResult whole = run_replica(spec, 0);

  std::vector<ReplicaSnapshot> snaps;
  const ReplicaResult capturing = run_replica_resumable(
      spec, 0, nullptr,
      [&](const ReplicaSnapshot& s) { snaps.push_back(s); },
      /*snapshot_every=*/1);
  EXPECT_EQ(digest(capturing), digest(whole))
      << spec.to_string() << ": capturing run diverged";
  ASSERT_FALSE(snaps.empty())
      << spec.to_string() << ": no snapshot captured — run too short or "
                             "engine not checkpoint-exact";

  // Resume from an early snapshot AND from the last one: the restore path
  // must be exact wherever the cut lands.
  for (const ReplicaSnapshot* snap : {&snaps.front(), &snaps.back()}) {
    const ReplicaResult resumed =
        run_replica_resumable(spec, 0, snap, nullptr, 0);
    EXPECT_EQ(digest(resumed), digest(whole))
        << spec.to_string() << ": resumed run diverged (snapshot at "
        << snap->harness_steps << " steps)";
  }
}

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.workload = "exact-majority";
  spec.n = 512;
  spec.engine = "batch";
  spec.trials = 1;
  spec.seed = 20260808;
  spec.check_every = 256;  // many slices -> many capture opportunities
  return spec;
}

TEST(EngineCheckpoint, BatchEngineResumesExactly) {
  expect_resume_exact(base_spec());
}

TEST(EngineCheckpoint, BatchEngineUnderAdversaryResumesExactly) {
  ScenarioSpec spec = base_spec();
  spec.adversary = "budget:64";
  expect_resume_exact(spec);
}

TEST(EngineCheckpoint, AdaptiveEngineResumesExactly) {
  // engine=auto on a plain workload = AdaptiveBatchEngine (batch + round
  // system + regime monitor) — all three serialize.
  ScenarioSpec spec = base_spec();
  spec.engine = "auto";
  expect_resume_exact(spec);
}

TEST(EngineCheckpoint, SimBatchEngineResumesExactly) {
  // SKnO wrapper in count space: rules checkpoint (token state) rides
  // along with the interned configuration.
  ScenarioSpec spec;
  spec.workload = "exact-majority-gap";
  spec.n = 48;
  spec.engine = "batch";
  spec.sim = "skno:o=2";
  spec.trials = 1;
  spec.seed = 7;
  spec.check_every = 512;
  expect_resume_exact(spec);
}

TEST(EngineCheckpoint, AutoSimEngineLockedResumesExactly) {
  // engine=auto + adversary locks AutoSimEngine to count space at
  // construction — checkpoint_exact() holds from step 0.
  ScenarioSpec spec;
  spec.workload = "exact-majority-gap";
  spec.n = 48;
  spec.engine = "auto";
  spec.sim = "skno:o=2";
  spec.adversary = "budget:8";
  spec.trials = 1;
  spec.seed = 11;
  spec.check_every = 512;
  expect_resume_exact(spec);
}

TEST(EngineCheckpoint, NativeEngineRefusesCheckpointing) {
  const Workload w = find_workload("or", 64);
  EngineConfig config;
  auto engine = make_engine("native", w.protocol, w.initial, config);
  EXPECT_FALSE(engine->checkpointable());
  EXPECT_FALSE(engine->checkpoint_exact());
  bin::Writer wtr;
  EXPECT_THROW(engine->save_state(wtr), std::logic_error);
  bin::Reader rdr(std::string_view{});
  EXPECT_THROW(engine->restore_state(rdr), std::logic_error);
}

TEST(EngineCheckpoint, BatchEngineStateRoundTripsDirectly) {
  // Direct Engine-surface round-trip (no harness): drive A, serialize,
  // restore into fresh B, then drive both with identical Rng streams and
  // compare counts at every slice.
  const Workload w = find_workload("exact-majority", 256);
  EngineConfig config;
  auto a = make_engine("batch", w.protocol, w.initial, config);
  ASSERT_TRUE(a->checkpointable());

  UniformScheduler sched(256);
  Rng rng_a(99);
  const CountsProbe probe = workload_counts_probe(w);
  RunOptions opt;
  opt.max_steps = 3000;
  opt.check_every = 500;
  opt.stable_checks = 1u << 30;  // never "converge": fixed-length segment
  (void)run_engine_until(*a, sched, rng_a, probe, opt);

  bin::Writer snap;
  a->save_state(snap);
  auto b = make_engine("batch", w.protocol, w.initial, config);
  bin::Reader rdr(snap.data());
  b->restore_state(rdr);
  EXPECT_TRUE(rdr.done());
  EXPECT_EQ(a->counts(), b->counts());

  Rng rng_b = rng_a;  // identical continuation streams
  (void)run_engine_until(*a, sched, rng_a, probe, opt);
  (void)run_engine_until(*b, sched, rng_b, probe, opt);
  EXPECT_EQ(a->counts(), b->counts());
  EXPECT_EQ(a->stats().total_fires(), b->stats().total_fires());
  EXPECT_EQ(a->stats().noops(), b->stats().noops());
}

TEST(EngineCheckpoint, IneligibleResumeThrows) {
  // fixed_steps replicas never capture; handing one a snapshot anyway must
  // throw rather than silently run from scratch.
  ScenarioSpec spec = base_spec();
  std::vector<ReplicaSnapshot> snaps;
  (void)run_replica_resumable(
      spec, 0, nullptr, [&](const ReplicaSnapshot& s) { snaps.push_back(s); },
      1);
  ASSERT_FALSE(snaps.empty());
  spec.fixed_steps = 1000;
  EXPECT_THROW(
      (void)run_replica_resumable(spec, 0, &snaps.front(), nullptr, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace ppfs::exp

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ppfs {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"model", "result"});
  t.add_row({"TW", "pass"});
  t.add_row({"I3", "pass"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("TW"), std::string::npos);
  EXPECT_NE(out.find("I3"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "b"});
  t.add_row({"longvalue", "x"});
  const std::string out = t.to_string();
  // Header line and row line must place column b at the same offset.
  std::istringstream is(out);
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  EXPECT_EQ(row.find('x'), out.substr(0, out.find('\n')).size() >= 1
                               ? row.find('x')
                               : std::string::npos);
  EXPECT_GT(row.find('x'), row.find("longvalue"));
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, PrintWritesToStream) {
  TextTable t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(FmtHelpers, Doubles) {
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(FmtHelpers, Bools) {
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "no");
}

}  // namespace
}  // namespace ppfs

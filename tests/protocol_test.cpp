#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "protocols/leader.hpp"
#include "protocols/logic.hpp"
#include "protocols/majority.hpp"
#include "protocols/oneway.hpp"
#include "protocols/pairing.hpp"

namespace ppfs {
namespace {

TEST(ProtocolBuilder, DefaultsToIdentity) {
  ProtocolBuilder b("t");
  const State a = b.add_state("a", -1, true);
  const State c = b.add_state("c");
  auto p = b.build();
  EXPECT_EQ(p->delta(a, c), (StatePair{a, c}));
  EXPECT_EQ(p->delta(c, a), (StatePair{c, a}));
  EXPECT_TRUE(p->is_noop(a, c));
}

TEST(ProtocolBuilder, RulesOverrideIdentity) {
  ProtocolBuilder b("t");
  const State a = b.add_state("a", -1, true);
  const State c = b.add_state("c");
  b.rule(a, c, c, a);
  auto p = b.build();
  EXPECT_EQ(p->delta(a, c), (StatePair{c, a}));
  EXPECT_EQ(p->delta(c, a), (StatePair{c, a}));  // untouched
}

TEST(ProtocolBuilder, SymmetricRuleAddsMirror) {
  ProtocolBuilder b("t");
  const State a = b.add_state("a");
  const State c = b.add_state("c");
  const State d = b.add_state("d");
  const State e = b.add_state("e");
  b.symmetric_rule(a, c, d, e);
  auto p = b.build();
  EXPECT_EQ(p->delta(a, c), (StatePair{d, e}));
  EXPECT_EQ(p->delta(c, a), (StatePair{e, d}));
}

TEST(ProtocolBuilder, NamesOutputsInitialStates) {
  ProtocolBuilder b("named");
  const State a = b.add_state("alpha", 1, true);
  const State c = b.add_state("beta", 0);
  auto p = b.build();
  EXPECT_EQ(p->name(), "named");
  EXPECT_EQ(p->state_name(a), "alpha");
  EXPECT_EQ(p->state_name(c), "beta");
  EXPECT_EQ(p->output(a), 1);
  EXPECT_EQ(p->output(c), 0);
  EXPECT_TRUE(p->is_initial(a));
  EXPECT_FALSE(p->is_initial(c));
}

TEST(ProtocolBuilder, RejectsOutOfRangeRule) {
  ProtocolBuilder b("t");
  b.add_state("a");
  b.rule(0, 7, 0, 0);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(TableProtocol, ValidatesShape) {
  EXPECT_THROW(TableProtocol("x", {}, {}, {}, {}), std::invalid_argument);
  EXPECT_THROW(TableProtocol("x", {"a"}, {0, 1}, {}, {StatePair{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(TableProtocol("x", {"a"}, {0}, {}, {}), std::invalid_argument);
  EXPECT_THROW(TableProtocol("x", {"a"}, {0}, {3}, {StatePair{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(TableProtocol("x", {"a"}, {0}, {}, {StatePair{0, 5}}),
               std::invalid_argument);
}

TEST(Protocol, PairingIsSymmetric) {
  EXPECT_TRUE(make_pairing_protocol()->is_symmetric());
}

TEST(Protocol, OrIsSymmetric) { EXPECT_TRUE(make_or_protocol()->is_symmetric()); }

TEST(Protocol, LeaderElectionIsNotSymmetric) {
  // delta(L,L) = (L,F) != mirror of itself.
  EXPECT_FALSE(make_leader_election()->is_symmetric());
}

TEST(Protocol, PairingRules) {
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  EXPECT_EQ(p->delta(st.consumer, st.producer),
            (StatePair{st.critical, st.bottom}));
  EXPECT_EQ(p->delta(st.producer, st.consumer),
            (StatePair{st.bottom, st.critical}));
  // Everything else is a no-op.
  EXPECT_TRUE(p->is_noop(st.consumer, st.consumer));
  EXPECT_TRUE(p->is_noop(st.producer, st.producer));
  EXPECT_TRUE(p->is_noop(st.critical, st.producer));
  EXPECT_TRUE(p->is_noop(st.bottom, st.consumer));
}

TEST(ShapeChecks, OrFitsIoShape) {
  // delta(s,r) = (s|r, s|r): the starter's update depends on r, so it is
  // NOT one-way as a table, even though the predicate is IO-computable.
  auto p = make_or_protocol();
  EXPECT_FALSE(fits_it_shape(*p));
}

TEST(ShapeChecks, LoweredOneWayFitsItShape) {
  auto ow = make_it_or_with_beacon();
  auto p = lower_to_two_way(*ow, {0, 1});
  EXPECT_TRUE(fits_it_shape(*p));
  EXPECT_FALSE(fits_io_shape(*p));  // beacon g is not the identity
}

TEST(ShapeChecks, LoweredIoProtocolFitsIoShape) {
  auto ow = make_io_or();
  auto p = lower_to_two_way(*ow, {0, 1});
  EXPECT_TRUE(fits_it_shape(*p));
  EXPECT_TRUE(fits_io_shape(*p));
}

TEST(ShapeChecks, PairingDoesNotFitOneWay) {
  // (c,p) -> (cs, bot): the starter's new state depends on the reactor.
  EXPECT_FALSE(fits_it_shape(*make_pairing_protocol()));
}

TEST(OneWayProtocol, IsIoDetection) {
  EXPECT_TRUE(make_io_or()->is_io());
  EXPECT_TRUE(make_io_max(4)->is_io());
  EXPECT_TRUE(make_io_leader()->is_io());
  EXPECT_FALSE(make_it_or_with_beacon()->is_io());
}

TEST(OneWayProtocol, MaxComputesMax) {
  auto p = make_io_max(5);
  EXPECT_EQ(p->f(3, 1), 3u);
  EXPECT_EQ(p->f(1, 3), 3u);
  EXPECT_EQ(p->g(2), 2u);
}

TEST(Protocol, ExactMajorityCancellation) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  EXPECT_EQ(p->delta(st.big_x, st.big_y), (StatePair{st.x, st.y}));
  EXPECT_EQ(p->delta(st.big_y, st.big_x), (StatePair{st.y, st.x}));
  EXPECT_EQ(p->delta(st.big_x, st.y), (StatePair{st.big_x, st.x}));
  EXPECT_EQ(p->delta(st.big_y, st.x), (StatePair{st.big_y, st.y}));
  EXPECT_TRUE(p->is_noop(st.x, st.y));
}

TEST(Protocol, ApproxMajorityRules) {
  auto p = make_approximate_majority();
  const auto st = approx_majority_states();
  EXPECT_EQ(p->delta(st.x, st.y), (StatePair{st.x, st.b}));
  EXPECT_EQ(p->delta(st.y, st.x), (StatePair{st.y, st.b}));
  EXPECT_EQ(p->delta(st.x, st.b), (StatePair{st.x, st.x}));
  EXPECT_EQ(p->delta(st.y, st.b), (StatePair{st.y, st.y}));
}

}  // namespace
}  // namespace ppfs

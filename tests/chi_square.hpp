// Shared two-sample chi-square homogeneity machinery for the engine
// equivalence tests (batch_equivalence_test, omission_side_test,
// sim_batch_equivalence_test). Header-only on purpose: CMake registers
// every tests/*.cpp as its own ctest binary.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

namespace ppfs::testing {

using Counts = std::vector<std::size_t>;

// Two-sample chi-square homogeneity over outcome categories, pooling rare
// categories (expected count < 5) into one bucket. Returns (stat, df).
inline std::pair<double, std::size_t> chi_square_homogeneity(
    const std::map<Counts, std::size_t>& a, const std::map<Counts, std::size_t>& b,
    std::size_t na, std::size_t nb) {
  // Collect category totals, pool the rare tail.
  std::map<Counts, std::size_t> totals;
  for (const auto& [k, v] : a) totals[k] += v;
  for (const auto& [k, v] : b) totals[k] += v;
  const double n = static_cast<double>(na + nb);
  std::vector<std::array<double, 2>> cells;  // [sample a, sample b] per category
  std::array<double, 2> pooled{0.0, 0.0};
  double pooled_total = 0.0;
  for (const auto& [k, total] : totals) {
    const double oa = a.count(k) ? static_cast<double>(a.at(k)) : 0.0;
    const double ob = b.count(k) ? static_cast<double>(b.at(k)) : 0.0;
    // Expected count in the smaller sample if the distributions agree.
    const double min_expected =
        static_cast<double>(total) * static_cast<double>(std::min(na, nb)) / n;
    if (min_expected < 5.0) {
      pooled[0] += oa;
      pooled[1] += ob;
      pooled_total += static_cast<double>(total);
    } else {
      cells.push_back({oa, ob});
    }
  }
  if (pooled_total > 0.0) cells.push_back(pooled);
  if (cells.size() < 2) return {0.0, 0};  // distributions essentially constant

  double stat = 0.0;
  const double frac_a = static_cast<double>(na) / n;
  const double frac_b = static_cast<double>(nb) / n;
  for (const auto& cell : cells) {
    const double total = cell[0] + cell[1];
    const double ea = total * frac_a;
    const double eb = total * frac_b;
    if (ea > 0.0) stat += (cell[0] - ea) * (cell[0] - ea) / ea;
    if (eb > 0.0) stat += (cell[1] - eb) * (cell[1] - eb) / eb;
  }
  return {stat, cells.size() - 1};
}

// Generous acceptance threshold: mean + 5 sigma of a chi-square with `df`
// degrees of freedom, plus slack for tiny df. With fixed seeds the tests
// are deterministic; the margin is against honest sampling noise, not
// against real distribution mismatches, which blow far past it.
inline double chi_square_limit(std::size_t df) {
  const double d = static_cast<double>(df);
  return d + 5.0 * std::sqrt(2.0 * d) + 8.0;
}

}  // namespace ppfs::testing

// engine=auto correctness: the adaptive engine (AutoSimEngine in
// engine/batch/dispatch.cpp) must realize exactly the distribution of the
// fixed engines it arbitrates between. The representation bridge moves the
// wrapper-state multiset between count space and agent space with zero Rng
// draws, so switching — whether steered by the RegimeMonitor or forced
// mid-run through SimEngineConfig::auto_force_switch_at — must be invisible
// in distribution over the simulated projection. Checked with two-sample
// chi-square homogeneity against the never-switching batch engine, plus
// unit tests of the RegimeMonitor's hysteresis/cooldown discipline.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "chi_square.hpp"
#include "engine/batch/dispatch.hpp"
#include "engine/batch/regime.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sim/sim_rules.hpp"

namespace ppfs {
namespace {

using ppfs::testing::chi_square_homogeneity;
using ppfs::testing::chi_square_limit;
using Counts = ppfs::testing::Counts;
using Space = RegimeMonitor::Space;

// ---------------------------------------------------------------------------
// RegimeMonitor unit behavior
// ---------------------------------------------------------------------------

TEST(RegimeMonitor, FavoredSplitsOnDispersion) {
  EXPECT_EQ(RegimeMonitor::favored(1.0), Space::Agent);
  EXPECT_EQ(RegimeMonitor::favored(0.5), Space::Agent);  // threshold inclusive
  EXPECT_EQ(RegimeMonitor::favored(0.3), Space::Count);
  EXPECT_EQ(RegimeMonitor::favored(0.01), Space::Count);
}

TEST(RegimeMonitor, HysteresisRequiresConsecutiveObservations) {
  RegimeMonitor m(Space::Count);
  // One out-of-band observation is not enough (hysteresis = 2)...
  EXPECT_EQ(m.observe({0.9, 1.0}), Space::Count);
  // ...an in-band one resets the streak...
  EXPECT_EQ(m.observe({0.05, 1.0}), Space::Count);
  EXPECT_EQ(m.observe({0.9, 1.0}), Space::Count);
  // ...and only the second consecutive one switches.
  EXPECT_EQ(m.observe({0.9, 1.0}), Space::Agent);
  EXPECT_EQ(m.switches(), 1u);
}

TEST(RegimeMonitor, CooldownSuppressesImmediateFlapBack) {
  RegimeMonitor m(Space::Count);
  (void)m.observe({0.9, 1.0});
  ASSERT_EQ(m.observe({0.9, 1.0}), Space::Agent);
  // The next `cooldown` observations are ignored even if they argue for
  // count space...
  for (int i = 0; i < m.thresholds().cooldown; ++i)
    EXPECT_EQ(m.observe({0.01, 1.0}), Space::Agent) << "cooldown obs " << i;
  // ...after which a fresh hysteresis streak can flip back.
  EXPECT_EQ(m.observe({0.01, 1.0}), Space::Agent);
  EXPECT_EQ(m.observe({0.01, 1.0}), Space::Count);
  EXPECT_EQ(m.switches(), 2u);
}

TEST(RegimeMonitor, MidBandIsStickyUnlessCacheCollapses) {
  RegimeMonitor sticky(Space::Count);
  // Mid-band dispersion with a healthy cache never argues for a switch.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(sticky.observe({0.3, 0.95}), Space::Count);
  EXPECT_EQ(sticky.switches(), 0u);
  // A collapsed hit rate in the mid band breaks the tie toward agent space.
  RegimeMonitor m(Space::Count);
  EXPECT_EQ(m.observe({0.3, 0.2}), Space::Count);
  EXPECT_EQ(m.observe({0.3, 0.2}), Space::Agent);
  // In agent space the same mid-band signal is in-band (no flap back).
  for (int i = 0; i < 8; ++i) (void)m.observe({0.3, 0.2});
  EXPECT_EQ(m.current(), Space::Agent);
  EXPECT_EQ(m.switches(), 1u);
}

TEST(RegimeMonitor, FireHeavyWindowsOverrideCollapsedDispersion) {
  // A cheap-step source (SID/naming: fire_cost_ratio < 1) concedes
  // fire-heavy windows to agent space even when the universe is fully
  // collapsed — naming's early id-assignment phase runs ~0.2x in count
  // space despite ~3% dispersion.
  RegimeMonitor::Thresholds t;
  t.fire_cost_ratio = 0.25;
  RegimeMonitor m(Space::Count, t);
  EXPECT_EQ(m.observe({0.03, 1.0, 0.9}), Space::Count);  // hysteresis
  EXPECT_EQ(m.observe({0.03, 1.0, 0.9}), Space::Agent);
  // Fires above the ratio also VETO a return to count space...
  for (int i = 0; i < t.cooldown + 4; ++i)
    EXPECT_EQ(m.observe({0.03, 1.0, 0.9}), Space::Agent);
  EXPECT_EQ(m.switches(), 1u);
  // ...and once the run goes no-op-dominated (leapable), collapsed
  // dispersion pulls it back.
  EXPECT_EQ(m.observe({0.03, 1.0, 0.1}), Space::Agent);
  EXPECT_EQ(m.observe({0.03, 1.0, 0.1}), Space::Count);
  EXPECT_EQ(m.switches(), 2u);
  // An expensive-step source (SKnO: ratio > 1) never sees the veto —
  // the same fire-heavy collapsed window stays in count space.
  RegimeMonitor skno(Space::Count);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(skno.observe({0.03, 1.0, 1.0}), Space::Count);
  EXPECT_EQ(skno.switches(), 0u);
}

TEST(RegimeMonitor, MeasuredFireCostReducesToPriorAtWarmCache) {
  // The windowed cost model: a hit costs one cached-fire unit, a miss
  // re-runs the native value step (the source's fire_cost_ratio, now the
  // cold-start PRIOR for the miss cost). With a warm cache the model is
  // exactly the pre-measurement constant one.
  const RegimeMonitor::Thresholds t;  // fire_cost_ratio = 8
  EXPECT_DOUBLE_EQ(RegimeMonitor::measured_fire_cost(1.0, t), 1.0);
  EXPECT_DOUBLE_EQ(RegimeMonitor::measured_fire_cost(0.0, t),
                   1.0 + t.fire_cost_ratio);
  EXPECT_DOUBLE_EQ(RegimeMonitor::measured_fire_cost(0.5, t),
                   1.0 + 0.5 * t.fire_cost_ratio);
}

TEST(RegimeMonitor, MisleadProneRegimeConvergesViaMeasuredCost) {
  // The regression the measured model exists for: an expensive-step
  // source (ratio 8) in a mid-band, fire-heavy window. The static
  // constant model says count space holds (ff 0.95 <= 8, dispersion in
  // band) — but when the window's cache is COLD every fire re-runs the
  // native step on top of the count move, so count space is the wrong
  // face. The measured model (0.95 * (1 + 8) > 8) converges to agent
  // space within hysteresis.
  const RegimeMonitor::Thresholds t;
  RegimeMonitor cold(Space::Count, t);
  const RegimeMonitor::Signals misled{0.3, 0.0, 0.95};
  EXPECT_EQ(cold.observe(misled), Space::Count);  // hysteresis obs 1
  EXPECT_EQ(cold.observe(misled), Space::Agent);  // converged
  EXPECT_EQ(cold.switches(), 1u);
  // Identical window with a warm cache is genuinely count-space-friendly
  // (fires cost one cached unit each) and must NOT switch. This pins
  // backward compatibility: hit_rate = 1 reduces the measured model to
  // the old fire_fraction <= fire_cost_ratio test.
  RegimeMonitor warm(Space::Count, t);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(warm.observe({0.3, 1.0, 0.95}), Space::Count);
  EXPECT_EQ(warm.switches(), 0u);
}

TEST(RegimeMonitor, NoteForcedAdoptsSpaceAndStartsCooldown) {
  RegimeMonitor m(Space::Count);
  m.note_forced(Space::Agent);
  EXPECT_EQ(m.current(), Space::Agent);
  EXPECT_EQ(m.switches(), 1u);
  // The monitor must not immediately fight the forced switch.
  for (int i = 0; i < m.thresholds().cooldown; ++i)
    EXPECT_EQ(m.observe({0.01, 1.0}), Space::Agent);
  EXPECT_EQ(m.observe({0.01, 1.0}), Space::Agent);
  EXPECT_EQ(m.observe({0.01, 1.0}), Space::Count);
}

// ---------------------------------------------------------------------------
// Distribution equivalence: auto vs the fixed batch engine
// ---------------------------------------------------------------------------

// Distribution of (projected counts [, omissions]) after `interactions`
// physical interactions across seeded trials. The engine is driven in
// `chunk`-sized advance() calls so the auto engine re-evaluates the regime
// (and honors auto_force_switch_at) at realistic mid-run boundaries.
std::map<Counts, std::size_t> chunked_distribution(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    const std::vector<State>& initial, const SimEngineConfig& config,
    std::size_t chunk, std::size_t interactions, std::size_t trials,
    std::uint64_t seed) {
  std::map<Counts, std::size_t> dist;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(seed + trial * 7919);
    auto engine = make_sim_engine(kind, protocol, initial, config);
    UniformScheduler sched(initial.size());
    std::size_t done = 0;
    while (done < interactions)
      done += engine->advance(std::min(chunk, interactions - done), sched, rng);
    Counts key = engine->counts();
    if (config.adversary) key.push_back(engine->omissions());
    ++dist[key];
  }
  return dist;
}

void expect_auto_matches_batch(std::shared_ptr<const Protocol> protocol,
                               const std::vector<State>& initial,
                               const SimEngineConfig& auto_config,
                               std::size_t chunk, std::size_t interactions,
                               std::size_t trials, std::uint64_t seed,
                               const std::string& label) {
  SimEngineConfig batch_config = auto_config;
  batch_config.auto_force_switch_at.reset();
  const auto batch =
      chunked_distribution("batch", protocol, initial, batch_config, chunk,
                           interactions, trials, seed);
  const auto adaptive =
      chunked_distribution("auto", protocol, initial, auto_config, chunk,
                           interactions, trials, seed + 1);
  const auto [stat, df] = chi_square_homogeneity(batch, adaptive, trials, trials);
  EXPECT_LE(stat, chi_square_limit(df))
      << label << ": chi2=" << stat << " df=" << df;
}

SimEngineConfig spec_config(const std::string& spec,
                            std::optional<AdversaryParams> adversary = {}) {
  SimEngineConfig config;
  config.spec = parse_sim_spec(spec);
  config.adversary = adversary;
  return config;
}

TEST(AutoEngine, SidMatchesBatch) {
  // SID starts fully dispersed (every agent a distinct wrapper), so auto
  // runs the whole workload in agent space — the row that was 0.019x in
  // count space. The projected distribution must still match batch exactly.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];  // exact-majority
  expect_auto_matches_batch(w.protocol, w.initial, spec_config("sid"), n,
                            12 * n, 120, 4101, "auto/sid");
}

TEST(AutoEngine, NamingMatchesBatch) {
  // Naming starts collapsed (everyone my_id = 1) and disperses as ids
  // spread: the natural count -> agent mid-run switch path.
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[3];
  expect_auto_matches_batch(w.protocol, w.initial, spec_config("naming"), n,
                            16 * n, 120, 4201, "auto/naming");
}

TEST(AutoEngine, SknoMatchesBatch) {
  const std::size_t n = 8;
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  std::vector<State> init(n, st.consumer);
  init[0] = init[1] = init[2] = st.producer;
  expect_auto_matches_batch(p, init, spec_config("skno:o=1"), n, 10 * n, 120,
                            4301, "auto/skno");
}

TEST(AutoEngine, SknoUnderAdversaryMatchesBatch) {
  // With an adversary the auto engine locks its start representation (the
  // omission process's burst/budget state does not transfer); the omission
  // stream is appended to the category so it must match too.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];
  AdversaryParams adv;
  adv.kind = AdversaryKind::Budget;
  adv.max_omissions = 2;
  adv.rate = 0.2;
  expect_auto_matches_batch(w.protocol, w.initial,
                            spec_config("skno:o=2", adv), n, 8 * n, 120, 4401,
                            "auto/skno+budget");
}

TEST(AutoEngine, SidUnderAdversaryMatchesBatch) {
  // Agent-space-locked adversary path: SID starts dispersed so auto locks
  // agent space and owns the OmissionProcess directly.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[0];  // or
  AdversaryParams adv;
  adv.kind = AdversaryKind::UO;
  adv.rate = 0.25;
  expect_auto_matches_batch(w.protocol, w.initial, spec_config("sid", adv), n,
                            8 * n, 120, 4501, "auto/sid+uo");
}

TEST(AutoEngine, ForcedMidRunSwitchMatchesBatch) {
  // The tentpole invariant, ctest-enforced: force one representation
  // switch at a deterministic mid-run boundary (both directions) and pin
  // the bridge distribution-exact against the never-switching engine.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];
  // SID starts in agent space -> forced agent -> count switch.
  SimEngineConfig sid = spec_config("sid");
  sid.auto_force_switch_at = 6 * n;
  expect_auto_matches_batch(w.protocol, w.initial, sid, n, 12 * n, 120, 4601,
                            "auto/sid forced agent->count");
  // Naming starts in count space -> forced count -> agent switch.
  const Workload wn = standard_workloads(6)[3];
  SimEngineConfig naming = spec_config("naming");
  naming.auto_force_switch_at = 5 * 6;
  expect_auto_matches_batch(wn.protocol, wn.initial, naming, 6, 12 * 6, 120,
                            4701, "auto/naming forced count->agent");
}

// ---------------------------------------------------------------------------
// Engine facade behavior
// ---------------------------------------------------------------------------

TEST(AutoEngine, ReportsActiveKindAndSwitchGauges) {
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];
  UniformScheduler sched(n);
  Rng rng(4801);
  // SID: dispersion 1.0 from step 0 — agent space immediately, no switch.
  auto sid = make_sim_engine("auto", w.protocol, w.initial, spec_config("sid"));
  EXPECT_EQ(sid->kind(), "auto");
  EXPECT_EQ(sid->active_kind(), "agent");
  (void)sid->advance(4 * n, sched, rng);
  EXPECT_EQ(sid->active_kind(), "agent");
  sid->sync_metrics();
  EXPECT_EQ(sid->metrics()->gauge("auto.agent_space").value(), 1.0);

  // A forced switch is visible through active_kind() and the gauge.
  SimEngineConfig forced = spec_config("sid");
  forced.auto_force_switch_at = 2 * n;
  auto sw = make_sim_engine("auto", w.protocol, w.initial, forced);
  EXPECT_EQ(sw->active_kind(), "agent");
  std::size_t done = 0;
  while (done < 4 * n) done += sw->advance(n, sched, rng);
  EXPECT_EQ(sw->active_kind(), "count");
  sw->sync_metrics();
  EXPECT_EQ(sw->metrics()->gauge("auto.switches").value(), 1.0);
  // Interactions and fires keep accumulating across the switch in the
  // master stats record.
  EXPECT_EQ(sw->interactions(), done);
  EXPECT_EQ(sw->stats().total_fires() + sw->stats().noops(), done);
}

TEST(AutoEngine, NamingSwitchesToAgentSpaceMidRun) {
  // Deterministic-seed pin of the natural regime trajectory: naming at
  // small n disperses past the to_agent threshold as ids spread, and the
  // monitor (hysteresis 2) must take the count -> agent switch unforced.
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[3];
  auto engine = make_sim_engine("auto", w.protocol, w.initial,
                                spec_config("naming"));
  EXPECT_EQ(engine->active_kind(), "count");
  UniformScheduler sched(n);
  Rng rng(4901);
  std::size_t done = 0;
  while (done < 40 * n) done += engine->advance(n, sched, rng);
  EXPECT_EQ(engine->active_kind(), "agent");
  engine->sync_metrics();
  EXPECT_GE(engine->metrics()->gauge("auto.switches").value(), 1.0);
}

TEST(AutoEngine, ClosedUniverseAutoArbitratesLeapAndRound) {
  // Closed protocols have no dispersion to monitor, but they do have a
  // fire-density regime: make_engine("auto", ...) is the adaptive batch
  // engine, running the count-leap or round-dense face over one
  // BatchSystem.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];
  auto engine = make_engine("auto", w.protocol, w.initial);
  EXPECT_EQ(engine->kind(), "auto");
  EXPECT_TRUE(engine->active_kind() == "leap" ||
              engine->active_kind() == "round");
  const auto& kinds = engine_kinds();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "auto"), kinds.end());
}

}  // namespace
}  // namespace ppfs

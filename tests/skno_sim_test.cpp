// Property / integration tests for SKnO (Theorem 4.1): under I3/I4 with at
// most o omissions (UO-style adversary within the budget), every workload
// converges to its two-way verdict, the event log admits a perfect
// matching with a valid derived execution, and the token-conservation law
// holds throughout.
#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "sim/skno.hpp"
#include "verify/matching.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

struct Param {
  Model model;
  std::size_t o;
  std::size_t n;
  std::uint64_t seed;
};

class SknoSweep : public ::testing::TestWithParam<Param> {};

void check_conservation(const SknoSimulator& sim) {
  const auto& s = sim.stats();
  const std::size_t expected =
      (s.runs_generated - s.change_runs_consumed - s.cancels) *
          (sim.omission_bound() + 1) +
      s.jokers_minted - s.tokens_killed;
  ASSERT_EQ(sim.total_live_tokens(), expected);
  ASSERT_LE(sim.live_jokers(), s.jokers_minted + s.debt_conversions);
}

TEST_P(SknoSweep, SimulatesWorkloadsUnderBudgetedOmissions) {
  const auto [model, o, n, seed] = GetParam();
  for (const Workload& w : core_workloads(n)) {
    SknoSimulator sim(w.protocol, model, o, w.initial);

    AdversaryParams ap;
    ap.kind = AdversaryKind::Budget;
    ap.rate = 0.05;
    ap.max_omissions = o;  // the knowledge-of-omissions assumption
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(seed);

    auto counts_probe = workload_counts_probe(w);
    auto probe = [&](const SknoSimulator& s) {
      std::vector<std::size_t> counts(w.protocol->num_states(), 0);
      for (State q : s.projection()) ++counts[q];
      return counts_probe(counts, *w.protocol);
    };
    RunOptions opt;
    opt.max_steps = 600'000 + 20'000 * n * (o + 1);
    const auto res = run_until(sim, sched, rng, probe, opt);
    EXPECT_TRUE(res.converged)
        << sim.describe() << " on " << w.name << " (" << res.steps << " steps, "
        << res.omissions << " omissions)";
    check_conservation(sim);

    const auto rep = verify_simulation(sim, 4 * n);
    EXPECT_TRUE(rep.ok) << sim.describe() << " on " << w.name << ": pairs="
                        << rep.pairs << " unmatched=" << rep.unmatched
                        << (rep.errors.empty() ? "" : " | " + rep.errors[0]);
    EXPECT_GT(rep.pairs, 0u) << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SknoSweep,
    ::testing::Values(Param{Model::I3, 0, 4, 101}, Param{Model::I3, 1, 4, 102},
                      Param{Model::I3, 2, 6, 103}, Param{Model::I3, 3, 8, 104},
                      Param{Model::I3, 1, 12, 105}, Param{Model::I4, 1, 4, 106},
                      Param{Model::I4, 2, 6, 107}, Param{Model::I4, 1, 12, 108},
                      Param{Model::IT, 0, 8, 109}, Param{Model::IT, 0, 16, 110}));

TEST(SknoSim, PairingSafetyHoldsUnderBudget) {
  // Random budget-o adversaries must never break Pair's safety; sweep
  // several seeds and omission placements.
  const std::size_t n = 8, o = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Workload w = core_workloads(n)[3];  // pairing
    ASSERT_NE(w.name.find("pairing"), std::string::npos);
    SknoSimulator sim(w.protocol, Model::I3, o, w.initial);
    PairingMonitor mon(sim.projection());

    AdversaryParams ap;
    ap.kind = AdversaryKind::Budget;
    ap.rate = 0.2;
    ap.max_omissions = o;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(seed);
    for (std::size_t i = 0; i < 30'000; ++i) {
      sim.interact(sched.next(rng, i));
      if (i % 16 == 0) mon.observe(sim.projection());
    }
    mon.observe(sim.projection());
    EXPECT_FALSE(mon.safety_violated()) << "seed " << seed;
    EXPECT_FALSE(mon.irrevocability_violated()) << "seed " << seed;
  }
}

TEST(SknoSim, TargetedAdversaryWithinBudgetIsHarmless) {
  // Adversary always aims at the same producer's transmissions.
  const std::size_t n = 6, o = 3;
  const Workload w = core_workloads(n)[3];
  SknoSimulator sim(w.protocol, Model::I3, o, w.initial);
  PairingMonitor mon(sim.projection());

  AdversaryParams ap;
  ap.kind = AdversaryKind::Budget;
  ap.rate = 0.3;
  ap.max_omissions = o;
  OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
  sched.set_victim_picker([](Rng&, std::size_t) { return Interaction{0, 1, false}; });
  Rng rng(7);
  for (std::size_t i = 0; i < 40'000; ++i) {
    sim.interact(sched.next(rng, i));
    if (i % 32 == 0) mon.observe(sim.projection());
  }
  mon.observe(sim.projection());
  EXPECT_FALSE(mon.safety_violated());
  EXPECT_TRUE(mon.target_reached());  // liveness despite targeting
}

TEST(SknoSim, DerivedRunMatchesNativeSemantics) {
  // Replay the sequentialized derived execution natively (Definition 4
  // made executable): every paired step must apply delta to the correct
  // current states; lone halves of still-open transactions are applied as
  // state patches, also checked against the current state.
  const std::size_t n = 6;
  const Workload w = core_workloads(n)[1];  // exact majority
  SknoSimulator sim(w.protocol, Model::I3, 1, w.initial);
  UniformScheduler sched(n);
  Rng rng(31);
  for (std::size_t i = 0; i < 50'000; ++i) sim.interact(sched.next(rng, i));

  const auto rep = verify_simulation(sim, 4 * n);
  ASSERT_TRUE(rep.ok) << "pairs=" << rep.pairs << " unmatched=" << rep.unmatched
                      << " chain=" << rep.chain_errors
                      << (rep.errors.empty() ? "" : " | " + rep.errors[0]);
  ASSERT_GT(rep.derived_run.size(), 0u);
  // The large majority of pairs must sequentialize (self-keyed
  // transactions and overlapping ones fall back to open halves).
  EXPECT_GE(rep.linearized_pairs * 5, rep.pairs * 4)
      << rep.linearized_pairs << " of " << rep.pairs;
  Population ref(w.protocol, w.initial);
  std::size_t applied_pairs = 0;
  for (const DerivedElement& el : rep.derived_seq) {
    if (el.is_pair) {
      ASSERT_EQ(ref.state(el.step.starter), el.step.qs);
      ASSERT_EQ(ref.state(el.step.reactor), el.step.qr);
      ref.interact(el.step.starter, el.step.reactor);
      ++applied_pairs;
    } else {
      ASSERT_EQ(ref.state(el.agent), el.before);
      ref.set_state(el.agent, el.after);
    }
  }
  EXPECT_EQ(applied_pairs, rep.linearized_pairs);
  // The replayed configuration agrees with the simulator's projection.
  EXPECT_EQ(ref.states(), sim.projection());
}

TEST(SknoSim, QueueGrowthStaysModest) {
  // The Theorem 4.1 memory bound is per-token-type counters; empirically
  // the max queue should stay far below n * (o+1) under fair scheduling.
  const std::size_t n = 24, o = 1;
  const Workload w = core_workloads(n)[0];  // or-epidemic
  SknoSimulator sim(w.protocol, Model::I3, o, w.initial);
  UniformScheduler sched(n);
  Rng rng(17);
  for (std::size_t i = 0; i < 200'000; ++i) sim.interact(sched.next(rng, i));
  EXPECT_LT(sim.stats().max_queue, n * (o + 1) * 2);
}

}  // namespace
}  // namespace ppfs

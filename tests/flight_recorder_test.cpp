// Flight-recorder tests: cadence/delta-encoding unit checks, the
// attach-is-invisible invariant (a metrics-on run follows the exact
// trajectory of a metrics-off run), and the headline determinism property
// — sweep timelines are bit-identical no matter how many worker threads
// executed the replicas.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <string>

#include "engine/batch/dispatch.hpp"
#include "exp/replica_runner.hpp"
#include "exp/scenario.hpp"
#include "protocols/logic.hpp"

namespace ppfs {
namespace {

using obs::ConfigSummary;
using obs::FlightRecorder;
using obs::FlightRecorderOptions;
using obs::MetricRegistry;

TEST(FlightRecorder, CadenceAdvancesToNextMultipleOfEvery) {
  FlightRecorder rec({.every = 100, .top_k = 2});
  EXPECT_FALSE(rec.due(0));
  EXPECT_FALSE(rec.due(99));
  EXPECT_TRUE(rec.due(100));

  // Snapshots land at slice boundaries, possibly past the due point; the
  // next due point is the following multiple of `every`.
  MetricRegistry reg;
  ConfigSummary s;
  s.interactions = 130;
  rec.record(reg, s);
  EXPECT_EQ(rec.snapshots(), 1u);
  EXPECT_FALSE(rec.due(199));
  EXPECT_TRUE(rec.due(200));

  // every = 0 degrades to every-interaction rather than dividing by zero.
  FlightRecorder each({.every = 0});
  EXPECT_TRUE(each.due(1));
}

TEST(FlightRecorder, DeltaEncodesAndOmitsUnchangedMetrics) {
  MetricRegistry reg;
  reg.counter("fires").add(5);
  reg.counter("steady").add(1);
  reg.gauge("live").set(3.0);
  reg.histogram("leap").record(6);  // bucket [4,8)

  FlightRecorder rec({.every = 10, .top_k = 4});
  ConfigSummary s;
  s.interactions = 10;
  s.distinct_states = 2;
  s.top_counts = {{"one", 7}, {"zero", 3}};
  rec.record(reg, s);

  reg.counter("fires").add(3);  // "steady" and the gauge stay put
  reg.histogram("leap").record(6);
  s.interactions = 20;
  s.distinct_states = 3;
  rec.record(reg, s);

  ASSERT_EQ(rec.snapshots(), 2u);
  const std::string& first = rec.lines()[0];
  EXPECT_NE(first.find("\"i\":10"), std::string::npos);
  EXPECT_NE(first.find("\"fires\":5"), std::string::npos);
  EXPECT_NE(first.find("\"steady\":1"), std::string::npos);
  EXPECT_NE(first.find("\"live\":3"), std::string::npos);
  EXPECT_NE(first.find("[\"one\",7]"), std::string::npos);
  EXPECT_NE(first.find("\"leap\":[[4,1]]"), std::string::npos);

  const std::string& second = rec.lines()[1];
  EXPECT_NE(second.find("\"di\":10"), std::string::npos);
  EXPECT_NE(second.find("\"fires\":3"), std::string::npos);  // delta, not 8
  EXPECT_EQ(second.find("\"steady\""), std::string::npos);   // unchanged
  EXPECT_EQ(second.find("\"live\""), std::string::npos);     // unchanged
  EXPECT_NE(second.find("\"leap\":[[4,1]]"), std::string::npos);
  // No wall-clock section unless include_timings was requested.
  EXPECT_EQ(second.find("\"wall\""), std::string::npos);
}

TEST(FlightRecorder, TruncatesTopCountsToTopK) {
  FlightRecorder rec({.every = 1, .top_k = 2});
  MetricRegistry reg;
  ConfigSummary s;
  s.interactions = 1;
  s.top_counts = {{"a", 9}, {"b", 5}, {"c", 2}, {"d", 1}};
  rec.record(reg, s);
  const std::string& line = rec.lines()[0];
  EXPECT_NE(line.find("[\"a\",9]"), std::string::npos);
  EXPECT_NE(line.find("[\"b\",5]"), std::string::npos);
  EXPECT_EQ(line.find("\"c\""), std::string::npos);
}

TEST(Engine, MetricsAreOptInAndIdempotent) {
  auto engine = make_engine("batch", make_or_protocol(), {1, 0, 0, 0});
  EXPECT_EQ(engine->metrics(), nullptr);  // detached by default
  obs::MetricRegistry& reg = engine->enable_metrics();
  EXPECT_EQ(engine->metrics(), &reg);
  // Second call returns the same registry — wiring happens once.
  EXPECT_EQ(&engine->enable_metrics(), &reg);
  engine->sync_metrics();
  EXPECT_EQ(reg.counter("run.interactions").value(), 0u);
}

TEST(Engine, AttachedMetricsDoNotChangeTheTrajectory) {
  // The instrumentation contract: hooks never consume Rng draws and
  // snapshots only happen at existing slice boundaries, so a metrics-on
  // replica is bit-identical to a metrics-off one.
  exp::ScenarioGrid grid;
  grid.workloads = {"exact-majority"};
  grid.sizes = {128};
  grid.trials = 3;
  grid.seed = 20260808;

  exp::ScenarioGrid instrumented = grid;
  instrumented.metrics_every = 256;

  const exp::Report plain = exp::ReplicaRunner().run_grid(grid);
  const exp::Report traced = exp::ReplicaRunner().run_grid(instrumented);
  ASSERT_EQ(plain.rows().size(), traced.rows().size());
  for (std::size_t p = 0; p < plain.rows().size(); ++p) {
    const auto& a = plain.rows()[p].replicas;
    const auto& b = traced.rows()[p].replicas;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
      EXPECT_EQ(a[t].run.steps, b[t].run.steps);
      EXPECT_EQ(a[t].run.converged, b[t].run.converged);
      EXPECT_EQ(a[t].fires, b[t].fires);
      EXPECT_EQ(a[t].noops, b[t].noops);
      EXPECT_TRUE(a[t].flight.empty());
      EXPECT_FALSE(b[t].flight.empty());
    }
  }
}

TEST(FlightRecorder, SweepTimelinesAreThreadCountInvariant) {
  // The ISSUE acceptance check: a 2-axis grid swept at --threads=1 and
  // --threads=4 must produce byte-identical concatenated timelines
  // (replicas carry their own recorders; collection is in trial order).
  exp::ScenarioGrid grid;
  grid.workloads = {"or", "exact-majority"};
  grid.sizes = {64, 128};
  grid.trials = 2;
  grid.seed = 7;
  grid.metrics_every = 512;

  auto timelines = [&grid](std::size_t threads) {
    exp::RunnerOptions opt;
    opt.threads = threads;
    const exp::Report rep = exp::ReplicaRunner(opt).run_grid(grid);
    std::string all;
    for (const auto& row : rep.rows()) {
      for (std::size_t t = 0; t < row.replicas.size(); ++t) {
        all += row.spec.point_key() + "#" + std::to_string(t) + "\n";
        all += row.replicas[t].flight;
      }
    }
    return all;
  };

  const std::string serial = timelines(1);
  const std::string parallel = timelines(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);

  // The m.* extras ride the same guarantee.
  const exp::Report rep = exp::ReplicaRunner().run_grid(grid);
  for (const auto& row : rep.rows())
    for (const auto& r : row.replicas)
      EXPECT_TRUE(r.extras.count("m.run.interactions"));
}

}  // namespace
}  // namespace ppfs

#include "core/models.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ppfs {
namespace {

TEST(ModelNames, AllDistinct) {
  std::set<std::string> names;
  for (Model m : kAllModels) names.insert(model_name(m));
  EXPECT_EQ(names.size(), kAllModels.size());
}

TEST(ModelCaps, TwoWayVsOneWay) {
  for (Model m : {Model::TW, Model::T1, Model::T2, Model::T3})
    EXPECT_FALSE(model_caps(m).one_way) << model_name(m);
  for (Model m : {Model::IT, Model::IO, Model::I1, Model::I2, Model::I3, Model::I4})
    EXPECT_TRUE(model_caps(m).one_way) << model_name(m);
}

TEST(ModelCaps, OmissiveModels) {
  for (Model m : {Model::TW, Model::IT, Model::IO})
    EXPECT_FALSE(is_omissive(m)) << model_name(m);
  for (Model m :
       {Model::T1, Model::T2, Model::T3, Model::I1, Model::I2, Model::I3, Model::I4})
    EXPECT_TRUE(is_omissive(m)) << model_name(m);
}

TEST(ModelCaps, DetectionMatrix) {
  // Starter-side omission detection: T2, T3 (o free) and I4.
  EXPECT_TRUE(model_caps(Model::T2).starter_detects_omission);
  EXPECT_TRUE(model_caps(Model::T3).starter_detects_omission);
  EXPECT_TRUE(model_caps(Model::I4).starter_detects_omission);
  EXPECT_FALSE(model_caps(Model::T1).starter_detects_omission);
  EXPECT_FALSE(model_caps(Model::I1).starter_detects_omission);
  EXPECT_FALSE(model_caps(Model::I2).starter_detects_omission);
  EXPECT_FALSE(model_caps(Model::I3).starter_detects_omission);
  // Reactor-side omission detection: T3 and I3 only.
  EXPECT_TRUE(model_caps(Model::T3).reactor_detects_omission);
  EXPECT_TRUE(model_caps(Model::I3).reactor_detects_omission);
  EXPECT_FALSE(model_caps(Model::T1).reactor_detects_omission);
  EXPECT_FALSE(model_caps(Model::T2).reactor_detects_omission);
  EXPECT_FALSE(model_caps(Model::I1).reactor_detects_omission);
  EXPECT_FALSE(model_caps(Model::I2).reactor_detects_omission);
  EXPECT_FALSE(model_caps(Model::I4).reactor_detects_omission);
}

TEST(ModelCaps, IoStarterNeverActs) {
  EXPECT_FALSE(model_caps(Model::IO).starter_acts);
  for (Model m : kAllModels) {
    if (m == Model::IO) continue;
    EXPECT_TRUE(model_caps(m).starter_acts) << model_name(m);
  }
}

TEST(ModelCaps, I1ReactorMissesOmissions) {
  EXPECT_FALSE(model_caps(Model::I1).reactor_acts_on_omission);
  for (Model m : {Model::I2, Model::I3, Model::I4, Model::T1, Model::T2, Model::T3})
    EXPECT_TRUE(model_caps(m).reactor_acts_on_omission) << model_name(m);
}

TEST(ModelCaps, GOnOmission) {
  EXPECT_TRUE(model_caps(Model::I2).reactor_applies_g_on_omission);
  EXPECT_TRUE(model_caps(Model::I4).reactor_applies_g_on_omission);
  EXPECT_FALSE(model_caps(Model::I3).reactor_applies_g_on_omission);
}

TEST(ModelArrows, CoversExpectedEdges) {
  const auto& arrows = model_arrows();
  auto has = [&](Model s, Model d) {
    for (const auto& a : arrows)
      if (a.src == s && a.dst == d) return true;
    return false;
  };
  EXPECT_TRUE(has(Model::T1, Model::T2));
  EXPECT_TRUE(has(Model::T2, Model::T3));
  EXPECT_TRUE(has(Model::T3, Model::TW));
  EXPECT_TRUE(has(Model::IT, Model::TW));
  EXPECT_TRUE(has(Model::IO, Model::IT));
  EXPECT_TRUE(has(Model::I1, Model::I3));
  EXPECT_TRUE(has(Model::I2, Model::I3));
  EXPECT_TRUE(has(Model::I2, Model::I4));
  EXPECT_TRUE(has(Model::I3, Model::T3));
  EXPECT_TRUE(has(Model::I3, Model::IT));
  EXPECT_TRUE(has(Model::I4, Model::IT));
  EXPECT_TRUE(has(Model::IO, Model::I1));
  EXPECT_TRUE(has(Model::IO, Model::I2));
  EXPECT_TRUE(has(Model::IO, Model::I3));
  EXPECT_TRUE(has(Model::IO, Model::I4));
}

TEST(ModelArrows, NoticesHaveText) {
  for (const auto& a : model_arrows()) {
    EXPECT_NE(a.note, nullptr);
    EXPECT_GT(std::string(a.note).size(), 4u);
  }
}

// Every recorded arrow must verify mechanically on sampled functions.
class ArrowVerify : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArrowVerify, AllArrowsHold) {
  const std::size_t q = GetParam();
  for (const auto& a : model_arrows()) {
    EXPECT_TRUE(verify_arrow(a, q, /*samples=*/30, /*seed=*/1234 + q))
        << model_name(a.src) << " -> " << model_name(a.dst) << " (" << a.note << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(StateSpaces, ArrowVerify, ::testing::Values(2, 3, 4, 5));

TEST(ArrowReasons, NamesExist) {
  EXPECT_EQ(arrow_reason_name(ArrowReason::Specialization), "specialization");
  EXPECT_EQ(arrow_reason_name(ArrowReason::OmissionAvoidance), "omission-avoidance");
  EXPECT_EQ(arrow_reason_name(ArrowReason::NoOpOmissions), "no-op omissions");
}

}  // namespace
}  // namespace ppfs

// RuleMatrix: one compiled encoding of the transition relations of
// §2.2–2.3, checked class by class against the definitions, plus the
// ModelCaps validation of the designer omission-reaction functions.
#include "core/rule_matrix.hpp"

#include <gtest/gtest.h>

#include "engine/native.hpp"
#include "protocols/majority.hpp"
#include "protocols/oneway.hpp"
#include "test_protocol_gen.hpp"

namespace ppfs {
namespace {

using ppfs::testing::as_fn;
using ppfs::testing::random_one_way_protocol;
using ppfs::testing::random_protocol;
using ppfs::testing::random_unary;

TEST(RuleMatrix, TwRealEqualsDeltaAndRejectsOmissions) {
  auto p = make_exact_majority();
  const RuleMatrix m = RuleMatrix::compile(p, Model::TW);
  EXPECT_EQ(m.model(), Model::TW);
  EXPECT_FALSE(m.omissive());
  for (State s = 0; s < p->num_states(); ++s)
    for (State r = 0; r < p->num_states(); ++r)
      EXPECT_EQ(m.outcome(InteractionClass::Real, s, r), p->delta(s, r));
  EXPECT_THROW((void)m.classify(Interaction{0, 1, true}), std::invalid_argument);
  EXPECT_EQ(m.classify(Interaction{0, 1, false}), InteractionClass::Real);
}

TEST(RuleMatrix, TwoWayOmissiveClassesMatchTheTRelations) {
  Rng meta(11);
  const std::size_t q = 4;
  auto p = random_protocol(q, meta);
  const auto o = random_unary(q, meta);
  const auto h = random_unary(q, meta);

  // T1: o = h = id by definition (the caps reject supplying them).
  const RuleMatrix t1 = RuleMatrix::compile(p, Model::T1);
  // T2: free o, h = id.
  const RuleMatrix t2 = RuleMatrix::compile(p, Model::T2, {as_fn(o), nullptr});
  // T3: free o and h.
  const RuleMatrix t3 = RuleMatrix::compile(p, Model::T3, {as_fn(o), as_fn(h)});

  for (State s = 0; s < q; ++s) {
    for (State r = 0; r < q; ++r) {
      const StatePair d = p->delta(s, r);
      // T1: {(fs,fr), (s,fr), (fs,r), (s,r)}.
      EXPECT_EQ(t1.outcome(InteractionClass::Real, s, r), d);
      EXPECT_EQ(t1.outcome(InteractionClass::OmitStarter, s, r),
                (StatePair{s, d.reactor}));
      EXPECT_EQ(t1.outcome(InteractionClass::OmitReactor, s, r),
                (StatePair{d.starter, r}));
      EXPECT_EQ(t1.outcome(InteractionClass::OmitBoth, s, r), (StatePair{s, r}));
      // T2: {(fs,fr), (o,fr), (fs,r), (o,r)}.
      EXPECT_EQ(t2.outcome(InteractionClass::OmitStarter, s, r),
                (StatePair{o[s], d.reactor}));
      EXPECT_EQ(t2.outcome(InteractionClass::OmitReactor, s, r),
                (StatePair{d.starter, r}));
      EXPECT_EQ(t2.outcome(InteractionClass::OmitBoth, s, r),
                (StatePair{o[s], r}));
      // T3: {(fs,fr), (o,fr), (fs,h), (o,h)}.
      EXPECT_EQ(t3.outcome(InteractionClass::OmitStarter, s, r),
                (StatePair{o[s], d.reactor}));
      EXPECT_EQ(t3.outcome(InteractionClass::OmitReactor, s, r),
                (StatePair{d.starter, h[r]}));
      EXPECT_EQ(t3.outcome(InteractionClass::OmitBoth, s, r),
                (StatePair{o[s], h[r]}));
    }
  }

  // Side classification for two-way models.
  EXPECT_EQ(t3.classify(Interaction{0, 1, true, OmitSide::Starter}),
            InteractionClass::OmitStarter);
  EXPECT_EQ(t3.classify(Interaction{0, 1, true, OmitSide::Reactor}),
            InteractionClass::OmitReactor);
  EXPECT_EQ(t3.classify(Interaction{0, 1, true, OmitSide::Both}),
            InteractionClass::OmitBoth);
}

TEST(RuleMatrix, OneWayOmissiveClassesMatchTheIRelations) {
  Rng meta(12);
  const std::size_t q = 5;
  auto p = random_one_way_protocol(q, meta, /*io=*/false);
  const auto o = random_unary(q, meta);
  const auto h = random_unary(q, meta);
  std::vector<State> init(6, 0);

  const RuleMatrix i1 = RuleMatrix::compile(p, Model::I1, init);
  const RuleMatrix i2 = RuleMatrix::compile(p, Model::I2, init);
  const RuleMatrix i3 = RuleMatrix::compile(p, Model::I3, init, {nullptr, as_fn(h)});
  const RuleMatrix i4 = RuleMatrix::compile(p, Model::I4, init, {as_fn(o), nullptr});

  for (State s = 0; s < q; ++s) {
    for (State r = 0; r < q; ++r) {
      const StatePair real{p->g(s), p->f(s, r)};
      for (const RuleMatrix* m : {&i1, &i2, &i3, &i4})
        EXPECT_EQ(m->outcome(InteractionClass::Real, s, r), real);
      EXPECT_EQ(i1.outcome(InteractionClass::OmitBoth, s, r),
                (StatePair{p->g(s), r}));
      EXPECT_EQ(i2.outcome(InteractionClass::OmitBoth, s, r),
                (StatePair{p->g(s), p->g(r)}));
      EXPECT_EQ(i3.outcome(InteractionClass::OmitBoth, s, r),
                (StatePair{p->g(s), h[r]}));
      EXPECT_EQ(i4.outcome(InteractionClass::OmitBoth, s, r),
                (StatePair{o[s], p->g(r)}));
      // One-way models have no side distinction.
      for (const OmitSide side :
           {OmitSide::Both, OmitSide::Starter, OmitSide::Reactor}) {
        EXPECT_EQ(i3.classify(Interaction{0, 1, true, side}),
                  InteractionClass::OmitBoth);
      }
    }
  }
}

TEST(RuleMatrix, CapsValidationRejectsUnusableFns) {
  Rng meta(13);
  auto p2 = random_protocol(3, meta);
  auto p1 = random_one_way_protocol(3, meta, /*io=*/false);
  const auto id = [](State s) { return s; };
  std::vector<State> init(4, 0);

  // T1 detects nothing; T2 has no reactor detection.
  EXPECT_THROW((void)RuleMatrix::compile(p2, Model::T1, {id, nullptr}),
               std::invalid_argument);
  EXPECT_THROW((void)RuleMatrix::compile(p2, Model::T1, {nullptr, id}),
               std::invalid_argument);
  EXPECT_THROW((void)RuleMatrix::compile(p2, Model::T2, {nullptr, id}),
               std::invalid_argument);
  // I1/I2 detect nothing; I3 has no starter detection; I4 no reactor one.
  for (Model m : {Model::I1, Model::I2, Model::I3})
    EXPECT_THROW((void)RuleMatrix::compile(p1, m, init, {id, nullptr}),
                 std::invalid_argument);
  for (Model m : {Model::I1, Model::I2, Model::I4})
    EXPECT_THROW((void)RuleMatrix::compile(p1, m, init, {nullptr, id}),
                 std::invalid_argument);
  // The capable models accept them.
  EXPECT_NO_THROW((void)RuleMatrix::compile(p2, Model::T3, {id, id}));
  EXPECT_NO_THROW((void)RuleMatrix::compile(p1, Model::I3, init, {nullptr, id}));
  EXPECT_NO_THROW((void)RuleMatrix::compile(p1, Model::I4, init, {id, nullptr}));
}

TEST(RuleMatrix, OneWayModelsRequireTheItShape) {
  // Exact majority mutates the starter depending on the reactor: no IT
  // shape, so one-way models reject it...
  EXPECT_THROW((void)RuleMatrix::compile(make_exact_majority(), Model::IT),
               std::invalid_argument);
  // ...while an IT-shaped two-way lowering compiles and matches (g, f).
  auto ow = make_it_or_with_beacon();
  auto lowered = lower_to_two_way(*ow, {0});
  const RuleMatrix m = RuleMatrix::compile(lowered, Model::IT);
  for (State s = 0; s < ow->num_states(); ++s)
    for (State r = 0; r < ow->num_states(); ++r)
      EXPECT_EQ(m.outcome(InteractionClass::Real, s, r),
                (StatePair{ow->g(s), ow->f(s, r)}));
  // IO additionally requires g = id.
  EXPECT_THROW((void)RuleMatrix::compile(lowered, Model::IO),
               std::invalid_argument);
  EXPECT_THROW((void)RuleMatrix::compile(ow, Model::IO, {0}),
               std::invalid_argument);
  // A one-way protocol cannot run under a two-way model directly.
  EXPECT_THROW((void)RuleMatrix::compile(ow, Model::TW, {0}),
               std::invalid_argument);
}

TEST(RuleMatrix, OmissiveClosureLiftsNonOmissiveModels) {
  EXPECT_EQ(omissive_closure(Model::TW), Model::T1);
  EXPECT_EQ(omissive_closure(Model::IT), Model::I1);
  EXPECT_EQ(omissive_closure(Model::IO), Model::I1);
  for (Model m : {Model::T1, Model::T2, Model::T3, Model::I1, Model::I2,
                  Model::I3, Model::I4})
    EXPECT_EQ(omissive_closure(m), m);
  // The lift makes omissions executable and harmless for IO protocols:
  // I1 with g = id has only no-op omissive outcomes.
  auto p = make_io_or();
  const RuleMatrix m =
      RuleMatrix::compile(p, omissive_closure(Model::IO), {0, 1});
  for (State s = 0; s < p->num_states(); ++s)
    for (State r = 0; r < p->num_states(); ++r)
      EXPECT_TRUE(m.is_noop(InteractionClass::OmitBoth, s, r));
}

TEST(InteractionSystemRules, SharedSemanticsWithOneWaySystem) {
  // The wrapper and a hand-built InteractionSystem agree interaction by
  // interaction (same RuleMatrix underneath).
  auto p = make_it_or_with_beacon();
  OneWaySystem wrapped(p, Model::I2, {0, 2, 1});
  InteractionSystem raw(RuleMatrix::compile(p, Model::I2, {0, 2, 1}),
                        {0, 2, 1});
  const std::vector<Interaction> script = {
      {0, 1, false}, {1, 2, true}, {2, 0, false}, {0, 2, true}};
  for (const Interaction& ia : script) {
    wrapped.interact(ia);
    raw.interact(ia);
    EXPECT_EQ(wrapped.states(), raw.states());
  }
  EXPECT_EQ(raw.omissions(), 2u);
}

}  // namespace
}  // namespace ppfs

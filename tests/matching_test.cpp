// The verifier itself (Definitions 3/4 as checks), exercised on hand-built
// event logs so that each failure mode is triggered in isolation.
#include "verify/matching.hpp"

#include <gtest/gtest.h>

#include "protocols/pairing.hpp"

namespace ppfs {
namespace {

// Helpers to fabricate events. The pairing protocol's (c,p)->(cs,bot) pair
// is the running example: starter half p->bot (partner c), reactor half
// c->cs (partner p)... careful: in delta(c, p) the *starter* is the
// consumer. We use delta(p, c) = (bot, cs): starter p->bot, reactor c->cs.
SimEvent ev(std::uint64_t seq, AgentId agent, State before, State after, Half half,
            std::uint64_t key, State partner) {
  return SimEvent{seq, seq, agent, before, after, half, key, partner};
}

VerifyOptions opts(std::size_t max_unmatched = 0) {
  VerifyOptions o;
  o.max_unmatched = max_unmatched;
  return o;
}

class MatchingFixture : public ::testing::Test {
 protected:
  std::shared_ptr<const TableProtocol> p_ = make_pairing_protocol();
  PairingStates st_ = pairing_states();
};

TEST_F(MatchingFixture, AcceptsEmptyLog) {
  const auto rep = verify_matching(*p_, {}, {st_.consumer, st_.producer}, opts());
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.pairs, 0u);
}

TEST_F(MatchingFixture, AcceptsOnePerfectPair) {
  std::vector<SimEvent> events{
      ev(0, 1, st_.producer, st_.bottom, Half::Starter, 7, st_.consumer),
      ev(1, 0, st_.consumer, st_.critical, Half::Reactor, 7, st_.producer)};
  const auto rep =
      verify_matching(*p_, events, {st_.consumer, st_.producer}, opts());
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.pairs, 1u);
  ASSERT_EQ(rep.derived_run.size(), 1u);
  EXPECT_EQ(rep.derived_run[0].qs, st_.producer);
  EXPECT_EQ(rep.derived_run[0].qr, st_.consumer);
}

TEST_F(MatchingFixture, RejectsDeltaInconsistentEvent) {
  std::vector<SimEvent> events{
      // Claims p -> cs as the starter half: delta says p -> bot.
      ev(0, 1, st_.producer, st_.critical, Half::Starter, 7, st_.consumer)};
  const auto rep =
      verify_matching(*p_, events, {st_.consumer, st_.producer}, opts(1));
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.delta_errors, 0u);
}

TEST_F(MatchingFixture, RejectsBrokenChain) {
  std::vector<SimEvent> events{
      // Agent 0 is a consumer initially, but the event claims it was p.
      ev(0, 0, st_.producer, st_.bottom, Half::Starter, 7, st_.consumer)};
  const auto rep =
      verify_matching(*p_, events, {st_.consumer, st_.producer}, opts(1));
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.chain_errors, 0u);
}

TEST_F(MatchingFixture, UnmatchedWithinAllowancePasses) {
  std::vector<SimEvent> events{
      ev(0, 0, st_.consumer, st_.critical, Half::Reactor, 7, st_.producer)};
  // Chain is fine (c -> cs), delta is fine, but the starter half is still
  // open: acceptable up to the allowance.
  EXPECT_TRUE(
      verify_matching(*p_, events, {st_.consumer, st_.producer}, opts(1)).ok);
  EXPECT_FALSE(
      verify_matching(*p_, events, {st_.consumer, st_.producer}, opts(0)).ok);
}

TEST_F(MatchingFixture, AvoidsSelfPairingWhenAlternativeExists) {
  // Two starter halves (agents 1, 3) and two reactor halves (agents 0, 1).
  // FIFO would pair agent 1's starter half with agent 1's reactor half;
  // the verifier must cross-pair instead.
  std::vector<SimEvent> events{
      ev(0, 1, st_.producer, st_.bottom, Half::Starter, 1, st_.consumer),
      ev(1, 3, st_.producer, st_.bottom, Half::Starter, 2, st_.consumer),
      // Reactor halves arrive afterwards; agent 1 cannot pair with itself.
      ev(2, 1, st_.bottom, st_.bottom, Half::Reactor, 9, st_.bottom),  // filler
      ev(3, 0, st_.consumer, st_.critical, Half::Reactor, 1, st_.producer),
      ev(4, 2, st_.consumer, st_.critical, Half::Reactor, 2, st_.producer),
  };
  // Remove the filler (bot/bot reactor half is delta-consistent only if
  // delta(bot,bot) keeps states -- it does, it's a no-op rule).
  const auto rep = verify_matching(
      *p_, events, {st_.consumer, st_.producer, st_.consumer, st_.producer},
      opts(1));
  for (const auto& pr : rep.matching)
    EXPECT_NE(events[pr.starter_ev].agent, events[pr.reactor_ev].agent);
  EXPECT_GE(rep.pairs, 2u);
}

TEST_F(MatchingFixture, ChainCatchesStateTeleport) {
  // Agent 1 goes p -> bot (pair A), then claims a second p -> bot starter
  // half out of thin air: the chain check must flag it.
  std::vector<SimEvent> events{
      ev(0, 1, st_.producer, st_.bottom, Half::Starter, 1, st_.consumer),
      ev(1, 0, st_.consumer, st_.critical, Half::Reactor, 1, st_.producer),
      ev(2, 1, st_.producer, st_.bottom, Half::Starter, 2, st_.consumer),
  };
  const auto rep =
      verify_matching(*p_, events, {st_.consumer, st_.producer}, opts(2));
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.chain_errors, 0u);
}

TEST_F(MatchingFixture, DerivedRunSortedByMinSeq) {
  // Pair B opens later but closes earlier; order must follow min(seq).
  std::vector<SimEvent> events{
      ev(0, 1, st_.producer, st_.bottom, Half::Starter, 1, st_.consumer),   // A
      ev(1, 3, st_.producer, st_.bottom, Half::Starter, 2, st_.consumer),   // B
      ev(2, 2, st_.consumer, st_.critical, Half::Reactor, 2, st_.producer), // B
      ev(3, 0, st_.consumer, st_.critical, Half::Reactor, 1, st_.producer), // A
  };
  const auto rep = verify_matching(
      *p_, events, {st_.consumer, st_.producer, st_.consumer, st_.producer},
      opts());
  ASSERT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  ASSERT_EQ(rep.derived_run.size(), 2u);
  EXPECT_EQ(rep.derived_run[0].starter, 1u);
  EXPECT_EQ(rep.derived_run[1].starter, 3u);
}

TEST_F(MatchingFixture, ErrorMessagesAreBounded) {
  std::vector<SimEvent> events;
  for (std::uint64_t i = 0; i < 100; ++i)
    events.push_back(
        ev(i, 0, st_.producer, st_.critical, Half::Starter, i, st_.consumer));
  VerifyOptions o;
  o.max_unmatched = 1000;
  o.max_error_messages = 5;
  const auto rep = verify_matching(*p_, events, {st_.producer, st_.producer}, o);
  EXPECT_FALSE(rep.ok);
  EXPECT_LE(rep.errors.size(), 5u);
}

}  // namespace
}  // namespace ppfs

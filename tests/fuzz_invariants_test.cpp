// Adversarial fuzzing of the simulator invariants: random interaction
// streams (including random omission placement within the budget) with
// the conservation laws and monitors re-checked after EVERY interaction.
// Catches any transient violation that end-state checks would miss.
#include <gtest/gtest.h>

#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "util/rng.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

Interaction random_interaction(std::size_t n, Rng& rng, bool omissive) {
  const auto s = static_cast<AgentId>(rng.below(n));
  auto r = static_cast<AgentId>(rng.below(n - 1));
  if (r >= s) ++r;
  Interaction ia{s, r, omissive};
  if (omissive) {
    const auto side = rng.below(3);
    ia.side = side == 0 ? OmitSide::Both
                        : (side == 1 ? OmitSide::Starter : OmitSide::Reactor);
  }
  return ia;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, SknoConservationHoldsAtEveryStep) {
  Rng rng(GetParam());
  for (Model model : {Model::I3, Model::I4, Model::T3}) {
    const std::size_t n = 4 + rng.below(6);
    const std::size_t o = 1 + rng.below(3);
    const Workload w = core_workloads(n)[3];  // pairing
    SknoSimulator sim(w.protocol, model, o, w.initial);
    PairingMonitor mon(sim.projection());
    std::size_t omissions_left = o;
    for (std::size_t i = 0; i < 8'000; ++i) {
      const bool omit = omissions_left > 0 && rng.chance(0.01);
      if (omit) --omissions_left;
      sim.interact(random_interaction(n, rng, omit));

      const auto& s = sim.stats();
      const std::size_t expected =
          (s.runs_generated - s.change_runs_consumed - s.cancels) * (o + 1) +
          s.jokers_minted - s.tokens_killed;
      ASSERT_EQ(sim.total_live_tokens(), expected)
          << model_name(model) << " step " << i;
      ASSERT_LE(sim.live_jokers(), s.jokers_minted + s.debt_conversions);

      mon.observe(sim.projection());
      ASSERT_FALSE(mon.safety_violated()) << model_name(model) << " step " << i;
      ASSERT_FALSE(mon.irrevocability_violated());
    }
  }
}

TEST_P(Fuzz, SidNeverDoubleLocksOrTeleports) {
  Rng rng(GetParam() ^ 0xfeed);
  const std::size_t n = 4 + rng.below(6);
  const Workload w = core_workloads(n)[3];
  SidSimulator sim(w.protocol, Model::T3, w.initial);
  PairingMonitor mon(sim.projection());
  for (std::size_t i = 0; i < 12'000; ++i) {
    sim.interact(random_interaction(n, rng, rng.chance(0.2)));
    // A locked agent's recorded partner must point at a real agent that is
    // engaged with it or about to discover the completion.
    for (AgentId a = 0; a < n; ++a) {
      const SidAgent& ag = sim.agent(a);
      if (ag.status == SidAgent::Status::Locked) {
        ASSERT_NE(ag.other_id, kNoId);
        ASSERT_NE(ag.other_state, kNoState);
      }
      if (ag.status == SidAgent::Status::Available) {
        ASSERT_EQ(ag.other_id, kNoId);
      }
    }
    if (i % 8 == 0) {
      mon.observe(sim.projection());
      ASSERT_FALSE(mon.safety_violated()) << "step " << i;
    }
  }
}

TEST_P(Fuzz, NamingInvariantsUnderOmissions) {
  Rng rng(GetParam() ^ 0xbeef);
  const std::size_t n = 3 + rng.below(8);
  NamingSimulator sim(make_pairing_protocol(), Model::I2,
                      std::vector<State>(n, pairing_states().consumer));
  for (std::size_t i = 0; i < 15'000; ++i) {
    sim.interact(random_interaction(n, rng, rng.chance(0.25)));
    if (i % 32 != 0) continue;
    std::uint32_t global_max = 1;
    std::vector<bool> held(n + 2, false);
    for (AgentId a = 0; a < n; ++a) {
      ASSERT_GE(sim.my_id(a), 1u);
      ASSERT_LE(sim.my_id(a), n);
      ASSERT_LE(sim.max_id(a), n);
      global_max = std::max(global_max, sim.my_id(a));
      held[sim.my_id(a)] = true;
      // Activated agents must believe max_id = n.
      if (sim.activated(a)) {
        ASSERT_EQ(sim.max_id(a), n);
      }
    }
    for (std::uint32_t v = 1; v <= global_max; ++v)
      ASSERT_TRUE(held[v]) << "value " << v << " vanished";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace ppfs

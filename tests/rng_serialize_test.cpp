// Rng snapshot/restore round-trip — the primitive the sweep service's
// in-flight replica checkpoints stand on. A restored generator must
// continue the EXACT draw sequence from the capture point, keep the same
// keyed split() children (seed_ round-trips), and carry the draw ledger
// forward so PPFS_AUDIT draw accounting stays exact across a resume.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/binio.hpp"

namespace ppfs {
namespace {

TEST(RngSerialize, RestoredStreamContinuesExactly) {
  Rng a(20260808);
  for (int i = 0; i < 257; ++i) (void)a();  // mid-stream, odd offset

  const Rng::Snapshot snap = a.snapshot();
  Rng b(0);  // deliberately different seed; restore must overwrite fully
  b.restore(snap);

  for (int i = 0; i < 4096; ++i) ASSERT_EQ(a(), b());
}

TEST(RngSerialize, SnapshotCarriesTheDrawLedger) {
  Rng a(7);
  for (int i = 0; i < 99; ++i) (void)a();
  EXPECT_EQ(a.snapshot().draws, 99u);

  Rng b(0);
  b.restore(a.snapshot());
  EXPECT_EQ(b.draw_count(), 99u);
  (void)b();
  EXPECT_EQ(b.draw_count(), 100u);
}

TEST(RngSerialize, RestoredSeedKeysIdenticalSplitChildren) {
  Rng a(424242);
  for (int i = 0; i < 31; ++i) (void)a();
  Rng b(1);
  b.restore(a.snapshot());

  // split() is keyed off seed_, independent of draw position: restored
  // generators must derive byte-identical child streams — that is what
  // makes a resumed replica's keyed sub-streams match the original run.
  for (std::uint64_t stream : {0ull, 1ull, 17ull, ~0ull}) {
    Rng ca = a.split(stream);
    Rng cb = b.split(stream);
    for (int i = 0; i < 64; ++i) ASSERT_EQ(ca(), cb());
  }
}

TEST(RngSerialize, BinaryRoundTripThroughBinio) {
  Rng a(99);
  for (int i = 0; i < 1234; ++i) (void)a();
  const Rng::Snapshot snap = a.snapshot();

  // The sweep checkpoint codec's exact field layout: six plain u64 words.
  bin::Writer w;
  w.u64(snap.seed);
  for (const std::uint64_t word : snap.state) w.u64(word);
  w.u64(snap.draws);
  ASSERT_EQ(w.size(), 48u);

  bin::Reader r(w.data());
  Rng::Snapshot back;
  back.seed = r.u64();
  for (std::uint64_t& word : back.state) word = r.u64();
  back.draws = r.u64();
  EXPECT_TRUE(r.done());

  Rng b(0);
  b.restore(back);
  EXPECT_EQ(b.draw_count(), a.draw_count());
  for (int i = 0; i < 512; ++i) ASSERT_EQ(a(), b());
}

TEST(RngSerialize, SnapshotIsNonMutating) {
  Rng a(5);
  for (int i = 0; i < 10; ++i) (void)a();
  Rng b = a;  // value copy — the reference continuation
  (void)a.snapshot();
  (void)a.snapshot();
  for (int i = 0; i < 128; ++i) ASSERT_EQ(a(), b());
}

}  // namespace
}  // namespace ppfs

// Unit tests for the SKnO token machinery (§4.1), driven by scripted
// interaction sequences whose exact effect on queues, jokers and the
// pending flag is traced by hand.
#include "sim/skno.hpp"

#include <gtest/gtest.h>

#include "protocols/pairing.hpp"
#include "verify/matching.hpp"

namespace ppfs {
namespace {

std::shared_ptr<const TableProtocol> pairing() { return make_pairing_protocol(); }

TEST(SknoUnit, ValidatesModelAndBound) {
  EXPECT_THROW(SknoSimulator(pairing(), Model::TW, 1, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(SknoSimulator(pairing(), Model::IO, 1, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(SknoSimulator(pairing(), Model::IT, 2, {0, 1}),
               std::invalid_argument);  // IT requires o = 0
  EXPECT_NO_THROW(SknoSimulator(pairing(), Model::IT, 0, {0, 1}));
  EXPECT_NO_THROW(SknoSimulator(pairing(), Model::I3, 3, {0, 1}));
  EXPECT_NO_THROW(SknoSimulator(pairing(), Model::I4, 3, {0, 1}));
}

TEST(SknoUnit, FirstStarterActOpensTransaction) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, false});
  EXPECT_TRUE(sim.is_pending(0));
  EXPECT_EQ(sim.queue_size(0), 1u);  // generated 2, sent 1
  EXPECT_EQ(sim.queue_size(1), 1u);  // received it
  EXPECT_EQ(sim.stats().runs_generated, 1u);
  EXPECT_TRUE(sim.events().empty());  // incomplete run, no transition yet
}

TEST(SknoUnit, FullTwoAgentTransition) {
  // o = 1: (0->1)x2 completes the reactor half, (1->0)x2 the starter half.
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, false});
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.simulated_state(1), st.critical);  // fr(p, c) = cs
  EXPECT_EQ(sim.simulated_state(0), st.producer);  // starter half still pending
  EXPECT_EQ(sim.stats().state_runs_consumed, 1u);
  sim.interact(Interaction{1, 0, false});
  sim.interact(Interaction{1, 0, false});
  EXPECT_EQ(sim.simulated_state(0), st.bottom);  // fs(p, c) = bot
  EXPECT_FALSE(sim.is_pending(0));
  EXPECT_EQ(sim.stats().change_runs_consumed, 1u);
  ASSERT_EQ(sim.events().size(), 2u);
  const auto rep = verify_simulation(sim, 0);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.pairs, 1u);
}

TEST(SknoUnit, CorollaryOneItNeedsTwoInteractions) {
  // o = 0 in IT: single-token runs, one interaction per half.
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::IT, 0, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.simulated_state(1), st.critical);
  sim.interact(Interaction{1, 0, false});
  EXPECT_EQ(sim.simulated_state(0), st.bottom);
  EXPECT_TRUE(verify_simulation(sim, 0).ok);
}

TEST(SknoUnit, OmissionMintsJokerAndKillsToken) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true});  // token <p,1> dies, reactor jokers
  EXPECT_EQ(sim.stats().tokens_killed, 1u);
  EXPECT_EQ(sim.stats().jokers_minted, 1u);
  EXPECT_EQ(sim.live_jokers(), 1u);
  EXPECT_EQ(sim.queue_size(1), 1u);
}

TEST(SknoUnit, JokerSubstitutesMissingToken) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true});   // <p,1> lost, joker minted
  sim.interact(Interaction{0, 1, false});  // <p,2> arrives: joker completes run
  EXPECT_EQ(sim.simulated_state(1), st.critical);
  EXPECT_EQ(sim.stats().jokers_used, 1u);
  EXPECT_EQ(sim.live_jokers(), 0u);
}

TEST(SknoUnit, JokerDebtRepaidByLateToken) {
  // Two producers in the same state: the victim completes p0's run with a
  // joker standing in for <p,1>; when p1 later transmits a fresh <p,1>,
  // the debt converts it back into a joker.
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1,
                    {st.producer, st.producer, st.consumer});
  sim.interact(Interaction{0, 2, true});   // p0's <p,1> lost; c jokers
  sim.interact(Interaction{0, 2, false});  // p0's <p,2>: c completes via joker
  EXPECT_EQ(sim.simulated_state(2), st.critical);
  EXPECT_EQ(sim.stats().debt_conversions, 0u);
  sim.interact(Interaction{1, 2, false});  // p1's <p,1>: repays the debt
  EXPECT_EQ(sim.stats().debt_conversions, 1u);
  EXPECT_EQ(sim.live_jokers(), 1u);  // regenerated joker circulates
}

TEST(SknoUnit, PendingAgentCancelsOnOwnRunReturn) {
  // o = 1, both consumers: a0 goes pending and transmits <c,1>; a1 relays
  // it back; a0 then holds its complete own-state run {<c,1>,<c,2>} and
  // cancels the transaction (preliminary check).
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.consumer, st.consumer});
  sim.interact(Interaction{0, 1, false});
  ASSERT_TRUE(sim.is_pending(0));
  sim.interact(Interaction{1, 0, false});
  EXPECT_FALSE(sim.is_pending(0));
  EXPECT_EQ(sim.stats().cancels, 1u);
  EXPECT_EQ(sim.queue_size(0), 0u);  // withdrawn from circulation
  EXPECT_TRUE(sim.events().empty());
}

TEST(SknoUnit, AllJokerRunsAreRejected) {
  // o = 1: two omissions mint two jokers at the reactor; they must NOT
  // combine into a phantom run for any state (the >=1-real rule).
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true});
  sim.interact(Interaction{0, 1, true});
  EXPECT_EQ(sim.live_jokers(), 2u);
  EXPECT_EQ(sim.simulated_state(1), st.consumer);
  EXPECT_TRUE(sim.events().empty());
}

TEST(SknoUnit, I4OmissionMintsJokerStarterSideAndKillsReactorToken) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I4, 1, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, false});  // p pending, sends <p,1>
  sim.interact(Interaction{0, 1, true});   // omission, starter detects
  // The starter mints the compensating joker; the preliminary check then
  // lets it cancel its own pending transaction (the joker + unsent <p,2>
  // form a complete own-state run) — faithful to §4.1's check order.
  EXPECT_EQ(sim.stats().jokers_minted, 1u);
  EXPECT_EQ(sim.stats().cancels, 1u);
  EXPECT_FALSE(sim.is_pending(0));
  // The reactor applied g: it popped its own front token — the relayed
  // <p,1> it had just received — into the void.
  EXPECT_EQ(sim.stats().tokens_killed, 1u);
  EXPECT_EQ(sim.queue_size(1), 0u);
}

TEST(SknoUnit, I4FullTransitionDespiteOmission) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I4, 1, {st.producer, st.consumer});
  // Omission first: the reactor (applying g) refills and kills its own
  // <c,1>; the starter's compensating joker travels over next and lets the
  // reactor cancel its crippled transaction; then the producer's intact
  // run arrives and the transition completes.
  sim.interact(Interaction{0, 1, true});
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.stats().cancels, 1u);  // joker healed the killed <c,1>
  sim.interact(Interaction{0, 1, false});
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.simulated_state(1), st.critical);
}

TEST(SknoUnit, TokenConservationOnScriptedTrace) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 2, {st.producer, st.consumer});
  const auto invariant = [&] {
    const auto& s = sim.stats();
    const std::size_t expected =
        (s.runs_generated - s.change_runs_consumed - s.cancels) * 3 +
        s.jokers_minted - s.tokens_killed;
    EXPECT_EQ(sim.total_live_tokens(), expected);
  };
  for (const Interaction ia :
       {Interaction{0, 1, false}, Interaction{0, 1, true}, Interaction{0, 1, false},
        Interaction{0, 1, false}, Interaction{1, 0, false}, Interaction{1, 0, false},
        Interaction{1, 0, false}, Interaction{1, 0, false}}) {
    sim.interact(ia);
    invariant();
  }
}

TEST(SknoUnit, MemoryBitsGrowWithHeldTokens) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.producer, st.consumer});
  const auto before = sim.memory_bits(1);
  sim.interact(Interaction{0, 1, false});
  EXPECT_GT(sim.memory_bits(1), before);
}

TEST(SknoUnit, CloneIndependence) {
  const auto st = pairing_states();
  SknoSimulator sim(pairing(), Model::I3, 1, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, false});
  auto copy = sim.clone();
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.simulated_state(1), st.critical);
  EXPECT_EQ(copy->simulated_state(1), st.consumer);
  copy->interact(Interaction{0, 1, false});
  EXPECT_EQ(copy->simulated_state(1), st.critical);
}

TEST(SknoUnit, DescribeMentionsModelAndBound) {
  SknoSimulator sim(pairing(), Model::I3, 2, {0, 1});
  const auto d = sim.describe();
  EXPECT_NE(d.find("I3"), std::string::npos);
  EXPECT_NE(d.find("o=2"), std::string::npos);
}

}  // namespace
}  // namespace ppfs

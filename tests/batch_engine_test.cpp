#include "engine/batch/batch_system.hpp"

#include <gtest/gtest.h>

#include "engine/batch/dispatch.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/logic.hpp"
#include "protocols/majority.hpp"
#include "protocols/registry.hpp"

namespace ppfs {
namespace {

TEST(BatchSystem, SilentConfigurationConsumesWholeBudget) {
  // All agents already agree: every OR interaction is a no-op.
  BatchSystem sys(make_or_protocol(), std::vector<State>(100, 1));
  EXPECT_TRUE(sys.silent());
  Rng rng(1);
  const BatchDelta d = sys.advance(1'000'000, rng);
  EXPECT_EQ(d.interactions, 1'000'000u);
  EXPECT_EQ(d.noops, 1'000'000u);
  EXPECT_FALSE(d.fired);
  EXPECT_EQ(sys.steps(), 1'000'000u);
  EXPECT_EQ(sys.stats().noops(), 1'000'000u);
}

TEST(BatchSystem, AdvanceFiresExactlyOneRule) {
  // or: one 1 among 0s; the only count-changing rules move 0s to 1.
  BatchSystem sys(make_or_protocol(), {1, 0, 0, 0});
  Rng rng(2);
  const BatchDelta d = sys.advance(1'000'000, rng);
  EXPECT_TRUE(d.fired);
  EXPECT_EQ(d.interactions, d.noops + 1);
  EXPECT_EQ(sys.counts()[1], 2u);
  EXPECT_EQ(sys.stats().total_fires(), 1u);
}

TEST(BatchSystem, BudgetTruncatesBatch) {
  BatchSystem sys(make_or_protocol(), {1, 0, 0, 0});
  Rng rng(3);
  std::size_t covered = 0;
  while (covered < 50) covered += sys.advance(50 - covered, rng).interactions;
  EXPECT_EQ(covered, 50u);
  EXPECT_EQ(sys.steps(), 50u);
  EXPECT_EQ(sys.stats().interactions(), 50u);
}

TEST(BatchSystem, ConvergesOnOrEpidemic) {
  const std::size_t n = 1000;
  std::vector<State> init(n, 0);
  init[0] = 1;
  BatchSystem sys(make_or_protocol(), init);
  Rng rng(4);
  while (!sys.silent()) (void)sys.advance(1 << 20, rng);
  EXPECT_EQ(sys.counts()[1], n);
  EXPECT_EQ(sys.consensus_output(), 1);
  // Exactly n-1 conversions were needed.
  EXPECT_EQ(sys.stats().total_fires(), n - 1);
}

TEST(BatchSystem, ExactMajorityConvergesToMajorityOpinion) {
  const std::size_t n = 10'000;
  const auto st = exact_majority_states();
  auto init = make_initial({{st.big_x, n / 2 + 50}, {st.big_y, n / 2 - 50}});
  BatchSystem sys(make_exact_majority(), init);
  Rng rng(5);
  for (int batches = 0; batches < 10'000'000 && !sys.silent(); ++batches)
    (void)sys.advance(1 << 22, rng);
  EXPECT_TRUE(sys.silent());
  EXPECT_EQ(sys.consensus_output(), 1);  // majority was X
  EXPECT_EQ(sys.counts()[st.big_y], 0u);
  EXPECT_EQ(sys.counts()[st.y], 0u);
}

TEST(BatchSystem, StepMatchesAdvanceAccounting) {
  BatchSystem sys(make_and_protocol(), {0, 1, 1, 1});
  Rng rng(6);
  for (int i = 0; i < 100; ++i) (void)sys.step(rng);
  EXPECT_EQ(sys.steps(), 100u);
  EXPECT_EQ(sys.stats().interactions(), 100u);
}

TEST(BatchSystem, RejectsSingletonPopulations) {
  EXPECT_THROW(BatchSystem(make_or_protocol(), {1}), std::invalid_argument);
}

// --- EngineDispatch facade --------------------------------------------------

TEST(EngineDispatch, KindsAndFactory) {
  EXPECT_EQ(engine_kinds(),
            (std::vector<std::string>{"native", "batch", "auto"}));
  EXPECT_THROW((void)make_engine("warp", make_or_protocol(), {0, 1}),
               std::invalid_argument);
  for (const auto& kind : engine_kinds()) {
    auto e = make_engine(kind, make_or_protocol(), {0, 1, 1});
    EXPECT_EQ(e->kind(), kind);
    EXPECT_EQ(e->size(), 3u);
    EXPECT_EQ(e->counts(), (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(e->interactions(), 0u);
  }
}

TEST(EngineDispatch, BatchRefusesNonUniformSchedulers) {
  auto e = make_engine("batch", make_or_protocol(), {0, 1, 0, 1});
  ScriptedScheduler scripted({{0, 1, false}}, nullptr);
  Rng rng(7);
  EXPECT_THROW((void)e->advance(1, scripted, rng), std::invalid_argument);
  // The native engine accepts any scheduler.
  auto nat = make_engine("native", make_or_protocol(), {0, 1, 0, 1});
  EXPECT_EQ(nat->advance(1, scripted, rng), 1u);
}

TEST(EngineDispatch, NativeRecordsTraceBatchRefuses) {
  auto nat = make_engine("native", make_or_protocol(), {0, 1, 0, 1});
  auto bat = make_engine("batch", make_or_protocol(), {0, 1, 0, 1});
  Trace trace;
  EXPECT_TRUE(nat->record_trace(&trace));
  EXPECT_FALSE(bat->record_trace(&trace));
  UniformScheduler sched(4);
  Rng rng(8);
  (void)nat->advance(25, sched, rng);
  EXPECT_EQ(trace.size(), 25u);
  // The recorded trace replays to the same configuration.
  NativeSystem replayed(make_or_protocol(), {0, 1, 0, 1});
  trace.replay(replayed);
  EXPECT_EQ(replayed.population().counts(), nat->counts());
}

TEST(EngineDispatch, RunEngineStepsDrivesExactCount) {
  for (const auto& kind : engine_kinds()) {
    auto e = make_engine(kind, make_or_protocol(), {1, 0, 0, 0, 0});
    UniformScheduler sched(5);
    Rng rng(9);
    const RunResult res = run_engine_steps(*e, sched, rng, 12'345);
    EXPECT_EQ(res.steps, 12'345u);
    EXPECT_EQ(e->interactions(), 12'345u);
    EXPECT_EQ(e->stats().interactions(), 12'345u);
  }
}

TEST(EngineDispatch, RunEngineUntilConvergesBothEngines) {
  for (const auto& kind : engine_kinds()) {
    const Workload w = standard_workloads(64)[0];  // or-epidemic
    auto e = make_engine(kind, w.protocol, w.initial);
    UniformScheduler sched(64);
    Rng rng(10);
    const RunResult res =
        run_engine_until(*e, sched, rng, workload_counts_probe(w));
    EXPECT_TRUE(res.converged) << kind;
    EXPECT_EQ(e->consensus_output(), 1) << kind;
    // Convergence tracking saw the probe hold at or before the end.
    EXPECT_LE(e->stats().convergence_step(), e->interactions()) << kind;
  }
}

TEST(EngineDispatch, RunWorkloadWithEngineAllRegistryWorkloads) {
  for (const auto& kind : engine_kinds()) {
    for (const Workload& w : standard_workloads(32)) {
      RunOptions opt;
      opt.max_steps = 5'000'000;
      RunStats stats;
      const RunResult res = run_workload_with_engine(kind, w, 11, opt, &stats);
      EXPECT_TRUE(res.converged) << kind << " on " << w.name;
      EXPECT_EQ(stats.interactions(), res.steps) << kind << " on " << w.name;
    }
  }
}

TEST(EngineDispatch, NativeEngineMatchesRawNativeSystem) {
  // Same scheduler + rng seed => identical interaction sequence, so the
  // facade must land in exactly the configuration the raw loop produces.
  const Workload w = standard_workloads(16)[3];  // exact majority
  auto e = make_engine("native", w.protocol, w.initial);
  UniformScheduler sched_a(16);
  Rng rng_a(12);
  (void)e->advance(5'000, sched_a, rng_a);

  NativeSystem raw(w.protocol, w.initial);
  UniformScheduler sched_b(16);
  Rng rng_b(12);
  for (std::size_t i = 0; i < 5'000; ++i) raw.interact(sched_b.next(rng_b, i));
  EXPECT_EQ(e->counts(), raw.population().counts());
}

TEST(EngineDispatch, StatsFiresPlusNoopsEqualInteractions) {
  for (const auto& kind : engine_kinds()) {
    auto e = make_engine(kind, make_exact_majority(),
                         make_initial({{0, 20}, {1, 20}}));
    UniformScheduler sched(40);
    Rng rng(13);
    (void)run_engine_steps(*e, sched, rng, 10'000);
    const RunStats& st = e->stats();
    EXPECT_EQ(st.total_fires() + st.noops(), 10'000u) << kind;
    EXPECT_GT(st.total_fires(), 0u) << kind;
  }
}

}  // namespace
}  // namespace ppfs

#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ppfs {
namespace {

TEST(UniformScheduler, RequiresTwoAgents) {
  EXPECT_THROW(UniformScheduler(1), std::invalid_argument);
}

TEST(UniformScheduler, NeverSelfInteracts) {
  UniformScheduler s(5);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const Interaction ia = s.next(rng, i);
    EXPECT_NE(ia.starter, ia.reactor);
    EXPECT_LT(ia.starter, 5u);
    EXPECT_LT(ia.reactor, 5u);
    EXPECT_FALSE(ia.omissive);
  }
}

TEST(UniformScheduler, CoversAllOrderedPairs) {
  const std::size_t n = 4;
  UniformScheduler s(n);
  Rng rng(2);
  std::set<std::pair<AgentId, AgentId>> seen;
  for (int i = 0; i < 2000; ++i) {
    const Interaction ia = s.next(rng, i);
    seen.insert({ia.starter, ia.reactor});
  }
  EXPECT_EQ(seen.size(), n * (n - 1));
}

TEST(UniformScheduler, RoughlyUniform) {
  UniformScheduler s(3);
  Rng rng(3);
  std::map<std::pair<AgentId, AgentId>, int> counts;
  const int total = 60000;
  for (int i = 0; i < total; ++i) {
    const Interaction ia = s.next(rng, i);
    ++counts[{ia.starter, ia.reactor}];
  }
  for (const auto& [pair, c] : counts)
    EXPECT_NEAR(c / static_cast<double>(total), 1.0 / 6, 0.01);
}

TEST(ScriptedScheduler, ReplaysThenFallsBack) {
  std::vector<Interaction> script{{0, 1, false}, {1, 0, true}};
  ScriptedScheduler s(script, std::make_unique<UniformScheduler>(2));
  Rng rng(4);
  EXPECT_EQ(s.next(rng, 0), script[0]);
  EXPECT_FALSE(s.exhausted());
  EXPECT_EQ(s.next(rng, 1), script[1]);
  EXPECT_TRUE(s.exhausted());
  const Interaction after = s.next(rng, 2);  // delegated
  EXPECT_NE(after.starter, after.reactor);
}

TEST(ScriptedScheduler, ThrowsWithoutFallback) {
  ScriptedScheduler s({{0, 1, false}}, nullptr);
  Rng rng(5);
  (void)s.next(rng, 0);
  EXPECT_THROW((void)s.next(rng, 1), std::logic_error);
}

TEST(ScriptedScheduler, PreservesOmissionFlags) {
  ScriptedScheduler s({{2, 3, true, OmitSide::Starter}}, nullptr);
  Rng rng(6);
  const Interaction ia = s.next(rng, 0);
  EXPECT_TRUE(ia.omissive);
  EXPECT_EQ(ia.side, OmitSide::Starter);
}

}  // namespace
}  // namespace ppfs

// The sharp resilience threshold of SKnO (Theorems 3.1/3.3 instantiated):
// with bound o, the crafted o+1-omission script violates the safety of the
// Pairing problem, while any placement of at most o omissions cannot.
#include "attack/skno_attack.hpp"

#include <gtest/gtest.h>

#include "protocols/pairing.hpp"
#include "sched/scheduler.hpp"
#include "sim/skno.hpp"
#include "util/rng.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

TEST(SknoAttackPlanTest, RejectsZeroBound) {
  EXPECT_THROW(build_skno_attack(0), std::invalid_argument);
}

TEST(SknoAttackPlanTest, PlanShape) {
  const auto plan = build_skno_attack(2);
  EXPECT_EQ(plan.n, 8u);            // 3 pairs + victim + generator
  EXPECT_EQ(plan.omissions, 3u);    // o + 1
  EXPECT_EQ(plan.producers, 3u);
  EXPECT_EQ(plan.expected_critical, 4u);
  std::size_t om = 0;
  for (const auto& ia : plan.script)
    if (ia.omissive) ++om;
  EXPECT_EQ(om, plan.omissions);
}

class AttackSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AttackSweep, OPlusOneOmissionsBreakSafety) {
  const std::size_t o = GetParam();
  const auto plan = build_skno_attack(o);
  SknoSimulator sim(make_pairing_protocol(), Model::I3, o, plan.initial);
  PairingMonitor mon(sim.projection());
  for (const auto& ia : plan.script) {
    sim.interact(ia);
    mon.observe(sim.projection());
  }
  EXPECT_TRUE(mon.safety_violated())
      << "o=" << o << " critical=" << mon.max_critical() << "/" << plan.producers;
  EXPECT_EQ(mon.max_critical(), plan.expected_critical);
  EXPECT_EQ(sim.omissions(), plan.omissions);
  // The violation is irrevocable: a long fair fault-free suffix keeps it.
  UniformScheduler sched(plan.n);
  Rng rng(5);
  for (std::size_t i = 0; i < 5000; ++i) {
    sim.interact(sched.next(rng, i));
    if (i % 64 == 0) mon.observe(sim.projection());
  }
  mon.observe(sim.projection());
  EXPECT_TRUE(mon.safety_violated());
  EXPECT_FALSE(mon.irrevocability_violated());
}

INSTANTIATE_TEST_SUITE_P(Bounds, AttackSweep, ::testing::Values(1, 2, 3, 4));

TEST(SknoAttack, SamePlanWithLastOmissionDroppedIsSafe) {
  // Remove one omissive interaction (budget back to o): the cheated
  // consumer of the last pair can no longer complete, and safety holds.
  const std::size_t o = 2;
  auto plan = build_skno_attack(o);
  std::vector<Interaction> script;
  bool dropped = false;
  for (auto it = plan.script.rbegin(); it != plan.script.rend(); ++it) {
    if (!dropped && it->omissive) {
      dropped = true;
      continue;
    }
    script.push_back(*it);
  }
  std::reverse(script.begin(), script.end());

  SknoSimulator sim(make_pairing_protocol(), Model::I3, o, plan.initial);
  PairingMonitor mon(sim.projection());
  for (const auto& ia : script) {
    sim.interact(ia);
    mon.observe(sim.projection());
  }
  EXPECT_FALSE(mon.safety_violated());
  EXPECT_LE(sim.omissions(), o);
}

TEST(SknoAttack, VictimAssemblesPhantomRun) {
  const std::size_t o = 3;
  const auto plan = build_skno_attack(o);
  SknoSimulator sim(make_pairing_protocol(), Model::I3, o, plan.initial);
  for (const auto& ia : plan.script) sim.interact(ia);
  const auto st = pairing_states();
  EXPECT_EQ(sim.simulated_state(plan.victim), st.critical);
  // Every cheated consumer also reached critical, using one joker each.
  for (std::size_t k = 0; k <= o; ++k)
    EXPECT_EQ(sim.simulated_state(static_cast<AgentId>(2 * k + 1)), st.critical);
  EXPECT_EQ(sim.stats().jokers_used, o + 1);
}

TEST(SknoAttack, GracefulDegradationThresholdIsSharp) {
  // Theorem 3.3 (for this simulator): below the threshold both safety and
  // liveness hold; at o+1 omissions not even safety can be salvaged — so
  // no graceful-degradation threshold above the bound exists.
  const std::size_t o = 2;
  for (std::size_t budget = 0; budget <= o + 1; ++budget) {
    const auto plan = build_skno_attack(o);
    // Keep only the first `budget` omissive interactions.
    std::vector<Interaction> script;
    std::size_t used = 0;
    for (const auto& ia : plan.script) {
      if (ia.omissive) {
        if (used == budget) continue;
        ++used;
      }
      script.push_back(ia);
    }
    SknoSimulator sim(make_pairing_protocol(), Model::I3, o, plan.initial);
    PairingMonitor mon(sim.projection());
    for (const auto& ia : script) {
      sim.interact(ia);
      mon.observe(sim.projection());
    }
    EXPECT_EQ(mon.safety_violated(), budget == o + 1) << "budget " << budget;
  }
}

}  // namespace
}  // namespace ppfs

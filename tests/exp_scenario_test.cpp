#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include "exp/aggregate.hpp"

namespace ppfs::exp {
namespace {

TEST(ParseGrid, IssueExampleParses) {
  const ScenarioGrid g = parse_grid(
      "exact-majority@n=1e6:model=T3:adv=budget:1000:engine=batch:trials=64");
  ASSERT_EQ(g.workloads, std::vector<std::string>{"exact-majority"});
  ASSERT_EQ(g.sizes, std::vector<std::size_t>{1'000'000});
  ASSERT_EQ(g.models, std::vector<std::string>{"T3"});
  ASSERT_EQ(g.adversaries, std::vector<std::string>{"budget:1000"});
  ASSERT_EQ(g.engines, std::vector<std::string>{"batch"});
  EXPECT_EQ(g.trials, 64u);
}

TEST(ParseGrid, WorkloadsOnlyKeepsDefaults) {
  const ScenarioGrid g = parse_grid("or,and");
  EXPECT_EQ(g.workloads, (std::vector<std::string>{"or", "and"}));
  EXPECT_EQ(g.points(), 2u);
}

TEST(ParseGrid, MultiAxisCrossProduct) {
  const ScenarioGrid g = parse_grid(
      "or,max@n=100,200:model=IO,IT:engine=native:adv=none,uo:0.2:trials=3");
  EXPECT_EQ(g.points(), 2u * 2 * 2 * 2);
  const auto points = g.expand();
  ASSERT_EQ(points.size(), 16u);
  // Documented axis order: workload -> n -> model -> adversary -> sim ->
  // engine, innermost last.
  EXPECT_EQ(points[0].workload, "or");
  EXPECT_EQ(points[0].n, 100u);
  EXPECT_EQ(points[0].model, Model::IO);
  EXPECT_EQ(points[0].adversary, "none");
  EXPECT_EQ(points[1].adversary, "uo:0.2");
  EXPECT_EQ(points[2].model, Model::IT);
  EXPECT_EQ(points[4].n, 200u);
  EXPECT_EQ(points[8].workload, "max");
  for (const ScenarioSpec& p : points) EXPECT_EQ(p.trials, 3u);
}

TEST(ParseGrid, ColonContinuationRejoinsAdversaryAndSimSpecs) {
  const ScenarioGrid g =
      parse_grid("or@adv=budget:1000:burst=4:sim=skno:o=2:engine=batch");
  ASSERT_EQ(g.adversaries, std::vector<std::string>{"budget:1000:burst=4"});
  ASSERT_EQ(g.sims, std::vector<std::string>{"skno:o=2"});
}

TEST(ParseGrid, ScalarKeysAndProbe) {
  const ScenarioGrid g = parse_grid(
      "pairing@steps=5000:maxsteps=9000:checkevery=128:stable=1:"
      "probe=activation:verify=1:seed=99");
  EXPECT_EQ(g.fixed_steps, 5000u);
  EXPECT_EQ(g.max_steps, 9000u);
  EXPECT_EQ(g.check_every, 128u);
  EXPECT_EQ(g.stable_checks, 1u);
  EXPECT_EQ(g.probe, "activation");
  EXPECT_TRUE(g.verify_matching);
  EXPECT_EQ(g.seed, 99u);
}

TEST(ParseGrid, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_grid(""), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or,@n=8"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@model=XX"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@n=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@n=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@trials=0"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@probe=sometimes"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@adv=zap"), std::invalid_argument);
  EXPECT_THROW((void)parse_grid("or@sim=zap"), std::invalid_argument);
}

TEST(ScenarioSpec, ToStringRoundTripsThroughParser) {
  ScenarioSpec spec;
  spec.workload = "exact-majority";
  spec.n = 1000;
  spec.engine = "batch";
  spec.model = Model::T3;
  spec.adversary = "budget:1000";
  spec.trials = 8;
  spec.seed = 7;
  spec.check_every = 512;
  const auto points = parse_grid(spec.to_string()).expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].workload, spec.workload);
  EXPECT_EQ(points[0].n, spec.n);
  EXPECT_EQ(points[0].model, spec.model);
  EXPECT_EQ(points[0].adversary, spec.adversary);
  EXPECT_EQ(points[0].engine, spec.engine);
  EXPECT_EQ(points[0].trials, spec.trials);
  EXPECT_EQ(points[0].seed, spec.seed);
  EXPECT_EQ(points[0].check_every, spec.check_every);
  EXPECT_EQ(points[0].to_string(), spec.to_string());
}

TEST(ScenarioSpec, PointKeyIgnoresTrialsAndSeed) {
  ScenarioSpec a;
  a.workload = "or";
  a.trials = 8;
  a.seed = 1;
  ScenarioSpec b = a;
  b.trials = 64;
  b.seed = 1;
  EXPECT_EQ(a.point_key(), b.point_key());
  // The seed enters the stream key directly, not through the point key.
  b.seed = 2;
  EXPECT_EQ(a.point_key(), b.point_key());
  EXPECT_NE(a.point_seed(), b.point_seed());
}

TEST(ScenarioSpec, DistinctPointsGetDistinctStreamSeeds) {
  ScenarioSpec a;
  a.workload = "or";
  ScenarioSpec b = a;
  b.n = a.n + 1;
  ScenarioSpec c = a;
  c.engine = "native";
  EXPECT_NE(a.point_seed(), b.point_seed());
  EXPECT_NE(a.point_seed(), c.point_seed());
}

TEST(ResolveModel, SimulatorDefaultsApply) {
  ScenarioSpec s;
  EXPECT_EQ(resolve_model(s), Model::TW);
  s.sim = "skno:o=2";
  EXPECT_EQ(resolve_model(s), Model::I3);
  s.sim = "sid";
  EXPECT_EQ(resolve_model(s), Model::IO);
  s.model = Model::T1;
  EXPECT_EQ(resolve_model(s), Model::T1);
}

TEST(RunReplica, SameTrialIsBitIdentical) {
  ScenarioSpec spec;
  spec.workload = "exact-majority";
  spec.n = 100;
  spec.engine = "batch";
  spec.check_every = 256;
  const ReplicaResult a = run_replica(spec, 3);
  const ReplicaResult b = run_replica(spec, 3);
  EXPECT_EQ(a.run.steps, b.run.steps);
  EXPECT_EQ(a.run.converged, b.run.converged);
  EXPECT_EQ(a.run.omissions, b.run.omissions);
  EXPECT_EQ(a.convergence_step, b.convergence_step);
  EXPECT_EQ(a.fires, b.fires);
  EXPECT_EQ(a.noops, b.noops);
  EXPECT_EQ(a.extras, b.extras);
}

TEST(RunReplica, DistinctTrialsProduceDistinctRuns) {
  ScenarioSpec spec;
  spec.workload = "exact-majority";
  spec.n = 100;
  spec.engine = "batch";
  spec.check_every = 256;
  bool any_different = false;
  const ReplicaResult first = run_replica(spec, 0);
  for (std::size_t t = 1; t < 6 && !any_different; ++t) {
    const ReplicaResult r = run_replica(spec, t);
    any_different = r.run.steps != first.run.steps || r.fires != first.fires;
  }
  EXPECT_TRUE(any_different);
}

TEST(RunReplica, RejectsInvalidSpecs) {
  ScenarioSpec spec;
  spec.n = 3;
  EXPECT_THROW((void)run_replica(spec, 0), std::invalid_argument);
  spec.n = 16;
  spec.workload = "no-such-workload";
  EXPECT_THROW((void)run_replica(spec, 0), std::invalid_argument);
  spec.workload = "or";
  spec.probe = "activation";  // needs the native naming simulator
  EXPECT_THROW((void)run_replica(spec, 0), std::invalid_argument);
}

TEST(RunReplica, OneWayModelsResolveTheOneWayRegistry) {
  ScenarioSpec spec;
  spec.workload = "or";
  spec.n = 16;
  spec.engine = "batch";
  spec.model = Model::IO;
  const ReplicaResult r = run_replica(spec, 0);
  EXPECT_TRUE(r.run.converged);
}

TEST(ParseGrid, EngineAutoIsAnAxisValue) {
  const ScenarioGrid g = parse_grid("or@n=16:engine=native,batch,auto:sim=sid");
  ASSERT_EQ(g.engines,
            (std::vector<std::string>{"native", "batch", "auto"}));
  EXPECT_THROW((void)parse_grid("or@engine=warp"), std::invalid_argument);
}

TEST(RunReplica, EngineAutoRunsSimPoints) {
  // engine=auto through the replica runner: deterministic per (point,
  // trial), and the auto gauges surface in extras alongside the rest of
  // the registry.
  ScenarioSpec spec;
  spec.workload = "exact-majority";
  spec.n = 24;
  spec.engine = "auto";
  spec.sim = "sid";
  spec.fixed_steps = 4000;
  spec.metrics_every = 1000;
  const ReplicaResult a = run_replica(spec, 1);
  const ReplicaResult b = run_replica(spec, 1);
  EXPECT_EQ(a.run.steps, 4000u);
  EXPECT_EQ(a.fires, b.fires);
  EXPECT_EQ(a.extras, b.extras);
  // SID disperses fully from step 0: auto must be running agent space.
  ASSERT_TRUE(a.extras.count("m.auto.agent_space"));
  EXPECT_EQ(a.extras.at("m.auto.agent_space"), 1.0);
}

TEST(RunReplica, FixedStepsRunsExactlyThatManyInteractions) {
  ScenarioSpec spec;
  spec.workload = "or";
  spec.n = 16;
  spec.engine = "native";
  spec.fixed_steps = 1234;
  const ReplicaResult r = run_replica(spec, 0);
  EXPECT_EQ(r.run.steps, 1234u);
  EXPECT_FALSE(r.run.converged);
}

TEST(AggregateStats, QuantilesAreExactNearestRank) {
  AggregateStats a;
  for (const std::uint64_t steps : {50u, 10u, 40u, 20u, 30u}) {
    ReplicaResult r;
    r.run.steps = steps;
    r.run.converged = true;
    r.convergence_step = steps;
    a.add(r);
  }
  EXPECT_EQ(a.interactions_quantile(0.0), 10u);
  EXPECT_EQ(a.interactions_quantile(0.5), 30u);
  EXPECT_EQ(a.interactions_quantile(0.9), 50u);
  EXPECT_EQ(a.interactions_quantile(1.0), 50u);
  EXPECT_EQ(a.interaction_samples(),
            (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
  EXPECT_DOUBLE_EQ(a.interactions().mean(), 30.0);
}

TEST(AggregateStats, FailedReplicasAreExcludedFromDistributions) {
  AggregateStats a;
  ReplicaResult ok;
  ok.run.steps = 100;
  ok.run.converged = true;
  a.add(ok);
  ReplicaResult bad;
  bad.error = "boom";
  bad.run.steps = 999999;  // must not leak into the samples
  a.add(bad);
  EXPECT_EQ(a.trials(), 2u);
  EXPECT_EQ(a.failed(), 1u);
  EXPECT_EQ(a.completed(), 1u);
  EXPECT_EQ(a.converged(), 1u);
  EXPECT_DOUBLE_EQ(a.convergence_rate(), 1.0);
  EXPECT_EQ(a.interaction_samples().size(), 1u);
}

// The satellite requirement: merge is associative and order-insensitive.
TEST(AggregateStats, MergeIsAssociativeAndOrderInsensitive) {
  // Integer-valued metrics make every floating sum exact, so equality is
  // bitwise, not approximate.
  std::vector<ReplicaResult> replicas;
  for (std::size_t i = 0; i < 6; ++i) {
    ReplicaResult r;
    r.run.steps = 1000 * (i + 1);
    r.run.converged = i % 2 == 0;
    r.run.omissions = 7 * i;
    r.convergence_step = r.run.converged ? 900 * (i + 1)
                                         : RunStats::kNoConvergence;
    r.fires = 13 * i;
    r.noops = 29 * i;
    r.omissive_fires = i;
    r.extras["max_bits"] = static_cast<double>(10 + i);
    if (i % 2 == 1) r.extras["rollbacks"] = static_cast<double>(3 * i);
    replicas.push_back(r);
  }

  const auto fold = [&](std::vector<std::size_t> order,
                        std::size_t split_at) {
    AggregateStats left, right;
    for (std::size_t k = 0; k < order.size(); ++k)
      (k < split_at ? left : right).add(replicas[order[k]]);
    left.merge(right);
    return left;
  };

  const AggregateStats base = fold({0, 1, 2, 3, 4, 5}, 3);
  // Different split points (associativity over the grouping).
  EXPECT_EQ(base.fingerprint(), fold({0, 1, 2, 3, 4, 5}, 1).fingerprint());
  EXPECT_EQ(base.fingerprint(), fold({0, 1, 2, 3, 4, 5}, 5).fingerprint());
  // Different permutations (order-insensitivity).
  EXPECT_EQ(base.fingerprint(), fold({5, 4, 3, 2, 1, 0}, 3).fingerprint());
  EXPECT_EQ(base.fingerprint(), fold({2, 0, 4, 1, 5, 3}, 2).fingerprint());
  EXPECT_EQ(base, fold({3, 1, 4, 0, 5, 2}, 4));

  // Merging an empty aggregate on either side is the identity.
  AggregateStats empty;
  AggregateStats copy = base;
  copy.merge(empty);
  EXPECT_EQ(copy.fingerprint(), base.fingerprint());
  AggregateStats lhs_empty;
  lhs_empty.merge(base);
  EXPECT_EQ(lhs_empty.fingerprint(), base.fingerprint());
}

}  // namespace
}  // namespace ppfs::exp

// FTT search (Definitions 6-7): the measured fastest transition times of
// the library's simulators on two agents, which are also the omission
// counts that Lemma 1 needs to defeat them.
#include "attack/ftt.hpp"

#include <gtest/gtest.h>

#include "protocols/pairing.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"

namespace ppfs {
namespace {

SimFactory skno_factory(Model m, std::size_t o) {
  auto protocol = make_pairing_protocol();
  return [protocol, m, o](std::vector<State> init) -> std::unique_ptr<Simulator> {
    return std::make_unique<SknoSimulator>(protocol, m, o, std::move(init));
  };
}

TEST(Ftt, TwWrapperHasFttOne) {
  auto protocol = make_pairing_protocol();
  SimFactory f = [protocol](std::vector<State> init) -> std::unique_ptr<Simulator> {
    return std::make_unique<TwSimulator>(protocol, Model::TW, std::move(init));
  };
  const auto st = pairing_states();
  const auto res = find_ftt(f, st.producer, st.consumer, 4);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->ftt, 1u);
  EXPECT_EQ(res->run.size(), 1u);
}

class SknoFtt : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SknoFtt, FttIsTwiceOPlusOne) {
  // One full simulated transition costs o+1 token deliveries per half.
  const std::size_t o = GetParam();
  const auto st = pairing_states();
  const auto res =
      find_ftt(skno_factory(Model::I3, o), st.producer, st.consumer, 2 * o + 4);
  ASSERT_TRUE(res.has_value()) << "o=" << o;
  EXPECT_EQ(res->ftt, 2 * (o + 1));
}

INSTANTIATE_TEST_SUITE_P(Bounds, SknoFtt, ::testing::Values(0, 1, 2, 3));

TEST(Ftt, SidNeedsThreeInteractions) {
  // pair -> lock(fs) -> complete(fr).
  auto protocol = make_pairing_protocol();
  SimFactory f = [protocol](std::vector<State> init) -> std::unique_ptr<Simulator> {
    return std::make_unique<SidSimulator>(protocol, Model::IO, std::move(init));
  };
  const auto st = pairing_states();
  const auto res = find_ftt(f, st.producer, st.consumer, 6);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->ftt, 3u);
}

TEST(Ftt, WitnessRunReachesTarget) {
  const auto st = pairing_states();
  const auto f = skno_factory(Model::I3, 1);
  const auto res = find_ftt(f, st.producer, st.consumer, 8);
  ASSERT_TRUE(res.has_value());
  auto sim = f({st.producer, st.consumer});
  for (const auto& ia : res->run) sim->interact(ia);
  EXPECT_EQ(sim->simulated_state(0), st.bottom);
  EXPECT_EQ(sim->simulated_state(1), st.critical);
}

TEST(Ftt, MinimalityNoShorterRunExists) {
  // Exhaustively confirm no run of length FTT-1 reaches the target.
  const auto st = pairing_states();
  const auto f = skno_factory(Model::I3, 1);
  const auto res = find_ftt(f, st.producer, st.consumer, 8);
  ASSERT_TRUE(res.has_value());
  const std::size_t t = res->ftt;
  ASSERT_GE(t, 1u);
  // find_ftt with a depth bound of t-1 must fail.
  EXPECT_FALSE(find_ftt(f, st.producer, st.consumer, t - 1).has_value());
}

TEST(Ftt, NoOpTargetIsRejected) {
  // delta(c, c) is the identity: FTT undefined (degenerate construction).
  const auto st = pairing_states();
  EXPECT_FALSE(
      find_ftt(skno_factory(Model::I3, 1), st.consumer, st.consumer, 6).has_value());
}

TEST(Ftt, UnreachableWithinDepthReturnsNullopt) {
  const auto st = pairing_states();
  EXPECT_FALSE(
      find_ftt(skno_factory(Model::I3, 3), st.producer, st.consumer, 3).has_value());
}

}  // namespace
}  // namespace ppfs

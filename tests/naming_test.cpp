// Nn naming (Lemma 3) and the knowledge-of-n simulator (Theorem 4.6).
#include "sim/naming.hpp"

#include <gtest/gtest.h>

#include <set>

#include "engine/runner.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "verify/matching.hpp"

namespace ppfs {
namespace {

std::shared_ptr<const TableProtocol> pairing() { return make_pairing_protocol(); }

TEST(Naming, CollisionIncrementsReactor) {
  NamingSimulator sim(pairing(), Model::IO, {0, 1});
  EXPECT_EQ(sim.my_id(0), 1u);
  EXPECT_EQ(sim.my_id(1), 1u);
  sim.interact(Interaction{0, 1, false});  // same my_id: reactor increments
  EXPECT_EQ(sim.my_id(0), 1u);
  EXPECT_EQ(sim.my_id(1), 2u);
  EXPECT_EQ(sim.max_id(1), 2u);
  EXPECT_EQ(sim.max_id(0), 1u);  // gossip has not reached the starter yet
}

TEST(Naming, MaxIdGossips) {
  NamingSimulator sim(pairing(), Model::IO, {0, 1});
  sim.interact(Interaction{0, 1, false});  // a1 -> id 2, max 2 (= n: activates)
  sim.interact(Interaction{1, 0, false});  // a0 learns max 2 and activates
  EXPECT_EQ(sim.max_id(0), 2u);
  EXPECT_TRUE(sim.activated(0));
  EXPECT_TRUE(sim.activated(1));
  EXPECT_TRUE(sim.all_activated());
}

TEST(Naming, SingleAgentActivatesImmediately) {
  NamingSimulator sim(pairing(), Model::IO, {0});
  EXPECT_TRUE(sim.all_activated());
}

class NamingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NamingSweep, Lemma3UniqueStableIds) {
  const std::size_t n = GetParam();
  NamingSimulator sim(pairing(), Model::IO,
                      std::vector<State>(n, pairing_states().consumer));
  UniformScheduler sched(n);
  Rng rng(n * 7 + 1);
  RunOptions opt;
  opt.max_steps = 200'000 + 30'000 * n;
  const auto res = run_until(
      sim, sched, rng,
      [](const NamingSimulator& s) { return s.all_activated(); }, opt);
  ASSERT_TRUE(res.converged) << "n=" << n;

  // All ids unique, in [1..n], and every agent's max reached exactly n.
  std::set<std::uint32_t> ids;
  for (AgentId a = 0; a < n; ++a) {
    const auto id = sim.my_id(a);
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, n);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
    EXPECT_EQ(sim.max_id(a), n);
  }
  // Stability: ids never change again.
  const auto before = [&] {
    std::vector<std::uint32_t> v;
    for (AgentId a = 0; a < n; ++a) v.push_back(sim.my_id(a));
    return v;
  }();
  for (std::size_t i = 0; i < 20'000; ++i) sim.interact(sched.next(rng, i));
  for (AgentId a = 0; a < n; ++a) EXPECT_EQ(sim.my_id(a), before[a]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NamingSweep,
                         ::testing::Values(2, 3, 4, 7, 12, 25, 64));

TEST(Naming, InvariantEveryValueUpToMaxIsHeld) {
  // Lemma 3's key invariant, probed along a random execution.
  const std::size_t n = 9;
  NamingSimulator sim(pairing(), Model::IO,
                      std::vector<State>(n, pairing_states().consumer));
  UniformScheduler sched(n);
  Rng rng(77);
  for (std::size_t i = 0; i < 40'000; ++i) {
    sim.interact(sched.next(rng, i));
    if (i % 64 != 0) continue;
    std::uint32_t global_max = 1;
    std::set<std::uint32_t> held;
    for (AgentId a = 0; a < n; ++a) {
      global_max = std::max(global_max, sim.my_id(a));
      held.insert(sim.my_id(a));
    }
    for (std::uint32_t v = 1; v <= global_max; ++v)
      ASSERT_TRUE(held.count(v)) << "value " << v << " vanished (max "
                                 << global_max << ")";
    ASSERT_LE(global_max, n);
  }
}

struct NParam {
  Model model;
  std::size_t n;
  double rate;
  std::uint64_t seed;
};

class NamingSimSweep : public ::testing::TestWithParam<NParam> {};

TEST_P(NamingSimSweep, SimulatesAfterSelfNaming) {
  const auto [model, n, rate, seed] = GetParam();
  for (const Workload& w : core_workloads(n)) {
    NamingSimulator sim(w.protocol, model, w.initial);
    AdversaryParams ap;
    ap.kind = AdversaryKind::UO;
    ap.rate = is_omissive(model) ? rate : 0.0;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(seed);
    auto counts_probe = workload_counts_probe(w);
    auto probe = [&](const NamingSimulator& s) {
      std::vector<std::size_t> counts(w.protocol->num_states(), 0);
      for (State q : s.projection()) ++counts[q];
      return counts_probe(counts, *w.protocol);
    };
    RunOptions opt;
    opt.max_steps = 600'000 + 40'000 * n;
    const auto res = run_until(sim, sched, rng, probe, opt);
    EXPECT_TRUE(res.converged) << sim.describe() << " on " << w.name;
    const auto rep = verify_simulation(sim, 2 * n);
    EXPECT_TRUE(rep.ok) << sim.describe() << " on " << w.name
                        << (rep.errors.empty() ? "" : ": " + rep.errors[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, NamingSimSweep,
                         ::testing::Values(NParam{Model::IO, 4, 0.0, 301},
                                           NParam{Model::IO, 8, 0.0, 302},
                                           NParam{Model::IO, 12, 0.0, 303},
                                           NParam{Model::I1, 8, 0.3, 304},
                                           NParam{Model::I3, 8, 0.3, 305},
                                           NParam{Model::T1, 8, 0.3, 306}));

TEST(Naming, IdsNeverExceedN) {
  const std::size_t n = 5;
  NamingSimulator sim(pairing(), Model::IO,
                      std::vector<State>(n, pairing_states().consumer));
  UniformScheduler sched(n);
  Rng rng(99);
  for (std::size_t i = 0; i < 50'000; ++i) {
    sim.interact(sched.next(rng, i));
    for (AgentId a = 0; a < n; ++a) ASSERT_LE(sim.my_id(a), n);
  }
}

}  // namespace
}  // namespace ppfs

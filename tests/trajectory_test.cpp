// Trajectory codec and store contracts (util/trajectory.hpp): frame
// round-trips through the delta encoder, store encode/decode identity,
// shard-store k-way merge order, and loud failures on malformed input.
#include "util/trajectory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace ppfs {
namespace {

std::vector<std::size_t> to_sz(const std::vector<std::uint64_t>& v) {
  return {v.begin(), v.end()};
}

TEST(TrajectoryCodec, RoundTripsFrames) {
  // A jagged but realistic sequence: wide count vector, most states
  // unchanged between frames, a few big jumps.
  const std::vector<TrajectoryFrame> frames = {
      {0, {100, 0, 0, 28, 1, 0, 7}},
      {1u << 20, {98, 2, 0, 28, 1, 0, 7}},
      {2u << 20, {0, 100, 0, 28, 1, 0, 7}},
      {(2u << 20) + 1, {0, 100, 0, 28, 1, 0, 7}},  // zero-delta frame
      {1ull << 40, {0, 0, 136, 0, 0, 0, 0}},
  };

  TrajectoryEncoder enc;
  for (const TrajectoryFrame& f : frames) enc.append(f.step, to_sz(f.counts));
  EXPECT_EQ(enc.frames(), frames.size());

  TrajectoryDecoder dec(enc.data());
  TrajectoryFrame out;
  for (const TrajectoryFrame& expect : frames) {
    ASSERT_TRUE(dec.next(out));
    EXPECT_EQ(out.step, expect.step);
    EXPECT_EQ(out.counts, expect.counts);
  }
  EXPECT_FALSE(dec.next(out));
}

TEST(TrajectoryCodec, RandomWalkRoundTrip) {
  // Fuzz the delta path: random up/down moves over a random-width vector.
  Rng rng(20260808);
  std::vector<std::size_t> counts(1 + rng.below(32), 0);
  for (std::size_t& c : counts) c = rng.below(1000);

  TrajectoryEncoder enc;
  std::vector<TrajectoryFrame> expect;
  std::uint64_t step = 0;
  for (int i = 0; i < 200; ++i) {
    step += rng.below(1 << 16);
    for (std::size_t& c : counts)
      if (rng.below(4) == 0) c = rng.below(1000);
    enc.append(step, counts);
    expect.push_back({step, {counts.begin(), counts.end()}});
  }

  TrajectoryDecoder dec(enc.data());
  TrajectoryFrame out;
  for (const TrajectoryFrame& f : expect) {
    ASSERT_TRUE(dec.next(out));
    ASSERT_EQ(out.step, f.step);
    ASSERT_EQ(out.counts, f.counts);
  }
  EXPECT_FALSE(dec.next(out));
}

TEST(TrajectoryCodec, RejectsNonMonotonicStepsAndWidthChanges) {
  TrajectoryEncoder enc;
  enc.append(100, {1, 2, 3});
  EXPECT_THROW(enc.append(99, {1, 2, 3}), std::logic_error);
  EXPECT_THROW(enc.append(200, {1, 2}), std::logic_error);
}

TEST(TrajectoryCodec, DecoderThrowsOnTruncation) {
  TrajectoryEncoder enc;
  enc.append(0, {5, 5, 5});
  enc.append(10, {4, 6, 5});
  const std::string blob = enc.data();

  TrajectoryDecoder dec(std::string_view(blob).substr(0, blob.size() - 1));
  TrajectoryFrame out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_THROW((void)dec.next(out), std::runtime_error);
}

std::vector<TrajectoryRecord> sample_records() {
  std::vector<TrajectoryRecord> records;
  for (std::size_t point = 0; point < 3; ++point) {
    for (std::size_t trial = 0; trial < 4; ++trial) {
      TrajectoryEncoder enc;
      enc.append(0, {10 + point, trial});
      enc.append(1000, {point, 10 + trial});
      records.push_back({point, "point-" + std::to_string(point), trial,
                         1000, enc.data()});
    }
  }
  return records;
}

TEST(TrajectoryStore, EncodeDecodeIdentity) {
  const std::vector<TrajectoryRecord> records = sample_records();
  const std::string image = encode_trajectory_store(records);
  const std::vector<TrajectoryRecord> back = decode_trajectory_store(image);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].point, records[i].point);
    EXPECT_EQ(back[i].point_key, records[i].point_key);
    EXPECT_EQ(back[i].trial, records[i].trial);
    EXPECT_EQ(back[i].every, records[i].every);
    EXPECT_EQ(back[i].blob, records[i].blob);
  }
  // Re-encoding the decoded records is byte-identical: the store format
  // has one canonical serialization.
  EXPECT_EQ(encode_trajectory_store(back), image);
}

TEST(TrajectoryStore, MergeRestoresGlobalOrderFromRoundRobinShards) {
  const std::vector<TrajectoryRecord> records = sample_records();
  // Deal records round-robin across 3 shards — the sweep service's
  // partition — then merge back.
  std::vector<std::vector<TrajectoryRecord>> shards(3);
  for (std::size_t i = 0; i < records.size(); ++i)
    shards[i % 3].push_back(records[i]);

  const std::vector<TrajectoryRecord> merged =
      merge_trajectory_stores(std::move(shards));
  ASSERT_EQ(merged.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(merged[i].point, records[i].point);
    EXPECT_EQ(merged[i].trial, records[i].trial);
    EXPECT_EQ(merged[i].blob, records[i].blob);
  }
}

TEST(TrajectoryStore, RejectsForeignAndTruncatedImages) {
  EXPECT_THROW((void)decode_trajectory_store("NOTASTORE"),
               std::runtime_error);
  const std::string image = encode_trajectory_store(sample_records());
  EXPECT_THROW((void)decode_trajectory_store(
                   std::string_view(image).substr(0, image.size() / 2)),
               std::runtime_error);
  EXPECT_THROW((void)decode_trajectory_store(image + "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace ppfs

// The small-population cases the paper's proofs treat separately: the
// Lemma 2 / Theorem 4.1 argument does case analysis for n = 2, 3, 4, and
// Theorem 4.5's proof notes n = 2 for SID. Each case gets a direct
// convergence + verification check.
#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "protocols/pairing.hpp"
#include "sched/adversary.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "verify/matching.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

std::vector<State> pairing_init(std::size_t n) {
  const auto st = pairing_states();
  std::vector<State> init;
  for (std::size_t i = 0; i < n; ++i)
    init.push_back(i % 2 == 0 ? st.consumer : st.producer);
  return init;
}

bool pairing_done(const Simulator& sim) {
  const auto st = pairing_states();
  std::size_t c = 0, p = 0, cs = 0;
  for (State q : sim.projection()) {
    c += q == st.consumer;
    p += q == st.producer;
    cs += q == st.critical;
  }
  const std::size_t consumers = (sim.num_agents() + 1) / 2;
  const std::size_t producers = sim.num_agents() / 2;
  return cs == std::min(consumers, producers);
}

class SmallN : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SmallN, SknoI3WithOmissions) {
  const std::size_t n = GetParam();
  const std::size_t o = 1;
  SknoSimulator sim(make_pairing_protocol(), Model::I3, o, pairing_init(n));
  AdversaryParams ap;
  ap.kind = AdversaryKind::Budget;
  ap.rate = 0.05;
  ap.max_omissions = o;
  OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
  Rng rng(7000 + n);
  RunOptions opt;
  opt.max_steps = 2'000'000;
  const auto res = run_until(sim, sched, rng, pairing_done, opt);
  EXPECT_TRUE(res.converged) << "n=" << n;
  EXPECT_TRUE(verify_simulation(sim, 4 * n).ok) << "n=" << n;
}

TEST_P(SmallN, SidUnderUo) {
  const std::size_t n = GetParam();
  SidSimulator sim(make_pairing_protocol(), Model::I2, pairing_init(n));
  AdversaryParams ap;
  ap.kind = AdversaryKind::UO;
  ap.rate = 0.3;
  OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
  Rng rng(7100 + n);
  RunOptions opt;
  opt.max_steps = 2'000'000;
  const auto res = run_until(sim, sched, rng, pairing_done, opt);
  EXPECT_TRUE(res.converged) << "n=" << n;
  EXPECT_TRUE(verify_simulation(sim, 2 * n).ok) << "n=" << n;
}

TEST_P(SmallN, NamingActivatesAndSimulates) {
  const std::size_t n = GetParam();
  NamingSimulator sim(make_pairing_protocol(), Model::IO, pairing_init(n));
  UniformScheduler sched(n);
  Rng rng(7200 + n);
  RunOptions opt;
  opt.max_steps = 2'000'000;
  const auto res = run_until(sim, sched, rng, [&](const NamingSimulator& s) {
    return s.all_activated() && pairing_done(s);
  }, opt);
  EXPECT_TRUE(res.converged) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Ns, SmallN, ::testing::Values(2, 3, 4));

TEST(SmallN, SafetyNeverViolatedAtNTwo) {
  // The tightest system: one producer, one consumer, budget exactly o.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SknoSimulator sim(make_pairing_protocol(), Model::I3, 2, pairing_init(2));
    PairingMonitor mon(sim.projection());
    AdversaryParams ap;
    ap.kind = AdversaryKind::Budget;
    ap.rate = 0.3;
    ap.max_omissions = 2;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(2), 2, ap);
    Rng rng(seed);
    for (std::size_t i = 0; i < 20'000; ++i) {
      sim.interact(sched.next(rng, i));
      if (i % 8 == 0) mon.observe(sim.projection());
    }
    mon.observe(sim.projection());
    EXPECT_FALSE(mon.safety_violated()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ppfs

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ppfs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, KeyedSplitIsReproducible) {
  // Same (seed, stream) -> same stream, no matter what the parent did in
  // between: the keyed form is a pure function of the constructor seed.
  Rng a(23);
  Rng before = a.split(7);
  for (int i = 0; i < 1000; ++i) (void)a();
  Rng after = a.split(7);
  Rng fresh = Rng(23).split(7);
  for (int i = 0; i < 256; ++i) {
    const auto v = fresh();
    EXPECT_EQ(before(), v);
    EXPECT_EQ(after(), v);
  }
}

TEST(Rng, KeyedSplitStreamsAreIndependent) {
  // Distinct stream ids produce streams that disagree essentially
  // everywhere, and none echoes the parent.
  Rng parent(29);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  Rng s2 = parent.split(0xdeadbeefULL);
  int equal01 = 0, equal02 = 0, equal0p = 0;
  for (int i = 0; i < 256; ++i) {
    const auto v0 = s0(), v1 = s1(), v2 = s2(), vp = parent();
    if (v0 == v1) ++equal01;
    if (v0 == v2) ++equal02;
    if (v0 == vp) ++equal0p;
  }
  EXPECT_LT(equal01, 4);
  EXPECT_LT(equal02, 4);
  EXPECT_LT(equal0p, 4);
}

TEST(Rng, KeyedSplitDoesNotMutateParent) {
  Rng a(31), b(31);
  (void)a.split(1);
  (void)a.split(2);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitMix64Advances) {
  std::uint64_t s = 0;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace ppfs

// The Simulator base-class contract, exercised uniformly across all four
// simulator implementations: construction validation, interaction
// validation, projections, counters, event-log shape, clone independence
// and determinism.
#include <gtest/gtest.h>

#include "protocols/pairing.hpp"
#include "util/rng.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"

namespace ppfs {
namespace {

enum class Kind { TwNaive, Skno, Sid, Naming };

std::string kind_name(Kind k) {
  switch (k) {
    case Kind::TwNaive: return "TwNaive";
    case Kind::Skno: return "Skno";
    case Kind::Sid: return "Sid";
    case Kind::Naming: return "Naming";
  }
  return "?";
}

std::unique_ptr<Simulator> make(Kind k, std::vector<State> init) {
  auto p = make_pairing_protocol();
  switch (k) {
    case Kind::TwNaive:
      return std::make_unique<TwSimulator>(p, Model::TW, std::move(init));
    case Kind::Skno:
      return std::make_unique<SknoSimulator>(p, Model::I3, 1, std::move(init));
    case Kind::Sid:
      return std::make_unique<SidSimulator>(p, Model::IO, std::move(init));
    case Kind::Naming:
      return std::make_unique<NamingSimulator>(p, Model::IO, std::move(init));
  }
  throw std::logic_error("unreachable");
}

class BaseContract : public ::testing::TestWithParam<Kind> {};

TEST_P(BaseContract, InitialProjectionMatchesConstruction) {
  const auto st = pairing_states();
  const std::vector<State> init{st.consumer, st.producer, st.consumer};
  auto sim = make(GetParam(), init);
  EXPECT_EQ(sim->projection(), init);
  EXPECT_EQ(sim->initial_projection(), init);
  EXPECT_EQ(sim->num_agents(), 3u);
  EXPECT_EQ(sim->interactions(), 0u);
  EXPECT_EQ(sim->omissions(), 0u);
  EXPECT_TRUE(sim->events().empty());
}

TEST_P(BaseContract, RejectsBadInteractions) {
  const auto st = pairing_states();
  auto sim = make(GetParam(), {st.consumer, st.producer});
  EXPECT_THROW(sim->interact(Interaction{0, 0, false}), std::invalid_argument);
  EXPECT_THROW(sim->interact(Interaction{0, 9, false}), std::invalid_argument);
  EXPECT_THROW(sim->interact(Interaction{9, 0, false}), std::invalid_argument);
}

TEST_P(BaseContract, RejectsOmissionsInNonOmissiveModels) {
  const auto st = pairing_states();
  auto sim = make(GetParam(), {st.consumer, st.producer});
  // TwNaive is built on TW, the others here on IO/I3; only I3 is omissive.
  if (!model_caps(sim->model()).omissive) {
    EXPECT_THROW(sim->interact(Interaction{0, 1, true}), std::invalid_argument);
  } else {
    EXPECT_NO_THROW(sim->interact(Interaction{0, 1, true}));
    EXPECT_EQ(sim->omissions(), 1u);
  }
}

TEST_P(BaseContract, CountsInteractions) {
  const auto st = pairing_states();
  auto sim = make(GetParam(), {st.consumer, st.producer});
  for (int i = 0; i < 10; ++i)
    sim->interact(Interaction{static_cast<AgentId>(i % 2),
                              static_cast<AgentId>((i + 1) % 2), false});
  EXPECT_EQ(sim->interactions(), 10u);
}

TEST_P(BaseContract, CloneIsIndependentAndDeterministic) {
  const auto st = pairing_states();
  auto sim = make(GetParam(), {st.consumer, st.producer, st.producer});
  sim->interact(Interaction{1, 0, false});
  auto copy = sim->clone();
  ASSERT_EQ(copy->projection(), sim->projection());
  // Diverge the original; the clone must not move.
  const auto before = copy->projection();
  sim->interact(Interaction{0, 1, false});
  sim->interact(Interaction{1, 0, false});
  EXPECT_EQ(copy->projection(), before);
  // Same interaction sequence from the same state: identical outcomes.
  auto copy2 = sim->clone();
  sim->interact(Interaction{2, 0, false});
  copy2->interact(Interaction{2, 0, false});
  EXPECT_EQ(copy2->projection(), sim->projection());
}

TEST_P(BaseContract, EventsCarryMonotoneSeqAndValidAgents) {
  const auto st = pairing_states();
  auto sim = make(GetParam(), {st.consumer, st.producer, st.consumer});
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const auto s = static_cast<AgentId>(rng.below(3));
    auto r = static_cast<AgentId>(rng.below(2));
    if (r >= s) ++r;
    sim->interact(Interaction{s, r, false});
  }
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& e : sim->events()) {
    if (!first) {
      EXPECT_GT(e.seq, prev);
    }
    prev = e.seq;
    first = false;
    EXPECT_LT(e.agent, 3u);
    EXPECT_LT(e.before, sim->protocol().num_states());
    EXPECT_LT(e.after, sim->protocol().num_states());
  }
  EXPECT_EQ(sim->simulated_updates(), sim->events().size());
}

TEST_P(BaseContract, DescribeIsNonEmpty) {
  const auto st = pairing_states();
  auto sim = make(GetParam(), {st.consumer, st.producer});
  EXPECT_FALSE(sim->describe().empty());
}

INSTANTIATE_TEST_SUITE_P(AllSimulators, BaseContract,
                         ::testing::Values(Kind::TwNaive, Kind::Skno, Kind::Sid,
                                           Kind::Naming),
                         [](const auto& info) { return kind_name(info.param); });

TEST(SimulatorBase, RejectsEmptyPopulationAndBadStates) {
  auto p = make_pairing_protocol();
  EXPECT_THROW(TwSimulator(p, Model::TW, {}), std::invalid_argument);
  EXPECT_THROW(TwSimulator(p, Model::TW, {99}), std::invalid_argument);
  EXPECT_THROW(TwSimulator(nullptr, Model::TW, {0}), std::invalid_argument);
}

}  // namespace
}  // namespace ppfs

// OmissionProcess: the extracted Def. 1–2 insertion state machine, its
// batch-side views, the CLI adversary-spec parser, and the exact
// burst-capped leap sampler the batch engines use to honor max_burst.
#include "sched/omission_process.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <vector>

#include "chi_square.hpp"
#include "engine/batch/leap_sampling.hpp"
#include "sched/adversary.hpp"

namespace ppfs {
namespace {

AdversaryParams uo(double rate) {
  AdversaryParams p;
  p.kind = AdversaryKind::UO;
  p.rate = rate;
  return p;
}

TEST(OmissionProcess, ZeroRateIsNeverActive) {
  OmissionProcess proc(uo(0.0));
  Rng rng(1);
  EXPECT_FALSE(proc.active(0));
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(proc.should_omit(rng, i));
  EXPECT_EQ(proc.emitted(), 0u);
}

TEST(OmissionProcess, BudgetExhaustionIsAbsorbing) {
  AdversaryParams p = uo(1.0);
  p.kind = AdversaryKind::Budget;
  p.max_omissions = 5;
  p.max_burst = 100;
  OmissionProcess proc(p);
  Rng rng(2);
  std::size_t om = 0;
  for (int i = 0; i < 100; ++i) om += proc.should_omit(rng, i) ? 1 : 0;
  EXPECT_EQ(om, 5u);
  EXPECT_EQ(proc.remaining_budget(), 0u);
  EXPECT_FALSE(proc.active(1000));
}

TEST(OmissionProcess, No1ForcesBudgetOne) {
  AdversaryParams p = uo(1.0);
  p.kind = AdversaryKind::NO1;
  OmissionProcess proc(p);
  Rng rng(3);
  std::size_t om = 0;
  for (int i = 0; i < 100; ++i) om += proc.should_omit(rng, i) ? 1 : 0;
  EXPECT_EQ(om, 1u);
}

TEST(OmissionProcess, NoGoesQuietAtTheHorizon) {
  AdversaryParams p = uo(1.0);
  p.kind = AdversaryKind::NO;
  p.quiet_after = 10;
  p.max_burst = 100;
  OmissionProcess proc(p);
  Rng rng(4);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_TRUE(proc.should_omit(rng, i));
  EXPECT_FALSE(proc.active(10));
  for (std::size_t i = 10; i < 50; ++i) EXPECT_FALSE(proc.should_omit(rng, i));
}

TEST(OmissionProcess, BurstCapForcesRealDeliveries) {
  AdversaryParams p = uo(1.0);
  p.max_burst = 3;
  OmissionProcess proc(p);
  Rng rng(5);
  // rate 1 with burst cap 3: pattern omit,omit,omit,real repeating.
  for (int block = 0; block < 5; ++block) {
    for (int k = 0; k < 3; ++k)
      EXPECT_TRUE(proc.should_omit(rng, block * 4 + k));
    EXPECT_FALSE(proc.should_omit(rng, block * 4 + 3));
  }
}

TEST(OmissionProcess, NoteOmissionsFeedsTheBudget) {
  AdversaryParams p = uo(0.5);
  p.kind = AdversaryKind::Budget;
  p.max_omissions = 10;
  OmissionProcess proc(p);
  EXPECT_TRUE(proc.active(0));
  proc.note_omissions(9);
  EXPECT_TRUE(proc.active(0));
  EXPECT_EQ(proc.remaining_budget(), 1u);
  proc.note_omissions(1);
  EXPECT_FALSE(proc.active(0));
}

TEST(OmissionProcess, AdversaryWrapperDelegatesToTheProcess) {
  // Same params + same seed: the wrapper's omission pattern equals the
  // bare process's should_omit stream (the wrapper draws victims from the
  // same rng after each insertion, so compare via a scripted base that
  // consumes no randomness and the process on a cloned rng).
  AdversaryParams p = uo(0.4);
  p.max_burst = 2;
  std::vector<Interaction> script(200, Interaction{0, 1, false});
  OmissionAdversary adv(std::make_unique<ScriptedScheduler>(script, nullptr), 4,
                        p);
  adv.set_victim_picker([](Rng&, std::size_t) { return Interaction{2, 3, false}; });
  OmissionProcess proc(p);
  Rng rng_a(7), rng_b(7);
  for (std::size_t i = 0; i < script.size(); ++i) {
    const bool wrapper_omits = adv.next(rng_a, i).omissive;
    const bool process_omits = proc.should_omit(rng_b, i);
    EXPECT_EQ(wrapper_omits, process_omits) << "step " << i;
  }
  EXPECT_EQ(adv.omissions_emitted(), proc.emitted());
}

TEST(OmissionProcess, BurstCapReachability) {
  AdversaryParams p = uo(0.5);
  p.max_burst = 4;
  {
    OmissionProcess proc(p);  // unbounded budget: always reachable
    EXPECT_TRUE(proc.burst_cap_reachable());
  }
  p.kind = AdversaryKind::Budget;
  p.max_omissions = 3;  // 3 insertions can never fill a burst of 4
  {
    OmissionProcess proc(p);
    EXPECT_FALSE(proc.burst_cap_reachable());
  }
  p.max_omissions = 5;
  {
    OmissionProcess proc(p);
    EXPECT_TRUE(proc.burst_cap_reachable());
    proc.note_omissions(2);  // remaining 3 < cap, burst 0: unreachable now
    EXPECT_FALSE(proc.burst_cap_reachable());
    proc.set_burst(2);  // ...unless a burst is already under way
    EXPECT_TRUE(proc.burst_cap_reachable());
  }
  p.max_burst = std::numeric_limits<std::size_t>::max();
  p.max_omissions = std::numeric_limits<std::size_t>::max();
  OmissionProcess proc(p);
  EXPECT_FALSE(proc.burst_cap_reachable());
}

// The exact burst-capped leg must realize the same joint distribution of
// (deliveries, omissions, fired, end burst state) as simulating the
// within-burst chain one delivery at a time with should_omit semantics.
TEST(BurstLeap, CappedLegMatchesPerDeliverySimulation) {
  using Counts = ppfs::testing::Counts;
  struct Case {
    double rate;
    std::uint64_t w, t;
    std::size_t max_burst, burst0, budget, cap;
  };
  const Case cases[] = {
      {0.5, 3, 20, 2, 0, std::numeric_limits<std::size_t>::max(), 40},
      {0.7, 1, 8, 3, 2, 5, 25},   // mid-burst entry + budget exhaustion
      {0.3, 0, 10, 1, 0, std::numeric_limits<std::size_t>::max(), 12},  // w = 0
      {1.0, 5, 9, 4, 1, std::numeric_limits<std::size_t>::max(), 30},   // rate 1
      {0.9, 7, 50, 2, 0, 3, 18},
  };
  const std::size_t trials = 4000;
  int case_idx = 0;
  for (const Case& c : cases) {
    std::map<Counts, std::size_t> leg_dist, ref_dist;
    Rng rng_leg(5000 + case_idx), rng_ref(9000 + case_idx);
    for (std::size_t i = 0; i < trials; ++i) {
      std::size_t burst = c.burst0;
      const leap::BurstLeg leg = leap::sample_capped_burst_leg(
          c.rate, c.w, c.t, c.max_burst, burst, c.budget, c.cap, rng_leg);
      ++leg_dist[Counts{leg.deliveries, leg.omissions, leg.fire ? 1u : 0u,
                        burst}];
      // Reference: one delivery at a time, should_omit semantics.
      std::size_t b = c.burst0, deliveries = 0, omissions = 0;
      bool fire = false;
      while (deliveries < c.cap) {
        const bool om =
            omissions < c.budget && b < c.max_burst && rng_ref.chance(c.rate);
        ++deliveries;
        if (om) {
          ++omissions;
          ++b;
          continue;
        }
        b = 0;
        if (rng_ref.below(c.t) < c.w) {
          fire = true;
          break;
        }
      }
      ++ref_dist[Counts{deliveries, omissions, fire ? 1u : 0u, b}];
    }
    const auto [stat, df] = ppfs::testing::chi_square_homogeneity(
        leg_dist, ref_dist, trials, trials);
    EXPECT_LE(stat, ppfs::testing::chi_square_limit(df))
        << "case " << case_idx << ": chi2=" << stat << " df=" << df;
    ++case_idx;
  }
}

TEST(ParseAdversarySpec, AcceptsTheDocumentedForms) {
  EXPECT_EQ(parse_adversary_spec("none").rate, 0.0);
  const AdversaryParams u = parse_adversary_spec("uo:0.25");
  EXPECT_EQ(u.kind, AdversaryKind::UO);
  EXPECT_DOUBLE_EQ(u.rate, 0.25);
  const AdversaryParams d = parse_adversary_spec("uo");
  EXPECT_DOUBLE_EQ(d.rate, 0.1);  // default rate
  const AdversaryParams n = parse_adversary_spec("no:5000:0.3");
  EXPECT_EQ(n.kind, AdversaryKind::NO);
  EXPECT_EQ(n.quiet_after, 5000u);
  EXPECT_DOUBLE_EQ(n.rate, 0.3);
  const AdversaryParams n1 = parse_adversary_spec("no1");
  EXPECT_EQ(n1.kind, AdversaryKind::NO1);
  EXPECT_EQ(n1.max_omissions, 1u);
  const AdversaryParams b = parse_adversary_spec("budget:1000");
  EXPECT_EQ(b.kind, AdversaryKind::Budget);
  EXPECT_EQ(b.max_omissions, 1000u);
  EXPECT_EQ(b.max_burst, 8u);  // the documented default
}

TEST(ParseAdversarySpec, AcceptsBurstCapOverrides) {
  const AdversaryParams a = parse_adversary_spec("uo:0.25:burst=3");
  EXPECT_DOUBLE_EQ(a.rate, 0.25);
  EXPECT_EQ(a.max_burst, 3u);
  const AdversaryParams inf = parse_adversary_spec("uo:burst=inf");
  EXPECT_EQ(inf.max_burst, std::numeric_limits<std::size_t>::max());
  const AdversaryParams b = parse_adversary_spec("budget:12:0.5:burst=2");
  EXPECT_EQ(b.max_omissions, 12u);
  EXPECT_DOUBLE_EQ(b.rate, 0.5);
  EXPECT_EQ(b.max_burst, 2u);
}

TEST(ParseAdversarySpec, RejectsMalformedSpecs) {
  for (const char* bad : {"warp", "uo:2.0", "no", "budget", "budget:x",
                          "uo:0.1:7", "uo:-1", "budget:1000:0.3:42",
                          "no1:0.1:7", "no:5:0.2:9", "budget:2.5",
                          "budget:1e300", "no:1e300", "uo:0.1:burst=0",
                          "uo:0.1:burst=x", "uo:0.1:burst=",
                          "uo:0.1:burst=-1", "uo:0.1:burst=+2"}) {
    EXPECT_THROW((void)parse_adversary_spec(bad), std::invalid_argument)
        << bad;
  }
}

TEST(AdversaryKindName, NamesAllKinds) {
  EXPECT_EQ(adversary_kind_name(AdversaryKind::UO), "uo");
  EXPECT_EQ(adversary_kind_name(AdversaryKind::NO), "no");
  EXPECT_EQ(adversary_kind_name(AdversaryKind::NO1), "no1");
  EXPECT_EQ(adversary_kind_name(AdversaryKind::Budget), "budget");
}

}  // namespace
}  // namespace ppfs

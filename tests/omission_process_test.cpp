// OmissionProcess: the extracted Def. 1–2 insertion state machine, its
// batch-side views, and the CLI adversary-spec parser.
#include "sched/omission_process.hpp"

#include <gtest/gtest.h>

#include "sched/adversary.hpp"

namespace ppfs {
namespace {

AdversaryParams uo(double rate) {
  AdversaryParams p;
  p.kind = AdversaryKind::UO;
  p.rate = rate;
  return p;
}

TEST(OmissionProcess, ZeroRateIsNeverActive) {
  OmissionProcess proc(uo(0.0));
  Rng rng(1);
  EXPECT_FALSE(proc.active(0));
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(proc.should_omit(rng, i));
  EXPECT_EQ(proc.emitted(), 0u);
}

TEST(OmissionProcess, BudgetExhaustionIsAbsorbing) {
  AdversaryParams p = uo(1.0);
  p.kind = AdversaryKind::Budget;
  p.max_omissions = 5;
  p.max_burst = 100;
  OmissionProcess proc(p);
  Rng rng(2);
  std::size_t om = 0;
  for (int i = 0; i < 100; ++i) om += proc.should_omit(rng, i) ? 1 : 0;
  EXPECT_EQ(om, 5u);
  EXPECT_EQ(proc.remaining_budget(), 0u);
  EXPECT_FALSE(proc.active(1000));
}

TEST(OmissionProcess, No1ForcesBudgetOne) {
  AdversaryParams p = uo(1.0);
  p.kind = AdversaryKind::NO1;
  OmissionProcess proc(p);
  Rng rng(3);
  std::size_t om = 0;
  for (int i = 0; i < 100; ++i) om += proc.should_omit(rng, i) ? 1 : 0;
  EXPECT_EQ(om, 1u);
}

TEST(OmissionProcess, NoGoesQuietAtTheHorizon) {
  AdversaryParams p = uo(1.0);
  p.kind = AdversaryKind::NO;
  p.quiet_after = 10;
  p.max_burst = 100;
  OmissionProcess proc(p);
  Rng rng(4);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_TRUE(proc.should_omit(rng, i));
  EXPECT_FALSE(proc.active(10));
  for (std::size_t i = 10; i < 50; ++i) EXPECT_FALSE(proc.should_omit(rng, i));
}

TEST(OmissionProcess, BurstCapForcesRealDeliveries) {
  AdversaryParams p = uo(1.0);
  p.max_burst = 3;
  OmissionProcess proc(p);
  Rng rng(5);
  // rate 1 with burst cap 3: pattern omit,omit,omit,real repeating.
  for (int block = 0; block < 5; ++block) {
    for (int k = 0; k < 3; ++k)
      EXPECT_TRUE(proc.should_omit(rng, block * 4 + k));
    EXPECT_FALSE(proc.should_omit(rng, block * 4 + 3));
  }
}

TEST(OmissionProcess, NoteOmissionsFeedsTheBudget) {
  AdversaryParams p = uo(0.5);
  p.kind = AdversaryKind::Budget;
  p.max_omissions = 10;
  OmissionProcess proc(p);
  EXPECT_TRUE(proc.active(0));
  proc.note_omissions(9);
  EXPECT_TRUE(proc.active(0));
  EXPECT_EQ(proc.remaining_budget(), 1u);
  proc.note_omissions(1);
  EXPECT_FALSE(proc.active(0));
}

TEST(OmissionProcess, AdversaryWrapperDelegatesToTheProcess) {
  // Same params + same seed: the wrapper's omission pattern equals the
  // bare process's should_omit stream (the wrapper draws victims from the
  // same rng after each insertion, so compare via a scripted base that
  // consumes no randomness and the process on a cloned rng).
  AdversaryParams p = uo(0.4);
  p.max_burst = 2;
  std::vector<Interaction> script(200, Interaction{0, 1, false});
  OmissionAdversary adv(std::make_unique<ScriptedScheduler>(script, nullptr), 4,
                        p);
  adv.set_victim_picker([](Rng&, std::size_t) { return Interaction{2, 3, false}; });
  OmissionProcess proc(p);
  Rng rng_a(7), rng_b(7);
  for (std::size_t i = 0; i < script.size(); ++i) {
    const bool wrapper_omits = adv.next(rng_a, i).omissive;
    const bool process_omits = proc.should_omit(rng_b, i);
    EXPECT_EQ(wrapper_omits, process_omits) << "step " << i;
  }
  EXPECT_EQ(adv.omissions_emitted(), proc.emitted());
}

TEST(ParseAdversarySpec, AcceptsTheDocumentedForms) {
  EXPECT_EQ(parse_adversary_spec("none").rate, 0.0);
  const AdversaryParams u = parse_adversary_spec("uo:0.25");
  EXPECT_EQ(u.kind, AdversaryKind::UO);
  EXPECT_DOUBLE_EQ(u.rate, 0.25);
  const AdversaryParams d = parse_adversary_spec("uo");
  EXPECT_DOUBLE_EQ(d.rate, 0.1);  // default rate
  const AdversaryParams n = parse_adversary_spec("no:5000:0.3");
  EXPECT_EQ(n.kind, AdversaryKind::NO);
  EXPECT_EQ(n.quiet_after, 5000u);
  EXPECT_DOUBLE_EQ(n.rate, 0.3);
  const AdversaryParams n1 = parse_adversary_spec("no1");
  EXPECT_EQ(n1.kind, AdversaryKind::NO1);
  EXPECT_EQ(n1.max_omissions, 1u);
  const AdversaryParams b = parse_adversary_spec("budget:1000");
  EXPECT_EQ(b.kind, AdversaryKind::Budget);
  EXPECT_EQ(b.max_omissions, 1000u);
}

TEST(ParseAdversarySpec, RejectsMalformedSpecs) {
  for (const char* bad : {"warp", "uo:2.0", "no", "budget", "budget:x",
                          "uo:0.1:7", "uo:-1", "budget:1000:0.3:42",
                          "no1:0.1:7", "no:5:0.2:9", "budget:2.5",
                          "budget:1e300", "no:1e300"}) {
    EXPECT_THROW((void)parse_adversary_spec(bad), std::invalid_argument)
        << bad;
  }
}

TEST(AdversaryKindName, NamesAllKinds) {
  EXPECT_EQ(adversary_kind_name(AdversaryKind::UO), "uo");
  EXPECT_EQ(adversary_kind_name(AdversaryKind::NO), "no");
  EXPECT_EQ(adversary_kind_name(AdversaryKind::NO1), "no1");
  EXPECT_EQ(adversary_kind_name(AdversaryKind::Budget), "budget");
}

}  // namespace
}  // namespace ppfs

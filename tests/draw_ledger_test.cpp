// The Rng draw ledger (util/rng.hpp draw_count) and the DrawFreeScope
// contract guard (util/audit.hpp): every random quantity in the library
// funnels through Rng::operator(), so the ledger is a complete account of
// entropy consumption. That makes two things checkable that were
// previously prose: (a) regions documented as "consumes no draws" —
// regime arbitration, engine bridges, observability hooks — really
// consume none, and (b) a fixed-seed run's total draw budget is a stable
// artifact, pinned here so an accidental extra draw (which silently
// desynchronizes every seeded comparison downstream) fails a test instead
// of shifting distributions.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "engine/batch/dispatch.hpp"
#include "protocols/majority.hpp"
#include "sched/scheduler.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace ppfs {
namespace {

TEST(DrawLedger, CountsEveryRawInvocation) {
  Rng rng(42);
  EXPECT_EQ(rng.draw_count(), 0u);
  (void)rng();
  EXPECT_EQ(rng.draw_count(), 1u);
  (void)rng();
  (void)rng();
  EXPECT_EQ(rng.draw_count(), 3u);
}

TEST(DrawLedger, DerivedDrawsAccountExactly) {
  Rng rng(42);
  (void)rng.uniform();
  EXPECT_EQ(rng.draw_count(), 1u);  // uniform() is exactly one draw
  (void)rng.chance(0.5);
  EXPECT_EQ(rng.draw_count(), 2u);  // chance() too
  const std::uint64_t before = rng.draw_count();
  (void)rng.below(10);
  // Lemire rejection may retry, but never consumes zero.
  EXPECT_GE(rng.draw_count(), before + 1);
}

TEST(DrawLedger, SplitChildrenStartAtZero) {
  Rng rng(42);
  (void)rng();
  (void)rng();
  const Rng child = rng.split(7);
  EXPECT_EQ(child.draw_count(), 0u);
  EXPECT_EQ(rng.draw_count(), 2u);  // split() itself is non-mutating
}

TEST(DrawFreeScope, SilentWhenNoDrawHappens) {
  Rng rng(42);
  EXPECT_NO_THROW({
    DrawFreeScope guard(rng, "quiet region");
    const std::uint64_t x = rng.draw_count();  // reads are fine
    (void)x;
  });
}

TEST(DrawFreeScope, FiresOnDrawInsideGuardedRegion) {
  Rng rng(42);
  EXPECT_THROW(
      {
        DrawFreeScope guard(rng, "engine bridge");
        (void)rng();
      },
      AuditError);
}

TEST(DrawFreeScope, DoesNotMaskAnInFlightException) {
  // A guard unwinding because something else threw must not turn that
  // exception into a terminate() via a second throw from its destructor.
  Rng rng(42);
  EXPECT_THROW(
      {
        DrawFreeScope guard(rng, "engine bridge");
        (void)rng();
        throw std::runtime_error("primary failure");
      },
      std::runtime_error);
}

// The integer-only native engine path: uniform_ordered_pair consumes
// below() draws and nothing else, so the total for a fixed seed is a
// platform-independent constant. If this number moves, some code on the
// interaction hot path gained or lost a draw — an exactness bug in every
// seeded experiment — or the generator changed, which is a compatibility
// break for recorded runs either way.
TEST(DrawLedger, PinsFixedSeedNativeRunBudget) {
  const std::size_t n = 10;
  auto p = make_exact_majority();
  std::vector<State> initial(n, 0);
  for (std::size_t i = 0; i < 4; ++i) initial[i] = 1;
  auto engine = make_engine("native", std::move(p), initial);
  UniformScheduler sched(n);
  Rng rng(123);
  (void)engine->advance(100, sched, rng);
  EXPECT_EQ(rng.draw_count(), 200u);
}

}  // namespace
}  // namespace ppfs

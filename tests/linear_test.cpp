#include "protocols/linear.hpp"

#include <gtest/gtest.h>

#include "engine/workload_runner.hpp"

namespace ppfs {
namespace {

TEST(LinearThreshold, Validates) {
  EXPECT_THROW(make_linear_threshold({{1}, 0}), std::invalid_argument);
  EXPECT_THROW(make_linear_threshold({{}, 2}), std::invalid_argument);
  EXPECT_THROW((void)linear_threshold_input({{1, 2}, 3}, 5), std::out_of_range);
}

TEST(LinearThreshold, InputsTruncateAtK) {
  const LinearThresholdSpec spec{{0, 1, 5}, 3};
  EXPECT_EQ(linear_threshold_input(spec, 0), 0u);
  EXPECT_EQ(linear_threshold_input(spec, 1), 1u);
  EXPECT_EQ(linear_threshold_input(spec, 2), 3u);  // truncated to k
}

TEST(LinearThreshold, StateSpaceSizeIsKPlusTwo) {
  const auto p = make_linear_threshold({{0, 1}, 7});
  EXPECT_EQ(p->num_states(), 9u);
}

struct Inst {
  std::vector<std::uint32_t> coeffs;  // coefficient per symbol
  std::vector<std::size_t> mult;      // agents per symbol
  std::uint32_t k;
  int expect;
};

class LinearSweep : public ::testing::TestWithParam<Inst> {};

TEST_P(LinearSweep, DecidesThePredicate) {
  const Inst inst = GetParam();
  const LinearThresholdSpec spec{inst.coeffs, inst.k};
  auto p = make_linear_threshold(spec);
  std::vector<State> init;
  for (std::size_t sym = 0; sym < inst.mult.size(); ++sym)
    init.insert(init.end(), inst.mult[sym], linear_threshold_input(spec, sym));
  Workload w{"linear", p, std::move(init), inst.expect, nullptr};
  const auto res = run_native_workload(w, 1234 + inst.k);
  EXPECT_TRUE(res.converged);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LinearSweep,
    ::testing::Values(
        // 2*#ones >= 4 with 2 ones: true.
        Inst{{0, 2}, {4, 2}, 4, 1},
        // 2*#ones >= 4 with 1 one: false.
        Inst{{0, 2}, {5, 1}, 4, 0},
        // x + 3y >= 5: 2 + 3 = 5: true.
        Inst{{1, 3}, {2, 1}, 5, 1},
        // x + 3y >= 5: 1 + 3 = 4: false.
        Inst{{1, 3}, {1, 1}, 5, 0},
        // all-zero coefficients never reach any threshold.
        Inst{{0, 0}, {3, 3}, 2, 0},
        // big threshold exercise (|Q_P| = 12).
        Inst{{1, 2, 3}, {4, 3, 2}, 10, 1}));

}  // namespace
}  // namespace ppfs

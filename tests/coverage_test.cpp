// Edge-case and interop coverage across modules: relaying and foreign-run
// handling in SKnO, naming-layer visibility rules, adversary/trace
// composition, and workload-runner probe semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/trace.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "verify/matching.hpp"

namespace ppfs {
namespace {

// --- SKnO relaying --------------------------------------------------------

TEST(SknoRelay, AvailableAgentForwardsForeignTokens) {
  // o = 1, three agents: the middle consumer cannot use a lone producer
  // token but must relay it onward when acting as a starter.
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::I3, 1,
                    {st.producer, st.consumer, st.consumer});
  sim.interact(Interaction{0, 1, false});  // c1 holds <p,1>
  ASSERT_EQ(sim.queue_size(1), 1u);
  sim.interact(Interaction{1, 2, false});  // c1 relays it to c2
  EXPECT_EQ(sim.queue_size(1), 0u);
  EXPECT_EQ(sim.queue_size(2), 1u);
  // c2 now assembles the rest of the run directly from the producer.
  sim.interact(Interaction{0, 2, false});
  EXPECT_EQ(sim.simulated_state(2), st.critical);
  EXPECT_EQ(sim.simulated_state(1), st.consumer);  // bystander untouched
}

TEST(SknoRelay, PendingAgentIgnoresForeignStateRuns) {
  // A pending producer that accumulates a complete run of a DIFFERENT
  // state must neither cancel nor consume it.
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::I3, 0,
                    {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, false});  // p pending; c consumed <p,1> (o=0!)
  ASSERT_EQ(sim.simulated_state(1), st.critical);
  // c goes pending for its own (cs) state and sends its token to p.
  sim.interact(Interaction{1, 0, false});  // change token <(p,c),1> to p
  EXPECT_EQ(sim.simulated_state(0), st.bottom);  // starter half completed
}

TEST(SknoRelay, ChangeRunRequiresMatchingFirstComponent) {
  // A pending consumer (state c) must not consume a change run (p, c).
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::I3, 0,
                    {st.consumer, st.consumer, st.producer});
  // a2 (producer) pending, a0 consumes its run -> change run <(p,c),1>.
  sim.interact(Interaction{2, 0, false});
  ASSERT_EQ(sim.simulated_state(0), st.critical);
  // a1 becomes pending for state c.
  sim.interact(Interaction{1, 0, false});  // a1 pending, pops <c,1> to a0
  ASSERT_TRUE(sim.is_pending(1));
  // Route the change token to a1: first component p != c, must sit idle.
  sim.interact(Interaction{0, 1, false});
  EXPECT_TRUE(sim.is_pending(1));
  EXPECT_EQ(sim.simulated_state(1), st.consumer);
}

// --- Naming layer visibility ----------------------------------------------

TEST(NamingVisibility, InactiveAgentsDoNotSimulate) {
  // Before anyone reaches max_id = n, no SID activity may occur.
  NamingSimulator sim(make_pairing_protocol(), Model::IO,
                      std::vector<State>(4, pairing_states().consumer));
  // Interactions among agents that cannot yet have max_id = 4.
  sim.interact(Interaction{0, 1, false});
  sim.interact(Interaction{2, 3, false});
  EXPECT_TRUE(sim.events().empty());
  EXPECT_FALSE(sim.activated(0));
}

TEST(NamingVisibility, ActivatedAgentIgnoresInactiveStarter) {
  NamingSimulator sim(make_pairing_protocol(), Model::IO,
                      {pairing_states().consumer, pairing_states().producer});
  sim.interact(Interaction{0, 1, false});  // collision: a1 -> id 2 = n, active
  ASSERT_TRUE(sim.activated(1));
  ASSERT_FALSE(sim.activated(0));
  // a1 observes the inactive a0: the SID layer must not engage.
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.sid_agent(1).status, SidAgent::Status::Available);
  EXPECT_EQ(sim.sid_agent(1).other_id, kNoId);
}

// --- Adversary + trace composition ----------------------------------------

TEST(TraceInterop, RecordedAdversarialRunReplaysIdentically) {
  const std::size_t n = 6;
  const Workload w = core_workloads(n)[1];
  AdversaryParams p;
  p.kind = AdversaryKind::Budget;
  p.rate = 0.1;
  p.max_omissions = 2;
  OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, p);
  Rng rng(77);

  Trace trace;
  SknoSimulator original(w.protocol, Model::I3, 2, w.initial);
  for (std::size_t i = 0; i < 5'000; ++i) {
    const Interaction ia = sched.next(rng, i);
    trace.append(ia);
    original.interact(ia);
  }
  // Serialize, parse back, replay into a fresh simulator: identical state.
  const Trace parsed = Trace::parse_string(trace.to_string("replay test"));
  SknoSimulator replayed(w.protocol, Model::I3, 2, w.initial);
  parsed.replay(replayed);
  EXPECT_EQ(replayed.projection(), original.projection());
  EXPECT_EQ(replayed.omissions(), original.omissions());
  EXPECT_EQ(replayed.events().size(), original.events().size());
}

// --- workload runner probes -------------------------------------------------

TEST(WorkloadProbe, ConsensusProbeChecksOnlyOccupiedStates) {
  const Workload w{"t", make_pairing_protocol(), {0, 1}, 0, nullptr};
  auto probe = workload_counts_probe(w);
  // Occupied states c (output 0) and bot (output 0): consensus on 0 holds
  // even though cs (output 1) exists in the protocol.
  std::vector<std::size_t> counts{1, 0, 0, 1};
  EXPECT_TRUE(probe(counts, *w.protocol));
  counts = {1, 0, 1, 0};  // a cs appears: consensus broken
  EXPECT_FALSE(probe(counts, *w.protocol));
}

TEST(WorkloadProbe, CustomProbeWins) {
  bool called = false;
  Workload w{"t", make_pairing_protocol(), {0, 1}, 1, nullptr};
  w.converged = [&](const std::vector<std::size_t>&) {
    called = true;
    return true;
  };
  auto probe = workload_counts_probe(w);
  EXPECT_TRUE(probe({0, 0, 0, 0}, *w.protocol));
  EXPECT_TRUE(called);
}

TEST(WorkloadProbe, NativeRunnerHonorsMaxSteps) {
  const Workload w = core_workloads(8)[2];  // leader election
  RunOptions opt;
  opt.max_steps = 5;  // absurdly small: must stop, unconverged
  const auto res = run_native_workload(w, 1, opt);
  EXPECT_EQ(res.steps, 5u);
  EXPECT_FALSE(res.converged);
}

}  // namespace
}  // namespace ppfs

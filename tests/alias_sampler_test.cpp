// DynamicPairSampler (engine/batch/alias_sampler.hpp): the dynamic
// weighted sampler behind the batch engine's incremental changing-pair
// weights. Covers the Fenwick and alias regimes (both must realize the
// same weights/total distribution), the lazy alias rebuild policy, the
// shared invariant-check machinery (weighted_scan /
// SamplerInvariantError), and the BatchSystem audit: the incrementally
// maintained class weight must equal the O(q^2) reference rescan at
// every point of a real run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "engine/batch/alias_sampler.hpp"
#include "engine/batch/batch_system.hpp"
#include "protocols/registry.hpp"
#include "util/rng.hpp"

namespace ppfs {
namespace {

// Frequency check with a 5-sigma-ish band: binomial sd plus slack.
void expect_frequencies(const std::vector<std::uint64_t>& weights,
                        const std::vector<std::size_t>& hits,
                        std::size_t draws, const char* label) {
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  ASSERT_GT(total, 0u);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double p = static_cast<double>(weights[i]) / static_cast<double>(total);
    const double expect = static_cast<double>(draws) * p;
    const double sd = std::sqrt(expect * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(hits[i]), expect, 5.0 * sd + 10.0)
        << label << " slot " << i;
    if (weights[i] == 0) {
      EXPECT_EQ(hits[i], 0u) << label << " slot " << i;
    }
  }
}

TEST(DynamicPairSampler, FenwickRegimeMatchesWeights) {
  // Interleaving set() with draws keeps the alias permanently invalid, so
  // every draw is a Fenwick descent.
  const std::vector<std::uint64_t> weights{10, 0, 5, 1, 24, 0, 8};
  DynamicPairSampler s;
  s.reset(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) s.set(i, weights[i]);
  EXPECT_EQ(s.total(), 48u);
  Rng rng(11);
  const std::size_t draws = 48'000;
  std::vector<std::size_t> hits(weights.size(), 0);
  for (std::size_t d = 0; d < draws; ++d) {
    ++hits[s.draw(rng)];
    s.set(d % weights.size(), weights[d % weights.size()]);  // same weight...
    s.set(0, 11);  // ...but a real change invalidates the alias
    s.set(0, 10);
  }
  EXPECT_EQ(s.alias_builds(), 0u);
  EXPECT_EQ(s.fenwick_draws(), draws);
  expect_frequencies(weights, hits, draws, "fenwick");
}

TEST(DynamicPairSampler, AliasRegimeMatchesWeights) {
  const std::vector<std::uint64_t> weights{7, 1, 0, 40, 3, 13};
  DynamicPairSampler s;
  s.reset(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) s.set(i, weights[i]);
  Rng rng(12);
  const std::size_t draws = 64'000;
  std::vector<std::size_t> hits(weights.size(), 0);
  for (std::size_t d = 0; d < draws; ++d) ++hits[s.draw(rng)];
  // Draws without updates amortize past the rebuild threshold quickly.
  EXPECT_EQ(s.alias_builds(), 1u);
  EXPECT_GT(s.alias_draws(), draws / 2);
  expect_frequencies(weights, hits, draws, "alias");
}

TEST(DynamicPairSampler, RebuildPolicyIsLazy) {
  DynamicPairSampler s;
  s.reset(4);
  for (std::size_t i = 0; i < 4; ++i) s.set(i, i + 1);
  Rng rng(13);
  // The alias table is only worth building once draws since the last
  // update amortize the O(k) build: the first size() draws stay Fenwick.
  for (std::size_t d = 0; d < 3; ++d) (void)s.draw(rng);
  EXPECT_EQ(s.alias_builds(), 0u);
  (void)s.draw(rng);
  EXPECT_EQ(s.alias_builds(), 1u);
  // Re-setting an identical weight is a no-op and keeps the table.
  s.set(2, 3);
  (void)s.draw(rng);
  EXPECT_EQ(s.alias_builds(), 1u);
  // A real change invalidates; the next build waits for amortization.
  s.set(2, 100);
  (void)s.draw(rng);
  EXPECT_EQ(s.alias_builds(), 1u);
  for (std::size_t d = 0; d < 4; ++d) (void)s.draw(rng);
  EXPECT_EQ(s.alias_builds(), 2u);
}

TEST(DynamicPairSampler, HugeWeightsSurviveAliasBuild) {
  // Vose thresholds are w_i * k in 128-bit; totals near the n = 10^9
  // scale (T = n(n-1) ~ 10^18) must not overflow the bucket math.
  const std::uint64_t big = 900'000'000'000'000'000ULL;  // 9e17
  const std::vector<std::uint64_t> weights{big, big / 3, 1, big / 7};
  DynamicPairSampler s;
  s.reset(weights.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    s.set(i, weights[i]);
    total += weights[i];
  }
  EXPECT_EQ(s.total(), total);
  Rng rng(14);
  const std::size_t draws = 32'000;
  std::vector<std::size_t> hits(weights.size(), 0);
  for (std::size_t d = 0; d < draws; ++d) ++hits[s.draw(rng)];
  EXPECT_GE(s.alias_builds(), 1u);
  expect_frequencies(weights, hits, draws, "huge");
}

TEST(DynamicPairSampler, DrawOnEmptyTotalRaisesInvariant) {
  DynamicPairSampler s;
  s.reset(3);
  Rng rng(15);
  EXPECT_THROW((void)s.draw(rng), SamplerInvariantError);
  s.set(1, 5);
  s.set(1, 0);
  EXPECT_THROW((void)s.draw(rng), SamplerInvariantError);
}

TEST(WeightedScan, CoversExactPrefixAndRaisesStructuredError) {
  const std::vector<std::uint64_t> w{4, 0, 3, 2};
  const auto at = [&](std::size_t i) { return w[i]; };
  // Every pick inside the total maps to the exact prefix slot.
  EXPECT_EQ(weighted_scan(w.size(), 0, "t", at), 0u);
  EXPECT_EQ(weighted_scan(w.size(), 3, "t", at), 0u);
  EXPECT_EQ(weighted_scan(w.size(), 4, "t", at), 2u);
  EXPECT_EQ(weighted_scan(w.size(), 6, "t", at), 2u);
  EXPECT_EQ(weighted_scan(w.size(), 7, "t", at), 3u);
  EXPECT_EQ(weighted_scan(w.size(), 8, "t", at), 3u);
  // The rounding edge the former bare logic_error hid: a pick at/past the
  // covered weight is an invariant violation carrying enough state to
  // debug (context, the offending pick, the weight actually covered).
  try {
    (void)weighted_scan(w.size(), 9, "edge-context", at);
    FAIL() << "expected SamplerInvariantError";
  } catch (const SamplerInvariantError& e) {
    EXPECT_EQ(e.pick(), 9u);
    EXPECT_EQ(e.covered(), 9u);
    EXPECT_NE(std::string(e.what()).find("edge-context"), std::string::npos);
  }
}

TEST(BatchSystemWeights, IncrementalWeightMatchesAuditMidRun) {
  // The incrementally maintained class weight (dirty-state flush into the
  // pair samplers) must equal the O(q^2) reference rescan at every
  // observation point of a real run, for every registry workload.
  for (const Workload& w : standard_workloads(24)) {
    BatchSystem sys(w.protocol, w.initial);
    Rng rng(16);
    for (int i = 0; i < 40 && !sys.silent(); ++i) {
      (void)sys.advance(1 + (i % 7), rng);
      EXPECT_EQ(sys.changing_weight(InteractionClass::Real),
                sys.audit_changing_weight(InteractionClass::Real))
          << w.name << " after batch " << i;
    }
  }
}

TEST(BatchSystemWeights, FireDensityTracksAuditWeight) {
  const Workload w = find_workload("or", 32);
  BatchSystem sys(w.protocol, w.initial);
  Rng rng(17);
  (void)sys.advance(40, rng);
  const double t = 32.0 * 31.0;
  EXPECT_DOUBLE_EQ(
      sys.fire_density(),
      static_cast<double>(sys.audit_changing_weight(InteractionClass::Real)) /
          t);
}

}  // namespace
}  // namespace ppfs

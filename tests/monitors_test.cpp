#include "verify/monitors.hpp"

#include <gtest/gtest.h>

#include "protocols/logic.hpp"
#include "protocols/pairing.hpp"

namespace ppfs {
namespace {

class MonitorFixture : public ::testing::Test {
 protected:
  PairingStates st_ = pairing_states();
};

TEST_F(MonitorFixture, CountsRoles) {
  PairingMonitor m({st_.consumer, st_.consumer, st_.producer});
  EXPECT_EQ(m.consumers(), 2u);
  EXPECT_EQ(m.producers(), 1u);
  EXPECT_FALSE(m.safety_violated());
}

TEST_F(MonitorFixture, RejectsNonInitialStates) {
  EXPECT_THROW(PairingMonitor({st_.critical}), std::invalid_argument);
}

TEST_F(MonitorFixture, SafetyViolationDetected) {
  PairingMonitor m({st_.consumer, st_.consumer, st_.producer});
  m.observe({st_.critical, st_.critical, st_.producer});  // 2 cs > 1 producer
  EXPECT_TRUE(m.safety_violated());
  EXPECT_EQ(m.max_critical(), 2u);
}

TEST_F(MonitorFixture, LegitimatePairingIsSafeAndLive) {
  PairingMonitor m({st_.consumer, st_.consumer, st_.producer});
  m.observe({st_.critical, st_.consumer, st_.bottom});
  EXPECT_FALSE(m.safety_violated());
  EXPECT_TRUE(m.target_reached());  // min(2,1) = 1
}

TEST_F(MonitorFixture, IrrevocabilityLeavingCritical) {
  PairingMonitor m({st_.consumer, st_.producer});
  m.observe({st_.critical, st_.bottom});
  EXPECT_FALSE(m.irrevocability_violated());
  m.observe({st_.consumer, st_.bottom});  // cs reverted!
  EXPECT_TRUE(m.irrevocability_violated());
}

TEST_F(MonitorFixture, IrrevocabilityNonConsumerEnteringCritical) {
  PairingMonitor m({st_.consumer, st_.producer});
  m.observe({st_.consumer, st_.critical});  // a producer became critical
  EXPECT_TRUE(m.irrevocability_violated());
}

TEST_F(MonitorFixture, MaxCriticalIsHighWaterMark) {
  PairingMonitor m({st_.consumer, st_.consumer, st_.producer, st_.producer});
  m.observe({st_.critical, st_.consumer, st_.bottom, st_.producer});
  m.observe({st_.critical, st_.critical, st_.bottom, st_.bottom});
  EXPECT_EQ(m.max_critical(), 2u);
  EXPECT_EQ(m.current_critical(), 2u);
  EXPECT_FALSE(m.safety_violated());
}

TEST_F(MonitorFixture, ArityChangeRejected) {
  PairingMonitor m({st_.consumer, st_.producer});
  EXPECT_THROW(m.observe({st_.consumer}), std::invalid_argument);
}

TEST(ProjectionConsensus, Basics) {
  auto p = make_or_protocol();
  EXPECT_TRUE(projection_consensus(*p, {1, 1, 1}, 1));
  EXPECT_FALSE(projection_consensus(*p, {1, 0, 1}, 1));
  EXPECT_TRUE(projection_consensus(*p, {0, 0}, 0));
}

}  // namespace
}  // namespace ppfs

// Property test against the whole stack: randomly generated two-way
// protocols are pushed through every simulator, and the perfect-matching
// verifier must accept each run. This catches simulator bugs no
// hand-written workload would reach (arbitrary delta structure, asymmetric
// rules, self-loops, dense state graphs).
#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "sched/adversary.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "test_protocol_gen.hpp"
#include "util/rng.hpp"
#include "verify/matching.hpp"

namespace ppfs {
namespace {

using ppfs::testing::random_initial;
using ppfs::testing::random_protocol;

class RandomProtocols : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProtocols, SknoAcceptsArbitraryDeltas) {
  Rng meta(GetParam());
  for (int round = 0; round < 4; ++round) {
    const std::size_t states = 2 + meta.below(4);
    const std::size_t n = 4 + meta.below(6);
    const std::size_t o = meta.below(3);
    auto p = random_protocol(states, meta);
    SknoSimulator sim(p, Model::I3, o, random_initial(n, states, meta));

    AdversaryParams ap;
    ap.kind = AdversaryKind::Budget;
    ap.rate = 0.05;
    ap.max_omissions = o;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(meta());
    (void)run_steps(sim, sched, rng, 20'000);

    const auto rep = verify_simulation(sim, 4 * n);
    EXPECT_TRUE(rep.ok) << "states=" << states << " n=" << n << " o=" << o
                        << " pairs=" << rep.pairs << " unmatched=" << rep.unmatched
                        << (rep.errors.empty() ? "" : " | " + rep.errors[0]);
  }
}

TEST_P(RandomProtocols, SidAcceptsArbitraryDeltas) {
  Rng meta(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 4; ++round) {
    const std::size_t states = 2 + meta.below(4);
    const std::size_t n = 4 + meta.below(6);
    auto p = random_protocol(states, meta);
    SidSimulator sim(p, Model::IO, random_initial(n, states, meta));
    UniformScheduler sched(n);
    Rng rng(meta());
    (void)run_steps(sim, sched, rng, 20'000);
    const auto rep = verify_simulation(sim, 2 * n);
    EXPECT_TRUE(rep.ok) << "states=" << states << " n=" << n
                        << (rep.errors.empty() ? "" : " | " + rep.errors[0]);
    EXPECT_GT(rep.pairs, 0u);
  }
}

TEST_P(RandomProtocols, NamingAcceptsArbitraryDeltas) {
  Rng meta(GetParam() ^ 0x123456);
  for (int round = 0; round < 2; ++round) {
    const std::size_t states = 2 + meta.below(3);
    const std::size_t n = 4 + meta.below(5);
    auto p = random_protocol(states, meta);
    NamingSimulator sim(p, Model::IO, random_initial(n, states, meta));
    UniformScheduler sched(n);
    Rng rng(meta());
    (void)run_steps(sim, sched, rng, 40'000);
    const auto rep = verify_simulation(sim, 2 * n);
    EXPECT_TRUE(rep.ok) << "states=" << states << " n=" << n
                        << (rep.errors.empty() ? "" : " | " + rep.errors[0]);
  }
}

TEST_P(RandomProtocols, SimulatedReachableStatesAreNativelyReachable) {
  // Soundness probe: any state the simulator visits must be reachable in
  // SOME native execution — we check the weaker but crisp projection
  // property that each agent's chain starts at its initial state and every
  // transition comes from delta (already enforced by the verifier), plus
  // determinism of repeated runs under the same seed.
  Rng meta(GetParam() ^ 0x777);
  const std::size_t states = 3;
  const std::size_t n = 5;
  auto p = random_protocol(states, meta);
  const auto init = random_initial(n, states, meta);
  const std::uint64_t seed = meta();

  auto run_once = [&] {
    SknoSimulator sim(p, Model::I3, 1, init);
    UniformScheduler sched(n);
    Rng rng(seed);
    (void)run_steps(sim, sched, rng, 5'000);
    return sim.projection();
  };
  EXPECT_EQ(run_once(), run_once());  // bit-for-bit reproducibility
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocols,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace ppfs

// Mutation smokes for the runtime-contract audit layer (util/audit.hpp):
// every auditor must (a) stay silent on a healthy subsystem and (b) fire
// a structured AuditError on a hand-corrupted one. The corruptions model
// the real bug classes each audit exists to catch — a skipped dirty-state
// flush, a rehash that double-places an id, a release that bypasses cache
// invalidation, an adversary overrunning its budget, an MVHG split that
// stops recomposing the round. AuditTestPeer reaches the private state;
// the audit methods themselves are compiled in every build configuration,
// so this suite runs with and without -DPPFS_AUDIT=ON.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/batch/alias_sampler.hpp"
#include "engine/batch/batch_system.hpp"
#include "engine/batch/round_system.hpp"
#include "engine/batch/sim_batch_system.hpp"
#include "protocols/majority.hpp"
#include "protocols/registry.hpp"
#include "sched/omission_process.hpp"
#include "sim/sim_rules.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace ppfs {

// The friend the subsystems declare: static corruption helpers, one per
// seeded bug class. Kept out of the anonymous namespace so the friend
// declarations (`friend struct AuditTestPeer;`) resolve to this type.
struct AuditTestPeer {
  // --- DynamicPairSampler ---------------------------------------------------
  static void corrupt_slot_weight(DynamicPairSampler& s) { s.w_[0] += 1; }
  static void corrupt_fenwick_node(DynamicPairSampler& s) { s.tree_[1] += 1; }

  // --- BatchSystem: a count move that skips mark_dirty ----------------------
  static void move_without_dirty(BatchSystem& sys, State from, State to) {
    sys.conf_.move(from, to, 1);
  }

  // --- StateUniverse --------------------------------------------------------
  static void clear_live_ctrl(StateUniverse& u, State id) {
    u.ctrl_[u.slot_of_[id]] = simd::kCtrlEmpty;
  }
  // The rehash double-place bug class: a second FULL slot serving the same
  // id. Tallies are patched to match so only the slot-ownership check can
  // catch it.
  static void duplicate_slot(StateUniverse& u, State id) {
    for (std::size_t slot = 0; slot < u.ctrl_.size(); ++slot) {
      if (u.ctrl_[slot] == simd::kCtrlEmpty) {
        u.ctrl_[slot] = StateUniverse::tag_of(u.hash_[id]);
        u.ids_[slot] = id;
        ++u.full_;
        return;
      }
    }
    FAIL() << "no empty slot to duplicate into";
  }

  // --- OutcomeCache ---------------------------------------------------------
  static void bump_generation(OutcomeCache& c, State id) {
    if (c.gen_.size() <= id) c.gen_.resize(id + 1, 0);
    ++c.gen_[id];
  }

  // --- rule sources: release an id without the invalidation protocol -------
  static void release_bypassing_invalidate(SidRuleSource& src, State id) {
    src.universe_.release(id);
  }

  // --- SimBatchSystem / its index structures --------------------------------
  static void corrupt_count_bucket(CountIndex& idx) { idx.counts_[0] += 1; }
  static void corrupt_configuration(SimBatchSystem& sys, State occupied) {
    sys.conf_.counts_[occupied] += 1;
  }

  // --- OmissionProcess ------------------------------------------------------
  static void overrun_budget(OmissionProcess& o) {
    o.emitted_ = o.params_.max_omissions + 1;
  }
  static void overrun_burst(OmissionProcess& o) {
    o.burst_ = o.params_.max_burst + 1;
  }

  // --- RoundSystem ----------------------------------------------------------
  static void corrupt_round_split(RoundSystem& r) { r.cells_[0] += 1; }
  static void audit_round(const RoundSystem& r, std::uint64_t len,
                          std::uint64_t k_om) {
    r.audit_round(len, k_om);
  }
  static std::uint64_t cells_sum(const RoundSystem& r) {
    std::uint64_t s = 0;
    for (const std::uint64_t c : r.cells_) s += c;
    return s;
  }
  static std::uint64_t omits_sum(const RoundSystem& r) {
    std::uint64_t s = 0;
    for (const std::uint64_t o : r.omits_) s += o;
    return s;
  }
};

namespace {

DynamicPairSampler healthy_sampler() {
  DynamicPairSampler s;
  s.reset(4);
  s.set(0, 7);
  s.set(1, 0);
  s.set(2, 12);
  s.set(3, 3);
  return s;
}

TEST(SamplerAudit, SilentOnHealthyStateBothRegimes) {
  DynamicPairSampler s = healthy_sampler();
  EXPECT_NO_THROW(s.audit_invariants());
  // Let the alias table build (stable weights + draws), then re-audit.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) (void)s.draw(rng);
  EXPECT_NO_THROW(s.audit_invariants());
}

TEST(SamplerAudit, FiresOnCorruptedSlotWeight) {
  DynamicPairSampler s = healthy_sampler();
  AuditTestPeer::corrupt_slot_weight(s);
  EXPECT_THROW(s.audit_invariants(), AuditError);
}

TEST(SamplerAudit, FiresOnCorruptedFenwickNode) {
  DynamicPairSampler s = healthy_sampler();
  AuditTestPeer::corrupt_fenwick_node(s);
  EXPECT_THROW(s.audit_invariants(), AuditError);
}

BatchSystem healthy_batch_system() {
  auto p = make_exact_majority();
  std::vector<std::size_t> counts(p->num_states(), 0);
  counts[0] = 6;
  counts[1] = 4;
  BatchSystem sys(RuleMatrix::compile(std::move(p), Model::TW), counts);
  Rng rng(21);
  (void)sys.advance(500, rng);
  return sys;
}

TEST(BatchSystemAudit, SilentAfterRealRun) {
  BatchSystem sys = healthy_batch_system();
  EXPECT_NO_THROW(sys.audit_invariants());
}

TEST(BatchSystemAudit, FiresOnSkippedDirtyFlush) {
  BatchSystem sys = healthy_batch_system();
  // Settle the legitimate pending deltas first: a run leaves the states
  // touched by the last fire on the dirty list, and the audit's own
  // flush would repair a corruption sitting on a still-dirty state.
  EXPECT_NO_THROW(sys.audit_invariants());
  // Now move an agent between states behind the sampler's back: the
  // incrementally maintained slot weights go stale with nothing dirty,
  // exactly as if a fire path forgot mark_dirty.
  const auto& c = sys.counts();
  State from = 0;
  while (c[from] == 0) ++from;
  const State to = from == 0 ? 1 : 0;
  AuditTestPeer::move_without_dirty(sys, from, to);
  EXPECT_THROW(sys.audit_invariants(), AuditError);
}

TEST(StateUniverseAudit, SilentThroughInternReleaseRecycle) {
  StateUniverse u;
  const State a = u.intern("alpha");
  (void)u.intern("beta");
  EXPECT_NO_THROW(u.audit_invariants());
  u.release(a);
  EXPECT_NO_THROW(u.audit_invariants());
  (void)u.intern("gamma");  // recycles a's id
  EXPECT_NO_THROW(u.audit_invariants());
}

TEST(StateUniverseAudit, FiresOnClearedCtrlByte) {
  StateUniverse u;
  const State a = u.intern("alpha");
  (void)u.intern("beta");
  AuditTestPeer::clear_live_ctrl(u, a);
  EXPECT_THROW(u.audit_invariants(), AuditError);
}

TEST(StateUniverseAudit, FiresOnDoublePlacedId) {
  StateUniverse u;
  const State a = u.intern("alpha");
  (void)u.intern("beta");
  AuditTestPeer::duplicate_slot(u, a);
  EXPECT_THROW(u.audit_invariants(), AuditError);
}

TEST(OutcomeCacheAudit, FiresOnCurrentEntryWithDeadOutput) {
  OutcomeCache c;
  c.set_capacity(64);
  c.insert_raw(/*key=*/5, /*in=*/1, /*out=*/{2, 3});
  // All outputs live: silent.
  EXPECT_NO_THROW(c.audit_live_outputs("test", [](State) { return true; }));
  // Output id 2 dead while the entry still validates: the resurrection
  // hazard the generation machinery exists to prevent.
  EXPECT_THROW(
      c.audit_live_outputs("test", [](State s) { return s != 2; }),
      AuditError);
}

TEST(OutcomeCacheAudit, SkipsStaleEntries) {
  OutcomeCache c;
  c.set_capacity(64);
  c.insert_raw(5, 1, {2, 3});
  // Bumping the generation of an output id makes the entry STALE — it can
  // never validate again, so a dead id behind it is harmless and the
  // audit must not fire.
  AuditTestPeer::bump_generation(c, 2);
  EXPECT_NO_THROW(c.audit_live_outputs("test", [](State s) { return s != 2; }));
}

TEST(RuleSourceAudit, FiresWhenReleaseBypassesCacheInvalidation) {
  const std::size_t n = 6;
  auto p = make_exact_majority();
  SidRuleSource rules(p, Model::IO, n);
  std::vector<State> sim(n, 0);
  sim[0] = sim[1] = 1;
  const std::vector<State> ids = rules.intern_initial(sim);
  EXPECT_NO_THROW(rules.audit_invariants());
  // Find an interaction whose reactor actually moves, so its successor id
  // sits in the reactor-half cache.
  State out = kNoState;
  for (std::size_t i = 0; i < n && out == kNoState; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const StatePair o =
          rules.outcome(InteractionClass::Real, ids[i], ids[j]);
      if (o.reactor != ids[j]) {
        out = o.reactor;
        break;
      }
    }
  }
  ASSERT_NE(out, kNoState) << "no reacting pair in the seed configuration";
  EXPECT_NO_THROW(rules.audit_invariants());
  // Release the cached successor directly, skipping the invalidate walk
  // release_state() performs: a currently-valid cache row now references
  // a dead id.
  AuditTestPeer::release_bypassing_invalidate(rules, out);
  EXPECT_THROW(rules.audit_invariants(), AuditError);
}

TEST(CountIndexAudit, FiresOnBucketDesync) {
  CountIndex idx;
  idx.ensure(64);
  idx.add(3, 5);
  idx.add(40, 2);
  EXPECT_NO_THROW(idx.audit_invariants());
  AuditTestPeer::corrupt_count_bucket(idx);
  EXPECT_THROW(idx.audit_invariants(), AuditError);
}

TEST(SimBatchSystemAudit, SilentAfterRealRunAndFiresOnCountCorruption) {
  const std::size_t n = 8;
  auto p = make_exact_majority();
  auto rules = std::make_shared<SidRuleSource>(p, Model::IO, n);
  std::vector<State> sim(n, 0);
  sim[0] = sim[1] = sim[2] = 1;
  SimBatchSystem sys(rules, sim);
  Rng rng(31);
  (void)sys.advance(400, rng);
  EXPECT_NO_THROW(sys.audit_invariants());
  const State occupied = sys.configuration().occupied().front();
  AuditTestPeer::corrupt_configuration(sys, occupied);
  EXPECT_THROW(sys.audit_invariants(), AuditError);
}

TEST(OmissionAudit, FiresOnBudgetAndBurstOverrun) {
  AdversaryParams params;
  params.kind = AdversaryKind::Budget;
  params.rate = 0.5;
  params.max_omissions = 5;
  params.max_burst = 3;
  {
    OmissionProcess o(params);
    EXPECT_NO_THROW(o.audit_invariants());
    AuditTestPeer::overrun_budget(o);
    EXPECT_THROW(o.audit_invariants(), AuditError);
  }
  {
    OmissionProcess o(params);
    AuditTestPeer::overrun_burst(o);
    EXPECT_THROW(o.audit_invariants(), AuditError);
  }
}

TEST(RoundSystemAudit, FiresOnSplitThatStopsRecomposing) {
  BatchSystem base = healthy_batch_system();
  RoundSystem round(base);
  Rng rng(17);
  (void)round.advance(200, rng);
  // The scratch still holds the last round; auditing against its own
  // totals is silent, and one overcounted contingency cell breaks the
  // cells == round-length recomposition.
  const std::uint64_t len = AuditTestPeer::cells_sum(round);
  const std::uint64_t k_om = AuditTestPeer::omits_sum(round);
  ASSERT_GT(len, 0u);
  EXPECT_NO_THROW(AuditTestPeer::audit_round(round, len, k_om));
  AuditTestPeer::corrupt_round_split(round);
  EXPECT_THROW(AuditTestPeer::audit_round(round, len, k_om), AuditError);
}

}  // namespace
}  // namespace ppfs

// The product combinator: semilinear closure of the protocol library
// (boolean combinations of threshold and modulo predicates), natively and
// under simulation.
#include "protocols/product.hpp"

#include <gtest/gtest.h>

#include "engine/workload_runner.hpp"
#include "protocols/counting.hpp"
#include "protocols/parity.hpp"
#include "sim/skno.hpp"
#include "verify/matching.hpp"

namespace ppfs {
namespace {

TEST(Product, Validates) {
  auto a = make_threshold_counting(2);
  EXPECT_THROW(make_product_protocol(nullptr, a, combine_or()),
               std::invalid_argument);
  EXPECT_THROW(make_product_protocol(a, a, nullptr), std::invalid_argument);
}

TEST(Product, StateSpaceAndNames) {
  auto a = make_threshold_counting(2);  // 3 states
  auto b = make_mod_counting(2, 1);     // 4 states
  auto p = make_product_protocol(a, b, combine_or());
  EXPECT_EQ(p->num_states(), 12u);
  EXPECT_NE(p->state_name(0).find(','), std::string::npos);
  EXPECT_EQ(p->name(), a->name() + "*" + b->name());
}

TEST(Product, DeltaActsComponentwise) {
  auto a = make_threshold_counting(2);
  auto b = make_mod_counting(2, 1);
  auto p = make_product_protocol(a, b, combine_or());
  const State s = product_state(*a, *b, 1, 1);
  const State r = product_state(*a, *b, 1, 1);
  const StatePair want_a = a->delta(1, 1);
  const StatePair want_b = b->delta(1, 1);
  EXPECT_EQ(p->delta(s, r),
            (StatePair{product_state(*a, *b, want_a.starter, want_b.starter),
                       product_state(*a, *b, want_a.reactor, want_b.reactor)}));
}

TEST(Product, CombinersShortCircuit) {
  EXPECT_EQ(combine_or()(1, -1), 1);
  EXPECT_EQ(combine_or()(-1, 0), -1);
  EXPECT_EQ(combine_or()(0, 0), 0);
  EXPECT_EQ(combine_and()(0, -1), 0);
  EXPECT_EQ(combine_and()(-1, 1), -1);
  EXPECT_EQ(combine_and()(1, 1), 1);
}

struct Case {
  std::size_t ones;  // agents with input 1 (out of n = 8)
  int expect_or;     // (#ones >= 3) OR (#ones odd)
  int expect_and;    // (#ones >= 3) AND (#ones odd)
};

class SemilinearSweep : public ::testing::TestWithParam<Case> {};

TEST_P(SemilinearSweep, NativeVerdicts) {
  const auto [ones, expect_or, expect_and] = GetParam();
  const std::size_t n = 8;
  auto thr = make_threshold_counting(3);
  auto odd = make_mod_counting(2, 1);
  for (const bool use_or : {true, false}) {
    auto p = make_product_protocol(thr, odd,
                                   use_or ? combine_or() : combine_and());
    std::vector<State> init;
    for (std::size_t i = 0; i < n; ++i) {
      const State bit = i < ones ? 1 : 0;
      init.push_back(product_state(*thr, *odd, bit, bit));
    }
    Workload w{"semilinear", p, std::move(init),
               use_or ? expect_or : expect_and, nullptr};
    const auto res = run_native_workload(w, 600 + ones);
    EXPECT_TRUE(res.converged)
        << "ones=" << ones << (use_or ? " or" : " and");
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, SemilinearSweep,
                         ::testing::Values(Case{0, 0, 0}, Case{1, 1, 0},
                                           Case{2, 0, 0}, Case{3, 1, 1},
                                           Case{4, 1, 0}, Case{5, 1, 1},
                                           Case{8, 1, 0}));

TEST(Product, SimulatesUnderSkno) {
  // The combined predicate also runs through the fault-tolerant simulator.
  const std::size_t n = 8, ones = 5;
  auto thr = make_threshold_counting(3);
  auto odd = make_mod_counting(2, 1);
  auto p = make_product_protocol(thr, odd, combine_and());
  std::vector<State> init;
  for (std::size_t i = 0; i < n; ++i) {
    const State bit = i < ones ? 1 : 0;
    init.push_back(product_state(*thr, *odd, bit, bit));
  }
  SknoSimulator sim(p, Model::I3, 1, init);
  UniformScheduler sched(n);
  Rng rng(61);
  RunOptions opt;
  opt.max_steps = 4'000'000;
  const auto res = run_until(sim, sched, rng, [&](const SknoSimulator& s) {
    for (State q : s.projection())
      if (p->output(q) != 1) return false;
    return true;
  }, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(verify_simulation(sim, 4 * n).ok);
}

}  // namespace
}  // namespace ppfs

#include "core/population.hpp"

#include <gtest/gtest.h>

#include "protocols/logic.hpp"
#include "protocols/pairing.hpp"

namespace ppfs {
namespace {

TEST(Population, ConstructionValidates) {
  auto p = make_or_protocol();
  EXPECT_THROW(Population(nullptr, {0}), std::invalid_argument);
  EXPECT_THROW(Population(p, {}), std::invalid_argument);
  EXPECT_THROW(Population(p, {0, 9}), std::invalid_argument);
}

TEST(Population, InteractAppliesDelta) {
  auto p = make_or_protocol();
  Population pop(p, {0, 1, 0});
  pop.interact(1, 0);  // (1,0) -> (1,1)
  EXPECT_EQ(pop.state(0), 1u);
  EXPECT_EQ(pop.state(1), 1u);
  EXPECT_EQ(pop.state(2), 0u);
}

TEST(Population, RejectsSelfInteraction) {
  auto p = make_or_protocol();
  Population pop(p, {0, 1});
  EXPECT_THROW(pop.interact(1, 1), std::invalid_argument);
}

TEST(Population, Counts) {
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  Population pop(p, make_initial({{st.consumer, 3}, {st.producer, 2}}));
  const auto c = pop.counts();
  EXPECT_EQ(c[st.consumer], 3u);
  EXPECT_EQ(c[st.producer], 2u);
  EXPECT_EQ(c[st.critical], 0u);
  EXPECT_EQ(pop.count_of(st.consumer), 3u);
}

TEST(Population, ConsensusOutput) {
  auto p = make_or_protocol();
  Population all_ones(p, {1, 1, 1});
  EXPECT_EQ(all_ones.consensus_output(), 1);
  Population mixed(p, {1, 0, 1});
  EXPECT_EQ(mixed.consensus_output(), -1);
}

TEST(Population, ConsensusUndecidedWhenNoOutput) {
  ProtocolBuilder b("t");
  b.add_state("u", -1, true);
  auto p = b.build();
  Population pop(p, {0, 0});
  EXPECT_EQ(pop.consensus_output(), -1);
}

TEST(Population, SetStateValidates) {
  auto p = make_or_protocol();
  Population pop(p, {0, 0});
  pop.set_state(0, 1);
  EXPECT_EQ(pop.state(0), 1u);
  EXPECT_THROW(pop.set_state(0, 42), std::invalid_argument);
}

TEST(MakeInitial, ConcatenatesGroups) {
  const auto v = make_initial({{2, 2}, {5, 1}, {0, 3}});
  EXPECT_EQ(v, (std::vector<State>{2, 2, 5, 0, 0, 0}));
}

TEST(Population, EqualityByStates) {
  auto p = make_or_protocol();
  Population a(p, {0, 1});
  Population b(p, {0, 1});
  Population c(p, {1, 0});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace ppfs

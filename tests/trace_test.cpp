#include "engine/trace.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "engine/native.hpp"
#include "protocols/logic.hpp"
#include "sched/scheduler.hpp"

namespace ppfs {
namespace {

TEST(Trace, RoundTripsThroughText) {
  Trace t({{0, 1, false},
           {2, 3, true, OmitSide::Both},
           {1, 0, true, OmitSide::Starter},
           {3, 2, true, OmitSide::Reactor}});
  const Trace back = Trace::parse_string(t.to_string("demo"));
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.omission_count(), 3u);
}

TEST(Trace, ParsesCommentsAndBlankLines) {
  const Trace t = Trace::parse_string("# header\n\n0 1\n  # indented comment\n1 0 o\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.interactions()[0].omissive);
  EXPECT_TRUE(t.interactions()[1].omissive);
}

TEST(Trace, RejectsGarbage) {
  EXPECT_THROW(Trace::parse_string("zero one\n"), std::invalid_argument);
  EXPECT_THROW(Trace::parse_string("0 1 xx\n"), std::invalid_argument);
}

TEST(Trace, ReplayDrivesASystem) {
  Trace t({{0, 1, false}, {1, 2, false}});
  NativeSystem sys(make_or_protocol(), {1, 0, 0});
  t.replay(sys);
  EXPECT_EQ(sys.population().consensus_output(), 1);
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(Trace::parse_string("# nothing\n").size(), 0u);
}

TEST(Trace, SaveEmitsComment) {
  Trace t({{0, 1, false}});
  const std::string s = t.to_string("lemma-1 artifact");
  EXPECT_NE(s.find("# lemma-1 artifact"), std::string::npos);
}

TEST(RecordingScheduler, IsTransparentAndCapturesEveryInteraction) {
  constexpr std::size_t kN = 16;
  constexpr std::size_t kSteps = 200;

  // Reference run: the bare scheduler from a fixed seed.
  std::vector<Interaction> expect;
  {
    UniformScheduler bare(kN);
    Rng rng(42);
    for (std::size_t s = 0; s < kSteps; ++s) expect.push_back(bare.next(rng, s));
  }

  // Wrapped run: identical seed must yield the identical schedule (the
  // decorator adds no Rng draws), and the sink must hold all of it.
  Trace sink;
  RecordingScheduler rec(std::make_unique<UniformScheduler>(kN), &sink);
  Rng rng(42);
  for (std::size_t s = 0; s < kSteps; ++s) {
    const Interaction ia = rec.next(rng, s);
    EXPECT_EQ(ia, expect[s]);
  }
  EXPECT_EQ(rec.recorded(), kSteps);
  ASSERT_EQ(sink.size(), kSteps);
  EXPECT_EQ(sink.interactions(), expect);
}

TEST(RecordingScheduler, CapturedTraceReplaysToSameConfiguration) {
  // Record a live run, then replay the captured trace into a fresh copy
  // of the system — the flight-recorder use case: a schedule captured
  // once reproduces the run exactly.
  constexpr std::size_t kN = 8;
  constexpr std::size_t kSteps = 64;
  const std::vector<State> init = {1, 1, 1, 0, 0, 0, 0, 0};

  NativeSystem live(make_or_protocol(), init);
  Trace sink;
  RecordingScheduler rec(std::make_unique<UniformScheduler>(kN), &sink);
  Rng rng(7);
  for (std::size_t s = 0; s < kSteps; ++s) live.interact(rec.next(rng, s));

  NativeSystem replayed(make_or_protocol(), init);
  sink.replay(replayed);
  EXPECT_EQ(replayed.population().counts(), live.population().counts());
}

TEST(RecordingScheduler, NullSinkPassesThroughWithoutRecording) {
  RecordingScheduler rec(std::make_unique<UniformScheduler>(4), nullptr);
  Rng rng(1);
  (void)rec.next(rng, 0);
  (void)rec.next(rng, 1);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(RecordingScheduler, RejectsNullInner) {
  Trace sink;
  EXPECT_THROW(RecordingScheduler(nullptr, &sink), std::invalid_argument);
}

}  // namespace
}  // namespace ppfs

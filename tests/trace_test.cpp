#include "engine/trace.hpp"

#include <gtest/gtest.h>

#include "engine/native.hpp"
#include "protocols/logic.hpp"

namespace ppfs {
namespace {

TEST(Trace, RoundTripsThroughText) {
  Trace t({{0, 1, false},
           {2, 3, true, OmitSide::Both},
           {1, 0, true, OmitSide::Starter},
           {3, 2, true, OmitSide::Reactor}});
  const Trace back = Trace::parse_string(t.to_string("demo"));
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.omission_count(), 3u);
}

TEST(Trace, ParsesCommentsAndBlankLines) {
  const Trace t = Trace::parse_string("# header\n\n0 1\n  # indented comment\n1 0 o\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.interactions()[0].omissive);
  EXPECT_TRUE(t.interactions()[1].omissive);
}

TEST(Trace, RejectsGarbage) {
  EXPECT_THROW(Trace::parse_string("zero one\n"), std::invalid_argument);
  EXPECT_THROW(Trace::parse_string("0 1 xx\n"), std::invalid_argument);
}

TEST(Trace, ReplayDrivesASystem) {
  Trace t({{0, 1, false}, {1, 2, false}});
  NativeSystem sys(make_or_protocol(), {1, 0, 0});
  t.replay(sys);
  EXPECT_EQ(sys.population().consensus_output(), 1);
}

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(Trace::parse_string("# nothing\n").size(), 0u);
}

TEST(Trace, SaveEmitsComment) {
  Trace t({{0, 1, false}});
  const std::string s = t.to_string("lemma-1 artifact");
  EXPECT_NE(s.find("# lemma-1 artifact"), std::string::npos);
}

}  // namespace
}  // namespace ppfs

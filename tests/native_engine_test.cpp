#include "engine/native.hpp"

#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "protocols/logic.hpp"
#include "protocols/oneway.hpp"
#include "protocols/pairing.hpp"

namespace ppfs {
namespace {

TEST(NativeSystem, AppliesDelta) {
  NativeSystem sys(make_pairing_protocol(), make_initial({{0, 1}, {1, 1}}));
  sys.interact(Interaction{0, 1, false});  // (c,p) -> (cs, bot)
  const auto st = pairing_states();
  EXPECT_EQ(sys.population().state(0), st.critical);
  EXPECT_EQ(sys.population().state(1), st.bottom);
  EXPECT_EQ(sys.steps(), 1u);
}

TEST(NativeSystem, RejectsOmissions) {
  NativeSystem sys(make_or_protocol(), {0, 1});
  EXPECT_THROW(sys.interact(Interaction{0, 1, true}), std::invalid_argument);
}

TEST(NativeSystem, RunUntilConvergesOr) {
  NativeSystem sys(make_or_protocol(), {1, 0, 0, 0, 0, 0});
  UniformScheduler sched(6);
  Rng rng(1);
  const auto res = run_until(sys, sched, rng, [](const NativeSystem& s) {
    return s.population().consensus_output() == 1;
  });
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(sys.population().consensus_output(), 1);
}

TEST(RunSteps, CountsOmissions) {
  // run_steps against a one-way system that accepts omissions.
  OneWaySystem sys(make_io_or(), Model::I1, {0, 1});
  ScriptedScheduler sched({{0, 1, true}, {0, 1, false}, {1, 0, true}}, nullptr);
  Rng rng(2);
  const auto res = run_steps(sys, sched, rng, 3);
  EXPECT_EQ(res.steps, 3u);
  EXPECT_EQ(res.omissions, 2u);
}

TEST(OneWaySystem, IoReactorOnly) {
  OneWaySystem sys(make_io_or(), Model::IO, {1, 0});
  sys.interact(Interaction{0, 1, false});
  EXPECT_EQ(sys.state(0), 1u);  // starter untouched
  EXPECT_EQ(sys.state(1), 1u);  // reactor computed OR
}

TEST(OneWaySystem, RejectsNonIoProtocolUnderIo) {
  EXPECT_THROW(OneWaySystem(make_it_or_with_beacon(), Model::IO, {0, 0}),
               std::invalid_argument);
}

TEST(OneWaySystem, ItAppliesG) {
  auto p = make_it_or_with_beacon();
  OneWaySystem sys(p, Model::IT, {0, 0});
  sys.interact(Interaction{0, 1, false});
  EXPECT_EQ(sys.state(0), p->g(0));  // beacon phase flipped
}

TEST(OneWaySystem, RejectsTwoWayModel) {
  EXPECT_THROW(OneWaySystem(make_io_or(), Model::TW, {0, 0}),
               std::invalid_argument);
}

TEST(OneWaySystem, OmissionSemanticsI1) {
  // I1: (g(as), ar) — reactor untouched.
  OneWaySystem sys(make_io_or(), Model::I1, {1, 0});
  sys.interact(Interaction{0, 1, true});
  EXPECT_EQ(sys.state(1), 0u);
}

TEST(OneWaySystem, OmissionSemanticsI2AppliesGToBoth) {
  auto p = make_it_or_with_beacon();
  OneWaySystem sys(p, Model::I2, {0, 0});
  sys.interact(Interaction{0, 1, true});
  EXPECT_EQ(sys.state(0), p->g(0));
  EXPECT_EQ(sys.state(1), p->g(0));
}

TEST(OneWaySystem, OmissionSemanticsI3UsesH) {
  OneWaySystem sys(make_io_or(), Model::I3, {1, 0});
  sys.set_reactor_omission_fn([](State) { return State{1}; });  // h: mark
  sys.interact(Interaction{0, 1, true});
  EXPECT_EQ(sys.state(1), 1u);
}

TEST(OneWaySystem, OmissionSemanticsI4UsesO) {
  OneWaySystem sys(make_io_or(), Model::I4, {0, 1});
  sys.set_starter_omission_fn([](State) { return State{1}; });  // o: mark
  sys.interact(Interaction{0, 1, true});
  EXPECT_EQ(sys.state(0), 1u);  // starter detected
  EXPECT_EQ(sys.state(1), 1u);  // reactor applied g = id
}

TEST(OneWaySystem, DetectionFnsGatedByCaps) {
  OneWaySystem i1(make_io_or(), Model::I1, {0, 0});
  EXPECT_THROW(i1.set_reactor_omission_fn([](State s) { return s; }),
               std::invalid_argument);
  EXPECT_THROW(i1.set_starter_omission_fn([](State s) { return s; }),
               std::invalid_argument);
}

TEST(OneWaySystem, RejectsOmissionInNonOmissiveModel) {
  OneWaySystem sys(make_io_or(), Model::IO, {0, 0});
  EXPECT_THROW(sys.interact(Interaction{0, 1, true}), std::invalid_argument);
}

TEST(OneWaySystem, IoOrConvergesUnderUniform) {
  const std::size_t n = 12;
  std::vector<State> init(n, 0);
  init[3] = 1;
  OneWaySystem sys(make_io_or(), Model::IO, init);
  UniformScheduler sched(n);
  Rng rng(3);
  const auto res = run_until(
      sys, sched, rng,
      [](const OneWaySystem& s) { return s.consensus_output() == 1; });
  EXPECT_TRUE(res.converged);
}

TEST(OneWaySystem, IoLeaderElectsExactlyOne) {
  const std::size_t n = 9;
  OneWaySystem sys(make_io_leader(), Model::IO, std::vector<State>(n, 0));
  UniformScheduler sched(n);
  Rng rng(4);
  const auto res = run_until(sys, sched, rng, [](const OneWaySystem& s) {
    std::size_t leaders = 0;
    for (State q : s.states())
      if (q == 0) ++leaders;
    return leaders == 1;
  });
  EXPECT_TRUE(res.converged);
}

TEST(OneWaySystem, IoMaxSpreadsMaximum) {
  OneWaySystem sys(make_io_max(6), Model::IO, {0, 2, 5, 1, 3});
  UniformScheduler sched(5);
  Rng rng(5);
  const auto res = run_until(sys, sched, rng, [](const OneWaySystem& s) {
    return s.consensus_output() == 5;
  });
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace ppfs

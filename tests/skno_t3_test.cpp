// SKnO under the two-way omissive model T3, via the I3 -> T3 embedding
// (the specialization arrow of Figure 1 made executable): fs(s,r) := g(s),
// o := g, so a starter-side omission is outcome-identical to a fault-free
// delivery and only reactor-side losses consume the omission budget.
#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "sim/skno.hpp"
#include "verify/matching.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

TEST(SknoT3, AcceptsT3Model) {
  EXPECT_NO_THROW(SknoSimulator(make_pairing_protocol(), Model::T3, 1, {0, 1}));
}

TEST(SknoT3, StarterSideOmissionDeliversAnyway) {
  // (o(as), fr(as, ar)) with o = g: the reactor still receives the token.
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::T3, 1,
                    {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true, OmitSide::Starter});
  EXPECT_EQ(sim.stats().tokens_killed, 0u);
  EXPECT_EQ(sim.stats().jokers_minted, 0u);
  EXPECT_EQ(sim.queue_size(1), 1u);  // token arrived
}

TEST(SknoT3, ReactorSideOmissionMintsJoker) {
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::T3, 1,
                    {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true, OmitSide::Reactor});
  EXPECT_EQ(sim.stats().tokens_killed, 1u);
  EXPECT_EQ(sim.stats().jokers_minted, 1u);
}

TEST(SknoT3, BothSidesOmissionBehavesAsReactorLoss) {
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::T3, 1,
                    {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true, OmitSide::Both});
  EXPECT_EQ(sim.stats().tokens_killed, 1u);
  EXPECT_EQ(sim.stats().jokers_minted, 1u);
}

TEST(SknoT3, TransitionCompletesDespiteMixedOmissions) {
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::T3, 1,
                    {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true, OmitSide::Starter});  // delivered
  sim.interact(Interaction{0, 1, true, OmitSide::Reactor});  // <p,2> lost
  sim.interact(Interaction{0, 1, false});  // queue empty now; pending
  // Reactor holds <p,1> + joker: completes via wildcard.
  EXPECT_EQ(sim.simulated_state(1), st.critical);
}

struct T3Param {
  std::size_t o;
  std::size_t n;
  std::uint64_t seed;
};

class SknoT3Sweep : public ::testing::TestWithParam<T3Param> {};

TEST_P(SknoT3Sweep, SimulatesWorkloadsUnderBudget) {
  const auto [o, n, seed] = GetParam();
  for (const Workload& w : core_workloads(n)) {
    SknoSimulator sim(w.protocol, Model::T3, o, w.initial);
    AdversaryParams ap;
    ap.kind = AdversaryKind::Budget;
    ap.rate = 0.05;
    ap.max_omissions = o;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(seed);
    auto counts_probe = workload_counts_probe(w);
    auto probe = [&](const SknoSimulator& s) {
      std::vector<std::size_t> counts(w.protocol->num_states(), 0);
      for (State q : s.projection()) ++counts[q];
      return counts_probe(counts, *w.protocol);
    };
    RunOptions opt;
    opt.max_steps = 800'000 + 20'000 * n * (o + 1);
    const auto res = run_until(sim, sched, rng, probe, opt);
    EXPECT_TRUE(res.converged) << sim.describe() << " on " << w.name;
    const auto rep = verify_simulation(sim, 4 * n);
    EXPECT_TRUE(rep.ok) << sim.describe() << " on " << w.name
                        << (rep.errors.empty() ? "" : ": " + rep.errors[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SknoT3Sweep,
                         ::testing::Values(T3Param{1, 4, 501}, T3Param{2, 6, 502},
                                           T3Param{2, 10, 503}));

TEST(SknoT3, SafetyUnderBudgetedTwoSidedOmissions) {
  const std::size_t n = 8, o = 2;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Workload w = core_workloads(n)[3];  // pairing
    SknoSimulator sim(w.protocol, Model::T3, o, w.initial);
    PairingMonitor mon(sim.projection());
    AdversaryParams ap;
    ap.kind = AdversaryKind::Budget;
    ap.rate = 0.2;
    ap.max_omissions = o;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(seed);
    for (std::size_t i = 0; i < 30'000; ++i) {
      sim.interact(sched.next(rng, i));
      if (i % 16 == 0) mon.observe(sim.projection());
    }
    mon.observe(sim.projection());
    EXPECT_FALSE(mon.safety_violated()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ppfs

#include "sched/fairness.hpp"

#include <gtest/gtest.h>

#include "sched/adversary.hpp"
#include "sched/scheduler.hpp"

namespace ppfs {
namespace {

TEST(Fairness, Validates) {
  EXPECT_THROW(FairnessAuditor(1), std::invalid_argument);
  FairnessAuditor f(3);
  EXPECT_THROW(f.observe(Interaction{0, 0, false}), std::invalid_argument);
  EXPECT_THROW(f.observe(Interaction{0, 9, false}), std::invalid_argument);
}

TEST(Fairness, CountsPerOrderedPair) {
  FairnessAuditor f(3);
  f.observe(Interaction{0, 1, false});
  f.observe(Interaction{0, 1, false});
  f.observe(Interaction{1, 0, false});
  EXPECT_EQ(f.count(0, 1), 2u);
  EXPECT_EQ(f.count(1, 0), 1u);
  EXPECT_EQ(f.count(2, 0), 0u);
  EXPECT_EQ(f.pairs_covered(), 2u);
  EXPECT_FALSE(f.all_pairs_covered());
}

TEST(Fairness, OmissionsDoNotCount) {
  FairnessAuditor f(2);
  f.observe(Interaction{0, 1, true});
  EXPECT_EQ(f.count(0, 1), 0u);
  EXPECT_EQ(f.steps(), 1u);
}

TEST(Fairness, UniformSchedulerCoversQuickly) {
  const std::size_t n = 6;
  FairnessAuditor f(n);
  UniformScheduler sched(n);
  Rng rng(3);
  for (std::size_t i = 0; i < 2000 && !f.all_pairs_covered(); ++i)
    f.observe(sched.next(rng, i));
  EXPECT_TRUE(f.all_pairs_covered());
  EXPECT_LT(f.max_historic_gap(), 2000u);
}

TEST(Fairness, GapTracksStarvation) {
  FairnessAuditor f(2);
  f.observe(Interaction{0, 1, false});
  for (int i = 0; i < 10; ++i) f.observe(Interaction{1, 0, false});
  f.observe(Interaction{0, 1, false});
  EXPECT_EQ(f.max_historic_gap(), 11u);
  EXPECT_LE(f.max_current_gap(), 12u);
}

TEST(Fairness, UoAdversaryPreservesRealCoverage) {
  // Even at a high omission rate, the UO adversary must not starve the
  // real interactions (Def. 1 inserts, never removes).
  const std::size_t n = 4;
  AdversaryParams p;
  p.kind = AdversaryKind::UO;
  p.rate = 0.6;
  OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, p);
  FairnessAuditor f(n);
  Rng rng(7);
  for (std::size_t i = 0; i < 10'000; ++i) f.observe(sched.next(rng, i));
  EXPECT_TRUE(f.all_pairs_covered());
}

}  // namespace
}  // namespace ppfs

// Side-targeted omission adversaries in count space (ROADMAP open item 2):
// AdversaryParams carries an OmitSide, parse_adversary_spec accepts the
// "@starter|@reactor|@both" suffix, and the batch engine executes the
// matching OmitStarter / OmitReactor outcome class the RuleMatrix already
// compiles — instead of hard-coding OmitSide::Both. Native and batch must
// stay distributionally identical under every side.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "chi_square.hpp"
#include "core/rule_matrix.hpp"
#include "engine/batch/dispatch.hpp"
#include "protocols/registry.hpp"
#include "sched/omission_process.hpp"

namespace ppfs {
namespace {

using ppfs::testing::chi_square_homogeneity;
using ppfs::testing::chi_square_limit;
using Counts = ppfs::testing::Counts;

TEST(AdversarySpec, ParsesSideSuffix) {
  EXPECT_EQ(parse_adversary_spec("uo").side, OmitSide::Both);
  EXPECT_EQ(parse_adversary_spec("uo@starter:0.2").side, OmitSide::Starter);
  EXPECT_EQ(parse_adversary_spec("uo@starter:0.2").rate, 0.2);
  EXPECT_EQ(parse_adversary_spec("budget@reactor:8").side, OmitSide::Reactor);
  EXPECT_EQ(parse_adversary_spec("budget@reactor:8").max_omissions, 8u);
  EXPECT_EQ(parse_adversary_spec("no1@both").side, OmitSide::Both);
  EXPECT_EQ(parse_adversary_spec("no@starter:1000:0.5").quiet_after, 1000u);
  EXPECT_THROW((void)parse_adversary_spec("uo@everyone"), std::invalid_argument);
}

TEST(OmissionClass, SideMapsToCompiledClass) {
  EXPECT_EQ(omission_class_for(Model::T2, OmitSide::Both),
            InteractionClass::OmitBoth);
  EXPECT_EQ(omission_class_for(Model::T2, OmitSide::Starter),
            InteractionClass::OmitStarter);
  EXPECT_EQ(omission_class_for(Model::T3, OmitSide::Reactor),
            InteractionClass::OmitReactor);
  // One-way transmission has no side distinction.
  EXPECT_EQ(omission_class_for(Model::I3, OmitSide::Starter),
            InteractionClass::OmitBoth);
  EXPECT_THROW((void)omission_class_for(Model::TW, OmitSide::Both),
               std::invalid_argument);

  auto p = standard_workloads(6)[0].protocol;
  const RuleMatrix m = RuleMatrix::compile(p, Model::T3);
  for (const OmitSide side :
       {OmitSide::Both, OmitSide::Starter, OmitSide::Reactor}) {
    Interaction ia{0, 1, true, side};
    EXPECT_EQ(m.omission_class(side), m.classify(ia));
  }
}

TEST(OmissionSide, BatchHonorsStarterSideOutcomes) {
  // Identity protocol with a sentinel-valued o: under T2 a starter-side
  // (or both-sides) omission maps state A to S, while a reactor-side
  // omission leaves everything unchanged (h = id is forced below T3). The
  // sentinel can therefore only appear if the batch engine really selects
  // the side-targeted outcome class.
  ProtocolBuilder b("mark");
  const State A = b.add_state("A", -1, true);
  (void)b.add_state("B", -1, true);
  const State S = b.add_state("S");
  auto p = b.build();

  EngineConfig config;
  config.model = Model::T2;
  config.fns.o = [A, S](State q) { return q == A ? S : q; };
  AdversaryParams adv;
  adv.kind = AdversaryKind::UO;
  adv.rate = 0.5;

  const std::vector<State> init = {A, A, A, 1, 1, 1};
  for (const OmitSide side : {OmitSide::Starter, OmitSide::Reactor}) {
    adv.side = side;
    config.adversary = adv;
    auto engine = make_engine("batch", p, init, config);
    UniformScheduler sched(init.size());
    Rng rng(7);
    (void)run_engine_steps(*engine, sched, rng, 400);
    const Counts counts = engine->counts();
    EXPECT_GT(engine->omissions(), 0u);
    if (side == OmitSide::Starter) {
      EXPECT_GT(counts[S], 0u) << "starter-side omissions must mark";
    } else {
      EXPECT_EQ(counts[S], 0u) << "reactor-side omissions must not mark";
    }
  }
}

// --- native/batch chi-square under side-targeted adversaries ---------------

std::map<Counts, std::size_t> engine_distribution(
    const std::string& kind, const Workload& w, const EngineConfig& config,
    std::size_t interactions, std::size_t trials, std::uint64_t seed) {
  std::map<Counts, std::size_t> dist;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(seed + trial * 7919);
    auto engine = make_engine(kind, w.protocol, w.initial, config);
    UniformScheduler sched(w.initial.size());
    (void)run_engine_steps(*engine, sched, rng, interactions);
    Counts key = engine->counts();
    key.push_back(engine->omissions());
    ++dist[key];
  }
  return dist;
}

TEST(OmissionSide, NativeBatchChiSquareUnderSideTargetedAdversaries) {
  const std::size_t n = 8;
  const auto workloads = standard_workloads(n);
  const Workload& approx = workloads[2];
  const Workload& pairing = workloads.back();
  struct Case {
    const Workload* w;
    Model model;
    OmitSide side;
    const char* label;
  };
  const Case cases[] = {
      {&approx, Model::T2, OmitSide::Starter, "T2+uo@starter"},
      {&approx, Model::T3, OmitSide::Reactor, "T3+uo@reactor"},
      {&pairing, Model::T1, OmitSide::Starter, "T1+uo@starter"},
      {&pairing, Model::T1, OmitSide::Reactor, "T1+uo@reactor"},
  };
  for (const Case& c : cases) {
    EngineConfig config;
    config.model = c.model;
    AdversaryParams adv;
    adv.kind = AdversaryKind::UO;
    adv.rate = 0.3;
    adv.side = c.side;
    config.adversary = adv;
    const auto native =
        engine_distribution("native", *c.w, config, 3 * n, 110, 4001);
    const auto batch =
        engine_distribution("batch", *c.w, config, 3 * n, 110, 4002);
    const auto [stat, df] = chi_square_homogeneity(native, batch, 110, 110);
    EXPECT_LE(stat, chi_square_limit(df))
        << c.label << ": chi2=" << stat << " df=" << df;
  }
}

}  // namespace
}  // namespace ppfs

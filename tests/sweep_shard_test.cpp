// Sweep service contracts (exp/sweep_service.hpp):
//   * shard_jobs is a disjoint complete round-robin cover of the job list;
//   * a k-shard run + merge_partials is BYTE-identical to the 1-process
//     run, at any thread count and any merge order;
//   * checkpoints resume a killed sweep — Tier A (completed replicas) and
//     Tier B (in-flight engine snapshot) — to byte-identical output;
//   * the binary codecs (ReplicaResult, partials, checkpoints) round-trip
//     and refuse corrupt or mismatched input.
#include "exp/sweep_service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ppfs::exp {
namespace {

constexpr const char* kGrid =
    "or,exact-majority@n=64,128:engine=batch:adv=budget:20:checkevery=512";

SweepProvenance prov_for(std::size_t index, std::size_t count) {
  SweepProvenance p;
  p.grid = kGrid;
  p.trials = 5;
  p.seed = 20260808;
  p.shard_index = index;
  p.shard_count = count;
  return p;
}

std::string report_bytes(const Report& report) {
  std::ostringstream os;
  report.write_json(os);
  return std::move(os).str() + "|" + report.fingerprint();
}

// The reference: the whole sweep in one process.
std::string reference_bytes(std::size_t threads) {
  SweepServiceOptions opt;
  opt.threads = threads;
  SweepRun run = run_sweep_shard(prov_for(0, 1), opt);
  return report_bytes(fold_report(run.points, std::move(run.results)));
}

TEST(SweepShard, RoundRobinIsDisjointCompleteCover) {
  const std::vector<ScenarioSpec> points = prov_for(0, 1).expand_points();
  const std::vector<ReplicaJob> jobs = sweep_jobs(points);
  ASSERT_EQ(jobs.size(), points.size() * 5);

  for (const std::size_t k : {1u, 2u, 3u, 5u, 7u}) {
    std::set<std::pair<std::size_t, std::size_t>> seen;
    std::size_t total = 0;
    for (std::size_t i = 0; i < k; ++i) {
      for (const ReplicaJob& job : shard_jobs(jobs, i, k)) {
        EXPECT_TRUE(seen.insert({job.point, job.trial}).second)
            << "shards overlap at k=" << k;
        ++total;
      }
    }
    EXPECT_EQ(total, jobs.size()) << "cover incomplete at k=" << k;
  }
  EXPECT_THROW((void)shard_jobs(jobs, 3, 3), std::invalid_argument);
  EXPECT_THROW((void)shard_jobs(jobs, 0, 0), std::invalid_argument);
}

TEST(SweepShard, MergeIsByteIdenticalToOneProcessRun) {
  const std::string reference = reference_bytes(1);
  // Also pin thread-count stability of the reference itself.
  EXPECT_EQ(reference, reference_bytes(3));

  std::vector<std::string> partials;
  for (std::size_t i = 0; i < 3; ++i) {
    SweepServiceOptions opt;
    opt.threads = 2;
    const SweepRun run = run_sweep_shard(prov_for(i, 3), opt);
    partials.push_back(
        encode_partial(prov_for(i, 3), run.points, run.results, run.owned));
  }

  EXPECT_EQ(report_bytes(merge_partials(partials)), reference);

  // Merge order insensitivity: rotated input, same bytes.
  const std::vector<std::string> rotated = {partials[2], partials[0],
                                            partials[1]};
  EXPECT_EQ(report_bytes(merge_partials(rotated)), reference);
}

TEST(SweepShard, PartialBytesAreThreadCountStable) {
  std::vector<std::string> images;
  for (const std::size_t threads : {1u, 4u}) {
    SweepServiceOptions opt;
    opt.threads = threads;
    const SweepRun run = run_sweep_shard(prov_for(1, 3), opt);
    images.push_back(
        encode_partial(prov_for(1, 3), run.points, run.results, run.owned));
  }
  EXPECT_EQ(images[0], images[1]);
}

TEST(SweepShard, MergeRefusesBadCovers) {
  std::vector<std::string> partials;
  for (std::size_t i = 0; i < 2; ++i) {
    const SweepRun run = run_sweep_shard(prov_for(i, 2), {});
    partials.push_back(
        encode_partial(prov_for(i, 2), run.points, run.results, run.owned));
  }

  // Missing shard.
  EXPECT_THROW((void)merge_partials({partials[0]}), std::runtime_error);
  // Duplicate shard.
  EXPECT_THROW((void)merge_partials({partials[0], partials[0]}),
               std::runtime_error);
  // Provenance mismatch: same shape, different seed.
  SweepProvenance other = prov_for(1, 2);
  other.seed = 1;
  const SweepRun run = run_sweep_shard(other, {});
  const std::string foreign =
      encode_partial(other, run.points, run.results, run.owned);
  EXPECT_THROW((void)merge_partials({partials[0], foreign}),
               std::runtime_error);
  // Corrupt image.
  EXPECT_THROW((void)merge_partials({partials[0], "PPFSPARx"}),
               std::runtime_error);
  EXPECT_THROW(
      (void)merge_partials(
          {partials[0], partials[1].substr(0, partials[1].size() - 3)}),
      std::runtime_error);
}

TEST(SweepShard, ReplicaResultCodecRoundTrips) {
  ReplicaResult r;
  r.run.steps = 123456789;
  r.run.converged = true;
  r.run.omissions = 17;
  r.convergence_step = 123000000;
  r.fires = 42;
  r.noops = 9001;
  r.omissive_fires = 3;
  r.extras = {{"m.cache_hits", 0.125}, {"sim_pairs", 88.0}};
  r.flight = "{\"snap\":1}\n";
  r.traj = std::string("\x01\x02\x00\xff", 4);
  r.error = "";

  bin::Writer w;
  save_replica_result(w, r);
  bin::Reader rd(w.data());
  const ReplicaResult back = load_replica_result(rd);
  EXPECT_TRUE(rd.done());
  EXPECT_EQ(back.run.steps, r.run.steps);
  EXPECT_EQ(back.run.converged, r.run.converged);
  EXPECT_EQ(back.run.omissions, r.run.omissions);
  EXPECT_EQ(back.convergence_step, r.convergence_step);
  EXPECT_EQ(back.fires, r.fires);
  EXPECT_EQ(back.noops, r.noops);
  EXPECT_EQ(back.omissive_fires, r.omissive_fires);
  EXPECT_EQ(back.extras, r.extras);
  EXPECT_EQ(back.flight, r.flight);
  EXPECT_EQ(back.traj, r.traj);
  EXPECT_EQ(back.error, r.error);

  // The never-converged sentinel (SIZE_MAX) survives the varint.
  ReplicaResult nc;
  bin::Writer w2;
  save_replica_result(w2, nc);
  bin::Reader rd2(w2.data());
  EXPECT_EQ(load_replica_result(rd2).convergence_step, nc.convergence_step);
}

TEST(SweepShard, CheckpointCodecRoundTrips) {
  SweepCheckpoint ck;
  ck.prov = prov_for(0, 2);
  ReplicaResult r;
  r.run.steps = 77;
  ck.completed = {{0, r}, {2, ReplicaResult{}}};
  ck.has_inflight = true;
  ck.inflight_job = 4;
  ck.inflight.engine = std::string("\x00\x01binary", 8);
  ck.inflight.rng = {9, {1, 2, 3, 4}, 55};
  ck.inflight.harness_steps = 1024;
  ck.inflight.harness_consecutive = 2;

  const SweepCheckpoint back = decode_checkpoint(encode_checkpoint(ck));
  EXPECT_EQ(back.prov, ck.prov);
  ASSERT_EQ(back.completed.size(), 2u);
  EXPECT_EQ(back.completed[0].first, 0u);
  EXPECT_EQ(back.completed[0].second.run.steps, 77u);
  EXPECT_EQ(back.completed[1].first, 2u);
  EXPECT_TRUE(back.has_inflight);
  EXPECT_EQ(back.inflight_job, 4u);
  EXPECT_EQ(back.inflight.engine, ck.inflight.engine);
  EXPECT_EQ(back.inflight.rng.seed, 9u);
  EXPECT_EQ(back.inflight.rng.draws, 55u);
  EXPECT_EQ(back.inflight.harness_steps, 1024u);

  EXPECT_THROW((void)decode_checkpoint("PPFSCKP1garbage"),
               std::runtime_error);
  EXPECT_THROW((void)decode_checkpoint("NOTACKPT"), std::runtime_error);
}

TEST(SweepShard, TierAResumeIsByteIdentical) {
  const std::string reference = reference_bytes(2);
  const char* ck_file = "sweep_shard_test_tier_a.ck";

  // Run the full sweep once with checkpointing; the final checkpoint lists
  // every job completed.
  {
    SweepServiceOptions opt;
    opt.threads = 2;
    opt.checkpoint_file = ck_file;
    (void)run_sweep_shard(prov_for(0, 1), opt);
  }
  SweepCheckpoint full = decode_checkpoint(bin::read_file(ck_file));
  std::remove(ck_file);
  const std::size_t all = full.completed.size();
  ASSERT_GT(all, 4u);

  // "Kill" the sweep at various points: truncate the completed list to a
  // prefix — exactly the state an atomically-rewritten checkpoint file
  // holds after SIGKILL — and resume, multi- and single-threaded.
  for (const std::size_t keep : {std::size_t{0}, all / 3, all - 1}) {
    SweepCheckpoint partial = full;
    partial.completed.resize(keep);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      SweepServiceOptions opt;
      opt.threads = threads;
      opt.resume = &partial;
      SweepRun run = run_sweep_shard(prov_for(0, 1), opt);
      EXPECT_EQ(report_bytes(fold_report(run.points, std::move(run.results))),
                reference)
          << "resume diverged at keep=" << keep << " threads=" << threads;
    }
  }

  // A checkpoint from a different sweep must be refused.
  SweepCheckpoint foreign = full;
  foreign.prov.seed = 1;
  SweepServiceOptions opt;
  opt.resume = &foreign;
  EXPECT_THROW((void)run_sweep_shard(prov_for(0, 1), opt),
               std::runtime_error);
}

TEST(SweepShard, TierBInflightResumeIsByteIdentical) {
  const std::string reference = reference_bytes(1);
  const std::vector<ScenarioSpec> points = prov_for(0, 1).expand_points();

  // Capture an in-flight snapshot of global job 0 (point 0, trial 0).
  std::vector<ReplicaSnapshot> snaps;
  (void)run_replica_resumable(
      points[0], 0, nullptr,
      [&](const ReplicaSnapshot& s) { snaps.push_back(s); },
      /*snapshot_every=*/1);
  ASSERT_FALSE(snaps.empty());

  SweepCheckpoint ck;
  ck.prov = prov_for(0, 1);
  ck.has_inflight = true;
  ck.inflight_job = 0;
  ck.inflight = snaps.front();

  // threads=1 resumes the replica mid-run; threads=2 discards the snapshot
  // and re-runs job 0 from scratch. Both are byte-identical to the
  // uninterrupted sweep.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    SweepServiceOptions opt;
    opt.threads = threads;
    opt.resume = &ck;
    SweepRun run = run_sweep_shard(ck.prov, opt);
    EXPECT_EQ(report_bytes(fold_report(run.points, std::move(run.results))),
              reference)
        << "in-flight resume diverged at threads=" << threads;
  }
}

TEST(SweepShard, CheckpointFileIsMaintainedDuringTheDrain) {
  const char* ck_file = "sweep_shard_test_drain.ck";
  std::size_t calls = 0;
  SweepServiceOptions opt;
  opt.threads = 1;
  opt.checkpoint_file = ck_file;
  opt.on_replica = [&](std::size_t done, std::size_t total,
                       const ScenarioSpec&, std::size_t,
                       const ReplicaResult&) {
    ++calls;
    EXPECT_EQ(done, calls);
    EXPECT_EQ(total, 20u);  // 4 points x 5 trials
    // After every completed replica the on-disk checkpoint lists exactly
    // the replicas completed so far.
    const SweepCheckpoint ck = decode_checkpoint(bin::read_file(ck_file));
    EXPECT_EQ(ck.completed.size(), done);
  };
  (void)run_sweep_shard(prov_for(0, 1), opt);
  EXPECT_EQ(calls, 20u);
  std::remove(ck_file);
}

}  // namespace
}  // namespace ppfs::exp

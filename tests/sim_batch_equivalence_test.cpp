// Step-wise vs count-space simulator equivalence at the ENGINE level: the
// sparse batch engine (SimBatchSystem behind make_sim_engine) must realize
// the same distribution over simulated projections as the per-agent
// step-wise facade — leap sampling, silent-population bookkeeping, omission
// splitting, state interning and id recycling all included. Checked with
// two-sample chi-square homogeneity over the projected configuration after
// a fixed number of physical interactions (with the omissions-delivered
// count appended when an adversary is attached, so the omission streams
// must match too), plus a deterministic-seed regression pin of the
// integer-only step() path.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "chi_square.hpp"
#include "engine/batch/dispatch.hpp"
#include "engine/batch/sim_batch_system.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sim/sim_rules.hpp"

namespace ppfs {
namespace {

using ppfs::testing::chi_square_homogeneity;
using ppfs::testing::chi_square_limit;
using Counts = ppfs::testing::Counts;

// Distribution of (projected counts [, omissions]) after `interactions`
// physical interactions, across `trials` independent runs.
std::map<Counts, std::size_t> sim_engine_distribution(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    const std::vector<State>& initial, const SimEngineConfig& config,
    std::size_t interactions, std::size_t trials, std::uint64_t seed) {
  std::map<Counts, std::size_t> dist;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(seed + trial * 7919);
    auto engine = make_sim_engine(kind, protocol, initial, config);
    UniformScheduler sched(initial.size());
    (void)run_engine_steps(*engine, sched, rng, interactions);
    Counts key = engine->counts();
    if (config.adversary) key.push_back(engine->omissions());
    ++dist[key];
  }
  return dist;
}

void expect_sim_engines_match(std::shared_ptr<const Protocol> protocol,
                              const std::vector<State>& initial,
                              const SimEngineConfig& config,
                              std::size_t interactions, std::size_t trials,
                              std::uint64_t seed, const std::string& label) {
  const auto native = sim_engine_distribution("native", protocol, initial,
                                              config, interactions, trials, seed);
  const auto batch = sim_engine_distribution("batch", protocol, initial, config,
                                             interactions, trials, seed + 1);
  const auto [stat, df] = chi_square_homogeneity(native, batch, trials, trials);
  EXPECT_LE(stat, chi_square_limit(df))
      << label << ": chi2=" << stat << " df=" << df;
}

SimEngineConfig spec_config(const std::string& spec,
                            std::optional<Model> model = {},
                            std::optional<AdversaryParams> adversary = {}) {
  SimEngineConfig config;
  config.spec = parse_sim_spec(spec);
  config.model = model;
  config.adversary = adversary;
  return config;
}

std::size_t proj_sum(const Counts& c) {
  std::size_t s = 0;
  for (const std::size_t v : c) s += v;
  return s;
}

AdversaryParams budget_adv(std::size_t budget, double rate) {
  AdversaryParams p;
  p.kind = AdversaryKind::Budget;
  p.max_omissions = budget;
  p.rate = rate;
  return p;
}

TEST(SimBatchEquivalence, NaiveTwMatchesStepwise) {
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];  // exact-majority
  expect_sim_engines_match(w.protocol, w.initial, spec_config("naive"), 3 * n,
                           120, 3001, "naive/TW");
}

TEST(SimBatchEquivalence, NaiveOmissiveT2WithSideAdversary) {
  // The naive wrapper under T2 with a starter-side UO adversary: exercises
  // the side-targeted omission classes through the sim engines.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[2];  // approx-majority
  AdversaryParams adv;
  adv.kind = AdversaryKind::UO;
  adv.rate = 0.25;
  adv.side = OmitSide::Starter;
  expect_sim_engines_match(w.protocol, w.initial,
                           spec_config("naive", Model::T2, adv), 3 * n, 120,
                           3101, "naive/T2+uo@starter");
}

TEST(SimBatchEquivalence, SidMatchesStepwise) {
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];
  expect_sim_engines_match(w.protocol, w.initial, spec_config("sid"), 6 * n,
                           100, 3201, "sid/IO");
}

TEST(SimBatchEquivalence, SidUnderUoAdversaryMatchesStepwise) {
  // Omission-transparent path: the binomial split must reproduce the
  // step-wise omission stream exactly (omissions appended to the category).
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[0];  // or
  AdversaryParams adv;
  adv.kind = AdversaryKind::UO;
  adv.rate = 0.3;
  expect_sim_engines_match(w.protocol, w.initial,
                           spec_config("sid", std::nullopt, adv), 6 * n, 100,
                           3301, "sid/IO+uo");
}

TEST(SimBatchEquivalence, NamingMatchesStepwise) {
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[3];
  expect_sim_engines_match(w.protocol, w.initial, spec_config("naming"),
                           10 * n, 100, 3401, "naming/IO");
}

TEST(SimBatchEquivalence, SknoFaultFreeMatchesStepwise) {
  const std::size_t n = 6;
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  std::vector<State> init(n, st.consumer);
  init[0] = init[1] = init[2] = st.producer;
  expect_sim_engines_match(p, init, spec_config("skno:o=1"), 8 * n, 100, 3501,
                           "skno/I3 fault-free");
}

TEST(SimBatchEquivalence, OmissiveSknoMatchesStepwise) {
  // The omissive SKnO case: I3 with a budget adversary — omissions strike
  // the token stream (killed tokens, minted jokers, debt), and the batch
  // path inserts them through the event-punctuated leap.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];
  expect_sim_engines_match(
      w.protocol, w.initial,
      spec_config("skno:o=2", std::nullopt, budget_adv(2, 0.2)), 8 * n, 100,
      3601, "skno/I3+budget");
}

TEST(SimBatchEquivalence, CappedBurstSknoMatchesStepwise) {
  // Burst-capped adversary on SKnO (the non-transparent sim path): the
  // event-punctuated loop's forced-real branch and burst bookkeeping must
  // reproduce the step-wise adversary, omission stream included.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];
  expect_sim_engines_match(
      w.protocol, w.initial,
      spec_config("skno:o=3", std::nullopt,
                  parse_adversary_spec("budget:8:0.6:burst=2")),
      8 * n, 120, 3611, "skno/I3+capped-burst");
}

TEST(SimBatchEquivalence, CappedBurstSidMatchesStepwise) {
  // Burst-capped UO on an omission-transparent source (SID): the batch
  // engine runs the exact within-burst Markov leg instead of the binomial
  // split, and the omission stream must still match.
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[0];  // or
  expect_sim_engines_match(
      w.protocol, w.initial,
      spec_config("sid", std::nullopt, parse_adversary_spec("uo:0.5:burst=2")),
      6 * n, 120, 3621, "sid/IO+capped-burst");
}

TEST(SimBatchEquivalence, SknoMatchesStepwiseWithOuterCacheOnAndOff) {
  // The engine-level outcome cache and the delta path must be invisible
  // in distribution: run the same SKnO workload with the outer cache
  // forced on (explicit capacity) and forced off, against the step-wise
  // engine.
  const std::size_t n = 6;
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  std::vector<State> init(n, st.consumer);
  init[0] = init[1] = init[2] = st.producer;
  SimEngineConfig on = spec_config("skno:o=1");
  on.outcome_cache_capacity = 1u << 12;
  expect_sim_engines_match(p, init, on, 8 * n, 100, 3631, "skno cache on");
  SimEngineConfig off = spec_config("skno:o=1");
  off.outcome_cache_capacity = 0;
  expect_sim_engines_match(p, init, off, 8 * n, 100, 3641, "skno cache off");
}

TEST(SimBatchEquivalence, DeterministicSeedRegression) {
  // Pin the integer-only reference path (SimBatchSystem::step draws ids
  // from CountIndex inverse-CDF scans and the omission process; no
  // floating-point leap sampling), so a behavior change in the interning,
  // the samplers or the SKnO core shows up as an exact mismatch on every
  // platform.
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  const std::size_t n = 6;
  std::vector<State> init(n, st.consumer);
  init[0] = init[1] = st.producer;
  auto rules = std::make_shared<SknoRuleSource>(p, Model::I3, 1);
  SimBatchSystem sys(rules, init);
  sys.set_omission_process(budget_adv(3, 0.25));
  Rng rng(20260730);
  for (int i = 0; i < 600; ++i) (void)sys.step(rng);
  EXPECT_EQ(sys.steps(), 600u);
  // Golden values pinned from the first run (seed 20260730). The step()
  // path draws only integers from the deterministic xoshiro stream (plus
  // one uniform()-vs-rate compare per step), so these are identical on
  // every platform; a mismatch means the interning, the draw order, or
  // the SKnO value-level core changed behavior.
  const Counts expected = {2, 0, 2, 2};  // c, p, cs, bot
  EXPECT_EQ(sys.projected_counts(), expected);
  EXPECT_EQ(sys.omissions(), 3u);
  EXPECT_EQ(sys.universe_live(), 6u);
  EXPECT_EQ(sys.stats().total_fires(), 441u);
  EXPECT_EQ(sys.stats().noops(), 159u);
  EXPECT_EQ(proj_sum(sys.projected_counts()), n);
}

}  // namespace
}  // namespace ppfs

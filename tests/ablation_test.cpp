// Design-choice ablations: disable one mechanism at a time and exhibit the
// failure it was preventing. Each scenario runs the faithful simulator
// side by side with the ablated one on the same script.
#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "protocols/pairing.hpp"
#include "sched/scheduler.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "util/rng.hpp"
#include "verify/matching.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

// --- SKnO: the joker-debt ("Rummy") repayment -----------------------------
//
// o = 1, producers p0, p1 and consumers c1, c2. An omission kills p1's
// <p,1> and mints a joker at c1. c1 then completes p0's run using the
// joker as a stand-in for p0's STILL-ALIVE <p,2> (recording the debt).
// When the real <p,2> later reaches c1:
//   faithful: it is destroyed and the joker reborn — c2 can eventually
//             complete p1's crippled run and the system stays live;
//   ablated:  the duplicate survives, no joker ever exists again, and the
//             second pairing can never complete: liveness of Pair is lost
//             even though the omission budget was respected.
struct DebtScenario {
  // agents: 0 = p0, 1 = p1, 2 = c1, 3 = c2.
  static std::vector<State> initial() {
    const auto st = pairing_states();
    return {st.producer, st.producer, st.consumer, st.consumer};
  }
  static std::vector<Interaction> script() {
    return {
        {1, 2, true},   // p1's <p,1> dies; joker minted at c1
        {0, 2, false},  // p0's <p,1> arrives: c1 completes with the joker
                        //   (debt records <p,2>), c1 -> cs
        {0, 2, false},  // p0's real <p,2>: faithful converts it to a joker
        {1, 3, false},  // p1's <p,2> to c2 (c2 now needs <p,1> or a joker)
        // drain c1's queue toward c2: change tokens then (faithful) the
        // reborn joker.
        {2, 3, false},
        {2, 3, false},
        {2, 3, false},
    };
  }
};

TEST(AblationSknoDebt, FaithfulStaysLive) {
  const auto st = pairing_states();
  SknoSimulator sim(make_pairing_protocol(), Model::I3, 1, DebtScenario::initial());
  for (const auto& ia : DebtScenario::script()) sim.interact(ia);
  EXPECT_EQ(sim.simulated_state(2), st.critical);
  EXPECT_EQ(sim.simulated_state(3), st.critical);  // second pairing completed
  EXPECT_EQ(sim.stats().debt_conversions, 1u);
}

TEST(AblationSknoDebt, AblatedLosesLiveness) {
  const auto st = pairing_states();
  SknoSimulator::Options opt;
  opt.joker_debt = false;
  SknoSimulator sim(make_pairing_protocol(), Model::I3, 1, DebtScenario::initial(),
                    opt);
  for (const auto& ia : DebtScenario::script()) sim.interact(ia);
  EXPECT_EQ(sim.simulated_state(2), st.critical);  // first pairing fine
  EXPECT_NE(sim.simulated_state(3), st.critical);  // second one is stuck...
  // ...and stays stuck under any amount of fair scheduling: the one joker
  // the system was entitled to is gone and <p,1> no longer exists.
  UniformScheduler sched(4);
  Rng rng(5);
  for (std::size_t i = 0; i < 200'000; ++i) sim.interact(sched.next(rng, i));
  EXPECT_NE(sim.simulated_state(3), st.critical);
  EXPECT_EQ(sim.live_jokers(), 0u);
}

// --- SID: the line-6 freshness guard (state_other == stateP) --------------
//
// a0 pairs with producer a1 and saves its state p; a1 then completes a
// full interaction with a2 (becoming bot). When a1 next observes a0's
// stale pairing:
//   faithful: the guard refuses the lock; a0 eventually rolls back;
//   ablated:  a1 locks anyway; a0 later completes fr(p, c) = cs against a
//             producer that was already consumed — two critical consumers
//             from one producer, and the halves do not even match.
std::vector<Interaction> stale_lock_script() {
  return {
      {1, 0, false},  // a0 pairs with a1 (saves state p)
      {1, 2, false},  // a2 pairs with a1
      {2, 1, false},  // a1 locks with a2 (fs: p -> bot)
      {1, 2, false},  // a2 completes (fr: c -> cs)
      {2, 1, false},  // a1 unlocks
      {0, 1, false},  // a1 observes a0's STALE pairing  <-- the ablation point
      {1, 0, false},  // a0 reacts to whatever a1 did
  };
}

TEST(AblationSidGuard, FaithfulRefusesStaleLock) {
  const auto st = pairing_states();
  SidSimulator sim(make_pairing_protocol(), Model::IO,
                   {st.consumer, st.producer, st.consumer});
  PairingMonitor mon(sim.projection());
  for (const auto& ia : stale_lock_script()) {
    sim.interact(ia);
    mon.observe(sim.projection());
  }
  EXPECT_FALSE(mon.safety_violated());
  EXPECT_EQ(mon.max_critical(), 1u);  // only a2's legitimate pairing
  EXPECT_TRUE(verify_simulation(sim, 3).ok);
}

TEST(AblationSidGuard, AblatedDoubleSpendsTheProducer) {
  const auto st = pairing_states();
  SidCore::Options opt;
  opt.guard_partner_state = false;
  SidSimulator sim(make_pairing_protocol(), Model::IO,
                   {st.consumer, st.producer, st.consumer}, {}, opt);
  PairingMonitor mon(sim.projection());
  for (const auto& ia : stale_lock_script()) {
    sim.interact(ia);
    mon.observe(sim.projection());
  }
  EXPECT_TRUE(mon.safety_violated());
  EXPECT_EQ(mon.max_critical(), 2u);  // one producer, two critical consumers
  const auto rep = verify_simulation(sim, 0);
  EXPECT_FALSE(rep.ok);  // the forged halves cannot be matched
}

// The ablated variants still behave identically on fault-free runs where
// the mechanisms are never triggered — the ablation is surgical.
TEST(Ablation, VariantsAgreeWhenMechanismUnused) {
  const auto st = pairing_states();
  const std::vector<State> init{st.producer, st.consumer};
  SknoSimulator a(make_pairing_protocol(), Model::I3, 1, init);
  SknoSimulator::Options no_debt;
  no_debt.joker_debt = false;
  SknoSimulator b(make_pairing_protocol(), Model::I3, 1, init, no_debt);
  UniformScheduler sched(2);
  Rng r1(9), r2(9);
  for (std::size_t i = 0; i < 5'000; ++i) {
    a.interact(sched.next(r1, i));
  }
  UniformScheduler sched2(2);
  for (std::size_t i = 0; i < 5'000; ++i) {
    b.interact(sched2.next(r2, i));
  }
  EXPECT_EQ(a.projection(), b.projection());
}

}  // namespace
}  // namespace ppfs

// End-to-end matrix: every simulator x every capability-compatible model x
// the full standard workload suite, with matching verification — the
// umbrella test behind the green cells of Figure 4.
#include <gtest/gtest.h>

#include "engine/runner.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"
#include "verify/matching.hpp"

namespace ppfs {
namespace {

enum class Kind { TwNaive, Skno, Sid, Naming };

struct Cell {
  Kind kind;
  Model model;
  std::size_t o;     // SKnO bound (and adversary budget)
  double rate;       // omission rate
  std::uint64_t seed;
};

std::unique_ptr<Simulator> make_simulator(const Cell& c, const Workload& w) {
  switch (c.kind) {
    case Kind::TwNaive:
      return std::make_unique<TwSimulator>(w.protocol, c.model, w.initial);
    case Kind::Skno:
      return std::make_unique<SknoSimulator>(w.protocol, c.model, c.o, w.initial);
    case Kind::Sid:
      return std::make_unique<SidSimulator>(w.protocol, c.model, w.initial);
    case Kind::Naming:
      return std::make_unique<NamingSimulator>(w.protocol, c.model, w.initial);
  }
  throw std::logic_error("unreachable");
}

class Matrix : public ::testing::TestWithParam<Cell> {};

TEST_P(Matrix, SimulatesTheFullSuite) {
  const Cell c = GetParam();
  const std::size_t n = 8;
  for (const Workload& w : standard_workloads(n)) {
    auto sim = make_simulator(c, w);
    AdversaryParams ap;
    ap.kind = AdversaryKind::Budget;
    ap.rate = c.rate;
    ap.max_omissions = is_omissive(c.model) ? c.o : 0;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(c.seed);
    auto counts_probe = workload_counts_probe(w);
    auto probe = [&](const Simulator& s) {
      std::vector<std::size_t> counts(w.protocol->num_states(), 0);
      for (State q : s.projection()) ++counts[q];
      return counts_probe(counts, *w.protocol);
    };
    RunOptions opt;
    opt.max_steps = 1'500'000;
    const auto res = run_until(*sim, sched, rng, probe, opt);
    EXPECT_TRUE(res.converged) << sim->describe() << " on " << w.name << " after "
                               << res.steps << " steps";
    const auto rep = verify_simulation(*sim, 4 * n);
    EXPECT_TRUE(rep.ok) << sim->describe() << " on " << w.name
                        << (rep.errors.empty() ? "" : ": " + rep.errors[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig4GreenCells, Matrix,
    ::testing::Values(
        // TW column: the identity wrapper in the fault-free model.
        Cell{Kind::TwNaive, Model::TW, 0, 0.0, 901},
        // Knowledge-of-omissions: SKnO in I3/I4 under budgeted omissions,
        // and in IT with o = 0 (Corollary 1).
        Cell{Kind::Skno, Model::I3, 2, 0.05, 902},
        Cell{Kind::Skno, Model::I4, 2, 0.05, 903},
        Cell{Kind::Skno, Model::IT, 0, 0.0, 904},
        // IDs column: SID everywhere, unrestricted omission rate.
        Cell{Kind::Sid, Model::IO, 0, 0.0, 905},
        Cell{Kind::Sid, Model::T3, 0, 0.3, 906},
        Cell{Kind::Sid, Model::I1, 0, 0.3, 907},
        Cell{Kind::Sid, Model::I2, 0, 0.3, 908},
        // Knowledge-of-n column: Nn + SID.
        Cell{Kind::Naming, Model::IO, 0, 0.0, 909},
        Cell{Kind::Naming, Model::I4, 0, 0.3, 910}));

TEST(Integration, SimulatedVerdictAgreesWithNative) {
  // For deterministic-outcome workloads the simulated stable verdict must
  // equal the native two-way verdict exactly.
  const std::size_t n = 10;
  for (const Workload& w : standard_workloads(n)) {
    if (w.expected_output < 0) continue;
    const auto native = run_native_workload(w, 31);
    ASSERT_TRUE(native.converged) << w.name;

    SknoSimulator sim(w.protocol, Model::I3, 1, w.initial);
    UniformScheduler sched(n);
    Rng rng(32);
    auto probe = [&](const SknoSimulator& s) {
      for (State q : s.projection())
        if (w.protocol->output(q) != w.expected_output) return false;
      return true;
    };
    RunOptions opt;
    opt.max_steps = 2'000'000;
    const auto res = run_until(sim, sched, rng, probe, opt);
    EXPECT_TRUE(res.converged) << w.name;
  }
}

TEST(Integration, EventCountsScaleWithConvergence) {
  // Sanity on instrumentation: simulated updates accumulate and the
  // physical-interaction overhead is visible (> 1 per simulated update).
  const std::size_t n = 8;
  const Workload w = core_workloads(n)[1];
  SidSimulator sim(w.protocol, Model::IO, w.initial);
  UniformScheduler sched(n);
  Rng rng(33);
  (void)run_steps(sim, sched, rng, 20'000);
  EXPECT_GT(sim.simulated_updates(), 0u);
  EXPECT_GT(sim.interactions(), sim.simulated_updates());
}

}  // namespace
}  // namespace ppfs

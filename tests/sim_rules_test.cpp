// Unit tests for the open-universe abstraction (core/dynamic_rules.hpp)
// and the simulator rule sources (sim/sim_rules.hpp): interning and id
// recycling, the MatrixRuleSource adapter, and — the load-bearing property
// — deterministic LOCKSTEP equivalence between each step-wise simulator
// and its count-space rule source: driving the same interaction script
// through per-agent objects and through interned wrapper states must
// produce identical simulated projections at every step. (Distributional
// equivalence of the engines on top is covered by
// sim_batch_equivalence_test.cpp.)
#include "sim/sim_rules.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "protocols/majority.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sched/scheduler.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"
#include "util/rng.hpp"

namespace ppfs {
namespace {

TEST(StateUniverse, InternsDedupesAndRecycles) {
  StateUniverse u;
  const State a = u.intern("alpha");
  const State b = u.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(u.intern("alpha"), a);
  EXPECT_EQ(u.encoding(b), "beta");
  EXPECT_EQ(u.live(), 2u);

  u.release(a);
  EXPECT_EQ(u.live(), 1u);
  EXPECT_FALSE(u.is_live(a));
  EXPECT_THROW((void)u.encoding(a), std::out_of_range);
  EXPECT_THROW(u.release(a), std::out_of_range);

  // The freed id is recycled for the next new encoding.
  const State c = u.intern("gamma");
  EXPECT_EQ(c, a);
  EXPECT_EQ(u.capacity(), 2u);
  // Re-interning the released encoding is a NEW state.
  const State a2 = u.intern("alpha");
  EXPECT_EQ(u.encoding(a2), "alpha");
  EXPECT_EQ(u.live(), 3u);
}

TEST(MatrixRuleSource, AdaptsCompiledRuleMatrix) {
  auto p = make_exact_majority();
  MatrixRuleSource src(RuleMatrix::compile(p, Model::T1));
  EXPECT_EQ(src.universe_size(), p->num_states());
  EXPECT_FALSE(src.open_universe());
  EXPECT_FALSE(src.real_noop_factors());
  for (State s = 0; s < p->num_states(); ++s) {
    EXPECT_EQ(src.project(s), s);
    for (State r = 0; r < p->num_states(); ++r) {
      EXPECT_EQ(src.outcome(InteractionClass::Real, s, r), p->delta(s, r));
      // T1: o = h = id, so an omission on both sides is a global no-op —
      // exactly the naive simulator's faulty outcome.
      EXPECT_EQ(src.outcome(InteractionClass::OmitBoth, s, r),
                (StatePair{s, r}));
    }
  }
}

TEST(SimSpecParsing, AcceptsTheFourSimulators) {
  EXPECT_EQ(parse_sim_spec("naive").kind, "naive");
  EXPECT_EQ(parse_sim_spec("sid").kind, "sid");
  EXPECT_EQ(parse_sim_spec("naming").kind, "naming");
  const SimSpec s = parse_sim_spec("skno:o=8");
  EXPECT_EQ(s.kind, "skno");
  EXPECT_EQ(s.omission_bound, 8u);
  EXPECT_EQ(parse_sim_spec("skno").omission_bound, 0u);
  EXPECT_THROW(parse_sim_spec("frobnicate"), std::invalid_argument);
  EXPECT_THROW(parse_sim_spec("skno:o=x"), std::invalid_argument);
  EXPECT_THROW(parse_sim_spec("sid:o=3"), std::invalid_argument);
  EXPECT_EQ(default_sim_model(parse_sim_spec("naive")), Model::TW);
  EXPECT_EQ(default_sim_model(parse_sim_spec("skno:o=2")), Model::I3);
  EXPECT_EQ(default_sim_model(parse_sim_spec("skno")), Model::IT);
  EXPECT_EQ(default_sim_model(parse_sim_spec("naming")), Model::IO);
}

// Drive the step-wise simulator and the rule source through the same
// interaction script; the per-agent wrapper ids must project to the
// step-wise simulated states after every interaction.
void expect_lockstep(Simulator& sim, DynamicRuleSource& rules, std::size_t n,
                     double omission_rate, std::uint64_t seed,
                     std::size_t steps) {
  std::vector<State> ids = rules.intern_initial(sim.initial_projection());
  ASSERT_EQ(ids.size(), n);
  Rng rng(seed);
  for (std::size_t i = 0; i < steps; ++i) {
    Interaction ia = uniform_ordered_pair(rng, n);
    if (omission_rate > 0.0 && rng.chance(omission_rate)) {
      ia.omissive = true;
      const std::uint64_t side = rng.below(3);
      ia.side = side == 0 ? OmitSide::Both
                          : side == 1 ? OmitSide::Starter : OmitSide::Reactor;
    }
    const InteractionClass c =
        ia.omissive ? omission_class_for(sim.model(), ia.side)
                    : InteractionClass::Real;
    sim.interact(ia);
    const StatePair out = rules.outcome(c, ids[ia.starter], ids[ia.reactor]);
    ids[ia.starter] = out.starter;
    ids[ia.reactor] = out.reactor;
    for (AgentId a = 0; a < n; ++a) {
      ASSERT_EQ(rules.project(ids[a]), sim.simulated_state(a))
          << "agent " << a << " diverged at step " << i;
    }
  }
}

TEST(SimRulesLockstep, SidMatchesStepwiseSimulator) {
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];  // exact-majority
  SidSimulator sim(w.protocol, Model::IO, w.initial);
  SidRuleSource rules(w.protocol, Model::IO, n);
  expect_lockstep(sim, rules, n, 0.0, 11, 4000);
}

TEST(SimRulesLockstep, SidIgnoresOmissionsUnderAnyModel) {
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[0];  // or
  SidSimulator sim(w.protocol, Model::T3, w.initial);
  SidRuleSource rules(w.protocol, Model::T3, n);
  EXPECT_TRUE(rules.omission_transparent());
  expect_lockstep(sim, rules, n, 0.3, 12, 4000);
}

TEST(SimRulesLockstep, NamingMatchesStepwiseSimulator) {
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[3];
  NamingSimulator sim(w.protocol, Model::IO, w.initial);
  NamingRuleSource rules(w.protocol, Model::IO, n);
  expect_lockstep(sim, rules, n, 0.0, 13, 6000);
}

TEST(SimRulesLockstep, SknoMatchesStepwiseSimulatorI3) {
  const std::size_t n = 6;
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  std::vector<State> init(n, st.consumer);
  init[0] = init[1] = init[2] = st.producer;
  SknoSimulator sim(p, Model::I3, 2, init);
  SknoRuleSource rules(p, Model::I3, 2);
  expect_lockstep(sim, rules, n, 0.15, 14, 4000);
}

TEST(SimRulesLockstep, SknoMatchesStepwiseSimulatorI4AndT3) {
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[3];
  {
    SknoSimulator sim(w.protocol, Model::I4, 1, w.initial);
    SknoRuleSource rules(w.protocol, Model::I4, 1);
    expect_lockstep(sim, rules, n, 0.2, 15, 3000);
  }
  {
    SknoSimulator sim(w.protocol, Model::T3, 1, w.initial);
    SknoRuleSource rules(w.protocol, Model::T3, 1);
    expect_lockstep(sim, rules, n, 0.2, 16, 3000);
  }
}

TEST(SknoRuleSource, FactoredNoopStructureHolds) {
  // The factored contract the sparse engine leaps by: a Real interaction
  // is a no-op iff the starter is silent (pending, empty queue) — checked
  // against the actual outcomes for states reached in a random run.
  const std::size_t n = 6;
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  std::vector<State> init(n, st.consumer);
  init[0] = st.producer;
  SknoRuleSource rules(p, Model::I3, 1);
  ASSERT_TRUE(rules.real_noop_factors());
  ASSERT_TRUE(rules.open_universe());
  std::vector<State> ids = rules.intern_initial(init);
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Interaction ia = uniform_ordered_pair(rng, n);
    // Verify the contract on the current pair before advancing.
    const bool silent = rules.starter_silent(ids[ia.starter]);
    const StatePair out =
        rules.outcome(InteractionClass::Real, ids[ia.starter], ids[ia.reactor]);
    const bool noop =
        out.starter == ids[ia.starter] && out.reactor == ids[ia.reactor];
    ASSERT_EQ(silent, noop) << "at step " << i;
    ids[ia.starter] = out.starter;
    ids[ia.reactor] = out.reactor;
  }
}

// Minimal protocol with an arbitrary state count (identity delta): only
// used to probe the token-packing limits of the SKnO encoding.
class WideProtocol final : public Protocol {
 public:
  explicit WideProtocol(std::size_t q) : q_(q), init_{0} {}
  [[nodiscard]] std::size_t num_states() const override { return q_; }
  [[nodiscard]] StatePair delta(State s, State r) const override {
    return {s, r};
  }
  [[nodiscard]] std::string name() const override { return "wide"; }
  [[nodiscard]] const std::vector<State>& initial_states() const override {
    return init_;
  }

 private:
  std::size_t q_;
  std::vector<State> init_;
};

TEST(SknoRuleSource, RejectsUnpackableParameters) {
  // The u32 token packing (kind 2 | q 12 | qr 12 | index 6) supports at
  // most 4094 simulated states (0xfff is the kNoState sentinel) and
  // omission bounds o <= 62 (run indices 1..o+1 in 6 bits). Construction
  // must reject out-of-range protocols loudly instead of silently
  // corrupting the packed fields.
  auto p = make_pairing_protocol();
  EXPECT_THROW(SknoRuleSource(p, Model::I3, 63), std::invalid_argument);
  EXPECT_NO_THROW(SknoRuleSource(p, Model::I3, 62));
  try {
    SknoRuleSource bad(p, Model::I3, 63);
    FAIL() << "o = 63 must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("o <= 62"), std::string::npos)
        << e.what();
  }

  EXPECT_NO_THROW(SknoRuleSource(std::make_shared<WideProtocol>(4094),
                                 Model::I3, 1));
  EXPECT_THROW(SknoRuleSource(std::make_shared<WideProtocol>(4095),
                              Model::I3, 1),
               std::invalid_argument);
  try {
    SknoRuleSource bad(std::make_shared<WideProtocol>(5000), Model::I3, 1);
    FAIL() << "num_states = 5000 must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("4094"), std::string::npos)
        << e.what();
  }
}

// Encode/patch/decode fuzz: random SKnO step sequences must yield
// byte-identical interned states whether successors are built through the
// patch API (header tweak + queue-slot edits via
// StateUniverse::intern_patched, g/receive caches on) or through full
// re-serialization of the stepped agent records. Covers every supported
// model, omissive draws with random sides, and several omission bounds.
TEST(SknoRuleSource, PatchAndFullSerializationAgreeByteForByte) {
  struct Case {
    Model model;
    std::size_t o;
    double omission_rate;
  };
  const Case cases[] = {
      {Model::I3, 2, 0.2},
      {Model::I3, 0, 0.3},
      {Model::I4, 1, 0.25},
      {Model::T3, 1, 0.25},
      {Model::IT, 0, 0.0},
  };
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[3];  // exact-majority
  int case_idx = 0;
  for (const Case& c : cases) {
    SknoRuleSource patched(w.protocol, c.model, c.o);
    SknoRuleSource full(w.protocol, c.model, c.o);
    full.set_use_patches(false);
    ASSERT_TRUE(patched.use_patches());
    std::vector<State> ids_p = patched.intern_initial(w.initial);
    std::vector<State> ids_f = full.intern_initial(w.initial);
    ASSERT_EQ(ids_p, ids_f);
    Rng rng(4242 + case_idx);
    for (int step = 0; step < 3000; ++step) {
      Interaction ia = uniform_ordered_pair(rng, n);
      InteractionClass cls = InteractionClass::Real;
      if (c.omission_rate > 0.0 && rng.chance(c.omission_rate)) {
        const std::uint64_t side = rng.below(3);
        cls = omission_class_for(
            c.model, side == 0 ? OmitSide::Both
                               : side == 1 ? OmitSide::Starter
                                           : OmitSide::Reactor);
      }
      const StatePair out_p =
          patched.outcome(cls, ids_p[ia.starter], ids_p[ia.reactor]);
      const StatePair out_f =
          full.outcome(cls, ids_f[ia.starter], ids_f[ia.reactor]);
      // No releases happen in this test, so new encodings are interned in
      // the same order on both sides: ids AND bytes must agree.
      ASSERT_EQ(out_p, out_f) << "case " << case_idx << " step " << step;
      ASSERT_EQ(patched.state_encoding(out_p.starter),
                full.state_encoding(out_f.starter))
          << "case " << case_idx << " step " << step;
      ASSERT_EQ(patched.state_encoding(out_p.reactor),
                full.state_encoding(out_f.reactor))
          << "case " << case_idx << " step " << step;
      ids_p[ia.starter] = out_p.starter;
      ids_p[ia.reactor] = out_p.reactor;
      ids_f[ia.starter] = out_f.starter;
      ids_f[ia.reactor] = out_f.reactor;
    }
    ++case_idx;
  }
}

// Generic encode/patch/decode fuzz: drive a patch-building source and a
// full-reserialization reference through the same interaction script; ids
// AND canonical bytes must agree at every step (no releases happen, so new
// encodings intern in the same order on both sides). Shared by the SID and
// naming suites below — the SKnO case above predates it and keeps its
// model/omission-bound matrix.
template <typename Source>
void expect_patch_matches_full(Source& patched, Source& full,
                               const std::vector<State>& initial, Model model,
                               double omission_rate, std::uint64_t seed,
                               int steps, const std::string& label) {
  full.set_use_patches(false);
  ASSERT_TRUE(patched.use_patches());
  ASSERT_FALSE(full.use_patches());
  std::vector<State> ids_p = patched.intern_initial(initial);
  std::vector<State> ids_f = full.intern_initial(initial);
  ASSERT_EQ(ids_p, ids_f);
  const std::size_t n = initial.size();
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    const Interaction ia = uniform_ordered_pair(rng, n);
    InteractionClass cls = InteractionClass::Real;
    if (omission_rate > 0.0 && rng.chance(omission_rate)) {
      const std::uint64_t side = rng.below(3);
      cls = omission_class_for(model, side == 0 ? OmitSide::Both
                                     : side == 1 ? OmitSide::Starter
                                                 : OmitSide::Reactor);
    }
    const StatePair out_p =
        patched.outcome(cls, ids_p[ia.starter], ids_p[ia.reactor]);
    const StatePair out_f =
        full.outcome(cls, ids_f[ia.starter], ids_f[ia.reactor]);
    ASSERT_EQ(out_p, out_f) << label << " step " << step;
    ASSERT_EQ(patched.state_encoding(out_p.starter),
              full.state_encoding(out_f.starter))
        << label << " step " << step;
    ASSERT_EQ(patched.state_encoding(out_p.reactor),
              full.state_encoding(out_f.reactor))
        << label << " step " << step;
    ids_p[ia.starter] = out_p.starter;
    ids_p[ia.reactor] = out_p.reactor;
    ids_f[ia.starter] = out_f.starter;
    ids_f[ia.reactor] = out_f.reactor;
  }
}

TEST(SidRuleSource, PatchAndFullSerializationAgreeByteForByte) {
  const std::size_t n = 8;
  const Workload w = standard_workloads(n)[3];  // exact-majority
  {
    // Fault-free IO: Pairing/Rollback/Lock/Complete all exercised.
    SidRuleSource patched(w.protocol, Model::IO, n);
    SidRuleSource full(w.protocol, Model::IO, n);
    expect_patch_matches_full(patched, full, w.initial, Model::IO, 0.0, 5150,
                              4000, "sid/IO");
  }
  {
    // Omissive T3: the omission classes route through the same patch
    // builder (SID is omission-transparent — faulty outcomes are
    // identities or plain one-sided reactions).
    SidRuleSource patched(w.protocol, Model::T3, n);
    SidRuleSource full(w.protocol, Model::T3, n);
    expect_patch_matches_full(patched, full, w.initial, Model::T3, 0.3, 5151,
                              4000, "sid/T3+om");
  }
}

TEST(NamingRuleSource, PatchAndFullSerializationAgreeByteForByte) {
  const std::size_t n = 6;
  const Workload w = standard_workloads(n)[3];
  {
    // The two-layer record: Nn head edits (my_id/max_id) compose with the
    // SID body footprint in one patched intern.
    NamingRuleSource patched(w.protocol, Model::IO, n);
    NamingRuleSource full(w.protocol, Model::IO, n);
    expect_patch_matches_full(patched, full, w.initial, Model::IO, 0.0, 5250,
                              6000, "naming/IO");
  }
  {
    NamingRuleSource patched(w.protocol, Model::T3, n);
    NamingRuleSource full(w.protocol, Model::T3, n);
    expect_patch_matches_full(patched, full, w.initial, Model::T3, 0.25, 5251,
                              6000, "naming/T3+om");
  }
}

TEST(StateUniverse, GrowthRehashDoesNotDuplicateTheTriggeringId) {
  // Regression: the intern that TRIGGERS a growth rehash used to assign
  // its encoding before the load-factor check, so rehash() re-placed the
  // brand-new id and the post-rehash place() inserted it a second time.
  // The duplicate slot outlived a later release(): the next probe whose
  // tag matched it dereferenced a dead id's null encoding (the engine=auto
  // SKnO bench segfault). Force the exact sequence deterministically: the
  // lazy table has 64 slots and grows when (full + tombstones + 1) * 8
  // exceeds 7/8 capacity, i.e. on the 57th insert with no tombstones.
  StateUniverse u;
  for (int i = 0; i < 56; ++i)
    (void)u.intern("pre" + std::to_string(i));
  ASSERT_EQ(u.live(), 56u);
  const State trigger = u.intern("trigger");  // takes the growth-rehash path
  ASSERT_EQ(u.live(), 57u);
  u.release(trigger);
  // Pre-fix: this probe walks "trigger"'s own path, matches the stale
  // duplicate slot first, and dereferences the released id's null slot.
  const State again = u.intern("trigger");
  ASSERT_TRUE(u.is_live(again));
  EXPECT_EQ(u.encoding(again), "trigger");
  EXPECT_EQ(u.live(), 57u);
  // The table must still dedup correctly after the episode.
  EXPECT_EQ(u.intern("trigger"), again);
  for (int i = 0; i < 56; ++i)
    EXPECT_EQ(u.encoding(u.intern("pre" + std::to_string(i))),
              "pre" + std::to_string(i));
  EXPECT_EQ(u.live(), 57u);
}

TEST(StateUniverse, ChurnStressMatchesReferenceModel) {
  // Randomized differential test of the group-probe interning table
  // (util/group_probe.hpp) against a plain map reference: heavy
  // intern/release churn over a deliberately small encoding alphabet so
  // dedup hits, tombstone reuse, id recycling and load-factor rehashes all
  // trigger many times, in both the SIMD and scalar probe configurations.
  StateUniverse u;
  std::map<std::string, State> by_enc;  // reference: live encoding -> id
  std::vector<std::pair<State, std::string>> live;  // flat view for sampling
  Rng rng(20260808);
  const char alphabet[] = {'a', 'b', 'c', 'd'};
  auto random_enc = [&] {
    std::string s;
    const std::size_t len = 1 + rng.below(8);
    for (std::size_t i = 0; i < len; ++i)
      s.push_back(alphabet[rng.below(4)]);
    return s;
  };
  for (int op = 0; op < 30000; ++op) {
    const std::uint64_t kind = rng.below(10);
    if (kind < 5 || live.empty()) {
      // Intern a random encoding: dedupes onto the live id if present.
      const std::string enc = random_enc();
      const State id = u.intern(enc);
      const auto it = by_enc.find(enc);
      if (it != by_enc.end()) {
        ASSERT_EQ(id, it->second) << "op " << op << " enc " << enc;
      } else {
        by_enc.emplace(enc, id);
        live.emplace_back(id, enc);
      }
    } else if (kind < 8) {
      // Release a random live id; its slot becomes a tombstone and the id
      // recycles.
      const std::size_t pick = rng.below(live.size());
      const auto [id, enc] = live[pick];
      u.release(id);
      ASSERT_FALSE(u.is_live(id));
      by_enc.erase(enc);
      live[pick] = live.back();
      live.pop_back();
    } else {
      // Patch a random live base with one random in-range edit.
      const auto& [base, enc] = live[rng.below(live.size())];
      std::string expected = enc;
      std::vector<ByteEdit> edits;
      const char b = alphabet[rng.below(4)];
      // An earlier erase can leave an empty encoding live; only insert is
      // in-range against it.
      const std::uint64_t which = expected.empty() ? 1 : rng.below(3);
      if (which == 0) {
        const std::size_t pos = rng.below(expected.size());
        expected[pos] = b;
        edits.push_back(ByteEdit::replace(pos, {&b, 1}));
      } else if (which == 1) {
        const std::size_t pos = rng.below(expected.size() + 1);
        expected.insert(pos, 1, b);
        edits.push_back(ByteEdit::insert(pos, {&b, 1}));
      } else {
        const std::size_t pos = rng.below(expected.size());
        expected.erase(pos, 1);
        edits.push_back(ByteEdit::erase(pos, 1));
      }
      const State id = u.intern_patched(base, edits);
      const auto it = by_enc.find(expected);
      if (it != by_enc.end()) {
        ASSERT_EQ(id, it->second) << "op " << op << " patched " << expected;
      } else {
        ASSERT_EQ(u.encoding(id), expected) << "op " << op;
        by_enc.emplace(expected, id);
        live.emplace_back(id, expected);
      }
    }
    ASSERT_EQ(u.live(), by_enc.size()) << "op " << op;
    // Periodic full audit: every reference encoding still finds its id.
    if (op % 4096 == 0) {
      for (const auto& [enc2, id2] : by_enc) {
        ASSERT_TRUE(u.is_live(id2));
        ASSERT_EQ(u.encoding(id2), enc2);
        ASSERT_EQ(u.intern(enc2), id2);
      }
    }
  }
  EXPECT_GT(u.capacity(), 0u);
}

TEST(StateUniverse, InternPatchedMatchesManualEdits) {
  StateUniverse u;
  const State base = u.intern(std::string("\x01\x02\x03\x04\x05", 5));
  // Replace byte 1, insert two bytes at 3 (post-replace offsets), erase
  // the original trailing byte.
  const ByteEdit edits[] = {ByteEdit::replace(1, {"\x09", 1}),
                            ByteEdit::insert(3, {"\x0a\x0b", 2}),
                            ByteEdit::erase(6, 1)};
  const State patched = u.intern_patched(base, edits);
  EXPECT_EQ(u.encoding(patched), std::string("\x01\x09\x03\x0a\x0b\x04", 6));
  // Patching to an existing encoding dedupes onto the same id.
  const ByteEdit noop_edits[] = {ByteEdit::replace(0, {"\x01", 1})};
  EXPECT_EQ(u.intern_patched(base, noop_edits), base);
  // Out-of-range edits are rejected.
  const ByteEdit bad[] = {ByteEdit::erase(4, 2)};
  EXPECT_THROW((void)u.intern_patched(base, bad), std::out_of_range);
  const ByteEdit bad2[] = {ByteEdit::insert(6, {"x", 1})};
  EXPECT_THROW((void)u.intern_patched(base, bad2), std::out_of_range);
}

}  // namespace
}  // namespace ppfs

// SID (Figure 3, Theorem 4.5): scripted lock-cycle unit traces plus
// model/adversary sweeps — SID must simulate correctly in ALL ten models,
// under the unrestricted UO adversary (the all-green IDs column of Fig. 4).
#include "sim/sid.hpp"

#include <gtest/gtest.h>

#include <map>

#include "engine/runner.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/pairing.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "verify/matching.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

std::shared_ptr<const TableProtocol> pairing() { return make_pairing_protocol(); }

TEST(SidUnit, RequiresUniqueIds) {
  EXPECT_THROW(SidSimulator(pairing(), Model::IO, {0, 1}, {5, 5}),
               std::invalid_argument);
  EXPECT_THROW(SidSimulator(pairing(), Model::IO, {0, 1}, {kNoId, 1}),
               std::invalid_argument);
  EXPECT_THROW(SidSimulator(pairing(), Model::IO, {0, 1}, {1}),
               std::invalid_argument);
}

TEST(SidUnit, FourStepLockCycle) {
  // The canonical trace: pair, lock (fs applied), complete (fr applied),
  // unlock-by-observation.
  const auto st = pairing_states();
  SidSimulator sim(pairing(), Model::IO, {st.consumer, st.producer});
  // 1. (p=1 starter, c=0 reactor): c pairs with p.
  sim.interact(Interaction{1, 0, false});
  EXPECT_EQ(sim.agent(0).status, SidAgent::Status::Pairing);
  EXPECT_EQ(sim.agent(0).other_id, sim.agent(1).id);
  // 2. (c=0 starter, p=1 reactor): p sees the pairing targeting it with a
  //    current state copy -> locks and applies fs(p, c) = bot.
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.agent(1).status, SidAgent::Status::Locked);
  EXPECT_EQ(sim.simulated_state(1), st.bottom);
  EXPECT_EQ(sim.simulated_state(0), st.consumer);  // not yet
  // 3. (p=1 starter, c=0 reactor): c sees its locked partner -> completes
  //    fr(p, c) = cs with the state saved at pairing time.
  sim.interact(Interaction{1, 0, false});
  EXPECT_EQ(sim.simulated_state(0), st.critical);
  EXPECT_EQ(sim.agent(0).status, SidAgent::Status::Available);
  // 4. (c=0 starter, p=1 reactor): p sees c detached -> unlocks.
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.agent(1).status, SidAgent::Status::Available);

  const auto rep = verify_simulation(sim, 0);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.pairs, 1u);
  EXPECT_EQ(sim.stats().rollbacks, 1u);  // the unlock uses lines 14-16
}

TEST(SidUnit, LockRefusedWhenSavedStateStale) {
  // a0 pairs with a1; a1's simulated state then changes (via a completed
  // interaction with a2); the lock condition state_other == stateP fails
  // and a1 must NOT lock with a0.
  const auto st = pairing_states();
  SidSimulator sim(pairing(), Model::IO,
                   {st.consumer, st.producer, st.consumer});
  sim.interact(Interaction{1, 0, false});  // a0 pairs with a1 (saved state p)
  // a1 runs a full cycle with a2, changing its state to bot.
  sim.interact(Interaction{1, 2, false});  // a2 pairs with a1
  sim.interact(Interaction{2, 1, false});  // a1 locks with a2, fs -> bot
  sim.interact(Interaction{1, 2, false});  // a2 completes -> cs
  sim.interact(Interaction{2, 1, false});  // a1 unlocks
  EXPECT_EQ(sim.simulated_state(1), st.bottom);
  // a1 observes a0 pairing-targeting-a1 — but with the stale state copy p.
  // The line-6 guard state_other == stateP must refuse the lock.
  sim.interact(Interaction{0, 1, false});
  EXPECT_EQ(sim.agent(1).status, SidAgent::Status::Available);
  EXPECT_EQ(sim.simulated_state(1), st.bottom);
  // a0 then observes a1 engaged with nobody (other_id reset): rollback.
  sim.interact(Interaction{1, 0, false});
  EXPECT_EQ(sim.agent(0).status, SidAgent::Status::Available);
  const auto rep = verify_simulation(sim, 3);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST(SidUnit, RollbackWhenPartnerEngagedElsewhere) {
  const auto st = pairing_states();
  SidSimulator sim(pairing(), Model::IO,
                   {st.consumer, st.producer, st.consumer});
  sim.interact(Interaction{1, 0, false});  // a0 pairs with a1
  sim.interact(Interaction{2, 1, false});  // a1 pairs with a2 (a1 was available)
  // a0 observes a1 whose other_id = a2 != a0 -> rollback.
  sim.interact(Interaction{1, 0, false});
  EXPECT_EQ(sim.agent(0).status, SidAgent::Status::Available);
  EXPECT_GE(sim.stats().rollbacks, 1u);
}

TEST(SidUnit, LockedAgentIsFrozen) {
  const auto st = pairing_states();
  SidSimulator sim(pairing(), Model::IO,
                   {st.consumer, st.producer, st.consumer});
  sim.interact(Interaction{1, 0, false});  // a0 pairs a1
  sim.interact(Interaction{0, 1, false});  // a1 locks with a0
  ASSERT_EQ(sim.agent(1).status, SidAgent::Status::Locked);
  const State locked_state = sim.simulated_state(1);
  // Interactions with third parties must not move the locked agent.
  sim.interact(Interaction{2, 1, false});
  sim.interact(Interaction{1, 2, false});
  EXPECT_EQ(sim.agent(1).status, SidAgent::Status::Locked);
  EXPECT_EQ(sim.simulated_state(1), locked_state);
}

TEST(SidUnit, OmissionsAreNoOps) {
  const auto st = pairing_states();
  for (Model m : {Model::T1, Model::T2, Model::T3, Model::I1, Model::I2, Model::I3,
                  Model::I4}) {
    SidSimulator sim(pairing(), m, {st.consumer, st.producer});
    sim.interact(Interaction{1, 0, true});
    EXPECT_EQ(sim.agent(0).status, SidAgent::Status::Available) << model_name(m);
    EXPECT_EQ(sim.simulated_state(0), st.consumer) << model_name(m);
  }
}

struct SidParam {
  Model model;
  std::size_t n;
  double rate;  // UO omission rate (0 = fault-free)
  std::uint64_t seed;
};

class SidSweep : public ::testing::TestWithParam<SidParam> {};

TEST_P(SidSweep, SimulatesWorkloadsUnderEveryModel) {
  const auto [model, n, rate, seed] = GetParam();
  for (const Workload& w : core_workloads(n)) {
    SidSimulator sim(w.protocol, model, w.initial);
    AdversaryParams ap;
    ap.kind = AdversaryKind::UO;
    ap.rate = is_omissive(model) ? rate : 0.0;
    OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
    Rng rng(seed);
    auto counts_probe = workload_counts_probe(w);
    auto probe = [&](const SidSimulator& s) {
      std::vector<std::size_t> counts(w.protocol->num_states(), 0);
      for (State q : s.projection()) ++counts[q];
      return counts_probe(counts, *w.protocol);
    };
    RunOptions opt;
    opt.max_steps = 400'000 + 20'000 * n;
    const auto res = run_until(sim, sched, rng, probe, opt);
    EXPECT_TRUE(res.converged) << sim.describe() << " on " << w.name;
    const auto rep = verify_simulation(sim, 2 * n);
    EXPECT_TRUE(rep.ok) << sim.describe() << " on " << w.name
                        << (rep.errors.empty() ? "" : ": " + rep.errors[0]);
    EXPECT_GT(rep.pairs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SidSweep,
    ::testing::Values(SidParam{Model::IO, 4, 0.0, 201},
                      SidParam{Model::IO, 8, 0.0, 202},
                      SidParam{Model::IO, 16, 0.0, 203},
                      SidParam{Model::IT, 8, 0.0, 204},
                      SidParam{Model::TW, 8, 0.0, 205},
                      SidParam{Model::T1, 8, 0.3, 206},
                      SidParam{Model::T2, 8, 0.3, 207},
                      SidParam{Model::T3, 8, 0.3, 208},
                      SidParam{Model::I1, 8, 0.3, 209},
                      SidParam{Model::I2, 8, 0.3, 210},
                      SidParam{Model::I3, 8, 0.3, 211},
                      SidParam{Model::I4, 8, 0.3, 212}));

TEST(SidSim, TwoAgentSystemWorks) {
  // The n = 2 case of Theorem 4.5 (the paper treats it separately).
  const auto st = pairing_states();
  SidSimulator sim(pairing(), Model::IO, {st.consumer, st.producer});
  UniformScheduler sched(2);
  Rng rng(6);
  const auto res = run_until(sim, sched, rng, [&](const SidSimulator& s) {
    return s.simulated_state(0) == st.critical && s.simulated_state(1) == st.bottom;
  });
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(verify_simulation(sim, 2).ok);
}

TEST(SidSim, PairingSafetyUnderHeavyUO) {
  const std::size_t n = 10;
  const Workload w = core_workloads(n)[3];  // pairing
  SidSimulator sim(w.protocol, Model::I1, w.initial);
  PairingMonitor mon(sim.projection());
  AdversaryParams ap;
  ap.kind = AdversaryKind::UO;
  ap.rate = 0.5;  // unrestricted malignant adversary
  OmissionAdversary sched(std::make_unique<UniformScheduler>(n), n, ap);
  Rng rng(8);
  for (std::size_t i = 0; i < 60'000; ++i) {
    sim.interact(sched.next(rng, i));
    if (i % 32 == 0) mon.observe(sim.projection());
  }
  mon.observe(sim.projection());
  EXPECT_FALSE(mon.safety_violated());
  EXPECT_FALSE(mon.irrevocability_violated());
  EXPECT_TRUE(mon.target_reached());
}

TEST(SidSim, EventKeysPairLockWithComplete) {
  // The provenance keys (lock txn ids) must pair exactly 1:1.
  const std::size_t n = 8;
  const Workload w = core_workloads(n)[1];
  SidSimulator sim(w.protocol, Model::IO, w.initial);
  UniformScheduler sched(n);
  Rng rng(9);
  for (std::size_t i = 0; i < 30'000; ++i) sim.interact(sched.next(rng, i));
  std::map<std::uint64_t, std::pair<int, int>> by_key;  // starter/reactor counts
  for (const auto& e : sim.events()) {
    auto& [s, r] = by_key[e.key];
    (e.half == Half::Starter ? s : r) += 1;
  }
  std::size_t complete = 0;
  for (const auto& [key, counts] : by_key) {
    EXPECT_LE(counts.first, 1);
    EXPECT_LE(counts.second, 1);
    if (counts.first == 1 && counts.second == 1) ++complete;
  }
  EXPECT_GT(complete, 0u);
}

}  // namespace
}  // namespace ppfs

// Shared random-protocol generator for property tests: arbitrary dense
// delta tables with a tunable no-op fraction (no-ops keep stable sets
// nontrivial), every state initial, outputs alternating by parity. Used by
// the simulator fuzz tests and the batch/native equivalence tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "util/rng.hpp"

namespace ppfs::testing {

inline std::shared_ptr<const TableProtocol> random_protocol(
    std::size_t states, Rng& rng, double noop_fraction = 0.4) {
  std::vector<std::string> names;
  std::vector<int> outputs;
  std::vector<State> initial;
  for (State q = 0; q < states; ++q) {
    names.push_back("q" + std::to_string(q));
    outputs.push_back(static_cast<int>(q % 2));
    initial.push_back(q);
  }
  std::vector<StatePair> table(states * states);
  for (State s = 0; s < states; ++s) {
    for (State r = 0; r < states; ++r) {
      if (rng.chance(noop_fraction)) {
        table[s * states + r] = StatePair{s, r};
      } else {
        table[s * states + r] = StatePair{static_cast<State>(rng.below(states)),
                                          static_cast<State>(rng.below(states))};
      }
    }
  }
  return std::make_shared<TableProtocol>("random", names, outputs, initial,
                                         std::move(table));
}

inline std::vector<State> random_initial(std::size_t n, std::size_t states,
                                         Rng& rng) {
  std::vector<State> init(n);
  for (auto& q : init) q = static_cast<State>(rng.below(states));
  return init;
}

}  // namespace ppfs::testing

// Shared random-protocol generator for property tests: arbitrary dense
// delta tables with a tunable no-op fraction (no-ops keep stable sets
// nontrivial), every state initial, outputs alternating by parity. Used by
// the simulator fuzz tests and the batch/native equivalence tests.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "util/rng.hpp"

namespace ppfs::testing {

inline std::shared_ptr<const TableProtocol> random_protocol(
    std::size_t states, Rng& rng, double noop_fraction = 0.4) {
  std::vector<std::string> names;
  std::vector<int> outputs;
  std::vector<State> initial;
  for (State q = 0; q < states; ++q) {
    names.push_back("q" + std::to_string(q));
    outputs.push_back(static_cast<int>(q % 2));
    initial.push_back(q);
  }
  std::vector<StatePair> table(states * states);
  for (State s = 0; s < states; ++s) {
    for (State r = 0; r < states; ++r) {
      if (rng.chance(noop_fraction)) {
        table[s * states + r] = StatePair{s, r};
      } else {
        table[s * states + r] = StatePair{static_cast<State>(rng.below(states)),
                                          static_cast<State>(rng.below(states))};
      }
    }
  }
  return std::make_shared<TableProtocol>("random", names, outputs, initial,
                                         std::move(table));
}

inline std::vector<State> random_initial(std::size_t n, std::size_t states,
                                         Rng& rng) {
  std::vector<State> init(n);
  for (auto& q : init) q = static_cast<State>(rng.below(states));
  return init;
}

// Table-backed one-way protocol for property tests over the IT/IO/I*
// engines: g and f stored densely, like TableProtocol for the two-way case.
class TableOneWayProtocol final : public OneWayProtocol {
 public:
  TableOneWayProtocol(std::vector<State> g, std::vector<State> f)
      : g_(std::move(g)), f_(std::move(f)) {}
  std::size_t num_states() const override { return g_.size(); }
  State g(State s) const override { return g_[s]; }
  State f(State s, State r) const override { return f_[s * g_.size() + r]; }
  std::string name() const override { return "random-one-way"; }
  int output(State q) const override { return static_cast<int>(q % 2); }

 private:
  std::vector<State> g_;
  std::vector<State> f_;
};

// Random unary function over `states` states (for g and the omission
// reactions o/h).
inline std::vector<State> random_unary(std::size_t states, Rng& rng) {
  std::vector<State> t(states);
  for (auto& v : t) v = static_cast<State>(rng.below(states));
  return t;
}

// Random one-way protocol: identity g when `io` (the IO shape), random g
// otherwise; f keeps the reactor unchanged with probability noop_fraction.
inline std::shared_ptr<const OneWayProtocol> random_one_way_protocol(
    std::size_t states, Rng& rng, bool io, double noop_fraction = 0.4) {
  std::vector<State> g(states);
  for (State s = 0; s < states; ++s)
    g[s] = io ? s : static_cast<State>(rng.below(states));
  std::vector<State> f(states * states);
  for (State s = 0; s < states; ++s) {
    for (State r = 0; r < states; ++r) {
      f[s * states + r] = rng.chance(noop_fraction)
                              ? r
                              : static_cast<State>(rng.below(states));
    }
  }
  return std::make_shared<TableOneWayProtocol>(std::move(g), std::move(f));
}

// Wrap a dense unary table as the std::function form ModelFns carries.
inline std::function<State(State)> as_fn(std::vector<State> table) {
  return [t = std::move(table)](State q) { return t[q]; };
}

}  // namespace ppfs::testing

// Fault tolerance in action: exact majority under an omission adversary.
//
// Two runs side by side:
//   (a) the naive approach — apply delta on every interaction — under the
//       omissive two-way model T1: a handful of omissions corrupts the
//       outcome (here: phantom strong votes survive cancellation);
//   (b) SKnO in I3 with a known omission bound: the adversary spends its
//       whole budget and the verdict is still correct, with a verified
//       perfect matching.
//
//   $ ./examples/fault_tolerant_majority
#include <iostream>

#include "core/population.hpp"
#include "engine/runner.hpp"
#include "protocols/majority.hpp"
#include "sched/adversary.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"
#include "verify/matching.hpp"

using namespace ppfs;

namespace {

std::unique_ptr<Scheduler> adversary(std::size_t n, std::size_t budget) {
  AdversaryParams p;
  p.kind = AdversaryKind::Budget;
  p.rate = 0.2;
  p.max_omissions = budget;
  return std::make_unique<OmissionAdversary>(std::make_unique<UniformScheduler>(n),
                                             n, p);
}

}  // namespace

int main() {
  auto protocol = make_exact_majority();
  const auto st = exact_majority_states();
  // 7 vs 5: opinion X must win in every correct execution.
  const auto initial = make_initial({{st.big_x, 7}, {st.big_y, 5}});
  const std::size_t n = initial.size();
  const std::size_t budget = 3;

  std::cout << "exact majority, 7 X vs 5 Y, omission budget " << budget << "\n\n";

  // (a) naive wrapper under T1 omissions. Each starter-side omission on a
  // cancellation (Y starter, X reactor) demotes a strong X vote to weak
  // while the Y vote — unaware the interaction happened — stays strong.
  // Three omissions turn the 7-5 X majority into a 4-5 strong deficit,
  // and the fair fault-free continuation elects Y: the wrong verdict.
  {
    TwSimulator sim(protocol, Model::T1, initial);
    // Agents 0..6 are strong X, agents 7..11 strong Y.
    for (AgentId x : {0u, 1u, 2u}) {
      sim.interact(Interaction{7, x, true, OmitSide::Starter});
    }
    UniformScheduler sched(n);
    Rng rng(1);
    (void)run_until(sim, sched, rng, [&](const TwSimulator& s) {
      int first = protocol->output(s.simulated_state(0));
      if (first < 0) return false;
      for (State q : s.projection())
        if (protocol->output(q) != first) return false;
      return true;
    });
    const int verdict = protocol->output(sim.simulated_state(0));
    const auto rep = verify_simulation(sim, 0);
    std::cout << "naive/T1 with " << budget << " targeted omissions: verdict="
              << (verdict == 1 ? "X" : verdict == 0 ? "Y  ** WRONG **" : "none")
              << "\n  verifier: matching ok=" << rep.ok << ", "
              << rep.unmatched << " orphaned half-transitions (the forged "
              << "demotions)\n";
  }

  // (b) SKnO with the bound known: same adversary pressure, correct result.
  std::cout << "\n";
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SknoSimulator sim(protocol, Model::I3, budget, initial);
    auto sched = adversary(n, budget);
    Rng rng(seed);
    const auto res = run_until(sim, *sched, rng, [&](const SknoSimulator& s) {
      for (State q : s.projection())
        if (protocol->output(q) != 1) return false;
      return true;
    });
    const auto rep = verify_simulation(sim, 2 * n);
    std::cout << "SKnO/I3 seed " << seed << ": verdict=X converged="
              << res.converged << " omissions=" << res.omissions
              << " matching-ok=" << rep.ok << " (" << rep.pairs
              << " simulated interactions)\n";
  }

  std::cout << "\nThe naive wrapper leaves unmatched half-transitions "
               "(caught by the verifier) and can flip the vote; SKnO ships "
               "each state as o+1 redundant tokens and jokers patch every "
               "detected loss, so the two-way semantics survive.\n";
  return 0;
}

// Interactive-ish tour of the interaction-model lattice: pick a tiny
// protocol and print, for every model, what a single (possibly omissive)
// interaction may do to the pair of agents — the transition relations of
// §2.2–2.3 made concrete.
//
//   $ ./examples/model_explorer
#include <iostream>

#include "core/models.hpp"
#include "protocols/pairing.hpp"
#include "util/table.hpp"

using namespace ppfs;

int main() {
  auto p = make_pairing_protocol();
  const auto st = pairing_states();

  std::cout << "protocol: " << p->name() << "  —  delta(c, p) = ("
            << p->state_name(p->delta(st.consumer, st.producer).starter) << ", "
            << p->state_name(p->delta(st.consumer, st.producer).reactor) << ")\n\n";

  TextTable t({"model", "class", "faulty outcomes the adversary may pick",
               "who can tell"});
  for (Model m : kAllModels) {
    const ModelCaps c = model_caps(m);
    std::string cls = c.one_way ? "one-way" : "two-way";
    std::string outcomes, detect;
    if (!c.omissive) {
      outcomes = "none (fault-free model)";
      detect = "-";
    } else if (!c.one_way) {
      outcomes = "starter-side, reactor-side, or both halves dropped";
      detect = c.starter_detects_omission && c.reactor_detects_omission
                   ? "both sides"
                   : (c.starter_detects_omission ? "starter only" : "nobody");
    } else {
      outcomes = "the transmitted state never arrives";
      if (c.reactor_detects_omission)
        detect = "reactor (mints the joker in SKnO)";
      else if (c.starter_detects_omission)
        detect = "starter (mints the joker in SKnO-I4)";
      else if (!c.reactor_acts_on_omission)
        detect = "nobody — reactor does not even notice proximity";
      else
        detect = "nobody — reactor cannot tell omission from acting as starter";
    }
    t.add_row({model_name(m), cls, outcomes, detect});
  }
  t.print(std::cout);

  std::cout << "\nhierarchy arrows (problems solvable in src ⊆ solvable in dst):\n";
  for (const ModelArrow& a : model_arrows()) {
    std::cout << "  " << model_name(a.src) << " -> " << model_name(a.dst) << "  ["
              << arrow_reason_name(a.reason) << "] " << a.note << "\n";
  }
  std::cout << "\nRun bench_fig1_models for the machine-checked version of "
               "every arrow, and bench_fig4_map for which simulators close "
               "which gaps.\n";
  return 0;
}

// ppfs_trajcat — merge and decode sweep trajectory stores.
//
//   usage: ppfs_trajcat STORE... [--merge-out=FILE] [--no-decode]
//
// Sharded sweeps (`ppfs_cli --sweep ... --shard=i/k --traj-out=shard_i.trj`)
// leave one delta-encoded trajectory store per shard, each internally
// ordered by (point, trial) but covering only that shard's round-robin
// slice. This tool k-way-merges the stores back into global (point, trial)
// order — a linear scan, since every input is already sorted — and decodes
// the frames to JSONL on stdout for post-hoc queries (jq, python, etc.):
//
//   {"point":0,"point_key":"or@n=256:...","trial":3,"every":1048576,
//    "step":0,"counts":[255,1]}
//
// one line per captured frame, absolute step and fully reconstituted count
// vector (the delta decoding happens here, not in the consumer). With
// --merge-out the merged store itself is also written — atomically, temp
// file + rename — so shard stores can be consolidated without decoding.
// --no-decode skips the JSONL dump (merge only).
#include <iostream>
#include <string>
#include <vector>

#include "util/binio.hpp"
#include "util/trajectory.hpp"

using namespace ppfs;

namespace {

int usage(const char* msg) {
  std::cerr << "ppfs_trajcat: " << msg
            << "\nusage: ppfs_trajcat STORE... [--merge-out=FILE] "
               "[--no-decode]\n"
               "       merges per-shard trajectory stores into global "
               "(point, trial) order\n"
               "       and decodes them to JSONL on stdout\n";
  return 2;
}

// Frontmatter keys are point_key strings (spec grammar: no quotes or
// control characters in practice, but escape defensively).
std::string json_escape_min(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string merge_out;
  bool decode = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--merge-out=", 0) == 0)
      merge_out = arg.substr(12);
    else if (arg == "--no-decode")
      decode = false;
    else if (arg.rfind("--", 0) == 0)
      return usage(("unknown flag '" + arg + "'").c_str());
    else
      files.push_back(arg);
  }
  if (files.empty()) return usage("no store files given");

  try {
    std::vector<std::vector<TrajectoryRecord>> stores;
    stores.reserve(files.size());
    for (const std::string& f : files)
      stores.push_back(decode_trajectory_store(bin::read_file(f)));
    const std::vector<TrajectoryRecord> merged =
        merge_trajectory_stores(std::move(stores));

    if (!merge_out.empty()) {
      if (!bin::atomic_write_file(merge_out, encode_trajectory_store(merged)))
        return usage(("cannot write '" + merge_out + "'").c_str());
      std::cerr << "wrote " << merge_out << " (" << merged.size()
                << " trajectories)\n";
    }

    if (decode) {
      std::string prefix;
      for (const TrajectoryRecord& rec : merged) {
        prefix = "{\"point\":" + std::to_string(rec.point) +
                 ",\"point_key\":\"" + json_escape_min(rec.point_key) +
                 "\",\"trial\":" + std::to_string(rec.trial) +
                 ",\"every\":" + std::to_string(rec.every) + ",\"step\":";
        TrajectoryDecoder dec(rec.blob);
        TrajectoryFrame frame;
        while (dec.next(frame)) {
          std::cout << prefix << frame.step << ",\"counts\":[";
          for (std::size_t q = 0; q < frame.counts.size(); ++q) {
            if (q) std::cout << ',';
            std::cout << frame.counts[q];
          }
          std::cout << "]}\n";
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}

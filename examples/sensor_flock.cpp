// The paper's motivating scenario (§1.1): a passively mobile flock of
// birds, each carrying a cheap sensor. Communication is strictly one-way —
// a sensor can overhear a nearby transmission but the transmitter learns
// nothing (Immediate Observation) — and the sensors are anonymous; only
// the flock size n is configured at deployment.
//
// Using the Nn naming protocol + SID (Theorem 4.6), the sensors first
// self-assign unique IDs, then simulate full two-way protocols on top of
// the one-way radio: here, electing a coordinator bird and checking
// whether at least k birds have an elevated temperature ("sick flock"
// detection), while the radio link keeps dropping messages (UO adversary).
//
//   $ ./examples/sensor_flock
#include <iostream>

#include "engine/runner.hpp"
#include "protocols/counting.hpp"
#include "protocols/leader.hpp"
#include "sched/adversary.hpp"
#include "sim/naming.hpp"
#include "verify/matching.hpp"

using namespace ppfs;

namespace {

std::unique_ptr<Scheduler> lossy_radio(std::size_t n) {
  AdversaryParams p;
  p.kind = AdversaryKind::UO;  // the malignant adversary: drops forever
  p.rate = 0.25;
  return std::make_unique<OmissionAdversary>(std::make_unique<UniformScheduler>(n),
                                             n, p);
}

}  // namespace

int main() {
  const std::size_t n = 24;   // flock size: the only configured knowledge
  const std::size_t sick = 4; // birds with elevated temperature
  const std::size_t k = 3;    // alert threshold

  std::cout << "flock of " << n << " anonymous sensor birds, one-way lossy "
            << "radio (IO + UO omissions)\n\n";

  // --- Phase 1: elect a coordinator via simulated two-way leader election.
  {
    auto protocol = make_leader_election();
    const auto st = leader_states();
    NamingSimulator sim(protocol, Model::I1,  // omissive immediate observation
                        std::vector<State>(n, st.leader));
    auto radio = lossy_radio(n);
    Rng rng(7);
    RunOptions opt;
    opt.max_steps = 30'000'000;
    const auto res = run_until(sim, *radio, rng, [&](const NamingSimulator& s) {
      std::size_t leaders = 0;
      for (State q : s.projection())
        if (q == st.leader) ++leaders;
      return s.all_activated() && leaders == 1;
    }, opt);
    std::cout << "leader election: converged=" << res.converged << " after "
              << res.steps << " transmissions (" << res.omissions
              << " dropped); every bird self-named in [1.." << n << "]\n";
    const auto rep = verify_simulation(sim, 2 * n);
    std::cout << "  simulation verified: " << rep.pairs
              << " two-way interactions, matching ok=" << rep.ok << "\n\n";
  }

  // --- Phase 2: sick-flock detection — is |{birds with fever}| >= k?
  {
    auto protocol = make_threshold_counting(k);
    std::vector<State> init(n, 0);
    for (std::size_t i = 0; i < sick; ++i) init[i * 5 % n] = 1;
    NamingSimulator sim(protocol, Model::I1, init);
    auto radio = lossy_radio(n);
    Rng rng(8);
    RunOptions opt;
    opt.max_steps = 30'000'000;
    const auto res = run_until(sim, *radio, rng, [&](const NamingSimulator& s) {
      for (State q : s.projection())
        if (protocol->output(q) != 1) return false;
      return true;
    }, opt);
    std::cout << "sick-flock detection (threshold " << k << ", " << sick
              << " sick): alert=" << res.converged << " after " << res.steps
              << " transmissions\n";
    const auto rep = verify_simulation(sim, 2 * n);
    std::cout << "  simulation verified: matching ok=" << rep.ok << "\n";
  }

  std::cout << "\nEverything above ran on one-way, lossy, anonymous "
               "interactions; the two-way protocols never noticed.\n";
  return 0;
}

// ppfs_cli — run any (workload x simulator x model x adversary) combination
// from the command line and print the outcome, verification verdict and
// summary statistics. With no arguments it runs a representative demo.
//
//   usage: ppfs_cli [workload] [simulator] [model] [n] [rate] [budget] [seed]
//          ppfs_cli --engine=native|batch|auto [--model=M] [--adversary=SPEC]
//                   [--simulate=SIM] [workload] [n] [seed]
//          ppfs_cli --sweep=GRID [--trials=N] [--threads=K] [--seed=S]
//                   [--out=table|json|csv] [--out-file=PATH]
//                   [--shard=i/k] [--checkpoint=FILE] [--checkpoint-every=N]
//                   [--resume=FILE] [--traj-out=FILE] [--traj-every=N]
//          ppfs_cli --merge PARTIAL... [--out=FMT] [--out-file=PATH]
//                   [--metrics-out=FILE] [--traj-out=FILE]
//
//     workload   or | and | approx-majority | exact-majority | leader |
//                threshold-true | threshold-false | mod | pairing
//                (one-way models: or | max | leader | exact-majority |
//                 beacon-or)
//     simulator  naive | skno | sid | naming
//     model      TW T1 T2 T3 IT IO I1 I2 I3 I4
//     n          population size (>= 4)
//     rate       omission-insertion probability (0 disables the adversary)
//     budget     max omissions (SKnO's known bound); "uo" = unlimited
//     seed       RNG seed
//     SPEC       none | uo[:rate] | no:quiet[:rate] | no1[:rate] |
//                budget:B[:rate]   (default rate 0.1; kind may carry a
//                side suffix @starter|@reactor|@both for two-way models)
//     SIM        naive | skno:o=K | sid | naming
//
//   --engine selects a direct run (no simulation layer) through the
//   EngineDispatch facade: "native" drives the per-agent loop, "batch" the
//   count-based engine, which handles million-agent populations in
//   milliseconds — including one-way and omissive models and omission
//   adversaries. Attaching an adversary to a non-omissive model lifts it
//   to its omissive closure (TW -> T1, IT/IO -> I1): undetectable
//   omissions, the Fig. 1 embedding. On one-way models, "exact-majority"
//   resolves to the w.h.p.-exact cancellation majority (exact majority is
//   not one-way-computable).
//
//   --simulate wraps the workload in one of the paper's simulators and
//   runs THAT through the chosen engine: "batch" executes the simulator in
//   count space over interned wrapper states (engine/batch/
//   sim_batch_system.hpp), which is how SKnO reaches n = 10^6; "native"
//   drives the step-wise per-agent facade; "auto" starts on whichever
//   representation the run's dispersion favors and may switch between
//   count space and a direct agent-space driver mid-run (engine/batch/
//   regime.hpp) — the right default when the regime is not known up
//   front. Convergence is detected on the simulated projection. The default workload for --simulate runs is
//   exact-majority-gap (margin Theta(n)) at n = 50: simulated no-ops
//   cannot be leapt — the token machinery runs regardless — so the
//   margin-2 instance would need Theta(n^2) simulated interactions at any
//   speed, and simulator convergence cost is super-linear in n on ANY
//   engine (see README). Convergence demos belong at the paper's n ~ 10^2
//   with o <= 2; large-n / large-o runs demonstrate bounded-memory
//   distribution-exact execution over a fixed budget instead (they answer
//   "NO" once the budget runs out).
//
//   --sweep runs a declarative scenario grid (src/exp/) instead of a single
//   trajectory: the GRID string crosses axes (comma-separated values for
//   n / model / engine / adv / sim) into concrete run points, executes
//   `trials` replicas of every point on a --threads-sized worker pool, and
//   reports mergeable aggregate statistics (convergence rate, interaction
//   mean and p50/p90/p99, omission totals) through the shared exp::Report
//   writer. Replica RNG streams are keyed per (point, trial), so the
//   aggregate output is bit-identical for any --threads value.
//
//   Observability (src/obs): --metrics-out=FILE writes every replica's
//   flight-recorder timeline — one JSONL header line per replica
//   ({"schema":"ppfs.flight.v1","point":...,"trial":...,"every":...})
//   followed by its delta-encoded snapshots — in (grid point, trial)
//   order, bit-identical for any --threads value. --metrics-every=N sets
//   the snapshot cadence in interactions (default 2^20; enabling metrics
//   never changes results — instrumentation consumes no Rng draws).
//   --progress swaps the \r counter for one serialized JSON heartbeat
//   line per replica on stderr (machine-tailable).
//
//   Sweep service (src/exp/sweep_service.hpp): --shard=i/k runs only the
//   round-robin slice i of the flattened (point, trial) job list and
//   writes a binary PARTIAL (provenance + per-point aggregates + raw
//   replica results) to --out-file; `--merge a b c ...` folds k partials
//   back into the full report — byte-identical to the 1-process run at
//   any thread count. --checkpoint=FILE atomically rewrites a resume
//   checkpoint after every completed replica; --checkpoint-every=N
//   additionally embeds mid-replica engine snapshots captured at probe
//   slice boundaries every N interactions (--threads=1 drains only);
//   --resume=FILE continues a killed sweep from its checkpoint to the
//   byte-identical final output. --traj-out=FILE persists per-replica
//   count trajectories (--traj-every cadence, default 2^20) as a
//   delta-encoded store; ppfs_trajcat merges shard stores and decodes
//   them to JSONL. All file outputs (--out-file, --metrics-out,
//   --traj-out, checkpoints, partials) are written atomically: temp file
//   + rename, so a SIGKILL never leaves a torn file. Grammar:
//
//     workload[,workload...]@key=value[:key=value...]
//     axis keys   n (1e6 ok), model, engine, adv, sim   (comma = list)
//     scalar keys trials, seed, steps (fixed-step runs), maxsteps,
//                 checkevery, stable, probe=workload|activation, verify=0|1
//
//   examples:
//     ppfs_cli --sweep='exact-majority@n=1e6:model=T3:adv=budget:1000:engine=batch'
//              --trials=64 --threads=8 --out=json
//     ppfs_cli --sweep='or,exact-majority@n=1000,10000:engine=batch:trials=32'
//     ppfs_cli exact-majority skno I3 10 0.05 2 42
//     ppfs_cli leader sid T3 12 0.3 uo 7
//     ppfs_cli --engine=batch exact-majority 1000000 42
//     ppfs_cli --engine=batch --model=IO --adversary=budget:1000
//         exact-majority 1000000 42   (one command line)
//     ppfs_cli --engine=batch --simulate=skno:o=2            (n = 50 SKnO)
//     ppfs_cli --engine=batch --simulate=naive exact-majority 1000000
//     ppfs_cli --engine=batch --simulate=sid --adversary=uo:0.2 or 256
#include <optional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/batch/dispatch.hpp"
#include "engine/runner.hpp"
#include "engine/workload_runner.hpp"
#include "exp/replica_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep_service.hpp"
#include "util/binio.hpp"
#include "util/trajectory.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"
#include "verify/matching.hpp"

using namespace ppfs;

namespace {

int usage(const char* msg) {
  std::cerr << "ppfs_cli: " << msg
            << "\nusage: ppfs_cli [workload] [simulator] [model] [n] [rate] "
               "[budget] [seed]\n"
               "       ppfs_cli --engine=native|batch|auto [--model=M] "
               "[--adversary=SPEC] [--simulate=SIM] [workload] [n] [seed]\n"
               "       ppfs_cli --sweep=GRID [--trials=N] [--threads=K] "
               "[--seed=S] [--out=table|json|csv] [--out-file=PATH]\n"
               "                [--metrics-out=FILE] [--metrics-every=N] "
               "[--progress]\n"
               "                [--shard=i/k] [--checkpoint=FILE] "
               "[--checkpoint-every=N] [--resume=FILE]\n"
               "                [--traj-out=FILE] [--traj-every=N]\n"
               "       ppfs_cli --merge PARTIAL... [--out=FMT] "
               "[--out-file=PATH] [--metrics-out=FILE] [--traj-out=FILE]\n"
               "       SPEC = none|uo|no:Q|no1|budget:B[:rate], kind may "
               "carry @starter|@reactor|@both\n"
               "       SIM  = naive|skno:o=K|sid|naming (count-space "
               "simulator run; default workload exact-majority-gap, n=50)\n"
               "       GRID = workload[,workload...]@key=value[:key=value...]"
               "\n"
               "              axis keys (comma = list): n, model, engine, "
               "adv, sim\n"
               "              scalar keys: trials, seed, steps, maxsteps, "
               "checkevery, stable, probe, verify\n"
               "              e.g. 'or,exact-majority@n=1000,1e4:engine="
               "batch:adv=budget:1000:trials=32'\n";
  return 2;
}

// Minimal JSON string escaping for spec strings (quotes/backslashes;
// specs never carry control characters).
std::string json_escape_min(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Atomic file emission (temp + rename, util/binio.hpp): readers — and a
// resumed sweep after SIGKILL — see either the old complete file or the
// new complete file, never a torn mix.
bool emit_file(const std::string& path, std::string_view data) {
  if (!bin::atomic_write_file(path, data)) {
    std::cerr << "ppfs_cli: cannot write '" << path << "'\n";
    return false;
  }
  std::cerr << "wrote " << path << "\n";
  return true;
}

// Flight timelines, multiplexed: one header line per replica (schema,
// point identity, trial, cadence), then that replica's snapshot lines.
// Rows are in grid order and replicas in trial order, so the file is
// bit-identical for any --threads value (and across shard/merge).
std::string multiplex_flight(const exp::Report& report, std::size_t every) {
  std::ostringstream os;
  for (const exp::ReportRow& row : report.rows()) {
    for (std::size_t t = 0; t < row.replicas.size(); ++t) {
      os << "{\"schema\":\"ppfs.flight.v1\",\"point\":\""
         << json_escape_min(row.spec.point_key()) << "\",\"trial\":" << t
         << ",\"every\":" << every << "}\n"
         << row.replicas[t].flight;
    }
  }
  return std::move(os).str();
}

// The full-sweep trajectory records of a merged/1-process report, global
// (point, trial) order.
std::vector<TrajectoryRecord> report_trajectories(const exp::Report& report,
                                                  std::size_t every) {
  std::vector<TrajectoryRecord> records;
  for (std::size_t p = 0; p < report.rows().size(); ++p) {
    const exp::ReportRow& row = report.rows()[p];
    for (std::size_t t = 0; t < row.replicas.size(); ++t) {
      if (row.replicas[t].traj.empty()) continue;
      records.push_back(
          {p, row.spec.point_key(), t, every, row.replicas[t].traj});
    }
  }
  return records;
}

struct SweepCliOptions {
  std::string grid_text;
  std::optional<std::size_t> trials;
  std::optional<std::size_t> threads;
  std::optional<std::uint64_t> seed;
  std::string out_format = "table";
  std::string out_file;
  std::optional<std::size_t> metrics_every;
  std::string metrics_out;
  bool progress = false;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::string checkpoint_file;
  std::size_t checkpoint_every = 0;  // in-flight snapshot cadence
  std::string resume_file;
  std::string traj_out;
  std::optional<std::size_t> traj_every;
};

// Declarative grid sweep through the sweep service: expand the grid, run
// this process's shard of the flattened job list (all of it by default),
// emit one report — or, for --shard=i/k, one mergeable binary partial.
// Exit 0 when no replica failed (failure = a replica threw, not
// non-convergence).
int run_sweep(const SweepCliOptions& cli) {
  if (cli.out_format != "table" && cli.out_format != "json" &&
      cli.out_format != "csv")
    return usage(("unknown --out format '" + cli.out_format +
                  "' (want table, json or csv)")
                     .c_str());
  exp::ScenarioGrid grid = exp::parse_grid(cli.grid_text);
  if (cli.trials) grid.trials = *cli.trials;
  if (cli.seed) grid.seed = *cli.seed;
  if (grid.trials == 0) return usage("--trials must be >= 1");
  // --metrics-out / --traj-out imply their capture; default both to the
  // recorder's standard 2^20-interaction cadence unless overridden.
  std::optional<std::size_t> metrics_every = cli.metrics_every;
  if (!cli.metrics_out.empty() && !metrics_every)
    metrics_every = std::size_t{1} << 20;
  if (metrics_every) {
    if (*metrics_every == 0) return usage("--metrics-every must be >= 1");
    grid.metrics_every = *metrics_every;
  }
  std::optional<std::size_t> traj_every = cli.traj_every;
  if (!cli.traj_out.empty() && !traj_every) traj_every = std::size_t{1} << 20;
  if (traj_every) {
    if (*traj_every == 0) return usage("--traj-every must be >= 1");
    grid.traj_every = *traj_every;
  }

  const bool sharded = cli.shard_count > 1;
  if (sharded && cli.out_file.empty())
    return usage("--shard=i/k writes a binary partial; name it with "
                 "--out-file=PATH");
  if (sharded && !cli.metrics_out.empty())
    return usage("--metrics-out is a whole-sweep output; partials carry the "
                 "timelines — write it from `ppfs_cli --merge`");

  exp::SweepProvenance prov;
  prov.grid = cli.grid_text;
  prov.trials = grid.trials;
  prov.seed = grid.seed;
  prov.metrics_every = grid.metrics_every;
  prov.traj_every = grid.traj_every;
  prov.shard_index = cli.shard_index;
  prov.shard_count = cli.shard_count;

  exp::SweepServiceOptions sopt;
  if (cli.threads) sopt.threads = *cli.threads;
  sopt.checkpoint_file = cli.checkpoint_file;
  sopt.snapshot_every = cli.checkpoint_every;
  exp::SweepCheckpoint resume_ck;
  if (!cli.resume_file.empty()) {
    resume_ck = exp::decode_checkpoint(bin::read_file(cli.resume_file));
    sopt.resume = &resume_ck;
    // Keep checkpointing into the file we resumed from unless redirected.
    if (sopt.checkpoint_file.empty()) sopt.checkpoint_file = cli.resume_file;
  }
  if (sopt.snapshot_every > 0 && sopt.checkpoint_file.empty())
    return usage("--checkpoint-every needs --checkpoint=FILE (or --resume)");

  // on_replica is serialized by the service, so both progress styles write
  // whole lines/updates atomically even with many worker threads.
  const bool progress = cli.progress;
  sopt.on_replica = [progress](std::size_t done, std::size_t total,
                               const exp::ScenarioSpec& spec,
                               std::size_t trial, const exp::ReplicaResult& r) {
    if (progress) {
      std::cerr << "{\"done\":" << done << ",\"total\":" << total
                << ",\"point\":\"" << json_escape_min(spec.point_key())
                << "\",\"trial\":" << trial << ",\"converged\":"
                << (r.run.converged ? "true" : "false")
                << ",\"interactions\":" << r.run.steps
                << (r.failed() ? ",\"error\":\"" + json_escape_min(r.error) + "\""
                               : std::string())
                << "}\n";
      return;
    }
    std::cerr << "\r[" << done << "/" << total << " replicas]"
              << (r.failed() ? " FAILED: " + r.error : "") << std::flush;
    if (r.failed()) std::cerr << "\n";
  };

  exp::SweepRun run = exp::run_sweep_shard(prov, sopt);
  if (!progress) std::cerr << "\r" << std::string(40, ' ') << "\r";
  std::cerr << run.points.size() << " grid points x " << grid.trials
            << " trials";
  if (sharded)
    std::cerr << ", shard " << cli.shard_index << "/" << cli.shard_count
              << " (" << run.owned.size() << " replicas)";
  std::cerr << "\n";

  if (sharded) {
    bool failed = false;
    for (const exp::ReplicaJob& job : run.owned)
      failed = failed || run.results[job.point][job.trial].failed();
    if (!cli.traj_out.empty()) {
      const auto records = exp::trajectory_records(run, grid.traj_every);
      if (!emit_file(cli.traj_out, encode_trajectory_store(records))) return 2;
    }
    const std::string image =
        exp::encode_partial(prov, run.points, run.results, run.owned);
    if (!emit_file(cli.out_file, image)) return 2;
    return failed ? 1 : 0;
  }

  const exp::Report report =
      exp::fold_report(run.points, std::move(run.results));
  if (!cli.metrics_out.empty() &&
      !emit_file(cli.metrics_out,
                 multiplex_flight(report, grid.metrics_every)))
    return 2;
  if (!cli.traj_out.empty() &&
      !emit_file(cli.traj_out,
                 encode_trajectory_store(
                     report_trajectories(report, grid.traj_every))))
    return 2;
  if (!cli.out_file.empty()) {
    std::ostringstream os;
    report.write(os, cli.out_format == "table" ? "json" : cli.out_format);
    if (!emit_file(cli.out_file, os.str())) return 2;
    report.print_table(std::cout);
  } else {
    report.write(std::cout, cli.out_format);
  }
  return report.any_failed() ? 1 : 0;
}

// Fold shard partials back into the full-sweep report (and optionally its
// flight-timeline / trajectory-store side files). Byte-identical to the
// 1-process run of the same grid.
int run_merge(const std::vector<std::string>& files,
              const std::string& out_format, const std::string& out_file,
              const std::string& metrics_out, const std::string& traj_out) {
  if (out_format != "table" && out_format != "json" && out_format != "csv")
    return usage(("unknown --out format '" + out_format +
                  "' (want table, json or csv)")
                     .c_str());
  if (files.empty()) return usage("--merge needs at least one partial file");
  std::vector<std::string> images;
  images.reserve(files.size());
  for (const std::string& f : files) images.push_back(bin::read_file(f));
  const exp::SweepProvenance prov = exp::partial_provenance(images.front());
  const exp::Report report = exp::merge_partials(images);
  std::cerr << "merged " << images.size() << " partial(s): "
            << report.rows().size() << " grid points x " << prov.trials
            << " trials\n";

  if (!metrics_out.empty() &&
      !emit_file(metrics_out, multiplex_flight(report, prov.metrics_every)))
    return 2;
  if (!traj_out.empty() &&
      !emit_file(traj_out, encode_trajectory_store(report_trajectories(
                               report, prov.traj_every))))
    return 2;
  if (!out_file.empty()) {
    std::ostringstream os;
    report.write(os, out_format == "table" ? "json" : out_format);
    if (!emit_file(out_file, os.str())) return 2;
    report.print_table(std::cout);
  } else {
    report.write(std::cout, out_format);
  }
  return report.any_failed() ? 1 : 0;
}

Model parse_model(const std::string& s) {
  for (Model m : kAllModels)
    if (model_name(m) == s) return m;
  throw std::invalid_argument("unknown model '" + s + "'");
}

// Population sizes up to 10^9 are routine for the count-space engines, so
// accept the sweep grammar's scientific shorthand ("1e9") alongside plain
// digits, in full 64-bit range (stoul would be fine on LP64, but say what
// we mean).
std::size_t parse_population(const std::string& s) {
  const std::size_t e = s.find_first_of("eE");
  if (e == std::string::npos) return std::stoull(s);
  const std::uint64_t base = std::stoull(s.substr(0, e));
  const std::uint64_t exp = std::stoull(s.substr(e + 1));
  std::uint64_t out = base;
  for (std::uint64_t i = 0; i < exp; ++i) out *= 10;
  return out;
}

std::unique_ptr<Simulator> make_simulator(const std::string& kind,
                                          const Workload& w, Model model,
                                          std::size_t budget) {
  if (kind == "naive") return std::make_unique<TwSimulator>(w.protocol, model, w.initial);
  if (kind == "skno")
    return std::make_unique<SknoSimulator>(w.protocol, model,
                                           budget == SIZE_MAX ? 0 : budget,
                                           w.initial);
  if (kind == "sid") return std::make_unique<SidSimulator>(w.protocol, model, w.initial);
  if (kind == "naming")
    return std::make_unique<NamingSimulator>(w.protocol, model, w.initial);
  throw std::invalid_argument("unknown simulator '" + kind + "'");
}

// Direct run through the engine facade; the batch engine makes n = 10^6
// populations practical from the command line, in every model and under
// every omission adversary.
int run_with_engine(const std::string& kind, Model model,
                    const std::string& adversary_spec,
                    const std::string& workload, std::size_t n,
                    std::uint64_t seed) {
  EngineConfig config;
  config.model = model;
  const AdversaryParams adv = parse_adversary_spec(adversary_spec);
  if (adv.rate > 0.0) config.adversary = adv;

  std::unique_ptr<Engine> engine;
  std::string workload_name;
  CountsProbe probe;
  // Above kPerAgentLimit the registry hands out counts instead of a
  // per-agent vector (n = 10^9 runs) and only the count-space engines
  // apply — make_engine_from_counts rejects "native" with a clear error.
  if (is_one_way(model)) {
    const OneWayWorkload w = find_one_way_workload(workload, n, model);
    workload_name = w.name;
    engine = w.initial_counts.empty()
                 ? make_engine(kind, w.protocol, w.initial, config)
                 : make_engine_from_counts(kind, w.protocol, w.initial_counts,
                                           config);
    auto conv = w.converged;
    const int expect = w.expected_output;
    probe = [conv, expect](const std::vector<std::size_t>& counts,
                           const Protocol& p) {
      if (conv) return conv(counts);
      return counts_consensus_output(counts, p) == expect;
    };
  } else {
    const Workload w = find_workload(workload, n);
    workload_name = w.name;
    engine = w.initial_counts.empty()
                 ? make_engine(kind, w.protocol, w.initial, config)
                 : make_engine_from_counts(kind, w.protocol, w.initial_counts,
                                           config);
    probe = workload_counts_probe(w);
  }

  UniformScheduler sched(n);
  Rng rng(seed);
  RunOptions opt;
  // The batch engine leaps over no-op runs, so give it an interaction
  // budget (and probe cadence) sized for n^2-scale convergence times. A UO
  // adversary never quiesces, so its omissive events cost O(1) each
  // forever — cap those runs so a never-converging workload answers "NO"
  // in bounded time instead of grinding toward 10^15.
  const bool persistent_adversary =
      config.adversary && config.adversary->kind == AdversaryKind::UO;
  opt.max_steps = kind != "native"
                      ? (persistent_adversary ? 1'000'000'000'000ULL
                                              : 1'000'000'000'000'000ULL)
                      : 100'000'000;
  opt.check_every = kind != "native" ? (1u << 22) : 4096;
  const RunResult res = run_engine_until(*engine, sched, rng, probe, opt);
  const RunStats& stats = engine->stats();
  std::cout << kind << " engine";
  if (kind == "auto") std::cout << " [active: " << engine->active_kind() << "]";
  std::cout << " on " << workload_name << " under "
            << model_name(engine->model());
  if (config.adversary) {
    std::cout << " + " << adversary_kind_name(config.adversary->kind)
              << " adversary (rate " << config.adversary->rate << ")";
    if (engine->model() != model)
      std::cout << " [lifted from " << model_name(model) << "]";
  }
  std::cout << "\n"
            << "  converged:           " << (res.converged ? "yes" : "NO") << "\n"
            << "  interactions:        " << res.steps << "\n"
            << "  rule fires:          " << stats.total_fires() << "\n"
            << "  no-op interactions:  " << stats.noops() << "\n"
            << "  omissions delivered: " << stats.omissions() << " ("
            << stats.omissive_fires() << " state-changing)\n"
            << "  convergence step:    ";
  if (stats.convergence_step() == RunStats::kNoConvergence) std::cout << "never";
  else std::cout << stats.convergence_step();
  std::cout << "\n";
  std::cout << "  final counts:       ";
  const auto counts = engine->counts();
  const Protocol& proto = engine->protocol();
  for (State q = 0; q < counts.size(); ++q) {
    if (counts[q] > 0)
      std::cout << ' ' << proto.state_name(q) << '=' << counts[q];
  }
  std::cout << "\n  top rules:          ";
  for (const auto& rule : stats.top_rules(3)) {
    std::cout << " (" << proto.state_name(rule.s) << ','
              << proto.state_name(rule.r) << ")x" << rule.count;
  }
  std::cout << "\n";
  return res.converged ? 0 : 1;
}

// A simulator wrapped around the workload, run through either engine. The
// probe runs on the simulated projection; "batch" executes the simulator
// in count space over interned wrapper states (n = 10^6 territory).
int run_with_sim_engine(const std::string& kind, const std::string& sim_spec,
                        std::optional<Model> model,
                        const std::string& adversary_spec,
                        const std::string& workload, std::size_t n,
                        std::uint64_t seed) {
  SimEngineConfig config;
  config.spec = parse_sim_spec(sim_spec);
  config.model = model;
  const AdversaryParams adv = parse_adversary_spec(adversary_spec);
  if (adv.rate > 0.0) config.adversary = adv;

  const Workload w = find_workload(workload, n);
  auto engine = make_sim_engine(kind, w.protocol, w.initial, config);
  CountsProbe probe = workload_counts_probe(w);

  UniformScheduler sched(n);
  Rng rng(seed);
  RunOptions opt;
  // The naive wrapper adds no state, so its count-space runs leap bare-
  // protocol no-op oceans — budget it like a plain batch run. The real
  // simulators churn wrapper state on (nearly) every delivery and pay per
  // fire on any engine, so their budget is sized in fires.
  opt.max_steps =
      config.spec.kind == "naive" ? 20'000'000'000'000ULL : 1'000'000'000ULL;
  opt.check_every = 1u << 20;
  const RunResult res = run_engine_until(*engine, sched, rng, probe, opt);
  const RunStats& stats = engine->stats();
  std::cout << kind << " engine";
  if (kind == "auto") std::cout << " [active: " << engine->active_kind() << "]";
  std::cout << " simulating " << w.name << " via " << config.spec.kind;
  if (config.spec.kind == "skno")
    std::cout << "(o=" << config.spec.omission_bound << ")";
  std::cout << " under " << model_name(engine->model());
  if (config.adversary) {
    std::cout << " + " << adversary_kind_name(config.adversary->kind)
              << " adversary (rate " << config.adversary->rate << ")";
  }
  std::cout << "\n"
            << "  converged (pi_P):    " << (res.converged ? "yes" : "NO") << "\n"
            << "  physical interactions: " << res.steps << "\n";
  // The two kinds observe fires at different levels: the count-space
  // engine counts wrapper count-changes, the step-wise facade counts
  // interactions that emitted a simulated update. Label them accordingly
  // (and only the count-space engine has an interned universe to report).
  if (kind != "native") {
    std::cout << "  wrapper rule fires:  " << stats.total_fires() << "\n"
              << "  no-op interactions:  " << stats.noops() << "\n"
              << "  omissions delivered: " << stats.omissions() << "\n"
              << "  live wrapper states: " << engine->universe_live() << "\n";
  } else {
    std::cout << "  simulating fires:    " << stats.total_fires() << "\n"
              << "  sim-silent interactions: " << stats.noops() << "\n"
              << "  omissions delivered: " << stats.omissions() << "\n";
  }
  std::cout << "  convergence step:    ";
  if (stats.convergence_step() == RunStats::kNoConvergence) std::cout << "never";
  else std::cout << stats.convergence_step();
  std::cout << "\n  projected counts:   ";
  const auto counts = engine->counts();
  const Protocol& proto = engine->protocol();
  for (State q = 0; q < counts.size(); ++q) {
    if (counts[q] > 0)
      std::cout << ' ' << proto.state_name(q) << '=' << counts[q];
  }
  std::cout << "\n";
  return res.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "exact-majority";
  std::string simulator = "skno";
  std::string model_s = "I3";
  std::size_t n = 10;
  double rate = 0.05;
  std::size_t budget = 2;
  std::uint64_t seed = 42;

  try {
    // --sweep=GRID switches to the declarative grid form (src/exp/).
    std::vector<std::string> args(argv + 1, argv + argc);
    // stoul would silently wrap "--trials=-1" to a huge count and stop
    // at trailing garbage ("--trials=8x" -> 8); demand digits only.
    const auto parse_count = [](const std::string& flag,
                                const std::string& v) -> std::uint64_t {
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument("bad value '" + v + "' for " + flag);
      return std::stoull(v);
    };
    if (!args.empty() && args[0].rfind("--sweep=", 0) == 0) {
      SweepCliOptions cli;
      cli.grid_text = args[0].substr(8);
      for (std::size_t pos = 1; pos < args.size(); ++pos) {
        if (args[pos].rfind("--trials=", 0) == 0)
          cli.trials = parse_count("--trials", args[pos].substr(9));
        else if (args[pos].rfind("--threads=", 0) == 0)
          cli.threads = parse_count("--threads", args[pos].substr(10));
        else if (args[pos].rfind("--seed=", 0) == 0)
          cli.seed = parse_count("--seed", args[pos].substr(7));
        else if (args[pos].rfind("--out=", 0) == 0)
          cli.out_format = args[pos].substr(6);
        else if (args[pos].rfind("--out-file=", 0) == 0)
          cli.out_file = args[pos].substr(11);
        else if (args[pos].rfind("--metrics-every=", 0) == 0)
          cli.metrics_every =
              parse_count("--metrics-every", args[pos].substr(16));
        else if (args[pos].rfind("--metrics-out=", 0) == 0)
          cli.metrics_out = args[pos].substr(14);
        else if (args[pos].rfind("--shard=", 0) == 0) {
          const std::string spec = args[pos].substr(8);
          const std::size_t slash = spec.find('/');
          if (slash == std::string::npos)
            return usage("--shard wants i/k, e.g. --shard=0/4");
          cli.shard_index = parse_count("--shard", spec.substr(0, slash));
          cli.shard_count = parse_count("--shard", spec.substr(slash + 1));
          if (cli.shard_count == 0 || cli.shard_index >= cli.shard_count)
            return usage("--shard=i/k needs 0 <= i < k");
        } else if (args[pos].rfind("--checkpoint=", 0) == 0)
          cli.checkpoint_file = args[pos].substr(13);
        else if (args[pos].rfind("--checkpoint-every=", 0) == 0)
          cli.checkpoint_every =
              parse_count("--checkpoint-every", args[pos].substr(19));
        else if (args[pos].rfind("--resume=", 0) == 0)
          cli.resume_file = args[pos].substr(9);
        else if (args[pos].rfind("--traj-out=", 0) == 0)
          cli.traj_out = args[pos].substr(11);
        else if (args[pos].rfind("--traj-every=", 0) == 0)
          cli.traj_every = parse_count("--traj-every", args[pos].substr(13));
        else if (args[pos] == "--progress")
          cli.progress = true;
        else
          return usage(("unknown sweep flag '" + args[pos] + "'").c_str());
      }
      return run_sweep(cli);
    }

    // --merge folds shard partials back into the full-sweep report.
    if (!args.empty() && args[0] == "--merge") {
      std::vector<std::string> files;
      std::string out_format = "table";
      std::string out_file;
      std::string metrics_out;
      std::string traj_out;
      for (std::size_t pos = 1; pos < args.size(); ++pos) {
        if (args[pos].rfind("--out=", 0) == 0)
          out_format = args[pos].substr(6);
        else if (args[pos].rfind("--out-file=", 0) == 0)
          out_file = args[pos].substr(11);
        else if (args[pos].rfind("--metrics-out=", 0) == 0)
          metrics_out = args[pos].substr(14);
        else if (args[pos].rfind("--traj-out=", 0) == 0)
          traj_out = args[pos].substr(11);
        else if (args[pos].rfind("--", 0) == 0)
          return usage(("unknown merge flag '" + args[pos] + "'").c_str());
        else
          files.push_back(args[pos]);
      }
      return run_merge(files, out_format, out_file, metrics_out, traj_out);
    }

    // --engine=native|batch|auto switches to the engine-facade run form.
    if (!args.empty() && args[0].rfind("--engine=", 0) == 0) {
      const std::string kind = args[0].substr(9);
      std::optional<Model> model_opt;
      std::string adversary = "none";
      std::string simulate;
      std::size_t pos = 1;
      while (pos < args.size() && args[pos].rfind("--", 0) == 0) {
        if (args[pos].rfind("--model=", 0) == 0)
          model_opt = parse_model(args[pos].substr(8));
        else if (args[pos].rfind("--adversary=", 0) == 0)
          adversary = args[pos].substr(12);
        else if (args[pos].rfind("--simulate=", 0) == 0)
          simulate = args[pos].substr(11);
        else
          return usage(("unknown flag '" + args[pos] + "'").c_str());
        ++pos;
      }
      // Simulated runs default to the margin-Theta(n) exact-majority
      // instance at the paper's population scale (see the header comment:
      // simulator convergence cost is super-linear in n on any engine).
      if (!simulate.empty()) workload = "exact-majority-gap";
      if (pos < args.size()) workload = args[pos++];
      n = pos < args.size() ? parse_population(args[pos++])
                            : (simulate.empty() ? 1'000'000 : 50);
      if (pos < args.size()) seed = std::stoull(args[pos++]);
      if (!simulate.empty())
        return run_with_sim_engine(kind, simulate, model_opt, adversary,
                                   workload, n, seed);
      return run_with_engine(kind, model_opt.value_or(Model::TW), adversary,
                             workload, n, seed);
    }

    if (argc > 1) workload = argv[1];
    if (argc > 2) simulator = argv[2];
    if (argc > 3) model_s = argv[3];
    if (argc > 4) n = std::stoul(argv[4]);
    if (argc > 5) rate = std::stod(argv[5]);
    if (argc > 6) budget = std::string(argv[6]) == "uo" ? SIZE_MAX
                                                        : std::stoul(argv[6]);
    if (argc > 7) seed = std::stoull(argv[7]);

    const Model model = parse_model(model_s);
    const Workload w = find_workload(workload, n);
    auto sim = make_simulator(simulator, w, model, budget);

    std::unique_ptr<Scheduler> sched;
    if (rate > 0 && is_omissive(model)) {
      AdversaryParams p;
      p.kind = budget == SIZE_MAX ? AdversaryKind::UO : AdversaryKind::Budget;
      p.rate = rate;
      if (budget != SIZE_MAX) p.max_omissions = budget;
      sched = std::make_unique<OmissionAdversary>(
          std::make_unique<UniformScheduler>(n), n, p);
    } else {
      sched = std::make_unique<UniformScheduler>(n);
    }

    Rng rng(seed);
    auto counts_probe = workload_counts_probe(w);
    auto probe = [&](const Simulator& s) {
      std::vector<std::size_t> counts(w.protocol->num_states(), 0);
      for (State q : s.projection()) ++counts[q];
      return counts_probe(counts, *w.protocol);
    };
    RunOptions opt;
    opt.max_steps = 20'000'000;
    const RunResult res = run_until(*sim, *sched, rng, probe, opt);

    std::cout << sim->describe() << " on " << w.name << "\n"
              << "  converged:            " << (res.converged ? "yes" : "NO")
              << "\n"
              << "  interactions:         " << res.steps << "\n"
              << "  omissions delivered:  " << res.omissions << "\n"
              << "  simulated half-steps: " << sim->simulated_updates() << "\n";
    std::cout << "  final projection:    ";
    for (State q : sim->projection())
      std::cout << ' ' << w.protocol->state_name(q);
    std::cout << "\n";
    const MatchingReport rep = verify_simulation(*sim, 4 * n);
    std::cout << "  verification:         "
              << (rep.ok ? "ok" : "FAILED") << " (" << rep.pairs
              << " matched pairs, " << rep.unmatched << " open)\n";
    return res.converged && rep.ok ? 0 : 1;
  } catch (const std::exception& e) {
    return usage(e.what());
  }
}

// Quickstart: define a two-way population protocol, run it natively, then
// run the same protocol through a fault-tolerant simulator on a weaker
// interaction model and verify the simulation.
//
//   $ ./examples/quickstart
#include <iostream>

#include "engine/native.hpp"
#include "engine/runner.hpp"
#include "protocols/majority.hpp"
#include "sim/skno.hpp"
#include "verify/matching.hpp"

using namespace ppfs;

int main() {
  // 1. A protocol: 4-state exact majority. 7 agents vote X, 5 vote Y.
  auto protocol = make_exact_majority();
  const auto st = exact_majority_states();
  std::vector<State> initial = make_initial({{st.big_x, 7}, {st.big_y, 5}});
  const std::size_t n = initial.size();

  // 2. Native two-way execution under the uniform random scheduler
  //    (globally fair with probability 1).
  {
    NativeSystem sys(protocol, initial);
    UniformScheduler sched(n);
    Rng rng(/*seed=*/2024);
    const RunResult res = run_until(sys, sched, rng, [](const NativeSystem& s) {
      return s.population().consensus_output() == 1;
    });
    std::cout << "native two-way: converged=" << res.converged << " after "
              << res.steps << " interactions; consensus output = "
              << sys.population().consensus_output() << "\n";
  }

  // 3. The same protocol simulated in the one-way Immediate Transmission
  //    model via SKnO with o = 0 (Corollary 1): the starter can only
  //    transmit, never read, yet the two-way semantics are preserved.
  {
    SknoSimulator sim(protocol, Model::IT, /*omission_bound=*/0, initial);
    UniformScheduler sched(n);
    Rng rng(2024);
    const RunResult res = run_until(sim, sched, rng, [&](const SknoSimulator& s) {
      for (State q : s.projection())
        if (protocol->output(q) != 1) return false;
      return true;
    });
    std::cout << "simulated in IT: converged=" << res.converged << " after "
              << res.steps << " interactions ("
              << sim.simulated_updates() << " simulated half-steps)\n";

    // 4. Verify the simulation: Definition 3's perfect matching plus each
    //    agent's simulated-state chain.
    const MatchingReport rep = verify_simulation(sim, /*max_unmatched=*/2 * n);
    std::cout << "verification: matching ok=" << rep.ok << ", "
              << rep.pairs << " simulated two-way interactions, "
              << rep.unmatched << " still-open transactions\n";
  }
  return 0;
}

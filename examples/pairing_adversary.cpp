// The impossibility, step by step: how an omission adversary beats SKnO
// once its budget assumption is wrong (Theorem 3.1 / Lemma 1, in the sharp
// crafted form). Prints the "Rummy cheat" as it unfolds: stolen tokens
// assemble a phantom producer run at the victim while jokers let every
// cheated consumer finish, ending with more critical consumers than
// producers — a safety violation no continuation can repair.
//
//   $ ./examples/pairing_adversary
#include <iostream>

#include "attack/skno_attack.hpp"
#include "protocols/pairing.hpp"
#include "sched/scheduler.hpp"
#include "sim/skno.hpp"
#include "util/rng.hpp"
#include "verify/monitors.hpp"

using namespace ppfs;

int main() {
  const std::size_t o = 2;  // SKnO is configured for at most 2 omissions
  const auto plan = build_skno_attack(o);
  const auto st = pairing_states();

  std::cout << "SKnO(I3) with omission bound o = " << o << " on the Pairing "
            << "problem\n"
            << "population: " << plan.producers << " producers, "
            << plan.n - plan.producers << " consumers (victim = agent "
            << plan.victim << ", generator = agent " << plan.n - 1 << ")\n"
            << "adversary budget: " << plan.omissions << " omissions (one "
            << "more than SKnO can tolerate)\n\n";

  SknoSimulator sim(make_pairing_protocol(), Model::I3, o, plan.initial);
  PairingMonitor mon(sim.projection());

  std::size_t step = 0;
  for (const auto& ia : plan.script) {
    sim.interact(ia);
    mon.observe(sim.projection());
    ++step;
    if (ia.omissive) {
      std::cout << "step " << step << ": OMISSION on (" << ia.starter << "->"
                << ia.reactor << ") — consumer " << ia.reactor
                << " detects the loss and mints a joker\n";
    } else if (ia.reactor == plan.victim) {
      std::cout << "step " << step << ": token stolen — producer " << ia.starter
                << "'s token re-routed to the victim (" << sim.queue_size(plan.victim)
                << " hoarded)\n";
    }
    if (sim.simulated_state(plan.victim) == st.critical &&
        mon.current_critical() > 0 && ia.reactor == plan.victim) {
      std::cout << "          -> the victim completed a PHANTOM run and "
                   "turned critical!\n";
    }
  }

  std::cout << "\nafter the scripted attack: " << mon.current_critical()
            << " critical consumers vs " << mon.producers() << " producers"
            << (mon.safety_violated() ? "  ** SAFETY VIOLATED **" : "") << "\n";

  // No fair continuation can undo it: cs is irrevocable.
  UniformScheduler sched(plan.n);
  Rng rng(99);
  for (std::size_t i = 0; i < 20'000; ++i) {
    sim.interact(sched.next(rng, i));
    if (i % 256 == 0) mon.observe(sim.projection());
  }
  mon.observe(sim.projection());
  std::cout << "after 20000 fair fault-free interactions: critical="
            << mon.current_critical() << ", still violated="
            << mon.safety_violated() << ", irrevocability intact="
            << !mon.irrevocability_violated() << "\n\n"
            << "Theorem 3.1: without a correct bound on omissions (or IDs, "
               "or n), NO simulator can be safe — this library's SKnO fails "
               "at exactly o+1 omissions, its provable optimum.\n";
  return 0;
}

// SKnO — the token/joker simulator of §4.1 (Theorem 4.1, Corollary 1).
//
// Assumption: an upper bound o on the total number of omissions is known.
// Every simulated state q is represented by a *run* of o+1 numbered tokens
// ⟨q,1⟩..⟨q,o+1⟩. An agent entering the `pending` state enqueues the run
// for its own state; every time it acts as a starter it transmits (and
// discards — at-most-once) the front token of its queue. A reactor
// enqueues what it receives; when the detecting side observes an omission
// it mints a joker token ⟨J⟩, which later substitutes for any single
// missing token ("Rummy" wildcards, with a debt list so that a late copy
// of the substituted token is itself turned back into a joker).
//
// A reactor that assembles a complete run for some state q consumes it and
// applies its half of the two-way transition, delta(q, own)[1], then
// enqueues a *state-change* run ⟨(q, own_before),1..o+1⟩; the pending
// agent in state q that assembles that change run applies the starter half
// delta(q, own_before)[0] and becomes available again. A pending agent
// that instead gets its own state run back cancels the transaction.
//
// Supported models: I3 (reactor detects omissions — the paper's primary
// variant), I4 (starter detects; the symmetric variant: on an omission the
// starter keeps its in-flight token and mints the joker, while the reactor
// behaves as a starter, popping its own front token into the void), and
// IT (o = 0, no omissions — Corollary 1).
//
// The token machinery is factored into SknoCore, a *value-level* step
// function over per-agent Agent records: its behavior is a pure function
// of (sim_state, pending flag, token-value queue, debt multiset) — token
// run ids are write-only provenance for the matching verifier and are
// never consulted by any decision (which instance of equal-valued tokens
// a consumption removes is the canonical first-occurrence-per-index).
// That purity is what lets sim/sim_rules.hpp serialize an Agent into a
// canonical byte encoding and run SKnO through the count-space batch
// engine over interned states: the step-wise SknoSimulator below and the
// count-space SknoRuleSource realize the identical value-level chain.
//
// Canonical encoding (SknoRuleSource): little-endian fields
//   [sim_state u16][pending u8][nq u16][queue tokens, in FIFO order]
//   [nd u16][debt tokens, sorted ascending]
// with each token packed into a u32 (kind 2 bits | q 12 | qr 12 | index
// 6); run ids are excluded. The queue keeps FIFO order (transmission
// order is semantic); the debt list is order-irrelevant (lookup is by
// value) and is sorted to canonicalize.
//
// Documented deviations from the paper text (see DESIGN.md §3):
//   * change tokens carry the reactor's *pre*-interaction state;
//   * completing a run requires at least one real (non-joker) token.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace ppfs {

// The value-level SKnO token machinery, shared by the step-wise
// SknoSimulator and the count-space SknoRuleSource (sim/sim_rules.hpp).
class SknoCore {
 public:
  struct Token {
    enum class Kind : std::uint8_t { StateRun, ChangeRun, Joker };
    Kind kind = Kind::Joker;
    State q = kNoState;        // StateRun: state; ChangeRun: pending (starter) state
    State qr = kNoState;       // ChangeRun only: reactor's pre-interaction state
    std::uint32_t index = 0;   // 1..o+1
    std::uint64_t run = 0;     // provenance (verification only, not protocol logic)

    // Protocol-level equality: tokens are anonymous, run ids excluded.
    [[nodiscard]] bool same_value(const Token& t) const noexcept {
      return kind == t.kind && q == t.q && qr == t.qr && index == t.index;
    }
  };

  // The full wrapper state of one agent.
  struct Agent {
    State sim_state = 0;
    bool pending = false;
    std::deque<Token> sending;
    std::vector<Token> joker_debt;  // values owed after wildcard use
  };

  // A simulated-state update produced by a step (the caller attaches the
  // agent identity and forwards to Simulator::emit).
  struct Emit {
    State before;
    State after;
    Half half;
    std::uint64_t key;
    State partner;
  };
  using Emits = std::vector<Emit>;

  // Byte-level mutation footprint of the last step(), per agent — what the
  // count-space rule source needs to build the successor encoding by
  // PATCHING the pre-state bytes instead of re-serializing the record. The
  // frequent shapes are exactly the ones §4.1 fires on almost every
  // delivery: the starter pops its front token (possibly refilling first)
  // and the reactor appends the received token. Anything that touches more
  // than that — run consumption, cancellation, debt traffic — reports
  // Complex, and the rule source re-serializes.
  struct Footprint {
    enum class Kind : std::uint8_t {
      Unchanged,    // no field of the record changed
      PoppedFront,  // queue front token removed, nothing else
      Refilled,     // was available + empty: pending set, own state run
                    // enqueued, front token popped — queue is now the run's
                    // indices 2..o+1
      Appended,     // `appended` pushed to the queue back, nothing else
      Complex,      // anything else: fall back to full re-serialization
    };
    Kind kind = Kind::Unchanged;
    Token appended{};  // Appended only
  };
  struct StepFootprint {
    Footprint starter;
    Footprint reactor;
  };

  struct Stats {
    std::uint64_t runs_generated = 0;       // pending transactions opened
    std::uint64_t state_runs_consumed = 0;  // reactor halves simulated
    std::uint64_t change_runs_consumed = 0; // starter halves completed
    std::uint64_t cancels = 0;              // pending transactions cancelled
    std::uint64_t jokers_minted = 0;
    std::uint64_t jokers_used = 0;          // jokers spent as wildcards
    std::uint64_t tokens_killed = 0;        // in-flight/own tokens destroyed
    std::uint64_t debt_conversions = 0;     // late real token -> joker
    std::size_t max_queue = 0;              // max tokens held by any agent
  };

  // Ablation switches (defaults are the faithful §4.1 protocol). Used by
  // the design-choice ablation experiments to show each mechanism is
  // load-bearing; disabling joker_debt loses liveness under <= o
  // omissions (a stolen joker's run can never be repaid).
  struct Options {
    bool joker_debt = true;
  };

  // `track_provenance` mints fresh run ids for the matching verifier; the
  // count-space path turns it off (all run ids 0) so equal-valued states
  // stay canonical.
  SknoCore(const Protocol* protocol, Model model, std::size_t omission_bound,
           Options options, bool track_provenance);

  // One physical interaction between `starter` and `reactor`. Simulated
  // updates applied to the starter's record go to `starter_emits`, the
  // reactor's to `reactor_emits` (either may be null).
  void step(Agent& starter, Agent& reactor, bool omissive, OmitSide side,
            Emits* starter_emits, Emits* reactor_emits);

  // Footprint of the most recent step() (reset at each call).
  [[nodiscard]] const StepFootprint& last_footprint() const noexcept {
    return footprint_;
  }

  // Value-level reactor half of one delivery in isolation: receive `tok`
  // (a transmitted token, or an omission-minted joker — receiving a joker
  // is identical to detecting an omission, since debt entries never hold
  // joker values) and run the §4.1 checks. The count-space rule source
  // caches this on (token value, reactor encoding): every step of every
  // model decomposes into this plus the decode-free starter routine g.
  void receive_one(Agent& a, const Token& tok, Footprint& fp) {
    receive(a, tok, nullptr, fp);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t omission_bound() const noexcept { return o_; }
  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  // True iff the agent transmits nothing as a starter (pending with an
  // empty queue) — the one no-op shape of the Real class, which is what
  // lets the count-space engine leap with a silent-population counter.
  [[nodiscard]] static bool silent_starter(const Agent& a) noexcept {
    return a.pending && a.sending.empty();
  }

 private:
  // Starter routine g: refill when available with an empty queue, then pop
  // and return the front token (if any). Records into `fp`.
  std::optional<Token> apply_g(Agent& a, Footprint& fp);

  // Reactor receives a token (or nothing) and runs the preliminary + core
  // checks of §4.1.
  void receive(Agent& a, const std::optional<Token>& tok, Emits* emits,
               Footprint& fp);
  void mint_joker(Agent& a, Footprint& fp);
  void run_checks(Agent& a, Emits* emits, Footprint& fp);

  // Searches `a.sending` for a complete run (indices 1..o+1) of the given
  // kind/value, using jokers for missing indices (at least one real token
  // required). On success removes the used tokens and returns the
  // provenance run id of the token filling the smallest index.
  struct Consumed {
    std::uint64_t primary_run;
    State q;
    State qr;
  };
  std::optional<Consumed> try_consume(Agent& a, Token::Kind kind,
                                      std::optional<State> q_filter);

  void note_queue_size(const Agent& a);

  const Protocol* protocol_;
  Model model_;
  std::size_t o_;
  Options options_;
  bool track_provenance_;
  std::uint64_t next_run_ = 1;
  Stats stats_;
  StepFootprint footprint_;
  // try_consume scratch, reused across calls: the count-space hot path
  // runs millions of steps per second and per-call allocations were
  // measured to dominate the outcome-cache miss cost.
  std::vector<std::pair<State, State>> scratch_candidates_;
  std::vector<std::ptrdiff_t> scratch_pos_;  // heap fallback for o > 62
  std::vector<char> scratch_remove_;
  std::vector<Token> scratch_rest_;
};

class SknoSimulator final : public Simulator {
 public:
  using Token = SknoCore::Token;
  using Stats = SknoCore::Stats;
  using Options = SknoCore::Options;

  SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                std::size_t omission_bound, std::vector<State> initial);
  SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                std::size_t omission_bound, std::vector<State> initial,
                Options options);

  [[nodiscard]] std::unique_ptr<Simulator> clone() const override;
  [[nodiscard]] State simulated_state(AgentId a) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t omission_bound() const noexcept {
    return core_.omission_bound();
  }
  [[nodiscard]] const Stats& stats() const noexcept { return core_.stats(); }

  [[nodiscard]] bool is_pending(AgentId a) const { return agents_.at(a).pending; }
  [[nodiscard]] std::size_t queue_size(AgentId a) const {
    return agents_.at(a).sending.size();
  }
  [[nodiscard]] std::size_t total_live_tokens() const;
  [[nodiscard]] std::size_t live_jokers() const;

  // Approximate per-agent memory need in bits, under the counting
  // representation the Theorem 4.1 bound refers to: one counter per
  // distinct token value plus the simulator scalars.
  [[nodiscard]] std::size_t memory_bits(AgentId a) const;

 protected:
  void do_interact(const Interaction& ia) override;

 private:
  SknoCore core_;
  std::vector<SknoCore::Agent> agents_;
};

// The model set SknoSimulator (and its rule source) accepts; throws
// std::invalid_argument otherwise. Shared by the step-wise and count-space
// construction paths.
void validate_skno_model(Model model, std::size_t omission_bound);

}  // namespace ppfs

// SKnO — the token/joker simulator of §4.1 (Theorem 4.1, Corollary 1).
//
// Assumption: an upper bound o on the total number of omissions is known.
// Every simulated state q is represented by a *run* of o+1 numbered tokens
// ⟨q,1⟩..⟨q,o+1⟩. An agent entering the `pending` state enqueues the run
// for its own state; every time it acts as a starter it transmits (and
// discards — at-most-once) the front token of its queue. A reactor
// enqueues what it receives; when the detecting side observes an omission
// it mints a joker token ⟨J⟩, which later substitutes for any single
// missing token ("Rummy" wildcards, with a debt list so that a late copy
// of the substituted token is itself turned back into a joker).
//
// A reactor that assembles a complete run for some state q consumes it and
// applies its half of the two-way transition, delta(q, own)[1], then
// enqueues a *state-change* run ⟨(q, own_before),1..o+1⟩; the pending
// agent in state q that assembles that change run applies the starter half
// delta(q, own_before)[0] and becomes available again. A pending agent
// that instead gets its own state run back cancels the transaction.
//
// Supported models: I3 (reactor detects omissions — the paper's primary
// variant), I4 (starter detects; the symmetric variant: on an omission the
// starter keeps its in-flight token and mints the joker, while the reactor
// behaves as a starter, popping its own front token into the void), and
// IT (o = 0, no omissions — Corollary 1).
//
// Documented deviations from the paper text (see DESIGN.md §3):
//   * change tokens carry the reactor's *pre*-interaction state;
//   * completing a run requires at least one real (non-joker) token.
#pragma once

#include <deque>
#include <optional>

#include "sim/simulator.hpp"

namespace ppfs {

class SknoSimulator final : public Simulator {
 public:
  struct Token {
    enum class Kind : std::uint8_t { StateRun, ChangeRun, Joker };
    Kind kind = Kind::Joker;
    State q = kNoState;        // StateRun: state; ChangeRun: pending (starter) state
    State qr = kNoState;       // ChangeRun only: reactor's pre-interaction state
    std::uint32_t index = 0;   // 1..o+1
    std::uint64_t run = 0;     // provenance (verification only, not protocol logic)

    // Protocol-level equality: tokens are anonymous, run ids excluded.
    [[nodiscard]] bool same_value(const Token& t) const noexcept {
      return kind == t.kind && q == t.q && qr == t.qr && index == t.index;
    }
  };

  struct Stats {
    std::uint64_t runs_generated = 0;       // pending transactions opened
    std::uint64_t state_runs_consumed = 0;  // reactor halves simulated
    std::uint64_t change_runs_consumed = 0; // starter halves completed
    std::uint64_t cancels = 0;              // pending transactions cancelled
    std::uint64_t jokers_minted = 0;
    std::uint64_t jokers_used = 0;          // jokers spent as wildcards
    std::uint64_t tokens_killed = 0;        // in-flight/own tokens destroyed
    std::uint64_t debt_conversions = 0;     // late real token -> joker
    std::size_t max_queue = 0;              // max tokens held by any agent
  };

  // Ablation switches (defaults are the faithful §4.1 protocol). Used by
  // the design-choice ablation experiments to show each mechanism is
  // load-bearing; disabling joker_debt loses liveness under <= o
  // omissions (a stolen joker's run can never be repaid).
  struct Options {
    bool joker_debt = true;
  };

  SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                std::size_t omission_bound, std::vector<State> initial);
  SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                std::size_t omission_bound, std::vector<State> initial,
                Options options);

  [[nodiscard]] std::unique_ptr<Simulator> clone() const override;
  [[nodiscard]] State simulated_state(AgentId a) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t omission_bound() const noexcept { return o_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] bool is_pending(AgentId a) const { return agents_.at(a).pending; }
  [[nodiscard]] std::size_t queue_size(AgentId a) const {
    return agents_.at(a).sending.size();
  }
  [[nodiscard]] std::size_t total_live_tokens() const;
  [[nodiscard]] std::size_t live_jokers() const;

  // Approximate per-agent memory need in bits, under the counting
  // representation the Theorem 4.1 bound refers to: one counter per
  // distinct token value plus the simulator scalars.
  [[nodiscard]] std::size_t memory_bits(AgentId a) const;

 protected:
  void do_interact(const Interaction& ia) override;

 private:
  struct Agent {
    State sim_state = 0;
    bool pending = false;
    std::deque<Token> sending;
    std::vector<Token> joker_debt;  // values owed after wildcard use
  };

  // Starter routine g: refill when available with an empty queue, then pop
  // and return the front token (if any).
  std::optional<Token> apply_g(AgentId idx);

  // Reactor receives a token (or an omission notification) and runs the
  // preliminary + core checks of §4.1.
  void receive(AgentId idx, const std::optional<Token>& tok);
  void mint_joker(AgentId idx);
  void run_checks(AgentId idx);

  // Searches `a.sending` for a complete run (indices 1..o+1) of the given
  // kind/value, using jokers for missing indices (at least one real token
  // required). On success removes the used tokens and returns the primary
  // provenance run id (majority real token, ties toward smallest).
  struct Consumed {
    std::uint64_t primary_run;
    State q;
    State qr;
  };
  std::optional<Consumed> try_consume(Agent& a, Token::Kind kind,
                                      std::optional<State> q_filter);

  void note_queue_size(const Agent& a);

  std::size_t o_;
  Options options_;
  std::vector<Agent> agents_;
  std::uint64_t next_run_ = 1;
  Stats stats_;
};

}  // namespace ppfs

// Nn — the naming protocol of §4.3 (Lemma 3) and its composition with SID
// (Theorem 4.6): simulation in IO with knowledge of n only.
//
// Every agent starts with my_id = max_id = 1. A reactor that observes a
// starter with its own my_id increments my_id; max_id gossips the maximum
// my_id seen. When an agent's max_id reaches n, all n ids are already
// unique and stable (pigeonhole over the invariant that every value in
// [1, max] is held by someone), so the agent activates its SID layer with
// start_sim(my_id).
//
// Like SID, all updates are reactor-side; omissions are no-ops; the
// protocol runs unchanged under every model of Figure 1 — the
// knowledge-of-n column of Figure 4.
#pragma once

#include "sim/sid.hpp"

namespace ppfs {

class NamingSimulator final : public Simulator {
 public:
  struct NamingStats {
    std::uint64_t id_increments = 0;
    std::size_t activated = 0;  // agents that invoked start_sim
  };

  // The Nn layer of one agent (Lemma 3).
  struct NamingState {
    std::uint32_t my_id = 1;
    std::uint32_t max_id = 1;
  };

  // What a value-level step did — also the mutation footprint the
  // count-space rule source's delta path patches from: the Nn fields
  // (my_id, max_id) move iff id_incremented || max_id_changed, activation
  // writes the SID layer's active/id fields, and fx.sid.action names the
  // SID-layer footprint (see SidCore::writes_sim_state).
  struct StepEffects {
    bool id_incremented = false;
    bool max_id_changed = false;
    bool activated = false;
    SidCore::ValueUpdate sid{};
  };

  // Pure value-level reactor step (Nn layer + SID layer), shared by the
  // step-wise simulator and the count-space rule source: mutate the
  // reactor's naming and SID state given the starter's pre-interaction
  // snapshots; `n` is the known population size gating start_sim.
  static StepEffects naming_step(const Protocol& p,
                                 const SidCore::Options& options, std::size_t n,
                                 NamingState& me, SidAgent& sid_me,
                                 const NamingState& nsnap,
                                 const SidAgent& sid_snap);

  NamingSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                  std::vector<State> initial);

  [[nodiscard]] std::unique_ptr<Simulator> clone() const override;
  [[nodiscard]] State simulated_state(AgentId a) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::uint32_t my_id(AgentId a) const { return naming_.at(a).my_id; }
  [[nodiscard]] std::uint32_t max_id(AgentId a) const { return naming_.at(a).max_id; }
  [[nodiscard]] bool activated(AgentId a) const { return agents_.at(a).active; }
  [[nodiscard]] const SidAgent& sid_agent(AgentId a) const { return agents_.at(a); }
  [[nodiscard]] bool all_activated() const;
  [[nodiscard]] const NamingStats& naming_stats() const noexcept { return nstats_; }
  [[nodiscard]] const SidStats& sid_stats() const noexcept { return core_.stats(); }

 protected:
  void do_interact(const Interaction& ia) override;

 private:
  std::vector<NamingState> naming_;
  std::vector<SidAgent> agents_;  // SID layer; inactive until max_id == n
  SidCore core_;
  NamingStats nstats_;
};

}  // namespace ppfs

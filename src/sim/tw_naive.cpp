#include "sim/tw_naive.hpp"

#include <stdexcept>

namespace ppfs {

TwSimulator::TwSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                         std::vector<State> initial)
    : Simulator(std::move(protocol), model, std::move(initial)),
      states_(initial_projection()) {
  if (is_one_way(model))
    throw std::invalid_argument("TwSimulator: requires a two-way model");
}

std::unique_ptr<Simulator> TwSimulator::clone() const {
  return std::make_unique<TwSimulator>(*this);
}

State TwSimulator::simulated_state(AgentId a) const { return states_.at(a); }

std::string TwSimulator::describe() const {
  return "TwSimulator(" + model_name(model()) + ")";
}

void TwSimulator::do_interact(const Interaction& ia) {
  const State s = states_[ia.starter];
  const State r = states_[ia.reactor];
  const StatePair out = protocol().delta(s, r);
  const std::uint64_t key = current_interaction();
  if (!ia.omissive) {
    // One perfectly matched simulated interaction per physical one. Both
    // halves are emitted (even a no-op half) so the matching stays a
    // partition; pure no-op interactions produce no events.
    if (out.starter == s && out.reactor == r) return;
    emit(ia.starter, s, out.starter, Half::Starter, key, r);
    emit(ia.reactor, r, out.reactor, Half::Reactor, key, s);
    states_[ia.starter] = out.starter;
    states_[ia.reactor] = out.reactor;
    return;
  }
  // Omissive interaction under T1/T2/T3. The naive wrapper ignores
  // detection (chooses o = h = id): a party hit by the omission keeps its
  // state, the other applies its half of delta computed from the original
  // pair — precisely the faulty outcomes of the T-model relations, and
  // precisely what lets the adversary forge unmatched half-transitions.
  const bool starter_hit = ia.side == OmitSide::Both || ia.side == OmitSide::Starter;
  const bool reactor_hit = ia.side == OmitSide::Both || ia.side == OmitSide::Reactor;
  if (!starter_hit && out.starter != s) {
    emit(ia.starter, s, out.starter, Half::Starter, key, r);
    states_[ia.starter] = out.starter;
  }
  if (!reactor_hit && out.reactor != r) {
    emit(ia.reactor, r, out.reactor, Half::Reactor, key, s);
    states_[ia.reactor] = out.reactor;
  }
}

}  // namespace ppfs

#include "sim/naming.hpp"

#include <algorithm>

namespace ppfs {

NamingSimulator::NamingSimulator(std::shared_ptr<const Protocol> protocol,
                                 Model model, std::vector<State> initial)
    : Simulator(std::move(protocol), model, std::move(initial)) {
  const std::size_t n = num_agents();
  naming_.resize(n);
  agents_.resize(n);
  for (AgentId a = 0; a < n; ++a) {
    agents_[a].active = false;
    agents_[a].sim_state = initial_projection()[a];
  }
  if (n == 1) {
    // Degenerate population: max_id = n = 1 immediately.
    agents_[0].active = true;
    agents_[0].id = 1;
    nstats_.activated = 1;
  }
}

std::unique_ptr<Simulator> NamingSimulator::clone() const {
  return std::make_unique<NamingSimulator>(*this);
}

State NamingSimulator::simulated_state(AgentId a) const {
  return agents_.at(a).sim_state;
}

std::string NamingSimulator::describe() const {
  return "Nn+SID(" + model_name(model()) + ", n=" + std::to_string(num_agents()) +
         ")";
}

bool NamingSimulator::all_activated() const {
  return std::all_of(agents_.begin(), agents_.end(),
                     [](const SidAgent& a) { return a.active; });
}

NamingSimulator::StepEffects NamingSimulator::naming_step(
    const Protocol& p, const SidCore::Options& options, std::size_t n,
    NamingState& me, SidAgent& sid_me, const NamingState& nsnap,
    const SidAgent& sid_snap) {
  StepEffects fx;

  // --- Nn layer (Lemma 3) ---
  if (nsnap.my_id == me.my_id) {
    ++me.my_id;
    fx.id_incremented = true;
  }
  const std::uint32_t max_before = me.max_id;
  me.max_id = std::max({me.max_id, me.my_id, nsnap.my_id, nsnap.max_id});
  fx.max_id_changed = me.max_id != max_before;
  if (!sid_me.active && me.max_id == n) {
    // start_sim(my_id): at this point all ids are unique and stable.
    sid_me.active = true;
    sid_me.id = me.my_id;
    fx.activated = true;
  }

  // --- SID layer (only between activated agents) ---
  fx.sid = SidCore::react_value(p, options, sid_me, sid_snap);
  return fx;
}

void NamingSimulator::do_interact(const Interaction& ia) {
  // Reactor-side only; omissions deliver nothing (no-op under any model).
  if (ia.omissive) return;
  const NamingState nsnap = naming_[ia.starter];
  const SidAgent sid_snap = agents_[ia.starter];  // pre-interaction snapshot
  SidAgent& sid_me = agents_[ia.reactor];

  const StepEffects fx =
      naming_step(protocol(), core_.options(), num_agents(),
                  naming_[ia.reactor], sid_me, nsnap, sid_snap);
  if (fx.id_incremented) ++nstats_.id_increments;
  if (fx.activated) ++nstats_.activated;
  if (auto up = core_.commit(fx.sid, sid_me, sid_snap)) {
    emit(ia.reactor, up->before, up->after, up->half, up->key, up->partner);
  }
}

}  // namespace ppfs

#include "sim/naming.hpp"

#include <algorithm>

namespace ppfs {

NamingSimulator::NamingSimulator(std::shared_ptr<const Protocol> protocol,
                                 Model model, std::vector<State> initial)
    : Simulator(std::move(protocol), model, std::move(initial)) {
  const std::size_t n = num_agents();
  naming_.resize(n);
  agents_.resize(n);
  for (AgentId a = 0; a < n; ++a) {
    agents_[a].active = false;
    agents_[a].sim_state = initial_projection()[a];
  }
  if (n == 1) {
    // Degenerate population: max_id = n = 1 immediately.
    agents_[0].active = true;
    agents_[0].id = 1;
    nstats_.activated = 1;
  }
}

std::unique_ptr<Simulator> NamingSimulator::clone() const {
  return std::make_unique<NamingSimulator>(*this);
}

State NamingSimulator::simulated_state(AgentId a) const {
  return agents_.at(a).sim_state;
}

std::string NamingSimulator::describe() const {
  return "Nn+SID(" + model_name(model()) + ", n=" + std::to_string(num_agents()) +
         ")";
}

bool NamingSimulator::all_activated() const {
  return std::all_of(agents_.begin(), agents_.end(),
                     [](const SidAgent& a) { return a.active; });
}

void NamingSimulator::do_interact(const Interaction& ia) {
  // Reactor-side only; omissions deliver nothing (no-op under any model).
  if (ia.omissive) return;
  const Naming nsnap = naming_[ia.starter];
  const SidAgent sid_snap = agents_[ia.starter];  // pre-interaction snapshot

  // --- Nn layer (Lemma 3) ---
  Naming& me = naming_[ia.reactor];
  if (nsnap.my_id == me.my_id) {
    ++me.my_id;
    ++nstats_.id_increments;
  }
  me.max_id = std::max({me.max_id, me.my_id, nsnap.my_id, nsnap.max_id});
  SidAgent& sid_me = agents_[ia.reactor];
  if (!sid_me.active && me.max_id == num_agents()) {
    // start_sim(my_id): at this point all ids are unique and stable.
    sid_me.active = true;
    sid_me.id = me.my_id;
    ++nstats_.activated;
  }

  // --- SID layer (only between activated agents) ---
  if (auto up = core_.react(protocol(), sid_me, sid_snap)) {
    emit(ia.reactor, up->before, up->after, up->half, up->key, up->partner);
  }
}

}  // namespace ppfs

#include "sim/sim_rules.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/tw_naive.hpp"
#include "util/audit.hpp"

namespace ppfs {

namespace {

// --- little-endian byte packing ---------------------------------------------

void put8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}
void put32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

// Raw little-endian stores into stack buffers (the ByteEdit payloads of
// the patch-based successor path).
void put16_at(char* out, std::uint16_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>(v >> 8);
}
void put32_at(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint8_t get8(const char*& p) { return static_cast<std::uint8_t>(*p++); }
std::uint16_t get16(const char*& p) {
  const auto lo = static_cast<std::uint8_t>(*p++);
  const auto hi = static_cast<std::uint8_t>(*p++);
  return static_cast<std::uint16_t>(lo | (hi << 8));
}
std::uint32_t get32(const char*& p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(*p++)) << (8 * i);
  return v;
}

// --- SID / naming agent encodings -------------------------------------------

void encode_sid_agent(std::string& out, const SidAgent& a) {
  put8(out, a.active ? 1 : 0);
  put32(out, a.id);
  put32(out, a.sim_state);
  put8(out, static_cast<std::uint8_t>(a.status));
  put32(out, a.other_id);
  put32(out, a.other_state);
}

SidAgent decode_sid_agent(const char*& p) {
  SidAgent a;
  a.active = get8(p) != 0;
  a.id = get32(p);
  a.sim_state = get32(p);
  a.status = static_cast<SidAgent::Status>(get8(p));
  a.other_id = get32(p);
  a.other_state = get32(p);
  a.txn = 0;  // provenance: excluded from the canonical encoding
  return a;
}

// Delta path: the SidCore Action footprint names exactly which SidAgent
// fields react_value wrote, and they are contiguous in the encoding above —
// Pairing/Rollback rewrite [status u8][other_id u32][other_state u32] at
// +9, Lock/Complete extend left to [sim_state u32] at +5. `off` shifts the
// range for naming's layered record; `buf` (>= 13 bytes) must outlive the
// edit's application.
ByteEdit sid_action_edit(const SidAgent& me, SidCore::Action action,
                         std::size_t off, char* buf) {
  char* p = buf;
  std::size_t at = off + 9;
  if (SidCore::writes_sim_state(action)) {
    at = off + 5;
    put32_at(p, me.sim_state);
    p += 4;
  }
  *p++ = static_cast<char>(static_cast<std::uint8_t>(me.status));
  put32_at(p, me.other_id);
  p += 4;
  put32_at(p, me.other_state);
  p += 4;
  return ByteEdit::replace(at, {buf, static_cast<std::size_t>(p - buf)});
}

// Reactor-half cache key shared by SID and naming: the ordered (starter
// id, reactor id) pair, biased so 0 stays the "uncacheable" sentinel.
std::uint64_t sid_pair_key(State s, State r) {
  return ((s | r) >> 31) == 0
             ? ((static_cast<std::uint64_t>(s) << 31) | r) + 1
             : 0;
}

// --- SKnO token packing ------------------------------------------------------
//
// kind 2 bits | q 12 bits | qr 12 bits | index 6 bits, kNoState -> 0xfff.

constexpr std::uint32_t kNoStateField = 0xfff;

std::uint32_t pack_state12(State q) {
  return q == kNoState ? kNoStateField : static_cast<std::uint32_t>(q);
}
State unpack_state12(std::uint32_t f) {
  return f == kNoStateField ? kNoState : static_cast<State>(f);
}

std::uint32_t pack_token(const SknoCore::Token& t) {
  return static_cast<std::uint32_t>(t.kind) | (pack_state12(t.q) << 2) |
         (pack_state12(t.qr) << 14) | (t.index << 26);
}

SknoCore::Token unpack_token(std::uint32_t v) {
  SknoCore::Token t;
  t.kind = static_cast<SknoCore::Token::Kind>(v & 0x3);
  t.q = unpack_state12((v >> 2) & 0xfff);
  t.qr = unpack_state12((v >> 14) & 0xfff);
  t.index = v >> 26;
  t.run = 0;  // provenance: excluded from the canonical encoding
  return t;
}

}  // namespace

// --- SidRuleSource ----------------------------------------------------------

SidRuleSource::SidRuleSource(std::shared_ptr<const Protocol> protocol,
                             Model model, std::size_t n,
                             SidCore::Options options)
    : protocol_(std::move(protocol)), model_(model), n_(n), options_(options) {
  if (!protocol_) throw std::invalid_argument("SidRuleSource: null protocol");
  if (n_ < 2) throw std::invalid_argument("SidRuleSource: n >= 2 required");
  // Reactor-half cache default, sized for test-scale populations;
  // make_sim_rule_source scales it with n.
  set_internal_cache_capacity(1u << 12);
}

std::string SidRuleSource::describe() const {
  return "SID(" + model_name(model_) + ", count-space)";
}

State SidRuleSource::intern_agent(const SidAgent& a) {
  std::string bytes;
  bytes.reserve(18);
  encode_sid_agent(bytes, a);
  return universe_.intern(bytes);
}

SidAgent SidRuleSource::decode_agent(State s) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  return decode_sid_agent(p);
}

std::vector<State> SidRuleSource::intern_initial(const std::vector<State>& sim) {
  if (sim.size() != n_)
    throw std::invalid_argument("SidRuleSource: initial arity != n");
  std::vector<State> out(sim.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    SidAgent a;
    a.active = true;
    a.id = static_cast<std::uint32_t>(i);  // SidSimulator's default ids
    a.sim_state = sim[i];
    out[i] = intern_agent(a);
  }
  return out;
}

State SidRuleSource::react(State reactor, State starter_snap) {
  SidAgent me = decode_agent(reactor);
  const SidAgent snap = decode_agent(starter_snap);
  const SidCore::ValueUpdate vu =
      SidCore::react_value(*protocol_, options_, me, snap);
  if (vu.action == SidCore::Action::None) return reactor;
  if (!use_patches_) return intern_agent(me);
  char buf[13];
  const ByteEdit edits[] = {sid_action_edit(me, vu.action, 0, buf)};
  const State out = universe_.intern_patched(reactor, edits);
  // The fuzz suite pins patch/full equality distributionally; this pins it
  // on every step of every Debug or audit-enabled test run.
  PPFS_AUDIT_ASSERT("SidRuleSource",
                    "patched successor matches full re-serialization", [&] {
                      std::string full;
                      full.reserve(18);
                      encode_sid_agent(full, me);
                      return universe_.encoding(out) == full;
                    }());
  return out;
}

StatePair SidRuleSource::outcome(InteractionClass c, State s, State r) {
  // Reactor-side only: omissions deliver nothing, under every model.
  if (c != InteractionClass::Real) return {s, r};
  // Reactor half, cached on the ordered (starter, reactor) id pair and
  // generation-validated on the reactor; the starter half is the identity.
  const std::uint64_t key = sid_pair_key(s, r);
  if (const StatePair* hit = react_cache_.find_raw(key, r))
    return {s, hit->reactor};
  const State r2 = react(r, s);
  react_cache_.insert_raw(key, r, {r2, r2});
  return {s, r2};
}

State SidRuleSource::project(State s) const {
  return decode_agent(s).sim_state;
}

// --- NamingRuleSource -------------------------------------------------------

NamingRuleSource::NamingRuleSource(std::shared_ptr<const Protocol> protocol,
                                   Model model, std::size_t n,
                                   SidCore::Options options)
    : SidRuleSource(std::move(protocol), model, n, options) {}

std::string NamingRuleSource::describe() const {
  return "Nn+SID(" + model_name(model_) + ", n=" + std::to_string(n_) +
         ", count-space)";
}

State NamingRuleSource::intern_full(const Full& f) {
  std::string bytes;
  bytes.reserve(26);
  put32(bytes, f.naming.my_id);
  put32(bytes, f.naming.max_id);
  encode_sid_agent(bytes, f.sid);
  return universe_.intern(bytes);
}

NamingRuleSource::Full NamingRuleSource::decode_full(State s) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  Full f;
  f.naming.my_id = get32(p);
  f.naming.max_id = get32(p);
  f.sid = decode_sid_agent(p);
  return f;
}

std::vector<State> NamingRuleSource::intern_initial(
    const std::vector<State>& sim) {
  if (sim.size() != n_)
    throw std::invalid_argument("NamingRuleSource: initial arity != n");
  // Everyone starts my_id = max_id = 1 with an inactive SID layer: agents
  // with equal simulated states share one wrapper state (no identities
  // yet — naming is the knowledge-of-n column).
  std::vector<State> out(sim.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    Full f;
    f.sid.active = false;
    f.sid.id = kNoId;
    f.sid.sim_state = sim[i];
    out[i] = intern_full(f);
  }
  return out;
}

State NamingRuleSource::react(State reactor, State starter_snap) {
  Full me = decode_full(reactor);
  const Full snap = decode_full(starter_snap);
  const NamingSimulator::StepEffects fx = NamingSimulator::naming_step(
      *protocol_, options_, n_, me.naming, me.sid, snap.naming, snap.sid);
  const bool naming_changed = fx.id_incremented || fx.max_id_changed;
  if (!naming_changed && !fx.activated &&
      fx.sid.action == SidCore::Action::None)
    return reactor;
  if (!use_patches_) return intern_full(me);
  // Layered footprint, up to two non-overlapping edits in offset order:
  // [my_id u32 @0][max_id u32 @4] when the Nn layer moved; activation
  // (rare: n events per run) rewrites the whole SID record at @8 — it
  // writes active/id, and in the same step the SID layer may act too;
  // otherwise the SID action patches its usual range shifted by +8.
  ByteEdit edits[2];
  std::size_t ne = 0;
  char head[8];
  if (naming_changed) {
    put32_at(head, me.naming.my_id);
    put32_at(head + 4, me.naming.max_id);
    edits[ne++] = ByteEdit::replace(0, {head, 8});
  }
  char sid_buf[18];
  if (fx.activated) {
    std::string full;
    full.reserve(18);
    encode_sid_agent(full, me.sid);
    full.copy(sid_buf, full.size());
    edits[ne++] = ByteEdit::replace(8, {sid_buf, full.size()});
  } else if (fx.sid.action != SidCore::Action::None) {
    edits[ne++] = sid_action_edit(me.sid, fx.sid.action, 8, sid_buf);
  }
  const State out = universe_.intern_patched(reactor, {edits, ne});
  PPFS_AUDIT_ASSERT("NamingRuleSource",
                    "patched successor matches full re-serialization", [&] {
                      std::string full;
                      full.reserve(26);
                      put32(full, me.naming.my_id);
                      put32(full, me.naming.max_id);
                      encode_sid_agent(full, me.sid);
                      return universe_.encoding(out) == full;
                    }());
  return out;
}

State NamingRuleSource::project(State s) const {
  return decode_full(s).sid.sim_state;
}

// --- SknoRuleSource ---------------------------------------------------------

SknoRuleSource::SknoRuleSource(std::shared_ptr<const Protocol> protocol,
                               Model model, std::size_t omission_bound,
                               SknoCore::Options options)
    : protocol_(std::move(protocol)),
      core_(protocol_.get(), model, omission_bound, options,
            /*track_provenance=*/false) {
  if (!protocol_) throw std::invalid_argument("SknoRuleSource: null protocol");
  if (protocol_->num_states() >= kNoStateField)
    throw std::invalid_argument(
        "SknoRuleSource: token packing supports at most 4094 simulated "
        "states (kind 2 | q 12 | qr 12 | index 6 u32 packing, " +
        std::to_string(protocol_->num_states()) + " given)");
  if (omission_bound > 62)
    throw std::invalid_argument(
        "SknoRuleSource: token packing supports omission bounds o <= 62 "
        "(run indices 1..o+1 in 6 bits, o = " +
        std::to_string(omission_bound) + " given)");
  // Source-internal caches (the decomposed delta path): (token, reactor)
  // receive successors and per-state g successors. Default sized for
  // test-scale populations; make_sim_rule_source scales them with n.
  set_internal_cache_capacity(1u << 12);
}

std::string SknoRuleSource::describe() const {
  return "SKnO(" + model_name(core_.model()) +
         ", o=" + std::to_string(core_.omission_bound()) + ", count-space)";
}

void SknoRuleSource::encode_agent_into(const SknoCore::Agent& a,
                                       std::string& bytes) const {
  if (a.sending.size() > 0xffff || a.joker_debt.size() > 0xffff)
    throw std::length_error("SknoRuleSource: queue exceeds the u16 encoding");
  bytes.clear();
  bytes.reserve(5 + 4 * (a.sending.size() + a.joker_debt.size()) + 4);
  put16(bytes, static_cast<std::uint16_t>(a.sim_state));
  put8(bytes, a.pending ? 1 : 0);
  put16(bytes, static_cast<std::uint16_t>(a.sending.size()));
  for (const auto& t : a.sending) put32(bytes, pack_token(t));
  // The debt list is looked up by value only — sort to canonicalize.
  auto& debt = debt_scratch_;
  debt.clear();
  debt.reserve(a.joker_debt.size());
  for (const auto& t : a.joker_debt) debt.push_back(pack_token(t));
  std::sort(debt.begin(), debt.end());
  put16(bytes, static_cast<std::uint16_t>(debt.size()));
  for (std::uint32_t v : debt) put32(bytes, v);
}

std::string SknoRuleSource::encode_agent(const SknoCore::Agent& a) const {
  std::string bytes;
  encode_agent_into(a, bytes);
  return bytes;
}

State SknoRuleSource::intern_agent(const SknoCore::Agent& a) {
  encode_agent_into(a, enc_scratch_);
  return universe_.intern(enc_scratch_);
}

// Delta path helpers: the byte layout of the two starter-g successor
// shapes lives here and nowhere else. Layout (see file header):
// [sim u16 @0][pending u8 @2][nq u16 @3][queue @5, 4 bytes/token]
// [nd u16 @5+4nq][debt ...].
State SknoRuleSource::intern_pop_front(State base, std::uint16_t nq) {
  char hdr[2];
  put16_at(hdr, static_cast<std::uint16_t>(nq - 1));
  const ByteEdit edits[] = {ByteEdit::replace(3, {hdr, 2}),
                            ByteEdit::erase(5, 4)};
  return universe_.intern_patched(base, edits);
}

State SknoRuleSource::intern_refilled(State base, State sim) {
  // Pre-state is available with an empty queue; the successor is pending
  // with the own-state run's indices 2..o+1 (index 1 was popped).
  const std::size_t o = core_.omission_bound();
  char hdr[3];
  hdr[0] = 1;  // pending
  put16_at(hdr + 1, static_cast<std::uint16_t>(o));
  char toks[62 * 4];  // o <= 62
  for (std::size_t i = 0; i < o; ++i)
    put32_at(toks + 4 * i,
             pack_token(SknoCore::Token{SknoCore::Token::Kind::StateRun, sim,
                                        kNoState,
                                        static_cast<std::uint32_t>(i + 2), 0}));
  const ByteEdit edits[] = {ByteEdit::replace(2, {hdr, 3}),
                            ByteEdit::insert(5, {toks, 4 * o})};
  return universe_.intern_patched(base, edits);
}

// Delta path: the footprint names which of the frequent single-slot
// mutations the step performed, and the successor encoding is derived from
// the pre-state bytes by patching the header and at most one queue slot —
// O(changed bytes + memmove) instead of decode-order-independent full
// re-serialization.
State SknoRuleSource::intern_successor(State base, const SknoCore::Agent& post,
                                       const SknoCore::Footprint& fp) {
  using Kind = SknoCore::Footprint::Kind;
  if (fp.kind == Kind::Unchanged) return base;
  State out = kNoState;
  if (!use_patches_ || fp.kind == Kind::Complex) {
    out = intern_agent(post);
  } else if (fp.kind == Kind::PoppedFront) {
    const char* p = universe_.encoding(base).data() + 3;
    out = intern_pop_front(base, get16(p));
  } else if (fp.kind == Kind::Appended) {
    const char* p = universe_.encoding(base).data() + 3;
    const std::uint16_t nq = get16(p);
    char hdr[2];
    put16_at(hdr, static_cast<std::uint16_t>(nq + 1));
    char tok[4];
    put32_at(tok, pack_token(fp.appended));
    const ByteEdit edits[] = {
        ByteEdit::replace(3, {hdr, 2}),
        ByteEdit::insert(5 + 4 * static_cast<std::size_t>(nq), {tok, 4})};
    out = universe_.intern_patched(base, edits);
  } else {  // Kind::Refilled
    out = intern_refilled(base, post.sim_state);
  }
  // The fuzz suite pins patch/full equality distributionally; this pins it
  // on every step of every Debug or audit-enabled test run.
  PPFS_AUDIT_ASSERT("SknoRuleSource",
                    "patched successor matches full re-serialization",
                    universe_.encoding(out) == encode_agent(post));
  return out;
}

void SknoRuleSource::decode_agent_into(State s, SknoCore::Agent& a) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  a.sending.clear();
  a.joker_debt.clear();
  a.sim_state = get16(p);
  a.pending = get8(p) != 0;
  const std::size_t nq = get16(p);
  for (std::size_t i = 0; i < nq; ++i) a.sending.push_back(unpack_token(get32(p)));
  const std::size_t nd = get16(p);
  a.joker_debt.reserve(nd);
  for (std::size_t i = 0; i < nd; ++i) a.joker_debt.push_back(unpack_token(get32(p)));
}

SknoCore::Agent SknoRuleSource::decode_agent(State s) const {
  SknoCore::Agent a;
  decode_agent_into(s, a);
  return a;
}

std::vector<State> SknoRuleSource::intern_initial(const std::vector<State>& sim) {
  std::vector<State> out(sim.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    SknoCore::Agent a;
    a.sim_state = sim[i];
    out[i] = intern_agent(a);
  }
  return out;
}

State SknoRuleSource::starter_after_g(State s, SknoCore::Token& tok,
                                      bool& transmits) {
  const std::string& enc = universe_.encoding(s);
  const char* p = enc.data();
  const State sim = get16(p);
  const bool pending = get8(p) != 0;
  const std::uint16_t nq = get16(p);
  if (nq > 0) {
    // Pop the front token.
    tok = unpack_token(get32(p));
    transmits = true;
    return intern_pop_front(s, nq);
  }
  if (pending) {
    transmits = false;  // silent: pending with an empty queue
    return s;
  }
  // Refill with the own-state run 1..o+1, then pop index 1.
  tok = SknoCore::Token{SknoCore::Token::Kind::StateRun, sim, kNoState, 1, 0};
  transmits = true;
  return intern_refilled(s, sim);
}

// Packed-token sentinel for "silent" in g_tok_: kind bits 0x3 are never
// produced by pack_token (Token::Kind has three values).
constexpr std::uint32_t kSilentTok = 0xffffffffu;

State SknoRuleSource::starter_after_g_cached(State s, SknoCore::Token& tok,
                                             bool& transmits) {
  const std::uint64_t key = static_cast<std::uint64_t>(s) + 1;
  if (const StatePair* hit = g_cache_.find_raw(key, s)) {
    const std::uint32_t packed = g_tok_[s];
    if (packed == kSilentTok) {
      transmits = false;
      return s;
    }
    tok = unpack_token(packed);
    transmits = true;
    return hit->starter;
  }
  const State s2 = starter_after_g(s, tok, transmits);
  if (s >> 31 == 0 && s2 >> 31 == 0) {
    if (g_tok_.size() <= s) g_tok_.resize(universe_.capacity(), kSilentTok);
    g_tok_[s] = transmits ? pack_token(tok) : kSilentTok;
    g_cache_.insert_raw(key, s, {s2, s2});
  }
  return s2;
}

State SknoRuleSource::receive_cached(State r, const SknoCore::Token& tok) {
  const std::uint64_t key =
      r >> 31 == 0
          ? ((static_cast<std::uint64_t>(pack_token(tok)) << 31) | r) + 1
          : 0;
  if (const StatePair* hit = recv_cache_.find_raw(key, r)) return hit->starter;
  decode_agent_into(r, scratch_reactor_);
  SknoCore::Footprint fp;
  core_.receive_one(scratch_reactor_, tok, fp);
  const State r2 = intern_successor(r, scratch_reactor_, fp);
  recv_cache_.insert_raw(key, r, {r2, r2});
  return r2;
}

StatePair SknoRuleSource::outcome_by_step(InteractionClass c, State s, State r) {
  SknoCore::Agent& starter = scratch_starter_;
  SknoCore::Agent& reactor = scratch_reactor_;
  decode_agent_into(s, starter);
  decode_agent_into(r, reactor);
  const bool omissive = c != InteractionClass::Real;
  const OmitSide side = c == InteractionClass::OmitStarter ? OmitSide::Starter
                        : c == InteractionClass::OmitReactor
                            ? OmitSide::Reactor
                            : OmitSide::Both;
  core_.step(starter, reactor, omissive, side, nullptr, nullptr);
  // Intern both successors (patch-based when the footprint allows) before
  // either pre-state could be released.
  const SknoCore::StepFootprint& fp = core_.last_footprint();
  const State s2 = intern_successor(s, starter, fp.starter);
  const State r2 = intern_successor(r, reactor, fp.reactor);
  return {s2, r2};
}

StatePair SknoRuleSource::outcome(InteractionClass c, State s, State r) {
  // Reference path (and the fuzz suite's comparison baseline): run the
  // shared value-level core wholesale.
  if (!use_patches_) return outcome_by_step(c, s, r);

  // Delta path: every step decomposes into the decode-free starter
  // routine g (header peek + patch) and/or the (token, reactor)-cached
  // receive half — the same value chain SknoCore::step realizes, pinned
  // by the lockstep suites across all models and sides.
  static const SknoCore::Token kJoker{SknoCore::Token::Kind::Joker, kNoState,
                                      kNoState, 0, 0};
  SknoCore::Token tok;
  bool transmits = false;
  const Model m = core_.model();
  if (c == InteractionClass::Real ||
      (m == Model::T3 && c == InteractionClass::OmitStarter)) {
    // Fault-free delivery shape (a T3 starter-side omission is
    // indistinguishable from one — see SknoCore::step): g, then receive.
    // A silent starter transmits nothing and the reactor's checks cannot
    // act (every interned state is check-stable), so the reactor is
    // untouched.
    const State s2 = starter_after_g_cached(s, tok, transmits);
    const State r2 = transmits ? receive_cached(r, tok) : r;
    return {s2, r2};
  }
  switch (m) {
    case Model::T3:
    case Model::I3: {
      // Starter pops blindly (the in-flight token dies), reactor detects:
      // minting the joker + checks == receiving a joker token.
      const State s2 = starter_after_g_cached(s, tok, transmits);
      const State r2 = receive_cached(r, kJoker);
      return {s2, r2};
    }
    case Model::I4: {
      // Starter detects (keeps its queue, gains the compensating joker);
      // the reactor behaves as a starter, popping into the void.
      const State s2 = receive_cached(s, kJoker);
      const State r2 = starter_after_g_cached(r, tok, transmits);
      return {s2, r2};
    }
    case Model::I1: {
      const State s2 = starter_after_g_cached(s, tok, transmits);
      return {s2, r};
    }
    case Model::I2: {
      const State s2 = starter_after_g_cached(s, tok, transmits);
      const State r2 = starter_after_g_cached(r, tok, transmits);
      return {s2, r2};
    }
    default:
      throw std::logic_error("SknoRuleSource: omission in non-omissive model");
  }
}

State SknoRuleSource::project(State s) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  return get16(p);
}

bool SknoRuleSource::starter_silent(State s) {
  // Header-only peek: pending with an empty queue transmits nothing.
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data() + 2;
  const bool pending = get8(p) != 0;
  const std::size_t nq = get16(p);
  return pending && nq == 0;
}

// --- construction glue ------------------------------------------------------

SimSpec parse_sim_spec(const std::string& spec) {
  SimSpec s;
  const std::size_t colon = spec.find(':');
  s.kind = spec.substr(0, colon == std::string::npos ? spec.size() : colon);
  if (s.kind != "naive" && s.kind != "skno" && s.kind != "sid" &&
      s.kind != "naming")
    throw std::invalid_argument("parse_sim_spec: unknown simulator '" + s.kind +
                                "' (want naive|skno|sid|naming)");
  if (colon == std::string::npos) return s;
  const std::string rest = spec.substr(colon + 1);
  if (rest.rfind("o=", 0) != 0 || s.kind != "skno")
    throw std::invalid_argument("parse_sim_spec: bad option '" + rest +
                                "' in '" + spec + "' (only skno:o=K)");
  try {
    std::size_t used = 0;
    s.omission_bound = std::stoul(rest.substr(2), &used);
    if (used != rest.size() - 2) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_sim_spec: bad omission bound in '" +
                                spec + "'");
  }
  return s;
}

Model default_sim_model(const SimSpec& spec) {
  if (spec.kind == "naive") return Model::TW;
  if (spec.kind == "skno") return spec.omission_bound == 0 ? Model::IT : Model::I3;
  return Model::IO;  // sid / naming: the weakest model
}

std::unique_ptr<DynamicRuleSource> make_sim_rule_source(
    const SimSpec& spec, Model model, std::shared_ptr<const Protocol> protocol,
    std::size_t n) {
  if (spec.kind == "naive") {
    if (is_one_way(model))
      throw std::invalid_argument(
          "make_sim_rule_source: the naive simulator requires a two-way model");
    return std::make_unique<MatrixRuleSource>(
        RuleMatrix::compile(std::move(protocol), model));
  }
  if (spec.kind == "skno") {
    auto src = std::make_unique<SknoRuleSource>(std::move(protocol), model,
                                                spec.omission_bound);
    // Scale the internal (token, reactor) and g-successor caches with the
    // population: live wrapper states track n.
    src->set_internal_cache_capacity(std::min<std::size_t>(
        1u << 16, std::max<std::size_t>(n * 2, 1u << 12)));
    return src;
  }
  // SID/naming reactor-half caches: the hot key space is the ordered pair
  // of per-agent wrapper ids, so give it more headroom than SKnO's
  // token-keyed caches (still bounded — at large n the pair space outruns
  // any cache and the regime monitor sends such runs to agent space).
  const std::size_t sid_cache = std::min<std::size_t>(
      1u << 20, std::max<std::size_t>(n * 8, 1u << 12));
  if (spec.kind == "sid") {
    auto src = std::make_unique<SidRuleSource>(std::move(protocol), model, n);
    src->set_internal_cache_capacity(sid_cache);
    return src;
  }
  if (spec.kind == "naming") {
    auto src =
        std::make_unique<NamingRuleSource>(std::move(protocol), model, n);
    src->set_internal_cache_capacity(sid_cache);
    return src;
  }
  throw std::invalid_argument("make_sim_rule_source: unknown simulator '" +
                              spec.kind + "'");
}

std::unique_ptr<Simulator> make_spec_simulator(
    const SimSpec& spec, Model model, std::shared_ptr<const Protocol> protocol,
    std::vector<State> initial) {
  if (spec.kind == "naive")
    return std::make_unique<TwSimulator>(std::move(protocol), model,
                                         std::move(initial));
  if (spec.kind == "skno")
    return std::make_unique<SknoSimulator>(std::move(protocol), model,
                                           spec.omission_bound,
                                           std::move(initial));
  if (spec.kind == "sid")
    return std::make_unique<SidSimulator>(std::move(protocol), model,
                                          std::move(initial));
  if (spec.kind == "naming")
    return std::make_unique<NamingSimulator>(std::move(protocol), model,
                                             std::move(initial));
  throw std::invalid_argument("make_spec_simulator: unknown simulator '" +
                              spec.kind + "'");
}

}  // namespace ppfs

#include "sim/sim_rules.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/tw_naive.hpp"

namespace ppfs {

namespace {

// --- little-endian byte packing ---------------------------------------------

void put8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}
void put32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint8_t get8(const char*& p) { return static_cast<std::uint8_t>(*p++); }
std::uint16_t get16(const char*& p) {
  const auto lo = static_cast<std::uint8_t>(*p++);
  const auto hi = static_cast<std::uint8_t>(*p++);
  return static_cast<std::uint16_t>(lo | (hi << 8));
}
std::uint32_t get32(const char*& p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(*p++)) << (8 * i);
  return v;
}

// --- SID / naming agent encodings -------------------------------------------

void encode_sid_agent(std::string& out, const SidAgent& a) {
  put8(out, a.active ? 1 : 0);
  put32(out, a.id);
  put32(out, a.sim_state);
  put8(out, static_cast<std::uint8_t>(a.status));
  put32(out, a.other_id);
  put32(out, a.other_state);
}

SidAgent decode_sid_agent(const char*& p) {
  SidAgent a;
  a.active = get8(p) != 0;
  a.id = get32(p);
  a.sim_state = get32(p);
  a.status = static_cast<SidAgent::Status>(get8(p));
  a.other_id = get32(p);
  a.other_state = get32(p);
  a.txn = 0;  // provenance: excluded from the canonical encoding
  return a;
}

// --- SKnO token packing ------------------------------------------------------
//
// kind 2 bits | q 12 bits | qr 12 bits | index 6 bits, kNoState -> 0xfff.

constexpr std::uint32_t kNoStateField = 0xfff;

std::uint32_t pack_state12(State q) {
  return q == kNoState ? kNoStateField : static_cast<std::uint32_t>(q);
}
State unpack_state12(std::uint32_t f) {
  return f == kNoStateField ? kNoState : static_cast<State>(f);
}

std::uint32_t pack_token(const SknoCore::Token& t) {
  return static_cast<std::uint32_t>(t.kind) | (pack_state12(t.q) << 2) |
         (pack_state12(t.qr) << 14) | (t.index << 26);
}

SknoCore::Token unpack_token(std::uint32_t v) {
  SknoCore::Token t;
  t.kind = static_cast<SknoCore::Token::Kind>(v & 0x3);
  t.q = unpack_state12((v >> 2) & 0xfff);
  t.qr = unpack_state12((v >> 14) & 0xfff);
  t.index = v >> 26;
  t.run = 0;  // provenance: excluded from the canonical encoding
  return t;
}

}  // namespace

// --- SidRuleSource ----------------------------------------------------------

SidRuleSource::SidRuleSource(std::shared_ptr<const Protocol> protocol,
                             Model model, std::size_t n,
                             SidCore::Options options)
    : protocol_(std::move(protocol)), model_(model), n_(n), options_(options) {
  if (!protocol_) throw std::invalid_argument("SidRuleSource: null protocol");
  if (n_ < 2) throw std::invalid_argument("SidRuleSource: n >= 2 required");
}

std::string SidRuleSource::describe() const {
  return "SID(" + model_name(model_) + ", count-space)";
}

State SidRuleSource::intern_agent(const SidAgent& a) {
  std::string bytes;
  bytes.reserve(18);
  encode_sid_agent(bytes, a);
  return universe_.intern(bytes);
}

SidAgent SidRuleSource::decode_agent(State s) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  return decode_sid_agent(p);
}

std::vector<State> SidRuleSource::intern_initial(const std::vector<State>& sim) {
  if (sim.size() != n_)
    throw std::invalid_argument("SidRuleSource: initial arity != n");
  std::vector<State> out(sim.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    SidAgent a;
    a.active = true;
    a.id = static_cast<std::uint32_t>(i);  // SidSimulator's default ids
    a.sim_state = sim[i];
    out[i] = intern_agent(a);
  }
  return out;
}

State SidRuleSource::react(State reactor, State starter_snap) {
  SidAgent me = decode_agent(reactor);
  const SidAgent snap = decode_agent(starter_snap);
  (void)SidCore::react_value(*protocol_, options_, me, snap);
  return intern_agent(me);
}

StatePair SidRuleSource::outcome(InteractionClass c, State s, State r) {
  // Reactor-side only: omissions deliver nothing, under every model.
  if (c != InteractionClass::Real) return {s, r};
  const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | r;
  if (auto it = cache_.find(key); it != cache_.end()) return {s, it->second};
  const State r2 = react(r, s);
  cache_.emplace(key, r2);
  return {s, r2};
}

State SidRuleSource::project(State s) const {
  return decode_agent(s).sim_state;
}

// --- NamingRuleSource -------------------------------------------------------

NamingRuleSource::NamingRuleSource(std::shared_ptr<const Protocol> protocol,
                                   Model model, std::size_t n,
                                   SidCore::Options options)
    : SidRuleSource(std::move(protocol), model, n, options) {}

std::string NamingRuleSource::describe() const {
  return "Nn+SID(" + model_name(model_) + ", n=" + std::to_string(n_) +
         ", count-space)";
}

State NamingRuleSource::intern_full(const Full& f) {
  std::string bytes;
  bytes.reserve(26);
  put32(bytes, f.naming.my_id);
  put32(bytes, f.naming.max_id);
  encode_sid_agent(bytes, f.sid);
  return universe_.intern(bytes);
}

NamingRuleSource::Full NamingRuleSource::decode_full(State s) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  Full f;
  f.naming.my_id = get32(p);
  f.naming.max_id = get32(p);
  f.sid = decode_sid_agent(p);
  return f;
}

std::vector<State> NamingRuleSource::intern_initial(
    const std::vector<State>& sim) {
  if (sim.size() != n_)
    throw std::invalid_argument("NamingRuleSource: initial arity != n");
  // Everyone starts my_id = max_id = 1 with an inactive SID layer: agents
  // with equal simulated states share one wrapper state (no identities
  // yet — naming is the knowledge-of-n column).
  std::vector<State> out(sim.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    Full f;
    f.sid.active = false;
    f.sid.id = kNoId;
    f.sid.sim_state = sim[i];
    out[i] = intern_full(f);
  }
  return out;
}

State NamingRuleSource::react(State reactor, State starter_snap) {
  Full me = decode_full(reactor);
  const Full snap = decode_full(starter_snap);
  (void)NamingSimulator::naming_step(*protocol_, options_, n_, me.naming,
                                     me.sid, snap.naming, snap.sid);
  return intern_full(me);
}

State NamingRuleSource::project(State s) const {
  return decode_full(s).sid.sim_state;
}

// --- SknoRuleSource ---------------------------------------------------------

SknoRuleSource::SknoRuleSource(std::shared_ptr<const Protocol> protocol,
                               Model model, std::size_t omission_bound,
                               SknoCore::Options options)
    : protocol_(std::move(protocol)),
      core_(protocol_.get(), model, omission_bound, options,
            /*track_provenance=*/false) {
  if (!protocol_) throw std::invalid_argument("SknoRuleSource: null protocol");
  if (protocol_->num_states() >= kNoStateField)
    throw std::invalid_argument(
        "SknoRuleSource: token packing supports < 4095 simulated states");
  if (omission_bound > 62)
    throw std::invalid_argument(
        "SknoRuleSource: token packing supports o <= 62");
}

std::string SknoRuleSource::describe() const {
  return "SKnO(" + model_name(core_.model()) +
         ", o=" + std::to_string(core_.omission_bound()) + ", count-space)";
}

State SknoRuleSource::intern_agent(const SknoCore::Agent& a) {
  if (a.sending.size() > 0xffff || a.joker_debt.size() > 0xffff)
    throw std::length_error("SknoRuleSource: queue exceeds the u16 encoding");
  std::string bytes;
  bytes.reserve(5 + 4 * (a.sending.size() + a.joker_debt.size()) + 4);
  put16(bytes, static_cast<std::uint16_t>(a.sim_state));
  put8(bytes, a.pending ? 1 : 0);
  put16(bytes, static_cast<std::uint16_t>(a.sending.size()));
  for (const auto& t : a.sending) put32(bytes, pack_token(t));
  // The debt list is looked up by value only — sort to canonicalize.
  std::vector<std::uint32_t> debt;
  debt.reserve(a.joker_debt.size());
  for (const auto& t : a.joker_debt) debt.push_back(pack_token(t));
  std::sort(debt.begin(), debt.end());
  put16(bytes, static_cast<std::uint16_t>(debt.size()));
  for (std::uint32_t v : debt) put32(bytes, v);
  return universe_.intern(bytes);
}

SknoCore::Agent SknoRuleSource::decode_agent(State s) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  SknoCore::Agent a;
  a.sim_state = get16(p);
  a.pending = get8(p) != 0;
  const std::size_t nq = get16(p);
  for (std::size_t i = 0; i < nq; ++i) a.sending.push_back(unpack_token(get32(p)));
  const std::size_t nd = get16(p);
  a.joker_debt.reserve(nd);
  for (std::size_t i = 0; i < nd; ++i) a.joker_debt.push_back(unpack_token(get32(p)));
  return a;
}

std::vector<State> SknoRuleSource::intern_initial(const std::vector<State>& sim) {
  std::vector<State> out(sim.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    SknoCore::Agent a;
    a.sim_state = sim[i];
    out[i] = intern_agent(a);
  }
  return out;
}

StatePair SknoRuleSource::outcome(InteractionClass c, State s, State r) {
  SknoCore::Agent starter = decode_agent(s);
  SknoCore::Agent reactor = decode_agent(r);
  const bool omissive = c != InteractionClass::Real;
  const OmitSide side = c == InteractionClass::OmitStarter ? OmitSide::Starter
                        : c == InteractionClass::OmitReactor
                            ? OmitSide::Reactor
                            : OmitSide::Both;
  core_.step(starter, reactor, omissive, side, nullptr, nullptr);
  // Intern both successors before either pre-state could be released.
  const State s2 = intern_agent(starter);
  const State r2 = intern_agent(reactor);
  return {s2, r2};
}

State SknoRuleSource::project(State s) const {
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data();
  return get16(p);
}

bool SknoRuleSource::starter_silent(State s) {
  // Header-only peek: pending with an empty queue transmits nothing.
  const std::string& bytes = universe_.encoding(s);
  const char* p = bytes.data() + 2;
  const bool pending = get8(p) != 0;
  const std::size_t nq = get16(p);
  return pending && nq == 0;
}

// --- construction glue ------------------------------------------------------

SimSpec parse_sim_spec(const std::string& spec) {
  SimSpec s;
  const std::size_t colon = spec.find(':');
  s.kind = spec.substr(0, colon == std::string::npos ? spec.size() : colon);
  if (s.kind != "naive" && s.kind != "skno" && s.kind != "sid" &&
      s.kind != "naming")
    throw std::invalid_argument("parse_sim_spec: unknown simulator '" + s.kind +
                                "' (want naive|skno|sid|naming)");
  if (colon == std::string::npos) return s;
  const std::string rest = spec.substr(colon + 1);
  if (rest.rfind("o=", 0) != 0 || s.kind != "skno")
    throw std::invalid_argument("parse_sim_spec: bad option '" + rest +
                                "' in '" + spec + "' (only skno:o=K)");
  try {
    std::size_t used = 0;
    s.omission_bound = std::stoul(rest.substr(2), &used);
    if (used != rest.size() - 2) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_sim_spec: bad omission bound in '" +
                                spec + "'");
  }
  return s;
}

Model default_sim_model(const SimSpec& spec) {
  if (spec.kind == "naive") return Model::TW;
  if (spec.kind == "skno") return spec.omission_bound == 0 ? Model::IT : Model::I3;
  return Model::IO;  // sid / naming: the weakest model
}

std::unique_ptr<DynamicRuleSource> make_sim_rule_source(
    const SimSpec& spec, Model model, std::shared_ptr<const Protocol> protocol,
    std::size_t n) {
  if (spec.kind == "naive") {
    if (is_one_way(model))
      throw std::invalid_argument(
          "make_sim_rule_source: the naive simulator requires a two-way model");
    return std::make_unique<MatrixRuleSource>(
        RuleMatrix::compile(std::move(protocol), model));
  }
  if (spec.kind == "skno")
    return std::make_unique<SknoRuleSource>(std::move(protocol), model,
                                            spec.omission_bound);
  if (spec.kind == "sid")
    return std::make_unique<SidRuleSource>(std::move(protocol), model, n);
  if (spec.kind == "naming")
    return std::make_unique<NamingRuleSource>(std::move(protocol), model, n);
  throw std::invalid_argument("make_sim_rule_source: unknown simulator '" +
                              spec.kind + "'");
}

std::unique_ptr<Simulator> make_spec_simulator(
    const SimSpec& spec, Model model, std::shared_ptr<const Protocol> protocol,
    std::vector<State> initial) {
  if (spec.kind == "naive")
    return std::make_unique<TwSimulator>(std::move(protocol), model,
                                         std::move(initial));
  if (spec.kind == "skno")
    return std::make_unique<SknoSimulator>(std::move(protocol), model,
                                           spec.omission_bound,
                                           std::move(initial));
  if (spec.kind == "sid")
    return std::make_unique<SidSimulator>(std::move(protocol), model,
                                          std::move(initial));
  if (spec.kind == "naming")
    return std::make_unique<NamingSimulator>(std::move(protocol), model,
                                             std::move(initial));
  throw std::invalid_argument("make_spec_simulator: unknown simulator '" +
                              spec.kind + "'");
}

}  // namespace ppfs

// SID — the unique-ID locking simulator of §4.2 (Figure 3, Theorem 4.5).
//
// Designed for IO (the weakest model: only the reactor observes, the
// starter is unaware), assuming unique IDs in the initial states. The
// reactor-side state machine:
//
//   available  --observes available starter-->           pairing(starter)
//   available  --observes pairing starter targeting me and whose recorded
//                 copy of my simulated state is current-->
//                 locked(starter), apply fs                  (lines 6-9)
//   pairing    --observes my locked partner-->
//                 apply fr (with the state saved at pairing time — see
//                 DESIGN.md erratum note), back to available (lines 10-13)
//   any        --observes partner engaged elsewhere/reset--> rollback to
//                 available                                  (lines 14-16)
//
// All updates are reactor-side only, so SID runs unchanged in *every*
// model of Figure 1; an omission simply delivers nothing and is a global
// no-op (the starter functions are identities), which is why the
// with-IDs column of Figure 4 is entirely green, even under the UO
// adversary.
//
// The locking core is factored into SidCore so the knowledge-of-n
// simulator (sim/naming.hpp) can reuse it with late per-agent activation.
#pragma once

#include <optional>

#include "sim/simulator.hpp"

namespace ppfs {

inline constexpr std::uint32_t kNoId = 0xffffffffu;

struct SidAgent {
  bool active = true;          // naming composition: joined the simulation
  std::uint32_t id = kNoId;    // unique ID (from initial knowledge or Nn)
  State sim_state = 0;
  enum class Status : std::uint8_t { Available, Pairing, Locked };
  Status status = Status::Available;
  std::uint32_t other_id = kNoId;  // partner ID while pairing/locked
  State other_state = kNoState;    // partner simulated state saved at pairing
  std::uint64_t txn = 0;           // lock transaction id (verification key)
};

struct SidStats {
  std::uint64_t pairings = 0;
  std::uint64_t locks = 0;      // starter halves applied
  std::uint64_t completes = 0;  // reactor halves applied
  std::uint64_t rollbacks = 0;
};

// The reactor-side step shared by SidSimulator and NamingSimulator.
class SidCore {
 public:
  struct Update {
    State before;
    State after;
    Half half;
    std::uint64_t key;
    State partner;
  };

  // Ablation switch (default = faithful Figure 3). The line-6 guard
  // `state_other == stateP` refuses locks against a stale saved copy of
  // the reactor's simulated state; without it, SID applies delta halves
  // to states that no longer exist and the safety of the simulated
  // protocol breaks (see the ablation experiments).
  struct Options {
    bool guard_partner_state = true;
  };

  SidCore() = default;
  explicit SidCore(Options options) : options_(options) {}

  // What a value-level reactor step did (see react_value).
  enum class Action : std::uint8_t { None, Pairing, Lock, Complete, Rollback };
  struct ValueUpdate {
    Action action = Action::None;
    State before = kNoState;  // simulated-state change, when Lock/Complete
    State after = kNoState;
    Half half = Half::Starter;
    State partner = kNoState;
  };

  // The pure value-level reactor step of Figure 3, shared by the step-wise
  // simulator and the count-space rule source (sim/sim_rules.hpp): mutate
  // `me` given the starter's pre-interaction snapshot. Deliberately
  // provenance-free — `txn` is neither read nor assigned (it is zeroed on
  // Lock), so behavior is a function of value-level state only and agents
  // with equal values are interchangeable under interning.
  [[nodiscard]] static ValueUpdate react_value(const Protocol& p,
                                               const Options& options,
                                               SidAgent& me,
                                               const SidAgent& snap);

  // The mutation footprint of a value step, keyed by the returned Action —
  // the count-space rule source's delta path patches exactly these
  // SidAgent fields (active and id never change after construction /
  // activation; txn is provenance, excluded from canonical encodings):
  //   None               -> nothing (the reactor's encoding is unchanged)
  //   Pairing / Rollback -> status, other_id, other_state
  //   Lock / Complete    -> sim_state, status, other_id, other_state
  [[nodiscard]] static constexpr bool writes_sim_state(Action a) noexcept {
    return a == Action::Lock || a == Action::Complete;
  }

  // Stateful wrapper: react_value plus stats and lock-transaction ids for
  // the matching verifier. `me` is the reactor, `snap` the starter's
  // pre-interaction snapshot. Returns a simulated-state update if one
  // happened.
  [[nodiscard]] std::optional<Update> react(const Protocol& p, SidAgent& me,
                                            const SidAgent& snap);

  // Attach provenance and stats to a value-level result that already
  // mutated `me` (assigns the lock txn on Lock, reads snap.txn on
  // Complete). react() == react_value + commit; the naming simulator uses
  // commit directly after its layered naming_step.
  [[nodiscard]] std::optional<Update> commit(const ValueUpdate& vu,
                                             SidAgent& me,
                                             const SidAgent& snap);

  [[nodiscard]] const SidStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  SidStats stats_;
  std::uint64_t next_txn_ = 1;
};

class SidSimulator final : public Simulator {
 public:
  // `ids` must be unique; defaults (empty) to ids 0..n-1. Works under any
  // of the ten models.
  SidSimulator(std::shared_ptr<const Protocol> protocol, Model model,
               std::vector<State> initial, std::vector<std::uint32_t> ids = {},
               SidCore::Options options = {});

  [[nodiscard]] std::unique_ptr<Simulator> clone() const override;
  [[nodiscard]] State simulated_state(AgentId a) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const SidStats& stats() const noexcept { return core_.stats(); }
  [[nodiscard]] const SidAgent& agent(AgentId a) const { return agents_.at(a); }

 protected:
  void do_interact(const Interaction& ia) override;

 private:
  std::vector<SidAgent> agents_;
  SidCore core_;
};

}  // namespace ppfs

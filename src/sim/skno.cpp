#include "sim/skno.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ppfs {

namespace {
constexpr std::size_t bits_for_count(std::size_t c) {
  std::size_t b = 0;
  while (c > 0) {
    ++b;
    c >>= 1;
  }
  return b == 0 ? 1 : b;
}
}  // namespace

SknoSimulator::SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                             std::size_t omission_bound, std::vector<State> initial)
    : SknoSimulator(std::move(protocol), model, omission_bound, std::move(initial),
                    Options{}) {}

SknoSimulator::SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                             std::size_t omission_bound, std::vector<State> initial,
                             Options options)
    : Simulator(std::move(protocol), model, std::move(initial)),
      o_(omission_bound),
      options_(options) {
  if (model != Model::I3 && model != Model::I4 && model != Model::IT &&
      model != Model::T3 && model != Model::I1 && model != Model::I2)
    throw std::invalid_argument(
        "SknoSimulator: supported models are I3, I4 (omissive), IT (o = 0), "
        "T3 (via the I3 -> T3 embedding), and I1/I2 (as the Theorem 3.2 "
        "candidate only)");
  if (model == Model::IT && o_ != 0)
    throw std::invalid_argument("SknoSimulator: IT is non-omissive, use o = 0");
  agents_.resize(num_agents());
  for (AgentId a = 0; a < num_agents(); ++a)
    agents_[a].sim_state = initial_projection()[a];
}

std::unique_ptr<Simulator> SknoSimulator::clone() const {
  return std::make_unique<SknoSimulator>(*this);
}

State SknoSimulator::simulated_state(AgentId a) const {
  return agents_.at(a).sim_state;
}

std::string SknoSimulator::describe() const {
  return "SKnO(" + model_name(model()) + ", o=" + std::to_string(o_) + ")";
}

std::size_t SknoSimulator::total_live_tokens() const {
  std::size_t t = 0;
  for (const auto& a : agents_) t += a.sending.size();
  return t;
}

std::size_t SknoSimulator::live_jokers() const {
  std::size_t t = 0;
  for (const auto& a : agents_)
    for (const auto& tok : a.sending)
      if (tok.kind == Token::Kind::Joker) ++t;
  return t;
}

std::size_t SknoSimulator::memory_bits(AgentId idx) const {
  const Agent& a = agents_.at(idx);
  // Counting representation: a counter per distinct token value held, plus
  // the value tag itself (state ids + index), plus the simulator scalars.
  std::map<std::tuple<std::uint8_t, State, State, std::uint32_t>, std::size_t> counts;
  for (const auto& t : a.sending)
    ++counts[{static_cast<std::uint8_t>(t.kind), t.q, t.qr, t.index}];
  for (const auto& t : a.joker_debt)
    ++counts[{static_cast<std::uint8_t>(t.kind), t.q, t.qr, t.index}];
  const std::size_t state_bits = bits_for_count(protocol().num_states());
  const std::size_t tag_bits = 2 + 2 * state_bits + bits_for_count(o_ + 1);
  std::size_t bits = state_bits + 1;  // sim_state + pending flag
  for (const auto& [value, c] : counts) bits += tag_bits + bits_for_count(c);
  return bits;
}

void SknoSimulator::note_queue_size(const Agent& a) {
  stats_.max_queue = std::max(stats_.max_queue, a.sending.size());
}

std::optional<SknoSimulator::Token> SknoSimulator::apply_g(AgentId idx) {
  Agent& a = agents_[idx];
  if (!a.pending && a.sending.empty()) {
    // available + empty queue: open a transaction for the current state.
    a.pending = true;
    const std::uint64_t run = next_run_++;
    for (std::uint32_t i = 1; i <= o_ + 1; ++i)
      a.sending.push_back(Token{Token::Kind::StateRun, a.sim_state, kNoState, i, run});
    ++stats_.runs_generated;
    note_queue_size(a);
  }
  if (a.sending.empty()) return std::nullopt;
  Token t = a.sending.front();
  a.sending.pop_front();
  return t;
}

void SknoSimulator::mint_joker(AgentId idx) {
  Agent& a = agents_[idx];
  a.sending.push_back(Token{Token::Kind::Joker, kNoState, kNoState, 0, 0});
  ++stats_.jokers_minted;
  note_queue_size(a);
}

void SknoSimulator::receive(AgentId idx, const std::optional<Token>& tok) {
  Agent& a = agents_[idx];
  if (tok) {
    // Joker-debt repayment: a late copy of a token we substituted with a
    // joker is destroyed and the joker regenerated (token conservation).
    auto debt = options_.joker_debt
                    ? std::find_if(
                          a.joker_debt.begin(), a.joker_debt.end(),
                          [&](const Token& d) { return d.same_value(*tok); })
                    : a.joker_debt.end();
    if (debt != a.joker_debt.end()) {
      a.joker_debt.erase(debt);
      a.sending.push_back(Token{Token::Kind::Joker, kNoState, kNoState, 0, 0});
      ++stats_.debt_conversions;
    } else {
      a.sending.push_back(*tok);
    }
    note_queue_size(a);
  }
  run_checks(idx);
}

std::optional<SknoSimulator::Consumed> SknoSimulator::try_consume(
    Agent& a, Token::Kind kind, std::optional<State> q_filter) {
  // Candidate payloads in queue order (deterministic).
  std::vector<std::pair<State, State>> candidates;
  for (const auto& t : a.sending) {
    if (t.kind != kind) continue;
    if (q_filter && t.q != *q_filter) continue;
    const std::pair<State, State> payload{t.q, t.qr};
    if (std::find(candidates.begin(), candidates.end(), payload) == candidates.end())
      candidates.push_back(payload);
  }
  std::size_t jokers_avail = 0;
  for (const auto& t : a.sending)
    if (t.kind == Token::Kind::Joker) ++jokers_avail;

  for (const auto& [q, qr] : candidates) {
    // Tokens of identical value are interchangeable, so which instances we
    // remove is an implementation choice; we prefer drawing every index
    // from a single originating run (the one contributing the most
    // indices) so that verification provenance stays exact, and fill any
    // index that run lacks from other runs, then jokers.
    std::map<std::uint64_t, std::size_t> coverage;
    for (const Token& t : a.sending) {
      if (t.kind == kind && t.q == q && t.qr == qr && t.index >= 1 &&
          t.index <= o_ + 1)
        ++coverage[t.run];
    }
    std::uint64_t preferred = 0;
    std::size_t best_cov = 0;
    for (const auto& [run, cov] : coverage) {
      if (cov > best_cov) {
        best_cov = cov;
        preferred = run;
      }
    }
    // First queue position of each run index 1..o+1 for this payload,
    // preferring tokens of the preferred run.
    std::vector<std::ptrdiff_t> pos(o_ + 2, -1);
    std::vector<bool> from_preferred(o_ + 2, false);
    std::size_t have = 0;
    for (std::size_t i = 0; i < a.sending.size(); ++i) {
      const Token& t = a.sending[i];
      if (t.kind != kind || t.q != q || t.qr != qr) continue;
      if (t.index < 1 || t.index > o_ + 1) continue;
      if (pos[t.index] < 0) {
        pos[t.index] = static_cast<std::ptrdiff_t>(i);
        from_preferred[t.index] = t.run == preferred;
        ++have;
      } else if (!from_preferred[t.index] && t.run == preferred) {
        pos[t.index] = static_cast<std::ptrdiff_t>(i);
        from_preferred[t.index] = true;
      }
    }
    if (have == 0) continue;  // at least one real token required
    const std::size_t missing = (o_ + 1) - have;
    if (missing > jokers_avail) continue;

    // Consume: remove the chosen real tokens and `missing` jokers; record
    // the substituted values in the joker-debt list.
    std::vector<bool> remove(a.sending.size(), false);
    // Provenance: the run id of the token filling the smallest index. Two
    // consumptions can never share a physical token, so in joker-free
    // executions this primary id is globally unique per consumption.
    std::uint64_t primary = 0;
    for (std::uint32_t i = 1; i <= o_ + 1; ++i) {
      if (pos[i] >= 0) {
        remove[static_cast<std::size_t>(pos[i])] = true;
        if (primary == 0)
          primary = a.sending[static_cast<std::size_t>(pos[i])].run;
      } else {
        a.joker_debt.push_back(Token{kind, q, qr, i, 0});
      }
    }
    std::size_t jokers_needed = missing;
    for (std::size_t i = 0; i < a.sending.size() && jokers_needed > 0; ++i) {
      if (!remove[i] && a.sending[i].kind == Token::Kind::Joker) {
        remove[i] = true;
        --jokers_needed;
      }
    }
    stats_.jokers_used += missing;

    std::deque<Token> rest;
    for (std::size_t i = 0; i < a.sending.size(); ++i)
      if (!remove[i]) rest.push_back(a.sending[i]);
    a.sending.swap(rest);

    return Consumed{primary, q, qr};
  }
  return std::nullopt;
}

void SknoSimulator::run_checks(AgentId idx) {
  Agent& a = agents_[idx];
  bool acted = true;
  while (acted) {
    acted = false;
    if (a.pending) {
      // Preliminary check: the agent's own state-run came back — cancel
      // the transaction and withdraw the tokens.
      if (try_consume(a, Token::Kind::StateRun, a.sim_state)) {
        a.pending = false;
        ++stats_.cancels;
        acted = true;
        continue;
      }
      // Core (pending): a complete change run ⟨(own, qr), *⟩ completes the
      // starter half of the simulated interaction.
      if (auto c = try_consume(a, Token::Kind::ChangeRun, a.sim_state)) {
        const State before = a.sim_state;
        const State after = protocol().delta(before, c->qr).starter;
        emit(idx, before, after, Half::Starter, c->primary_run, c->qr);
        a.sim_state = after;
        a.pending = false;
        ++stats_.change_runs_consumed;
        acted = true;
        continue;
      }
    } else {
      // Core (available): a complete state run ⟨q, *⟩ simulates the
      // reactor half against a hypothetical partner in state q.
      if (auto c = try_consume(a, Token::Kind::StateRun, std::nullopt)) {
        const State before = a.sim_state;
        const State after = protocol().delta(c->q, before).reactor;
        const std::uint64_t change_run = next_run_++;
        emit(idx, before, after, Half::Reactor, change_run, c->q);
        a.sim_state = after;
        for (std::uint32_t i = 1; i <= o_ + 1; ++i)
          a.sending.push_back(
              Token{Token::Kind::ChangeRun, c->q, before, i, change_run});
        ++stats_.state_runs_consumed;
        note_queue_size(a);
        acted = true;
        continue;
      }
    }
  }
}

void SknoSimulator::do_interact(const Interaction& ia) {
  if (!ia.omissive) {
    const auto tok = apply_g(ia.starter);
    receive(ia.reactor, tok);
    return;
  }
  switch (model()) {
    case Model::T3: {
      // The I3 -> T3 embedding (Fig. 1 arrow): the wrapper only uses the
      // starter-to-reactor direction, with fs(s,r) := g(s) and o := g. A
      // starter-side omission therefore produces the outcome
      // (o(as), fr(as,ar)) = (g(as), f(as,ar)) — indistinguishable from a
      // fault-free delivery; only a reactor-side (or both-sides) omission
      // actually loses the token, and the reactor detects it via h.
      if (ia.side == OmitSide::Starter) {
        const auto tok = apply_g(ia.starter);
        receive(ia.reactor, tok);
        break;
      }
      [[fallthrough]];
    }
    case Model::I3: {
      // Relation {(g,f),(g,h)}: the starter pops blindly (the in-flight
      // token dies), the reactor detects and mints a joker.
      const auto tok = apply_g(ia.starter);
      if (tok) ++stats_.tokens_killed;
      mint_joker(ia.reactor);
      run_checks(ia.reactor);
      break;
    }
    case Model::I4: {
      // Relation {(g,f),(o,g)}: the starter detects — o keeps the queue
      // intact and mints the compensating joker; the reactor cannot
      // distinguish the event from acting as a starter and applies g,
      // popping its own front token into the void.
      mint_joker(ia.starter);
      run_checks(ia.starter);
      const auto tok = apply_g(ia.reactor);
      if (tok) ++stats_.tokens_killed;
      break;
    }
    case Model::I1: {
      // No detection anywhere: the in-flight token silently dies and the
      // reactor does not even notice the interaction. This variant is NOT
      // a correct simulator — it is the natural candidate that the
      // Theorem 3.2 experiments kill with a single omission.
      const auto tok = apply_g(ia.starter);
      if (tok) ++stats_.tokens_killed;
      break;
    }
    case Model::I2: {
      // Proximity but no omission detection: both parties apply g, so two
      // tokens die per omission and nobody can mint a compensating joker.
      const auto s_tok = apply_g(ia.starter);
      if (s_tok) ++stats_.tokens_killed;
      const auto r_tok = apply_g(ia.reactor);
      if (r_tok) ++stats_.tokens_killed;
      break;
    }
    default:
      throw std::logic_error("SknoSimulator: omission in non-omissive model");
  }
}

}  // namespace ppfs

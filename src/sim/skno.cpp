#include "sim/skno.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ppfs {

namespace {
constexpr std::size_t bits_for_count(std::size_t c) {
  std::size_t b = 0;
  while (c > 0) {
    ++b;
    c >>= 1;
  }
  return b == 0 ? 1 : b;
}
}  // namespace

void validate_skno_model(Model model, std::size_t omission_bound) {
  if (model != Model::I3 && model != Model::I4 && model != Model::IT &&
      model != Model::T3 && model != Model::I1 && model != Model::I2)
    throw std::invalid_argument(
        "SknoSimulator: supported models are I3, I4 (omissive), IT (o = 0), "
        "T3 (via the I3 -> T3 embedding), and I1/I2 (as the Theorem 3.2 "
        "candidate only)");
  if (model == Model::IT && omission_bound != 0)
    throw std::invalid_argument("SknoSimulator: IT is non-omissive, use o = 0");
}

SknoCore::SknoCore(const Protocol* protocol, Model model,
                   std::size_t omission_bound, Options options,
                   bool track_provenance)
    : protocol_(protocol),
      model_(model),
      o_(omission_bound),
      options_(options),
      track_provenance_(track_provenance) {
  validate_skno_model(model, omission_bound);
}

void SknoCore::note_queue_size(const Agent& a) {
  stats_.max_queue = std::max(stats_.max_queue, a.sending.size());
}

std::optional<SknoCore::Token> SknoCore::apply_g(Agent& a, Footprint& fp) {
  if (!a.pending && a.sending.empty()) {
    // available + empty queue: open a transaction for the current state.
    a.pending = true;
    const std::uint64_t run = track_provenance_ ? next_run_++ : 0;
    for (std::uint32_t i = 1; i <= o_ + 1; ++i)
      a.sending.push_back(Token{Token::Kind::StateRun, a.sim_state, kNoState, i, run});
    ++stats_.runs_generated;
    note_queue_size(a);
    fp.kind = Footprint::Kind::Refilled;  // the pop below always follows
  }
  if (a.sending.empty()) return std::nullopt;
  Token t = a.sending.front();
  a.sending.pop_front();
  if (fp.kind == Footprint::Kind::Unchanged)
    fp.kind = Footprint::Kind::PoppedFront;
  else if (fp.kind != Footprint::Kind::Refilled)
    fp.kind = Footprint::Kind::Complex;
  return t;
}

void SknoCore::mint_joker(Agent& a, Footprint& fp) {
  const Token joker{Token::Kind::Joker, kNoState, kNoState, 0, 0};
  a.sending.push_back(joker);
  ++stats_.jokers_minted;
  note_queue_size(a);
  if (fp.kind == Footprint::Kind::Unchanged) {
    fp.kind = Footprint::Kind::Appended;
    fp.appended = joker;
  } else {
    fp.kind = Footprint::Kind::Complex;
  }
}

void SknoCore::receive(Agent& a, const std::optional<Token>& tok, Emits* emits,
                       Footprint& fp) {
  if (tok) {
    // Joker-debt repayment: a late copy of a token we substituted with a
    // joker is destroyed and the joker regenerated (token conservation).
    auto debt = options_.joker_debt
                    ? std::find_if(
                          a.joker_debt.begin(), a.joker_debt.end(),
                          [&](const Token& d) { return d.same_value(*tok); })
                    : a.joker_debt.end();
    if (debt != a.joker_debt.end()) {
      a.joker_debt.erase(debt);
      a.sending.push_back(Token{Token::Kind::Joker, kNoState, kNoState, 0, 0});
      ++stats_.debt_conversions;
      fp.kind = Footprint::Kind::Complex;  // debt entry gone + joker pushed
    } else {
      a.sending.push_back(*tok);
      if (fp.kind == Footprint::Kind::Unchanged) {
        fp.kind = Footprint::Kind::Appended;
        fp.appended = *tok;
      } else {
        fp.kind = Footprint::Kind::Complex;
      }
    }
    note_queue_size(a);
  }
  run_checks(a, emits, fp);
}

std::optional<SknoCore::Consumed> SknoCore::try_consume(
    Agent& a, Token::Kind kind, std::optional<State> q_filter) {
  // Candidate payloads in queue order (deterministic).
  auto& candidates = scratch_candidates_;
  candidates.clear();
  for (const auto& t : a.sending) {
    if (t.kind != kind) continue;
    if (q_filter && t.q != *q_filter) continue;
    const std::pair<State, State> payload{t.q, t.qr};
    if (std::find(candidates.begin(), candidates.end(), payload) == candidates.end())
      candidates.push_back(payload);
  }
  std::size_t jokers_avail = 0;
  for (const auto& t : a.sending)
    if (t.kind == Token::Kind::Joker) ++jokers_avail;

  for (const auto& [q, qr] : candidates) {
    // Tokens of identical value are interchangeable, so which instances we
    // remove is a free choice — but it must be a *value-level* choice, or
    // the count-space rule source (whose states carry no run ids) would
    // realize a different chain than the step-wise simulator. Canonical
    // rule: consume the FIRST queue occurrence of each index 1..o+1, fill
    // the rest from jokers. Provenance (verification only) is the run id
    // of the token filling the smallest index.
    // Indices 1..o+1 fit the stack buffer for the token-packable range
    // (o <= 62); the step-wise face accepts larger bounds, which fall
    // back to the reused heap scratch.
    std::ptrdiff_t pos_small[64];
    std::ptrdiff_t* pos = pos_small;
    if (o_ + 2 > 64) {
      scratch_pos_.resize(o_ + 2);
      pos = scratch_pos_.data();
    }
    std::fill(pos, pos + o_ + 2, -1);
    std::size_t have = 0;
    for (std::size_t i = 0; i < a.sending.size(); ++i) {
      const Token& t = a.sending[i];
      if (t.kind != kind || t.q != q || t.qr != qr) continue;
      if (t.index < 1 || t.index > o_ + 1) continue;
      if (pos[t.index] < 0) {
        pos[t.index] = static_cast<std::ptrdiff_t>(i);
        ++have;
      }
    }
    if (have == 0) continue;  // at least one real token required
    const std::size_t missing = (o_ + 1) - have;
    if (missing > jokers_avail) continue;

    // Consume: remove the chosen real tokens and `missing` jokers; record
    // the substituted values in the joker-debt list.
    auto& remove = scratch_remove_;
    remove.assign(a.sending.size(), 0);
    std::uint64_t primary = 0;
    bool primary_set = false;
    for (std::uint32_t i = 1; i <= o_ + 1; ++i) {
      if (pos[i] >= 0) {
        remove[static_cast<std::size_t>(pos[i])] = 1;
        if (!primary_set) {
          primary = a.sending[static_cast<std::size_t>(pos[i])].run;
          primary_set = true;
        }
      } else {
        a.joker_debt.push_back(Token{kind, q, qr, i, 0});
      }
    }
    std::size_t jokers_needed = missing;
    for (std::size_t i = 0; i < a.sending.size() && jokers_needed > 0; ++i) {
      if (!remove[i] && a.sending[i].kind == Token::Kind::Joker) {
        remove[i] = 1;
        --jokers_needed;
      }
    }
    stats_.jokers_used += missing;

    auto& rest = scratch_rest_;
    rest.clear();
    for (std::size_t i = 0; i < a.sending.size(); ++i)
      if (!remove[i]) rest.push_back(a.sending[i]);
    a.sending.assign(rest.begin(), rest.end());

    return Consumed{primary, q, qr};
  }
  return std::nullopt;
}

void SknoCore::run_checks(Agent& a, Emits* emits, Footprint& fp) {
  bool acted = true;
  bool any = false;
  while (acted) {
    acted = false;
    if (a.pending) {
      // Preliminary check: the agent's own state-run came back — cancel
      // the transaction and withdraw the tokens.
      if (try_consume(a, Token::Kind::StateRun, a.sim_state)) {
        a.pending = false;
        ++stats_.cancels;
        acted = any = true;
        continue;
      }
      // Core (pending): a complete change run ⟨(own, qr), *⟩ completes the
      // starter half of the simulated interaction.
      if (auto c = try_consume(a, Token::Kind::ChangeRun, a.sim_state)) {
        const State before = a.sim_state;
        const State after = protocol_->delta(before, c->qr).starter;
        if (emits != nullptr)
          emits->push_back(Emit{before, after, Half::Starter, c->primary_run, c->qr});
        a.sim_state = after;
        a.pending = false;
        ++stats_.change_runs_consumed;
        acted = any = true;
        continue;
      }
    } else {
      // Core (available): a complete state run ⟨q, *⟩ simulates the
      // reactor half against a hypothetical partner in state q.
      if (auto c = try_consume(a, Token::Kind::StateRun, std::nullopt)) {
        const State before = a.sim_state;
        const State after = protocol_->delta(c->q, before).reactor;
        const std::uint64_t change_run = track_provenance_ ? next_run_++ : 0;
        if (emits != nullptr)
          emits->push_back(Emit{before, after, Half::Reactor, change_run, c->q});
        a.sim_state = after;
        for (std::uint32_t i = 1; i <= o_ + 1; ++i)
          a.sending.push_back(
              Token{Token::Kind::ChangeRun, c->q, before, i, change_run});
        ++stats_.state_runs_consumed;
        note_queue_size(a);
        acted = any = true;
        continue;
      }
    }
  }
  // Any check consuming a run rewrites the queue (and possibly the debt
  // list and sim_state) wholesale: the successor is built by full
  // re-serialization, not by patching.
  if (any) fp.kind = Footprint::Kind::Complex;
}

void SknoCore::step(Agent& starter, Agent& reactor, bool omissive, OmitSide side,
                    Emits* starter_emits, Emits* reactor_emits) {
  footprint_ = StepFootprint{};
  Footprint& sfp = footprint_.starter;
  Footprint& rfp = footprint_.reactor;
  if (!omissive) {
    const auto tok = apply_g(starter, sfp);
    receive(reactor, tok, reactor_emits, rfp);
    return;
  }
  switch (model_) {
    case Model::T3: {
      // The I3 -> T3 embedding (Fig. 1 arrow): the wrapper only uses the
      // starter-to-reactor direction, with fs(s,r) := g(s) and o := g. A
      // starter-side omission therefore produces the outcome
      // (o(as), fr(as,ar)) = (g(as), f(as,ar)) — indistinguishable from a
      // fault-free delivery; only a reactor-side (or both-sides) omission
      // actually loses the token, and the reactor detects it via h.
      if (side == OmitSide::Starter) {
        const auto tok = apply_g(starter, sfp);
        receive(reactor, tok, reactor_emits, rfp);
        break;
      }
      [[fallthrough]];
    }
    case Model::I3: {
      // Relation {(g,f),(g,h)}: the starter pops blindly (the in-flight
      // token dies), the reactor detects and mints a joker.
      const auto tok = apply_g(starter, sfp);
      if (tok) ++stats_.tokens_killed;
      mint_joker(reactor, rfp);
      run_checks(reactor, reactor_emits, rfp);
      break;
    }
    case Model::I4: {
      // Relation {(g,f),(o,g)}: the starter detects — o keeps the queue
      // intact and mints the compensating joker; the reactor cannot
      // distinguish the event from acting as a starter and applies g,
      // popping its own front token into the void.
      mint_joker(starter, sfp);
      run_checks(starter, starter_emits, sfp);
      const auto tok = apply_g(reactor, rfp);
      if (tok) ++stats_.tokens_killed;
      break;
    }
    case Model::I1: {
      // No detection anywhere: the in-flight token silently dies and the
      // reactor does not even notice the interaction. This variant is NOT
      // a correct simulator — it is the natural candidate that the
      // Theorem 3.2 experiments kill with a single omission.
      const auto tok = apply_g(starter, sfp);
      if (tok) ++stats_.tokens_killed;
      break;
    }
    case Model::I2: {
      // Proximity but no omission detection: both parties apply g, so two
      // tokens die per omission and nobody can mint a compensating joker.
      const auto s_tok = apply_g(starter, sfp);
      if (s_tok) ++stats_.tokens_killed;
      const auto r_tok = apply_g(reactor, rfp);
      if (r_tok) ++stats_.tokens_killed;
      break;
    }
    default:
      throw std::logic_error("SknoCore: omission in non-omissive model");
  }
}

SknoSimulator::SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                             std::size_t omission_bound, std::vector<State> initial)
    : SknoSimulator(std::move(protocol), model, omission_bound, std::move(initial),
                    Options{}) {}

SknoSimulator::SknoSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                             std::size_t omission_bound, std::vector<State> initial,
                             Options options)
    : Simulator(std::move(protocol), model, std::move(initial)),
      core_(&this->protocol(), model, omission_bound, options,
            /*track_provenance=*/true) {
  agents_.resize(num_agents());
  for (AgentId a = 0; a < num_agents(); ++a)
    agents_[a].sim_state = initial_projection()[a];
}

std::unique_ptr<Simulator> SknoSimulator::clone() const {
  return std::make_unique<SknoSimulator>(*this);
}

State SknoSimulator::simulated_state(AgentId a) const {
  return agents_.at(a).sim_state;
}

std::string SknoSimulator::describe() const {
  return "SKnO(" + model_name(model()) +
         ", o=" + std::to_string(core_.omission_bound()) + ")";
}

std::size_t SknoSimulator::total_live_tokens() const {
  std::size_t t = 0;
  for (const auto& a : agents_) t += a.sending.size();
  return t;
}

std::size_t SknoSimulator::live_jokers() const {
  std::size_t t = 0;
  for (const auto& a : agents_)
    for (const auto& tok : a.sending)
      if (tok.kind == Token::Kind::Joker) ++t;
  return t;
}

std::size_t SknoSimulator::memory_bits(AgentId idx) const {
  const SknoCore::Agent& a = agents_.at(idx);
  // Counting representation: a counter per distinct token value held, plus
  // the value tag itself (state ids + index), plus the simulator scalars.
  std::map<std::tuple<std::uint8_t, State, State, std::uint32_t>, std::size_t> counts;
  for (const auto& t : a.sending)
    ++counts[{static_cast<std::uint8_t>(t.kind), t.q, t.qr, t.index}];
  for (const auto& t : a.joker_debt)
    ++counts[{static_cast<std::uint8_t>(t.kind), t.q, t.qr, t.index}];
  const std::size_t state_bits = bits_for_count(protocol().num_states());
  const std::size_t tag_bits =
      2 + 2 * state_bits + bits_for_count(core_.omission_bound() + 1);
  std::size_t bits = state_bits + 1;  // sim_state + pending flag
  for (const auto& [value, c] : counts) bits += tag_bits + bits_for_count(c);
  return bits;
}

void SknoSimulator::do_interact(const Interaction& ia) {
  SknoCore::Emits starter_emits;
  SknoCore::Emits reactor_emits;
  core_.step(agents_[ia.starter], agents_[ia.reactor], ia.omissive, ia.side,
             &starter_emits, &reactor_emits);
  for (const auto& e : starter_emits)
    emit(ia.starter, e.before, e.after, e.half, e.key, e.partner);
  for (const auto& e : reactor_emits)
    emit(ia.reactor, e.before, e.after, e.half, e.key, e.partner);
}

}  // namespace ppfs

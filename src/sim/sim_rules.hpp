// Count-space rule sources for the paper's simulators (§4): each simulator
// is exposed as a DynamicRuleSource (core/dynamic_rules.hpp) — a pure
// (wrapper_s, wrapper_r, class) -> outcome transition function over an
// interned, lazily-discovered state universe — so the sparse batch engine
// (engine/batch/sim_batch_system.hpp) executes the *simulator* in count
// space exactly like any protocol. The value-level cores are shared with
// the step-wise Simulator classes (SknoCore::step, SidCore::react_value,
// NamingSimulator::naming_step), so both execution paths realize the
// identical chain; only harness-side provenance (run/txn ids, SimEvents)
// is step-wise-only.
//
// Canonical encodings (all fields little-endian):
//   * naive    — no wrapper state: the simulated state IS the wrapper
//                state, so the source is a plain MatrixRuleSource over the
//                compiled RuleMatrix (identity o/h = the naive faulty
//                outcomes).
//   * SID      — [active u8][id u32][sim_state u32][status u8]
//                [other_id u32][other_state u32]; the lock txn id is
//                excluded (write-only provenance).
//   * naming   — [my_id u32][max_id u32] followed by the SID fields.
//   * SKnO     — [sim_state u16][pending u8][nq u16][queue tokens in FIFO
//                order][nd u16][debt tokens sorted]; each token packs into
//                a u32 (kind 2 | q 12 | qr 12 | index 6, kNoState -> 0xfff),
//                run ids excluded. Requires num_states <= 4094 and
//                o <= 62.
//
// SID and naming are reactor-side only: the starter's wrapper state never
// changes and omissive interactions deliver nothing (omission_transparent).
// Their per-agent unique ids make wrapper states non-exchangeable, so the
// universe holds >= n live states — correct at any n, but count space pays
// off mainly for SKnO (anonymous tokens, states collapse) and naive
// (closed universe).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dynamic_rules.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "sim/simulator.hpp"

namespace ppfs {

// Reactor-side-only shared base: starter untouched, omissions transparent,
// reactor successors delta-patched from the pre-state bytes (the SidCore
// Action footprint names the changed range) and cached per ordered pair in
// a bounded, generation-validated OutcomeCache (no releases here — the
// wrapper population per agent id is closed — so validation only guards
// hypothetical recycling subclasses).
class SidRuleSource : public DynamicRuleSource {
 public:
  // Ids 0..n-1, matching SidSimulator's default id assignment.
  SidRuleSource(std::shared_ptr<const Protocol> protocol, Model model,
                std::size_t n, SidCore::Options options = {});

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Model model() const override { return model_; }
  [[nodiscard]] const Protocol& protocol() const override { return *protocol_; }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const override {
    return protocol_;
  }
  [[nodiscard]] std::size_t universe_size() const override {
    return universe_.capacity();
  }
  [[nodiscard]] std::vector<State> intern_initial(
      const std::vector<State>& sim) override;
  [[nodiscard]] StatePair outcome(InteractionClass c, State s,
                                  State r) override;
  [[nodiscard]] State project(State s) const override;
  [[nodiscard]] bool omission_transparent() const override { return true; }
  // The internal reactor-half cache below covers the only non-trivial
  // outcome half (the starter half is the identity): the engine-level
  // outcome cache would only duplicate it.
  [[nodiscard]] bool self_caching() const override { return true; }
  // A SID (and naming) value step is a handful of struct-field updates; a
  // count-space cached fire (probe + patched intern + count moves) costs
  // ~50 of them (measured on naming-gap at n = 4096: ~0.58M fires/s in
  // count space vs ~29M value steps/s native), so count space only pays
  // off in >= ~98% no-op windows where leaping carries the load. (Covers
  // NamingRuleSource too.)
  [[nodiscard]] double fire_cost_ratio() const override { return 0.02; }

  // Successor construction strategy: with patches on (the default), react()
  // turns the SidCore Action footprint into one ByteEdit against the
  // pre-state bytes (Pairing/Rollback rewrite [status][other_id]
  // [other_state], Lock/Complete extend left to [sim_state]) interned via
  // StateUniverse::intern_patched. Off = always decode + react_value +
  // re-serialize — the reference path the encode/patch/decode fuzz suite
  // compares against.
  void set_use_patches(bool on) noexcept { use_patches_ = on; }
  [[nodiscard]] bool use_patches() const noexcept { return use_patches_; }

  // The canonical bytes of a live interned id (diagnostics and the
  // encode/patch/decode fuzz suite, which pins patch-built successors
  // byte-identical to full re-serialization).
  [[nodiscard]] const std::string& state_encoding(State s) const {
    return universe_.encoding(s);
  }

  // Bound (entries) for the reactor-half cache; make_sim_rule_source
  // scales it with the population.
  void set_internal_cache_capacity(std::size_t capacity) {
    react_cache_.set_capacity(capacity);
  }

  // Diagnostics for the (starter id, reactor id) reactor-half cache.
  [[nodiscard]] const OutcomeCache::Stats& react_cache_stats() const noexcept {
    return react_cache_.stats();
  }

  // --- agent-space bridge (engine=auto) ------------------------------------
  // Decode a live wrapper id into its per-agent record / intern a record
  // back: the auto engine's representation switch, kept here so the byte
  // layout stays private to the source.
  [[nodiscard]] SidAgent decode_wrapper(State s) const {
    return decode_agent(s);
  }
  [[nodiscard]] State intern_wrapper(const SidAgent& a) {
    return intern_agent(a);
  }
  [[nodiscard]] const SidCore::Options& sid_options() const noexcept {
    return options_;
  }
  // The population size the source was built for (SID id range / naming
  // activation threshold).
  [[nodiscard]] std::size_t population() const noexcept { return n_; }

  void export_metrics(obs::MetricRegistry& reg) const override {
    DynamicRuleSource::export_metrics(reg);
    const OutcomeCache::Stats& s = react_cache_.stats();
    reg.counter("cache.react.hits").set(s.hits);
    reg.counter("cache.react.misses").set(s.misses);
    reg.counter("cache.react.evictions").set(s.evictions);
    reg.counter("cache.react.stale_drops").set(s.stale_drops);
  }

  // Runtime-contract audit: universe table consistency plus generation
  // validity of the engine-level and reactor-half caches against its
  // liveness. The id population here is closed (no releases), so the
  // cache audits guard the hypothetical recycling subclasses the
  // generation machinery exists for. Covers NamingRuleSource too.
  void audit_invariants() const override {
    universe_.audit_invariants("SidRuleSource.universe");
    const auto live = [this](State s) { return universe_.is_live(s); };
    audit_outcome_cache("SidRuleSource.outcome_cache", live);
    react_cache_.audit_live_outputs("SidRuleSource.react_cache", live);
  }

  // Checkpoint payload: the interned universe only. Config (protocol,
  // model, n, options, patch flag) is rebuilt by the restoring process;
  // the reactor-half cache restarts cold (cache-invisibility contract).
  // Covers NamingRuleSource too — the naming layer adds no mutable state.
  [[nodiscard]] bool checkpointable() const override { return true; }

 protected:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  void wire_metrics(obs::MetricRegistry* reg) override {
    universe_.set_metrics(reg);
  }

  void do_save_source(bin::Writer& w) const override {
    universe_.save_state(w);
  }
  void do_restore_source(bin::Reader& r) override {
    universe_.restore_state(r);
    react_cache_.clear();
  }

  // The reactor's value-level step; overridden by the naming layer.
  [[nodiscard]] virtual State react(State reactor, State starter_snap);

  [[nodiscard]] State intern_agent(const SidAgent& a);
  [[nodiscard]] SidAgent decode_agent(State s) const;

  std::shared_ptr<const Protocol> protocol_;
  Model model_;
  std::size_t n_;
  SidCore::Options options_;
  StateUniverse universe_;
  bool use_patches_ = true;
  // ((s << 31) | r) + 1 -> reactor post-state (payload duplicated into
  // both halves, like SKnO's receive cache); the starter never changes.
  OutcomeCache react_cache_;
};

// Nn + SID composition (§4.3): the naming layer rides in front of the SID
// fields; activation fires when max_id reaches the known n.
class NamingRuleSource final : public SidRuleSource {
 public:
  NamingRuleSource(std::shared_ptr<const Protocol> protocol, Model model,
                   std::size_t n, SidCore::Options options = {});

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::vector<State> intern_initial(
      const std::vector<State>& sim) override;
  [[nodiscard]] State project(State s) const override;

  // The full two-layer record of one agent (Nn head + SID body).
  struct Full {
    NamingSimulator::NamingState naming;
    SidAgent sid;
  };

  // Agent-space bridge (engine=auto), layered analogue of the SID one.
  [[nodiscard]] Full decode_wrapper_full(State s) const {
    return decode_full(s);
  }
  [[nodiscard]] State intern_wrapper_full(const Full& f) {
    return intern_full(f);
  }

 protected:
  [[nodiscard]] State react(State reactor, State starter_snap) override;

 private:
  [[nodiscard]] State intern_full(const Full& f);
  [[nodiscard]] Full decode_full(State s) const;
};

// SKnO (§4.1) in count space: open universe (zero-count states are
// released and ids recycled), one-way-factored no-op structure (the Real
// class is a no-op iff the starter is pending with an empty queue).
class SknoRuleSource final : public DynamicRuleSource {
 public:
  SknoRuleSource(std::shared_ptr<const Protocol> protocol, Model model,
                 std::size_t omission_bound, SknoCore::Options options = {});

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] Model model() const override { return core_.model(); }
  [[nodiscard]] const Protocol& protocol() const override { return *protocol_; }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const override {
    return protocol_;
  }
  [[nodiscard]] std::size_t universe_size() const override {
    return universe_.capacity();
  }
  [[nodiscard]] std::vector<State> intern_initial(
      const std::vector<State>& sim) override;
  [[nodiscard]] StatePair outcome(InteractionClass c, State s,
                                  State r) override;
  [[nodiscard]] State project(State s) const override;

  [[nodiscard]] bool open_universe() const override { return true; }
  [[nodiscard]] bool real_noop_factors() const override { return true; }
  [[nodiscard]] bool self_caching() const override { return use_patches_; }
  // An SKnO value step runs the full token-queue machinery (dequeue,
  // receive, debt bookkeeping) — measured ~10x the cost of a cached
  // delta-fire on the o=8 acceptance window — so fire-heavy windows do
  // NOT argue against count space here.
  [[nodiscard]] double fire_cost_ratio() const override { return 8.0; }
  [[nodiscard]] bool starter_silent(State s) override;

  [[nodiscard]] const SknoCore::Stats& core_stats() const noexcept {
    return core_.stats();
  }
  [[nodiscard]] std::size_t live_states() const noexcept {
    return universe_.live();
  }
  // The canonical bytes of a live interned id (diagnostics and the
  // encode/patch/decode fuzz suite, which pins patch-built successors
  // byte-identical to full re-serialization).
  [[nodiscard]] const std::string& state_encoding(State s) const {
    return universe_.encoding(s);
  }

  // Successor construction strategy: with patches on (the default), each
  // outcome() decomposes into the decode-free starter routine g (a header
  // peek plus ByteEdits against the pre-state bytes, interned via
  // StateUniverse::intern_patched) and the reactor receive half, cached
  // on (transmitted token, reactor id) — so neither a repeated pair nor a
  // fresh pair whose token/reactor combination was seen before ever
  // re-serializes the whole [sim][pending][queue][debt] record. Complex
  // receive steps (run consumption, debt traffic) fall back to full
  // re-serialization. Off = always decode + SknoCore::step +
  // re-serialize — the reference path the encode/patch/decode fuzz suite
  // compares against. NOTE: with patches on, core_stats() no longer sees
  // the steps served from patches/caches (they bypass the core).
  void set_use_patches(bool on) noexcept { use_patches_ = on; }
  [[nodiscard]] bool use_patches() const noexcept { return use_patches_; }

  // Diagnostics for the (token, reactor) receive cache.
  [[nodiscard]] const OutcomeCache::Stats& receive_cache_stats() const noexcept {
    return recv_cache_.stats();
  }

  // --- agent-space bridge (engine=auto) ------------------------------------
  // The value core (model/omission bound/options for a sibling agent-space
  // core) and the decode/intern pair the representation switch rides on.
  [[nodiscard]] const SknoCore& core() const noexcept { return core_; }
  void decode_wrapper_into(State s, SknoCore::Agent& out) const {
    decode_agent_into(s, out);
  }
  [[nodiscard]] State intern_wrapper(const SknoCore::Agent& a) {
    return intern_agent(a);
  }

  // Bound (entries) for the source-internal receive and g-successor
  // caches; make_sim_rule_source scales it with the population.
  void set_internal_cache_capacity(std::size_t capacity) {
    recv_cache_.set_capacity(capacity);
    g_cache_.set_capacity(capacity);
  }

  void export_metrics(obs::MetricRegistry& reg) const override {
    DynamicRuleSource::export_metrics(reg);
    const OutcomeCache::Stats& rs = recv_cache_.stats();
    reg.counter("cache.recv.hits").set(rs.hits);
    reg.counter("cache.recv.misses").set(rs.misses);
    reg.counter("cache.recv.evictions").set(rs.evictions);
    reg.counter("cache.recv.stale_drops").set(rs.stale_drops);
    const OutcomeCache::Stats& gs = g_cache_.stats();
    reg.counter("cache.g.hits").set(gs.hits);
    reg.counter("cache.g.misses").set(gs.misses);
    reg.counter("cache.g.evictions").set(gs.evictions);
    reg.counter("cache.g.stale_drops").set(gs.stale_drops);
  }

  // Runtime-contract audit: universe table consistency (ids here really
  // do recycle) plus generation validity of every cache layer against
  // its liveness — a do_release that skipped an invalidate leaves a
  // valid-looking entry behind, ready to resurrect a recycled id; this
  // is the auditor that catches it.
  void audit_invariants() const override {
    universe_.audit_invariants("SknoRuleSource.universe");
    const auto live = [this](State s) { return universe_.is_live(s); };
    audit_outcome_cache("SknoRuleSource.outcome_cache", live);
    recv_cache_.audit_live_outputs("SknoRuleSource.recv_cache", live);
    g_cache_.audit_live_outputs("SknoRuleSource.g_cache", live);
  }

  // Checkpoint payload: the interned universe (free-list order included —
  // ids recycle here). The receive/g caches and the g token memo restart
  // cold: every successor a cold miss interns is already live in the
  // restored universe, so re-derivation cannot perturb id assignment.
  [[nodiscard]] bool checkpointable() const override { return true; }

 protected:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  void wire_metrics(obs::MetricRegistry* reg) override {
    universe_.set_metrics(reg);
  }

  void do_release(State s) override {
    recv_cache_.invalidate(s);
    g_cache_.invalidate(s);
    universe_.release(s);
  }

  void do_save_source(bin::Writer& w) const override {
    universe_.save_state(w);
  }
  void do_restore_source(bin::Reader& r) override {
    universe_.restore_state(r);
    recv_cache_.clear();
    g_cache_.clear();
    g_tok_.clear();  // memoized in tandem with g_cache_; rebuilt on demand
  }

 private:
  void encode_agent_into(const SknoCore::Agent& a, std::string& out) const;
  [[nodiscard]] std::string encode_agent(const SknoCore::Agent& a) const;
  [[nodiscard]] State intern_agent(const SknoCore::Agent& a);
  [[nodiscard]] State intern_successor(State base, const SknoCore::Agent& post,
                                       const SknoCore::Footprint& fp);
  void decode_agent_into(State s, SknoCore::Agent& out) const;
  [[nodiscard]] SknoCore::Agent decode_agent(State s) const;

  // The two byte-patch successor shapes of the starter routine g, shared
  // by intern_successor and starter_after_g (the byte layout lives in
  // exactly one place): remove the queue's front token (`nq` = pre-pop
  // length), and refill an available empty-queue agent with its own-state
  // run's indices 2..o+1.
  [[nodiscard]] State intern_pop_front(State base, std::uint16_t nq);
  [[nodiscard]] State intern_refilled(State base, State sim);
  // Decode-free starter routine g on the interned encoding: silent states
  // return themselves (`transmits` false); otherwise the successor is a
  // PoppedFront/Refilled patch and `tok` is the transmitted token.
  [[nodiscard]] State starter_after_g(State s, SknoCore::Token& tok,
                                      bool& transmits);
  // Same, memoized per state id (g depends on nothing else), so a hot
  // starter pays one table probe instead of a patch + intern.
  [[nodiscard]] State starter_after_g_cached(State s, SknoCore::Token& tok,
                                             bool& transmits);
  // Reactor receive half, cached on (token value, reactor id).
  [[nodiscard]] State receive_cached(State r, const SknoCore::Token& tok);
  // Reference path: decode both sides, run SknoCore::step, re-serialize.
  [[nodiscard]] StatePair outcome_by_step(InteractionClass c, State s, State r);

  std::shared_ptr<const Protocol> protocol_;
  SknoCore core_;  // track_provenance = false: the canonical value chain
  StateUniverse universe_;
  bool use_patches_ = true;
  OutcomeCache recv_cache_;  // (token, reactor id) -> reactor successor
  OutcomeCache g_cache_;     // starter id -> g successor
  std::vector<std::uint32_t> g_tok_;  // packed transmitted token per id
  // Hot-path scratch (reused across outcome() calls): per-call deque and
  // string construction was measured to dominate the cache-miss cost.
  SknoCore::Agent scratch_starter_, scratch_reactor_;
  mutable std::string enc_scratch_;
  mutable std::vector<std::uint32_t> debt_scratch_;
};

// --- construction glue (dispatch + CLI) -------------------------------------

// A parsed --simulate specification: "naive" | "sid" | "naming" |
// "skno[:o=K]" (omission bound K, default 0).
struct SimSpec {
  std::string kind = "skno";
  std::size_t omission_bound = 0;
};

[[nodiscard]] SimSpec parse_sim_spec(const std::string& spec);

// The model each simulator is designed for, used when the caller does not
// pick one: naive -> TW, skno -> I3, sid/naming -> IO (the weakest model).
[[nodiscard]] Model default_sim_model(const SimSpec& spec);

// Count-space rule source for the spec (n = population size; needed by
// the per-agent id assignment of SID and the activation threshold of
// naming).
[[nodiscard]] std::unique_ptr<DynamicRuleSource> make_sim_rule_source(
    const SimSpec& spec, Model model, std::shared_ptr<const Protocol> protocol,
    std::size_t n);

// Step-wise counterpart over the same spec (the event/matching-verifier
// facade and the native engine path).
[[nodiscard]] std::unique_ptr<Simulator> make_spec_simulator(
    const SimSpec& spec, Model model, std::shared_ptr<const Protocol> protocol,
    std::vector<State> initial);

}  // namespace ppfs

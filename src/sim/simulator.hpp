// Two-way protocol simulators (§2.4 of the paper).
//
// A simulator S(P) is a wrapper protocol whose agents carry the simulated
// state of P plus simulator bookkeeping, and which — driven by physical
// interactions under some weak/omissive model — produces simulated
// two-way transitions of P. Each simulated state update is recorded as a
// SimEvent; the verifier (verify/matching.hpp) then builds the perfect
// matching of Definition 3 and checks the derived execution of
// Definition 4.
//
// Matching keys attached to events are harness-side provenance (ground
// truth for verification); the protocol logic itself never reads them, so
// they do not strengthen the communication model.
//
// Count-space execution. Each simulator's transition logic is factored
// into a pure value-level core, and sim/sim_rules.hpp exposes it as a
// DynamicRuleSource (core/dynamic_rules.hpp): the full wrapper state of an
// agent — simulated state plus simulator bookkeeping — is serialized into
// a canonical byte encoding and interned into a growing state universe, so
// the count-space batch engine (engine/batch/sim_batch_system.hpp) can run
// the simulator as "just another protocol" over interned states. The
// encodings (all little-endian fixed-width fields, documented per
// simulator in sim_rules.hpp) deliberately EXCLUDE harness-side provenance
// — SKnO token run ids, SID lock transaction ids — because provenance
// never influences value-level behavior; that exclusion is what makes
// agents with equal protocol-visible state collapse onto one interned id.
// The step-wise Simulator classes below remain the facade that carries
// provenance and SimEvents for the event/matching verifier; the
// count-space path trades those away for million-agent populations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

struct SimEvent {
  std::uint64_t seq;          // global event order within the simulator
  std::uint64_t interaction;  // physical interaction index that caused it
  AgentId agent;
  State before;
  State after;
  Half half;                  // which half of delta this update applied
  std::uint64_t key;          // matching hint (transaction / run id)
  State partner;              // simulated partner state used in delta
};

class Simulator {
 public:
  Simulator(std::shared_ptr<const Protocol> protocol, Model model,
            std::vector<State> initial);
  virtual ~Simulator() = default;

  Simulator(const Simulator&) = default;
  Simulator& operator=(const Simulator&) = delete;

  // Deep copy (used by the FTT search and the attack constructions).
  [[nodiscard]] virtual std::unique_ptr<Simulator> clone() const = 0;

  // Deliver one physical interaction. Validates agents and that the
  // model admits omissive interactions before dispatching.
  void interact(const Interaction& ia);

  [[nodiscard]] virtual State simulated_state(AgentId a) const = 0;

  // pi_P(C): the projection of the current configuration onto Q_P.
  [[nodiscard]] std::vector<State> projection() const;

  // Counts of pi_P(C), maintained incrementally by emit() — O(q_P) reads
  // for convergence probes regardless of n and of event recording.
  [[nodiscard]] const std::vector<std::size_t>& projected_counts()
      const noexcept {
    return projected_counts_;
  }

  // Toggle SimEvent storage (default on). Long throughput runs disable it
  // — the event log grows linearly and exists only for the matching
  // verifier. Counters (simulated_updates, projected counts) stay exact.
  void record_events(bool on) noexcept { record_events_ = on; }

  [[nodiscard]] std::size_t num_agents() const noexcept { return n_; }
  [[nodiscard]] const Protocol& protocol() const noexcept { return *protocol_; }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const {
    return protocol_;
  }
  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] const std::vector<State>& initial_projection() const noexcept {
    return initial_;
  }
  [[nodiscard]] const std::vector<SimEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t interactions() const noexcept { return interactions_; }
  [[nodiscard]] std::size_t omissions() const noexcept { return omissions_; }
  [[nodiscard]] std::size_t simulated_updates() const noexcept {
    return updates_;
  }

  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  virtual void do_interact(const Interaction& ia) = 0;

  void emit(AgentId agent, State before, State after, Half half, std::uint64_t key,
            State partner);

  [[nodiscard]] const ModelCaps& caps() const noexcept { return caps_; }
  [[nodiscard]] std::uint64_t current_interaction() const noexcept {
    return interactions_;
  }

 private:
  std::shared_ptr<const Protocol> protocol_;
  Model model_;
  ModelCaps caps_;
  std::vector<State> initial_;
  std::size_t n_;
  std::vector<SimEvent> events_;
  std::vector<std::size_t> projected_counts_;
  std::uint64_t seq_ = 0;
  std::uint64_t updates_ = 0;
  std::size_t interactions_ = 0;
  std::size_t omissions_ = 0;
  bool record_events_ = true;
};

}  // namespace ppfs

// Two-way protocol simulators (§2.4 of the paper).
//
// A simulator S(P) is a wrapper protocol whose agents carry the simulated
// state of P plus simulator bookkeeping, and which — driven by physical
// interactions under some weak/omissive model — produces simulated
// two-way transitions of P. Each simulated state update is recorded as a
// SimEvent; the verifier (verify/matching.hpp) then builds the perfect
// matching of Definition 3 and checks the derived execution of
// Definition 4.
//
// Matching keys attached to events are harness-side provenance (ground
// truth for verification); the protocol logic itself never reads them, so
// they do not strengthen the communication model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

struct SimEvent {
  std::uint64_t seq;          // global event order within the simulator
  std::uint64_t interaction;  // physical interaction index that caused it
  AgentId agent;
  State before;
  State after;
  Half half;                  // which half of delta this update applied
  std::uint64_t key;          // matching hint (transaction / run id)
  State partner;              // simulated partner state used in delta
};

class Simulator {
 public:
  Simulator(std::shared_ptr<const Protocol> protocol, Model model,
            std::vector<State> initial);
  virtual ~Simulator() = default;

  Simulator(const Simulator&) = default;
  Simulator& operator=(const Simulator&) = delete;

  // Deep copy (used by the FTT search and the attack constructions).
  [[nodiscard]] virtual std::unique_ptr<Simulator> clone() const = 0;

  // Deliver one physical interaction. Validates agents and that the
  // model admits omissive interactions before dispatching.
  void interact(const Interaction& ia);

  [[nodiscard]] virtual State simulated_state(AgentId a) const = 0;

  // pi_P(C): the projection of the current configuration onto Q_P.
  [[nodiscard]] std::vector<State> projection() const;

  [[nodiscard]] std::size_t num_agents() const noexcept { return n_; }
  [[nodiscard]] const Protocol& protocol() const noexcept { return *protocol_; }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const {
    return protocol_;
  }
  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] const std::vector<State>& initial_projection() const noexcept {
    return initial_;
  }
  [[nodiscard]] const std::vector<SimEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t interactions() const noexcept { return interactions_; }
  [[nodiscard]] std::size_t omissions() const noexcept { return omissions_; }
  [[nodiscard]] std::size_t simulated_updates() const noexcept {
    return events_.size();
  }

  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  virtual void do_interact(const Interaction& ia) = 0;

  void emit(AgentId agent, State before, State after, Half half, std::uint64_t key,
            State partner);

  [[nodiscard]] const ModelCaps& caps() const noexcept { return caps_; }
  [[nodiscard]] std::uint64_t current_interaction() const noexcept {
    return interactions_;
  }

 private:
  std::shared_ptr<const Protocol> protocol_;
  Model model_;
  ModelCaps caps_;
  std::vector<State> initial_;
  std::size_t n_;
  std::vector<SimEvent> events_;
  std::uint64_t seq_ = 0;
  std::size_t interactions_ = 0;
  std::size_t omissions_ = 0;
};

}  // namespace ppfs

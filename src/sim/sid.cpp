#include "sim/sid.hpp"

#include <stdexcept>
#include <unordered_set>

namespace ppfs {

SidCore::ValueUpdate SidCore::react_value(const Protocol& p,
                                          const Options& options, SidAgent& me,
                                          const SidAgent& snap) {
  if (!me.active || !snap.active) return {};

  // Lines 3-5: two available agents meet — the reactor soft-commits.
  if (me.status == SidAgent::Status::Available &&
      snap.status == SidAgent::Status::Available) {
    me.status = SidAgent::Status::Pairing;
    me.other_id = snap.id;
    me.other_state = snap.sim_state;
    return {Action::Pairing, kNoState, kNoState, Half::Starter, kNoState};
  }

  // Lines 6-9: the observed starter is pairing with me and its recorded
  // copy of my simulated state is still current — I lock and apply the
  // starter half fs = delta[0] of the simulated interaction.
  if (me.status == SidAgent::Status::Available &&
      snap.status == SidAgent::Status::Pairing && snap.other_id == me.id &&
      (!options.guard_partner_state || snap.other_state == me.sim_state)) {
    me.status = SidAgent::Status::Locked;
    me.other_id = snap.id;
    me.other_state = snap.sim_state;
    me.txn = 0;  // provenance assigned by the stateful wrapper, if any
    const State before = me.sim_state;
    const State after = p.delta(before, snap.sim_state).starter;
    me.sim_state = after;
    return {Action::Lock, before, after, Half::Starter, snap.sim_state};
  }

  // Lines 10-13: my partner is locked on me — I complete the reactor half
  // fr = delta[1], using the partner state I saved at pairing time (the
  // snapshot already carries the fs-updated state; see DESIGN.md).
  if (me.status == SidAgent::Status::Pairing && me.other_id == snap.id &&
      snap.other_id == me.id && snap.status == SidAgent::Status::Locked) {
    const State partner = me.other_state;
    const State before = me.sim_state;
    const State after = p.delta(partner, before).reactor;
    me.sim_state = after;
    me.status = SidAgent::Status::Available;
    me.other_id = kNoId;
    me.other_state = kNoState;
    return {Action::Complete, before, after, Half::Reactor, partner};
  }

  // Lines 14-16: the agent I am engaged with is engaged elsewhere (or has
  // completed and reset) — roll back / unlock.
  if (me.other_id == snap.id && snap.other_id != me.id) {
    me.status = SidAgent::Status::Available;
    me.other_id = kNoId;
    me.other_state = kNoState;
    return {Action::Rollback, kNoState, kNoState, Half::Starter, kNoState};
  }
  return {};
}

std::optional<SidCore::Update> SidCore::react(const Protocol& p, SidAgent& me,
                                              const SidAgent& snap) {
  return commit(react_value(p, options_, me, snap), me, snap);
}

std::optional<SidCore::Update> SidCore::commit(const ValueUpdate& vu,
                                               SidAgent& me,
                                               const SidAgent& snap) {
  switch (vu.action) {
    case Action::Pairing:
      ++stats_.pairings;
      return std::nullopt;
    case Action::Lock:
      me.txn = next_txn_++;
      ++stats_.locks;
      return Update{vu.before, vu.after, vu.half, me.txn, vu.partner};
    case Action::Complete:
      ++stats_.completes;
      return Update{vu.before, vu.after, vu.half, snap.txn, vu.partner};
    case Action::Rollback:
      ++stats_.rollbacks;
      return std::nullopt;
    case Action::None:
      return std::nullopt;
  }
  return std::nullopt;
}

SidSimulator::SidSimulator(std::shared_ptr<const Protocol> protocol, Model model,
                           std::vector<State> initial, std::vector<std::uint32_t> ids,
                           SidCore::Options options)
    : Simulator(std::move(protocol), model, std::move(initial)), core_(options) {
  const std::size_t n = num_agents();
  if (ids.empty()) {
    ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  }
  if (ids.size() != n) throw std::invalid_argument("SidSimulator: ids arity");
  std::unordered_set<std::uint32_t> seen;
  for (auto id : ids) {
    if (id == kNoId || !seen.insert(id).second)
      throw std::invalid_argument("SidSimulator: ids must be unique");
  }
  agents_.resize(n);
  for (AgentId a = 0; a < n; ++a) {
    agents_[a].id = ids[a];
    agents_[a].sim_state = initial_projection()[a];
  }
}

std::unique_ptr<Simulator> SidSimulator::clone() const {
  return std::make_unique<SidSimulator>(*this);
}

State SidSimulator::simulated_state(AgentId a) const {
  return agents_.at(a).sim_state;
}

std::string SidSimulator::describe() const {
  return "SID(" + model_name(model()) + ")";
}

void SidSimulator::do_interact(const Interaction& ia) {
  // SID is reactor-side only (its starter functions are identities), so an
  // omissive interaction — under any model — delivers nothing and changes
  // nothing: exactly the no-op embedding that makes SID immune to the UO
  // adversary.
  if (ia.omissive) return;
  const SidAgent snap = agents_[ia.starter];  // pre-interaction snapshot
  if (auto up = core_.react(protocol(), agents_[ia.reactor], snap)) {
    emit(ia.reactor, up->before, up->after, up->half, up->key, up->partner);
  }
}

}  // namespace ppfs

// The trivial "identity" simulator: apply delta directly on every physical
// interaction. In the fault-free two-way model this is a correct simulator
// (each interaction is one perfectly matched pair of events). Under any
// omissive two-way model it is *not* — a one-sided omission applies only
// one half of delta, which is exactly how the adversary of §3 forges
// phantom transitions (e.g. a producer in the Pairing protocol being
// consumed twice). The library keeps it both as the performance baseline
// and as the executable witness for the red T1/T2/T3 cells of Figure 4.
#pragma once

#include "sim/simulator.hpp"

namespace ppfs {

class TwSimulator final : public Simulator {
 public:
  // Model must be TW (correct use) or one of T1, T2, T3 (to demonstrate
  // how omissions break the naive approach).
  TwSimulator(std::shared_ptr<const Protocol> protocol, Model model,
              std::vector<State> initial);

  [[nodiscard]] std::unique_ptr<Simulator> clone() const override;
  [[nodiscard]] State simulated_state(AgentId a) const override;
  [[nodiscard]] std::string describe() const override;

 protected:
  void do_interact(const Interaction& ia) override;

 private:
  std::vector<State> states_;
};

}  // namespace ppfs

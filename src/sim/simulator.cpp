#include "sim/simulator.hpp"

#include <stdexcept>

namespace ppfs {

Simulator::Simulator(std::shared_ptr<const Protocol> protocol, Model model,
                     std::vector<State> initial)
    : protocol_(std::move(protocol)),
      model_(model),
      caps_(model_caps(model)),
      initial_(std::move(initial)),
      n_(initial_.size()) {
  if (!protocol_) throw std::invalid_argument("Simulator: null protocol");
  if (n_ < 1) throw std::invalid_argument("Simulator: empty population");
  projected_counts_.assign(protocol_->num_states(), 0);
  for (State q : initial_) {
    if (q >= protocol_->num_states())
      throw std::invalid_argument("Simulator: initial state out of range");
    ++projected_counts_[q];
  }
}

void Simulator::interact(const Interaction& ia) {
  if (ia.starter >= n_ || ia.reactor >= n_)
    throw std::invalid_argument("Simulator::interact: agent out of range");
  if (ia.starter == ia.reactor)
    throw std::invalid_argument("Simulator::interact: self-interaction");
  if (ia.omissive && !caps_.omissive)
    throw std::invalid_argument("Simulator::interact: model " + model_name(model_) +
                                " has no omissions");
  ++interactions_;
  if (ia.omissive) ++omissions_;
  do_interact(ia);
}

std::vector<State> Simulator::projection() const {
  std::vector<State> out(n_);
  for (AgentId a = 0; a < n_; ++a) out[a] = simulated_state(a);
  return out;
}

void Simulator::emit(AgentId agent, State before, State after, Half half,
                     std::uint64_t key, State partner) {
  if (record_events_) {
    events_.push_back(SimEvent{seq_, interactions_, agent, before, after, half,
                               key, partner});
  }
  ++seq_;
  ++updates_;
  --projected_counts_[before];
  ++projected_counts_[after];
}

}  // namespace ppfs

// Delta-encoded trajectory stores for the sweep service.
//
// A trajectory is the sequence of (interaction count, projected counts)
// snapshots a replica passes through, captured at a fixed interaction
// cadence. Consecutive snapshots differ in a handful of states even when
// the count vector is wide, so frames after the first are delta-encoded
// against the previous snapshot — the same discipline the flight recorder
// uses for its metric timelines, here over a varint+zig-zag binary codec
// (util/binio.hpp) instead of JSONL: a frame costs ~1 byte per unchanged
// state and a few bytes per changed one.
//
// Frame layout (one replica's blob):
//   frame 0:  var step, var q, var counts[0..q)          (absolute)
//   frame i:  var dstep, zig dcounts[0..q)               (deltas)
//
// A trajectory STORE file aggregates the blobs of many replicas with
// enough identity to merge stores across sweep shards post hoc:
//
//   magic "PPFSTRJ1", var version (1), var record count, then per record:
//   var point index, str point_key, var trial, var cadence, str blob.
//
// Records are ordered by (point index, trial) within a store;
// merge_trajectory_stores k-way-merges shard stores back into that global
// order (ppfs_trajcat exposes it as a CLI, decoding to JSONL for queries).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/binio.hpp"

namespace ppfs {

class TrajectoryEncoder {
 public:
  // Append one snapshot. Steps must be non-decreasing; the count vector
  // width must not change across frames of one trajectory.
  void append(std::uint64_t step, const std::vector<std::size_t>& counts);

  [[nodiscard]] std::size_t frames() const noexcept { return frames_; }
  // The encoded blob (frames so far). The encoder stays usable.
  [[nodiscard]] const std::string& data() const noexcept { return w_.data(); }

 private:
  bin::Writer w_;
  std::vector<std::uint64_t> prev_;
  std::uint64_t prev_step_ = 0;
  std::size_t frames_ = 0;
};

struct TrajectoryFrame {
  std::uint64_t step = 0;
  std::vector<std::uint64_t> counts;
};

class TrajectoryDecoder {
 public:
  explicit TrajectoryDecoder(std::string_view blob) : r_(blob) {}
  // Decode the next frame into `out`; false at end of blob. Throws
  // std::runtime_error on truncation.
  bool next(TrajectoryFrame& out);

 private:
  bin::Reader r_;
  TrajectoryFrame prev_;
  bool first_ = true;
};

// One replica's trajectory inside a store.
struct TrajectoryRecord {
  std::size_t point = 0;    // index into the expanded grid
  std::string point_key;    // ScenarioSpec::point_key() — human identity
  std::size_t trial = 0;
  std::size_t every = 0;    // capture cadence in interactions
  std::string blob;         // TrajectoryEncoder frames
};

// Serialize records (already in (point, trial) order) into a store image.
[[nodiscard]] std::string encode_trajectory_store(
    const std::vector<TrajectoryRecord>& records);

// Parse a store image. Throws std::runtime_error on bad magic/truncation.
[[nodiscard]] std::vector<TrajectoryRecord> decode_trajectory_store(
    std::string_view image);

// K-way merge of per-shard stores back into global (point, trial) order —
// each store is ordered already, so this is a heap merge, not a sort.
[[nodiscard]] std::vector<TrajectoryRecord> merge_trajectory_stores(
    std::vector<std::vector<TrajectoryRecord>> stores);

}  // namespace ppfs

#include "util/trajectory.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs {

namespace {
constexpr std::string_view kMagic = "PPFSTRJ1";
constexpr std::uint64_t kVersion = 1;
}  // namespace

void TrajectoryEncoder::append(std::uint64_t step,
                               const std::vector<std::size_t>& counts) {
  if (frames_ == 0) {
    w_.var(step);
    w_.var(counts.size());
    for (const std::size_t c : counts) w_.var(c);
    prev_.assign(counts.begin(), counts.end());
  } else {
    if (counts.size() != prev_.size())
      throw std::logic_error("TrajectoryEncoder: count vector width changed");
    if (step < prev_step_)
      throw std::logic_error("TrajectoryEncoder: steps must be non-decreasing");
    w_.var(step - prev_step_);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      w_.zig(static_cast<std::int64_t>(counts[i]) -
             static_cast<std::int64_t>(prev_[i]));
      prev_[i] = counts[i];
    }
  }
  prev_step_ = step;
  ++frames_;
}

bool TrajectoryDecoder::next(TrajectoryFrame& out) {
  if (r_.done()) return false;
  if (first_) {
    prev_.step = r_.var();
    const std::size_t q = r_.var();
    prev_.counts.resize(q);
    for (auto& c : prev_.counts) c = r_.var();
    first_ = false;
  } else {
    prev_.step += r_.var();
    for (auto& c : prev_.counts)
      c = static_cast<std::uint64_t>(static_cast<std::int64_t>(c) + r_.zig());
  }
  out = prev_;
  return true;
}

std::string encode_trajectory_store(
    const std::vector<TrajectoryRecord>& records) {
  bin::Writer w;
  w.raw(kMagic);
  w.var(kVersion);
  w.var(records.size());
  for (const TrajectoryRecord& rec : records) {
    w.var(rec.point);
    w.str(rec.point_key);
    w.var(rec.trial);
    w.var(rec.every);
    w.str(rec.blob);
  }
  return w.data();
}

std::vector<TrajectoryRecord> decode_trajectory_store(std::string_view image) {
  bin::Reader r(image);
  r.need(kMagic.size());
  if (image.substr(0, kMagic.size()) != kMagic)
    throw std::runtime_error("trajectory store: bad magic");
  for (std::size_t i = 0; i < kMagic.size(); ++i) (void)r.u8();
  if (r.var() != kVersion)
    throw std::runtime_error("trajectory store: unsupported version");
  const std::size_t n = r.var();
  std::vector<TrajectoryRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TrajectoryRecord rec;
    rec.point = r.var();
    rec.point_key = r.str();
    rec.trial = r.var();
    rec.every = r.var();
    rec.blob = r.str();
    out.push_back(std::move(rec));
  }
  if (!r.done())
    throw std::runtime_error("trajectory store: trailing garbage");
  return out;
}

std::vector<TrajectoryRecord> merge_trajectory_stores(
    std::vector<std::vector<TrajectoryRecord>> stores) {
  // Heap of (next record of each store); stores are already ordered by
  // (point, trial), so the merge is linear in total records.
  std::vector<std::size_t> pos(stores.size(), 0);
  std::vector<TrajectoryRecord> out;
  std::size_t total = 0;
  for (const auto& s : stores) total += s.size();
  out.reserve(total);
  while (out.size() < total) {
    std::size_t best = stores.size();
    for (std::size_t i = 0; i < stores.size(); ++i) {
      if (pos[i] >= stores[i].size()) continue;
      if (best == stores.size()) {
        best = i;
        continue;
      }
      const TrajectoryRecord& a = stores[i][pos[i]];
      const TrajectoryRecord& b = stores[best][pos[best]];
      if (a.point < b.point || (a.point == b.point && a.trial < b.trial))
        best = i;
    }
    out.push_back(std::move(stores[best][pos[best]]));
    ++pos[best];
  }
  return out;
}

}  // namespace ppfs

// Minimal binary serialization layer for checkpoint/partial/trajectory files.
//
// Everything the sweep service persists — sweep partials (--shard/--merge),
// engine checkpoints (--checkpoint-every/--resume), and delta-encoded
// trajectory stores — goes through this one writer/reader pair so the byte
// layout is defined in exactly one place. The format is deliberately plain:
// fixed-width little-endian integers where random access or versioning
// matters (magic numbers, counts), LEB128 varints where values are small in
// practice (deltas, lengths), zig-zag for signed deltas, and IEEE-754 bit
// patterns for doubles so round-trips are bit-exact (the shard/merge
// contract is *byte* identity of the final report, which hexfloat
// fingerprints would expose to any double rounding drift).
//
// Readers throw std::runtime_error on truncated or malformed input; the
// callers (CLI merge/resume paths) treat that as a corrupt file, not a
// crash, so partial writes from preempted sweeps fail loud and early.
#pragma once

#include <bit>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ppfs::bin {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  // Unsigned LEB128.
  void var(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  // Zig-zag signed varint: small magnitudes of either sign stay short.
  void zig(std::int64_t v) {
    var((static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63));
  }

  // Bit-exact double (round-trips NaN payloads and signed zeros too).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    var(s.size());
    buf_.append(s.data(), s.size());
  }

  void raw(std::string_view s) { buf_.append(s.data(), s.size()); }

  [[nodiscard]] const std::string& data() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(std::string_view buf) noexcept : buf_(buf) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t var() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
    }
    throw std::runtime_error("bin::Reader: varint overlong");
  }

  [[nodiscard]] std::int64_t zig() {
    const std::uint64_t v = var();
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = var();
    need(n);
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == buf_.size(); }

  void need(std::uint64_t n) const {
    if (n > buf_.size() - pos_)
      throw std::runtime_error("bin::Reader: truncated input");
  }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

// Write `data` to `path` atomically: write a sibling temp file, flush, then
// rename over the destination. A reader (or a sweep resumed after SIGKILL)
// therefore sees either the previous complete file or the new complete file,
// never a truncated mix. Returns false (and leaves no temp debris) on error.
inline bool atomic_write_file(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// Whole-file slurp; empty-string-on-missing is ambiguous, so failure throws.
inline std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("bin::read_file: cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

}  // namespace ppfs::bin

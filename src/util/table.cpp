#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ppfs {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_bool(bool v) { return v ? "yes" : "no"; }

}  // namespace ppfs

// rng.hpp is header-only; this translation unit exists to give the header a
// home in the library target and to host a compile-time sanity check.
#include "util/rng.hpp"

namespace ppfs {
namespace {
// xoshiro256** reference value check: first output for splitmix-expanded
// seed 0 is fixed forever; guards against accidental edits to the core.
constexpr std::uint64_t first_output_for_seed(std::uint64_t seed) {
  Rng r(seed);
  return r();
}
static_assert(first_output_for_seed(1) != first_output_for_seed(2),
              "rng streams must differ by seed");
}  // namespace
}  // namespace ppfs

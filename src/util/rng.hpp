// Deterministic, seedable PRNG used throughout the library.
//
// Experiments in this repository must be exactly reproducible from a seed,
// so we avoid std::mt19937 (whose seeding idioms invite platform drift) and
// ship a self-contained xoshiro256** generator with a splitmix64 seeder
// (Blackman & Vigna). The generator satisfies
// std::uniform_random_bit_generator, so it also composes with <random>.
#pragma once

#include <array>
#include <cstdint>

namespace ppfs {

// splitmix64: used to expand a 64-bit seed into xoshiro state; also handy
// as a tiny stateless mixer for hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : seed_(seed) {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    ++draws_;
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift with rejection for exact uniformity.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  // Draw ledger: raw 64-bit generator invocations made so far. Every
  // random quantity in the library funnels through operator() (below()
  // may consume more than one draw via Lemire rejection), so this is a
  // complete account of entropy consumption. The count is part of no
  // output and influences no control flow; it exists so audit scopes
  // (util/audit.hpp PPFS_DRAW_FREE) can check the zero-draw contracts of
  // regime arbitration, engine bridges, and observability hooks, and so
  // tests can pin a fixed-seed run's exact draw budget. split() children
  // start their own ledger at zero.
  [[nodiscard]] constexpr std::uint64_t draw_count() const noexcept {
    return draws_;
  }

  // Keyed, non-mutating stream derivation: the generator for stream
  // `stream_id`, a pure function of (seed, stream_id) — independent of how
  // many values the parent has produced. splitmix64 is a bijection, so
  // distinct stream ids under one seed never collide. Replica runners
  // (exp/replica_runner.hpp) key one stream per trial, which is what makes
  // multi-threaded sweeps bit-identical at any thread count.
  [[nodiscard]] constexpr Rng split(std::uint64_t stream_id) const noexcept {
    std::uint64_t s = seed_ ^ stream_id;
    return Rng(splitmix64(s));
  }

  // Checkpoint face: the full generator state as six plain words, so a
  // restored generator continues the exact draw sequence (and draw ledger)
  // from the point of capture. seed_ must round-trip too — split() is keyed
  // off it, so a restored replica derives the same child streams.
  struct Snapshot {
    std::uint64_t seed = 0;
    std::array<std::uint64_t, 4> state{};
    std::uint64_t draws = 0;
  };

  [[nodiscard]] constexpr Snapshot snapshot() const noexcept {
    return Snapshot{seed_, state_, draws_};
  }

  constexpr void restore(const Snapshot& s) noexcept {
    seed_ = s.seed;
    state_ = s.state;
    draws_ = s.draws;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t seed_ = 0;  // retained for keyed split()
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t draws_ = 0;  // see draw_count()
};

}  // namespace ppfs

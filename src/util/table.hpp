// Minimal fixed-width table printer used by the bench harnesses to emit the
// paper's figures/tables as aligned text. No external dependencies.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppfs {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Render with column alignment and a rule under the header.
  [[nodiscard]] std::string to_string() const;

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience numeric formatting for table cells.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_bool(bool v);

}  // namespace ppfs

// Fenwick (binary indexed) tree over growing dense ids: prefix sums,
// point updates and inverse-CDF sampling in O(log m). The sparse batch
// engine keeps two of these over the interned state universe — one for all
// occupied states, one for the non-silent subset — so drawing a starter or
// reactor proportionally to counts stays logarithmic while states appear
// and disappear.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ppfs {

class FenwickTree {
 public:
  // Grow the index space to at least `m` slots (new slots zero).
  void ensure(std::size_t m) {
    if (m <= raw_.size()) return;
    raw_.resize(m, 0);
    if (m > cap_) {
      cap_ = 1;
      while (cap_ < m) cap_ <<= 1;
      rebuild();
    } else {
      // Still within the allocated power-of-two span; tree_ already covers it.
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return raw_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t get(std::size_t i) const { return raw_.at(i); }

  void add(std::size_t i, std::int64_t delta) {
    raw_.at(i) = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(raw_[i]) + delta);
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) + delta);
    for (std::size_t j = i + 1; j <= cap_; j += j & (~j + 1))
      tree_[j] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(tree_[j]) + delta);
  }

  void set(std::size_t i, std::uint64_t v) {
    add(i, static_cast<std::int64_t>(v) - static_cast<std::int64_t>(raw_.at(i)));
  }

  // Smallest index i with prefix_sum(0..i) > pick; requires pick < total().
  [[nodiscard]] std::size_t find(std::uint64_t pick) const {
    if (pick >= total_) throw std::out_of_range("FenwickTree::find: pick >= total");
    std::size_t idx = 0;
    for (std::size_t step = cap_; step > 0; step >>= 1) {
      const std::size_t next = idx + step;
      if (next <= cap_ && tree_[next] <= pick) {
        pick -= tree_[next];
        idx = next;
      }
    }
    return idx;  // idx entries have cumulative <= original pick
  }

 private:
  void rebuild() {
    tree_.assign(cap_ + 1, 0);
    for (std::size_t i = 0; i < raw_.size(); ++i) {
      if (raw_[i] == 0) continue;
      for (std::size_t j = i + 1; j <= cap_; j += j & (~j + 1))
        tree_[j] += raw_[i];
    }
  }

  std::vector<std::uint64_t> raw_;
  std::vector<std::uint64_t> tree_;
  std::uint64_t total_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace ppfs

// SwissTable-style control-byte probe groups: the SIMD kernel under
// StateUniverse's interning table (core/dynamic_rules.hpp). The table keeps
// one control byte per slot — a 7-bit hash tag for full slots, or one of
// two sentinels — and a lookup inspects a whole cache-line-resident group
// of slots at once: broadcast the probe tag, compare byte-wise, and reduce
// to a bitmask of candidate lanes. Three implementations sit behind the
// same ProbeGroup/GroupMask shape:
//
//   * SSE2  — 16-byte groups, _mm_cmpeq_epi8 + _mm_movemask_epi8
//             (baseline x86-64: always available, no -m flags needed);
//   * NEON  — 16-byte groups, vceqq_u8 + the vshrn_n_u16 nibble-narrowing
//             movemask (one mask bit per lane at stride 4);
//   * scalar — 8-byte groups, SWAR over one u64 load. match() may report
//             false positives (the classic zero-byte trick borrows across
//             byte lanes), which is part of the contract: callers confirm
//             every candidate against the full key anyway. The two
//             sentinel masks are exact (per-byte bit tests, no borrows).
//
// Build-time switch mirroring PPFS_METRICS: cmake -DPPFS_SIMD=OFF defines
// PPFS_SIMD=0 and forces the portable scalar group on every architecture,
// so the fallback is CI-testable on x86.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#ifndef PPFS_SIMD
#define PPFS_SIMD 1
#endif

#if PPFS_SIMD && defined(__SSE2__)
#define PPFS_GROUP_PROBE_IMPL "sse2"
#include <emmintrin.h>
#elif PPFS_SIMD && defined(__ARM_NEON)
#define PPFS_GROUP_PROBE_IMPL "neon"
#include <arm_neon.h>
#else
#define PPFS_GROUP_PROBE_IMPL "scalar"
#endif

namespace ppfs::simd {

// Control-byte values. Full slots hold the 7-bit tag (high bit clear);
// both sentinels have the high bit set, and they differ in low bits chosen
// so the sentinel masks below are single-instruction-exact:
//   empty   = 0b1000'0000 (bit 1 and bit 0 clear)
//   deleted = 0b1111'1110 (bit 1 set, bit 0 clear)
inline constexpr std::uint8_t kCtrlEmpty = 0x80;
inline constexpr std::uint8_t kCtrlDeleted = 0xFE;

// A set of candidate lanes: one bit per lane at compile-time stride
// `Stride` (1 for movemask-style masks, 4 for the NEON nibble mask, 8 for
// SWAR byte-MSB masks). Iterate with `for (auto m = ...; m.any(); m.pop())`.
template <unsigned Stride>
class GroupMask {
 public:
  explicit constexpr GroupMask(std::uint64_t bits) noexcept : bits_(bits) {}
  [[nodiscard]] constexpr bool any() const noexcept { return bits_ != 0; }
  // Lowest candidate lane index; only valid when any().
  [[nodiscard]] constexpr unsigned first() const noexcept {
    return static_cast<unsigned>(std::countr_zero(bits_)) / Stride;
  }
  // Drop the lowest candidate.
  constexpr void pop() noexcept { bits_ &= bits_ - 1; }

 private:
  std::uint64_t bits_;
};

#if PPFS_SIMD && defined(__SSE2__)

class ProbeGroup {
 public:
  static constexpr std::size_t kWidth = 16;
  using Mask = GroupMask<1>;

  explicit ProbeGroup(const std::uint8_t* ctrl) noexcept
      : g_(_mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl))) {}

  // Lanes whose control byte equals the 7-bit tag (exact on this impl).
  [[nodiscard]] Mask match(std::uint8_t tag) const noexcept {
    return Mask(static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(g_, _mm_set1_epi8(static_cast<char>(tag))))));
  }
  [[nodiscard]] Mask match_empty() const noexcept {
    return match(kCtrlEmpty);
  }
  // Both sentinels carry the byte sign bit; full slots never do.
  [[nodiscard]] Mask match_empty_or_deleted() const noexcept {
    return Mask(static_cast<std::uint32_t>(_mm_movemask_epi8(g_)));
  }

 private:
  __m128i g_;
};

#elif PPFS_SIMD && defined(__ARM_NEON)

class ProbeGroup {
 public:
  static constexpr std::size_t kWidth = 16;
  using Mask = GroupMask<4>;

  explicit ProbeGroup(const std::uint8_t* ctrl) noexcept
      : g_(vld1q_u8(ctrl)) {}

  [[nodiscard]] Mask match(std::uint8_t tag) const noexcept {
    return to_mask(vceqq_u8(g_, vdupq_n_u8(tag)));
  }
  [[nodiscard]] Mask match_empty() const noexcept {
    return match(kCtrlEmpty);
  }
  [[nodiscard]] Mask match_empty_or_deleted() const noexcept {
    // Sign-bit test: 0x80 <= byte for both sentinels only.
    return to_mask(vcgeq_u8(g_, vdupq_n_u8(0x80)));
  }

 private:
  // Narrow each 16-bit pair of 0x00/0xFF compare lanes to a nibble: the
  // resulting u64 holds one 0x0/0xF nibble per lane, i.e. a stride-4 mask.
  [[nodiscard]] static Mask to_mask(uint8x16_t eq) noexcept {
    const uint8x8_t n = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
    return Mask(vget_lane_u64(vreinterpret_u64_u8(n), 0));
  }

  uint8x16_t g_;
};

#else  // portable scalar SWAR

class ProbeGroup {
 public:
  static constexpr std::size_t kWidth = 8;
  using Mask = GroupMask<8>;

  explicit ProbeGroup(const std::uint8_t* ctrl) noexcept {
    std::memcpy(&g_, ctrl, sizeof(g_));  // little-endian assumed (as is
                                         // the project's byte encodings)
  }

  // Zero-byte SWAR trick on g ^ broadcast(tag). May set the MSB of a byte
  // adjacent to a true match (borrow propagation) — candidates must be
  // confirmed against the full key, which every caller does anyway.
  // Sentinels never alias a tag: tags have the high bit clear.
  [[nodiscard]] Mask match(std::uint8_t tag) const noexcept {
    const std::uint64_t x = g_ ^ (kLsbs * tag);
    return Mask((x - kLsbs) & ~x & kMsbs);
  }
  // Exact: MSB set and bit 1 clear identifies kCtrlEmpty (the shift stays
  // within each byte for the tested bit position).
  [[nodiscard]] Mask match_empty() const noexcept {
    return Mask(g_ & ~(g_ << 6) & kMsbs);
  }
  // Exact: MSB set and bit 0 clear covers both sentinels, no full slots.
  [[nodiscard]] Mask match_empty_or_deleted() const noexcept {
    return Mask(g_ & ~(g_ << 7) & kMsbs);
  }

 private:
  static constexpr std::uint64_t kLsbs = 0x0101010101010101ull;
  static constexpr std::uint64_t kMsbs = 0x8080808080808080ull;

  std::uint64_t g_;
};

#endif

}  // namespace ppfs::simd

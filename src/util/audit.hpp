// Runtime-contract audit layer: the invariants the fast paths ride on,
// turned from comments into machine-checked contracts. Mirrors the
// zero-overhead-off design of src/obs/metrics.hpp:
//
//   * The CMake option PPFS_AUDIT=OFF (the default) compiles every
//     PPFS_AUDIT_INVOKE() / PPFS_DRAW_FREE() hook in the hot paths to
//     nothing — the default build is byte-identical in behavior.
//   * The audit *methods* themselves (each subsystem's
//     audit_invariants()) are always compiled: they are cold code, and
//     the mutation-smoke tests (tests/audit_test.cpp) call them directly
//     in every build configuration.
//   * Under -DPPFS_AUDIT=ON the hooks re-check subsystem invariants at
//     slice boundaries and the draw-free scopes assert the zero-draw
//     bridge contracts. This is a verification build: expect a large
//     constant-factor slowdown (several audits are O(q^2) rescans).
//
// Failures throw AuditError — a structured diagnostic naming the
// subsystem, the violated invariant, and the observed numbers — modeled
// on the samplers' SamplerInvariantError, and deliberately an exception
// rather than an abort so the mutation-smoke tests can assert that each
// auditor fires on a hand-corrupted state.
#pragma once

#include <cassert>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

#ifndef PPFS_AUDIT
#define PPFS_AUDIT 0
#endif

namespace ppfs {

// A violated runtime contract. `subsystem` names the audited component
// ("DynamicPairSampler", "StateUniverse", ...), `invariant` the specific
// broken contract, `detail` the observed values.
class AuditError : public std::logic_error {
 public:
  AuditError(const std::string& subsystem, const std::string& invariant,
             const std::string& detail)
      : std::logic_error("audit[" + subsystem + "]: " + invariant +
                         (detail.empty() ? "" : " (" + detail + ")")),
        subsystem_(subsystem),
        invariant_(invariant) {}

  [[nodiscard]] const std::string& subsystem() const noexcept {
    return subsystem_;
  }
  [[nodiscard]] const std::string& invariant() const noexcept {
    return invariant_;
  }

 private:
  std::string subsystem_;
  std::string invariant_;
};

namespace audit {

// Check helper for audit_invariants() bodies: throw a structured
// AuditError unless `ok`. The detail string is built by the caller only
// on the failure path when it is expensive; passing it eagerly is fine
// for cheap formatting.
inline void check(bool ok, const char* subsystem, const char* invariant,
                  const std::string& detail = {}) {
  if (!ok) throw AuditError(subsystem, invariant, detail);
}

// Convenience formatter for the ubiquitous "expected X, got Y" detail.
inline std::string expected_got(std::uint64_t expected, std::uint64_t got) {
  return "expected " + std::to_string(expected) + ", got " +
         std::to_string(got);
}

}  // namespace audit

// Scope guard asserting that a region consumes zero Rng draws — the
// checked form of the "consumes no draws / bit-identical replay"
// contracts on regime-monitor arbitration, engine-switch bridges, and
// metrics/flight-recorder hooks. Always compiled (the draw-ledger tests
// use it in every build); hot-path instantiation goes through
// PPFS_DRAW_FREE below, which compiles out with the audit layer.
//
// The destructor throws AuditError when the ledger moved. A throwing
// destructor is deliberate — it is what lets EXPECT_THROW-style mutation
// smokes seed a draw inside a guarded region and watch the guard fire —
// and is suppressed while an exception is already in flight.
class DrawFreeScope {
 public:
  DrawFreeScope(const Rng& rng, const char* context) noexcept
      : rng_(rng),
        context_(context),
        entry_draws_(rng.draw_count()),
        entry_exceptions_(std::uncaught_exceptions()) {}

  DrawFreeScope(const DrawFreeScope&) = delete;
  DrawFreeScope& operator=(const DrawFreeScope&) = delete;

  ~DrawFreeScope() noexcept(false) {
    if (std::uncaught_exceptions() != entry_exceptions_) return;
    const std::uint64_t now = rng_.draw_count();
    if (now != entry_draws_)
      throw AuditError("DrawFreeScope", context_,
                       std::to_string(now - entry_draws_) +
                           " draw(s) consumed in a draw-free region");
  }

 private:
  const Rng& rng_;
  const char* context_;
  std::uint64_t entry_draws_;
  int entry_exceptions_;
};

}  // namespace ppfs

// Hot-path hook: run an audit expression (typically a call to some
// subsystem's audit_invariants()) only under -DPPFS_AUDIT=ON.
//
//   PPFS_AUDIT_INVOKE(sys_.audit_invariants());
//
// The expression is NOT evaluated when compiled out.
#if PPFS_AUDIT
#define PPFS_AUDIT_INVOKE(...) \
  do {                         \
    __VA_ARGS__;               \
  } while (0)
#else
#define PPFS_AUDIT_INVOKE(...) \
  do {                         \
  } while (0)
#endif

// Structured assert: the promotion target for bare assert() calls on
// semantic contracts. Three-way behavior:
//   * PPFS_AUDIT=ON  — evaluate the condition and throw AuditError on
//                      failure, in every build type (survives NDEBUG);
//   * PPFS_AUDIT=OFF, assertions enabled — plain assert();
//   * PPFS_AUDIT=OFF, NDEBUG — compiled out, condition not evaluated.
// The condition is the variadic tail so commas inside it (template
// argument lists, init-lists) never split macro arguments.
#if PPFS_AUDIT
#define PPFS_AUDIT_ASSERT(subsystem, invariant, ...)            \
  do {                                                          \
    if (!(__VA_ARGS__))                                         \
      throw ::ppfs::AuditError((subsystem), (invariant), {});   \
  } while (0)
#elif !defined(NDEBUG)
#define PPFS_AUDIT_ASSERT(subsystem, invariant, ...) \
  assert((subsystem) && (invariant) && (__VA_ARGS__))
#else
#define PPFS_AUDIT_ASSERT(subsystem, invariant, ...) \
  do {                                               \
  } while (0)
#endif

// PPFS_DRAW_FREE(rng, context): instantiate an anonymous DrawFreeScope
// guarding the rest of the enclosing block under -DPPFS_AUDIT=ON;
// nothing otherwise. Wrap the guarded call and the guard together in a
// brace scope so both configurations parse identically:
//
//   { PPFS_DRAW_FREE(rng, "AutoSimEngine::maybe_switch"); maybe_switch(); }
#define PPFS_AUDIT_CAT2(a, b) a##b
#define PPFS_AUDIT_CAT(a, b) PPFS_AUDIT_CAT2(a, b)
#if PPFS_AUDIT
#define PPFS_DRAW_FREE(rng, context)                                  \
  const ::ppfs::DrawFreeScope PPFS_AUDIT_CAT(ppfs_draw_free_guard_,   \
                                             __LINE__)((rng), (context))
#else
#define PPFS_DRAW_FREE(rng, context) \
  do {                               \
  } while (0)
#endif

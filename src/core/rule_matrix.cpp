#include "core/rule_matrix.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "protocols/oneway.hpp"

namespace ppfs {

namespace {

using UnaryFn = std::function<State(State)>;

// Lower a designer function to a dense table, defaulting to identity.
std::vector<State> unary_table(const UnaryFn& fn, std::size_t q) {
  std::vector<State> t(q);
  for (State s = 0; s < q; ++s) {
    const State out = fn ? fn(s) : s;
    if (out >= q)
      throw std::invalid_argument("RuleMatrix: omission fn maps out of range");
    t[s] = out;
  }
  return t;
}

void validate_fns(Model model, const ModelFns& fns) {
  const ModelCaps caps = model_caps(model);
  if (fns.o && !caps.starter_detects_omission)
    throw std::invalid_argument(
        "RuleMatrix: model " + model_name(model) +
        " has no starter-side omission detection; installing o is an error");
  if (fns.h && !caps.reactor_detects_omission)
    throw std::invalid_argument(
        "RuleMatrix: model " + model_name(model) +
        " has no reactor-side omission detection; installing h is an error");
}

}  // namespace

std::string interaction_class_name(InteractionClass c) {
  switch (c) {
    case InteractionClass::Real: return "real";
    case InteractionClass::OmitBoth: return "omit-both";
    case InteractionClass::OmitStarter: return "omit-starter";
    case InteractionClass::OmitReactor: return "omit-reactor";
  }
  throw std::invalid_argument("interaction_class_name: bad class");
}

RuleMatrix RuleMatrix::compile(std::shared_ptr<const Protocol> protocol,
                               Model model, const ModelFns& fns) {
  if (!protocol) throw std::invalid_argument("RuleMatrix: null protocol");
  validate_fns(model, fns);
  const std::size_t q = protocol->num_states();

  RuleMatrix m;
  m.model_ = model;
  m.q_ = q;
  m.two_way_ = protocol;
  auto& real = m.tables_[static_cast<std::size_t>(InteractionClass::Real)];
  real.resize(q * q);
  for (State s = 0; s < q; ++s)
    for (State r = 0; r < q; ++r) real[s * q + r] = protocol->delta(s, r);

  if (is_one_way(model)) {
    // A two-way protocol runs under a one-way model only through the IT
    // shape delta(s, r) = (g(s), f(s, r)) (§2.2).
    const auto g = it_shape_g(*protocol);
    if (!g)
      throw std::invalid_argument(
          "RuleMatrix: protocol '" + protocol->name() +
          "' does not fit the one-way shape required by " + model_name(model));
    if (model == Model::IO) {
      // IO: the starter must be unaware, i.e. g = id.
      for (State s = 0; s < q; ++s) {
        if ((*g)[s] != s)
          throw std::invalid_argument(
              "RuleMatrix: protocol has g != id, IO forbids it");
      }
    }

    if (is_omissive(model)) {
      const std::vector<State> o = unary_table(fns.o, q);
      const std::vector<State> h = unary_table(fns.h, q);
      std::vector<StatePair> omit(q * q);
      for (State s = 0; s < q; ++s) {
        for (State r = 0; r < q; ++r) {
          const State gs = (*g)[s];
          StatePair out{gs, r};
          switch (model) {
            case Model::I1: out = {gs, r}; break;
            case Model::I2: out = {gs, (*g)[r]}; break;
            case Model::I3: out = {gs, h[r]}; break;
            case Model::I4: out = {o[s], (*g)[r]}; break;
            default:
              throw std::logic_error("RuleMatrix: unexpected one-way model");
          }
          omit[s * q + r] = out;
        }
      }
      // One-way transmission has no side distinction: all omissive
      // classes share the single faulty outcome.
      m.tables_[static_cast<std::size_t>(InteractionClass::OmitBoth)] = omit;
      m.tables_[static_cast<std::size_t>(InteractionClass::OmitStarter)] = omit;
      m.tables_[static_cast<std::size_t>(InteractionClass::OmitReactor)] =
          std::move(omit);
    }
    return m;
  }

  // Two-way models: omissive classes per the T-relations, with o/h
  // defaulting to identity (exactly T1 when both default).
  if (is_omissive(model)) {
    const std::vector<State> o = unary_table(fns.o, q);
    const std::vector<State> h = unary_table(fns.h, q);
    auto& both = m.tables_[static_cast<std::size_t>(InteractionClass::OmitBoth)];
    auto& ost = m.tables_[static_cast<std::size_t>(InteractionClass::OmitStarter)];
    auto& ore = m.tables_[static_cast<std::size_t>(InteractionClass::OmitReactor)];
    both.resize(q * q);
    ost.resize(q * q);
    ore.resize(q * q);
    for (State s = 0; s < q; ++s) {
      for (State r = 0; r < q; ++r) {
        const StatePair d = protocol->delta(s, r);
        ost[s * q + r] = {o[s], d.reactor};   // (o, fr)
        ore[s * q + r] = {d.starter, h[r]};   // (fs, h)
        both[s * q + r] = {o[s], h[r]};       // (o, h)
      }
    }
  }
  return m;
}

RuleMatrix RuleMatrix::compile(std::shared_ptr<const OneWayProtocol> protocol,
                               Model model, std::vector<State> initial,
                               const ModelFns& fns) {
  if (!protocol) throw std::invalid_argument("RuleMatrix: null protocol");
  if (!is_one_way(model))
    throw std::invalid_argument("RuleMatrix: one-way protocol requires a "
                                "one-way model, got " + model_name(model));
  if (model == Model::IO && !protocol->is_io())
    throw std::invalid_argument(
        "RuleMatrix: protocol has g != id, IO forbids it");
  // The lowered two-way table is the canonical face; its delta equals
  // (g(s), f(s, r)), so the one-way compile path above applies verbatim.
  auto lowered = lower_to_two_way(*protocol, std::move(initial));
  return compile(std::move(lowered), model, fns);
}

InteractionClass RuleMatrix::classify(const Interaction& ia) const {
  if (!ia.omissive) return InteractionClass::Real;
  return omission_class(ia.side);
}

InteractionClass RuleMatrix::omission_class(OmitSide side) const {
  return omission_class_for(model_, side);
}

InteractionClass omission_class_for(Model model, OmitSide side) {
  if (!is_omissive(model))
    throw std::invalid_argument("omission_class_for: omissive interaction "
                                "under the non-omissive model " +
                                model_name(model));
  if (is_one_way(model)) return InteractionClass::OmitBoth;
  switch (side) {
    case OmitSide::Both: return InteractionClass::OmitBoth;
    case OmitSide::Starter: return InteractionClass::OmitStarter;
    case OmitSide::Reactor: return InteractionClass::OmitReactor;
  }
  throw std::invalid_argument("omission_class_for: bad omission side");
}

}  // namespace ppfs

// Fundamental value types shared by every module: agent identities,
// simulated-protocol states, physical interactions, and the two halves of a
// simulated two-way transition (used by the matching verifier, Def. 3).
#pragma once

#include <cstdint>
#include <limits>

namespace ppfs {

// A local state of a (simulated) population protocol. Protocols in this
// library use dense state ids [0, num_states).
using State = std::uint32_t;

// Index of an agent within the population, [0, n).
using AgentId = std::uint32_t;

inline constexpr State kNoState = std::numeric_limits<State>::max();
inline constexpr AgentId kNoAgent = std::numeric_limits<AgentId>::max();

// Result of applying a two-way transition function delta(s, r).
struct StatePair {
  State starter;
  State reactor;
  friend bool operator==(const StatePair&, const StatePair&) = default;
};

// In the two-way omissive models an omission can strike the starter's
// side, the reactor's side, or both (the three faulty outcomes of the T3
// relation). One-way models transmit in one direction only, so the side
// distinction is meaningless there and the field is ignored.
enum class OmitSide : std::uint8_t { Both = 0, Starter = 1, Reactor = 2 };

// One physical pairwise interaction, as produced by a scheduler/adversary.
// `omissive` marks interactions in which the transmitted information is
// lost (Def. 1/2); how much of that loss each party can *detect* depends on
// the interaction model (ModelCaps in core/models.hpp).
struct Interaction {
  AgentId starter = kNoAgent;
  AgentId reactor = kNoAgent;
  bool omissive = false;
  OmitSide side = OmitSide::Both;  // only meaningful for two-way models
  friend bool operator==(const Interaction&, const Interaction&) = default;
};

// Which half of a simulated two-way interaction an event represents:
// the starter half applies delta[0] = fs, the reactor half delta[1] = fr.
enum class Half : std::uint8_t { Starter = 0, Reactor = 1 };

}  // namespace ppfs

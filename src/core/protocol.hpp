// Two-way population protocols (§2.1 of the paper).
//
// A protocol P is (Q_P, Q'_P, delta_P) with delta_P : Q×Q -> Q×Q applied to
// ordered (starter, reactor) pairs. This header provides:
//   * Protocol        — the abstract interface used by engines/simulators;
//   * TableProtocol   — a dense-table implementation (fast path);
//   * ProtocolBuilder — ergonomic construction with named states and rules;
//   * shape checks    — whether a two-way protocol happens to fit the
//                       one-way IT/IO shapes of §2.2 (used by the Fig. 1
//                       experiments).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace ppfs {

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::size_t num_states() const = 0;

  // The two-way transition function delta(starter, reactor).
  [[nodiscard]] virtual StatePair delta(State s, State r) const = 0;

  // Human-readable identifiers (for traces and experiment tables).
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string state_name(State q) const;

  // Output interpretation of a state: >= 0 for an output value (e.g. a
  // predicate bit), -1 for "no output / undecided".
  [[nodiscard]] virtual int output(State q) const;

  // States admissible in initial configurations (Q'_P).
  [[nodiscard]] virtual const std::vector<State>& initial_states() const = 0;

  [[nodiscard]] bool is_initial(State q) const;

  // True if delta is symmetric in the sense used by Lemma 1:
  // delta(a,b) = (x,y)  implies  delta(b,a) = (y,x) for all a,b.
  [[nodiscard]] bool is_symmetric() const;

  // True if delta(q, q') leaves both parties unchanged.
  [[nodiscard]] bool is_noop(State s, State r) const;
};

// Dense-table protocol: delta stored as a flat num_states^2 array. This is
// the execution fast path; every protocol in src/protocols lowers to it.
class TableProtocol final : public Protocol {
 public:
  TableProtocol(std::string name, std::vector<std::string> state_names,
                std::vector<int> outputs, std::vector<State> initial,
                std::vector<StatePair> table);

  [[nodiscard]] std::size_t num_states() const override { return names_.size(); }
  [[nodiscard]] StatePair delta(State s, State r) const override {
    return table_[static_cast<std::size_t>(s) * names_.size() + r];
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string state_name(State q) const override;
  [[nodiscard]] int output(State q) const override;
  [[nodiscard]] const std::vector<State>& initial_states() const override {
    return initial_;
  }

  // Raw table access for the tight native-engine loop.
  [[nodiscard]] const StatePair* raw_table() const noexcept { return table_.data(); }

 private:
  std::string name_;
  std::vector<std::string> names_;
  std::vector<int> outputs_;
  std::vector<State> initial_;
  std::vector<StatePair> table_;
};

// Incremental builder. States default to identity transitions (no rule ==
// both parties keep their states), matching how protocols are written in
// the population-protocols literature ("the only non-trivial rules are...").
class ProtocolBuilder {
 public:
  explicit ProtocolBuilder(std::string name);

  // Returns the new state's id. `output` < 0 means no output.
  State add_state(std::string state_name, int output = -1, bool initial = false);

  // delta(s, r) = (s2, r2).
  ProtocolBuilder& rule(State s, State r, State s2, State r2);

  // Adds rule(s,r,s2,r2) and its mirror rule(r,s,r2,s2).
  ProtocolBuilder& symmetric_rule(State s, State r, State s2, State r2);

  [[nodiscard]] std::shared_ptr<const TableProtocol> build() const;

 private:
  struct Rule {
    State s, r, s2, r2;
  };
  std::string name_;
  std::vector<std::string> state_names_;
  std::vector<int> outputs_;
  std::vector<State> initial_;
  std::vector<Rule> rules_;
};

// --- One-way shape checks (§2.2) -------------------------------------------
//
// IT shape: delta(s, r) = (g(s), f(s, r)) — the starter's update must not
// depend on the reactor. IO shape: additionally g = identity.
// These are used by the Figure 1 experiments to classify protocols.

// If the protocol fits the IT shape, returns the induced g; otherwise
// nullopt.
[[nodiscard]] std::optional<std::vector<State>> it_shape_g(const Protocol& p);

[[nodiscard]] bool fits_it_shape(const Protocol& p);
[[nodiscard]] bool fits_io_shape(const Protocol& p);

// --- Native one-way protocols (§2.2) ----------------------------------------
//
// A protocol expressed directly in the one-way form (g, f). Used by the
// one-way native engine and the Fig. 1 computability demonstrations.
class OneWayProtocol {
 public:
  virtual ~OneWayProtocol() = default;
  [[nodiscard]] virtual std::size_t num_states() const = 0;
  [[nodiscard]] virtual State g(State s) const = 0;           // starter update
  [[nodiscard]] virtual State f(State s, State r) const = 0;  // reactor update
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int output(State q) const { (void)q; return -1; }
  [[nodiscard]] bool is_io() const;  // g == identity
};

}  // namespace ppfs

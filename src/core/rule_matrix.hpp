// RuleMatrix: the single compiled representation of "what an interaction
// does" under every model of the lattice (§2.2–2.3). Both the per-agent
// engines (engine/native.hpp) and the count-based batch engine
// (engine/batch/) execute from a RuleMatrix, so the transition relations of
// the ten models are encoded exactly once.
//
// An interaction is classified into one of four classes:
//
//   Real         — the non-omissive outcome chosen by the scheduler;
//   OmitStarter  — two-way omission striking the starter's side:
//                  the starter cannot compute fs and applies o instead,
//                  the reactor still applies fr (T2/T3; o = id in T1);
//   OmitReactor  — two-way omission striking the reactor's side:
//                  (fs(s,r), h(r)) with h = id below T3;
//   OmitBoth     — omission on both sides: (o(s), h(r)). One-way models
//                  transmit in one direction only, so all three omissive
//                  classes collapse to the single faulty outcome of
//                  I1..I4 ((g(s), r), (g(s), g(r)), (g(s), h(r)) or
//                  (o(s), g(r)) respectively).
//
// Compilation validates the designer-supplied omission-reaction functions
// against ModelCaps: installing o on a model without starter-side omission
// detection (or h without reactor-side detection) is rejected, instead of
// being silently ignored at interaction time.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

enum class InteractionClass : std::uint8_t {
  Real = 0,
  OmitBoth = 1,
  OmitStarter = 2,
  OmitReactor = 3,
};

inline constexpr std::size_t kNumInteractionClasses = 4;

[[nodiscard]] std::string interaction_class_name(InteractionClass c);

// The outcome class an omission striking `side` realizes under `model`:
// the three faulty T-relation outcomes for two-way models; one-way models
// transmit in one direction only, so every side collapses to OmitBoth.
// Throws on non-omissive models. (RuleMatrix::omission_class and the
// open-universe sim engine both delegate here.)
[[nodiscard]] InteractionClass omission_class_for(Model model, OmitSide side);

// Designer-chosen omission-reaction functions (Definitions of §2.3): `o` is
// the starter-side update in a detected omission (T2/T3/I4), `h` the
// reactor-side one (T3/I3). Null means identity. Supplying a function the
// model cannot express is a compile-time error (ModelCaps validation).
struct ModelFns {
  std::function<State(State)> o;
  std::function<State(State)> h;
};

class RuleMatrix {
 public:
  // Compile a two-way protocol under any model. Two-way models (TW/T1..T3)
  // use delta directly; one-way models (IT/IO/I1..I4) require the protocol
  // to fit the IT shape delta(s,r) = (g(s), f(s,r)) (and g = id for
  // IO-based models), from which g and f are extracted.
  [[nodiscard]] static RuleMatrix compile(
      std::shared_ptr<const Protocol> protocol, Model model,
      const ModelFns& fns = {});

  // Compile a native one-way protocol; `model` must be one-way.
  // `initial` seeds the lowered two-way face used for count/consensus
  // tooling (it does not constrain execution).
  [[nodiscard]] static RuleMatrix compile(
      std::shared_ptr<const OneWayProtocol> protocol, Model model,
      std::vector<State> initial, const ModelFns& fns = {});

  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] std::size_t num_states() const noexcept { return q_; }
  [[nodiscard]] bool omissive() const noexcept { return is_omissive(model_); }
  [[nodiscard]] bool one_way() const noexcept { return is_one_way(model_); }

  // Two-way face: the protocol whose delta equals the Real class. Used by
  // Configuration/Population interop, outputs and state names.
  [[nodiscard]] const Protocol& protocol() const noexcept { return *two_way_; }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const {
    return two_way_;
  }

  // Post-states of an interaction of class `c` on pre-states (s, r).
  [[nodiscard]] StatePair outcome(InteractionClass c, State s, State r) const {
    return table(c)[static_cast<std::size_t>(s) * q_ + r];
  }

  [[nodiscard]] bool is_noop(InteractionClass c, State s, State r) const {
    const StatePair out = outcome(c, s, r);
    return out.starter == s && out.reactor == r;
  }

  // Map a scheduled interaction to its class. Throws if the interaction is
  // omissive and the model has no omission adversary. One-way models ignore
  // the side (all omissive classes coincide).
  [[nodiscard]] InteractionClass classify(const Interaction& ia) const;

  // The outcome class an omission adversary striking `side` emits. Two-way
  // models distinguish the three faulty outcomes of the T-relations;
  // one-way models transmit in one direction only, so every side collapses
  // to the single faulty outcome (same as classify()). Throws on
  // non-omissive models.
  [[nodiscard]] InteractionClass omission_class(OmitSide side) const;

  // Enumerate the ordered pre-state pairs whose class-`c` outcome changes
  // the configuration, in (s, r) row-major order — the fixed pair universe
  // the count-space engines build their dynamic samplers over (is_noop
  // depends only on the compiled tables, never on counts).
  template <class Fn>
  void for_each_changing_pair(InteractionClass c, Fn&& fn) const {
    for (State s = 0; s < q_; ++s)
      for (State r = 0; r < q_; ++r)
        if (!is_noop(c, s, r)) fn(s, r);
  }

 private:
  RuleMatrix() = default;

  [[nodiscard]] const std::vector<StatePair>& table(InteractionClass c) const {
    return tables_[static_cast<std::size_t>(c)];
  }

  Model model_ = Model::TW;
  std::size_t q_ = 0;
  std::shared_ptr<const Protocol> two_way_;
  // Indexed by InteractionClass; omissive tables are empty for
  // non-omissive models (classify() rejects before lookup).
  std::array<std::vector<StatePair>, kNumInteractionClasses> tables_;
};

}  // namespace ppfs

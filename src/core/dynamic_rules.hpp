// DynamicRuleSource: the open-universe generalization of RuleMatrix.
//
// A RuleMatrix (core/rule_matrix.hpp) is the *closed*-universe compiled form
// of "what an interaction does": every state is known up front, so the four
// per-class outcome tables are dense q x q arrays. The paper's simulators
// (§4) break that assumption — a simulator's wrapper state carries queues,
// debt lists and pairing records whose reachable set is unbounded a priori
// and only discovered while running. DynamicRuleSource is the lazily
// expanded counterpart: states live in a growing interned universe
// (StateUniverse) and per-class outcome rows are computed on first contact
// instead of precompiled, which is what lets the count-space batch engine
// (engine/batch/sim_batch_system.hpp) execute a *simulator* as if it were
// just another protocol.
//
// A source also declares structural facts the sparse engine exploits to
// keep leap sampling exact as new states appear:
//   * real_noop_factors(): the Real class is a no-op iff the starter is
//     "silent" (transmits nothing), independent of the reactor — the
//     one-way-simulator shape (SKnO). Changing weights then reduce to a
//     silent-population counter instead of an O(universe^2) scan.
//   * omission_transparent(): every omissive class is a global no-op
//     (reactor-side-only simulators: SID, naming), so omissive draws can
//     be tallied by binomial splitting without touching the configuration.
//   * open_universe(): states whose count returns to zero may be released
//     and their ids recycled (bounded-memory execution at n = 10^6).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/models.hpp"
#include "core/protocol.hpp"
#include "core/rule_matrix.hpp"
#include "core/types.hpp"

namespace ppfs {

// Interns canonical byte encodings of wrapper states into dense ids.
// Released ids are recycled through a free list so long open-universe runs
// hold memory proportional to the number of *live* states, not the number
// of states ever seen.
class StateUniverse {
 public:
  // Look up `bytes`, interning it if new. Returns the dense id.
  State intern(std::string_view bytes);

  // The canonical encoding of a live id.
  [[nodiscard]] const std::string& encoding(State s) const;

  // Forget a live id and recycle it. The caller must guarantee nothing
  // references `s` anymore (the sparse engine releases only states whose
  // count is zero).
  void release(State s);

  // Ids allocated so far (live + free); valid ids are < capacity().
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t live() const noexcept {
    return slots_.size() - free_.size();
  }
  [[nodiscard]] bool is_live(State s) const {
    return s < slots_.size() && slots_[s] != nullptr;
  }

 private:
  struct TransparentHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view sv) const noexcept {
      return std::hash<std::string_view>{}(sv);
    }
  };

  // Map nodes own the encoding bytes; slots_ points into them, so ids stay
  // stable across rehashing and vector growth. Heterogeneous lookup keeps
  // the hot intern path allocation-free on hits.
  std::unordered_map<std::string, State, TransparentHash, std::equal_to<>>
      index_;
  std::vector<const std::string*> slots_;
  std::vector<State> free_;
};

// The lazily-expanded rule source both engines can execute. States are ids
// in an interned universe owned by the source; `outcome` discovers rows on
// first contact. Implementations for the paper's simulators live in
// sim/sim_rules.hpp; MatrixRuleSource below adapts any compiled RuleMatrix
// (closed universes run through the same sparse engine unchanged).
class DynamicRuleSource {
 public:
  virtual ~DynamicRuleSource() = default;

  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual Model model() const = 0;

  // The simulated protocol: projection target, output interpretation, and
  // the state space convergence probes run over.
  [[nodiscard]] virtual const Protocol& protocol() const = 0;
  [[nodiscard]] virtual std::shared_ptr<const Protocol> protocol_ptr() const = 0;

  // Ids handed out so far; every state mentioned by outcome()/project() is
  // < universe_size() at the time it is returned.
  [[nodiscard]] virtual std::size_t universe_size() const = 0;

  // Intern the wrapper states of an initial population whose simulated
  // states are `sim`; out[i] is agent i's wrapper state. (Simulators with
  // per-agent identities — SID ids, naming — map equal simulated states to
  // *distinct* wrapper states; exchangeable simulators collapse them.)
  [[nodiscard]] virtual std::vector<State> intern_initial(
      const std::vector<State>& sim) = 0;

  // Post-states of a class-`c` interaction on wrapper pre-states (s, r).
  // May intern new states (growing the universe).
  [[nodiscard]] virtual StatePair outcome(InteractionClass c, State s,
                                          State r) = 0;

  [[nodiscard]] bool is_noop(InteractionClass c, State s, State r) {
    const StatePair out = outcome(c, s, r);
    return out.starter == s && out.reactor == r;
  }

  // pi_P: the simulated-protocol state a wrapper state projects to.
  [[nodiscard]] virtual State project(State s) const = 0;

  // --- structural hints (see file header) -----------------------------------
  [[nodiscard]] virtual bool open_universe() const { return false; }
  [[nodiscard]] virtual bool real_noop_factors() const { return false; }
  // Meaningful only when real_noop_factors(): outcome(Real, s, r) == (s, r)
  // for every r iff starter_silent(s).
  [[nodiscard]] virtual bool starter_silent(State s) {
    (void)s;
    return false;
  }
  [[nodiscard]] virtual bool omission_transparent() const { return false; }

  // Release hook for zero-count states (open universes only). Default: keep.
  virtual void release(State s) { (void)s; }
};

// Closed-universe adapter: a compiled RuleMatrix as a DynamicRuleSource.
// This is also the count-space form of the naive TW/T1..T3 simulator
// (sim/tw_naive.hpp): with identity omission reactions the per-class tables
// are exactly the faulty outcomes the naive wrapper realizes.
class MatrixRuleSource final : public DynamicRuleSource {
 public:
  explicit MatrixRuleSource(RuleMatrix rules) : rules_(std::move(rules)) {}

  [[nodiscard]] std::string describe() const override {
    return "matrix(" + model_name(rules_.model()) + ", " +
           rules_.protocol().name() + ")";
  }
  [[nodiscard]] Model model() const override { return rules_.model(); }
  [[nodiscard]] const Protocol& protocol() const override {
    return rules_.protocol();
  }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const override {
    return rules_.protocol_ptr();
  }
  [[nodiscard]] std::size_t universe_size() const override {
    return rules_.num_states();
  }
  [[nodiscard]] std::vector<State> intern_initial(
      const std::vector<State>& sim) override;
  [[nodiscard]] StatePair outcome(InteractionClass c, State s,
                                  State r) override {
    return rules_.outcome(c, s, r);
  }
  [[nodiscard]] State project(State s) const override { return s; }

  [[nodiscard]] const RuleMatrix& rules() const noexcept { return rules_; }

 private:
  RuleMatrix rules_;
};

}  // namespace ppfs

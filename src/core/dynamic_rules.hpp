// DynamicRuleSource: the open-universe generalization of RuleMatrix.
//
// A RuleMatrix (core/rule_matrix.hpp) is the *closed*-universe compiled form
// of "what an interaction does": every state is known up front, so the four
// per-class outcome tables are dense q x q arrays. The paper's simulators
// (§4) break that assumption — a simulator's wrapper state carries queues,
// debt lists and pairing records whose reachable set is unbounded a priori
// and only discovered while running. DynamicRuleSource is the lazily
// expanded counterpart: states live in a growing interned universe
// (StateUniverse) and per-class outcome rows are computed on first contact
// instead of precompiled, which is what lets the count-space batch engine
// (engine/batch/sim_batch_system.hpp) execute a *simulator* as if it were
// just another protocol.
//
// A source also declares structural facts the sparse engine exploits to
// keep leap sampling exact as new states appear:
//   * real_noop_factors(): the Real class is a no-op iff the starter is
//     "silent" (transmits nothing), independent of the reactor — the
//     one-way-simulator shape (SKnO). Changing weights then reduce to a
//     silent-population counter instead of an O(universe^2) scan.
//   * omission_transparent(): every omissive class is a global no-op
//     (reactor-side-only simulators: SID, naming), so omissive draws can
//     be tallied by binomial splitting without touching the configuration.
//   * open_universe(): states whose count returns to zero may be released
//     and their ids recycled (bounded-memory execution at n = 10^6).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/models.hpp"
#include "core/protocol.hpp"
#include "core/rule_matrix.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "util/audit.hpp"
#include "util/binio.hpp"
#include "util/group_probe.hpp"

namespace ppfs {

// One byte-level edit applied while deriving a successor encoding from a
// base encoding (StateUniverse::intern_patched). Offsets address the
// buffer *as edited so far*: edits are applied strictly in sequence, so a
// rule source lists them in layout order and accounts for earlier
// insertions/erasures itself (in practice SKnO's patches never overlap).
// `bytes` is borrowed, not owned — callers keep the payload alive for the
// duration of the intern_patched call only.
struct ByteEdit {
  enum class Op : std::uint8_t { Replace, Insert, Erase };
  Op op = Op::Replace;
  std::size_t offset = 0;
  std::size_t erase_len = 0;    // Erase only
  std::string_view bytes{};     // Replace / Insert payload

  [[nodiscard]] static ByteEdit replace(std::size_t offset,
                                        std::string_view bytes) {
    return {Op::Replace, offset, 0, bytes};
  }
  [[nodiscard]] static ByteEdit insert(std::size_t offset,
                                       std::string_view bytes) {
    return {Op::Insert, offset, 0, bytes};
  }
  [[nodiscard]] static ByteEdit erase(std::size_t offset, std::size_t len) {
    return {Op::Erase, offset, len, {}};
  }
};

// Interns canonical byte encodings of wrapper states into dense ids.
// Released ids are recycled through a free list so long open-universe runs
// hold memory proportional to the number of *live* states, not the number
// of states ever seen.
class StateUniverse {
 public:
  // Look up `bytes`, interning it if new. Returns the dense id.
  State intern(std::string_view bytes);

  // Intern the successor obtained by patching the encoding of live id
  // `base` with `edits` (applied in order into a reusable scratch buffer):
  // the delta-encoded successor path — a fire touches only the bytes that
  // change instead of re-serializing the whole record. Throws
  // std::out_of_range on an edit that falls outside the evolving buffer.
  State intern_patched(State base, std::span<const ByteEdit> edits);

  // The canonical encoding of a live id.
  [[nodiscard]] const std::string& encoding(State s) const;

  // Forget a live id and recycle it. The caller must guarantee nothing
  // references `s` anymore (the sparse engine releases only states whose
  // count is zero).
  void release(State s);

  // Ids allocated so far (live + free); valid ids are < capacity().
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t live() const noexcept {
    return slots_.size() - free_.size();
  }
  [[nodiscard]] bool is_live(State s) const {
    return s < slots_.size() && slots_[s] != nullptr;
  }

  // Wire intern/patch/GC instrumentation handles (obs/metrics.hpp); null
  // detaches. Purely observational — never changes interning behavior.
  void set_metrics(obs::MetricRegistry* reg);

  // Checkpoint round-trip: the live encodings (by id) plus the free-list
  // ORDER — intern() recycles free_.back() first, so a restored universe
  // must hand out the same ids to the same future encodings. The probe
  // table is NOT serialized: it is an index, rebuilt by rehash(), and its
  // layout (slot assignment, tombstones, growth timing) is invisible to
  // every caller — lookups return ids, not slots, and no Rng draw ever
  // depends on the table shape.
  void save_state(bin::Writer& w) const;
  void restore_state(bin::Reader& r);

  // Runtime-contract audit (util/audit.hpp), differential against a
  // reference map rebuilt from the live encodings: live/tombstone tallies
  // match the control bytes, every live id round-trips through its table
  // slot (tag, id, stored hash — the double-place bug class of the
  // intern() rehash path serves a dead id through exactly the stale slot
  // this catches), every FULL slot belongs to a live id, the free list
  // holds exactly the dead ids, and no two live ids share an encoding.
  // Cold code, always compiled; rule sources invoke it under
  // -DPPFS_AUDIT=ON. Throws AuditError.
  void audit_invariants(const char* who = "StateUniverse") const;

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  // Index: a SwissTable-style open-addressing table probed one SIMD group
  // at a time (util/group_probe.hpp). One control byte per slot — the
  // 7-bit upper hash tag for full slots, empty/deleted sentinels otherwise
  // — so a lookup broadcasts the probe tag, compares a whole cache-line
  // group of candidates at once, and touches ids_/the encoding only on tag
  // hits. Quadratic probing over groups; deletions leave tombstones that
  // the next load-factor rehash sweeps. This replaced a node-based
  // unordered_map: the intern probe is the residual hot-path cost of the
  // delta-successor architecture (every patched fire ends in one), and the
  // group probe turns its per-miss chain of node hops into one tag
  // broadcast per 16 slots.
  static constexpr std::size_t kNoSlot = ~static_cast<std::size_t>(0);

  [[nodiscard]] static std::uint64_t hash_bytes(std::string_view bytes) noexcept {
    return std::hash<std::string_view>{}(bytes);
  }
  [[nodiscard]] static std::uint8_t tag_of(std::uint64_t h) noexcept {
    return static_cast<std::uint8_t>(h & 0x7f);
  }
  [[nodiscard]] std::size_t home_group(std::uint64_t h) const noexcept {
    return static_cast<std::size_t>(h >> 7) & group_mask_;
  }
  [[nodiscard]] std::size_t table_slots() const noexcept { return ctrl_.size(); }
  // First empty-or-deleted slot along h's probe path (the insert position
  // after a confirmed miss or during rehash).
  [[nodiscard]] std::size_t find_free_slot(std::uint64_t h) const;
  void place(State id, std::size_t slot);
  void rehash(std::size_t groups);

  std::vector<std::uint8_t> ctrl_;  // 1 byte/slot; size = groups * kWidth
  std::vector<State> ids_;          // slot -> id, valid on full slots only
  std::size_t group_mask_ = 0;      // #groups - 1 (power of two)
  std::size_t full_ = 0;            // occupied slots
  std::size_t tombstones_ = 0;      // deleted slots awaiting a rehash

  // Ids own their encoding bytes on the heap (stable addresses across
  // table rehashes and slot growth); slot_of_ lets release() find the
  // table slot without re-probing.
  std::vector<std::unique_ptr<std::string>> slots_;
  std::vector<std::uint64_t> hash_;     // id -> full hash (rehash, no re-hash)
  std::vector<std::size_t> slot_of_;    // id -> table slot
  std::vector<State> free_;
  std::string scratch_;  // intern_patched working buffer, reused across calls

  obs::Counter* m_intern_new_ = nullptr;   // encodings first seen
  obs::Counter* m_intern_hit_ = nullptr;   // lookups that found a live id
  obs::Counter* m_patched_ = nullptr;      // delta-encode (patch) interns
  obs::Counter* m_released_ = nullptr;     // ids recycled (GC reclaim)
  obs::SampledTimer* m_time_intern_ = nullptr;
};

// Bounded LRU cache over (class, starter, reactor) -> successor pair, the
// hot-path shortcut of the count-space engine: a hit skips the rule
// source's decode -> core step -> re-serialize -> intern round trip
// entirely. Laid out as a set-associative open-addressing table (8-way
// sets, per-set LRU by access stamp) so a lookup is one cache line scan —
// the hot path runs millions of probes per second and a node-based map
// was measured to dominate it. Open universes recycle ids, so every id
// carries a generation that release bumps (OutcomeCache::invalidate,
// wired into DynamicRuleSource::release_state): entries are validated
// against the generations of all four ids they mention and go stale — and
// are dropped on touch or overwritten by set pressure — the moment any of
// them is released. No entry can therefore resurrect a recycled id.
class OutcomeCache {
 public:
  static constexpr std::size_t kWays = 8;

  // Capacity 0 disables (and clears) the cache; otherwise rounded up to a
  // power-of-two number of sets times kWays entries.
  void set_capacity(std::size_t capacity);

  // Drop every entry (and reset generations/stats) but keep the capacity:
  // the restore-from-checkpoint path. Caches are distribution- and
  // trajectory-invisible (a cold miss re-derives the outcome from live
  // universe state and re-interns only ids that already exist), so a
  // restored run starts cold without perturbing byte-identity.
  void clear();
  [[nodiscard]] bool enabled() const noexcept { return !keys_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return keys_.size(); }

  // Returns the cached successor pair, or nullptr on miss/stale. The
  // pointer is invalidated by the next non-const call.
  [[nodiscard]] const StatePair* find(InteractionClass c, State s, State r);
  void insert(InteractionClass c, State s, State r, StatePair out);

  // Raw-key variant for source-internal caches (e.g. SKnO's (transmitted
  // token, reactor) table): the caller packs any non-zero key; `in` is
  // the input state validated alongside both outcome states.
  [[nodiscard]] const StatePair* find_raw(std::uint64_t key, State in);
  void insert_raw(std::uint64_t key, State in, StatePair out);

  // Mark every entry mentioning `s` (as pre- or post-state) stale.
  void invalidate(State s);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;   // live entries overwritten by set pressure
    std::uint64_t stale_drops = 0; // generation mismatches on touch
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Runtime-contract audit (util/audit.hpp): no currently-valid entry —
  // one whose stored generation truncations all match the live
  // generations — may reference a dead output id. A release that skipped
  // invalidate() leaves exactly such an entry behind, ready to resurrect
  // a recycled id. `live` is the owner's liveness predicate. Cold code,
  // always compiled. Throws AuditError.
  void audit_live_outputs(const char* who,
                          const std::function<bool(State)>& live) const;

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  // 2-bit class | 31-bit starter | 31-bit reactor, biased by 1 so that 0
  // means "empty slot"; ids >= 2^31 (never reached in practice) simply
  // bypass the cache.
  [[nodiscard]] static std::uint64_t key(InteractionClass c, State s, State r) {
    if ((s | r) >> 31 != 0) return 0;
    return ((static_cast<std::uint64_t>(c) << 62) |
            (static_cast<std::uint64_t>(s) << 31) | r) +
           1;
  }
  [[nodiscard]] std::size_t set_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           set_mask_;
  }
  [[nodiscard]] std::uint16_t gen(State s) const {
    return s < gen_.size() ? static_cast<std::uint16_t>(gen_[s]) : 0;
  }

  // Keys and payloads live in parallel arrays: a lookup scans one
  // 64-byte line of keys and touches the payload line only on a key
  // match.
  [[nodiscard]] const StatePair* find_validated(std::uint64_t k, State a,
                                                State b);
  void insert_validated(std::uint64_t k, State a, State b, StatePair out);

  // Payloads store 16-bit generation truncations to keep the table small
  // (latency on the hot path is bounded by how much of it stays in L2).
  // Full generations live in gen_; whenever an id's generation crosses a
  // 2^16 boundary (its 65536th release — effectively never) the whole
  // table is cleared, so no entry can survive a truncated-generation
  // wrap-around and validate falsely.
  struct Payload {
    StatePair out{};
    std::uint16_t g[4] = {0, 0, 0, 0};  // gens of a, b, out.starter, out.reactor
    std::uint32_t stamp = 0;            // access clock, per-set LRU order
  };

  std::vector<std::uint64_t> keys_;  // 0 = empty
  std::vector<Payload> payload_;
  std::size_t set_mask_ = 0;  // (#sets - 1); #sets = keys_.size() / kWays
  std::uint32_t clock_ = 0;
  std::vector<std::uint32_t> gen_;  // full generations, truncated into payloads
  Stats stats_;
};

// The lazily-expanded rule source both engines can execute. States are ids
// in an interned universe owned by the source; `outcome` discovers rows on
// first contact. Implementations for the paper's simulators live in
// sim/sim_rules.hpp; MatrixRuleSource below adapts any compiled RuleMatrix
// (closed universes run through the same sparse engine unchanged).
class DynamicRuleSource {
 public:
  virtual ~DynamicRuleSource() = default;

  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual Model model() const = 0;

  // The simulated protocol: projection target, output interpretation, and
  // the state space convergence probes run over.
  [[nodiscard]] virtual const Protocol& protocol() const = 0;
  [[nodiscard]] virtual std::shared_ptr<const Protocol> protocol_ptr() const = 0;

  // Ids handed out so far; every state mentioned by outcome()/project() is
  // < universe_size() at the time it is returned.
  [[nodiscard]] virtual std::size_t universe_size() const = 0;

  // Intern the wrapper states of an initial population whose simulated
  // states are `sim`; out[i] is agent i's wrapper state. (Simulators with
  // per-agent identities — SID ids, naming — map equal simulated states to
  // *distinct* wrapper states; exchangeable simulators collapse them.)
  [[nodiscard]] virtual std::vector<State> intern_initial(
      const std::vector<State>& sim) = 0;

  // Post-states of a class-`c` interaction on wrapper pre-states (s, r).
  // May intern new states (growing the universe).
  [[nodiscard]] virtual StatePair outcome(InteractionClass c, State s,
                                          State r) = 0;

  // Cached front door (the one the count-space engine calls): consult the
  // bounded LRU outcome cache, fall through to outcome() on a miss. A hit
  // returns successor ids that are guaranteed live — release_state bumps
  // the generation of a released id, so entries mentioning it can never be
  // served again.
  [[nodiscard]] StatePair outcome_cached(InteractionClass c, State s, State r) {
    if (!cache_.enabled()) return outcome(c, s, r);
    if (const StatePair* hit = cache_.find(c, s, r)) return *hit;
    PPFS_TIMER_BEGIN(t0, m_time_miss_);
    const StatePair out = outcome(c, s, r);
    PPFS_TIMER_END(t0, m_time_miss_);
    cache_.insert(c, s, r, out);
    return out;
  }

  // Capacity 0 disables the cache (the engine default enables it; the
  // equivalence suites run both ways — the cache must be invisible in
  // distribution).
  void set_outcome_cache_capacity(std::size_t capacity) {
    cache_.set_capacity(capacity);
  }
  [[nodiscard]] const OutcomeCache::Stats& outcome_cache_stats() const noexcept {
    return cache_.stats();
  }

  // --- observability --------------------------------------------------------
  // Wire hot-path instrumentation (outcome-cache miss timer, GC timer,
  // plus whatever the concrete source instruments via wire_metrics — its
  // own StateUniverse, typically). Null detaches. Purely observational.
  void set_metrics(obs::MetricRegistry* reg) {
    m_time_miss_ = reg ? &reg->timer("time.outcome_miss") : nullptr;
    m_time_gc_ = reg ? &reg->timer("time.gc", 4) : nullptr;
    wire_metrics(reg);
  }
  // Push pull-style statistics (the outcome-cache Stats; overrides add
  // source-internal caches) into `reg` as absolute counters. Called at
  // snapshot/sync time only, so tracking them costs the hot path nothing.
  virtual void export_metrics(obs::MetricRegistry& reg) const {
    const OutcomeCache::Stats& s = cache_.stats();
    reg.counter("cache.outcome.hits").set(s.hits);
    reg.counter("cache.outcome.misses").set(s.misses);
    reg.counter("cache.outcome.evictions").set(s.evictions);
    reg.counter("cache.outcome.stale_drops").set(s.stale_drops);
  }

  [[nodiscard]] bool is_noop(InteractionClass c, State s, State r) {
    const StatePair out = outcome_cached(c, s, r);
    return out.starter == s && out.reactor == r;
  }

  // pi_P: the simulated-protocol state a wrapper state projects to.
  [[nodiscard]] virtual State project(State s) const = 0;

  // --- structural hints (see file header) -----------------------------------
  [[nodiscard]] virtual bool open_universe() const { return false; }
  [[nodiscard]] virtual bool real_noop_factors() const { return false; }
  // Meaningful only when real_noop_factors(): outcome(Real, s, r) == (s, r)
  // for every r iff starter_silent(s).
  [[nodiscard]] virtual bool starter_silent(State s) {
    (void)s;
    return false;
  }
  [[nodiscard]] virtual bool omission_transparent() const { return false; }
  // True when the source maintains internal successor caches (e.g. SKnO's
  // per-side g/receive tables) that make the engine-level (class,
  // starter, reactor) outcome cache redundant: the engine then leaves the
  // outer cache off by default (an explicit capacity still wins).
  [[nodiscard]] virtual bool self_caching() const { return false; }
  // Estimated cost of one native/agent-space value step divided by the
  // cost of one count-space cached fire — the regime monitor's fire
  // signal (engine/batch/regime.hpp): count space is only favored while
  // the windowed fire fraction stays at/below this ratio. Sources whose
  // value step is expensive relative to a cached fire (SKnO's token-queue
  // machinery) return > 1, making the signal inert; sources whose step is
  // a trivial struct update next to a patched intern (SID/naming) return
  // < 1, conceding fire-heavy windows to agent space. The default is
  // inert.
  [[nodiscard]] virtual double fire_cost_ratio() const { return 8.0; }

  // Runtime-contract audit (util/audit.hpp): re-check source-internal
  // invariants — the interning universe's table consistency and the
  // generation validity of every cache (no valid row referencing a dead
  // id). Default: nothing (a closed universe has no recycled ids to
  // resurrect). Open-universe overrides audit their StateUniverse and
  // call audit_outcome_cache() with its liveness predicate. Cold code,
  // always compiled; SimBatchSystem folds this into its slice-boundary
  // audit under -DPPFS_AUDIT=ON. Throws AuditError.
  virtual void audit_invariants() const {}

  // --- checkpoint/restore ---------------------------------------------------
  // Sources that can serialize their mutable state (interned universe +
  // whatever per-source bookkeeping exists beyond caches) opt in here.
  // Caches and memo tables are NEVER serialized: restore_checkpoint clears
  // them and correctness rests on the cache-invisibility contract (a cold
  // miss recomputes the same outcome from the same live state, and every
  // id it interns is already live, so intern() degenerates to a lookup).
  [[nodiscard]] virtual bool checkpointable() const { return false; }
  void save_checkpoint(bin::Writer& w) const {
    if (!checkpointable())
      throw std::logic_error("DynamicRuleSource: source is not checkpointable");
    do_save_source(w);
  }
  void restore_checkpoint(bin::Reader& r) {
    if (!checkpointable())
      throw std::logic_error("DynamicRuleSource: source is not checkpointable");
    cache_.clear();
    do_restore_source(r);
  }

  // Release front door for zero-count states (open universes only): evicts
  // outcome-cache rows mentioning `s` — ids recycle, so this is the
  // invalidation point the cache's correctness rests on — then hands the
  // id back to the source.
  void release_state(State s) {
    PPFS_TIMER_BEGIN(t0, m_time_gc_);
    cache_.invalidate(s);
    do_release(s);
    PPFS_TIMER_END(t0, m_time_gc_);
  }

 protected:
  // Audit the engine-level outcome cache against the owner's liveness
  // predicate (see OutcomeCache::audit_live_outputs).
  void audit_outcome_cache(const char* who,
                           const std::function<bool(State)>& live) const {
    cache_.audit_live_outputs(who, live);
  }

  // Source-specific release (recycle the interned id). Default: keep.
  virtual void do_release(State s) { (void)s; }
  // Source-specific instrumentation wiring (e.g. the source's own
  // StateUniverse). Default: nothing.
  virtual void wire_metrics(obs::MetricRegistry* reg) { (void)reg; }
  // Source-specific checkpoint payload; called only when checkpointable().
  virtual void do_save_source(bin::Writer& w) const { (void)w; }
  virtual void do_restore_source(bin::Reader& r) { (void)r; }

 private:
  OutcomeCache cache_;
  obs::SampledTimer* m_time_miss_ = nullptr;
  obs::SampledTimer* m_time_gc_ = nullptr;
};

// Closed-universe adapter: a compiled RuleMatrix as a DynamicRuleSource.
// This is also the count-space form of the naive TW/T1..T3 simulator
// (sim/tw_naive.hpp): with identity omission reactions the per-class tables
// are exactly the faulty outcomes the naive wrapper realizes.
class MatrixRuleSource final : public DynamicRuleSource {
 public:
  explicit MatrixRuleSource(RuleMatrix rules) : rules_(std::move(rules)) {}

  [[nodiscard]] std::string describe() const override {
    return "matrix(" + model_name(rules_.model()) + ", " +
           rules_.protocol().name() + ")";
  }
  [[nodiscard]] Model model() const override { return rules_.model(); }
  [[nodiscard]] const Protocol& protocol() const override {
    return rules_.protocol();
  }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const override {
    return rules_.protocol_ptr();
  }
  [[nodiscard]] std::size_t universe_size() const override {
    return rules_.num_states();
  }
  [[nodiscard]] std::vector<State> intern_initial(
      const std::vector<State>& sim) override;
  [[nodiscard]] StatePair outcome(InteractionClass c, State s,
                                  State r) override {
    return rules_.outcome(c, s, r);
  }
  [[nodiscard]] State project(State s) const override { return s; }

  // Closed universe, no mutable source state: the checkpoint payload is
  // empty and restore is a cache clear.
  [[nodiscard]] bool checkpointable() const override { return true; }

  [[nodiscard]] const RuleMatrix& rules() const noexcept { return rules_; }

 private:
  RuleMatrix rules_;
};

}  // namespace ppfs

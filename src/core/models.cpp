#include "core/models.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace ppfs {

std::string model_name(Model m) {
  switch (m) {
    case Model::TW: return "TW";
    case Model::T1: return "T1";
    case Model::T2: return "T2";
    case Model::T3: return "T3";
    case Model::IT: return "IT";
    case Model::IO: return "IO";
    case Model::I1: return "I1";
    case Model::I2: return "I2";
    case Model::I3: return "I3";
    case Model::I4: return "I4";
  }
  throw std::invalid_argument("model_name: bad model");
}

ModelCaps model_caps(Model m) {
  // Fields: one_way, omissive, starter_acts, starter_detects_omission,
  //         reactor_acts_on_omission, reactor_detects_omission,
  //         reactor_applies_g_on_omission.
  switch (m) {
    case Model::TW: return {false, false, true, false, false, false, false};
    case Model::T1: return {false, true, true, false, true, false, false};
    case Model::T2: return {false, true, true, true, true, false, false};
    case Model::T3: return {false, true, true, true, true, true, false};
    case Model::IT: return {true, false, true, false, false, false, false};
    case Model::IO: return {true, false, false, false, false, false, false};
    case Model::I1: return {true, true, true, false, false, false, false};
    case Model::I2: return {true, true, true, false, true, false, true};
    case Model::I3: return {true, true, true, false, true, true, false};
    case Model::I4: return {true, true, true, true, true, false, true};
  }
  throw std::invalid_argument("model_caps: bad model");
}

Model omissive_closure(Model m) {
  switch (m) {
    case Model::TW: return Model::T1;
    case Model::IT:
    case Model::IO: return Model::I1;
    default: return m;
  }
}

std::string arrow_reason_name(ArrowReason r) {
  switch (r) {
    case ArrowReason::Specialization: return "specialization";
    case ArrowReason::OmissionAvoidance: return "omission-avoidance";
    case ArrowReason::NoOpOmissions: return "no-op omissions";
  }
  throw std::invalid_argument("arrow_reason_name");
}

const std::vector<ModelArrow>& model_arrows() {
  static const std::vector<ModelArrow> arrows = {
      {Model::T1, Model::T2, ArrowReason::Specialization, "T1 = T2 with o = id"},
      {Model::T2, Model::T3, ArrowReason::Specialization, "T2 = T3 with h = id"},
      {Model::T3, Model::TW, ArrowReason::OmissionAvoidance,
       "TW = T3 without the omission adversary"},
      {Model::IT, Model::TW, ArrowReason::Specialization,
       "IT = TW with fs(s,r) := g(s)"},
      {Model::IO, Model::IT, ArrowReason::Specialization, "IO = IT with g = id"},
      {Model::I1, Model::I3, ArrowReason::Specialization, "I1 = I3 with h = id"},
      {Model::I2, Model::I3, ArrowReason::Specialization, "I2 = I3 with h = g"},
      {Model::I2, Model::I4, ArrowReason::Specialization, "I2 = I4 with o = g"},
      {Model::I3, Model::T3, ArrowReason::Specialization,
       "I3 = T3 with fs(s,r) := g(s), o := g"},
      {Model::I3, Model::IT, ArrowReason::OmissionAvoidance,
       "IT = I3 without the omission adversary"},
      {Model::I4, Model::IT, ArrowReason::OmissionAvoidance,
       "IT = I4 without the omission adversary"},
      {Model::IO, Model::I1, ArrowReason::NoOpOmissions,
       "in I1 with g := id every omissive outcome is a no-op"},
      {Model::IO, Model::I2, ArrowReason::NoOpOmissions,
       "in I2 with g := id every omissive outcome is a no-op"},
      {Model::IO, Model::I3, ArrowReason::NoOpOmissions,
       "in I3 with g := id, h := id every omissive outcome is a no-op"},
      {Model::IO, Model::I4, ArrowReason::NoOpOmissions,
       "in I4 with g := id, o := id every omissive outcome is a no-op"},
  };
  return arrows;
}

namespace {

// A concrete assignment of the free transition functions over a state
// space of size q. Unary functions are tables of length q, binary ones of
// length q*q (row = starter state).
struct FnSet {
  std::size_t q = 0;
  std::vector<State> g, o, h;   // unary
  std::vector<State> fs, fr, f; // binary

  [[nodiscard]] State bin(const std::vector<State>& t, State s, State r) const {
    return t[static_cast<std::size_t>(s) * q + r];
  }
};

FnSet sample_fns(std::size_t q, Rng& rng) {
  FnSet fns;
  fns.q = q;
  auto unary = [&] {
    std::vector<State> t(q);
    for (auto& v : t) v = static_cast<State>(rng.below(q));
    return t;
  };
  auto binary = [&] {
    std::vector<State> t(q * q);
    for (auto& v : t) v = static_cast<State>(rng.below(q));
    return t;
  };
  fns.g = unary();
  fns.o = unary();
  fns.h = unary();
  fns.fs = binary();
  fns.fr = binary();
  fns.f = binary();
  return fns;
}

std::vector<State> identity_fn(std::size_t q) {
  std::vector<State> t(q);
  for (State i = 0; i < q; ++i) t[i] = i;
  return t;
}

std::vector<State> lift_unary_to_binary(const std::vector<State>& u, std::size_t q) {
  std::vector<State> t(q * q);
  for (State s = 0; s < q; ++s)
    for (State r = 0; r < q; ++r) t[static_cast<std::size_t>(s) * q + r] = u[s];
  return t;
}

// The full transition relation of model m under assignment fns, evaluated
// at the ordered state pair (s, r): the set of outcomes the adversary may
// choose from (first element is always the non-omissive outcome).
std::vector<StatePair> outcomes(Model m, const FnSet& fns, State s, State r) {
  std::vector<StatePair> out;
  switch (m) {
    case Model::TW:
      out = {{fns.bin(fns.fs, s, r), fns.bin(fns.fr, s, r)}};
      break;
    case Model::T1: {
      const State a = fns.bin(fns.fs, s, r), b = fns.bin(fns.fr, s, r);
      out = {{a, b}, {s, b}, {a, r}, {s, r}};
      break;
    }
    case Model::T2: {
      const State a = fns.bin(fns.fs, s, r), b = fns.bin(fns.fr, s, r);
      out = {{a, b}, {fns.o[s], b}, {a, r}, {fns.o[s], r}};
      break;
    }
    case Model::T3: {
      const State a = fns.bin(fns.fs, s, r), b = fns.bin(fns.fr, s, r);
      out = {{a, b}, {fns.o[s], b}, {a, fns.h[r]}, {fns.o[s], fns.h[r]}};
      break;
    }
    case Model::IT:
      out = {{fns.g[s], fns.bin(fns.f, s, r)}};
      break;
    case Model::IO:
      out = {{s, fns.bin(fns.f, s, r)}};
      break;
    case Model::I1:
      out = {{fns.g[s], fns.bin(fns.f, s, r)}, {fns.g[s], r}};
      break;
    case Model::I2:
      out = {{fns.g[s], fns.bin(fns.f, s, r)}, {fns.g[s], fns.g[r]}};
      break;
    case Model::I3:
      out = {{fns.g[s], fns.bin(fns.f, s, r)}, {fns.g[s], fns.h[r]}};
      break;
    case Model::I4:
      out = {{fns.g[s], fns.bin(fns.f, s, r)}, {fns.o[s], fns.g[r]}};
      break;
  }
  return out;
}

bool same_outcome_set(std::vector<StatePair> a, std::vector<StatePair> b) {
  auto key = [](const StatePair& p) {
    return (static_cast<std::uint64_t>(p.starter) << 32) | p.reactor;
  };
  auto lt = [&](const StatePair& x, const StatePair& y) { return key(x) < key(y); };
  std::sort(a.begin(), a.end(), lt);
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end(), lt);
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return a == b;
}

bool subset_of(const std::vector<StatePair>& a, const std::vector<StatePair>& b) {
  for (const auto& x : a) {
    if (std::find(b.begin(), b.end(), x) == b.end()) return false;
  }
  return true;
}

// Build the destination-model function assignment realizing the documented
// embedding for a specialization arrow.
FnSet embed(const ModelArrow& arrow, const FnSet& src) {
  FnSet dst = src;
  const std::size_t q = src.q;
  if (arrow.src == Model::T1 && arrow.dst == Model::T2) {
    dst.o = identity_fn(q);
  } else if (arrow.src == Model::T2 && arrow.dst == Model::T3) {
    dst.h = identity_fn(q);
  } else if (arrow.src == Model::IT && arrow.dst == Model::TW) {
    dst.fs = lift_unary_to_binary(src.g, q);
    dst.fr = src.f;
  } else if (arrow.src == Model::IO && arrow.dst == Model::IT) {
    dst.g = identity_fn(q);
  } else if (arrow.src == Model::I1 && arrow.dst == Model::I3) {
    dst.h = identity_fn(q);
  } else if (arrow.src == Model::I2 && arrow.dst == Model::I3) {
    dst.h = src.g;
  } else if (arrow.src == Model::I2 && arrow.dst == Model::I4) {
    dst.o = src.g;
  } else if (arrow.src == Model::I3 && arrow.dst == Model::T3) {
    dst.fs = lift_unary_to_binary(src.g, q);
    dst.fr = src.f;
    dst.o = src.g;
    dst.h = src.h;
  } else {
    throw std::logic_error("embed: no embedding recorded for this arrow");
  }
  return dst;
}

// Source-model functions whose source relation matches what the embedding
// constrains. For arrows whose src is a restricted form, the *source*
// instance must already obey the restriction (e.g. a T1 instance has
// o = h = id by definition, which `outcomes` hard-codes).
FnSet normalize_src(const ModelArrow& arrow, FnSet fns) {
  if (arrow.src == Model::IO) fns.g = identity_fn(fns.q);
  return fns;
}

}  // namespace

bool verify_arrow(const ModelArrow& arrow, std::size_t q, std::size_t samples,
                  std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t it = 0; it < samples; ++it) {
    FnSet src = normalize_src(arrow, sample_fns(q, rng));
    switch (arrow.reason) {
      case ArrowReason::Specialization: {
        const FnSet dst = embed(arrow, src);
        for (State s = 0; s < q; ++s)
          for (State r = 0; r < q; ++r) {
            if (!same_outcome_set(outcomes(arrow.src, src, s, r),
                                  outcomes(arrow.dst, dst, s, r)))
              return false;
          }
        break;
      }
      case ArrowReason::OmissionAvoidance: {
        // dst is the src model stripped of omissions: its (unique,
        // non-omissive) outcome must be available in the src relation.
        for (State s = 0; s < q; ++s)
          for (State r = 0; r < q; ++r) {
            if (!subset_of(outcomes(arrow.dst, src, s, r),
                           outcomes(arrow.src, src, s, r)))
              return false;
          }
        break;
      }
      case ArrowReason::NoOpOmissions: {
        // The IO protocol f embeds into the omissive dst with all free
        // unary functions set to identity; every omissive outcome must
        // then be a global no-op and the normal outcome must match IO's.
        FnSet dst = src;
        dst.g = identity_fn(q);
        dst.o = identity_fn(q);
        dst.h = identity_fn(q);
        for (State s = 0; s < q; ++s)
          for (State r = 0; r < q; ++r) {
            const auto io = outcomes(Model::IO, src, s, r);
            const auto om = outcomes(arrow.dst, dst, s, r);
            if (om.empty() || om.front() != io.front()) return false;
            for (std::size_t k = 1; k < om.size(); ++k) {
              if (om[k] != StatePair{s, r}) return false;
            }
          }
        break;
      }
    }
  }
  return true;
}

}  // namespace ppfs

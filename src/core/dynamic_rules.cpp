#include "core/dynamic_rules.hpp"

#include <stdexcept>

namespace ppfs {

State StateUniverse::intern(std::string_view bytes) {
  if (auto it = index_.find(bytes); it != index_.end()) return it->second;
  State id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    if (slots_.size() >= static_cast<std::size_t>(kNoState))
      throw std::length_error("StateUniverse: id space exhausted");
    id = static_cast<State>(slots_.size());
    slots_.push_back(nullptr);
  }
  const auto [it, inserted] = index_.emplace(std::string(bytes), id);
  (void)inserted;
  slots_[id] = &it->first;
  return id;
}

const std::string& StateUniverse::encoding(State s) const {
  if (!is_live(s))
    throw std::out_of_range("StateUniverse: dead or out-of-range id");
  return *slots_[s];
}

void StateUniverse::release(State s) {
  if (!is_live(s))
    throw std::out_of_range("StateUniverse: releasing dead id");
  index_.erase(*slots_[s]);
  slots_[s] = nullptr;
  free_.push_back(s);
}

std::vector<State> MatrixRuleSource::intern_initial(
    const std::vector<State>& sim) {
  for (State q : sim) {
    if (q >= rules_.num_states())
      throw std::invalid_argument(
          "MatrixRuleSource: initial state out of range");
  }
  return sim;
}

}  // namespace ppfs

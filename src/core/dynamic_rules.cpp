#include "core/dynamic_rules.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

namespace ppfs {

void StateUniverse::set_metrics(obs::MetricRegistry* reg) {
  m_intern_new_ = reg ? &reg->counter("universe.intern_new") : nullptr;
  m_intern_hit_ = reg ? &reg->counter("universe.intern_hit") : nullptr;
  m_patched_ = reg ? &reg->counter("universe.intern_patched") : nullptr;
  m_released_ = reg ? &reg->counter("universe.released") : nullptr;
  m_time_intern_ = reg ? &reg->timer("time.intern") : nullptr;
}

// --- StateUniverse group-probe index ----------------------------------------
//
// Probe sequence: home group from the upper hash bits, then quadratic
// steps (g += 1, 2, 3, ... mod #groups) — with a power-of-two group count
// the triangular increments visit every group, and the load-factor bound
// below guarantees an empty slot terminates every probe. A lookup stops at
// the first group containing a truly-empty slot (a deleted slot means the
// key could have been pushed past it, so probing continues); an insert
// reuses the first tombstone seen on the way.

std::size_t StateUniverse::find_free_slot(std::uint64_t h) const {
  constexpr std::size_t kW = simd::ProbeGroup::kWidth;
  std::size_t g = home_group(h);
  for (std::size_t step = 0;; ++step) {
    const simd::ProbeGroup grp(ctrl_.data() + g * kW);
    if (auto m = grp.match_empty_or_deleted(); m.any())
      return g * kW + m.first();
    g = (g + step + 1) & group_mask_;
  }
}

void StateUniverse::place(State id, std::size_t slot) {
  ctrl_[slot] = tag_of(hash_[id]);
  ids_[slot] = id;
  slot_of_[id] = slot;
  ++full_;
}

void StateUniverse::rehash(std::size_t groups) {
  constexpr std::size_t kW = simd::ProbeGroup::kWidth;
  ctrl_.assign(groups * kW, simd::kCtrlEmpty);
  ids_.assign(groups * kW, 0);
  group_mask_ = groups - 1;
  full_ = 0;
  tombstones_ = 0;
  for (std::size_t id = 0; id < slots_.size(); ++id)
    if (slots_[id]) place(static_cast<State>(id), find_free_slot(hash_[id]));
}

State StateUniverse::intern(std::string_view bytes) {
  constexpr std::size_t kW = simd::ProbeGroup::kWidth;
  if (ctrl_.empty()) rehash(64 / kW);  // lazy init: 64 slots
  const std::uint64_t h = hash_bytes(bytes);
  const std::uint8_t tag = tag_of(h);
  std::size_t g = home_group(h);
  std::size_t insert_slot = kNoSlot;
  for (std::size_t step = 0;; ++step) {
    const simd::ProbeGroup grp(ctrl_.data() + g * kW);
    for (auto m = grp.match(tag); m.any(); m.pop()) {
      const State id = ids_[g * kW + m.first()];
      if (*slots_[id] == bytes) {
        PPFS_METRIC(m_intern_hit_, add());
        return id;
      }
    }
    if (auto m = grp.match_empty_or_deleted(); m.any()) {
      if (insert_slot == kNoSlot) insert_slot = g * kW + m.first();
      if (grp.match_empty().any()) break;  // miss confirmed
    }
    g = (g + step + 1) & group_mask_;
  }
  PPFS_METRIC(m_intern_new_, add());
  PPFS_TIMER_BEGIN(t0, m_time_intern_);
  State id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    if (slots_.size() >= static_cast<std::size_t>(kNoState))
      throw std::length_error("StateUniverse: id space exhausted");
    id = static_cast<State>(slots_.size());
    slots_.emplace_back();
    hash_.push_back(0);
    slot_of_.push_back(kNoSlot);
  }
  hash_[id] = h;
  if (ctrl_[insert_slot] == simd::kCtrlDeleted) {
    --tombstones_;  // tombstone reuse keeps the load factor flat
  } else if ((full_ + tombstones_ + 1) * 8 > table_slots() * 7) {
    // Load (live + tombstones) crossing 7/8: grow when genuinely full,
    // otherwise rehash in place to sweep tombstones. The new id's slots_
    // entry MUST still be null here: rehash() re-places every id with a
    // non-null encoding, and a premature assignment would get the id
    // placed twice (once by rehash, once below) — the stale duplicate
    // slot would outlive a later release() and serve a dead id.
    const std::size_t groups = group_mask_ + 1;
    rehash(full_ * 8 > table_slots() * 5 ? groups * 2 : groups);
    insert_slot = find_free_slot(h);
  }
  slots_[id] = std::make_unique<std::string>(bytes);
  place(id, insert_slot);
  PPFS_TIMER_END(t0, m_time_intern_);
  return id;
}

State StateUniverse::intern_patched(State base,
                                    std::span<const ByteEdit> edits) {
  PPFS_METRIC(m_patched_, add());
  scratch_ = encoding(base);  // throws on a dead id
  for (const ByteEdit& e : edits) {
    switch (e.op) {
      case ByteEdit::Op::Replace:
        if (e.offset + e.bytes.size() > scratch_.size())
          throw std::out_of_range("intern_patched: replace past the end");
        scratch_.replace(e.offset, e.bytes.size(), e.bytes);
        break;
      case ByteEdit::Op::Insert:
        if (e.offset > scratch_.size())
          throw std::out_of_range("intern_patched: insert past the end");
        scratch_.insert(e.offset, e.bytes);
        break;
      case ByteEdit::Op::Erase:
        if (e.offset + e.erase_len > scratch_.size())
          throw std::out_of_range("intern_patched: erase past the end");
        scratch_.erase(e.offset, e.erase_len);
        break;
    }
  }
  return intern(scratch_);
}

const std::string& StateUniverse::encoding(State s) const {
  if (!is_live(s))
    throw std::out_of_range("StateUniverse: dead or out-of-range id");
  return *slots_[s];
}

void StateUniverse::release(State s) {
  if (!is_live(s))
    throw std::out_of_range("StateUniverse: releasing dead id");
  const std::size_t slot = slot_of_[s];
  ctrl_[slot] = simd::kCtrlDeleted;
  ++tombstones_;
  --full_;
  slots_[s].reset();
  free_.push_back(s);
  PPFS_METRIC(m_released_, add());
}

void StateUniverse::save_state(bin::Writer& w) const {
  w.var(slots_.size());
  for (const auto& slot : slots_) {
    w.u8(slot ? 1 : 0);
    if (slot) w.str(*slot);
  }
  // The free-list ORDER is load-bearing: intern() recycles free_.back()
  // first, so future encodings must receive the same recycled ids.
  w.var(free_.size());
  for (const State s : free_) w.var(s);
}

void StateUniverse::restore_state(bin::Reader& r) {
  const std::size_t cap = r.var();
  slots_.clear();
  slots_.resize(cap);
  hash_.assign(cap, 0);
  slot_of_.assign(cap, kNoSlot);
  for (std::size_t id = 0; id < cap; ++id) {
    if (r.u8()) {
      slots_[id] = std::make_unique<std::string>(r.str());
      hash_[id] = hash_bytes(*slots_[id]);
    }
  }
  const std::size_t nfree = r.var();
  free_.resize(nfree);
  for (auto& f : free_) f = static_cast<State>(r.var());
  scratch_.clear();
  if (cap == 0) {
    // Match a freshly-constructed universe: the table lazy-inits on the
    // first intern.
    ctrl_.clear();
    ids_.clear();
    group_mask_ = 0;
    full_ = 0;
    tombstones_ = 0;
    return;
  }
  // Rebuild the probe table at a size under the grow threshold for the
  // live count; layout and growth timing are invisible to callers.
  constexpr std::size_t kW = simd::ProbeGroup::kWidth;
  std::size_t groups = 64 / kW;
  const std::size_t live_n = cap - nfree;
  while (live_n * 8 > groups * kW * 5) groups *= 2;
  rehash(groups);
}

void StateUniverse::audit_invariants(const char* who) const {
  // Tallies first: the control bytes are the ground truth the SIMD probes
  // run over, so full_/tombstones_ drifting from them corrupts both the
  // load-factor bound and every match loop.
  std::size_t full = 0;
  std::size_t deleted = 0;
  for (const std::uint8_t c : ctrl_) {
    if (c == simd::kCtrlEmpty) continue;
    if (c == simd::kCtrlDeleted) ++deleted;
    else ++full;
  }
  audit::check(full == full_, who, "full_ matches occupied control bytes",
               audit::expected_got(full, full_));
  audit::check(deleted == tombstones_, who,
               "tombstones_ matches deleted control bytes",
               audit::expected_got(deleted, tombstones_));

  // Differential reference map over the live encodings: every live id
  // must round-trip through its recorded slot, and no two live ids may
  // share an encoding (a duplicate means some lookup path can return a
  // stale — possibly later-released — id for live bytes).
  std::size_t live_ids = 0;
  std::unordered_map<std::string_view, State> ref;
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if (!slots_[id]) continue;
    ++live_ids;
    const auto [it, inserted] =
        ref.emplace(std::string_view(*slots_[id]), static_cast<State>(id));
    audit::check(inserted, who, "live encodings are unique",
                 "ids " + std::to_string(it->second) + " and " +
                     std::to_string(id) + " share an encoding");
    audit::check(hash_[id] == hash_bytes(*slots_[id]), who,
                 "stored hash matches the encoding", "id " + std::to_string(id));
    const std::size_t slot = slot_of_[id];
    audit::check(slot < ctrl_.size(), who, "live id has a valid table slot",
                 "id " + std::to_string(id));
    audit::check(ctrl_[slot] == tag_of(hash_[id]), who,
                 "slot control byte carries the id's tag",
                 "id " + std::to_string(id));
    audit::check(ids_[slot] == static_cast<State>(id), who,
                 "table slot points back at the id",
                 "id " + std::to_string(id) + ", slot " + std::to_string(slot));
  }
  audit::check(live_ids == full_, who, "live ids match occupied slots",
               audit::expected_got(live_ids, full_));

  // Every FULL slot must belong to a live id whose recorded slot is that
  // slot — the stale-duplicate-slot shape of the double-place bug class
  // (see the rehash comment in intern()): a second FULL slot for the same
  // id passes every per-id check above but fails here.
  for (std::size_t slot = 0; slot < ctrl_.size(); ++slot) {
    if (ctrl_[slot] == simd::kCtrlEmpty || ctrl_[slot] == simd::kCtrlDeleted)
      continue;
    const State id = ids_[slot];
    audit::check(is_live(id), who, "FULL slot references a live id",
                 "slot " + std::to_string(slot) + ", id " + std::to_string(id));
    audit::check(slot_of_[id] == slot, who,
                 "FULL slot is the id's recorded slot",
                 "slot " + std::to_string(slot) + ", id " + std::to_string(id));
  }

  // The free list holds exactly the dead ids, each once.
  std::vector<std::uint8_t> freed(slots_.size(), 0);
  for (const State s : free_) {
    audit::check(s < slots_.size() && !slots_[s], who,
                 "free-list entry is a dead id", "id " + std::to_string(s));
    audit::check(!freed[s]++, who, "free-list entries are unique",
                 "id " + std::to_string(s));
  }
  audit::check(free_.size() == slots_.size() - live_ids, who,
               "free list covers every dead id",
               audit::expected_got(slots_.size() - live_ids, free_.size()));
}

// --- OutcomeCache -----------------------------------------------------------

void OutcomeCache::set_capacity(std::size_t capacity) {
  keys_.clear();
  payload_.clear();
  set_mask_ = 0;
  clock_ = 0;
  gen_.clear();
  if (capacity == 0) return;
  std::size_t sets = 1;
  while (sets * kWays < capacity) sets <<= 1;
  keys_.assign(sets * kWays, 0);
  payload_.assign(sets * kWays, Payload{});
  set_mask_ = sets - 1;
}

void OutcomeCache::clear() {
  std::fill(keys_.begin(), keys_.end(), 0);
  std::fill(payload_.begin(), payload_.end(), Payload{});
  clock_ = 0;
  gen_.clear();
  stats_ = Stats{};
}

const StatePair* OutcomeCache::find(InteractionClass c, State s, State r) {
  const std::uint64_t k = key(c, s, r);
  if (k == 0) return nullptr;
  return find_validated(k, s, r);
}

const StatePair* OutcomeCache::find_raw(std::uint64_t key, State in) {
  if (key == 0) return nullptr;
  return find_validated(key, in, in);
}

const StatePair* OutcomeCache::find_validated(std::uint64_t k, State a,
                                              State b) {
  if (keys_.empty()) return nullptr;
  const std::size_t base = set_of(k) * kWays;
  const std::uint64_t* kp = keys_.data() + base;
  for (std::size_t w = 0; w < kWays; ++w) {
    if (kp[w] != k) continue;
    Payload& e = payload_[base + w];
    if (gen(a) != e.g[0] || gen(b) != e.g[1] ||
        gen(e.out.starter) != e.g[2] || gen(e.out.reactor) != e.g[3]) {
      keys_[base + w] = 0;
      ++stats_.stale_drops;
      break;
    }
    e.stamp = ++clock_;
    ++stats_.hits;
    return &e.out;
  }
  ++stats_.misses;
  return nullptr;
}

void OutcomeCache::insert(InteractionClass c, State s, State r, StatePair out) {
  const std::uint64_t k = key(c, s, r);
  if (k == 0) return;
  insert_validated(k, s, r, out);
}

void OutcomeCache::insert_raw(std::uint64_t key, State in, StatePair out) {
  if (key == 0) return;
  insert_validated(key, in, in, out);
}

void OutcomeCache::insert_validated(std::uint64_t k, State a, State b,
                                    StatePair out) {
  if (keys_.empty()) return;
  if ((out.starter | out.reactor) >> 31 != 0) return;
  const std::size_t base = set_of(k) * kWays;
  // Pick the slot: the key itself (stale refresh), an empty way, or the
  // least recently touched way of the set.
  std::size_t victim = base;
  for (std::size_t w = 0; w < kWays; ++w) {
    const std::uint64_t kw = keys_[base + w];
    if (kw == k || kw == 0) {
      victim = base + w;
      break;
    }
    if (payload_[base + w].stamp < payload_[victim].stamp) victim = base + w;
  }
  if (keys_[victim] != 0 && keys_[victim] != k) ++stats_.evictions;
  keys_[victim] = k;
  payload_[victim] = Payload{
      out, {gen(a), gen(b), gen(out.starter), gen(out.reactor)}, ++clock_};
}

void OutcomeCache::invalidate(State s) {
  if (keys_.empty()) return;
  if (s >= gen_.size()) gen_.resize(static_cast<std::size_t>(s) + 1, 0);
  if ((++gen_[s] & 0xffff) == 0) {
    // The truncated generation wrapped (65536th release of this id):
    // clear the table so no stale entry can validate falsely.
    std::fill(keys_.begin(), keys_.end(), 0);
  }
}

void OutcomeCache::audit_live_outputs(
    const char* who, const std::function<bool(State)>& live) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == 0) continue;
    const Payload& e = payload_[i];
    // Only currently-valid entries matter: a stale one (any generation
    // truncation off) is dropped on touch and can never be served.
    if (gen(e.out.starter) != e.g[2] || gen(e.out.reactor) != e.g[3]) continue;
    audit::check(live(e.out.starter) && live(e.out.reactor), who,
                 "valid cache entry references only live output ids",
                 "entry " + std::to_string(i) + " -> (" +
                     std::to_string(e.out.starter) + ", " +
                     std::to_string(e.out.reactor) + ")");
  }
}

std::vector<State> MatrixRuleSource::intern_initial(
    const std::vector<State>& sim) {
  for (State q : sim) {
    if (q >= rules_.num_states())
      throw std::invalid_argument(
          "MatrixRuleSource: initial state out of range");
  }
  return sim;
}

}  // namespace ppfs

#include "core/population.hpp"

#include <stdexcept>

namespace ppfs {

Population::Population(std::shared_ptr<const Protocol> protocol,
                       std::vector<State> initial)
    : protocol_(std::move(protocol)), states_(std::move(initial)) {
  if (!protocol_) throw std::invalid_argument("Population: null protocol");
  if (states_.empty()) throw std::invalid_argument("Population: empty population");
  for (State q : states_) {
    if (q >= protocol_->num_states())
      throw std::invalid_argument("Population: state out of range");
  }
}

void Population::set_state(AgentId a, State q) {
  if (q >= protocol_->num_states())
    throw std::invalid_argument("Population::set_state: state out of range");
  states_.at(a) = q;
}

void Population::interact(AgentId s, AgentId r) {
  if (s == r) throw std::invalid_argument("Population::interact: self-interaction");
  const StatePair out = protocol_->delta(states_.at(s), states_.at(r));
  states_[s] = out.starter;
  states_[r] = out.reactor;
}

std::vector<std::size_t> Population::counts() const {
  std::vector<std::size_t> c(protocol_->num_states(), 0);
  for (State q : states_) ++c[q];
  return c;
}

void Population::counts_into(std::vector<std::size_t>& out) const {
  out.assign(protocol_->num_states(), 0);
  for (State q : states_) ++out[q];
}

Population Population::from_counts(std::shared_ptr<const Protocol> protocol,
                                   const std::vector<std::size_t>& counts) {
  if (!protocol) throw std::invalid_argument("Population::from_counts: null protocol");
  if (counts.size() != protocol->num_states())
    throw std::invalid_argument("Population::from_counts: size mismatch");
  std::vector<State> states;
  for (State q = 0; q < counts.size(); ++q)
    states.insert(states.end(), counts[q], q);
  return Population(std::move(protocol), std::move(states));
}

std::size_t Population::count_of(State q) const {
  std::size_t c = 0;
  for (State s : states_)
    if (s == q) ++c;
  return c;
}

int Population::consensus_output() const {
  const int first = protocol_->output(states_.front());
  if (first < 0) return -1;
  for (State q : states_) {
    if (protocol_->output(q) != first) return -1;
  }
  return first;
}

bool operator==(const Population& a, const Population& b) {
  return a.states_ == b.states_;
}

std::vector<State> make_initial(
    const std::vector<std::pair<State, std::size_t>>& groups) {
  std::vector<State> out;
  for (const auto& [q, k] : groups) out.insert(out.end(), k, q);
  return out;
}

}  // namespace ppfs

// The interaction-model lattice of the paper (§2.2–2.3, Figure 1).
//
// Ten models: the standard two-way model TW; its omissive weakenings
// T1, T2, T3; the one-way models IT (Immediate Transmission) and IO
// (Immediate Observation); and the omissive one-way models I1..I4.
//
// Transition relations (delta is chosen by the protocol designer; the
// adversary picks one member per interaction):
//
//   TW : {(fs, fr)}
//   T3 : {(fs,fr), (o,fr), (fs,h), (o,h)}     omission detectable both sides
//   T2 : T3 with h = id                        no reactor-side detection
//   T1 : T3 with o = id, h = id                no detection at all
//   IT : {(g, f)}                              one-way, starter applies g
//   IO : IT with g = id                        starter unaware
//   I4 : {(g,f), (o, g)}                       starter detects omission
//   I3 : {(g,f), (g, h)}                       reactor detects omission
//   I2 : {(g,f), (g, g)}                       proximity only, no detection
//   I1 : {(g,f), (g, id)}                      reactor misses omitted interaction
//
// ModelCaps below captures exactly what information each model delivers to
// each side of an interaction; simulators consume ONLY these capabilities,
// which is how the library enforces that e.g. an IO simulator never reads
// anything on the starter side.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace ppfs {

enum class Model : std::uint8_t { TW, T1, T2, T3, IT, IO, I1, I2, I3, I4 };

inline constexpr std::array<Model, 10> kAllModels = {
    Model::TW, Model::T1, Model::T2, Model::T3, Model::IT,
    Model::IO, Model::I1, Model::I2, Model::I3, Model::I4};

[[nodiscard]] std::string model_name(Model m);

// What an interaction under a given model lets each party observe/do.
struct ModelCaps {
  // One-way models: only the reactor may read the other party's state.
  bool one_way;
  // The adversary may mark interactions omissive in this model.
  bool omissive;
  // In a NON-omissive interaction, does the starter get a callback at all?
  // (TW family: yes, it applies fs; IT/I*: yes, it applies g; IO: no.)
  bool starter_acts;
  // In an OMISSIVE interaction, can the starter distinguish it from a
  // normal one? (T2/T3: o may differ from fs; I4: o may differ from g.)
  bool starter_detects_omission;
  // In an omissive interaction, does the reactor get any callback?
  // (I1: no — the omitted interaction is invisible to the reactor.)
  bool reactor_acts_on_omission;
  // Can the reactor distinguish an omissive interaction from a normal one?
  // (T3: h free; I3: h free. I2/I4: the reactor applies g — it knows
  //  *something* happened but cannot tell an omission from acting as a
  //  starter, so this is false.)
  bool reactor_detects_omission;
  // In an omissive interaction, is the reactor's forced update the starter
  // function g (models I2 and I4) rather than a free function h?
  bool reactor_applies_g_on_omission;
};

[[nodiscard]] ModelCaps model_caps(Model m);

[[nodiscard]] inline bool is_one_way(Model m) { return model_caps(m).one_way; }
[[nodiscard]] inline bool is_omissive(Model m) { return model_caps(m).omissive; }

// The weakest omissive model that embeds m with undetectable omissions:
// TW -> T1, IT/IO -> I1, omissive models map to themselves. This is how an
// omission adversary is attached to a protocol written for a non-omissive
// model (the NoOpOmissions/Specialization arrows of Fig. 1 guarantee the
// embedding changes nothing when the adversary stays silent).
[[nodiscard]] Model omissive_closure(Model m);

// --- Figure 1: arrows of the model hierarchy --------------------------------
//
// An arrow src -> dst means: the class of problems solvable in src is
// included in the class solvable in dst. We record each arrow together
// with the argument that justifies it; the Fig. 1 bench and tests verify
// each justification mechanically (see verify_arrow).
enum class ArrowReason : std::uint8_t {
  // The src relation is obtained from the dst relation by fixing some of
  // the dst designer's free functions; any src protocol therefore *is* a
  // dst protocol with the same guaranteed outcome set.
  Specialization,
  // dst = src minus the omission adversary: a src-correct protocol is
  // dst-correct because the dst adversary simply never omits.
  OmissionAvoidance,
  // src is non-omissive and embeds into omissive dst because the dst
  // designer can make every omissive outcome a global no-op, so inserted
  // omissions do not perturb the execution.
  NoOpOmissions,
};

struct ModelArrow {
  Model src;
  Model dst;
  ArrowReason reason;
  const char* note;  // one-line justification used in the Fig. 1 table
};

[[nodiscard]] const std::vector<ModelArrow>& model_arrows();

[[nodiscard]] std::string arrow_reason_name(ArrowReason r);

// Mechanical check of one arrow, on randomly sampled transition functions
// over a state space of size q (see models.cpp for what is checked per
// reason). Returns true if every sample is consistent with the arrow.
[[nodiscard]] bool verify_arrow(const ModelArrow& arrow, std::size_t q,
                                std::size_t samples, std::uint64_t seed);

}  // namespace ppfs

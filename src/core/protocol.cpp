#include "core/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs {

std::string Protocol::state_name(State q) const { return "q" + std::to_string(q); }

int Protocol::output(State q) const {
  (void)q;
  return -1;
}

bool Protocol::is_initial(State q) const {
  const auto& init = initial_states();
  return std::find(init.begin(), init.end(), q) != init.end();
}

bool Protocol::is_symmetric() const {
  const auto n = static_cast<State>(num_states());
  for (State a = 0; a < n; ++a) {
    for (State b = 0; b < n; ++b) {
      const StatePair ab = delta(a, b);
      const StatePair ba = delta(b, a);
      if (ab.starter != ba.reactor || ab.reactor != ba.starter) return false;
    }
  }
  return true;
}

bool Protocol::is_noop(State s, State r) const {
  const StatePair out = delta(s, r);
  return out.starter == s && out.reactor == r;
}

TableProtocol::TableProtocol(std::string name, std::vector<std::string> state_names,
                             std::vector<int> outputs, std::vector<State> initial,
                             std::vector<StatePair> table)
    : name_(std::move(name)),
      names_(std::move(state_names)),
      outputs_(std::move(outputs)),
      initial_(std::move(initial)),
      table_(std::move(table)) {
  const std::size_t n = names_.size();
  if (n == 0) throw std::invalid_argument("TableProtocol: no states");
  if (outputs_.size() != n) throw std::invalid_argument("TableProtocol: outputs arity");
  if (table_.size() != n * n) throw std::invalid_argument("TableProtocol: table arity");
  for (const auto& cell : table_) {
    if (cell.starter >= n || cell.reactor >= n)
      throw std::invalid_argument("TableProtocol: transition out of range");
  }
  for (State q : initial_) {
    if (q >= n) throw std::invalid_argument("TableProtocol: initial state out of range");
  }
}

std::string TableProtocol::state_name(State q) const {
  if (q >= names_.size()) throw std::out_of_range("state_name");
  return names_[q];
}

int TableProtocol::output(State q) const {
  if (q >= outputs_.size()) throw std::out_of_range("output");
  return outputs_[q];
}

ProtocolBuilder::ProtocolBuilder(std::string name) : name_(std::move(name)) {}

State ProtocolBuilder::add_state(std::string state_name, int output, bool initial) {
  const auto id = static_cast<State>(state_names_.size());
  state_names_.push_back(std::move(state_name));
  outputs_.push_back(output);
  if (initial) initial_.push_back(id);
  return id;
}

ProtocolBuilder& ProtocolBuilder::rule(State s, State r, State s2, State r2) {
  rules_.push_back({s, r, s2, r2});
  return *this;
}

ProtocolBuilder& ProtocolBuilder::symmetric_rule(State s, State r, State s2, State r2) {
  rule(s, r, s2, r2);
  if (s != r) rule(r, s, r2, s2);
  return *this;
}

std::shared_ptr<const TableProtocol> ProtocolBuilder::build() const {
  const std::size_t n = state_names_.size();
  std::vector<StatePair> table(n * n);
  for (State s = 0; s < n; ++s)
    for (State r = 0; r < n; ++r) table[s * n + r] = StatePair{s, r};
  for (const auto& rl : rules_) {
    if (rl.s >= n || rl.r >= n) throw std::invalid_argument("rule state out of range");
    table[static_cast<std::size_t>(rl.s) * n + rl.r] = StatePair{rl.s2, rl.r2};
  }
  return std::make_shared<TableProtocol>(name_, state_names_, outputs_, initial_,
                                         std::move(table));
}

std::optional<std::vector<State>> it_shape_g(const Protocol& p) {
  const auto n = static_cast<State>(p.num_states());
  std::vector<State> g(n);
  for (State s = 0; s < n; ++s) {
    const State first = p.delta(s, 0).starter;
    for (State r = 1; r < n; ++r) {
      if (p.delta(s, r).starter != first) return std::nullopt;
    }
    g[s] = first;
  }
  return g;
}

bool fits_it_shape(const Protocol& p) { return it_shape_g(p).has_value(); }

bool fits_io_shape(const Protocol& p) {
  const auto g = it_shape_g(p);
  if (!g) return false;
  for (State s = 0; s < g->size(); ++s) {
    if ((*g)[s] != s) return false;
  }
  return true;
}

bool OneWayProtocol::is_io() const {
  const auto n = static_cast<State>(num_states());
  for (State s = 0; s < n; ++s) {
    if (g(s) != s) return false;
  }
  return true;
}

}  // namespace ppfs

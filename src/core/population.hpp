// Configurations of a system (P, n): the n-tuple of local states (§2.1),
// plus the counting/inspection helpers used by monitors and experiments.
#pragma once

#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

class Population {
 public:
  Population(std::shared_ptr<const Protocol> protocol, std::vector<State> initial);

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] State state(AgentId a) const { return states_.at(a); }
  void set_state(AgentId a, State q);

  [[nodiscard]] const std::vector<State>& states() const noexcept { return states_; }
  [[nodiscard]] const Protocol& protocol() const noexcept { return *protocol_; }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const { return protocol_; }

  // Apply delta to the ordered pair (s, r); the standard two-way step.
  void interact(AgentId s, AgentId r);

  // Multiset view: count of agents per state.
  [[nodiscard]] std::vector<std::size_t> counts() const;
  // Allocation-free variant for hot probe loops: `out` is resized to
  // num_states and overwritten.
  void counts_into(std::vector<std::size_t>& out) const;
  [[nodiscard]] std::size_t count_of(State q) const;

  // Count-view construction: the canonical population with the given
  // per-state multiplicities, agents grouped by ascending state id. The
  // inverse of counts() up to agent exchangeability; this is how the batch
  // engine (engine/batch/) lowers its configurations back to populations.
  [[nodiscard]] static Population from_counts(
      std::shared_ptr<const Protocol> protocol,
      const std::vector<std::size_t>& counts);

  // If every agent currently maps to the same non-negative output, returns
  // it; otherwise -1. This is the standard "stable output" probe.
  [[nodiscard]] int consensus_output() const;

  friend bool operator==(const Population&, const Population&);

 private:
  std::shared_ptr<const Protocol> protocol_;
  std::vector<State> states_;
};

// Build an initial configuration with the given per-state multiplicities:
// pairs of (state, count), concatenated in order.
[[nodiscard]] std::vector<State> make_initial(
    const std::vector<std::pair<State, std::size_t>>& groups);

}  // namespace ppfs

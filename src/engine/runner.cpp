#include "engine/workload_runner.hpp"

#include "exp/scenario.hpp"

namespace ppfs {

std::function<bool(const std::vector<std::size_t>&, const Protocol&)>
workload_counts_probe(const Workload& w) {
  if (w.converged) {
    auto probe = w.converged;
    return [probe](const std::vector<std::size_t>& counts, const Protocol&) {
      return probe(counts);
    };
  }
  const int expected = w.expected_output;
  return [expected](const std::vector<std::size_t>& counts, const Protocol& p) {
    for (State q = 0; q < counts.size(); ++q) {
      if (counts[q] > 0 && p.output(q) != expected) return false;
    }
    return true;
  };
}

RunResult run_native_workload(const Workload& w, std::uint64_t seed,
                              const RunOptions& opt) {
  NativeSystem sys(w.protocol, w.initial);
  UniformScheduler sched(w.initial.size());
  Rng rng(seed);
  auto counts_probe = workload_counts_probe(w);
  auto probe = [&](const NativeSystem& s) {
    return counts_probe(s.population().counts(), s.population().protocol());
  };
  return run_until(sys, sched, rng, probe, opt);
}

RunResult run_workload_with_engine(const std::string& engine_kind,
                                   const Workload& w, std::uint64_t seed,
                                   const RunOptions& opt, RunStats* stats_out) {
  exp::ScenarioSpec spec;
  spec.workload = w.name;
  spec.custom = std::make_shared<Workload>(w);
  spec.n = w.initial.size();
  spec.engine = engine_kind;
  spec.seed = seed;
  spec.max_steps = opt.max_steps;
  spec.check_every = opt.check_every;
  spec.stable_checks = opt.stable_checks;
  return exp::run_replica(spec, /*trial=*/0, stats_out).run;
}

}  // namespace ppfs

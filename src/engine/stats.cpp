#include "engine/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs {

RunStats::RunStats(std::size_t num_states) { reset(num_states); }

void RunStats::reset(std::size_t num_states) {
  q_ = num_states;
  fires_.assign(q_ * q_, 0);
  total_fires_ = 0;
  noops_ = 0;
  omissions_ = 0;
  omissive_fires_ = 0;
  first_holding_ = kNoConvergence;
  holding_ = false;
}

void RunStats::record_omissive_fire(State s, State r, std::uint64_t times) {
  record_fire(s, r, times);
  omissions_ += times;
  omissive_fires_ += times;
}

void RunStats::record_fire(State s, State r, std::uint64_t times) {
  if (s >= q_ || r >= q_)
    throw std::invalid_argument("RunStats::record_fire: state out of range");
  fires_[static_cast<std::size_t>(s) * q_ + r] += times;
  total_fires_ += times;
}

void RunStats::record_probe(std::size_t step, bool holds) noexcept {
  if (!holds) {
    holding_ = false;
    first_holding_ = kNoConvergence;
    return;
  }
  if (!holding_) {
    holding_ = true;
    first_holding_ = step;
  }
}

void RunStats::merge(const RunStats& o) {
  if (o.q_ == 0) {
    // A state-less record can still carry no-op/omission tallies.
    noops_ += o.noops_;
    omissions_ += o.omissions_;
    return;
  }
  if (q_ == 0) reset(o.q_);
  if (o.q_ != q_)
    throw std::invalid_argument("RunStats::merge: num_states mismatch");
  for (std::size_t i = 0; i < fires_.size(); ++i) fires_[i] += o.fires_[i];
  total_fires_ += o.total_fires_;
  noops_ += o.noops_;
  omissions_ += o.omissions_;
  omissive_fires_ += o.omissive_fires_;
}

std::uint64_t RunStats::fires(State s, State r) const {
  if (s >= q_ || r >= q_)
    throw std::invalid_argument("RunStats::fires: state out of range");
  return fires_[static_cast<std::size_t>(s) * q_ + r];
}

std::size_t RunStats::convergence_step() const noexcept {
  return holding_ ? first_holding_ : kNoConvergence;
}

void RunStats::save_state(bin::Writer& w) const {
  w.var(q_);
  // The fires matrix is q² dense but mostly zeros for large alphabets;
  // varints keep the common zero cell to one byte.
  for (const std::uint64_t c : fires_) w.var(c);
  w.var(total_fires_);
  w.var(noops_);
  w.var(omissions_);
  w.var(omissive_fires_);
  w.var(first_holding_);
  w.u8(holding_ ? 1 : 0);
}

void RunStats::restore_state(bin::Reader& r) {
  q_ = r.var();
  fires_.assign(q_ * q_, 0);
  for (auto& c : fires_) c = r.var();
  total_fires_ = r.var();
  noops_ = r.var();
  omissions_ = r.var();
  omissive_fires_ = r.var();
  first_holding_ = r.var();
  holding_ = r.u8() != 0;
}

std::vector<RunStats::RuleCount> RunStats::top_rules(std::size_t k) const {
  std::vector<RuleCount> all;
  all.reserve(fires_.size());
  for (State s = 0; s < q_; ++s) {
    for (State r = 0; r < q_; ++r) {
      const std::uint64_t c = fires_[static_cast<std::size_t>(s) * q_ + r];
      if (c > 0) all.push_back({s, r, c});
    }
  }
  std::sort(all.begin(), all.end(), [](const RuleCount& a, const RuleCount& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.s != b.s) return a.s < b.s;
    return a.r < b.r;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ppfs

// stats.hpp is header-only; translation unit reserved for the library
// target (keeps every header owned by exactly one .cpp for build hygiene).
#include "engine/stats.hpp"

// Interaction traces: record the exact physical run (including omission
// flags and sides), serialize it to a line-based text format, and replay
// it later. Used to archive the adversarial constructions of §3 as
// artifacts and to make any experiment reproducible bit-for-bit.
//
// Format: one interaction per line, `s r [o|os|or]`, where `o*` marks an
// omissive interaction (plain/starter-side/reactor-side). Lines starting
// with '#' are comments.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sched/scheduler.hpp"

namespace ppfs {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Interaction> interactions);

  void append(const Interaction& ia) { interactions_.push_back(ia); }
  [[nodiscard]] std::size_t size() const noexcept { return interactions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return interactions_.empty(); }
  [[nodiscard]] const std::vector<Interaction>& interactions() const noexcept {
    return interactions_;
  }
  [[nodiscard]] std::size_t omission_count() const;

  // Serialization.
  void save(std::ostream& os, const std::string& comment = "") const;
  [[nodiscard]] std::string to_string(const std::string& comment = "") const;
  [[nodiscard]] static Trace parse(std::istream& is);
  [[nodiscard]] static Trace parse_string(const std::string& text);

  // Replay into any system exposing interact(const Interaction&).
  template <class System>
  void replay(System& sys) const {
    for (const Interaction& ia : interactions_) sys.interact(ia);
  }

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::vector<Interaction> interactions_;
};

// A scheduler decorator that records everything it hands out: wrap any
// inner scheduler, run as usual, and the sink accumulates the exact
// physical sequence — ready to save() and replay() bit-for-bit. The
// decorator is transparent: it forwards the Rng and step index to the
// inner scheduler untouched, so a wrapped run consumes the same draws and
// produces the same interactions as an unwrapped one. This is how engines
// without record_trace support (and raw Scheduler-driven runs generally)
// get archival traces.
class RecordingScheduler final : public Scheduler {
 public:
  // `sink` may be null (transparent pass-through, nothing recorded) and
  // must otherwise outlive the scheduler. The inner scheduler must be
  // non-null.
  RecordingScheduler(std::unique_ptr<Scheduler> inner, Trace* sink);

  [[nodiscard]] Interaction next(Rng& rng, std::size_t step) override;

  [[nodiscard]] std::size_t recorded() const noexcept { return recorded_; }

 private:
  std::unique_ptr<Scheduler> inner_;
  Trace* sink_;
  std::size_t recorded_ = 0;
};

}  // namespace ppfs

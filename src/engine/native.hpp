// Native execution engines: run protocols directly under their own model,
// with no simulation layer. These are the performance baseline for every
// overhead experiment and the reference semantics for correctness checks.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/models.hpp"
#include "core/population.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

// Two-way native engine. Rejects omissive interactions: the plain TW model
// has no omissions (use a simulator plus an omissive model to study
// faults, or OneWaySystem below for the one-way omissive semantics).
class NativeSystem {
 public:
  NativeSystem(std::shared_ptr<const Protocol> protocol, std::vector<State> initial);

  void interact(const Interaction& ia);

  [[nodiscard]] const Population& population() const noexcept { return pop_; }
  [[nodiscard]] Population& population() noexcept { return pop_; }
  [[nodiscard]] std::size_t size() const noexcept { return pop_.size(); }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

 private:
  Population pop_;
  const StatePair* table_ = nullptr;  // fast path when TableProtocol
  std::size_t q_ = 0;
  std::size_t steps_ = 0;
};

// One-way native engine: runs a OneWayProtocol under IT/IO, or under the
// omissive one-way models I1..I4 with designer-chosen o/h (defaulting to
// identity). Encodes exactly the transition relations of §2.2–2.3.
class OneWaySystem {
 public:
  OneWaySystem(std::shared_ptr<const OneWayProtocol> protocol, Model model,
               std::vector<State> initial);

  // Optional omission-reaction functions (must be set before running if
  // the model grants the corresponding detection capability and the
  // protocol wants to use it).
  void set_starter_omission_fn(std::function<State(State)> o);
  void set_reactor_omission_fn(std::function<State(State)> h);

  void interact(const Interaction& ia);

  [[nodiscard]] State state(AgentId a) const { return states_.at(a); }
  [[nodiscard]] const std::vector<State>& states() const noexcept { return states_; }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const OneWayProtocol& protocol() const noexcept { return *protocol_; }

  // True if every agent maps to the same non-negative output.
  [[nodiscard]] int consensus_output() const;

 private:
  std::shared_ptr<const OneWayProtocol> protocol_;
  Model model_;
  std::vector<State> states_;
  std::function<State(State)> o_;  // starter-side omission update
  std::function<State(State)> h_;  // reactor-side omission update
};

}  // namespace ppfs

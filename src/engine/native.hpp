// Native execution engines: run protocols directly under their own model,
// with no simulation layer. These are the performance baseline for every
// overhead experiment and the reference semantics for correctness checks.
//
// All per-agent execution goes through InteractionSystem, which applies a
// compiled RuleMatrix (core/rule_matrix.hpp) — the same model-semantics
// definition the count-based batch engine consumes — so the ten models of
// §2.2–2.3 are encoded exactly once. NativeSystem (plain TW) and
// OneWaySystem (IT/IO/I1..I4) are thin facades over it that keep the
// historical construction ergonomics.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/models.hpp"
#include "core/population.hpp"
#include "core/protocol.hpp"
#include "core/rule_matrix.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"

namespace ppfs {

// Model-generic per-agent engine: one agent array, one RuleMatrix.
class InteractionSystem {
 public:
  InteractionSystem(RuleMatrix rules, std::vector<State> initial);

  void interact(const Interaction& ia);

  [[nodiscard]] const RuleMatrix& rules() const noexcept { return rules_; }
  [[nodiscard]] const Population& population() const noexcept { return pop_; }
  [[nodiscard]] Population& population() noexcept { return pop_; }
  [[nodiscard]] State state(AgentId a) const { return pop_.state(a); }
  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return pop_.states();
  }
  [[nodiscard]] std::size_t size() const noexcept { return pop_.size(); }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t omissions() const noexcept { return omissions_; }
  [[nodiscard]] int consensus_output() const { return pop_.consensus_output(); }

  // Swap in a recompiled matrix over the same state space (used when
  // omission-reaction functions are installed after construction).
  void set_rules(RuleMatrix rules);

  // Wire per-delivery counters + the sampled interact timer (obs layer);
  // null detaches. Purely observational.
  void set_metrics(obs::MetricRegistry* reg) {
    m_fires_ = reg ? &reg->counter("native.fires") : nullptr;
    m_noops_ = reg ? &reg->counter("native.noops") : nullptr;
    m_time_interact_ = reg ? &reg->timer("time.interact") : nullptr;
  }

 private:
  RuleMatrix rules_;
  Population pop_;  // states + the matrix's two-way protocol face
  std::size_t steps_ = 0;
  std::size_t omissions_ = 0;
  obs::Counter* m_fires_ = nullptr;  // deliveries that changed some state
  obs::Counter* m_noops_ = nullptr;
  obs::SampledTimer* m_time_interact_ = nullptr;
};

// Two-way native engine. Rejects omissive interactions: the plain TW model
// has no omissions (attach an omission adversary via EngineDispatch, or use
// OneWaySystem below for the one-way omissive semantics).
class NativeSystem {
 public:
  NativeSystem(std::shared_ptr<const Protocol> protocol, std::vector<State> initial);

  void interact(const Interaction& ia);

  [[nodiscard]] const Population& population() const noexcept {
    return sys_.population();
  }
  [[nodiscard]] Population& population() noexcept { return sys_.population(); }
  [[nodiscard]] std::size_t size() const noexcept { return sys_.size(); }
  [[nodiscard]] std::size_t steps() const noexcept { return sys_.steps(); }

 private:
  InteractionSystem sys_;
};

// One-way native engine: runs a OneWayProtocol under IT/IO, or under the
// omissive one-way models I1..I4 with designer-chosen o/h (defaulting to
// identity). Encodes exactly the transition relations of §2.2–2.3.
class OneWaySystem {
 public:
  OneWaySystem(std::shared_ptr<const OneWayProtocol> protocol, Model model,
               std::vector<State> initial);

  // Optional omission-reaction functions. Validated against ModelCaps at
  // set-time: installing o on a model without starter-side omission
  // detection (or h without reactor-side detection) throws.
  void set_starter_omission_fn(std::function<State(State)> o);
  void set_reactor_omission_fn(std::function<State(State)> h);

  void interact(const Interaction& ia) { sys_.interact(ia); }

  [[nodiscard]] State state(AgentId a) const { return sys_.state(a); }
  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return sys_.states();
  }
  [[nodiscard]] std::size_t size() const noexcept { return sys_.size(); }
  [[nodiscard]] const OneWayProtocol& protocol() const noexcept { return *protocol_; }

  // True if every agent maps to the same non-negative output.
  [[nodiscard]] int consensus_output() const;

 private:
  void recompile();

  std::shared_ptr<const OneWayProtocol> protocol_;
  Model model_;
  ModelFns fns_;
  InteractionSystem sys_;
};

}  // namespace ppfs

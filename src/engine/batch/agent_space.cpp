#include "engine/batch/agent_space.hpp"

#include <algorithm>
#include <unordered_set>

#include "sched/scheduler.hpp"
#include "sim/sim_rules.hpp"

namespace ppfs {

namespace {

// splitmix64-style avalanche for the distinct-wrapper estimate; fields are
// folded value-by-value (run ids and other provenance excluded, matching
// the canonical encodings).
[[nodiscard]] std::uint64_t mix64(std::uint64_t h, std::uint64_t v) noexcept {
  h += v + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

[[nodiscard]] std::uint64_t hash_sid_agent(std::uint64_t h,
                                           const SidAgent& a) noexcept {
  h = mix64(h, (static_cast<std::uint64_t>(a.active) << 32) | a.id);
  h = mix64(h, (static_cast<std::uint64_t>(a.sim_state) << 8) |
                   static_cast<std::uint64_t>(a.status));
  h = mix64(h, (static_cast<std::uint64_t>(a.other_id) << 32) | a.other_state);
  return h;
}

template <typename Agents, typename HashFn>
[[nodiscard]] std::size_t count_distinct(const Agents& agents, HashFn hash) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(agents.size());
  for (const auto& a : agents) seen.insert(hash(a));
  return seen.size();
}

// Record serialization shared by the SID and naming drivers (the naming
// record embeds a SidAgent). txn is provenance, but a checkpoint must
// reproduce the run verbatim, so it rides along.
void write_sid_agent(bin::Writer& w, const SidAgent& a) {
  w.u8(a.active ? 1 : 0);
  w.u32(a.id);
  w.u32(a.sim_state);
  w.u8(static_cast<std::uint8_t>(a.status));
  w.u32(a.other_id);
  w.u32(a.other_state);
  w.u64(a.txn);
}

void read_sid_agent(bin::Reader& r, SidAgent& a) {
  a.active = r.u8() != 0;
  a.id = r.u32();
  a.sim_state = r.u32();
  a.status = static_cast<SidAgent::Status>(r.u8());
  a.other_id = r.u32();
  a.other_state = r.u32();
  a.txn = r.u64();
}

void write_skno_token(bin::Writer& w, const SknoCore::Token& t) {
  w.u8(static_cast<std::uint8_t>(t.kind));
  w.u32(t.q);
  w.u32(t.qr);
  w.u32(t.index);
  w.u64(t.run);
}

void read_skno_token(bin::Reader& r, SknoCore::Token& t) {
  t.kind = static_cast<SknoCore::Token::Kind>(r.u8());
  t.q = r.u32();
  t.qr = r.u32();
  t.index = r.u32();
  t.run = r.u64();
}

// --- SID ---------------------------------------------------------------------

// Direct per-agent SID execution: one SidCore::react_value per delivered
// interaction, no decode/intern/cache machinery. SID is
// omission-transparent, so an omissive delivery is a global no-op.
class SidAgentSim final : public AgentSpaceSim {
 public:
  explicit SidAgentSim(SidRuleSource& src) : src_(src) {}

  [[nodiscard]] std::size_t size() const override { return agents_.size(); }

  void advance(std::size_t budget, Rng& rng, RunStats& stats,
               OmissionProcess* omit, std::size_t steps_base) override {
    const Protocol& p = src_.protocol();
    const SidCore::Options& opt = src_.sid_options();
    const std::size_t n = agents_.size();
    for (std::size_t i = 0; i < budget; ++i) {
      if (omit != nullptr && omit->should_omit(rng, steps_base + i)) {
        // Omission-transparent: the delivery is a global no-op, no victim
        // pair needs drawing.
        stats.record_omissive_noops(1);
        continue;
      }
      const Interaction ia = uniform_ordered_pair(rng, n);
      const SidAgent& snap = agents_[ia.starter];
      SidAgent& me = agents_[ia.reactor];
      const State ps = snap.sim_state;
      const State pr = me.sim_state;
      const SidCore::ValueUpdate vu = SidCore::react_value(p, opt, me, snap);
      if (vu.action == SidCore::Action::None) stats.record_noops(1);
      else stats.record_fire(ps, pr);
    }
  }

  void projected_counts(std::vector<std::size_t>& out) const override {
    out.assign(src_.protocol().num_states(), 0);
    for (const SidAgent& a : agents_) ++out[a.sim_state];
  }

  void load(const std::vector<std::pair<State, std::uint32_t>>& wrapper_counts)
      override {
    agents_.clear();
    for (const auto& [id, k] : wrapper_counts) {
      const SidAgent a = src_.decode_wrapper(id);
      agents_.insert(agents_.end(), k, a);
    }
  }

  void store(std::vector<State>& out) override {
    out.clear();
    out.reserve(agents_.size());
    for (const SidAgent& a : agents_) out.push_back(src_.intern_wrapper(a));
  }

  [[nodiscard]] std::size_t distinct_wrapper_estimate() const override {
    return count_distinct(agents_, [](const SidAgent& a) {
      return hash_sid_agent(0x51d, a);
    });
  }

  void save_records(bin::Writer& w) const override {
    w.var(agents_.size());
    for (const SidAgent& a : agents_) write_sid_agent(w, a);
  }

  void restore_records(bin::Reader& r) override {
    agents_.assign(r.var(), SidAgent{});
    for (SidAgent& a : agents_) read_sid_agent(r, a);
  }

 private:
  SidRuleSource& src_;
  std::vector<SidAgent> agents_;
};

// --- naming ------------------------------------------------------------------

class NamingAgentSim final : public AgentSpaceSim {
 public:
  explicit NamingAgentSim(NamingRuleSource& src) : src_(src) {}

  [[nodiscard]] std::size_t size() const override { return agents_.size(); }

  void advance(std::size_t budget, Rng& rng, RunStats& stats,
               OmissionProcess* omit, std::size_t steps_base) override {
    const Protocol& p = src_.protocol();
    const SidCore::Options& opt = src_.sid_options();
    const std::size_t n_pop = src_.population();
    const std::size_t n = agents_.size();
    for (std::size_t i = 0; i < budget; ++i) {
      if (omit != nullptr && omit->should_omit(rng, steps_base + i)) {
        stats.record_omissive_noops(1);
        continue;
      }
      const Interaction ia = uniform_ordered_pair(rng, n);
      const NamingRuleSource::Full& snap = agents_[ia.starter];
      NamingRuleSource::Full& me = agents_[ia.reactor];
      const State ps = snap.sid.sim_state;
      const State pr = me.sid.sim_state;
      const NamingSimulator::StepEffects fx = NamingSimulator::naming_step(
          p, opt, n_pop, me.naming, me.sid, snap.naming, snap.sid);
      const bool fired = fx.id_incremented || fx.max_id_changed ||
                         fx.activated ||
                         fx.sid.action != SidCore::Action::None;
      if (fired) stats.record_fire(ps, pr);
      else stats.record_noops(1);
    }
  }

  void projected_counts(std::vector<std::size_t>& out) const override {
    out.assign(src_.protocol().num_states(), 0);
    for (const auto& a : agents_) ++out[a.sid.sim_state];
  }

  void load(const std::vector<std::pair<State, std::uint32_t>>& wrapper_counts)
      override {
    agents_.clear();
    for (const auto& [id, k] : wrapper_counts) {
      const NamingRuleSource::Full a = src_.decode_wrapper_full(id);
      agents_.insert(agents_.end(), k, a);
    }
  }

  void store(std::vector<State>& out) override {
    out.clear();
    out.reserve(agents_.size());
    for (const auto& a : agents_) out.push_back(src_.intern_wrapper_full(a));
  }

  [[nodiscard]] std::size_t distinct_wrapper_estimate() const override {
    return count_distinct(agents_, [](const NamingRuleSource::Full& a) {
      std::uint64_t h = mix64(0x4e6d, (static_cast<std::uint64_t>(
                                           a.naming.my_id)
                                       << 32) |
                                          a.naming.max_id);
      return hash_sid_agent(h, a.sid);
    });
  }

  void save_records(bin::Writer& w) const override {
    w.var(agents_.size());
    for (const auto& a : agents_) {
      w.u32(a.naming.my_id);
      w.u32(a.naming.max_id);
      write_sid_agent(w, a.sid);
    }
  }

  void restore_records(bin::Reader& r) override {
    agents_.assign(r.var(), NamingRuleSource::Full{});
    for (auto& a : agents_) {
      a.naming.my_id = r.u32();
      a.naming.max_id = r.u32();
      read_sid_agent(r, a.sid);
    }
  }

 private:
  NamingRuleSource& src_;
  std::vector<NamingRuleSource::Full> agents_;
};

// --- SKnO --------------------------------------------------------------------

// Owns a sibling SknoCore (provenance off, like the rule source's) and
// steps both sides of each pair directly; omissive deliveries run the
// model's detection machinery inside the core.
class SknoAgentSim final : public AgentSpaceSim {
 public:
  explicit SknoAgentSim(SknoRuleSource& src)
      : src_(src),
        core_(&src.protocol(), src.core().model(),
              src.core().omission_bound(), src.core().options(),
              /*track_provenance=*/false) {}

  [[nodiscard]] std::size_t size() const override { return agents_.size(); }

  void advance(std::size_t budget, Rng& rng, RunStats& stats,
               OmissionProcess* omit, std::size_t steps_base) override {
    using FK = SknoCore::Footprint::Kind;
    const std::size_t n = agents_.size();
    for (std::size_t i = 0; i < budget; ++i) {
      Interaction ia = uniform_ordered_pair(rng, n);
      if (omit != nullptr && omit->should_omit(rng, steps_base + i)) {
        ia.omissive = true;
        ia.side = omit->params().side;
      }
      SknoCore::Agent& st = agents_[ia.starter];
      SknoCore::Agent& re = agents_[ia.reactor];
      const State ps = st.sim_state;
      const State pr = re.sim_state;
      core_.step(st, re, ia.omissive, ia.side, nullptr, nullptr);
      const SknoCore::StepFootprint& fp = core_.last_footprint();
      const bool fired =
          fp.starter.kind != FK::Unchanged || fp.reactor.kind != FK::Unchanged;
      if (ia.omissive) {
        if (fired) stats.record_omissive_fire(ps, pr);
        else stats.record_omissive_noops(1);
      } else {
        if (fired) stats.record_fire(ps, pr);
        else stats.record_noops(1);
      }
    }
  }

  void projected_counts(std::vector<std::size_t>& out) const override {
    out.assign(src_.protocol().num_states(), 0);
    for (const auto& a : agents_) ++out[a.sim_state];
  }

  void load(const std::vector<std::pair<State, std::uint32_t>>& wrapper_counts)
      override {
    agents_.clear();
    SknoCore::Agent a;
    for (const auto& [id, k] : wrapper_counts) {
      src_.decode_wrapper_into(id, a);
      agents_.insert(agents_.end(), k, a);
    }
  }

  void store(std::vector<State>& out) override {
    out.clear();
    out.reserve(agents_.size());
    for (const auto& a : agents_) out.push_back(src_.intern_wrapper(a));
  }

  [[nodiscard]] std::size_t distinct_wrapper_estimate() const override {
    return count_distinct(agents_, [](const SknoCore::Agent& a) {
      std::uint64_t h = mix64(0x5f40, (static_cast<std::uint64_t>(a.sim_state)
                                       << 1) |
                                          static_cast<std::uint64_t>(
                                              a.pending));
      // Queue order is semantic (FIFO); debt order is not — fold debt
      // commutatively so permuted-but-equal records hash together.
      for (const SknoCore::Token& t : a.sending) h = mix64(h, pack(t));
      std::uint64_t debt = 0;
      for (const SknoCore::Token& t : a.joker_debt) debt += mix64(0x0deb, pack(t));
      return mix64(h, debt);
    });
  }

  void save_records(bin::Writer& w) const override {
    w.var(agents_.size());
    for (const auto& a : agents_) {
      w.u32(a.sim_state);
      w.u8(a.pending ? 1 : 0);
      w.var(a.sending.size());
      for (const SknoCore::Token& t : a.sending) write_skno_token(w, t);
      w.var(a.joker_debt.size());
      for (const SknoCore::Token& t : a.joker_debt) write_skno_token(w, t);
    }
  }

  void restore_records(bin::Reader& r) override {
    agents_.assign(r.var(), SknoCore::Agent{});
    for (auto& a : agents_) {
      a.sim_state = r.u32();
      a.pending = r.u8() != 0;
      a.sending.resize(r.var());
      for (SknoCore::Token& t : a.sending) read_skno_token(r, t);
      a.joker_debt.resize(r.var());
      for (SknoCore::Token& t : a.joker_debt) read_skno_token(r, t);
    }
  }

 private:
  [[nodiscard]] static std::uint64_t pack(const SknoCore::Token& t) noexcept {
    return (static_cast<std::uint64_t>(t.kind) << 56) |
           (static_cast<std::uint64_t>(t.q & 0xfff) << 44) |
           (static_cast<std::uint64_t>(t.qr & 0xfff) << 32) | t.index;
  }

  SknoRuleSource& src_;
  SknoCore core_;
  std::vector<SknoCore::Agent> agents_;
};

}  // namespace

std::unique_ptr<AgentSpaceSim> make_agent_space_sim(DynamicRuleSource& rules) {
  // Naming derives from SID: test the derived class first.
  if (auto* nm = dynamic_cast<NamingRuleSource*>(&rules))
    return std::make_unique<NamingAgentSim>(*nm);
  if (auto* sid = dynamic_cast<SidRuleSource*>(&rules))
    return std::make_unique<SidAgentSim>(*sid);
  if (auto* sk = dynamic_cast<SknoRuleSource*>(&rules))
    return std::make_unique<SknoAgentSim>(*sk);
  return nullptr;
}

}  // namespace ppfs

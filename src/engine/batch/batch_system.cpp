#include "engine/batch/batch_system.hpp"

#include <cmath>
#include <stdexcept>

namespace ppfs {

namespace {

// Failures before the first success of a Bernoulli(W/T) sequence, capped
// at `cap`. Exact integer trials when a success is cheap to wait for;
// floating-point inversion when p < 1/64 (error ~1e-16, amortized over
// >= 64 skipped interactions).
std::size_t sample_noop_run(std::uint64_t w, std::uint64_t t, Rng& rng,
                            std::size_t cap) {
  if (w >= t) return 0;
  if (w >= t / 64) {
    std::size_t k = 0;
    while (k < cap && rng.below(t) >= w) ++k;
    return k;
  }
  const double p = static_cast<double>(w) / static_cast<double>(t);
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // uniform() is in [0, 1); keep log finite
  const double g = std::floor(std::log(u) / std::log1p(-p));
  if (g >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(g);
}

}  // namespace

BatchSystem::BatchSystem(std::shared_ptr<const Protocol> protocol,
                         std::vector<State> initial)
    : BatchSystem(
          Configuration::from_population(Population(std::move(protocol),
                                                    std::move(initial)))) {}

BatchSystem::BatchSystem(Configuration initial)
    : conf_(std::move(initial)),
      proto_(&conf_.protocol()),
      q_(conf_.num_states()),
      stats_(q_) {
  if (conf_.size() < 2)
    throw std::invalid_argument("BatchSystem: need at least two agents");
}

std::uint64_t BatchSystem::pair_weight(State s, State r) const noexcept {
  const auto& c = conf_.counts();
  const std::uint64_t cs = c[s];
  const std::uint64_t cr = c[r] - static_cast<std::uint64_t>(s == r);
  return cs == 0 ? 0 : cs * cr;
}

std::uint64_t BatchSystem::changing_weight() const noexcept {
  std::uint64_t w = 0;
  for (State s = 0; s < q_; ++s) {
    if (conf_.counts()[s] == 0) continue;
    for (State r = 0; r < q_; ++r) {
      if (!proto_->is_noop(s, r)) w += pair_weight(s, r);
    }
  }
  return w;
}

bool BatchSystem::silent() const { return changing_weight() == 0; }

void BatchSystem::apply_fire(State s, State r, BatchDelta& d) {
  d.fired = true;
  d.s = s;
  d.r = r;
  d.out = proto_->delta(s, r);
  conf_.apply_pair(s, r);
  stats_.record_fire(s, r);
}

BatchDelta BatchSystem::advance(std::size_t budget, Rng& rng) {
  BatchDelta d;
  if (budget == 0) return d;
  const std::uint64_t n = conf_.size();
  const std::uint64_t t = n * (n - 1);
  const std::uint64_t w = changing_weight();

  if (w == 0) {
    // Silent configuration: every scheduled interaction is a no-op.
    d.interactions = d.noops = budget;
    steps_ += budget;
    stats_.record_noops(budget);
    return d;
  }

  const std::size_t skipped = sample_noop_run(w, t, rng, budget);
  d.noops = skipped;
  d.interactions = skipped;
  if (skipped < budget) {
    const auto [s, r] = pick_changing_pair(w, rng);
    apply_fire(s, r, d);
    ++d.interactions;
  }
  steps_ += d.interactions;
  stats_.record_noops(d.noops);
  return d;
}

std::pair<State, State> BatchSystem::pick_changing_pair(std::uint64_t w,
                                                        Rng& rng) const {
  // Draw the firing pair proportionally to its weight (exact integers).
  std::uint64_t pick = rng.below(w);
  for (State s = 0; s < q_; ++s) {
    for (State r = 0; r < q_; ++r) {
      if (proto_->is_noop(s, r)) continue;
      const std::uint64_t pw = pair_weight(s, r);
      if (pick < pw) return {s, r};
      pick -= pw;
    }
  }
  throw std::logic_error("BatchSystem: weight scan exhausted");
}

BatchDelta BatchSystem::step(Rng& rng) {
  BatchDelta d;
  d.interactions = 1;
  const std::size_t n = conf_.size();
  const auto& c = conf_.counts();

  // Starter: uniform over the n agents == categorical over counts.
  std::uint64_t pick = rng.below(n);
  State s = 0;
  for (; s < q_; ++s) {
    if (pick < c[s]) break;
    pick -= c[s];
  }
  // Reactor: uniform over the remaining n-1 agents (starter removed).
  pick = rng.below(n - 1);
  State r = 0;
  for (; r < q_; ++r) {
    const std::uint64_t cr = c[r] - static_cast<std::uint64_t>(r == s);
    if (pick < cr) break;
    pick -= cr;
  }

  if (proto_->is_noop(s, r)) {
    d.noops = 1;
    stats_.record_noops(1);
  } else {
    apply_fire(s, r, d);
  }
  ++steps_;
  return d;
}

}  // namespace ppfs

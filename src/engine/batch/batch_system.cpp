#include "engine/batch/batch_system.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "engine/batch/leap_sampling.hpp"
#include "util/audit.hpp"

namespace ppfs {


BatchSystem::BatchSystem(std::shared_ptr<const Protocol> protocol,
                         std::vector<State> initial)
    : BatchSystem(
          Configuration::from_population(Population(std::move(protocol),
                                                    std::move(initial)))) {}

BatchSystem::BatchSystem(Configuration initial)
    : BatchSystem(RuleMatrix::compile(initial.protocol_ptr(), Model::TW),
                  initial.counts()) {}

BatchSystem::BatchSystem(RuleMatrix rules, std::vector<std::size_t> counts)
    : rules_(std::move(rules)),
      conf_(rules_.protocol_ptr(), std::move(counts)),
      q_(conf_.num_states()),
      stats_(q_) {
  if (conf_.size() < 2)
    throw std::invalid_argument("BatchSystem: need at least two agents");
  dirty_flag_.assign(q_, 0);
  build_pair_table(InteractionClass::Real, real_pairs_);
  w_real_ = real_pairs_.sampler.total();
}

void BatchSystem::set_metrics(obs::MetricRegistry* reg) {
  metrics_reg_ = reg;
  m_leap_len_ = reg ? &reg->histogram("engine.leap_len") : nullptr;
  m_weight_refreshes_ = reg ? &reg->counter("engine.weight_refreshes") : nullptr;
  if (omit_) omit_->set_metrics(reg);
}

void BatchSystem::set_omission_process(const AdversaryParams& params) {
  if (!rules_.omissive())
    throw std::invalid_argument(
        "BatchSystem: model " + model_name(rules_.model()) +
        " has no omission adversary (lift it with omissive_closure first)");
  if (params.rate < 0.0 || params.rate > 1.0)
    throw std::invalid_argument("BatchSystem: omission rate must be in [0, 1]");
  // max_burst is honored as-is: advance() samples the within-burst Markov
  // chain exactly (leap::sample_capped_burst_leg / the event-punctuated
  // loop), sharing the burst counter with step()'s should_omit.
  omit_.emplace(params);
  omit_->set_metrics(metrics_reg_);
  omit_class_ = rules_.omission_class(params.side);
  omit_pairs_.emplace();
  build_pair_table(omit_class_, *omit_pairs_);
  w_omit_ = omit_pairs_->sampler.total();
}

// ppfs-lint: allow(weight-mul): both factors are counts <= n and the
// engine bounds n < 2^32 (the changing weight <= n(n-1) must itself fit
// u64); the alias table's larger per-slot mass products go through u128.
std::uint64_t BatchSystem::pair_weight(State s, State r) const noexcept {
  const auto& c = conf_.counts();
  const std::uint64_t cs = c[s];
  const std::uint64_t cr = c[r] - static_cast<std::uint64_t>(s == r);
  return cs == 0 ? 0 : cs * cr;
}

std::uint64_t BatchSystem::audit_changing_weight(
    InteractionClass c) const noexcept {
  std::uint64_t w = 0;
  for (State s = 0; s < q_; ++s) {
    if (conf_.counts()[s] == 0) continue;
    for (State r = 0; r < q_; ++r) {
      if (!rules_.is_noop(c, s, r)) w += pair_weight(s, r);
    }
  }
  return w;
}

void BatchSystem::build_pair_table(InteractionClass c, PairTable& table) const {
  table.pairs.clear();
  table.adj.assign(q_, {});
  rules_.for_each_changing_pair(c, [&](State s, State r) {
    const auto idx = static_cast<std::uint32_t>(table.pairs.size());
    table.pairs.emplace_back(s, r);
    table.adj[s].push_back(idx);
    if (r != s) table.adj[r].push_back(idx);
  });
  table.sampler.reset(table.pairs.size());
  for (std::size_t i = 0; i < table.pairs.size(); ++i)
    table.sampler.set(
        i, pair_weight(table.pairs[i].first, table.pairs[i].second));
}

void BatchSystem::mark_dirty(State s) const {
  if (s >= q_ || dirty_flag_[s]) return;
  dirty_flag_[s] = 1;
  dirty_.push_back(s);
}

void BatchSystem::flush_weights() const {
  if (dirty_.empty()) return;
  PPFS_METRIC(m_weight_refreshes_, add());
  for (const State s : dirty_) {
    dirty_flag_[s] = 0;
    for (const std::uint32_t i : real_pairs_.adj[s]) {
      const auto [ps, pr] = real_pairs_.pairs[i];
      real_pairs_.sampler.set(i, pair_weight(ps, pr));
    }
    if (omit_pairs_) {
      for (const std::uint32_t i : omit_pairs_->adj[s]) {
        const auto [ps, pr] = omit_pairs_->pairs[i];
        omit_pairs_->sampler.set(i, pair_weight(ps, pr));
      }
    }
  }
  dirty_.clear();
  w_real_ = real_pairs_.sampler.total();
  w_omit_ = omit_pairs_ ? omit_pairs_->sampler.total() : 0;
}

std::uint64_t BatchSystem::changing_weight(InteractionClass c) const {
  flush_weights();
  if (c == InteractionClass::Real) return w_real_;
  if (omit_pairs_ && c == omit_class_) return w_omit_;
  return audit_changing_weight(c);
}

double BatchSystem::fire_density() const {
  flush_weights();
  const double t = static_cast<double>(conf_.size()) *
                   static_cast<double>(conf_.size() - 1);
  const double wr = static_cast<double>(w_real_);
  if (!omit_ || !omit_->active(steps_)) return wr / t;
  const double p = omit_->rate();
  return ((1.0 - p) * wr + p * static_cast<double>(w_omit_)) / t;
}

bool BatchSystem::silent() const {
  flush_weights();
  if (w_real_ != 0) return false;
  if (omit_ && omit_->active(steps_) && w_omit_ != 0) return false;
  return true;
}

void BatchSystem::audit_invariants() const {
  static constexpr const char* kWho = "BatchSystem";
  // Count conservation: the count vector still sums to n.
  std::uint64_t total = 0;
  for (const std::size_t c : conf_.counts()) total += c;
  audit::check(total == conf_.size(), kWho, "counts sum to population size",
               audit::expected_got(conf_.size(), total));
  // Incremental weights vs the O(q^2) reference rescan. flush_weights()
  // first: between fires the dirty list legitimately holds pending
  // deltas — the contract is agreement *after* a flush.
  flush_weights();
  audit::check(dirty_.empty(), kWho, "dirty list empty after flush");
  for (const std::uint8_t f : dirty_flag_)
    audit::check(f == 0, kWho, "dirty flags clear after flush");
  audit::check(w_real_ == audit_changing_weight(InteractionClass::Real), kWho,
               "incremental real changing-weight agrees with rescan",
               audit::expected_got(
                   audit_changing_weight(InteractionClass::Real), w_real_));
  if (omit_pairs_)
    audit::check(w_omit_ == audit_changing_weight(omit_class_), kWho,
                 "incremental omissive changing-weight agrees with rescan",
                 audit::expected_got(audit_changing_weight(omit_class_),
                                     w_omit_));
  // Per-slot sampler weights against the live count vector, then the
  // samplers' own derived structures (Fenwick / alias).
  const auto audit_table = [&](const PairTable& table, const char* name) {
    for (std::size_t i = 0; i < table.pairs.size(); ++i) {
      const auto [s, r] = table.pairs[i];
      audit::check(table.sampler.weight(i) == pair_weight(s, r), name,
                   "slot weight agrees with pair_weight over counts",
                   "slot " + std::to_string(i) + ": " +
                       audit::expected_got(pair_weight(s, r),
                                           table.sampler.weight(i)));
    }
    table.sampler.audit_invariants(name);
  };
  audit_table(real_pairs_, "BatchSystem.real_pairs");
  if (omit_pairs_) audit_table(*omit_pairs_, "BatchSystem.omit_pairs");
  if (omit_) omit_->audit_invariants();
}

void BatchSystem::apply_fire(InteractionClass c, State s, State r,
                             BatchDelta& d) {
  d.fired = true;
  d.omissive = c != InteractionClass::Real;
  d.s = s;
  d.r = r;
  d.out = rules_.outcome(c, s, r);
  conf_.apply_outcome(s, r, d.out);
  if (d.omissive) stats_.record_omissive_fire(s, r);
  else stats_.record_fire(s, r);
  mark_dirty(s);
  mark_dirty(r);
  mark_dirty(d.out.starter);
  mark_dirty(d.out.reactor);
}

void BatchSystem::bulk_fire(InteractionClass c, State s, State r,
                            std::size_t times) {
  if (times == 0) return;
  const StatePair out = rules_.outcome(c, s, r);
  conf_.move(s, out.starter, times);
  conf_.move(r, out.reactor, times);
  if (c == InteractionClass::Real) stats_.record_fire(s, r, times);
  else stats_.record_omissive_fire(s, r, times);
  mark_dirty(s);
  mark_dirty(r);
  mark_dirty(out.starter);
  mark_dirty(out.reactor);
}

BatchDelta BatchSystem::advance(std::size_t budget, Rng& rng) {
  BatchDelta d;
  const std::uint64_t n = conf_.size();
  // ppfs-lint: allow(weight-mul): n < 2^32 keeps the pair total in u64.
  const std::uint64_t t = n * (n - 1);

  while (d.interactions < budget) {
    const std::size_t remaining = budget - d.interactions;
    flush_weights();

    if (!omit_ || !omit_->active(steps_)) {
      // No insertable omissions now or ever again (inactivity is
      // absorbing): the exact integer path of PR 1.
      if (w_real_ == 0) {
        d.interactions += remaining;
        d.noops += remaining;
        steps_ += remaining;
        stats_.record_noops(remaining);
        return d;
      }
      const std::size_t skipped = leap::sample_noop_run(w_real_, t, rng, remaining);
      PPFS_METRIC(m_leap_len_, record(skipped));
      d.noops += skipped;
      d.interactions += skipped;
      steps_ += skipped;
      stats_.record_noops(skipped);
      if (skipped < remaining) {
        const auto [s, r] = pick_changing_pair(InteractionClass::Real, rng);
        apply_fire(InteractionClass::Real, s, r, d);
        ++d.interactions;
        ++steps_;
      }
      return d;
    }

    const double p = omit_->rate();
    // Never leap across the NO quiet horizon: the omission probability
    // flips to zero there, which the next loop iteration picks up.
    std::size_t cap = remaining;
    if (omit_->quiet_after() != std::numeric_limits<std::size_t>::max() &&
        omit_->quiet_after() > steps_)
      cap = std::min(cap, omit_->quiet_after() - steps_);

    const bool capped = omit_->burst_cap_reachable();
    if (w_omit_ == 0 && capped) {
      // Omissive draws are global no-ops but the burst cap binds: sample
      // the within-burst Markov chain exactly, one burst episode at a
      // time (budget exhaustion is handled inside the leg).
      std::size_t burst = omit_->burst();
      const leap::BurstLeg leg = leap::sample_capped_burst_leg(
          p, w_real_, t, omit_->max_burst(), burst, omit_->remaining_budget(),
          cap, rng);
      omit_->set_burst(burst);
      omit_->note_omissions(leg.omissions);
      const std::size_t noops = leg.deliveries - (leg.fire ? 1 : 0);
      stats_.record_omissive_noops(leg.omissions);
      stats_.record_noops(noops - leg.omissions);
      d.noops += noops;
      d.omissions += leg.omissions;
      d.interactions += noops;
      steps_ += noops;
      if (leg.fire) {
        const auto [s, r] =
            pick_changing_pair(InteractionClass::Real, rng);
        apply_fire(InteractionClass::Real, s, r, d);
        ++d.interactions;
        ++steps_;
        return d;
      }
      if (cap == remaining) return d;  // budget exhausted
      continue;                        // crossed the quiet horizon
    }

    if (w_omit_ == 0 && omit_->remaining_budget() > cap) {
      // Omissive draws are global no-ops, the burst cap can never bind
      // again, and the budget cannot run out mid-leap: geometric run to
      // the next (necessarily real) change, binomial split of the no-ops
      // into real and omissive draws.
      const double wr = static_cast<double>(w_real_) / static_cast<double>(t);
      const double rho = (1.0 - p) * wr;  // per-delivery change probability
      const std::size_t run = leap::sample_bernoulli_run(rho, rng, cap);
      PPFS_METRIC(m_leap_len_, record(run));
      if (run > 0) {
        const double q_om = p / (1.0 - rho);  // P(omissive | no-op)
        const std::size_t om = leap::sample_binomial(run, q_om, rng);
        omit_->note_omissions(om);
        stats_.record_omissive_noops(om);
        stats_.record_noops(run - om);
        d.noops += run;
        d.omissions += om;
        d.interactions += run;
        steps_ += run;
      }
      if (run == cap) {
        if (cap == remaining) return d;  // budget exhausted
        continue;                        // crossed the quiet horizon
      }
      const auto [s, r] = pick_changing_pair(InteractionClass::Real, rng);
      apply_fire(InteractionClass::Real, s, r, d);
      ++d.interactions;
      ++steps_;
      return d;
    }

    if (capped && omit_->burst() >= omit_->max_burst()) {
      // A full burst forces the next delivery to be real (no rate coin).
      omit_->set_burst(0);
      ++d.interactions;
      ++steps_;
      if (w_real_ > 0 && rng.below(t) < w_real_) {
        const auto [s, r] =
            pick_changing_pair(InteractionClass::Real, rng);
        apply_fire(InteractionClass::Real, s, r, d);
        return d;
      }
      stats_.record_noops(1);
      ++d.noops;
      continue;
    }

    // Event-punctuated leap: an "event" is an omissive delivery or a real
    // count-change; the run of real no-ops before it is geometric (every
    // real delivery resets the burst, so the omission probability is p
    // throughout the run).
    const double wr = static_cast<double>(w_real_) / static_cast<double>(t);
    const double sigma = p + (1.0 - p) * wr;
    const std::size_t run = leap::sample_bernoulli_run(sigma, rng, cap);
    PPFS_METRIC(m_leap_len_, record(run));
    if (run > 0) {
      stats_.record_noops(run);
      d.noops += run;
      d.interactions += run;
      steps_ += run;
      omit_->set_burst(0);
    }
    if (run == cap) {
      if (cap == remaining) return d;
      continue;
    }
    if (rng.chance(p / sigma)) {
      // Omissive delivery; it changes counts with exact probability Wo/T.
      omit_->note_omissions(1);
      omit_->set_burst(omit_->burst() + 1);
      ++d.omissions;
      if (w_omit_ > 0 && rng.below(t) < w_omit_) {
        const InteractionClass c = omit_class_;
        const auto [s, r] = pick_changing_pair(c, rng);
        apply_fire(c, s, r, d);
        ++d.interactions;
        ++steps_;
        return d;
      }
      stats_.record_omissive_noops(1);
      ++d.noops;
      ++d.interactions;
      ++steps_;
      continue;  // budget/horizon/burst state may have changed
    }
    const auto [s, r] = pick_changing_pair(InteractionClass::Real, rng);
    apply_fire(InteractionClass::Real, s, r, d);
    omit_->set_burst(0);
    ++d.interactions;
    ++steps_;
    return d;
  }
  return d;
}

std::pair<State, State> BatchSystem::pick_changing_pair(InteractionClass c,
                                                        Rng& rng) const {
  // Draw the firing pair proportionally to its weight (exact integers);
  // an exhausted pick surfaces as the samplers' shared structured
  // invariant failure instead of the old terminal linear-scan throw.
  PairTable& table =
      c == InteractionClass::Real ? real_pairs_ : *omit_pairs_;
  return table.pairs[table.sampler.draw(rng)];
}

BatchDelta BatchSystem::step(Rng& rng) {
  BatchDelta d;
  d.interactions = 1;
  const std::size_t n = conf_.size();
  const auto& c = conf_.counts();

  const bool omissive = omit_ && omit_->should_omit(rng, steps_);
  if (omissive) ++d.omissions;

  // Starter: uniform over the n agents == categorical over counts.
  std::uint64_t pick = rng.below(n);
  State s = 0;
  for (; s < q_; ++s) {
    if (pick < c[s]) break;
    pick -= c[s];
  }
  // Reactor: uniform over the remaining n-1 agents (starter removed).
  pick = rng.below(n - 1);
  State r = 0;
  for (; r < q_; ++r) {
    const std::uint64_t cr = c[r] - static_cast<std::uint64_t>(r == s);
    if (pick < cr) break;
    pick -= cr;
  }

  const InteractionClass cls =
      omissive ? omit_class_ : InteractionClass::Real;
  if (rules_.is_noop(cls, s, r)) {
    d.noops = 1;
    if (omissive) stats_.record_omissive_noops(1);
    else stats_.record_noops(1);
  } else {
    apply_fire(cls, s, r, d);
  }
  ++steps_;
  return d;
}

void BatchSystem::save_state(bin::Writer& w) const {
  // Flush first so the sampler faces saved below describe the same weight
  // tables a restore's mark-all + flush will rebuild.
  flush_weights();
  const std::vector<std::size_t>& c = conf_.counts();
  w.var(c.size());
  for (const std::size_t k : c) w.var(k);
  w.var(steps_);
  stats_.save_state(w);
  w.u8(omit_ ? 1 : 0);
  if (omit_) omit_->save_state(w);
  w.u8(real_pairs_.sampler.alias_face() ? 1 : 0);
  w.var(real_pairs_.sampler.draws_since_update());
  w.u8(omit_pairs_ ? 1 : 0);
  if (omit_pairs_) {
    w.u8(omit_pairs_->sampler.alias_face() ? 1 : 0);
    w.var(omit_pairs_->sampler.draws_since_update());
  }
}

void BatchSystem::restore_state(bin::Reader& r) {
  const std::size_t q = r.var();
  if (q != q_)
    throw std::runtime_error("BatchSystem::restore_state: state-count mismatch");
  std::vector<std::size_t> counts(q);
  for (auto& k : counts) k = r.var();
  conf_ = Configuration(conf_.protocol_ptr(), std::move(counts));
  steps_ = r.var();
  stats_.restore_state(r);
  const bool had_omit = r.u8() != 0;
  if (had_omit != omit_.has_value())
    throw std::runtime_error(
        "BatchSystem::restore_state: omission-process mismatch");
  if (omit_) omit_->restore_state(r);
  // Rebuild every sampler weight from the restored counts, then restore
  // the draw-policy faces (build_alias is a pure function of the weights).
  for (State s = 0; s < q_; ++s) mark_dirty(s);
  flush_weights();
  const bool real_alias = r.u8() != 0;
  const std::size_t real_draws = r.var();
  real_pairs_.sampler.restore_face(real_alias, real_draws);
  const bool had_omit_pairs = r.u8() != 0;
  if (had_omit_pairs != omit_pairs_.has_value())
    throw std::runtime_error(
        "BatchSystem::restore_state: omissive pair-table mismatch");
  if (omit_pairs_) {
    const bool omit_alias = r.u8() != 0;
    const std::size_t omit_draws = r.var();
    omit_pairs_->sampler.restore_face(omit_alias, omit_draws);
  }
}

}  // namespace ppfs

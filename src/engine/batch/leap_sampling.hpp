// Shared leap samplers for the count-space engines (BatchSystem over dense
// closed universes, SimBatchSystem over sparse open ones): geometric no-op
// run lengths with exact integer trials in the dense regime and
// floating-point inversion in the sparse one, and the binomial splitter
// that tallies omissive no-ops inside a leap. See the BatchSystem header
// for the exactness discussion; these are the single implementation both
// engines draw from.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace ppfs::leap {

// Failures before the first success of a Bernoulli(W/T) sequence, capped
// at `cap`. Exact integer trials when a success is cheap to wait for;
// floating-point inversion when p < 1/64 (error ~1e-16, amortized over
// >= 64 skipped interactions).
inline std::size_t sample_noop_run(std::uint64_t w, std::uint64_t t, Rng& rng,
                                   std::size_t cap) {
  if (w >= t) return 0;
  if (w >= t / 64) {
    std::size_t k = 0;
    while (k < cap && rng.below(t) >= w) ++k;
    return k;
  }
  const double p = static_cast<double>(w) / static_cast<double>(t);
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // uniform() is in [0, 1); keep log finite
  const double g = std::floor(std::log(u) / std::log1p(-p));
  if (g >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(g);
}

// Same, for a double success probability (used when the omission rate is
// mixed into the per-delivery success): Bernoulli(p) trials when p is
// large, inversion below 1/64.
inline std::size_t sample_bernoulli_run(double p, Rng& rng, std::size_t cap) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return cap;
  if (p >= 1.0 / 64) {
    std::size_t k = 0;
    while (k < cap && !rng.chance(p)) ++k;
    return k;
  }
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  const double g = std::floor(std::log(u) / std::log1p(-p));
  if (g >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(g);
}

// Successes among n Bernoulli(p) trials, counted by skipping geometric
// failure gaps — exact (up to the run samplers' ~1e-16 inversion
// rounding) at O(np) cost regardless of n.
inline std::size_t count_sparse_successes(std::size_t n, double p, Rng& rng) {
  std::size_t k = 0;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t gap = sample_bernoulli_run(p, rng, n - i);
    i += gap;
    if (i >= n) break;
    ++k;
    ++i;
  }
  return k;
}

// Binomial(n, p) draw, used to tally the omissive no-ops inside a leap
// whose draws cannot change the configuration. Geometric-gap counting
// whenever either outcome is sparse (mean <= 256), an exact Bernoulli
// loop for small n otherwise, and a clamped normal approximation only
// when both the success and failure counts are large — where its
// relative error is negligible; it touches the omission tally and hence
// only the *pacing* of a budget's exhaustion, never which rule fires.
inline std::size_t sample_binomial(std::size_t n, double p, Rng& rng) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  const double anti_mean = static_cast<double>(n) * (1.0 - p);
  if (mean <= 256.0) return count_sparse_successes(n, p, rng);
  if (anti_mean <= 256.0) return n - count_sparse_successes(n, 1.0 - p, rng);
  constexpr std::size_t kExactLimit = 4096;
  if (n <= kExactLimit) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) k += rng.chance(p) ? 1 : 0;
    return k;
  }
  const double sigma = std::sqrt(mean * (1.0 - p));
  // Box-Muller from two uniforms.
  double u1 = rng.uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = rng.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double v = std::round(mean + sigma * z);
  if (v <= 0.0) return 0;
  if (v >= static_cast<double>(n)) return n;
  return static_cast<std::size_t>(v);
}

// One leg of the exact BURST-CAPPED omission leap: the step-wise
// adversary (OmissionProcess::should_omit) inserts omissions in bursts of
// at most `max_burst` consecutive insertions — after a full burst the next
// delivery is forcibly real and the burst counter resets. The chain over
// the within-burst state b is:
//
//   b < max_burst: omission w.p. p (b -> b+1), else real (b -> 0), and a
//                  real delivery changes counts w.p. w/t;
//   b = max_burst: the next delivery is real with certainty (no rate
//                  coin), b -> 0.
//
// This sampler covers the case where omissive deliveries are GLOBAL
// NO-OPS (w_omit = 0 / omission-transparent sources): it walks the chain
// one burst EPISODE at a time — runs of state-0 real no-ops aggregate
// into one geometric draw, and the continuation of a burst into one
// truncated-geometric draw — so the cost is O(1) per burst episode (not
// per omission), exact at every delivery position including truncation at
// `cap` and exhaustion of the omission budget. Callers with w_omit > 0
// punctuate per omissive delivery anyway and only need the forced-real
// branch, which they implement inline.
struct BurstLeg {
  std::size_t deliveries = 0;  // consumed, <= cap (includes the fire)
  std::size_t omissions = 0;   // inserted among them (all global no-ops)
  bool fire = false;           // ended by a count-changing real delivery
};

inline BurstLeg sample_capped_burst_leg(double p, std::uint64_t w,
                                        std::uint64_t t, std::size_t max_burst,
                                        std::size_t& burst,
                                        std::size_t omission_budget,
                                        std::size_t cap, Rng& rng) {
  BurstLeg leg;
  const double wr = static_cast<double>(w) / static_cast<double>(t);
  while (leg.deliveries < cap) {
    const std::size_t room = cap - leg.deliveries;
    if (leg.omissions >= omission_budget || p <= 0.0) {
      // No further insertions ever: a pure real-delivery geometric tail.
      const std::size_t run = w == 0 ? room : sample_noop_run(w, t, rng, room);
      leg.deliveries += run;
      if (run > 0) burst = 0;
      if (run < room) {
        ++leg.deliveries;
        leg.fire = true;
        burst = 0;
      }
      return leg;
    }
    if (burst >= max_burst) {
      // Forced real delivery (no rate coin is flipped).
      ++leg.deliveries;
      burst = 0;
      if (rng.below(t) < w) {
        leg.fire = true;
        return leg;
      }
      continue;
    }
    // Insertions possible: each delivery is an omission w.p. p, else a
    // real one that changes counts w.p. wr. Aggregate the run of real
    // no-ops (every one of them resets the burst to 0, so the omission
    // probability is p throughout).
    const double sigma = p + (1.0 - p) * wr;
    const std::size_t run = sample_bernoulli_run(sigma, rng, room);
    leg.deliveries += run;
    if (run > 0) burst = 0;
    if (run >= room) return leg;  // cap reached mid-run
    if (!rng.chance(p / sigma)) {
      // The event is a real count-change.
      ++leg.deliveries;
      leg.fire = true;
      burst = 0;
      return leg;
    }
    // The event opens (or continues) a burst: the first omission plus its
    // geometric continuation, truncated by the burst cap, the omission
    // budget, and the delivery cap.
    const std::size_t limit =
        std::min({max_burst - burst, omission_budget - leg.omissions,
                  cap - leg.deliveries});
    const std::size_t k =
        1 + sample_bernoulli_run(1.0 - p, rng, limit - 1);
    leg.omissions += k;
    leg.deliveries += k;
    burst += k;
    if (k < limit) {
      // The burst ended because the rate coin came up "real": that
      // delivery is already determined real — only change vs no-op is
      // left to draw.
      ++leg.deliveries;
      burst = 0;
      if (rng.below(t) < w) {
        leg.fire = true;
        return leg;
      }
    }
    // k == limit: the loop head classifies what bound it (burst cap ->
    // forced real, budget -> real tail, delivery cap -> return).
  }
  return leg;
}

}  // namespace ppfs::leap

// Shared leap samplers for the count-space engines (BatchSystem over dense
// closed universes, SimBatchSystem over sparse open ones): geometric no-op
// run lengths with exact integer trials in the dense regime and
// floating-point inversion in the sparse one, and the binomial splitter
// that tallies omissive no-ops inside a leap. See the BatchSystem header
// for the exactness discussion; these are the single implementation both
// engines draw from.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace ppfs::leap {

// Failures before the first success of a Bernoulli(W/T) sequence, capped
// at `cap`. Exact integer trials when a success is cheap to wait for;
// floating-point inversion when p < 1/64 (error ~1e-16, amortized over
// >= 64 skipped interactions).
inline std::size_t sample_noop_run(std::uint64_t w, std::uint64_t t, Rng& rng,
                                   std::size_t cap) {
  if (w >= t) return 0;
  if (w >= t / 64) {
    std::size_t k = 0;
    while (k < cap && rng.below(t) >= w) ++k;
    return k;
  }
  const double p = static_cast<double>(w) / static_cast<double>(t);
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // uniform() is in [0, 1); keep log finite
  const double g = std::floor(std::log(u) / std::log1p(-p));
  if (g >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(g);
}

// Same, for a double success probability (used when the omission rate is
// mixed into the per-delivery success): Bernoulli(p) trials when p is
// large, inversion below 1/64.
inline std::size_t sample_bernoulli_run(double p, Rng& rng, std::size_t cap) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return cap;
  if (p >= 1.0 / 64) {
    std::size_t k = 0;
    while (k < cap && !rng.chance(p)) ++k;
    return k;
  }
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  const double g = std::floor(std::log(u) / std::log1p(-p));
  if (g >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(g);
}

// Successes among n Bernoulli(p) trials, counted by skipping geometric
// failure gaps — exact (up to the run samplers' ~1e-16 inversion
// rounding) at O(np) cost regardless of n.
inline std::size_t count_sparse_successes(std::size_t n, double p, Rng& rng) {
  std::size_t k = 0;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t gap = sample_bernoulli_run(p, rng, n - i);
    i += gap;
    if (i >= n) break;
    ++k;
    ++i;
  }
  return k;
}

// Binomial(n, p) draw, used to tally the omissive no-ops inside a leap
// whose draws cannot change the configuration. Geometric-gap counting
// whenever either outcome is sparse (mean <= 256), an exact Bernoulli
// loop for small n otherwise, and a clamped normal approximation only
// when both the success and failure counts are large — where its
// relative error is negligible; it touches the omission tally and hence
// only the *pacing* of a budget's exhaustion, never which rule fires.
inline std::size_t sample_binomial(std::size_t n, double p, Rng& rng) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  const double anti_mean = static_cast<double>(n) * (1.0 - p);
  if (mean <= 256.0) return count_sparse_successes(n, p, rng);
  if (anti_mean <= 256.0) return n - count_sparse_successes(n, 1.0 - p, rng);
  constexpr std::size_t kExactLimit = 4096;
  if (n <= kExactLimit) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) k += rng.chance(p) ? 1 : 0;
    return k;
  }
  const double sigma = std::sqrt(mean * (1.0 - p));
  // Box-Muller from two uniforms.
  double u1 = rng.uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = rng.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double v = std::round(mean + sigma * z);
  if (v <= 0.0) return 0;
  if (v >= static_cast<double>(n)) return n;
  return static_cast<std::size_t>(v);
}

// One leg of the exact BURST-CAPPED omission leap: the step-wise
// adversary (OmissionProcess::should_omit) inserts omissions in bursts of
// at most `max_burst` consecutive insertions — after a full burst the next
// delivery is forcibly real and the burst counter resets. The chain over
// the within-burst state b is:
//
//   b < max_burst: omission w.p. p (b -> b+1), else real (b -> 0), and a
//                  real delivery changes counts w.p. w/t;
//   b = max_burst: the next delivery is real with certainty (no rate
//                  coin), b -> 0.
//
// This sampler covers the case where omissive deliveries are GLOBAL
// NO-OPS (w_omit = 0 / omission-transparent sources): it walks the chain
// one burst EPISODE at a time — runs of state-0 real no-ops aggregate
// into one geometric draw, and the continuation of a burst into one
// truncated-geometric draw — so the cost is O(1) per burst episode (not
// per omission), exact at every delivery position including truncation at
// `cap` and exhaustion of the omission budget. Callers with w_omit > 0
// punctuate per omissive delivery anyway and only need the forced-real
// branch, which they implement inline.
struct BurstLeg {
  std::size_t deliveries = 0;  // consumed, <= cap (includes the fire)
  std::size_t omissions = 0;   // inserted among them (all global no-ops)
  bool fire = false;           // ended by a count-changing real delivery
};

inline BurstLeg sample_capped_burst_leg(double p, std::uint64_t w,
                                        std::uint64_t t, std::size_t max_burst,
                                        std::size_t& burst,
                                        std::size_t omission_budget,
                                        std::size_t cap, Rng& rng) {
  BurstLeg leg;
  const double wr = static_cast<double>(w) / static_cast<double>(t);
  while (leg.deliveries < cap) {
    const std::size_t room = cap - leg.deliveries;
    if (leg.omissions >= omission_budget || p <= 0.0) {
      // No further insertions ever: a pure real-delivery geometric tail.
      const std::size_t run = w == 0 ? room : sample_noop_run(w, t, rng, room);
      leg.deliveries += run;
      if (run > 0) burst = 0;
      if (run < room) {
        ++leg.deliveries;
        leg.fire = true;
        burst = 0;
      }
      return leg;
    }
    if (burst >= max_burst) {
      // Forced real delivery (no rate coin is flipped).
      ++leg.deliveries;
      burst = 0;
      if (rng.below(t) < w) {
        leg.fire = true;
        return leg;
      }
      continue;
    }
    // Insertions possible: each delivery is an omission w.p. p, else a
    // real one that changes counts w.p. wr. Aggregate the run of real
    // no-ops (every one of them resets the burst to 0, so the omission
    // probability is p throughout).
    const double sigma = p + (1.0 - p) * wr;
    const std::size_t run = sample_bernoulli_run(sigma, rng, room);
    leg.deliveries += run;
    if (run > 0) burst = 0;
    if (run >= room) return leg;  // cap reached mid-run
    if (!rng.chance(p / sigma)) {
      // The event is a real count-change.
      ++leg.deliveries;
      leg.fire = true;
      burst = 0;
      return leg;
    }
    // The event opens (or continues) a burst: the first omission plus its
    // geometric continuation, truncated by the burst cap, the omission
    // budget, and the delivery cap.
    const std::size_t limit =
        std::min({max_burst - burst, omission_budget - leg.omissions,
                  cap - leg.deliveries});
    const std::size_t k =
        1 + sample_bernoulli_run(1.0 - p, rng, limit - 1);
    leg.omissions += k;
    leg.deliveries += k;
    burst += k;
    if (k < limit) {
      // The burst ended because the rate coin came up "real": that
      // delivery is already determined real — only change vs no-op is
      // left to draw.
      ++leg.deliveries;
      burst = 0;
      if (rng.below(t) < w) {
        leg.fire = true;
        return leg;
      }
    }
    // k == limit: the loop head classifies what bound it (burst cap ->
    // forced real, budget -> real tail, delivery cap -> return).
  }
  return leg;
}

namespace detail {

inline double lchoose(double n, double k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

// Mode-centered two-sided inversion of Hypergeometric(N, K, m): one
// uniform, the mode pmf from lgamma, and the exact ratio recurrence
//   pmf(k+1)/pmf(k) = (K-k)(m-k) / ((k+1)(N-K-m+k+1))
// expanding outward until the cdf mass covers u. Tail fp error ~1e-12;
// exhaustion clamps to the support edge.
inline std::uint64_t hypergeometric_inversion(std::uint64_t N,
                                              std::uint64_t K,
                                              std::uint64_t m, Rng& rng) {
  const double dN = static_cast<double>(N);
  const double dK = static_cast<double>(K);
  const double dm = static_cast<double>(m);
  const std::uint64_t lo = K + m > N ? K + m - N : 0;
  const std::uint64_t hi = std::min(K, m);
  std::uint64_t mode =
      static_cast<std::uint64_t>((dm + 1.0) * (dK + 1.0) / (dN + 2.0));
  mode = std::min(std::max(mode, lo), hi);
  const double lp0 = lchoose(dK, static_cast<double>(mode)) +
                     lchoose(dN - dK, dm - static_cast<double>(mode)) -
                     lchoose(dN, dm);
  const double u = rng.uniform();
  double pl = std::exp(lp0);
  double pr = pl;
  double acc = pl;
  if (u < acc) return mode;
  std::uint64_t l = mode;
  std::uint64_t r = mode;
  while (l > lo || r < hi) {
    if (r < hi) {
      const double dr = static_cast<double>(r);
      pr *= (dK - dr) * (dm - dr) /
            ((dr + 1.0) * (dN - dK - dm + dr + 1.0));
      ++r;
      acc += pr;
      if (u < acc) return r;
    }
    if (l > lo) {
      const double dl = static_cast<double>(l);
      pl *= dl * (dN - dK - dm + dl) /
            ((dK - dl + 1.0) * (dm - dl + 1.0));
      --l;
      acc += pl;
      if (u < acc) return l;
    }
  }
  return hi;
}

}  // namespace detail

// Hypergeometric(pool, succ, m): successes among m items drawn without
// replacement from `pool` items of which `succ` are successes — the
// univariate link in the round engine's chained multivariate draws.
//
// The problem is first reduced by its two symmetries — drawing the
// complement (m -> pool - m, result = succ - k) and exchanging the roles
// of succ and m — until the drawn side is smallest; when that is <= 64
// the draw runs as exact integer without-replacement trials (so the
// small-n equivalence suites exercise a fully exact path), otherwise the
// lgamma inversion above.
inline std::uint64_t sample_hypergeometric(std::uint64_t pool,
                                           std::uint64_t succ, std::uint64_t m,
                                           Rng& rng) {
  if (succ == 0 || m == 0) return 0;
  if (succ >= pool) return m;
  if (m >= pool) return succ;
  std::uint64_t flip = 0;
  bool negate = false;
  if (m > pool - m) {
    flip = succ;
    negate = true;
    m = pool - m;
  }
  if (succ < m) {
    const std::uint64_t tmp = succ;
    succ = m;
    m = tmp;
  }
  std::uint64_t k;
  if (m <= 64) {
    std::uint64_t left = pool;
    std::uint64_t good = succ;
    k = 0;
    for (std::uint64_t i = 0; i < m; ++i) {
      if (rng.below(left) < good) {
        ++k;
        --good;
      }
      --left;
    }
  } else {
    k = detail::hypergeometric_inversion(pool, succ, m, rng);
  }
  return negate ? flip - k : k;
}

// Length of the collision-free prefix of a uniform interaction round:
// pair i+1 is collision-free iff it draws two of the U = n - 2i untouched
// agents, so P(L >= i) = n! / ((n-2i)! * (n(n-1))^i). Returns min(L, cap);
// truncation at `cap` (interaction budget or omission quiet horizon) is
// exact because scheduler pairs are i.i.d. — the discarded suffix is
// independent of the prefix, and the next round restarts fresh.
inline std::size_t sample_round_length(std::uint64_t n, Rng& rng,
                                       std::size_t cap) {
  if (n < 2 || cap == 0) return 0;
  // ppfs-lint: allow(weight-mul): n < 2^32 keeps the pair total in u64.
  const std::uint64_t t = n * (n - 1);
  const std::size_t max_len =
      std::min(cap, static_cast<std::size_t>(n / 2));
  if (n <= (1u << 16)) {
    // Sequential exact integer trials; the first pair never collides.
    std::size_t i = 1;
    while (i < max_len) {
      const std::uint64_t u = n - 2 * i;
      // ppfs-lint: allow(weight-mul): u <= n < 2^32, so u(u-1) fits u64.
      if (u < 2 || rng.below(t) >= u * (u - 1)) return i;
      ++i;
    }
    return max_len;
  }
  // One uniform inverted through the monotone survival function in log
  // space: L is the unique i with S(i+1) <= u < S(i).
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  const double lu = std::log(u);
  const double lg_n = std::lgamma(static_cast<double>(n) + 1.0);
  const double lt = std::log(static_cast<double>(t));
  const auto ls = [&](std::size_t i) {
    return lg_n - std::lgamma(static_cast<double>(n - 2 * i) + 1.0) -
           static_cast<double>(i) * lt;
  };
  if (ls(max_len) > lu) return max_len;
  std::size_t lo = 1;  // ls(1) = 0 > lu, so the invariant holds
  std::size_t hi = max_len;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    (ls(mid) > lu ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace ppfs::leap

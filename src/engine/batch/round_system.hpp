// RoundSystem: the round-dense face of the count-space engine — batched
// collision processing after Berenbrink et al. (*Simulating Population
// Protocols in Sub-Constant Time per Interaction*, PAPERS.md), run as a
// friend over a BatchSystem's state (one shared configuration, stats,
// steps and omission process; no bridge, no copy).
//
// The leap faces win when almost no delivery changes counts. In DENSE
// regimes (beacon-or, SKnO mid-convergence) nearly every delivery fires
// and per-interaction work degenerates to one sampler draw + one count
// move. The round engine instead processes the maximal COLLISION-FREE
// PREFIX of the schedule in one batch:
//
//   1. Round length. Scheduler pairs are i.i.d. uniform ordered pairs;
//      pair i+1 avoids the 2i agents already touched with probability
//      U(U-1)/T, U = n - 2i, T = n(n-1). The prefix length L has
//      P(L >= i) = n! / ((n-2i)! T^i) — one exact sequential draw for
//      small n, one inverted uniform through the lgamma survival function
//      above (leap::sample_round_length). Truncation at the interaction
//      budget or the NO quiet horizon is exact: pairs are i.i.d., so the
//      discarded suffix is independent of the prefix and the next round
//      restarts fresh.
//   2. Composition. Given L = l, the 2l touched agents are a uniformly
//      random sequence of distinct agents (the collision probability at
//      every step depends only on l, not on which agents were drawn, so
//      the conditioning does not tilt the prefix). Their per-state
//      composition is multivariate hypergeometric — drawn as chained
//      univariate draws (leap::sample_hypergeometric, exact integer
//      trials for small draws).
//   3. Roles and pairing. Which l of the 2l agents are starters is a
//      uniform l-subset (MVHG over the composition); reactors match the
//      starters as a uniform permutation, so each starter-state row of
//      the pair-type contingency table N[s][r] is MVHG from the depleted
//      reactor pool.
//   4. Omissions. Whether delivery j of the round is omissive depends
//      only on the position j (the adversary's burst/budget chain), never
//      on the pair drawn there, and the pair sequence is exchangeable
//      given the contingency table — so only the COUNT of omissive marks
//      matters. OmissionProcess::sample_round_omissions walks the
//      burst/budget chain exactly in O(burst episodes), and the marks are
//      assigned to cells by one more MVHG split.
//   5. Application. Every cell (s, r) fires its real and omissive parts
//      as single count moves (BatchSystem::bulk_fire — the 2l agents are
//      distinct, so the moves compose exactly), accumulating the touched
//      agents' POST-states.
//   6. The collision interaction. Pair l+1 is uniform over ordered pairs
//      NOT entirely untouched: with probability 2l(n-1)/M the starter is
//      one of the touched agents (categorical over the touched multiset)
//      and the reactor uniform over the other n-1; otherwise the starter
//      is untouched (global counts minus touched) and the reactor
//      touched. M = T - U(U-1). Its omission mark is one ordinary
//      should_omit draw, continuing the round's burst chain.
//
// Amortized cost per interaction is O(q^2 / l) — sub-constant once rounds
// are long (l ~ sqrt(n) at full density), which is what pushes standard
// workloads to n = 10^9. Distribution-exactness is pinned by chi-square
// equivalence against the sequential batch engine with and without
// adversaries (tests/round_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/batch/batch_system.hpp"

namespace ppfs {

class RoundSystem {
 public:
  explicit RoundSystem(BatchSystem& base);

  // Cover at most `budget` scheduler interactions with one collision-free
  // round plus its collision interaction, truncating exactly at the
  // budget and at the NO quiet horizon. Advances the base system's
  // configuration, stats, step counter and omission process in place.
  BatchDelta advance(std::size_t budget, Rng& rng);

  [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] const BatchSystem& base() const noexcept { return base_; }

  // Checkpoint round-trip: the round counter is the only cross-advance
  // state here (everything else is per-round scratch); the shared chain
  // state lives in the base BatchSystem, serialized by its owner.
  void save_state(bin::Writer& w) const { w.var(rounds_); }
  void restore_state(bin::Reader& r) { rounds_ = r.var(); }

  // Wire round-length histogram + round counter; null detaches.
  void set_metrics(obs::MetricRegistry* reg);

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  // Runtime-contract audit (util/audit.hpp): MVHG split totals must
  // recompose the round — cells sum to the round length, omissive marks
  // to the sampled omission count, the post-state multiset to 2*len —
  // and the base configuration still conserves n. Invoked at the end of
  // the bulk application (phase 6) while the scratch is live, under
  // -DPPFS_AUDIT=ON; always compiled for the mutation smokes. Throws
  // AuditError.
  void audit_round(std::uint64_t len, std::uint64_t k_om) const;

  BatchSystem& base_;
  std::size_t rounds_ = 0;

  // Per-round scratch, reused to keep a round allocation-free.
  std::vector<std::uint64_t> comp_;      // composition / live reactor pool
  std::vector<std::uint64_t> starters_;  // starter split by state
  std::vector<std::uint64_t> cells_;     // q*q pair-type counts
  std::vector<std::uint64_t> omits_;     // q*q omissive split
  std::vector<std::uint64_t> touched_;   // post-state multiset, sums to 2l

  obs::Histogram* m_round_len_ = nullptr;
  obs::Counter* m_rounds_ = nullptr;
};

}  // namespace ppfs

// EngineDispatch: one interface over the per-agent native engine and the
// count-based batch engine, so the run loop, workload runner, stats, and
// traces can drive either without caring which representation is
// underneath. Engines are selected by (model, engine kind, adversary)
// triple: any model of the §2.2–2.3 lattice, "native" or "batch"
// execution, and an optional omission adversary (Def. 1–2). make_engine is
// the single construction point.
//
// The scheduler contract differs between the two:
//   * a native engine consumes real interactions from the Scheduler it is
//     given and inserts omissions itself via its OmissionProcess;
//   * a batch engine realizes the uniform scheduler's distribution
//     internally (count-level sampling) and therefore only accepts a
//     UniformScheduler of matching size — the Scheduler argument is a
//     specification to validate, not a source of pairs. Scripted and
//     hand-written adversarial schedulers need the native engine.
//
// Attaching an adversary to a non-omissive model lifts the model to its
// omissive closure (TW -> T1, IT/IO -> I1): omissions strike undetectably,
// which is exactly the Fig. 1 embedding. Both engines realize the same
// omission process, max_burst included: the step-wise path consults
// should_omit per delivery, the batch path samples the identical
// within-burst Markov chain in aggregate (leap::sample_capped_burst_leg).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dynamic_rules.hpp"
#include "core/models.hpp"
#include "core/protocol.hpp"
#include "core/rule_matrix.hpp"
#include "engine/batch/batch_system.hpp"
#include "engine/batch/sim_batch_system.hpp"
#include "engine/native.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_rules.hpp"
#include "engine/runner.hpp"
#include "engine/stats.hpp"
#include "engine/trace.hpp"
#include "sched/omission_process.hpp"
#include "sched/scheduler.hpp"
#include "util/binio.hpp"
#include "util/rng.hpp"

namespace ppfs {

class Engine {
 public:
  virtual ~Engine() = default;

  [[nodiscard]] virtual std::string kind() const = 0;
  // The execution representation currently underneath. Equal to kind()
  // for every fixed engine; the auto engine reports which strategy is
  // live right now ("count" or "agent").
  [[nodiscard]] virtual std::string active_kind() const { return kind(); }
  [[nodiscard]] virtual const Protocol& protocol() const = 0;
  [[nodiscard]] virtual Model model() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  // Uniform-scheduler interactions covered so far (a batch engine counts
  // the no-ops it leapt over — they are scheduled interactions too).
  [[nodiscard]] virtual std::size_t interactions() const = 0;
  // Omissive interactions delivered so far.
  [[nodiscard]] virtual std::size_t omissions() const = 0;
  virtual void counts_into(std::vector<std::size_t>& out) const = 0;

  // Advance by at most `budget` interactions; returns how many were
  // covered (>= 1 for budget >= 1). A batch engine may cover the whole
  // budget in O(q^2) work; a native engine drives them one at a time.
  virtual std::size_t advance(std::size_t budget, Scheduler& sched,
                              Rng& rng) = 0;

  [[nodiscard]] virtual RunStats& stats() noexcept = 0;

  // Agent-level trace recording. Engines without agent identities cannot
  // attribute interactions and return false, leaving the sink unset.
  virtual bool record_trace(Trace* sink);

  // Diagnostic: live states of the engine's execution universe (the
  // protocol's states for closed-universe engines; currently occupied
  // interned wrapper states for simulator engines).
  [[nodiscard]] virtual std::size_t universe_live() const {
    return protocol().num_states();
  }

  [[nodiscard]] std::vector<std::size_t> counts() const;
  [[nodiscard]] int consensus_output() const;  // from counts + outputs

  // --- checkpoint / restore (sweep service) --------------------------------
  // Engines that can serialize their in-flight run state opt in. The
  // restoring engine must be freshly constructed with the IDENTICAL
  // make_engine*/make_sim_engine arguments — only mutable run state
  // round-trips; rules, protocol and adversary parameters come back from
  // the construction path. checkpoint_exact() additionally guarantees the
  // restored replica's FUTURE trajectory (and therefore every downstream
  // aggregate) is byte-identical to the uninterrupted run. The auto
  // simulator engine arbitrates representations on windowed cache-counter
  // deltas that do not survive a process restart, so it reports exact
  // only once arbitration is inert (adversary-locked or count-only rule
  // source); everything else that is checkpointable is exact.
  [[nodiscard]] virtual bool checkpointable() const { return false; }
  [[nodiscard]] virtual bool checkpoint_exact() const {
    return checkpointable();
  }
  // Both throw std::logic_error on a non-checkpointable engine.
  virtual void save_state(bin::Writer& w) const;
  virtual void restore_state(bin::Reader& r);

  // --- observability (src/obs) ---------------------------------------------
  // Opt-in engine-wide telemetry. enable_metrics() allocates the registry
  // and wires the underlying systems' cached metric handles; detached
  // (the default) every hook is one predictable null-check, and with
  // PPFS_METRICS=0 the hooks compile away entirely. Instrumentation never
  // consumes Rng draws, so the interaction trajectory is bit-identical
  // with metrics attached or not.
  obs::MetricRegistry& enable_metrics();
  [[nodiscard]] obs::MetricRegistry* metrics() noexcept {
    return metrics_.get();
  }
  // Copy pull-style statistics (run totals, cache hit counts, universe
  // occupancy, adversary budget) into the registry — cheap, called at
  // snapshot/read time, never on the hot path. No-op when detached.
  virtual void sync_metrics();
  // Configuration summary for the flight recorder: distinct occupied
  // states and the top_k largest counts, labeled. The base implementation
  // summarizes the projected protocol space via counts_into(); engines
  // with larger execution universes override.
  virtual void fill_summary(obs::ConfigSummary& out, std::size_t top_k) const;

 protected:
  // Engine-specific handle wiring, invoked once by enable_metrics().
  virtual void wire_metrics(obs::MetricRegistry& reg) { (void)reg; }

 private:
  std::unique_ptr<obs::MetricRegistry> metrics_;
};

// Model + adversary configuration for make_engine. Defaults reproduce the
// historical plain-TW engines.
struct EngineConfig {
  Model model = Model::TW;
  // Designer omission-reaction functions (validated against ModelCaps).
  ModelFns fns{};
  // Omission adversary; nullopt or rate 0 means none.
  std::optional<AdversaryParams> adversary{};
};

// kind: "native" | "batch" | "auto" (see engine_kinds()). Plain TW, no
// adversary. For closed-universe protocols "auto" is the adaptive batch
// engine: two exact faces over one BatchSystem — the count-leap face and
// the round-dense face (round_system.hpp) — arbitrated by a RegimeMonitor
// on the fire density, with active_kind() reporting "leap" or "round".
[[nodiscard]] std::unique_ptr<Engine> make_engine(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    std::vector<State> initial);

// Full (model, engine, adversary) triple over a two-way protocol. One-way
// models require the protocol to fit the IT/IO shape of §2.2.
[[nodiscard]] std::unique_ptr<Engine> make_engine(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    std::vector<State> initial, const EngineConfig& config);

// Same, over a native one-way protocol (config.model must be one-way).
[[nodiscard]] std::unique_ptr<Engine> make_engine(
    const std::string& kind, std::shared_ptr<const OneWayProtocol> protocol,
    std::vector<State> initial, const EngineConfig& config);

// Count-vector construction point: counts[q] agents start in state q, the
// population is sum(counts). This is how n = 10^9 runs are built — a
// per-agent initial vector would cost gigabytes before the engine even
// starts, while the count-space engines never materialize agents at all.
// Only "batch" and "auto" have a counts path; "native" throws. All
// arithmetic downstream is 64-bit-safe through n(n-1) for n <= ~2^31.
[[nodiscard]] std::unique_ptr<Engine> make_engine_from_counts(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    std::vector<std::size_t> counts);

[[nodiscard]] std::unique_ptr<Engine> make_engine_from_counts(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    std::vector<std::size_t> counts, const EngineConfig& config);

// One-way: the occupied states of `counts` seed the lowered two-way face
// (multiplicity is irrelevant to the Q'_P closure).
[[nodiscard]] std::unique_ptr<Engine> make_engine_from_counts(
    const std::string& kind, std::shared_ptr<const OneWayProtocol> protocol,
    std::vector<std::size_t> counts, const EngineConfig& config);

// Simulator-engine configuration: which §4 simulator wraps the protocol
// (sim/sim_rules.hpp), the physical model it runs under, and an optional
// omission adversary striking the physical interactions.
struct SimEngineConfig {
  SimSpec spec{};
  // Default: default_sim_model(spec) — the model each simulator is
  // designed for. Attaching an adversary to a non-omissive model lifts it
  // to the omissive closure, exactly as in make_engine.
  std::optional<Model> model{};
  std::optional<AdversaryParams> adversary{};
  // Batch engines only: bound on the rule source's (class, starter,
  // reactor) -> successors LRU cache. Default
  // SimBatchSystem::kDefaultOutcomeCacheCapacity; 0 disables (the
  // equivalence tests run both ways — the cache is invisible in
  // distribution).
  std::optional<std::size_t> outcome_cache_capacity{};
  // engine=auto only, test/diagnostic hook: force one representation
  // switch (whichever direction) at the first internal slice boundary at
  // or after this many interactions, bypassing the regime monitor. The
  // mid-run-switch equivalence suite uses it to pin the bridge
  // distribution-exact at a deterministic point.
  std::optional<std::size_t> auto_force_switch_at{};
};

// A simulator run as an engine, behind the same Engine interface:
// protocol(), counts_into() and consensus_output() are the SIMULATED
// projection pi_P — run_engine_until therefore detects convergence on the
// simulated configuration — while interactions()/omissions() count
// physical events. kind "native" drives the step-wise Simulator facade
// (per-agent, event recording off); "batch" the open-universe count-space
// engine (SimBatchSystem), which is how SKnO/SID/naming reach n = 10^6;
// "auto" starts on whichever representation the initial dispersion favors
// and may switch between count space and a direct agent-space driver at
// slice boundaries, steered by a RegimeMonitor (engine/batch/regime.hpp)
// with hysteresis — the contract is that auto is never materially slower
// than the best fixed choice. With an adversary attached, auto picks the
// favored start representation and locks it (omission-process state does
// not transfer across representations).
[[nodiscard]] std::unique_ptr<Engine> make_sim_engine(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    std::vector<State> initial, const SimEngineConfig& config);

[[nodiscard]] const std::vector<std::string>& engine_kinds();

// Probe over (counts, protocol) as produced by workload_counts_probe.
using CountsProbe =
    std::function<bool(const std::vector<std::size_t>&, const Protocol&)>;

// Engine-agnostic counterpart of run_until (engine/runner.hpp): advance in
// check_every-sized slices, evaluate the probe after each slice, stop once
// it holds stable_checks times in a row. Also feeds the engine's RunStats
// convergence tracking.
//
// An optional FlightRecorder snapshots the engine (sync_metrics +
// fill_summary) whenever a slice boundary crosses its cadence. Slicing is
// NOT adjusted to the cadence: the recorder observes the run the probe
// loop was going to make anyway, so attaching it changes neither the
// trajectory nor the Rng stream.
RunResult run_engine_until(Engine& engine, Scheduler& sched, Rng& rng,
                           const CountsProbe& probe, const RunOptions& opt = {},
                           obs::FlightRecorder* recorder = nullptr);

// Probe-loop progress that must survive a checkpoint alongside the
// engine's own state: interactions covered by this probe loop so far and
// the current consecutive-holds streak. (The engine's RunStats carries
// the convergence bookkeeping; these two scalars are the harness's.)
struct RunProgress {
  std::size_t steps = 0;
  std::size_t consecutive = 0;
};

// Invoked after each probe slice (probe evaluated, RunStats updated,
// `progress` current) — the checkpoint capture point: engine state saved
// here plus the passed progress resumes to a byte-identical run.
using SliceHook = std::function<void(Engine&, const RunProgress&)>;

// Resume-capable probe loop: identical to run_engine_until above when
// `progress` starts zeroed, but picks up mid-run when it carries restored
// state (with the engine, Rng and scheduler restored to match). The hook,
// if any, fires at every slice boundary before convergence is declared.
RunResult run_engine_until(Engine& engine, Scheduler& sched, Rng& rng,
                           const CountsProbe& probe, const RunOptions& opt,
                           RunProgress& progress, const SliceHook& on_slice,
                           obs::FlightRecorder* recorder = nullptr);

// Drive exactly `steps` interactions, no probe (advance never overshoots
// its budget; a batch is truncated at the boundary, which the geometric
// skip's memorylessness makes distribution-preserving). The recorder, if
// any, snapshots after each advance() return.
RunResult run_engine_steps(Engine& engine, Scheduler& sched, Rng& rng,
                           std::size_t steps,
                           obs::FlightRecorder* recorder = nullptr);

}  // namespace ppfs

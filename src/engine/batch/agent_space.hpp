// Agent-space execution strategy for simulator rule sources — the second
// representation the auto engine (engine/batch/dispatch.hpp, engine=auto)
// switches between. Count space (SimBatchSystem) wins when wrapper states
// collapse onto few interned ids (SKnO's anonymous tokens at large n);
// once the live universe disperses toward one state per agent — SID's
// unique ids from step 0, naming after its ids spread, SKnO at small n —
// every interned id carries count 1 and the count-space machinery (intern
// probes, CountIndex draws, occupied bookkeeping) is pure overhead per
// interaction. An AgentSpaceSim drives the same value-level chain over a
// plain per-agent record vector instead: one uniform ordered pair and one
// core step per interaction, no interning on the hot path at all.
//
// The bridge contract that makes mid-run switching distribution-exact:
// wrapper states are exchangeable under the uniform scheduler (which agent
// index holds which record never influences the chain's law), so
// distributing a wrapper-state multiset over agent indices in any
// deterministic order (load), or collapsing the records back into a
// multiset (store), consumes zero Rng draws and preserves the trajectory
// distribution. Stats are recorded at the simulated-projection level with
// the exact fire/no-op semantics of SimBatchSystem — a "fire" is a
// wrapper-state change — so the auto engine can fold per-representation
// slices into one RunStats.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "engine/stats.hpp"
#include "sched/omission_process.hpp"
#include "util/binio.hpp"
#include "util/rng.hpp"

namespace ppfs {

class DynamicRuleSource;

class AgentSpaceSim {
 public:
  virtual ~AgentSpaceSim() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;

  // Drive `budget` uniform-scheduler interactions, recording into `stats`
  // at the simulated-projection level (fires keyed by the pair's projected
  // pre-states, exactly like SimBatchSystem::apply_fire). `omit`, when
  // non-null, is asked before each delivery with the global step index
  // `steps_base + i` — the auto engine owns the process so its burst/budget
  // state is representation-independent.
  virtual void advance(std::size_t budget, Rng& rng, RunStats& stats,
                       OmissionProcess* omit, std::size_t steps_base) = 0;

  // Counts of the simulated projection pi_P (indexed by protocol state).
  virtual void projected_counts(std::vector<std::size_t>& out) const = 0;

  // --- representation bridge ----------------------------------------------
  // Adopt a wrapper population: each (live wrapper id, count) pair becomes
  // `count` per-agent records decoded from the id's canonical bytes, laid
  // out in the given order (deterministic — zero Rng draws; exchangeability
  // makes any fixed order distribution-exact).
  virtual void load(
      const std::vector<std::pair<State, std::uint32_t>>& wrapper_counts) = 0;
  // Re-intern every agent's record, one wrapper id per agent in index
  // order (the inverse bridge; equal-valued agents intern to the same id).
  virtual void store(std::vector<State>& out) = 0;

  // Estimated number of distinct wrapper values currently held (the
  // regime monitor's dispersion numerator in agent space). Hash-based:
  // 64-bit collisions may undercount, which is fine for a control signal.
  // Costs O(n); callers amortize it over observation cadences.
  [[nodiscard]] virtual std::size_t distinct_wrapper_estimate() const = 0;

  // --- checkpoint ----------------------------------------------------------
  // Serialize / restore the per-agent record vector verbatim, in index
  // order. Provenance fields (SID lock txn ids, SKnO run ids) are included:
  // a restored replica must continue the exact trajectory, not merely an
  // equal-in-law one, and provenance feeds the verification monitors.
  virtual void save_records(bin::Writer& w) const = 0;
  virtual void restore_records(bin::Reader& r) = 0;
};

// The agent-space strategy for `rules`, or nullptr when the source has
// none (naive/matrix sources are closed-universe: count space is already
// the right representation at every dispersion). The driver shares the
// source's interner through the bridge calls but owns its record vector.
[[nodiscard]] std::unique_ptr<AgentSpaceSim> make_agent_space_sim(
    DynamicRuleSource& rules);

}  // namespace ppfs

#include "engine/batch/configuration.hpp"

#include <numeric>
#include <stdexcept>

namespace ppfs {

Configuration::Configuration(std::shared_ptr<const Protocol> protocol,
                             std::vector<std::size_t> counts)
    : protocol_(std::move(protocol)), counts_(std::move(counts)) {
  if (!protocol_) throw std::invalid_argument("Configuration: null protocol");
  if (counts_.size() != protocol_->num_states())
    throw std::invalid_argument("Configuration: counts/states size mismatch");
  n_ = std::accumulate(counts_.begin(), counts_.end(), std::size_t{0});
  if (n_ == 0) throw std::invalid_argument("Configuration: empty population");
}

Configuration Configuration::from_population(const Population& pop) {
  return Configuration(pop.protocol_ptr(), pop.counts());
}

Population Configuration::to_population() const {
  return Population::from_counts(protocol_, counts_);
}

void Configuration::apply_pair(State s, State r) {
  apply_outcome(s, r, protocol_->delta(s, r));
}

void Configuration::apply_outcome(State s, State r, StatePair out) {
  const std::size_t need_s = 1 + static_cast<std::size_t>(s == r);
  if (counts_.at(s) < need_s || (s != r && counts_.at(r) < 1))
    throw std::invalid_argument("Configuration::apply_outcome: pre-states empty");
  if (out.starter >= counts_.size() || out.reactor >= counts_.size())
    throw std::invalid_argument("Configuration::apply_outcome: post-state range");
  --counts_[s];
  --counts_[r];
  ++counts_[out.starter];
  ++counts_[out.reactor];
}

void Configuration::move(State from, State to, std::size_t k) {
  if (counts_.at(from) < k)
    throw std::invalid_argument("Configuration::move: not enough agents");
  counts_[from] -= k;
  counts_.at(to) += k;
}

int counts_consensus_output(const std::vector<std::size_t>& counts,
                            const Protocol& protocol) {
  int common = -2;  // sentinel: no occupied state seen yet
  for (State q = 0; q < counts.size(); ++q) {
    if (counts[q] == 0) continue;
    const int out = protocol.output(q);
    if (out < 0) return -1;
    if (common == -2) common = out;
    else if (out != common) return -1;
  }
  return common;
}

int Configuration::consensus_output() const {
  return counts_consensus_output(counts_, *protocol_);
}

}  // namespace ppfs

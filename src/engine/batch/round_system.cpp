#include "engine/batch/round_system.hpp"

#include <algorithm>
#include <limits>

#include "engine/batch/leap_sampling.hpp"

namespace ppfs {

namespace {

// Categorical walk over a count multiset: the index i with
// prefix(i) <= pick < prefix(i+1). WeightAt lets the collision draw
// subtract the starter's copy / the touched multiset without
// materializing the adjusted vector.
template <class WeightAt>
State pick_state(std::size_t q, std::uint64_t pick, const char* context,
                 WeightAt&& weight_at) {
  return static_cast<State>(
      weighted_scan(q, pick, context, std::forward<WeightAt>(weight_at)));
}

}  // namespace

RoundSystem::RoundSystem(BatchSystem& base)
    : base_(base),
      comp_(base.q_, 0),
      starters_(base.q_, 0),
      cells_(base.q_ * base.q_, 0),
      omits_(base.q_ * base.q_, 0),
      touched_(base.q_, 0) {}

void RoundSystem::set_metrics(obs::MetricRegistry* reg) {
  m_round_len_ = reg ? &reg->histogram("engine.round_len") : nullptr;
  m_rounds_ = reg ? &reg->counter("engine.rounds") : nullptr;
}

void RoundSystem::audit_round(std::uint64_t len, std::uint64_t k_om) const {
  static constexpr const char* kWho = "RoundSystem";
  std::uint64_t cells = 0;
  for (const std::uint64_t c : cells_) cells += c;
  audit::check(cells == len, kWho, "contingency cells sum to round length",
               audit::expected_got(len, cells));
  std::uint64_t omits = 0;
  for (const std::uint64_t o : omits_) omits += o;
  audit::check(omits == k_om, kWho,
               "omissive split sums to sampled omission count",
               audit::expected_got(k_om, omits));
  std::uint64_t touched = 0;
  for (const std::uint64_t t : touched_) touched += t;
  audit::check(touched == 2 * len, kWho,
               "post-state multiset covers every touched agent",
               audit::expected_got(2 * len, touched));
  std::uint64_t total = 0;
  for (const std::size_t c : base_.conf_.counts()) total += c;
  audit::check(total == base_.conf_.size(), kWho,
               "round application conserves population size",
               audit::expected_got(base_.conf_.size(), total));
}

BatchDelta RoundSystem::advance(std::size_t budget, Rng& rng) {
  BatchDelta d;
  if (budget == 0) return d;
  const std::size_t q = base_.q_;
  const std::uint64_t n = base_.conf_.size();
  // ppfs-lint: allow(weight-mul): n < 2^32 keeps the pair total in u64.
  const std::uint64_t t = n * (n - 1);
  OmissionProcess* omit = base_.omit_ && base_.omit_->active(base_.steps_)
                              ? &*base_.omit_
                              : nullptr;

  // Never let a round cross the NO quiet horizon: the per-delivery
  // omission probability flips to zero there, which the next round
  // (adversary then inactive) picks up.
  std::size_t cap = budget;
  if (omit &&
      omit->quiet_after() != std::numeric_limits<std::size_t>::max() &&
      omit->quiet_after() > base_.steps_)
    cap = std::min(cap, omit->quiet_after() - base_.steps_);

  // 1. Collision-free prefix length (truncation at `cap` is exact).
  const std::size_t len = leap::sample_round_length(n, rng, cap);
  PPFS_METRIC(m_round_len_, record(len));
  PPFS_METRIC(m_rounds_, add());
  ++rounds_;
  const std::uint64_t len2 = 2 * static_cast<std::uint64_t>(len);

  // 2. Composition of the 2l distinct touched agents by state: chained
  // hypergeometric draws over the occupied states.
  const auto& counts = base_.conf_.counts();
  std::uint64_t pool = n;
  std::uint64_t left = len2;
  std::fill(comp_.begin(), comp_.end(), 0);
  for (std::size_t s = 0; s < q && left > 0; ++s) {
    if (counts[s] == 0) continue;
    const std::uint64_t k =
        leap::sample_hypergeometric(pool, counts[s], left, rng);
    comp_[s] = k;
    pool -= counts[s];
    left -= k;
  }

  // 3. Starter split: a uniform l-subset of the 2l agents starts.
  std::fill(starters_.begin(), starters_.end(), 0);
  pool = len2;
  left = len;
  for (std::size_t s = 0; s < q && left > 0; ++s) {
    if (comp_[s] == 0) continue;
    const std::uint64_t k =
        leap::sample_hypergeometric(pool, comp_[s], left, rng);
    starters_[s] = k;
    pool -= comp_[s];
    left -= k;
  }

  // 4. Pair-type contingency: each starter-state row is MVHG from the
  // depleted reactor pool (comp_ now doubles as that live pool).
  std::fill(cells_.begin(), cells_.end(), 0);
  for (std::size_t s = 0; s < q; ++s) comp_[s] -= starters_[s];
  std::uint64_t reactors_left = len;
  std::uint64_t assigned = 0;
  for (std::size_t s = 0; s < q; ++s) {
    std::uint64_t row = starters_[s];
    if (row == 0) continue;
    std::uint64_t rest = reactors_left;
    for (std::size_t r = 0; r < q && row > 0; ++r) {
      if (comp_[r] == 0) continue;
      const std::uint64_t k =
          leap::sample_hypergeometric(rest, comp_[r], row, rng);
      cells_[s * q + r] = k;
      rest -= comp_[r];
      comp_[r] -= k;
      row -= k;
      assigned += k;
    }
    reactors_left -= starters_[s];
  }
  if (assigned != len)
    sampler_invariant_failure("RoundSystem::contingency", assigned, len);

  // 5. Omissive marks: only the count matters (marks depend on position,
  // pairs are exchangeable across positions), split over cells by MVHG.
  std::size_t k_om = 0;
  if (omit)
    k_om = omit->sample_round_omissions(len, base_.steps_, rng);
  std::fill(omits_.begin(), omits_.end(), 0);
  if (k_om > 0) {
    std::uint64_t rest = len;
    std::uint64_t left_om = k_om;
    for (std::size_t i = 0; i < cells_.size() && left_om > 0; ++i) {
      if (cells_[i] == 0) continue;
      const std::uint64_t k =
          leap::sample_hypergeometric(rest, cells_[i], left_om, rng);
      omits_[i] = k;
      rest -= cells_[i];
      left_om -= k;
    }
  }

  // 6. Apply every cell as bulk count moves, accumulating the touched
  // agents' post-round states for the collision draw.
  std::fill(touched_.begin(), touched_.end(), 0);
  const InteractionClass oc = base_.omit_class_;
  for (std::size_t s = 0; s < q; ++s) {
    for (std::size_t r = 0; r < q; ++r) {
      const std::uint64_t m = cells_[s * q + r];
      if (m == 0) continue;
      const auto ss = static_cast<State>(s);
      const auto rr = static_cast<State>(r);
      const std::uint64_t om = omits_[s * q + r];
      const std::uint64_t real = m - om;
      if (real > 0) {
        if (base_.rules_.is_noop(InteractionClass::Real, ss, rr)) {
          base_.stats_.record_noops(real);
          d.noops += real;
          touched_[s] += real;
          touched_[r] += real;
        } else {
          const StatePair out =
              base_.rules_.outcome(InteractionClass::Real, ss, rr);
          base_.bulk_fire(InteractionClass::Real, ss, rr, real);
          touched_[out.starter] += real;
          touched_[out.reactor] += real;
          d.fired = true;
        }
      }
      if (om > 0) {
        if (base_.rules_.is_noop(oc, ss, rr)) {
          base_.stats_.record_omissive_noops(om);
          d.noops += om;
          touched_[s] += om;
          touched_[r] += om;
        } else {
          const StatePair out = base_.rules_.outcome(oc, ss, rr);
          base_.bulk_fire(oc, ss, rr, om);
          touched_[out.starter] += om;
          touched_[out.reactor] += om;
          d.fired = true;
          d.omissive = true;
        }
      }
    }
  }
  d.interactions += len;
  d.omissions += k_om;
  base_.steps_ += len;
  PPFS_AUDIT_INVOKE(audit_round(len, k_om));

  // 7. The collision interaction — pair l+1, uniform over ordered pairs
  // not entirely untouched — unless the round was truncated at the cap.
  if (len < cap) {
    const auto& cnow = base_.conf_.counts();
    const std::uint64_t untouched = n - len2;
    // ppfs-lint: allow(weight-mul): untouched <= n and 2l <= n with
    // n < 2^32, so both ordered-pair products stay inside u64.
    const std::uint64_t m_all = t - untouched * (untouched - 1);
    const std::uint64_t v = rng.below(m_all);
    State s2;
    State r2;
    // ppfs-lint: allow(weight-mul): see the m_all bound above.
    if (v < len2 * (n - 1)) {
      // Starter touched, reactor anyone else.
      s2 = pick_state(q, rng.below(len2), "RoundSystem::collision_starter",
                      [&](std::size_t i) { return touched_[i]; });
      r2 = pick_state(q, rng.below(n - 1), "RoundSystem::collision_reactor",
                      [&](std::size_t i) {
                        return static_cast<std::uint64_t>(cnow[i]) -
                               (i == s2 ? 1 : 0);
                      });
    } else {
      // Starter untouched, reactor among the touched.
      s2 = pick_state(q, rng.below(untouched),
                      "RoundSystem::collision_starter",
                      [&](std::size_t i) {
                        return static_cast<std::uint64_t>(cnow[i]) -
                               touched_[i];
                      });
      r2 = pick_state(q, rng.below(len2), "RoundSystem::collision_reactor",
                      [&](std::size_t i) { return touched_[i]; });
    }
    const bool omissive =
        base_.omit_ && base_.omit_->should_omit(rng, base_.steps_);
    const InteractionClass cls = omissive ? oc : InteractionClass::Real;
    if (omissive) ++d.omissions;
    if (base_.rules_.is_noop(cls, s2, r2)) {
      ++d.noops;
      if (omissive) base_.stats_.record_omissive_noops(1);
      else base_.stats_.record_noops(1);
    } else {
      base_.apply_fire(cls, s2, r2, d);
    }
    ++d.interactions;
    ++base_.steps_;
  }
  return d;
}

}  // namespace ppfs

#include "engine/batch/dispatch.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "engine/batch/agent_space.hpp"
#include "engine/batch/regime.hpp"
#include "engine/batch/round_system.hpp"
#include "util/audit.hpp"

namespace ppfs {

namespace {

// Resolve the effective model for a (model, adversary) pair: attaching an
// adversary to a non-omissive model lifts it to its omissive closure
// (undetectable omissions — the Fig. 1 embedding); an adversary with rate
// 0 is no adversary at all.
struct ResolvedConfig {
  Model model;
  std::optional<AdversaryParams> adversary;
};

ResolvedConfig resolve(const EngineConfig& config) {
  ResolvedConfig r{config.model, config.adversary};
  if (r.adversary && r.adversary->rate <= 0.0) r.adversary.reset();
  if (r.adversary) r.model = omissive_closure(config.model);
  return r;
}

// Pull-style adversary accounting, shared by every adapter that owns an
// omission process: total emitted omissions, and the remaining budget as a
// gauge when the adversary class bounds it (UO's unbounded budget is not a
// meaningful gauge).
void sync_adversary_metrics(obs::MetricRegistry& reg,
                            const OmissionProcess& omit) {
  reg.counter("adv.omissions").set(omit.emitted());
  const std::size_t budget = omit.remaining_budget();
  if (budget != std::numeric_limits<std::size_t>::max())
    reg.gauge("adv.budget_remaining").set(static_cast<double>(budget));
}

class NativeEngine final : public Engine {
 public:
  NativeEngine(RuleMatrix rules, std::vector<State> initial,
               const std::optional<AdversaryParams>& adversary)
      : sys_(std::move(rules), std::move(initial)),
        stats_(sys_.rules().num_states()) {
    if (adversary) omit_.emplace(*adversary);
  }

  [[nodiscard]] std::string kind() const override { return "native"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.rules().protocol();
  }
  [[nodiscard]] Model model() const override { return sys_.rules().model(); }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }
  [[nodiscard]] std::size_t omissions() const override { return sys_.omissions(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    sys_.population().counts_into(out);
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const RuleMatrix& rules = sys_.rules();
    for (std::size_t i = 0; i < budget; ++i) {
      Interaction ia;
      if (omit_ && omit_->should_omit(rng, sys_.steps())) {
        // Uniform victim pair, struck on the adversary's configured side.
        ia = uniform_ordered_pair(rng, sys_.size());
        ia.omissive = true;
        ia.side = omit_->params().side;
      } else {
        ia = sched.next(rng, sys_.steps());
      }
      const State s = sys_.state(ia.starter);
      const State r = sys_.state(ia.reactor);
      const InteractionClass cls = rules.classify(ia);
      // interact() may throw (e.g. an omissive interaction from a
      // hand-built scheduler under a non-omissive model); record only
      // interactions that executed.
      sys_.interact(ia);
      if (rules.is_noop(cls, s, r)) {
        if (ia.omissive) stats_.record_omissive_noops(1);
        else stats_.record_noops(1);
      } else {
        if (ia.omissive) stats_.record_omissive_fire(s, r);
        else stats_.record_fire(s, r);
      }
      if (trace_ != nullptr) trace_->append(ia);
    }
    return budget;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return stats_; }

  bool record_trace(Trace* sink) override {
    trace_ = sink;
    return true;
  }

  void sync_metrics() override {
    Engine::sync_metrics();
    if (metrics() != nullptr && omit_)
      sync_adversary_metrics(*metrics(), *omit_);
  }

 protected:
  void wire_metrics(obs::MetricRegistry& reg) override {
    sys_.set_metrics(&reg);
    if (omit_) omit_->set_metrics(&reg);
  }

 private:
  InteractionSystem sys_;
  RunStats stats_;
  std::optional<OmissionProcess> omit_;
  Trace* trace_ = nullptr;
};

class BatchEngine final : public Engine {
 public:
  BatchEngine(RuleMatrix rules, std::vector<std::size_t> counts,
              const std::optional<AdversaryParams>& adversary)
      : sys_(std::move(rules), std::move(counts)) {
    if (adversary) sys_.set_omission_process(*adversary);
  }

  [[nodiscard]] std::string kind() const override { return "batch"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.protocol();
  }
  [[nodiscard]] Model model() const override { return sys_.rules().model(); }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }
  [[nodiscard]] std::size_t omissions() const override { return sys_.omissions(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sys_.counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    // The batch engine realizes the uniform distribution internally; the
    // scheduler argument is validated, not consumed.
    const auto* uniform = dynamic_cast<const UniformScheduler*>(&sched);
    if (uniform == nullptr || uniform->size() != sys_.size())
      throw std::invalid_argument(
          "batch engine: scheduler is not the uniform distribution over this "
          "population (scripted/hand-built adversarial runs need the native "
          "engine; omission adversaries attach via make_engine)");
    std::size_t covered = 0;
    while (covered < budget) covered += sys_.advance(budget - covered, rng).interactions;
    PPFS_AUDIT_INVOKE(sys_.audit_invariants());
    return covered;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return sys_.stats(); }

  [[nodiscard]] bool checkpointable() const override { return true; }
  void save_state(bin::Writer& w) const override { sys_.save_state(w); }
  void restore_state(bin::Reader& r) override { sys_.restore_state(r); }

  void sync_metrics() override {
    Engine::sync_metrics();
    if (metrics() == nullptr) return;
    if (const OmissionProcess* o = sys_.omission_process())
      sync_adversary_metrics(*metrics(), *o);
  }

 protected:
  void wire_metrics(obs::MetricRegistry& reg) override {
    sys_.set_metrics(&reg);
  }

 private:
  BatchSystem sys_;
};

// engine=auto over a closed universe: two faces — the count-leap face
// (BatchSystem::advance, wins when almost no delivery changes counts) and
// the round-dense face (RoundSystem, wins when almost every delivery
// does) — over ONE BatchSystem. The faces share the configuration, stats,
// step counter and omission process, so switching moves no state and
// consumes no Rng draws; the trajectory distribution is identical on both
// (each is an exact sampler of the same count chain). A RegimeMonitor
// arbitrates on the fire density ((1-p)Wr + p·Wo)/T — an O(1) read off
// the incrementally-maintained class weights — with Space::Agent mapped
// to the round face: at or above `kToRound` density rounds win (the leap
// degenerates to one draw per interaction), at or below `kToLeap` leaping
// wins (rounds pay O(q^2) per ~sqrt(n) mostly-noop interactions), and the
// monitor's hysteresis/cooldown keeps the boundary from flapping.
class AdaptiveBatchEngine final : public Engine {
 public:
  AdaptiveBatchEngine(RuleMatrix rules, std::vector<std::size_t> counts,
                      const std::optional<AdversaryParams>& adversary)
      : sys_(std::move(rules), std::move(counts)), round_(sys_) {
    if (adversary) sys_.set_omission_process(*adversary);
    RegimeMonitor::Thresholds thr;
    thr.to_agent = kToRound;
    thr.to_count = kToLeap;
    monitor_.emplace(RegimeMonitor::favored(sys_.fire_density(), thr), thr);
  }

  [[nodiscard]] std::string kind() const override { return "auto"; }
  [[nodiscard]] std::string active_kind() const override {
    return in_round() ? "round" : "leap";
  }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.protocol();
  }
  [[nodiscard]] Model model() const override { return sys_.rules().model(); }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }
  [[nodiscard]] std::size_t omissions() const override { return sys_.omissions(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sys_.counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const auto* uniform = dynamic_cast<const UniformScheduler*>(&sched);
    if (uniform == nullptr || uniform->size() != sys_.size())
      throw std::invalid_argument(
          "auto engine: scheduler is not the uniform distribution over this "
          "population (scripted/hand-built adversarial runs need the native "
          "engine; omission adversaries attach via make_engine)");
    std::size_t covered = 0;
    while (covered < budget) {
      // Internal slice between regime checks, independent of the caller's
      // advance() granularity. Truncating a round or a leap at the slice
      // boundary is exact (i.i.d. pairs / memoryless geometric).
      const std::size_t slice = std::min(kSlice, budget - covered);
      std::size_t c = 0;
      if (in_round()) {
        while (c < slice) c += round_.advance(slice - c, rng).interactions;
      } else {
        while (c < slice) c += sys_.advance(slice - c, rng).interactions;
      }
      covered += c;
      PPFS_AUDIT_INVOKE(sys_.audit_invariants());
      // Density is the exact per-delivery fire probability, so the
      // monitor's dispersion channel carries it directly; the cache
      // channel is neutral (no cache here) and the fire-cost override
      // stays cold (both faces already ARE count space). Arbitration is
      // deterministic — the draw ledger pins that no Rng draw hides here
      // (a draw would silently shift the trajectory across face switches).
      {
        PPFS_DRAW_FREE(rng, "AdaptiveBatchEngine regime arbitration");
        (void)monitor_->observe(
            RegimeMonitor::Signals{sys_.fire_density(), 1.0, 0.0});
      }
    }
    return covered;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return sys_.stats(); }

  // Both faces share one BatchSystem; the only face-private state is the
  // round counter and the monitor's hysteresis face.
  [[nodiscard]] bool checkpointable() const override { return true; }
  void save_state(bin::Writer& w) const override {
    sys_.save_state(w);
    round_.save_state(w);
    monitor_->save_state(w);
  }
  void restore_state(bin::Reader& r) override {
    sys_.restore_state(r);
    round_.restore_state(r);
    monitor_->restore_state(r);
  }

  void sync_metrics() override {
    Engine::sync_metrics();
    if (metrics() == nullptr) return;
    obs::MetricRegistry& reg = *metrics();
    reg.gauge("auto.round_face").set(in_round() ? 1.0 : 0.0);
    reg.gauge("auto.switches")
        .set(static_cast<double>(monitor_->switches()));
    if (const OmissionProcess* o = sys_.omission_process())
      sync_adversary_metrics(reg, *o);
  }

 protected:
  void wire_metrics(obs::MetricRegistry& reg) override {
    sys_.set_metrics(&reg);
    round_.set_metrics(&reg);
  }

 private:
  // Fire density at/above which the round face runs, at/below which the
  // leap face runs; the band between is sticky. At density d the leap
  // covers 1/d interactions per draw, so below ~1/16 leaping is already
  // an order of magnitude ahead; above ~1/4 rounds of ~sqrt(n) amortize
  // their O(q^2) table work to sub-constant per interaction.
  static constexpr double kToRound = 0.25;
  static constexpr double kToLeap = 1.0 / 16;
  static constexpr std::size_t kSlice = 1u << 16;

  [[nodiscard]] bool in_round() const {
    return monitor_->current() == RegimeMonitor::Space::Agent;
  }

  BatchSystem sys_;
  RoundSystem round_;  // second face over sys_'s state
  std::optional<RegimeMonitor> monitor_;
};

// Step-wise simulator behind the Engine interface: the per-agent facade of
// the (simulator x engine) lattice. Event recording is off — engine runs
// are throughput/convergence runs; verification-grade runs use the
// Simulator directly.
class SimNativeEngine final : public Engine {
 public:
  SimNativeEngine(std::unique_ptr<Simulator> sim,
                  const std::optional<AdversaryParams>& adversary)
      : sim_(std::move(sim)), stats_(sim_->protocol().num_states()) {
    if (adversary) omit_.emplace(*adversary);
    sim_->record_events(false);
  }

  [[nodiscard]] std::string kind() const override { return "native"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sim_->protocol();
  }
  [[nodiscard]] Model model() const override { return sim_->model(); }
  [[nodiscard]] std::size_t size() const override { return sim_->num_agents(); }
  [[nodiscard]] std::size_t interactions() const override {
    return sim_->interactions();
  }
  [[nodiscard]] std::size_t omissions() const override {
    // Inserted by our own process, or delivered pre-marked by an
    // adversarial scheduler — the simulator counts both.
    return sim_->omissions();
  }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sim_->projected_counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const std::size_t n = sim_->num_agents();
    for (std::size_t i = 0; i < budget; ++i) {
      Interaction ia;
      if (omit_ && omit_->should_omit(rng, sim_->interactions())) {
        ia = uniform_ordered_pair(rng, n);
        ia.omissive = true;
        ia.side = omit_->params().side;
      } else {
        ia = sched.next(rng, sim_->interactions());
      }
      // Fire/no-op at the simulated level: did the interaction emit any
      // simulated update? Recorded against the agents' projected
      // pre-states.
      const State ps = sim_->simulated_state(ia.starter);
      const State pr = sim_->simulated_state(ia.reactor);
      const std::uint64_t before = sim_->simulated_updates();
      sim_->interact(ia);
      const bool fired = sim_->simulated_updates() > before;
      if (fired) {
        if (ia.omissive) stats_.record_omissive_fire(ps, pr);
        else stats_.record_fire(ps, pr);
      } else {
        if (ia.omissive) stats_.record_omissive_noops(1);
        else stats_.record_noops(1);
      }
    }
    return budget;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return stats_; }

  void sync_metrics() override {
    Engine::sync_metrics();
    if (metrics() != nullptr && omit_)
      sync_adversary_metrics(*metrics(), *omit_);
  }

 protected:
  // The step-wise Simulator facade carries no hot-path hooks (it is the
  // verification path, not the throughput path); only the adversary wires.
  void wire_metrics(obs::MetricRegistry& reg) override {
    if (omit_) omit_->set_metrics(&reg);
  }

 private:
  std::unique_ptr<Simulator> sim_;
  RunStats stats_;
  std::optional<OmissionProcess> omit_;
};

// Count-space simulator engine over the open-universe SimBatchSystem.
class SimBatchEngine final : public Engine {
 public:
  SimBatchEngine(std::shared_ptr<DynamicRuleSource> rules,
                 const std::vector<State>& sim_initial,
                 const std::optional<AdversaryParams>& adversary,
                 std::optional<std::size_t> outcome_cache_capacity)
      : sys_(std::move(rules), sim_initial, outcome_cache_capacity) {
    if (adversary) sys_.set_omission_process(*adversary);
  }

  [[nodiscard]] std::string kind() const override { return "batch"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.protocol();
  }
  [[nodiscard]] Model model() const override { return sys_.rules().model(); }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }
  [[nodiscard]] std::size_t omissions() const override { return sys_.omissions(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sys_.projected_counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const auto* uniform = dynamic_cast<const UniformScheduler*>(&sched);
    if (uniform == nullptr || uniform->size() != sys_.size())
      throw std::invalid_argument(
          "sim batch engine: scheduler is not the uniform distribution over "
          "this population (scripted/hand-built adversarial runs need the "
          "native engine; omission adversaries attach via make_sim_engine)");
    std::size_t covered = 0;
    while (covered < budget)
      covered += sys_.advance(budget - covered, rng).interactions;
    PPFS_AUDIT_INVOKE(sys_.audit_invariants());
    return covered;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return sys_.stats(); }

  [[nodiscard]] bool checkpointable() const override {
    return sys_.rules().checkpointable();
  }
  void save_state(bin::Writer& w) const override { sys_.save_state(w); }
  void restore_state(bin::Reader& r) override { sys_.restore_state(r); }

  [[nodiscard]] std::size_t universe_live() const override {
    return sys_.universe_live();
  }

  void sync_metrics() override {
    Engine::sync_metrics();
    if (metrics() == nullptr) return;
    obs::MetricRegistry& reg = *metrics();
    sys_.rules().export_metrics(reg);
    reg.gauge("universe.live").set(static_cast<double>(sys_.universe_live()));
    reg.gauge("universe.size")
        .set(static_cast<double>(sys_.rules().universe_size()));
    if (const OmissionProcess* o = sys_.omission_process())
      sync_adversary_metrics(reg, *o);
  }

  void fill_summary(obs::ConfigSummary& out, std::size_t top_k) const override {
    Engine::fill_summary(out, top_k);
    // top_counts stay the simulated projection (those labels mean
    // something to a reader); the distinct-state count tracks the
    // execution universe instead — dispersion then measures wrapper-state
    // growth, the quantity the open-universe design exists to bound.
    out.distinct_states = sys_.universe_live();
  }

 protected:
  void wire_metrics(obs::MetricRegistry& reg) override {
    sys_.set_metrics(&reg);
  }

 private:
  SimBatchSystem sys_;
};

// engine=auto: one rule source, two execution strategies — the count-space
// SimBatchSystem and the direct per-agent AgentSpaceSim driver — with a
// RegimeMonitor (engine/batch/regime.hpp) choosing between them. The run
// starts on whichever representation the initial dispersion favors and may
// switch at internal slice boundaries; the representation bridge moves the
// wrapper-state MULTISET (counts -> records in sorted-id order, records ->
// counts by re-interning), which consumes zero Rng draws and is
// distribution-exact because wrapper states are exchangeable under the
// uniform scheduler. Stats from both strategies fold into one master
// RunStats at the simulated-projection level.
//
// With an omission adversary the favored START representation is locked
// for the whole run: the process's burst/budget state is live mid-run and
// is not transferred across representations.
class AutoSimEngine final : public Engine {
 public:
  AutoSimEngine(std::shared_ptr<DynamicRuleSource> rules,
                const std::vector<State>& sim_initial,
                const std::optional<AdversaryParams>& adversary,
                std::optional<std::size_t> outcome_cache_capacity,
                std::optional<std::size_t> force_switch_at)
      : rules_(std::move(rules)),
        stats_(rules_->protocol().num_states()),
        cache_cap_(outcome_cache_capacity),
        force_switch_at_(force_switch_at) {
    driver_ = make_agent_space_sim(*rules_);
    sys_ = std::make_unique<SimBatchSystem>(rules_, sim_initial, cache_cap_);
    n_ = sys_->size();
    const double d0 = static_cast<double>(sys_->universe_live()) /
                      static_cast<double>(n_);
    RegimeMonitor::Thresholds thr;
    thr.fire_cost_ratio = rules_->fire_cost_ratio();
    monitor_.emplace(driver_ ? RegimeMonitor::favored(d0, thr)
                             : RegimeMonitor::Space::Count,
                     thr);
    if (adversary) {
      adv_ = adversary;
      locked_ = true;
    }
    if (driver_ && monitor_->current() == RegimeMonitor::Space::Agent)
      to_agent_space();
    if (adv_) {
      if (in_agent_) omit_.emplace(*adv_);
      else sys_->set_omission_process(*adv_);
    }
    // The monitor reads its signals (dispersion, windowed cache hit rate)
    // from the engine registry; enabling it up front is free on the hot
    // path — everything it needs is pull-style.
    enable_metrics();
  }

  [[nodiscard]] std::string kind() const override { return "auto"; }
  [[nodiscard]] std::string active_kind() const override {
    return in_agent_ ? "agent" : "count";
  }
  [[nodiscard]] const Protocol& protocol() const override {
    return rules_->protocol();
  }
  [[nodiscard]] Model model() const override { return rules_->model(); }
  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] std::size_t interactions() const override { return steps_; }
  [[nodiscard]] std::size_t omissions() const override {
    if (!adv_) return 0;
    return in_agent_ ? omit_->emitted() : sys_->omissions();
  }

  void counts_into(std::vector<std::size_t>& out) const override {
    if (in_agent_) driver_->projected_counts(out);
    else out = sys_->projected_counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const auto* uniform = dynamic_cast<const UniformScheduler*>(&sched);
    if (uniform == nullptr || uniform->size() != n_)
      throw std::invalid_argument(
          "auto engine: scheduler is not the uniform distribution over this "
          "population (scripted/hand-built adversarial runs need the native "
          "engine; omission adversaries attach via make_sim_engine)");
    std::size_t covered = 0;
    while (covered < budget) {
      const std::size_t slice = std::min(kSlice, budget - covered);
      if (in_agent_) {
        driver_->advance(slice, rng, stats_, omit_ ? &*omit_ : nullptr,
                         steps_);
        steps_ += slice;
        covered += slice;
      } else {
        std::size_t c = 0;
        while (c < slice) c += sys_->advance(slice - c, rng).interactions;
        fold_count_stats();
        steps_ += c;
        covered += c;
        PPFS_AUDIT_INVOKE(sys_->audit_invariants());
      }
      // Arbitration AND the representation bridges it may trigger are
      // draw-free by design (the bridge moves the wrapper multiset, which
      // is exchangeable — see the class comment); the draw ledger turns
      // that design claim into a checked contract.
      {
        PPFS_DRAW_FREE(rng, "AutoSimEngine regime arbitration/bridge");
        maybe_switch();
      }
    }
    return covered;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return stats_; }

  [[nodiscard]] bool checkpointable() const override {
    return rules_->checkpointable();
  }
  // Arbitration reads windowed cache-counter deltas (windowed_hit_rate)
  // that reset with the process — a restored replica would observe a cold
  // window the uninterrupted run never saw and could switch differently.
  // Exactness therefore requires arbitration to be inert: adversary-locked
  // runs never switch, and a count-only source has nothing to switch to.
  [[nodiscard]] bool checkpoint_exact() const override {
    return checkpointable() && (locked_ || driver_ == nullptr);
  }

  void save_state(bin::Writer& w) const override {
    w.u8(in_agent_ ? 1 : 0);
    if (in_agent_) {
      // Agent face: the interner plus the per-agent records ARE the
      // population; the adversary chain lives engine-side here.
      rules_->save_checkpoint(w);
      driver_->save_records(w);
      if (adv_) omit_->save_state(w);
    } else {
      // Count face: the SimBatchSystem payload embeds the rule-source
      // checkpoint and the omission process it owns.
      sys_->save_state(w);
    }
    stats_.save_state(w);
    monitor_->save_state(w);
    w.u8(forced_done_ ? 1 : 0);
    w.var(steps_);
    w.var(next_obs_);
    w.var(last_distinct_);
    w.var(last_fires_);
    w.var(last_fire_steps_);
  }

  void restore_state(bin::Reader& r) override {
    const bool agent = r.u8() != 0;
    if (agent && driver_ == nullptr)
      throw std::runtime_error(
          "auto engine restore: checkpoint is in agent space but this rule "
          "source has no agent-space driver (mismatched construction)");
    // Align the live representation with the checkpoint's BEFORE reading
    // its payload; the bridge's placeholder contents are overwritten
    // wholesale below (rules_->restore_checkpoint resets the interner,
    // restore_records / sys_->restore_state reset the population).
    if (agent && !in_agent_) {
      to_agent_space();
    } else if (!agent && in_agent_) {
      to_count_space();
      if (adv_) sys_->set_omission_process(*adv_);
    }
    if (agent) {
      rules_->restore_checkpoint(r);
      driver_->restore_records(r);
      if (adv_) {
        if (!omit_) omit_.emplace(*adv_);
        omit_->restore_state(r);
      }
    } else {
      sys_->restore_state(r);
    }
    stats_.restore_state(r);
    monitor_->restore_state(r);
    forced_done_ = r.u8() != 0;
    steps_ = r.var();
    next_obs_ = r.var();
    last_distinct_ = r.var();
    last_fires_ = r.var();
    last_fire_steps_ = r.var();
    // The windowed cache-hit baseline is deliberately NOT serialized: the
    // underlying counters reset with the process, so the window restarts
    // cold (harmless exactly when checkpoint_exact() held at save time).
    last_hits_ = 0;
    last_misses_ = 0;
  }

  [[nodiscard]] std::size_t universe_live() const override {
    return in_agent_ ? last_distinct_ : sys_->universe_live();
  }

  void sync_metrics() override {
    Engine::sync_metrics();
    if (metrics() == nullptr) return;
    obs::MetricRegistry& reg = *metrics();
    rules_->export_metrics(reg);
    reg.gauge("universe.live").set(static_cast<double>(universe_live()));
    reg.gauge("universe.size")
        .set(static_cast<double>(rules_->universe_size()));
    reg.gauge("auto.agent_space").set(in_agent_ ? 1.0 : 0.0);
    reg.gauge("auto.switches")
        .set(static_cast<double>(monitor_->switches()));
    const OmissionProcess* o =
        in_agent_ ? (omit_ ? &*omit_ : nullptr) : sys_->omission_process();
    if (o != nullptr) sync_adversary_metrics(reg, *o);
  }

  void fill_summary(obs::ConfigSummary& out, std::size_t top_k) const override {
    Engine::fill_summary(out, top_k);
    out.distinct_states = universe_live();
  }

 protected:
  void wire_metrics(obs::MetricRegistry& reg) override {
    rules_->set_metrics(&reg);
    if (sys_) sys_->set_metrics(&reg);
    if (omit_) omit_->set_metrics(&reg);
  }

 private:
  using Space = RegimeMonitor::Space;

  // Internal slice between regime checks — independent of the caller's
  // advance() granularity, so run_engine_steps(2M) still re-evaluates the
  // regime along the way.
  static constexpr std::size_t kSlice = 1u << 16;

  void fold_count_stats() {
    stats_.merge(sys_->stats());
    sys_->stats().reset(stats_.num_states());
  }

  // Count space observes every slice (dispersion is an O(1) gauge); agent
  // space amortizes its O(n) distinct-hash estimate over >= n covered
  // interactions.
  void maybe_switch() {
    if (driver_ == nullptr) return;
    if (force_switch_at_ && !forced_done_ && steps_ >= *force_switch_at_) {
      forced_done_ = true;
      if (in_agent_) to_count_space();
      else to_agent_space();
      monitor_->note_forced(in_agent_ ? Space::Agent : Space::Count);
      return;
    }
    if (locked_) return;
    if (in_agent_ && steps_ < next_obs_) return;
    next_obs_ = steps_ + std::max(kSlice, n_);
    double live;
    if (in_agent_) {
      last_distinct_ = driver_->distinct_wrapper_estimate();
      live = static_cast<double>(last_distinct_);
    } else {
      live = static_cast<double>(sys_->universe_live());
    }
    const RegimeMonitor::Signals s{live / static_cast<double>(n_),
                                   windowed_hit_rate(),
                                   windowed_fire_fraction()};
    const Space want = monitor_->observe(s);
    if (want == Space::Agent && !in_agent_) to_agent_space();
    else if (want == Space::Count && in_agent_) to_count_space();
  }

  // Hit rate of the source-internal outcome caches since the last
  // observation; 1.0 (neutral) when nothing moved. The counter names
  // cover both reactor-side sources (cache.react.*) and SKnO
  // (cache.recv.*); absent names read as 0.
  [[nodiscard]] double windowed_hit_rate() {
    obs::MetricRegistry& reg = *metrics();
    rules_->export_metrics(reg);
    const std::uint64_t hits = reg.counter("cache.react.hits").value() +
                               reg.counter("cache.recv.hits").value();
    const std::uint64_t misses = reg.counter("cache.react.misses").value() +
                                 reg.counter("cache.recv.misses").value();
    const std::uint64_t dh = hits - last_hits_;
    const std::uint64_t dm = misses - last_misses_;
    last_hits_ = hits;
    last_misses_ = misses;
    return dh + dm == 0
               ? 1.0
               : static_cast<double>(dh) / static_cast<double>(dh + dm);
  }

  // Fires (real + omissive) per interaction covered since the last
  // observation, from the master RunStats — count-space slices fold in
  // before maybe_switch() and the agent driver records directly, so the
  // deltas are representation-independent (and deterministic per seed,
  // unlike wall-clock probing — reproducibility survives).
  [[nodiscard]] double windowed_fire_fraction() {
    const std::uint64_t fires = stats_.total_fires() + stats_.omissive_fires();
    const std::uint64_t df = fires - last_fires_;
    const std::uint64_t dsteps = steps_ - last_fire_steps_;
    last_fires_ = fires;
    last_fire_steps_ = steps_;
    return dsteps == 0 ? 0.0
                       : static_cast<double>(df) / static_cast<double>(dsteps);
  }

  void to_agent_space() {
    fold_count_stats();
    const SparseConfiguration& conf = sys_->configuration();
    std::vector<std::pair<State, std::uint32_t>> pairs;
    pairs.reserve(conf.occupied().size());
    for (const State s : conf.occupied())
      pairs.emplace_back(s, static_cast<std::uint32_t>(conf.count(s)));
    std::sort(pairs.begin(), pairs.end());  // deterministic record layout
    driver_->load(pairs);
    last_distinct_ = pairs.size();
    sys_.reset();
    // Open universes: the records now live in the driver, so release the
    // ids — the interner's footprint keeps tracking the live set, and the
    // generation bumps guard the outcome caches for when ids recycle.
    if (rules_->open_universe())
      for (const auto& [s, k] : pairs) rules_->release_state(s);
    in_agent_ = true;
    next_obs_ = steps_ + std::max(kSlice, n_);
  }

  void to_count_space() {
    std::vector<State> ids;
    driver_->store(ids);
    std::sort(ids.begin(), ids.end());
    std::vector<std::pair<State, std::uint32_t>> pairs;
    for (std::size_t i = 0; i < ids.size();) {
      std::size_t j = i;
      while (j < ids.size() && ids[j] == ids[i]) ++j;
      pairs.emplace_back(ids[i], static_cast<std::uint32_t>(j - i));
      i = j;
    }
    sys_ = std::make_unique<SimBatchSystem>(
        rules_, SimBatchSystem::AdoptWrappers{}, pairs, cache_cap_);
    if (metrics() != nullptr) sys_->set_metrics(metrics());
    in_agent_ = false;
  }

  std::shared_ptr<DynamicRuleSource> rules_;
  std::unique_ptr<SimBatchSystem> sys_;    // live in count space only
  std::unique_ptr<AgentSpaceSim> driver_;  // null: count-only source
  std::optional<RegimeMonitor> monitor_;
  RunStats stats_;  // master record; per-strategy slices fold in
  std::optional<std::size_t> cache_cap_;
  std::optional<std::size_t> force_switch_at_;
  bool forced_done_ = false;
  std::optional<AdversaryParams> adv_;
  std::optional<OmissionProcess> omit_;  // agent-space-locked runs only
  bool locked_ = false;
  bool in_agent_ = false;
  std::size_t n_ = 0;
  std::size_t steps_ = 0;
  std::size_t next_obs_ = 0;
  std::size_t last_distinct_ = 0;
  std::uint64_t last_hits_ = 0;
  std::uint64_t last_misses_ = 0;
  std::uint64_t last_fires_ = 0;
  std::uint64_t last_fire_steps_ = 0;
};

// Count-vector construction point, shared by build() below and the
// make_engine_from_counts overloads (populations too large to enumerate
// per agent). "native" has no counts path by design.
std::unique_ptr<Engine> build_from_counts(
    const std::string& kind, RuleMatrix rules, std::vector<std::size_t> counts,
    const std::optional<AdversaryParams>& adversary) {
  if (counts.size() > rules.num_states())
    throw std::invalid_argument(
        "make_engine: counts vector longer than the protocol's state space");
  counts.resize(rules.num_states(), 0);
  if (kind == "batch")
    return std::make_unique<BatchEngine>(std::move(rules), std::move(counts),
                                         adversary);
  // Closed universes still have a regime — not dispersion (the state
  // space is fixed) but fire DENSITY: sparse runs want the leap face,
  // dense runs the round face. "auto" arbitrates between them.
  if (kind == "auto")
    return std::make_unique<AdaptiveBatchEngine>(std::move(rules),
                                                 std::move(counts), adversary);
  if (kind == "native")
    throw std::invalid_argument(
        "make_engine_from_counts: the native engine is per-agent; populations "
        "built from counts exist to avoid materializing agents — use "
        "make_engine, or kind \"batch\"/\"auto\"");
  throw std::invalid_argument("make_engine: unknown engine kind '" + kind + "'");
}

std::unique_ptr<Engine> build(const std::string& kind, RuleMatrix rules,
                              std::vector<State> initial,
                              const std::optional<AdversaryParams>& adversary) {
  if (kind == "native")
    return std::make_unique<NativeEngine>(std::move(rules), std::move(initial),
                                          adversary);
  std::vector<std::size_t> counts(rules.num_states(), 0);
  for (State q : initial) {
    if (q >= rules.num_states())
      throw std::invalid_argument("make_engine: initial state out of range");
    ++counts[q];
  }
  return build_from_counts(kind, std::move(rules), std::move(counts),
                           adversary);
}

// Deduped occupied states of a counts vector — the Q'_P seed a one-way
// compile needs (it seeds reachable states, multiplicity is irrelevant).
std::vector<State> occupied_states(const std::vector<std::size_t>& counts) {
  std::vector<State> seed;
  for (std::size_t q = 0; q < counts.size(); ++q)
    if (counts[q] != 0) seed.push_back(static_cast<State>(q));
  return seed;
}

}  // namespace

bool Engine::record_trace(Trace* /*sink*/) { return false; }

void Engine::save_state(bin::Writer& /*w*/) const {
  throw std::logic_error("engine '" + kind() + "' is not checkpointable");
}

void Engine::restore_state(bin::Reader& /*r*/) {
  throw std::logic_error("engine '" + kind() + "' is not checkpointable");
}

obs::MetricRegistry& Engine::enable_metrics() {
  if (!metrics_) {
    metrics_ = std::make_unique<obs::MetricRegistry>();
    wire_metrics(*metrics_);
  }
  return *metrics_;
}

void Engine::sync_metrics() {
  if (!metrics_) return;
  metrics_->counter("run.interactions").set(interactions());
  metrics_->counter("run.omissions").set(omissions());
  const RunStats& st = stats();
  metrics_->counter("run.fires").set(st.total_fires());
  metrics_->counter("run.noops").set(st.noops());
}

void Engine::fill_summary(obs::ConfigSummary& out, std::size_t top_k) const {
  out.interactions = interactions();
  std::vector<std::size_t> c;
  counts_into(c);
  std::vector<std::pair<std::size_t, std::size_t>> occupied;  // (count, state)
  for (std::size_t q = 0; q < c.size(); ++q)
    if (c[q] != 0) occupied.emplace_back(c[q], q);
  out.distinct_states = occupied.size();
  std::sort(occupied.begin(), occupied.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (occupied.size() > top_k) occupied.resize(top_k);
  out.top_counts.clear();
  const Protocol& p = protocol();
  for (const auto& [cnt, q] : occupied)
    out.top_counts.push_back({p.state_name(static_cast<State>(q)), cnt});
}

namespace {

// Snapshot the engine into the recorder if a slice boundary crossed its
// cadence. Metrics need not be enabled: the timeline then carries only the
// configuration summary (an empty shared registry keeps record()'s delta
// encoding trivial).
void maybe_snapshot(Engine& engine, obs::FlightRecorder* recorder) {
  if (recorder == nullptr || !recorder->due(engine.interactions())) return;
  engine.sync_metrics();
  obs::ConfigSummary summary;
  engine.fill_summary(summary, recorder->options().top_k);
  if (engine.metrics() != nullptr) {
    recorder->record(*engine.metrics(), summary);
  } else {
    static const obs::MetricRegistry kEmpty;
    recorder->record(kEmpty, summary);
  }
}

}  // namespace

std::vector<std::size_t> Engine::counts() const {
  std::vector<std::size_t> out;
  counts_into(out);
  return out;
}

int Engine::consensus_output() const {
  std::vector<std::size_t> c;
  counts_into(c);
  return counts_consensus_output(c, protocol());
}

std::unique_ptr<Engine> make_engine(const std::string& kind,
                                    std::shared_ptr<const Protocol> protocol,
                                    std::vector<State> initial) {
  return make_engine(kind, std::move(protocol), std::move(initial),
                     EngineConfig{});
}

std::unique_ptr<Engine> make_engine(const std::string& kind,
                                    std::shared_ptr<const Protocol> protocol,
                                    std::vector<State> initial,
                                    const EngineConfig& config) {
  const ResolvedConfig r = resolve(config);
  return build(kind,
               RuleMatrix::compile(std::move(protocol), r.model, config.fns),
               std::move(initial), r.adversary);
}

std::unique_ptr<Engine> make_engine(
    const std::string& kind, std::shared_ptr<const OneWayProtocol> protocol,
    std::vector<State> initial, const EngineConfig& config) {
  const ResolvedConfig r = resolve(config);
  RuleMatrix rules =
      RuleMatrix::compile(std::move(protocol), r.model, initial, config.fns);
  return build(kind, std::move(rules), std::move(initial), r.adversary);
}

std::unique_ptr<Engine> make_engine_from_counts(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    std::vector<std::size_t> counts) {
  return make_engine_from_counts(kind, std::move(protocol), std::move(counts),
                                 EngineConfig{});
}

std::unique_ptr<Engine> make_engine_from_counts(
    const std::string& kind, std::shared_ptr<const Protocol> protocol,
    std::vector<std::size_t> counts, const EngineConfig& config) {
  const ResolvedConfig r = resolve(config);
  return build_from_counts(
      kind, RuleMatrix::compile(std::move(protocol), r.model, config.fns),
      std::move(counts), r.adversary);
}

std::unique_ptr<Engine> make_engine_from_counts(
    const std::string& kind, std::shared_ptr<const OneWayProtocol> protocol,
    std::vector<std::size_t> counts, const EngineConfig& config) {
  const ResolvedConfig r = resolve(config);
  RuleMatrix rules = RuleMatrix::compile(std::move(protocol), r.model,
                                         occupied_states(counts), config.fns);
  return build_from_counts(kind, std::move(rules), std::move(counts),
                           r.adversary);
}

std::unique_ptr<Engine> make_sim_engine(const std::string& kind,
                                        std::shared_ptr<const Protocol> protocol,
                                        std::vector<State> initial,
                                        const SimEngineConfig& config) {
  Model model = config.model.value_or(default_sim_model(config.spec));
  std::optional<AdversaryParams> adversary = config.adversary;
  if (adversary && adversary->rate <= 0.0) adversary.reset();
  // Same lifting as make_engine: both engine kinds realize one omission
  // process (max_burst included — the batch path samples the within-burst
  // chain exactly).
  if (adversary && !is_omissive(model)) model = omissive_closure(model);
  if (kind == "native") {
    return std::make_unique<SimNativeEngine>(
        make_spec_simulator(config.spec, model, std::move(protocol),
                            std::move(initial)),
        adversary);
  }
  if (kind == "batch") {
    auto rules = make_sim_rule_source(config.spec, model, std::move(protocol),
                                      initial.size());
    return std::make_unique<SimBatchEngine>(std::move(rules), initial,
                                            adversary,
                                            config.outcome_cache_capacity);
  }
  if (kind == "auto") {
    std::shared_ptr<DynamicRuleSource> rules = make_sim_rule_source(
        config.spec, model, std::move(protocol), initial.size());
    return std::make_unique<AutoSimEngine>(std::move(rules), initial,
                                           adversary,
                                           config.outcome_cache_capacity,
                                           config.auto_force_switch_at);
  }
  throw std::invalid_argument("make_sim_engine: unknown engine kind '" + kind +
                              "'");
}

const std::vector<std::string>& engine_kinds() {
  static const std::vector<std::string> kinds = {"native", "batch", "auto"};
  return kinds;
}

RunResult run_engine_until(Engine& engine, Scheduler& sched, Rng& rng,
                           const CountsProbe& probe, const RunOptions& opt,
                           obs::FlightRecorder* recorder) {
  RunProgress progress;
  return run_engine_until(engine, sched, rng, probe, opt, progress, nullptr,
                          recorder);
}

RunResult run_engine_until(Engine& engine, Scheduler& sched, Rng& rng,
                           const CountsProbe& probe, const RunOptions& opt,
                           RunProgress& progress, const SliceHook& on_slice,
                           obs::FlightRecorder* recorder) {
  RunResult res;
  res.steps = progress.steps;
  std::vector<std::size_t> counts;
  std::size_t consecutive = progress.consecutive;
  while (res.steps < opt.max_steps) {
    const std::size_t slice =
        std::min(opt.check_every, opt.max_steps - res.steps);
    res.steps += engine.advance(slice, sched, rng);
    {
      // Observability must never perturb the trajectory: snapshotting
      // (metrics sync + summary) draws nothing from the run's stream.
      PPFS_DRAW_FREE(rng, "flight-recorder snapshot");
      maybe_snapshot(engine, recorder);
    }
    engine.counts_into(counts);
    const bool holds = probe(counts, engine.protocol());
    engine.stats().record_probe(engine.interactions(), holds);
    if (holds) {
      if (++consecutive >= opt.stable_checks) {
        res.converged = true;
        res.omissions = engine.omissions();
        progress.steps = res.steps;
        progress.consecutive = consecutive;
        return res;
      }
    } else {
      consecutive = 0;
    }
    // The slice hook fires with the probe already recorded: engine state
    // saved here plus this progress restores to a byte-identical run.
    progress.steps = res.steps;
    progress.consecutive = consecutive;
    if (on_slice) on_slice(engine, progress);
  }
  engine.counts_into(counts);
  res.converged = probe(counts, engine.protocol());
  res.omissions = engine.omissions();
  progress.steps = res.steps;
  progress.consecutive = consecutive;
  return res;
}

RunResult run_engine_steps(Engine& engine, Scheduler& sched, Rng& rng,
                           std::size_t steps, obs::FlightRecorder* recorder) {
  RunResult res;
  while (res.steps < steps) {
    res.steps += engine.advance(steps - res.steps, sched, rng);
    {
      PPFS_DRAW_FREE(rng, "flight-recorder snapshot");
      maybe_snapshot(engine, recorder);
    }
  }
  res.omissions = engine.omissions();
  return res;
}

}  // namespace ppfs

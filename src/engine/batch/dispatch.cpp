#include "engine/batch/dispatch.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs {

namespace {

class NativeEngine final : public Engine {
 public:
  NativeEngine(std::shared_ptr<const Protocol> protocol,
               std::vector<State> initial)
      : sys_(std::move(protocol), std::move(initial)),
        stats_(sys_.population().protocol().num_states()) {}

  [[nodiscard]] std::string kind() const override { return "native"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.population().protocol();
  }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    sys_.population().counts_into(out);
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const Population& pop = sys_.population();
    for (std::size_t i = 0; i < budget; ++i) {
      const Interaction ia = sched.next(rng, sys_.steps());
      const State s = pop.state(ia.starter);
      const State r = pop.state(ia.reactor);
      // interact() may throw (e.g. an omissive interaction from an
      // adversary scheduler); record only interactions that executed.
      sys_.interact(ia);
      if (pop.protocol().is_noop(s, r)) stats_.record_noops(1);
      else stats_.record_fire(s, r);
      if (trace_ != nullptr) trace_->append(ia);
    }
    return budget;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return stats_; }

  bool record_trace(Trace* sink) override {
    trace_ = sink;
    return true;
  }

 private:
  NativeSystem sys_;
  RunStats stats_;
  Trace* trace_ = nullptr;
};

class BatchEngine final : public Engine {
 public:
  BatchEngine(std::shared_ptr<const Protocol> protocol,
              std::vector<State> initial)
      : sys_(std::move(protocol), std::move(initial)) {}

  [[nodiscard]] std::string kind() const override { return "batch"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.protocol();
  }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sys_.counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    if (!sched.uniform_batch_compatible())
      throw std::invalid_argument(
          "batch engine: scheduler is not the uniform distribution "
          "(scripted/adversarial runs need the native engine)");
    std::size_t covered = 0;
    while (covered < budget) covered += sys_.advance(budget - covered, rng).interactions;
    return covered;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return sys_.stats(); }

 private:
  BatchSystem sys_;
};

}  // namespace

bool Engine::record_trace(Trace* /*sink*/) { return false; }

std::vector<std::size_t> Engine::counts() const {
  std::vector<std::size_t> out;
  counts_into(out);
  return out;
}

int Engine::consensus_output() const {
  std::vector<std::size_t> c;
  counts_into(c);
  return counts_consensus_output(c, protocol());
}

std::unique_ptr<Engine> make_engine(const std::string& kind,
                                    std::shared_ptr<const Protocol> protocol,
                                    std::vector<State> initial) {
  if (kind == "native")
    return std::make_unique<NativeEngine>(std::move(protocol), std::move(initial));
  if (kind == "batch")
    return std::make_unique<BatchEngine>(std::move(protocol), std::move(initial));
  throw std::invalid_argument("make_engine: unknown engine kind '" + kind + "'");
}

const std::vector<std::string>& engine_kinds() {
  static const std::vector<std::string> kinds = {"native", "batch"};
  return kinds;
}

RunResult run_engine_until(Engine& engine, Scheduler& sched, Rng& rng,
                           const CountsProbe& probe, const RunOptions& opt) {
  RunResult res;
  std::vector<std::size_t> counts;
  std::size_t consecutive = 0;
  while (res.steps < opt.max_steps) {
    const std::size_t slice =
        std::min(opt.check_every, opt.max_steps - res.steps);
    res.steps += engine.advance(slice, sched, rng);
    engine.counts_into(counts);
    const bool holds = probe(counts, engine.protocol());
    engine.stats().record_probe(engine.interactions(), holds);
    if (holds) {
      if (++consecutive >= opt.stable_checks) {
        res.converged = true;
        return res;
      }
    } else {
      consecutive = 0;
    }
  }
  engine.counts_into(counts);
  res.converged = probe(counts, engine.protocol());
  return res;
}

RunResult run_engine_steps(Engine& engine, Scheduler& sched, Rng& rng,
                           std::size_t steps) {
  RunResult res;
  while (res.steps < steps)
    res.steps += engine.advance(steps - res.steps, sched, rng);
  return res;
}

}  // namespace ppfs

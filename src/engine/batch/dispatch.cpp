#include "engine/batch/dispatch.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ppfs {

namespace {

// Resolve the effective model for a (model, adversary) pair: attaching an
// adversary to a non-omissive model lifts it to its omissive closure
// (undetectable omissions — the Fig. 1 embedding); an adversary with rate
// 0 is no adversary at all.
struct ResolvedConfig {
  Model model;
  std::optional<AdversaryParams> adversary;
};

ResolvedConfig resolve(const EngineConfig& config) {
  ResolvedConfig r{config.model, config.adversary};
  if (r.adversary && r.adversary->rate <= 0.0) r.adversary.reset();
  if (r.adversary) r.model = omissive_closure(config.model);
  return r;
}

class NativeEngine final : public Engine {
 public:
  NativeEngine(RuleMatrix rules, std::vector<State> initial,
               const std::optional<AdversaryParams>& adversary)
      : sys_(std::move(rules), std::move(initial)),
        stats_(sys_.rules().num_states()) {
    if (adversary) omit_.emplace(*adversary);
  }

  [[nodiscard]] std::string kind() const override { return "native"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.rules().protocol();
  }
  [[nodiscard]] Model model() const override { return sys_.rules().model(); }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }
  [[nodiscard]] std::size_t omissions() const override { return sys_.omissions(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    sys_.population().counts_into(out);
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const RuleMatrix& rules = sys_.rules();
    for (std::size_t i = 0; i < budget; ++i) {
      Interaction ia;
      if (omit_ && omit_->should_omit(rng, sys_.steps())) {
        // Uniform victim pair, struck on the adversary's configured side.
        ia = uniform_ordered_pair(rng, sys_.size());
        ia.omissive = true;
        ia.side = omit_->params().side;
      } else {
        ia = sched.next(rng, sys_.steps());
      }
      const State s = sys_.state(ia.starter);
      const State r = sys_.state(ia.reactor);
      const InteractionClass cls = rules.classify(ia);
      // interact() may throw (e.g. an omissive interaction from a
      // hand-built scheduler under a non-omissive model); record only
      // interactions that executed.
      sys_.interact(ia);
      if (rules.is_noop(cls, s, r)) {
        if (ia.omissive) stats_.record_omissive_noops(1);
        else stats_.record_noops(1);
      } else {
        if (ia.omissive) stats_.record_omissive_fire(s, r);
        else stats_.record_fire(s, r);
      }
      if (trace_ != nullptr) trace_->append(ia);
    }
    return budget;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return stats_; }

  bool record_trace(Trace* sink) override {
    trace_ = sink;
    return true;
  }

 private:
  InteractionSystem sys_;
  RunStats stats_;
  std::optional<OmissionProcess> omit_;
  Trace* trace_ = nullptr;
};

class BatchEngine final : public Engine {
 public:
  BatchEngine(RuleMatrix rules, std::vector<std::size_t> counts,
              const std::optional<AdversaryParams>& adversary)
      : sys_(std::move(rules), std::move(counts)) {
    if (adversary) sys_.set_omission_process(*adversary);
  }

  [[nodiscard]] std::string kind() const override { return "batch"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.protocol();
  }
  [[nodiscard]] Model model() const override { return sys_.rules().model(); }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }
  [[nodiscard]] std::size_t omissions() const override { return sys_.omissions(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sys_.counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    // The batch engine realizes the uniform distribution internally; the
    // scheduler argument is validated, not consumed.
    const auto* uniform = dynamic_cast<const UniformScheduler*>(&sched);
    if (uniform == nullptr || uniform->size() != sys_.size())
      throw std::invalid_argument(
          "batch engine: scheduler is not the uniform distribution over this "
          "population (scripted/hand-built adversarial runs need the native "
          "engine; omission adversaries attach via make_engine)");
    std::size_t covered = 0;
    while (covered < budget) covered += sys_.advance(budget - covered, rng).interactions;
    return covered;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return sys_.stats(); }

 private:
  BatchSystem sys_;
};

// Step-wise simulator behind the Engine interface: the per-agent facade of
// the (simulator x engine) lattice. Event recording is off — engine runs
// are throughput/convergence runs; verification-grade runs use the
// Simulator directly.
class SimNativeEngine final : public Engine {
 public:
  SimNativeEngine(std::unique_ptr<Simulator> sim,
                  const std::optional<AdversaryParams>& adversary)
      : sim_(std::move(sim)), stats_(sim_->protocol().num_states()) {
    if (adversary) omit_.emplace(*adversary);
    sim_->record_events(false);
  }

  [[nodiscard]] std::string kind() const override { return "native"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sim_->protocol();
  }
  [[nodiscard]] Model model() const override { return sim_->model(); }
  [[nodiscard]] std::size_t size() const override { return sim_->num_agents(); }
  [[nodiscard]] std::size_t interactions() const override {
    return sim_->interactions();
  }
  [[nodiscard]] std::size_t omissions() const override {
    // Inserted by our own process, or delivered pre-marked by an
    // adversarial scheduler — the simulator counts both.
    return sim_->omissions();
  }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sim_->projected_counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const std::size_t n = sim_->num_agents();
    for (std::size_t i = 0; i < budget; ++i) {
      Interaction ia;
      if (omit_ && omit_->should_omit(rng, sim_->interactions())) {
        ia = uniform_ordered_pair(rng, n);
        ia.omissive = true;
        ia.side = omit_->params().side;
      } else {
        ia = sched.next(rng, sim_->interactions());
      }
      // Fire/no-op at the simulated level: did the interaction emit any
      // simulated update? Recorded against the agents' projected
      // pre-states.
      const State ps = sim_->simulated_state(ia.starter);
      const State pr = sim_->simulated_state(ia.reactor);
      const std::uint64_t before = sim_->simulated_updates();
      sim_->interact(ia);
      const bool fired = sim_->simulated_updates() > before;
      if (fired) {
        if (ia.omissive) stats_.record_omissive_fire(ps, pr);
        else stats_.record_fire(ps, pr);
      } else {
        if (ia.omissive) stats_.record_omissive_noops(1);
        else stats_.record_noops(1);
      }
    }
    return budget;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return stats_; }

 private:
  std::unique_ptr<Simulator> sim_;
  RunStats stats_;
  std::optional<OmissionProcess> omit_;
};

// Count-space simulator engine over the open-universe SimBatchSystem.
class SimBatchEngine final : public Engine {
 public:
  SimBatchEngine(std::shared_ptr<DynamicRuleSource> rules,
                 const std::vector<State>& sim_initial,
                 const std::optional<AdversaryParams>& adversary,
                 std::optional<std::size_t> outcome_cache_capacity)
      : sys_(std::move(rules), sim_initial, outcome_cache_capacity) {
    if (adversary) sys_.set_omission_process(*adversary);
  }

  [[nodiscard]] std::string kind() const override { return "batch"; }
  [[nodiscard]] const Protocol& protocol() const override {
    return sys_.protocol();
  }
  [[nodiscard]] Model model() const override { return sys_.rules().model(); }
  [[nodiscard]] std::size_t size() const override { return sys_.size(); }
  [[nodiscard]] std::size_t interactions() const override { return sys_.steps(); }
  [[nodiscard]] std::size_t omissions() const override { return sys_.omissions(); }

  void counts_into(std::vector<std::size_t>& out) const override {
    out = sys_.projected_counts();
  }

  std::size_t advance(std::size_t budget, Scheduler& sched, Rng& rng) override {
    const auto* uniform = dynamic_cast<const UniformScheduler*>(&sched);
    if (uniform == nullptr || uniform->size() != sys_.size())
      throw std::invalid_argument(
          "sim batch engine: scheduler is not the uniform distribution over "
          "this population (scripted/hand-built adversarial runs need the "
          "native engine; omission adversaries attach via make_sim_engine)");
    std::size_t covered = 0;
    while (covered < budget)
      covered += sys_.advance(budget - covered, rng).interactions;
    return covered;
  }

  [[nodiscard]] RunStats& stats() noexcept override { return sys_.stats(); }

  [[nodiscard]] std::size_t universe_live() const override {
    return sys_.universe_live();
  }

 private:
  SimBatchSystem sys_;
};

std::unique_ptr<Engine> build(const std::string& kind, RuleMatrix rules,
                              std::vector<State> initial,
                              const std::optional<AdversaryParams>& adversary) {
  if (kind == "native")
    return std::make_unique<NativeEngine>(std::move(rules), std::move(initial),
                                          adversary);
  if (kind == "batch") {
    std::vector<std::size_t> counts(rules.num_states(), 0);
    for (State q : initial) {
      if (q >= rules.num_states())
        throw std::invalid_argument("make_engine: initial state out of range");
      ++counts[q];
    }
    return std::make_unique<BatchEngine>(std::move(rules), std::move(counts),
                                         adversary);
  }
  throw std::invalid_argument("make_engine: unknown engine kind '" + kind + "'");
}

}  // namespace

bool Engine::record_trace(Trace* /*sink*/) { return false; }

std::vector<std::size_t> Engine::counts() const {
  std::vector<std::size_t> out;
  counts_into(out);
  return out;
}

int Engine::consensus_output() const {
  std::vector<std::size_t> c;
  counts_into(c);
  return counts_consensus_output(c, protocol());
}

std::unique_ptr<Engine> make_engine(const std::string& kind,
                                    std::shared_ptr<const Protocol> protocol,
                                    std::vector<State> initial) {
  return make_engine(kind, std::move(protocol), std::move(initial),
                     EngineConfig{});
}

std::unique_ptr<Engine> make_engine(const std::string& kind,
                                    std::shared_ptr<const Protocol> protocol,
                                    std::vector<State> initial,
                                    const EngineConfig& config) {
  const ResolvedConfig r = resolve(config);
  return build(kind,
               RuleMatrix::compile(std::move(protocol), r.model, config.fns),
               std::move(initial), r.adversary);
}

std::unique_ptr<Engine> make_engine(
    const std::string& kind, std::shared_ptr<const OneWayProtocol> protocol,
    std::vector<State> initial, const EngineConfig& config) {
  const ResolvedConfig r = resolve(config);
  RuleMatrix rules =
      RuleMatrix::compile(std::move(protocol), r.model, initial, config.fns);
  return build(kind, std::move(rules), std::move(initial), r.adversary);
}

std::unique_ptr<Engine> make_sim_engine(const std::string& kind,
                                        std::shared_ptr<const Protocol> protocol,
                                        std::vector<State> initial,
                                        const SimEngineConfig& config) {
  Model model = config.model.value_or(default_sim_model(config.spec));
  std::optional<AdversaryParams> adversary = config.adversary;
  if (adversary && adversary->rate <= 0.0) adversary.reset();
  // Same lifting as make_engine: both engine kinds realize one omission
  // process (max_burst included — the batch path samples the within-burst
  // chain exactly).
  if (adversary && !is_omissive(model)) model = omissive_closure(model);
  if (kind == "native") {
    return std::make_unique<SimNativeEngine>(
        make_spec_simulator(config.spec, model, std::move(protocol),
                            std::move(initial)),
        adversary);
  }
  if (kind == "batch") {
    auto rules = make_sim_rule_source(config.spec, model, std::move(protocol),
                                      initial.size());
    return std::make_unique<SimBatchEngine>(std::move(rules), initial,
                                            adversary,
                                            config.outcome_cache_capacity);
  }
  throw std::invalid_argument("make_sim_engine: unknown engine kind '" + kind +
                              "'");
}

const std::vector<std::string>& engine_kinds() {
  static const std::vector<std::string> kinds = {"native", "batch"};
  return kinds;
}

RunResult run_engine_until(Engine& engine, Scheduler& sched, Rng& rng,
                           const CountsProbe& probe, const RunOptions& opt) {
  RunResult res;
  std::vector<std::size_t> counts;
  std::size_t consecutive = 0;
  while (res.steps < opt.max_steps) {
    const std::size_t slice =
        std::min(opt.check_every, opt.max_steps - res.steps);
    res.steps += engine.advance(slice, sched, rng);
    engine.counts_into(counts);
    const bool holds = probe(counts, engine.protocol());
    engine.stats().record_probe(engine.interactions(), holds);
    if (holds) {
      if (++consecutive >= opt.stable_checks) {
        res.converged = true;
        res.omissions = engine.omissions();
        return res;
      }
    } else {
      consecutive = 0;
    }
  }
  engine.counts_into(counts);
  res.converged = probe(counts, engine.protocol());
  res.omissions = engine.omissions();
  return res;
}

RunResult run_engine_steps(Engine& engine, Scheduler& sched, Rng& rng,
                           std::size_t steps) {
  RunResult res;
  while (res.steps < steps)
    res.steps += engine.advance(steps - res.steps, sched, rng);
  res.omissions = engine.omissions();
  return res;
}

}  // namespace ppfs

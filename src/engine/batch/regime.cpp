#include "engine/batch/regime.hpp"

namespace ppfs {

RegimeMonitor::Space RegimeMonitor::observe(const Signals& s) {
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    streak_ = 0;
    return space_;
  }
  // What this observation argues for, if anything. The mid band between
  // the two thresholds is sticky by default; a collapsed cache hit rate
  // breaks the tie toward agent space (see the header).
  bool wants_agent = s.dispersion >= t_.to_agent;
  bool wants_count = s.dispersion <= t_.to_count;
  if (s.fire_fraction * measured_fire_cost(s.cache_hit_rate, t_) >
      t_.fire_cost_ratio) {
    // The window's measured count-space fire cost exceeds the native
    // per-step cost: fires dominate and each one is cheaper stepped as a
    // record than cached+interned as a count move — collapsed or not,
    // count space loses this regime (see the header: naming's early
    // id-assignment phase vs SKnO's expensive value step). With a fully
    // warm cache this is the classic fire_fraction > fire_cost_ratio
    // test; a measured miss rate scales the left side up, because every
    // miss re-runs the native value step on top of the count move.
    wants_agent = true;
    wants_count = false;
  }
  if (!wants_agent && !wants_count && s.cache_hit_rate < t_.mid_hit_floor)
    wants_agent = true;
  const bool out_of_band = (space_ == Space::Count && wants_agent) ||
                           (space_ == Space::Agent && wants_count);
  if (!out_of_band) {
    streak_ = 0;
    return space_;
  }
  if (++streak_ < t_.hysteresis) return space_;
  space_ = space_ == Space::Count ? Space::Agent : Space::Count;
  streak_ = 0;
  cooldown_left_ = t_.cooldown;
  ++switches_;
  return space_;
}

}  // namespace ppfs

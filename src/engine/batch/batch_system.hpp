// Count-based batch engine for the uniform scheduler.
//
// The uniform scheduler draws ordered agent pairs uniformly at random, so
// the state-count vector is a Markov chain of its own: pick a starter
// state s with probability C[s]/n, then a reactor state r with probability
// (C[r] - [r == s]) / (n - 1) — sequential hypergeometric draws — and fire
// delta(s, r). BatchSystem advances this chain directly, never touching a
// per-agent array, and leaps over runs of no-op interactions in one step:
//
//   * the number of scheduled interactions until the next count-CHANGING
//     one is geometric with success probability p = W / n(n-1), where W is
//     the total weight of non-no-op ordered state pairs. One geometric
//     sample replaces the whole run of no-op table lookups;
//   * the firing pair is then drawn proportionally to its weight by an
//     O(q^2) scan with exact integer arithmetic.
//
// When p is large (small n, or far from convergence) the geometric sample
// is produced by exact integer Bernoulli trials — rng.below(n(n-1)) < W —
// so the chain is *exactly* the uniform scheduler's distribution; the
// floating-point inversion sampler is used only when p < 1/64, where a
// single trial would almost always fail. This is the "exact fallback for
// small n" — there is no approximation anywhere in the batch path beyond
// ~1e-16 rounding of the inversion branch.
//
// Compared to NativeSystem this trades O(1)-per-interaction work on an
// O(n) array for O(q^2)-per-*batch* work on an O(q) vector: near
// convergence a batch covers millions of interactions, and for n = 10^6
// the count vector lives in a couple of cache lines instead of 4 MB.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "engine/batch/configuration.hpp"
#include "engine/stats.hpp"
#include "util/rng.hpp"

namespace ppfs {

class BatchSystem {
 public:
  BatchSystem(std::shared_ptr<const Protocol> protocol,
              std::vector<State> initial);
  explicit BatchSystem(Configuration initial);

  // Cover at most `budget` uniform-scheduler interactions in one batch:
  // skip the geometric run of no-ops, then fire one count-changing rule
  // (unless the budget ran out first, or no rule can fire at all). The
  // geometric distribution is memoryless, so truncating a batch at the
  // budget and resuming later leaves the process distribution unchanged.
  BatchDelta advance(std::size_t budget, Rng& rng);

  // Exact single interaction of the count chain (the hypergeometric
  // reference step). Used by equivalence tests and as a granular driver.
  BatchDelta step(Rng& rng);

  [[nodiscard]] const Configuration& configuration() const noexcept {
    return conf_;
  }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept {
    return conf_.counts();
  }
  [[nodiscard]] const Protocol& protocol() const noexcept {
    return conf_.protocol();
  }
  [[nodiscard]] std::size_t size() const noexcept { return conf_.size(); }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] int consensus_output() const { return conf_.consensus_output(); }

  // True when no reachable interaction can change the configuration: every
  // ordered pair of occupied states is a no-op. advance() then consumes its
  // whole budget in O(q^2).
  [[nodiscard]] bool silent() const;

  [[nodiscard]] RunStats& stats() noexcept { return stats_; }
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }

 private:
  // Weight of ordered pair (s, r): C[s] * (C[r] - [s == r]).
  [[nodiscard]] std::uint64_t pair_weight(State s, State r) const noexcept;
  // Total weight of count-changing ordered pairs.
  [[nodiscard]] std::uint64_t changing_weight() const noexcept;
  // Pre-states of a count-changing pair, drawn with probability
  // pair_weight / w over the non-no-op pairs. `w` must be changing_weight().
  [[nodiscard]] std::pair<State, State> pick_changing_pair(std::uint64_t w,
                                                           Rng& rng) const;
  void apply_fire(State s, State r, BatchDelta& d);

  Configuration conf_;
  const Protocol* proto_;  // borrowed from conf_
  std::size_t q_ = 0;
  std::size_t steps_ = 0;
  RunStats stats_;
};

}  // namespace ppfs

// Count-based batch engine for the uniform scheduler, generalized over the
// whole model lattice (§2.2–2.3) and the omission adversaries (Def. 1–2).
//
// The uniform scheduler draws ordered agent pairs uniformly at random, so
// the state-count vector is a Markov chain of its own: pick a starter
// state s with probability C[s]/n, then a reactor state r with probability
// (C[r] - [r == s]) / (n - 1) — sequential hypergeometric draws — and fire
// the interaction's outcome. BatchSystem advances this chain directly,
// never touching a per-agent array, and leaps over runs of no-op
// interactions in one step. Model semantics come from a compiled
// RuleMatrix (core/rule_matrix.hpp) — the same tables the per-agent
// InteractionSystem applies — so one-way and omissive models run in count
// space with no second encoding of §2.2–2.3.
//
// Without an omission process the leap is the exact integer path of PR 1:
// the run of no-ops before the next count-changing interaction is
// geometric with success probability W/T, W the total weight of
// count-changing ordered pairs and T = n(n-1); exact Bernoulli trials when
// W/T >= 1/64, floating-point inversion (error ~1e-16) below that.
//
// With an omission process attached, each delivered interaction is
// omissive with probability p = rate, independently, while the process is
// active (budget remaining, before the NO quiet horizon) — the burst cap
// of the step-wise path is treated as unbounded here (bursts are finite
// a.s. for rate < 1; EngineDispatch normalizes max_burst away so both
// engines realize the same distribution). Leaps split each no-op run into
// real and omissive draws exactly:
//
//   * omissions cannot change counts (their class weight Wo = 0) and the
//     budget cannot run out mid-leap: the run until the next change is
//     geometric with success (1-p)·Wr/T and the omissive draws inside it
//     are recovered by binomial splitting — exact Bernoulli or
//     geometric-gap sampling except when both binomial tails are heavy
//     (mean >= 256 each side), where a normal approximation with
//     negligible relative error tallies them; the split never decides
//     which rule fires;
//   * otherwise the leap is punctuated by "events" (omissive deliveries
//     and real count-changes): the run of real no-ops before an event is
//     geometric with success p + (1-p)·Wr/T, the event is classified
//     omissive with probability p over that, and an omissive event changes
//     counts with exact integer probability Wo/T. Each omissive delivery
//     costs O(1), so Budget(o) adversaries add O(o) total work to a run.
//
// The changing weights Wr / Wo are maintained INCREMENTALLY: each class
// keeps a fixed enumeration of its count-changing pairs (is_noop depends
// only on the compiled rules) inside a DynamicPairSampler
// (alias_sampler.hpp), a fire dirties at most four states, and flushing a
// dirty state re-sets only the pairs adjacent to it. Totals are O(1)
// reads and the firing pair is drawn in O(log q) (Fenwick) or O(1)
// (alias) instead of the former O(q^2) rescan + linear walk — the fix for
// dense regimes where every delivery fires and leaping degenerates. The
// round engine (round_system.hpp) batches those regimes further and runs
// as a friend over this state.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/rule_matrix.hpp"
#include "engine/batch/alias_sampler.hpp"
#include "engine/batch/configuration.hpp"
#include "engine/stats.hpp"
#include "obs/metrics.hpp"
#include "sched/omission_process.hpp"
#include "util/rng.hpp"

namespace ppfs {

class BatchSystem {
 public:
  // Plain TW batch system (PR 1 behavior).
  BatchSystem(std::shared_ptr<const Protocol> protocol,
              std::vector<State> initial);
  explicit BatchSystem(Configuration initial);

  // Model-generic batch system: any model in kAllModels, compiled rules.
  BatchSystem(RuleMatrix rules, std::vector<std::size_t> counts);

  // Attach an omission process (Def. 1–2). The rule matrix must belong to
  // an omissive model; lift non-omissive models with omissive_closure()
  // first. Must be called before the run starts.
  void set_omission_process(const AdversaryParams& params);

  // Cover at most `budget` uniform-scheduler interactions in one batch:
  // skip the geometric run of no-ops (splitting it into real and omissive
  // draws when an omission process is attached), then fire one
  // count-changing rule (unless the budget ran out first, or no rule can
  // fire at all). The geometric distribution is memoryless, so truncating
  // a batch at the budget and resuming later leaves the process
  // distribution unchanged.
  BatchDelta advance(std::size_t budget, Rng& rng);

  // Exact single interaction of the count chain (the hypergeometric
  // reference step), consulting the omission process per delivery — the
  // step-wise reference the equivalence tests compare against. Honors
  // max_burst (it delegates to OmissionProcess::should_omit).
  BatchDelta step(Rng& rng);

  [[nodiscard]] const Configuration& configuration() const noexcept {
    return conf_;
  }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept {
    return conf_.counts();
  }
  [[nodiscard]] const Protocol& protocol() const noexcept {
    return conf_.protocol();
  }
  [[nodiscard]] const RuleMatrix& rules() const noexcept { return rules_; }
  [[nodiscard]] std::size_t size() const noexcept { return conf_.size(); }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] int consensus_output() const { return conf_.consensus_output(); }
  [[nodiscard]] const OmissionProcess* omission_process() const noexcept {
    return omit_ ? &*omit_ : nullptr;
  }
  [[nodiscard]] std::size_t omissions() const noexcept {
    return omit_ ? omit_->emitted() : 0;
  }

  // True when no reachable interaction — real or insertable omissive —
  // can change the configuration. advance() then consumes its whole
  // budget in one leap.
  [[nodiscard]] bool silent() const;

  // Total weight of count-changing ordered pairs of class `c` —
  // incrementally maintained (dirty-state flush), an O(1) read between
  // fires. Classes without a live sampler (neither Real nor the attached
  // adversary's class) fall back to the audit scan.
  [[nodiscard]] std::uint64_t changing_weight(InteractionClass c) const;
  // Reference O(q^2) rescan of the same quantity, for audits and tests.
  [[nodiscard]] std::uint64_t audit_changing_weight(InteractionClass c)
      const noexcept;
  // P(a delivered interaction changes counts): ((1-p)·Wr + p·Wo)/T while
  // the adversary is active, Wr/T otherwise — the density signal the
  // adaptive engine feeds the regime monitor.
  [[nodiscard]] double fire_density() const;

  [[nodiscard]] RunStats& stats() noexcept { return stats_; }
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }

  // Wire hot-path instrumentation (leap-length histogram, weight-refresh
  // counter, burst-episode histogram on the omission process). Null
  // detaches. Purely observational: never consumes Rng draws.
  void set_metrics(obs::MetricRegistry* reg);

  // Runtime-contract audit (util/audit.hpp): flush, then check count
  // conservation, incremental-vs-rescan changing-weight agreement for
  // every live class, per-slot sampler weights against the count vector,
  // the samplers' own derived structures, and the adversary's budget /
  // burst state. Cold code, always compiled; engines invoke it at slice
  // boundaries under -DPPFS_AUDIT=ON. Throws AuditError.
  void audit_invariants() const;

  // Checkpoint round-trip. Persists the count vector, step/stat/adversary
  // state, and the sampler draw-policy faces; the pair tables and weights
  // are rebuilt deterministically from the restored counts (mark-all +
  // flush), so the byte payload is O(q), not O(q^2). The restoring system
  // must be constructed over the same rules/protocol (and with the same
  // attached adversary params) — only mutable run state round-trips.
  void save_state(bin::Writer& w) const;
  void restore_state(bin::Reader& r);

 private:
  friend class RoundSystem;    // the round-dense face shares this state
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  // Weight of ordered pair (s, r): C[s] * (C[r] - [s == r]).
  [[nodiscard]] std::uint64_t pair_weight(State s, State r) const noexcept;

  // Fixed enumeration of one class's count-changing pairs plus the
  // dynamic sampler over their current weights. The pair list and the
  // per-state adjacency never change after construction; only weights do.
  struct PairTable {
    std::vector<std::pair<State, State>> pairs;
    std::vector<std::vector<std::uint32_t>> adj;  // per state: pair indices
    DynamicPairSampler sampler;
  };
  void build_pair_table(InteractionClass c, PairTable& table) const;

  // Push dirty-state count changes into the samplers (only the pairs
  // adjacent to a dirty state are re-set) and refresh the cached totals.
  void flush_weights() const;
  void mark_dirty(State s) const;

  // Pre-states of a count-changing pair of class `c`, drawn with
  // probability pair_weight / changing_weight(c) by the class sampler.
  // Requires flushed weights (every advance path flushes first).
  [[nodiscard]] std::pair<State, State> pick_changing_pair(InteractionClass c,
                                                           Rng& rng) const;
  void apply_fire(InteractionClass c, State s, State r, BatchDelta& d);
  // Fire (s, r) -> outcome(c, s, r) `times` times as one count move — the
  // round face's bulk credit. The pairs cover distinct agents, so the
  // moves compose; records stats and marks the touched states dirty.
  void bulk_fire(InteractionClass c, State s, State r, std::size_t times);

  RuleMatrix rules_;
  Configuration conf_;
  std::size_t q_ = 0;
  std::size_t steps_ = 0;
  RunStats stats_;
  std::optional<OmissionProcess> omit_;
  // Outcome class of inserted omissions, derived from the adversary's
  // side (OmitStarter / OmitReactor / OmitBoth; collapses one-way).
  InteractionClass omit_class_ = InteractionClass::OmitBoth;
  // Mutable: flushing the dirty list is a cache refresh reachable from
  // const observers (silent(), changing_weight()).
  mutable PairTable real_pairs_;
  mutable std::optional<PairTable> omit_pairs_;
  mutable std::vector<State> dirty_;
  mutable std::vector<std::uint8_t> dirty_flag_;
  mutable std::uint64_t w_real_ = 0;
  mutable std::uint64_t w_omit_ = 0;

  obs::Histogram* m_leap_len_ = nullptr;      // no-op runs leapt in one draw
  obs::Counter* m_weight_refreshes_ = nullptr;  // O(q^2) table rescans
  obs::MetricRegistry* metrics_reg_ = nullptr;  // re-wire late-attached omit_
};

}  // namespace ppfs

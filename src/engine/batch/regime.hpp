// RegimeMonitor: the decision core of engine=auto (dispatch.hpp). Simulator
// runs live in one of two execution representations — count space
// (SimBatchSystem over interned wrapper states) or agent space
// (AgentSpaceSim over per-agent records) — and which one is faster is a
// property of the RUN'S REGIME, not the protocol: SKnO at n = 10^6 keeps
// ~5% dispersion and count space leaps; SKnO at n = 50 disperses to ~1
// state per agent and count space pays intern/index overhead per
// interaction for nothing; naming STARTS collapsed (everyone my_id = 1)
// and disperses mid-run as ids spread.
//
// The monitor reads the signals the engines already export into the
// MetricRegistry (dispatch syncs them at slice boundaries):
//
//   * dispersion  = universe.live / n   (count space: the live-universe
//     gauge; agent space: the driver's hashed distinct-wrapper estimate).
//     The primary signal: >= to_agent favors per-agent records, <=
//     to_count favors counts and leaping.
//   * fire fraction over the last observation window (master RunStats
//     deltas) against the SOURCE'S fire-cost ratio
//     (DynamicRuleSource::fire_cost_ratio — estimated native value-step
//     cost over count-space cached-fire cost). Dispersion alone cannot
//     tell these regimes apart: SKnO at n = 10^6 and naming at n = 4096
//     both run collapsed universes with fire-heavy windows, but SKnO's
//     value step (token-queue machinery) costs several cached fires, so
//     count space wins 10x, while naming's value step is a trivial struct
//     update, so count space paying a patched intern per fire LOSES 5x to
//     plain stepping. Count space is therefore only tenable while
//     fire_fraction <= fire_cost_ratio — above it, fires dominate the
//     window and each one is cheaper executed as a record step.
//   * cache hit rate over the last observation window (cache.react.* /
//     cache.recv.* counters). A secondary, mid-band accelerator only: a
//     missing cache does not rescue a dispersed run (SKnO at n = 50 runs
//     ~99% hit rates and still loses 4x in count space — the per-
//     interaction index machinery, not outcome evaluation, dominates), so
//     high dispersion switches regardless; but a collapsing hit rate in
//     the mid band is evidence the pair working set outgrew the cache and
//     agent space will win sooner.
//
// Switch discipline (the no-flap contract): `hysteresis` consecutive
// out-of-band observations are required before a switch, and `cooldown`
// observations after one before the next may even be considered. Signals
// drift monotonically in these protocols (dispersion rises as ids/tokens
// spread), so in practice at most one or two switches happen per run; the
// hysteresis exists for the noisy neighborhood of a threshold.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/binio.hpp"

namespace ppfs {

class RegimeMonitor {
 public:
  enum class Space : std::uint8_t { Count, Agent };

  struct Thresholds {
    double to_agent = 0.5;     // dispersion at/above which agent space wins
    double to_count = 0.125;   // dispersion at/below which count space wins
    double mid_hit_floor = 0.5;  // mid-band: hit rate below this => agent
    // Source's native-step / cached-fire cost estimate
    // (DynamicRuleSource::fire_cost_ratio) — the COLD-START PRIOR of the
    // measured cost model: count space holds only while the windowed
    // fire fraction times measured_fire_cost(hit_rate) stays at/below
    // it. With a warm cache that reduces to fire_fraction <=
    // fire_cost_ratio; a measured miss rate inflates the per-fire cost
    // by the prior, since every miss re-runs the native value step. The
    // default is inert (fractions never exceed 1).
    double fire_cost_ratio = 8.0;
    int hysteresis = 2;        // consecutive out-of-band obs to switch
    int cooldown = 4;          // observations after a switch with no change
  };

  struct Signals {
    double dispersion = 0.0;       // distinct wrapper states / n
    double cache_hit_rate = 1.0;   // windowed; 1.0 = no signal/neutral
    double fire_fraction = 0.0;    // windowed fires / interactions covered
  };

  explicit RegimeMonitor(Space start) : space_(start) {}
  RegimeMonitor(Space start, const Thresholds& t) : t_(t), space_(start) {}

  // The representation favored a priori at dispersion `d` (run start: no
  // cache history yet).
  [[nodiscard]] static Space favored(double d, const Thresholds& t) {
    return d >= t.to_agent ? Space::Agent : Space::Count;
  }
  [[nodiscard]] static Space favored(double d) {
    return favored(d, Thresholds());
  }

  // MEASURED per-fire count-space cost for the window, in cached-fire
  // units: a cache hit costs one unit, a miss re-runs the native value
  // step (the source's fire_cost_ratio — now a cold-start PRIOR for the
  // miss cost, not the whole story) on top of it. Deterministic and
  // draw-free: the hit rate comes from counters the engines already
  // export. With hit_rate = 1 (warm cache, or no cache signal at all)
  // this is exactly the pre-measurement constant model.
  [[nodiscard]] static double measured_fire_cost(double hit_rate,
                                                 const Thresholds& t) {
    return 1.0 + (1.0 - hit_rate) * t.fire_cost_ratio;
  }

  // Feed one observation; returns the representation to run in from now
  // on (== current() — the monitor never demands a mid-slice switch).
  Space observe(const Signals& s);

  // An externally-forced switch happened (the auto engine's test hook):
  // adopt the new space and start a cooldown so the monitor does not
  // immediately fight it.
  void note_forced(Space now) {
    space_ = now;
    streak_ = 0;
    cooldown_left_ = t_.cooldown;
    ++switches_;
  }

  [[nodiscard]] Space current() const noexcept { return space_; }
  [[nodiscard]] std::size_t switches() const noexcept { return switches_; }
  [[nodiscard]] const Thresholds& thresholds() const noexcept { return t_; }

  // Checkpoint round-trip of the decision face (thresholds come back from
  // the engine config). The streak/cooldown counters matter: a resumed run
  // must make the same switch decisions at the same observation indices.
  void save_state(bin::Writer& w) const {
    w.u8(space_ == Space::Agent ? 1 : 0);
    w.zig(streak_);
    w.zig(cooldown_left_);
    w.var(switches_);
  }
  void restore_state(bin::Reader& r) {
    space_ = r.u8() ? Space::Agent : Space::Count;
    streak_ = static_cast<int>(r.zig());
    cooldown_left_ = static_cast<int>(r.zig());
    switches_ = r.var();
  }

 private:
  Thresholds t_;
  Space space_;
  int streak_ = 0;           // consecutive observations favoring !space_
  int cooldown_left_ = 0;
  std::size_t switches_ = 0;
};

}  // namespace ppfs

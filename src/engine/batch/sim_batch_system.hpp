// SimBatchSystem: count-space execution over an OPEN state universe — the
// engine that runs the paper's simulators (exposed as DynamicRuleSources,
// sim/sim_rules.hpp) on million-agent populations.
//
// The closed-universe BatchSystem precompiles dense q x q outcome tables
// and rescans them for changing weights; neither is possible when states
// are discovered while running. This engine instead keeps:
//
//   * a SparseConfiguration — counts over the interned ids the rule source
//     hands out, tracking only the occupied subset (ids are dense by
//     construction, so the "hash map over interned states" is a growing
//     vector plus an occupied list; the hash map lives inside the
//     interner);
//   * one CountIndex over the same ids: O(1) point updates and
//     early-exit linear-scan inverse-CDF draws that ride the heavy
//     concentration of population mass on low ids (see the class
//     comment). Factored starters (non-silent only) are drawn by
//     rejection against the silence memo: a try succeeds w.p. (n - S)/n,
//     and fires arrive at rate (n - S)/n per covered interaction, so the
//     expected rejection work is O(1) PER COVERED INTERACTION regardless
//     of the silent fraction — cheaper than maintaining a second
//     non-silent index on every count change;
//   * incrementally maintained per-class changing weights, so the
//     geometric no-op leap stays EXACT as the universe grows:
//       - factored sources (real_noop_factors — SKnO): a Real interaction
//         is a no-op iff the starter is silent, so the changing weight is
//         (n - S)(n - 1) for S = silent population, maintained O(1) per
//         count change with silence classified once per interned state;
//       - general sources (SID, naming, closed matrices): adaptive. In
//         the dense regime (fires frequent — the locking simulators
//         change wrapper state on almost every delivery) the engine takes
//         direct hypergeometric steps, which need no weights at all and
//         cost O(log universe); only after kLeapThreshold consecutive
//         no-ops does it pay the O(occupied^2) weight scan and switch to
//         geometric leaping, re-entering the dense path on the next fire.
//         Both paths are exact realizations of the same chain, so the
//         trajectory-dependent switch introduces no bias.
//
// Omission adversaries (Def. 1–2) attach exactly as on BatchSystem,
// burst cap included (the exact within-burst Markov leap — see
// BatchSystem's header). Leaps split into real and omissive draws:
// omission-transparent sources (reactor-side-only simulators) use the
// burst-capped leg or, when the cap cannot bind, the binomial split —
// omissive draws cannot change counts — while the general path punctuates
// the leap per omissive delivery (tracking the shared burst counter) and
// draws the victim pair hypergeometrically, applying whatever the
// omissive class outcome is (distribution-identical to BatchSystem's
// Wo/T split, O(1) index work per delivered omission).
//
// Open universes (rule sources with open_universe()) release states whose
// count returns to zero: ids recycle through the interner's free list, so
// resident memory tracks the number of LIVE states (<= n + transients),
// not the states ever seen — the property that makes n = 10^6 SKnO runs
// fit in memory.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/dynamic_rules.hpp"
#include "engine/batch/configuration.hpp"
#include "engine/stats.hpp"
#include "obs/metrics.hpp"
#include "sched/omission_process.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace ppfs {

// Two-level count index over growing dense ids: per-id u32 counts plus
// per-256-id bucket sums. Point updates are O(1) (two increments), and
// inverse-CDF sampling / prefix sums are linear scans with early exit —
// an open-universe run keeps its population mass heavily concentrated on
// low ids (early states plus recycled ids), so the expected scan is a few
// hot L1 cache lines. This replaced a Fenwick tree whose pointer-chasing
// descent was measured to dominate the fire hot path (~140 ns per draw on
// the reference box vs ~10-20 ns here). Per-id counts are u32: populations
// beyond 2^32 agents in one state are out of scope for this engine.
class CountIndex {
 public:
  void ensure(std::size_t m) {
    if (m <= counts_.size()) return;
    counts_.resize(m, 0);
    buckets_.resize((m + kBucket - 1) / kBucket, 0);
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t get(std::size_t i) const { return counts_.at(i); }

  void add(std::size_t i, std::int64_t delta) {
    if (i >= counts_.size()) ensure(i + 1);  // freshly interned successor ids
    counts_[i] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(counts_[i]) + delta);
    buckets_[i >> kShift] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(buckets_[i >> kShift]) + delta);
    total_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(total_) + delta);
  }

  // Smallest id i with prefix_sum(0..i) > pick; requires pick < total().
  [[nodiscard]] std::size_t find(std::uint64_t pick) const {
    std::size_t b = 0;
    while (pick >= buckets_[b]) pick -= buckets_[b++];
    std::size_t i = b << kShift;
    while (pick >= counts_[i]) pick -= counts_[i++];
    record_probe_depth(b, i);
    return i;
  }

  // find() over the counts with one copy of id `excl` removed (the
  // hypergeometric second draw); requires pick < total() - 1 and
  // count(excl) >= 1. Single scan, no temporary mutation.
  [[nodiscard]] std::size_t find_excluding(std::uint64_t pick,
                                           std::size_t excl) const {
    const std::size_t eb = excl >> kShift;
    std::size_t b = 0;
    for (;; ++b) {
      const std::uint64_t w = buckets_[b] - (b == eb ? 1 : 0);
      if (pick < w) break;
      pick -= w;
    }
    std::size_t i = b << kShift;
    for (;; ++i) {
      const std::uint64_t w = counts_[i] - (i == excl ? 1 : 0);
      if (pick < w) break;
      pick -= w;
    }
    record_probe_depth(b, i);
    return i;
  }

  // Wire the inverse-CDF probe-depth histogram (obs layer); null
  // detaches. Depths are subsampled 1-in-16 — two finds per fire would
  // otherwise make this the most expensive hook on the hot path.
  void set_metrics(obs::MetricRegistry* reg) {
    m_probe_depth_ = reg ? &reg->histogram("index.probe_depth") : nullptr;
  }

  // Runtime-contract audit (util/audit.hpp): every bucket sum and the
  // grand total recomputed from the per-id counts. Throws AuditError.
  void audit_invariants(const char* who = "CountIndex") const {
    std::uint64_t sum = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      std::uint64_t bucket = 0;
      const std::size_t lo = b << kShift;
      const std::size_t hi = std::min(counts_.size(), lo + kBucket);
      for (std::size_t i = lo; i < hi; ++i) bucket += counts_[i];
      audit::check(bucket == buckets_[b], who,
                   "bucket sum agrees with per-id counts",
                   "bucket " + std::to_string(b) + ": " +
                       audit::expected_got(bucket, buckets_[b]));
      sum += bucket;
    }
    audit::check(sum == total_, who, "total agrees with per-id counts",
                 audit::expected_got(sum, total_));
  }

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  static constexpr std::size_t kShift = 8;
  static constexpr std::size_t kBucket = 1u << kShift;

  void record_probe_depth(std::size_t b, std::size_t i) const {
#if PPFS_METRICS
    if (m_probe_depth_ && (probe_tick_++ & 15u) == 0)
      // ppfs-lint: allow(metric-macro): the 1-in-16 subsample gate must
      // share probe_tick_'s compile-out with the emission, which the
      // single-call PPFS_METRIC macro cannot express.
      m_probe_depth_->record(b + (i - (b << kShift)) + 1);
#else
    (void)b;
    (void)i;
#endif
  }

  std::vector<std::uint32_t> counts_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  obs::Histogram* m_probe_depth_ = nullptr;
  mutable std::uint64_t probe_tick_ = 0;
};

// Counts over interned wrapper states, tracking the occupied subset.
// Per-state counts and occupied positions are u32 — populations beyond
// 2^32 agents are out of scope — which keeps the arrays the hot path
// touches on every fire L2-resident at n = 10^6.
class SparseConfiguration {
 public:
  void grow_to(std::size_t universe_size);
  void add(State s, std::size_t k);
  void remove(State s, std::size_t k);

  [[nodiscard]] std::size_t count(State s) const {
    return s < counts_.size() ? counts_[s] : 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  // Occupied states, unordered; stable only until the next add/remove.
  [[nodiscard]] const std::vector<State>& occupied() const noexcept {
    return occupied_;
  }

  // Runtime-contract audit (util/audit.hpp): the occupied list and the
  // position index describe exactly the nonzero counts, which sum to n.
  // Throws AuditError.
  void audit_invariants(const char* who = "SparseConfiguration") const;

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  static constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> pos_;  // state -> index in occupied_, or kNoPos
  std::vector<State> occupied_;
  std::size_t n_ = 0;
};

class SimBatchSystem {
 public:
  // Ceiling on the default outcome-cache bound (entries): sized so the
  // hot pairs of an n = 10^6 SKnO run fit while the cache stays tens of
  // MB. The constructor's default scales with the population (hot pairs
  // scale with live states) so small test populations don't pay a
  // megabyte-scale allocation per engine. Pass an explicit capacity to
  // override; 0 runs uncached (the equivalence suites do both).
  static constexpr std::size_t kDefaultOutcomeCacheCapacity = 1u << 20;

  // `sim_initial` holds simulated-protocol states; the rule source interns
  // the corresponding wrapper states. `outcome_cache_capacity` overrides
  // the default LRU bound on the (class, starter, reactor) -> successors
  // cache the hot path consults before touching the rule source's core.
  SimBatchSystem(std::shared_ptr<DynamicRuleSource> rules,
                 const std::vector<State>& sim_initial,
                 std::optional<std::size_t> outcome_cache_capacity = {});

  // Bridge constructor (engine=auto): adopt an ALREADY-INTERNED wrapper
  // population — pairs of (live wrapper id, agent count) — instead of
  // interning fresh simulated initial states. Trajectory bookkeeping
  // (steps, stats, omission process) starts empty; the auto engine carries
  // those across representation switches itself.
  struct AdoptWrappers {};
  SimBatchSystem(std::shared_ptr<DynamicRuleSource> rules, AdoptWrappers,
                 const std::vector<std::pair<State, std::uint32_t>>& wrappers,
                 std::optional<std::size_t> outcome_cache_capacity = {});

  // Attach an omission process (Def. 1–2); the source's model must be
  // omissive. Must be called before the run starts.
  void set_omission_process(const AdversaryParams& params);

  // Cover at most `budget` uniform-scheduler interactions: leap the
  // geometric run of no-ops, then fire count-changing rules. Factored
  // sources without an active omission process keep alternating leap/fire
  // until the budget is exhausted (one call covers the whole slice — the
  // per-call overhead would otherwise dominate the nearly-noop-free SKnO
  // hot path); other paths return after the first fire exactly like
  // BatchSystem::advance. The delta's fired/s/r/out describe the LAST
  // fire of the call.
  BatchDelta advance(std::size_t budget, Rng& rng);

  // Exact single hypergeometric step (integer draws only — the
  // platform-stable reference used by the regression tests).
  BatchDelta step(Rng& rng);

  [[nodiscard]] const DynamicRuleSource& rules() const noexcept {
    return *rules_;
  }
  [[nodiscard]] const Protocol& protocol() const { return rules_->protocol(); }
  [[nodiscard]] std::size_t size() const noexcept { return conf_.size(); }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] const SparseConfiguration& configuration() const noexcept {
    return conf_;
  }
  // Counts of the simulated projection pi_P (rebuilt lazily on demand).
  [[nodiscard]] const std::vector<std::size_t>& projected_counts() const;
  [[nodiscard]] int consensus_output() const {
    return counts_consensus_output(projected_counts(), rules_->protocol());
  }
  // Occupied (live) wrapper states right now.
  [[nodiscard]] std::size_t universe_live() const noexcept {
    return conf_.occupied().size();
  }
  [[nodiscard]] std::size_t omissions() const noexcept {
    return omit_ ? omit_->emitted() : 0;
  }
  [[nodiscard]] const OmissionProcess* omission_process() const noexcept {
    return omit_ ? &*omit_ : nullptr;
  }

  [[nodiscard]] RunStats& stats() noexcept { return stats_; }
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }

  // Wire hot-path instrumentation across the whole stack this system
  // owns: leap-length histogram, direct-step / weight-scan counters, fire
  // timer, CountIndex probe depths, the rule source's universe counters
  // and the omission process's burst histogram. Null detaches. Purely
  // observational — never consumes Rng draws or changes trajectories.
  void set_metrics(obs::MetricRegistry* reg);

  // Runtime-contract audit (util/audit.hpp): the configuration, the
  // count index and their agreement; silent-population and incremental
  // changing-weight agreement with reference rescans; projected counts
  // conserving n; occupied states decodable (live) in the rule source;
  // then the rule source's and adversary's own audits. Non-const because
  // the reference weight rescan may intern successor states (exactly as
  // the hot path would). Cold code, always compiled; engines invoke it
  // at slice boundaries under -DPPFS_AUDIT=ON. Throws AuditError.
  void audit_invariants();

  // Checkpoint round-trip. The payload embeds the rule source's checkpoint
  // (interned universe, free-list order) followed by the occupied
  // (state, count) pairs IN OCCUPIED-LIST ORDER — pick_changing_pair's
  // sparse weighted scan walks that list, so its order is part of the draw
  // sequence — then the scalar trajectory state. Derived structures
  // (CountIndex, silence memo, projection memo, projected counts) rebuild
  // deterministically; the requirements on the restoring system are a
  // matching rule-source construction and adversary attachment.
  void save_state(bin::Writer& w) const;
  void restore_state(bin::Reader& r);

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  // (changing weight, total weight) of the Real class under the current
  // counts; the no-op run before the next real count-change is geometric
  // with success w/t.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> real_weight();
  [[nodiscard]] std::uint64_t scan_changing_weight();

  void grow_to_universe();
  // Silence classification, cached per interned id (factored mode).
  [[nodiscard]] bool silent(State s);
  // pi_P per interned id, memoized (an id's encoding is immutable while
  // live; reset on release).
  [[nodiscard]] State project_of(State s);
  void change_count(State s, std::int64_t delta);
  void release_if_dead(State s);

  // Reactor drawn from the n-1 agents other than one starter copy of `s`:
  // one prefix query + at most one inverse-CDF search, no temporary count
  // mutation.
  [[nodiscard]] State draw_reactor_excluding(State s, Rng& rng);
  // Ordered pair drawn hypergeometrically from the counts.
  [[nodiscard]] std::pair<State, State> draw_any_pair(Rng& rng);
  // Pre-states of a Real-class count-changing pair, drawn with exact
  // probability pair_weight / changing weight.
  [[nodiscard]] std::pair<State, State> pick_changing_pair(std::uint64_t w,
                                                           Rng& rng);
  void apply_fire(InteractionClass c, State s, State r, StatePair out,
                  BatchDelta& d);
  void fire_real(std::uint64_t w, Rng& rng, BatchDelta& d);
  // One exact hypergeometric interaction (shared by step() and the dense
  // adaptive path); returns whether a rule fired.
  bool step_once(Rng& rng, BatchDelta& d);

  // Consecutive no-ops after which the general mode switches from direct
  // stepping to weight-scan leaping. A streak of L suggests a changing
  // fraction ~1/L, so a leap saves ~L direct steps per fire — but every
  // fire invalidates the weights, and the rescan costs O(occupied^2)
  // outcome evaluations. Leaping therefore only pays once L is of the
  // order of occupied^2: small universes (converged naive/matrix runs)
  // leap almost immediately, while large non-factored universes (SID at
  // big n, whose nearly-silent pairing chain fires at rate ~1/n) stay on
  // the O(log) stepping path instead of stalling in scans.
  static constexpr std::size_t kLeapThreshold = 64;
  [[nodiscard]] std::size_t leap_threshold() const noexcept {
    const std::size_t occ = conf_.occupied().size();
    return std::max(kLeapThreshold, occ * occ);
  }

  std::shared_ptr<DynamicRuleSource> rules_;
  bool factored_ = false;
  bool open_ = false;
  SparseConfiguration conf_;
  CountIndex idx_;  // counts per id (the sampling index)
  std::vector<std::uint8_t> silent_known_;  // 0 unknown / 1 active / 2 silent
  std::uint64_t silent_count_ = 0;          // agents in silent states
  std::vector<State> proj_memo_;            // pi_P per id, kNoState = unknown
  // Projected counts are rebuilt lazily from the occupied set (an O(live)
  // scan per probe slice) instead of being maintained per fire — four
  // random projection touches per fire were measurable on the hot path.
  mutable std::vector<std::size_t> projected_;
  mutable bool projected_valid_ = true;
  std::size_t steps_ = 0;
  RunStats stats_;
  std::optional<OmissionProcess> omit_;
  InteractionClass omit_class_ = InteractionClass::OmitBoth;
  bool weights_valid_ = false;  // general mode
  std::uint64_t w_real_ = 0;    // general mode
  std::size_t noop_streak_ = 0;  // general mode: dense/sparse switch

  obs::Histogram* m_leap_len_ = nullptr;    // no-op runs leapt in one draw
  obs::Counter* m_weight_scans_ = nullptr;  // O(occupied^2) changing scans
  obs::Counter* m_direct_steps_ = nullptr;  // dense-path hypergeometric steps
  obs::SampledTimer* m_time_fire_ = nullptr;
  obs::MetricRegistry* metrics_reg_ = nullptr;  // re-wire late-attached omit_
};

}  // namespace ppfs

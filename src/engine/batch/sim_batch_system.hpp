// SimBatchSystem: count-space execution over an OPEN state universe — the
// engine that runs the paper's simulators (exposed as DynamicRuleSources,
// sim/sim_rules.hpp) on million-agent populations.
//
// The closed-universe BatchSystem precompiles dense q x q outcome tables
// and rescans them for changing weights; neither is possible when states
// are discovered while running. This engine instead keeps:
//
//   * a SparseConfiguration — counts over the interned ids the rule source
//     hands out, tracking only the occupied subset (ids are dense by
//     construction, so the "hash map over interned states" is a growing
//     vector plus an occupied list; the hash map lives inside the
//     interner);
//   * two Fenwick trees over the same ids (all counts / non-silent
//     counts), so drawing starters and reactors proportionally to counts
//     is O(log universe) however many states have appeared;
//   * incrementally maintained per-class changing weights, so the
//     geometric no-op leap stays EXACT as the universe grows:
//       - factored sources (real_noop_factors — SKnO): a Real interaction
//         is a no-op iff the starter is silent, so the changing weight is
//         (n - S)(n - 1) for S = silent population, maintained O(1) per
//         count change with silence classified once per interned state;
//       - general sources (SID, naming, closed matrices): adaptive. In
//         the dense regime (fires frequent — the locking simulators
//         change wrapper state on almost every delivery) the engine takes
//         direct hypergeometric steps, which need no weights at all and
//         cost O(log universe); only after kLeapThreshold consecutive
//         no-ops does it pay the O(occupied^2) weight scan and switch to
//         geometric leaping, re-entering the dense path on the next fire.
//         Both paths are exact realizations of the same chain, so the
//         trajectory-dependent switch introduces no bias.
//
// Omission adversaries (Def. 1–2) attach exactly as on BatchSystem, with
// the same burst normalization. Leaps split into real and omissive draws:
// omission-transparent sources (reactor-side-only simulators) use the
// binomial split — omissive draws cannot change counts — while the
// general path punctuates the leap per omissive delivery and draws the
// victim pair hypergeometrically, applying whatever the omissive class
// outcome is (distribution-identical to BatchSystem's Wo/T split, O(log)
// per delivered omission).
//
// Open universes (rule sources with open_universe()) release states whose
// count returns to zero: ids recycle through the interner's free list, so
// resident memory tracks the number of LIVE states (<= n + transients),
// not the states ever seen — the property that makes n = 10^6 SKnO runs
// fit in memory.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/dynamic_rules.hpp"
#include "engine/batch/configuration.hpp"
#include "engine/stats.hpp"
#include "sched/omission_process.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace ppfs {

// Counts over interned wrapper states, tracking the occupied subset.
class SparseConfiguration {
 public:
  void grow_to(std::size_t universe_size);
  void add(State s, std::size_t k);
  void remove(State s, std::size_t k);

  [[nodiscard]] std::size_t count(State s) const {
    return s < counts_.size() ? counts_[s] : 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  // Occupied states, unordered; stable only until the next add/remove.
  [[nodiscard]] const std::vector<State>& occupied() const noexcept {
    return occupied_;
  }

 private:
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> pos_;  // state -> index in occupied_, or kNoPos
  std::vector<State> occupied_;
  std::size_t n_ = 0;
};

class SimBatchSystem {
 public:
  // `sim_initial` holds simulated-protocol states; the rule source interns
  // the corresponding wrapper states.
  SimBatchSystem(std::shared_ptr<DynamicRuleSource> rules,
                 const std::vector<State>& sim_initial);

  // Attach an omission process (Def. 1–2); the source's model must be
  // omissive. Must be called before the run starts.
  void set_omission_process(const AdversaryParams& params);

  // Cover at most `budget` uniform-scheduler interactions: leap the
  // geometric run of no-ops, then fire one count-changing rule (or stop at
  // the budget). Same contract as BatchSystem::advance.
  BatchDelta advance(std::size_t budget, Rng& rng);

  // Exact single hypergeometric step (integer draws only — the
  // platform-stable reference used by the regression tests).
  BatchDelta step(Rng& rng);

  [[nodiscard]] const DynamicRuleSource& rules() const noexcept {
    return *rules_;
  }
  [[nodiscard]] const Protocol& protocol() const { return rules_->protocol(); }
  [[nodiscard]] std::size_t size() const noexcept { return conf_.size(); }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] const SparseConfiguration& configuration() const noexcept {
    return conf_;
  }
  // Counts of the simulated projection pi_P, maintained incrementally.
  [[nodiscard]] const std::vector<std::size_t>& projected_counts()
      const noexcept {
    return projected_;
  }
  [[nodiscard]] int consensus_output() const {
    return counts_consensus_output(projected_, rules_->protocol());
  }
  // Occupied (live) wrapper states right now.
  [[nodiscard]] std::size_t universe_live() const noexcept {
    return conf_.occupied().size();
  }
  [[nodiscard]] std::size_t omissions() const noexcept {
    return omit_ ? omit_->emitted() : 0;
  }
  [[nodiscard]] const OmissionProcess* omission_process() const noexcept {
    return omit_ ? &*omit_ : nullptr;
  }

  [[nodiscard]] RunStats& stats() noexcept { return stats_; }
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }

 private:
  // (changing weight, total weight) of the Real class under the current
  // counts; the no-op run before the next real count-change is geometric
  // with success w/t.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> real_weight();
  [[nodiscard]] std::uint64_t scan_changing_weight();

  void grow_to_universe();
  // Silence classification, cached per interned id (factored mode).
  [[nodiscard]] bool silent(State s);
  void change_count(State s, std::int64_t delta);
  void release_if_dead(State s);

  // Ordered pair drawn hypergeometrically from the counts.
  [[nodiscard]] std::pair<State, State> draw_any_pair(Rng& rng);
  // Pre-states of a Real-class count-changing pair, drawn with exact
  // probability pair_weight / changing weight.
  [[nodiscard]] std::pair<State, State> pick_changing_pair(std::uint64_t w,
                                                           Rng& rng);
  void apply_fire(InteractionClass c, State s, State r, StatePair out,
                  BatchDelta& d);
  void fire_real(std::uint64_t w, Rng& rng, BatchDelta& d);
  // One exact hypergeometric interaction (shared by step() and the dense
  // adaptive path); returns whether a rule fired.
  bool step_once(Rng& rng, BatchDelta& d);

  // Consecutive no-ops after which the general mode switches from direct
  // stepping to weight-scan leaping. A streak of L suggests a changing
  // fraction ~1/L, so a leap saves ~L direct steps per fire — but every
  // fire invalidates the weights, and the rescan costs O(occupied^2)
  // outcome evaluations. Leaping therefore only pays once L is of the
  // order of occupied^2: small universes (converged naive/matrix runs)
  // leap almost immediately, while large non-factored universes (SID at
  // big n, whose nearly-silent pairing chain fires at rate ~1/n) stay on
  // the O(log) stepping path instead of stalling in scans.
  static constexpr std::size_t kLeapThreshold = 64;
  [[nodiscard]] std::size_t leap_threshold() const noexcept {
    const std::size_t occ = conf_.occupied().size();
    return std::max(kLeapThreshold, occ * occ);
  }

  std::shared_ptr<DynamicRuleSource> rules_;
  bool factored_ = false;
  bool open_ = false;
  SparseConfiguration conf_;
  FenwickTree fw_all_;     // counts per id
  FenwickTree fw_active_;  // counts of non-silent ids (factored mode)
  std::vector<std::uint8_t> silent_known_;  // 0 unknown / 1 active / 2 silent
  std::uint64_t silent_count_ = 0;          // agents in silent states
  std::vector<std::size_t> projected_;
  std::size_t steps_ = 0;
  RunStats stats_;
  std::optional<OmissionProcess> omit_;
  InteractionClass omit_class_ = InteractionClass::OmitBoth;
  bool weights_valid_ = false;  // general mode
  std::uint64_t w_real_ = 0;    // general mode
  std::size_t noop_streak_ = 0;  // general mode: dense/sparse switch
};

}  // namespace ppfs

#include "engine/batch/sim_batch_system.hpp"

#include <limits>
#include <stdexcept>

#include "engine/batch/alias_sampler.hpp"
#include "engine/batch/leap_sampling.hpp"

namespace ppfs {

// --- SparseConfiguration ----------------------------------------------------

void SparseConfiguration::grow_to(std::size_t universe_size) {
  if (universe_size > counts_.size()) {
    counts_.resize(universe_size, 0);
    pos_.resize(universe_size, kNoPos);
  }
}

void SparseConfiguration::add(State s, std::size_t k) {
  if (k == 0) return;
  grow_to(static_cast<std::size_t>(s) + 1);
  if (counts_[s] == 0) {
    pos_[s] = static_cast<std::uint32_t>(occupied_.size());
    occupied_.push_back(s);
  }
  counts_[s] += static_cast<std::uint32_t>(k);
  n_ += k;
}

void SparseConfiguration::remove(State s, std::size_t k) {
  if (k == 0) return;
  if (count(s) < k)
    throw std::invalid_argument("SparseConfiguration: removing unpopulated state");
  counts_[s] -= static_cast<std::uint32_t>(k);
  n_ -= k;
  if (counts_[s] == 0) {
    // Swap-erase from the occupied list.
    const std::size_t p = pos_[s];
    const State last = occupied_.back();
    occupied_[p] = last;
    pos_[last] = p;
    occupied_.pop_back();
    pos_[s] = kNoPos;
  }
}

void SparseConfiguration::audit_invariants(const char* who) const {
  std::uint64_t total = 0;
  std::size_t nonzero = 0;
  for (std::size_t s = 0; s < counts_.size(); ++s) {
    total += counts_[s];
    if (counts_[s] == 0) {
      audit::check(pos_[s] == kNoPos, who,
                   "zero-count state has no occupied position",
                   "state " + std::to_string(s));
      continue;
    }
    ++nonzero;
    audit::check(pos_[s] < occupied_.size() &&
                     occupied_[pos_[s]] == static_cast<State>(s),
                 who, "occupied position round-trips",
                 "state " + std::to_string(s));
  }
  audit::check(nonzero == occupied_.size(), who,
               "occupied list covers exactly the nonzero counts",
               audit::expected_got(nonzero, occupied_.size()));
  audit::check(total == n_, who, "counts sum to population size",
               audit::expected_got(total, n_));
}

// --- SimBatchSystem ---------------------------------------------------------

SimBatchSystem::SimBatchSystem(std::shared_ptr<DynamicRuleSource> rules,
                               const std::vector<State>& sim_initial,
                               std::optional<std::size_t> outcome_cache_capacity)
    : rules_(std::move(rules)) {
  if (!rules_) throw std::invalid_argument("SimBatchSystem: null rule source");
  if (sim_initial.size() < 2)
    throw std::invalid_argument("SimBatchSystem: need at least two agents");
  rules_->set_outcome_cache_capacity(outcome_cache_capacity.value_or(
      rules_->self_caching()
          ? 0
          : std::min<std::size_t>(
                kDefaultOutcomeCacheCapacity,
                std::max<std::size_t>(sim_initial.size() * 4, 256))));
  factored_ = rules_->real_noop_factors();
  open_ = rules_->open_universe();
  stats_.reset(rules_->protocol().num_states());
  projected_.assign(rules_->protocol().num_states(), 0);
  const std::vector<State> ids = rules_->intern_initial(sim_initial);
  grow_to_universe();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    change_count(ids[i], +1);
    ++projected_.at(sim_initial[i]);
  }
}

SimBatchSystem::SimBatchSystem(
    std::shared_ptr<DynamicRuleSource> rules, AdoptWrappers,
    const std::vector<std::pair<State, std::uint32_t>>& wrappers,
    std::optional<std::size_t> outcome_cache_capacity)
    : rules_(std::move(rules)) {
  if (!rules_) throw std::invalid_argument("SimBatchSystem: null rule source");
  std::size_t n = 0;
  for (const auto& [s, k] : wrappers) n += k;
  if (n < 2)
    throw std::invalid_argument("SimBatchSystem: need at least two agents");
  rules_->set_outcome_cache_capacity(outcome_cache_capacity.value_or(
      rules_->self_caching()
          ? 0
          : std::min<std::size_t>(kDefaultOutcomeCacheCapacity,
                                  std::max<std::size_t>(n * 4, 256))));
  factored_ = rules_->real_noop_factors();
  open_ = rules_->open_universe();
  stats_.reset(rules_->protocol().num_states());
  projected_.assign(rules_->protocol().num_states(), 0);
  grow_to_universe();
  for (const auto& [s, k] : wrappers) {
    if (k == 0) continue;
    change_count(s, static_cast<std::int64_t>(k));
    projected_.at(rules_->project(s)) += k;
  }
}

void SimBatchSystem::set_metrics(obs::MetricRegistry* reg) {
  metrics_reg_ = reg;
  m_leap_len_ = reg ? &reg->histogram("engine.leap_len") : nullptr;
  m_weight_scans_ = reg ? &reg->counter("engine.weight_scans") : nullptr;
  m_direct_steps_ = reg ? &reg->counter("engine.direct_steps") : nullptr;
  m_time_fire_ = reg ? &reg->timer("time.fire") : nullptr;
  idx_.set_metrics(reg);
  rules_->set_metrics(reg);
  if (omit_) omit_->set_metrics(reg);
}

void SimBatchSystem::set_omission_process(const AdversaryParams& params) {
  if (!is_omissive(rules_->model()))
    throw std::invalid_argument(
        "SimBatchSystem: model " + model_name(rules_->model()) +
        " has no omission adversary");
  if (params.rate < 0.0 || params.rate > 1.0)
    throw std::invalid_argument(
        "SimBatchSystem: omission rate must be in [0, 1]");
  if (steps_ != 0)
    throw std::invalid_argument(
        "SimBatchSystem: attach the omission process before the run starts");
  // max_burst is honored as-is, exactly as on BatchSystem: advance()
  // samples the within-burst Markov chain, sharing the burst counter with
  // step()'s should_omit.
  omit_.emplace(params);
  omit_->set_metrics(metrics_reg_);
  omit_class_ = omission_class_for(rules_->model(), params.side);
}

void SimBatchSystem::grow_to_universe() {
  const std::size_t m = rules_->universe_size();
  conf_.grow_to(m);
  idx_.ensure(m);
  if (factored_ && silent_known_.size() < m) silent_known_.resize(m, 0);
}

bool SimBatchSystem::silent(State s) {
  if (!factored_) return false;
  if (s >= silent_known_.size()) silent_known_.resize(rules_->universe_size(), 0);
  std::uint8_t& flag = silent_known_[s];
  if (flag == 0) flag = rules_->starter_silent(s) ? 2 : 1;
  return flag == 2;
}

State SimBatchSystem::project_of(State s) {
  if (s >= proj_memo_.size()) proj_memo_.resize(rules_->universe_size(), kNoState);
  State& p = proj_memo_[s];
  if (p == kNoState) p = rules_->project(s);
  return p;
}

void SimBatchSystem::change_count(State s, std::int64_t delta) {
  if (delta > 0)
    conf_.add(s, static_cast<std::size_t>(delta));
  else
    conf_.remove(s, static_cast<std::size_t>(-delta));
  idx_.add(s, delta);
  if (factored_ && silent(s))
    silent_count_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(silent_count_) + delta);
}

void SimBatchSystem::release_if_dead(State s) {
  if (!open_ || conf_.count(s) != 0) return;
  if (s < silent_known_.size()) silent_known_[s] = 0;
  if (s < proj_memo_.size()) proj_memo_[s] = kNoState;
  rules_->release_state(s);
}

std::pair<std::uint64_t, std::uint64_t> SimBatchSystem::real_weight() {
  const std::uint64_t n = conf_.size();
  if (factored_) return {n - silent_count_, n};
  if (!weights_valid_) {
    w_real_ = scan_changing_weight();
    weights_valid_ = true;
  }
  // ppfs-lint: allow(weight-mul): n < 2^32 keeps the pair total in u64.
  return {w_real_, n * (n - 1)};
}

std::uint64_t SimBatchSystem::scan_changing_weight() {
  PPFS_METRIC(m_weight_scans_, add());
  std::uint64_t w = 0;
  const auto& occ = conf_.occupied();
  for (const State s : occ) {
    const std::uint64_t cs = conf_.count(s);
    for (const State r : occ) {
      if (rules_->is_noop(InteractionClass::Real, s, r)) continue;
      // ppfs-lint: allow(weight-mul): counts <= n < 2^32, and the sum is
      // bounded by the u64 pair total n(n-1).
      w += cs * (conf_.count(r) - static_cast<std::uint64_t>(s == r));
    }
  }
  grow_to_universe();  // is_noop may have interned successor states
  return w;
}

State SimBatchSystem::draw_reactor_excluding(State s, Rng& rng) {
  // Hypergeometric second draw: uniform over the n - 1 agents left after
  // removing one starter copy of `s`.
  return static_cast<State>(idx_.find_excluding(rng.below(conf_.size() - 1), s));
}

std::pair<State, State> SimBatchSystem::draw_any_pair(Rng& rng) {
  const State s = static_cast<State>(idx_.find(rng.below(conf_.size())));
  return {s, draw_reactor_excluding(s, rng)};
}

std::pair<State, State> SimBatchSystem::pick_changing_pair(std::uint64_t w,
                                                           Rng& rng) {
  if (factored_) {
    // Starter proportional to counts over non-silent states — drawn by
    // rejection against the silence memo (a try accepts w.p. (n - S)/n,
    // which is exactly the per-interaction fire rate, so rejections cost
    // O(1) per covered interaction amortized) — reactor over everyone
    // else: every such pair changes counts (factored contract).
    State s;
    do {
      s = static_cast<State>(idx_.find(rng.below(conf_.size())));
    } while (silent(s));
    return {s, draw_reactor_excluding(s, rng)};
  }
  const std::uint64_t n = conf_.size();
  // ppfs-lint: allow(weight-mul): n < 2^32 keeps the pair total in u64.
  const std::uint64_t t = n * (n - 1);
  if (w >= t / 16) {
    // Dense regime: rejection against the count draw (expected <= 16
    // tries), O(log universe) per try.
    for (;;) {
      const auto [s, r] = draw_any_pair(rng);
      if (!rules_->is_noop(InteractionClass::Real, s, r)) return {s, r};
    }
  }
  // Sparse regime: exact weighted scan over occupied pairs. An exhausted
  // pick (stale w, or a rounding edge walking past the last pair) funnels
  // through the samplers' shared structured invariant check, which
  // preserves the pick and the weight actually covered.
  std::uint64_t pick = rng.below(w);
  std::uint64_t covered = 0;
  const auto& occ = conf_.occupied();
  for (const State s : occ) {
    const std::uint64_t cs = conf_.count(s);
    for (const State r : occ) {
      if (rules_->is_noop(InteractionClass::Real, s, r)) continue;
      // ppfs-lint: allow(weight-mul): counts <= n < 2^32, product < n(n-1).
      const std::uint64_t pw = cs * (conf_.count(r) - static_cast<std::uint64_t>(s == r));
      if (pick < pw) return {s, r};
      pick -= pw;
      covered += pw;
    }
  }
  sampler_invariant_failure("SimBatchSystem::pick_changing_pair",
                            covered + pick, covered);
}

void SimBatchSystem::apply_fire(InteractionClass c, State s, State r,
                                StatePair out, BatchDelta& d) {
  // No up-front universe growth: every array the hot path touches grows
  // lazily (conf_/idx_ inside add, silence/projection memos on access).
  const State ps = project_of(s);
  const State pr = project_of(r);
  d.fired = true;
  d.omissive = c != InteractionClass::Real;
  d.s = s;
  d.r = r;
  d.out = out;
  change_count(s, -1);
  change_count(r, -1);
  change_count(out.starter, +1);
  change_count(out.reactor, +1);
  projected_valid_ = false;
  // RunStats in projection space: the simulated pre-states of the fired
  // wrapper rule (wrapper-level fires whose projection is unchanged still
  // count — they are the simulator's bookkeeping traffic).
  if (d.omissive) stats_.record_omissive_fire(ps, pr);
  else stats_.record_fire(ps, pr);
  weights_valid_ = false;
  noop_streak_ = 0;
  if (open_) {
    release_if_dead(s);
    if (r != s) release_if_dead(r);
  }
}

const std::vector<std::size_t>& SimBatchSystem::projected_counts() const {
  if (!projected_valid_) {
    std::fill(projected_.begin(), projected_.end(), 0);
    for (const State s : conf_.occupied())
      projected_[rules_->project(s)] += conf_.count(s);
    projected_valid_ = true;
  }
  return projected_;
}

void SimBatchSystem::fire_real(std::uint64_t w, Rng& rng, BatchDelta& d) {
  PPFS_TIMER_BEGIN(t0, m_time_fire_);
  const auto [s, r] = pick_changing_pair(w, rng);
  const StatePair out = rules_->outcome_cached(InteractionClass::Real, s, r);
  if (out.starter == s && out.reactor == r)
    throw std::logic_error(
        "SimBatchSystem: rule source violated its no-op structure (picked "
        "changing pair is a no-op)");
  apply_fire(InteractionClass::Real, s, r, out, d);
  ++d.interactions;
  ++steps_;
  PPFS_TIMER_END(t0, m_time_fire_);
}

BatchDelta SimBatchSystem::advance(std::size_t budget, Rng& rng) {
  BatchDelta d;
  // Factored hot loop (SKnO without an active omission process): the
  // whole slice alternates O(1)-weight leaps and fires inside one tight
  // loop — the omission checks and general-mode machinery are hoisted out
  // entirely.
  if (factored_ && (!omit_ || !omit_->active(steps_))) {
    const std::uint64_t n = conf_.size();
    while (d.interactions < budget) {
      const std::uint64_t w = n - silent_count_;
      if (w == 0) {
        const std::size_t remaining = budget - d.interactions;
        d.interactions += remaining;
        d.noops += remaining;
        steps_ += remaining;
        stats_.record_noops(remaining);
        return d;
      }
      if (silent_count_ != 0) {
        const std::size_t cap = budget - d.interactions;
        const std::size_t skipped = leap::sample_noop_run(w, n, rng, cap);
        PPFS_METRIC(m_leap_len_, record(skipped));
        if (skipped > 0) {
          d.noops += skipped;
          d.interactions += skipped;
          steps_ += skipped;
          stats_.record_noops(skipped);
          if (skipped == cap) return d;
        }
      }
      fire_real(w, rng, d);
    }
    return d;
  }
  // Dense adaptive path (general mode): while fires are frequent, direct
  // steps beat weight maintenance — no O(occupied^2) scans at all. A
  // no-op streak of kLeapThreshold hands over to the leap machinery below.
  if (!factored_) {
    const std::size_t threshold = leap_threshold();
    while (d.interactions < budget && noop_streak_ < threshold) {
      if (step_once(rng, d)) return d;
    }
    if (d.interactions >= budget) return d;
  }
  while (d.interactions < budget) {
    const std::size_t remaining = budget - d.interactions;
    const auto [w, t] = real_weight();

    if (!omit_ || !omit_->active(steps_)) {
      // No insertable omissions now or ever again (inactivity is
      // absorbing): the exact integer leap.
      if (w == 0) {
        d.interactions += remaining;
        d.noops += remaining;
        steps_ += remaining;
        stats_.record_noops(remaining);
        return d;
      }
      const std::size_t skipped = leap::sample_noop_run(w, t, rng, remaining);
      PPFS_METRIC(m_leap_len_, record(skipped));
      d.noops += skipped;
      d.interactions += skipped;
      steps_ += skipped;
      stats_.record_noops(skipped);
      if (skipped == remaining) return d;
      fire_real(w, rng, d);
      return d;
    }

    const double p = omit_->rate();
    // Never leap across the NO quiet horizon: the omission probability
    // flips to zero there, which the next loop iteration picks up.
    std::size_t cap = remaining;
    if (omit_->quiet_after() != std::numeric_limits<std::size_t>::max() &&
        omit_->quiet_after() > steps_)
      cap = std::min(cap, omit_->quiet_after() - steps_);

    const double wr = static_cast<double>(w) / static_cast<double>(t);
    const bool capped = omit_->burst_cap_reachable();
    if (rules_->omission_transparent() && capped) {
      // Omissive draws are global no-ops (reactor-side-only simulators)
      // but the burst cap binds: sample the within-burst Markov chain
      // exactly, one burst episode at a time (budget exhaustion is
      // handled inside the leg).
      std::size_t burst = omit_->burst();
      const leap::BurstLeg leg = leap::sample_capped_burst_leg(
          p, w, t, omit_->max_burst(), burst, omit_->remaining_budget(), cap,
          rng);
      omit_->set_burst(burst);
      omit_->note_omissions(leg.omissions);
      const std::size_t noops = leg.deliveries - (leg.fire ? 1 : 0);
      stats_.record_omissive_noops(leg.omissions);
      stats_.record_noops(noops - leg.omissions);
      d.noops += noops;
      d.omissions += leg.omissions;
      d.interactions += noops;
      steps_ += noops;
      if (leg.fire) {
        fire_real(w, rng, d);
        return d;
      }
      if (cap == remaining) return d;  // budget exhausted
      continue;                        // crossed the quiet horizon
    }

    if (rules_->omission_transparent() && omit_->remaining_budget() > cap) {
      // Omissive draws are global no-ops, the burst cap can never bind
      // again, and the budget cannot run out mid-leap: geometric run to
      // the next (necessarily real) change, binomial split of the no-ops
      // into real and omissive draws.
      const double rho = (1.0 - p) * wr;
      const std::size_t run = leap::sample_bernoulli_run(rho, rng, cap);
      PPFS_METRIC(m_leap_len_, record(run));
      if (run > 0) {
        const double q_om = p / (1.0 - rho);  // P(omissive | no-op)
        const std::size_t om = leap::sample_binomial(run, q_om, rng);
        omit_->note_omissions(om);
        stats_.record_omissive_noops(om);
        stats_.record_noops(run - om);
        d.noops += run;
        d.omissions += om;
        d.interactions += run;
        steps_ += run;
      }
      if (run == cap) {
        if (cap == remaining) return d;  // budget exhausted
        continue;                        // crossed the quiet horizon
      }
      fire_real(w, rng, d);
      return d;
    }

    if (capped && omit_->burst() >= omit_->max_burst()) {
      // A full burst forces the next delivery to be real (no rate coin).
      omit_->set_burst(0);
      if (w > 0 && rng.below(t) < w) {
        fire_real(w, rng, d);
        return d;
      }
      stats_.record_noops(1);
      ++d.noops;
      ++d.interactions;
      ++steps_;
      continue;
    }

    // Event-punctuated leap: an "event" is an omissive delivery or a real
    // count-change; the run of real no-ops before it is geometric (every
    // real delivery resets the burst, so the omission probability is p
    // throughout the run). Each omissive delivery draws its victim pair
    // hypergeometrically and applies the omissive-class outcome, whatever
    // it is — identical in distribution to BatchSystem's Wo/T split.
    const double sigma = p + (1.0 - p) * wr;
    const std::size_t run = leap::sample_bernoulli_run(sigma, rng, cap);
    PPFS_METRIC(m_leap_len_, record(run));
    if (run > 0) {
      stats_.record_noops(run);
      d.noops += run;
      d.interactions += run;
      steps_ += run;
      omit_->set_burst(0);
    }
    if (run == cap) {
      if (cap == remaining) return d;
      continue;
    }
    if (rng.chance(p / sigma)) {
      omit_->note_omissions(1);
      omit_->set_burst(omit_->burst() + 1);
      ++d.omissions;
      const auto [s, r] = draw_any_pair(rng);
      const StatePair out = rules_->outcome_cached(omit_class_, s, r);
      if (out.starter == s && out.reactor == r) {
        stats_.record_omissive_noops(1);
        ++d.noops;
        ++d.interactions;
        ++steps_;
        continue;  // budget/horizon/burst state may have changed
      }
      apply_fire(omit_class_, s, r, out, d);
      ++d.interactions;
      ++steps_;
      return d;
    }
    fire_real(w, rng, d);
    omit_->set_burst(0);
    return d;
  }
  return d;
}

void SimBatchSystem::audit_invariants() {
  static constexpr const char* kWho = "SimBatchSystem";
  conf_.audit_invariants("SimBatchSystem.conf");
  idx_.audit_invariants("SimBatchSystem.idx");
  audit::check(conf_.size() == idx_.total(), kWho,
               "configuration and count index agree on n",
               audit::expected_got(conf_.size(), idx_.total()));
  std::uint64_t silent_sum = 0;
  for (const State s : conf_.occupied()) {
    audit::check(conf_.count(s) == idx_.get(s), kWho,
                 "configuration and count index agree per state",
                 "state " + std::to_string(s) + ": " +
                     audit::expected_got(conf_.count(s), idx_.get(s)));
    // Occupied states must be decodable — a released-but-still-counted id
    // throws from the source's projection, which we surface structurally.
    try {
      (void)rules_->project(s);
    } catch (const std::exception& e) {
      audit::check(false, kWho, "occupied state is live in the rule source",
                   "state " + std::to_string(s) + ": " + e.what());
    }
    if (factored_ && s < silent_known_.size()) {
      audit::check(silent_known_[s] != 0, kWho,
                   "occupied state has a silence classification",
                   "state " + std::to_string(s));
      if (silent_known_[s] == 2) silent_sum += conf_.count(s);
    }
  }
  if (factored_)
    audit::check(silent_sum == silent_count_, kWho,
                 "silent-population counter agrees with classification",
                 audit::expected_got(silent_sum, silent_count_));
  if (!factored_ && weights_valid_) {
    const std::uint64_t ref = scan_changing_weight();
    audit::check(w_real_ == ref, kWho,
                 "incremental changing-weight agrees with rescan",
                 audit::expected_got(ref, w_real_));
  }
  if (projected_valid_) {
    std::uint64_t proj = 0;
    for (const std::size_t c : projected_) proj += c;
    audit::check(proj == conf_.size(), kWho,
                 "projected counts conserve population size",
                 audit::expected_got(conf_.size(), proj));
  }
  rules_->audit_invariants();
  if (omit_) omit_->audit_invariants();
}

bool SimBatchSystem::step_once(Rng& rng, BatchDelta& d) {
  PPFS_METRIC(m_direct_steps_, add());
  const bool omissive = omit_ && omit_->should_omit(rng, steps_);
  if (omissive) ++d.omissions;
  const auto [s, r] = draw_any_pair(rng);
  const InteractionClass c = omissive ? omit_class_ : InteractionClass::Real;
  const StatePair out = rules_->outcome_cached(c, s, r);
  ++d.interactions;
  ++steps_;
  if (out.starter == s && out.reactor == r) {
    ++d.noops;
    ++noop_streak_;
    if (omissive) stats_.record_omissive_noops(1);
    else stats_.record_noops(1);
    return false;
  }
  apply_fire(c, s, r, out, d);
  return true;
}

BatchDelta SimBatchSystem::step(Rng& rng) {
  BatchDelta d;
  (void)step_once(rng, d);
  return d;
}

void SimBatchSystem::save_state(bin::Writer& w) const {
  rules_->save_checkpoint(w);
  const std::vector<State>& occ = conf_.occupied();
  w.var(occ.size());
  for (const State s : occ) {
    w.var(s);
    w.var(conf_.count(s));
  }
  w.var(steps_);
  stats_.save_state(w);
  w.u8(omit_ ? 1 : 0);
  if (omit_) omit_->save_state(w);
  w.u8(weights_valid_ ? 1 : 0);
  w.var(w_real_);
  w.var(noop_streak_);
}

void SimBatchSystem::restore_state(bin::Reader& r) {
  rules_->restore_checkpoint(r);
  const std::size_t nocc = r.var();
  std::vector<std::pair<State, std::uint64_t>> occ(nocc);
  for (auto& [s, k] : occ) {
    s = static_cast<State>(r.var());
    k = r.var();
  }
  // Rebuild the derived index stack by replaying the saved (state, count)
  // pairs through change_count in occupied-list order: reconstructs conf_
  // (same occupied order — pick_changing_pair's sparse scan walks it),
  // idx_, and the silent tally; the silence/projection memos refill
  // lazily (pure per encoding).
  conf_ = SparseConfiguration{};
  idx_ = CountIndex{};
  silent_known_.clear();
  silent_count_ = 0;
  proj_memo_.clear();
  grow_to_universe();
  for (const auto& [s, k] : occ) change_count(s, static_cast<std::int64_t>(k));
  projected_valid_ = false;
  steps_ = r.var();
  stats_.restore_state(r);
  const bool had_omit = r.u8() != 0;
  if (had_omit != omit_.has_value())
    throw std::runtime_error(
        "SimBatchSystem::restore_state: omission-process mismatch");
  if (omit_) omit_->restore_state(r);
  weights_valid_ = r.u8() != 0;
  w_real_ = r.var();
  noop_streak_ = r.var();
  // idx_ was reconstructed from scratch: re-wire instrumentation handles.
  if (metrics_reg_) set_metrics(metrics_reg_);
}

}  // namespace ppfs

// Count-based view of a configuration: instead of the explicit n-tuple of
// local states (core/population.hpp), store how many agents occupy each
// state. Under the uniform scheduler agents are exchangeable, so the count
// vector is a lossless projection of the configuration as far as the
// dynamics are concerned — this is the representation that lets the batch
// engine advance whole runs of interactions in O(q^2) work (Berenbrink et
// al., arXiv:2005.03584).
#pragma once

#include <memory>
#include <vector>

#include "core/population.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

// Summary of one BatchSystem::advance call: how many uniform-scheduler
// interactions the batch covered and which count-changing rule (if any)
// fired at its end. Consumed by RunStats (engine/stats.hpp) and by the
// delta-level trace of the batch engine.
struct BatchDelta {
  std::size_t interactions = 0;  // scheduler steps covered by the batch
  std::size_t noops = 0;         // of which left the configuration unchanged
  std::size_t omissions = 0;     // of which were inserted omissive draws
  bool fired = false;            // did a count-changing rule fire?
  bool omissive = false;         // ... as the outcome of an omissive draw?
  State s = kNoState;            // pre-states of the fired rule (ordered)
  State r = kNoState;
  StatePair out{kNoState, kNoState};  // post-states of the fired rule
};

// Common output of all occupied states in a count vector, or -1 if any
// occupied state has no output / outputs disagree — the count-level
// counterpart of Population::consensus_output. Shared by Configuration and
// the engine facade.
[[nodiscard]] int counts_consensus_output(const std::vector<std::size_t>& counts,
                                          const Protocol& protocol);

class Configuration {
 public:
  // `counts[q]` = number of agents in state q; must sum to n >= 1 and have
  // one entry per protocol state.
  Configuration(std::shared_ptr<const Protocol> protocol,
                std::vector<std::size_t> counts);

  [[nodiscard]] static Configuration from_population(const Population& pop);

  // Canonical expansion: agents grouped by ascending state id. Any
  // population with these counts is equivalent under exchangeability.
  [[nodiscard]] Population to_population() const;

  [[nodiscard]] const Protocol& protocol() const noexcept { return *protocol_; }
  [[nodiscard]] std::shared_ptr<const Protocol> protocol_ptr() const {
    return protocol_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_states() const noexcept { return counts_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::size_t count(State q) const { return counts_.at(q); }

  // Fire delta(s, r) once at the count level. Requires the pre-states to be
  // populated (count(s) >= 1, and >= 2 when s == r).
  void apply_pair(State s, State r);

  // Fire an explicit outcome (s, r) -> out at the count level — the move a
  // model-generic rule (including omissive classes, which need not equal
  // the protocol's delta) makes. Same pre-state population requirement.
  void apply_outcome(State s, State r, StatePair out);

  // Move `k` agents from state `from` to state `to` (count(from) >= k).
  void move(State from, State to, std::size_t k);

  // Same notion as Population::consensus_output: the common output of all
  // occupied states, or -1.
  [[nodiscard]] int consensus_output() const;

  friend bool operator==(const Configuration& a, const Configuration& b) {
    return a.counts_ == b.counts_;
  }

 private:
  std::shared_ptr<const Protocol> protocol_;
  std::vector<std::size_t> counts_;
  std::size_t n_ = 0;
};

}  // namespace ppfs

// Dynamic weighted sampling over a fixed slot set (the changing pairs of
// one interaction class), replacing the per-draw linear weight walk and
// the O(q^2) changing_weight() rescan in the count-space engines.
//
// Two faces over the same weight vector, chosen by the update/draw ratio:
//
//   * Fenwick (partial-sum) tree — set() and draw() are O(log k), exact
//     (the draw descends on rng.below(total), never touching floating
//     point). This is the update-heavy face: in dense regimes every fire
//     dirties up to four states, so weights change between most draws
//     and an alias table would be rebuilt for a single use.
//   * Alias table — O(1) draws, O(k) rebuild, exact integer thresholds
//     (Vose's method run on w_i * k against bucket capacity W = total;
//     the build intermediates need unsigned __int128 because W can reach
//     n(n-1) ~ 10^18 at n = 10^9 and w_i * k then overflows u64, but
//     every stored threshold is <= W and fits back in u64). This is the
//     draw-heavy face: the round engine draws its collision pair and the
//     sim engines probe stable windows many times between weight changes.
//
// The policy is automatic: draws served while no set() has intervened
// are counted, and once they amortize one rebuild (>= size() draws) the
// alias table is built and serves until the next set() invalidates it.
// Callers never pick a face.
//
// The terminal "weight scan exhausted" paths of both engines' linear
// scans funnel through sampler_invariant_failure() below: a structured,
// shared invariant check that preserves the pick and the total actually
// covered, so a stale-weight bug or a rounding edge reports the numbers
// needed to reproduce it instead of a bare logic_error string.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/audit.hpp"
#include "util/rng.hpp"

namespace ppfs {

// Thrown when a weighted pick is not covered by the weights it was drawn
// against — stale totals, a count/weight desync, or a rounding edge
// walking past the last bucket. Carries the numbers, not just prose.
class SamplerInvariantError : public std::logic_error {
 public:
  SamplerInvariantError(const char* context, std::uint64_t pick,
                        std::uint64_t covered)
      : std::logic_error(std::string(context) + ": weighted pick " +
                         std::to_string(pick) + " not covered by total " +
                         std::to_string(covered) +
                         " (stale weights or rounding past the last slot)"),
        context_(context),
        pick_(pick),
        covered_(covered) {}

  [[nodiscard]] const char* context() const noexcept { return context_; }
  [[nodiscard]] std::uint64_t pick() const noexcept { return pick_; }
  [[nodiscard]] std::uint64_t covered() const noexcept { return covered_; }

 private:
  const char* context_;
  std::uint64_t pick_;
  std::uint64_t covered_;
};

[[noreturn]] inline void sampler_invariant_failure(const char* context,
                                                   std::uint64_t pick,
                                                   std::uint64_t covered) {
  throw SamplerInvariantError(context, pick, covered);
}

// Terminal linear scan shared by the sparse sampler paths: returns the
// slot i with prefix(i) <= pick < prefix(i+1), or raises the structured
// invariant failure with the weight actually covered.
template <class WeightAt>
std::size_t weighted_scan(std::size_t k, std::uint64_t pick,
                          const char* context, WeightAt&& weight_at) {
  const std::uint64_t original = pick;
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t w = weight_at(i);
    if (pick < w) return i;
    pick -= w;
    covered += w;
  }
  sampler_invariant_failure(context, original, covered);
}

class DynamicPairSampler {
 public:
  DynamicPairSampler() = default;
  explicit DynamicPairSampler(std::size_t k) { reset(k); }

  // Reinitialize to k slots of weight 0.
  void reset(std::size_t k) {
    w_.assign(k, 0);
    tree_.assign(k + 1, 0);
    total_ = 0;
    top_ = 1;
    while (top_ * 2 <= k) top_ *= 2;
    alias_valid_ = false;
    draws_since_update_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return w_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t weight(std::size_t i) const { return w_[i]; }

  // O(log k); idempotent for equal weights (no alias invalidation, no
  // tree walk), so callers may re-set every pair adjacent to a dirty
  // state without tracking which weights actually moved.
  void set(std::size_t i, std::uint64_t w) {
    const std::uint64_t old = w_[i];
    if (w == old) return;
    w_[i] = w;
    total_ += w - old;  // u64 wraparound carries the signed delta exactly
    const std::uint64_t delta = w - old;
    for (std::size_t j = i + 1; j <= tree_.size() - 1; j += j & (0 - j))
      tree_[j] += delta;
    alias_valid_ = false;
    draws_since_update_ = 0;
  }

  // Draw slot i with probability weight(i)/total(). Requires total() > 0;
  // a draw against an all-zero sampler is the same invariant breach as a
  // pick past the end and reports through the shared helper.
  std::size_t draw(Rng& rng) {
    if (total_ == 0)
      sampler_invariant_failure("DynamicPairSampler::draw", 0, 0);
    if (!alias_valid_ && ++draws_since_update_ >= w_.size() && w_.size() >= 2)
      build_alias();
    if (alias_valid_) {
      ++alias_draws_;
      const std::size_t b = static_cast<std::size_t>(rng.below(w_.size()));
      return rng.below(total_) < cut_[b] ? b : to_[b];
    }
    ++fenwick_draws_;
    return fenwick_pick(rng.below(total_));
  }

  // Runtime-contract audit (util/audit.hpp): recompute every derived
  // structure from the weight vector and compare. Cold code, always
  // compiled; the engines invoke it at slice boundaries under
  // -DPPFS_AUDIT=ON. Checks, in order: total_ is the exact weight sum,
  // the Fenwick tree is the tree a fresh build would produce, and a
  // valid alias table redistributes exactly w_i * k mass to slot i.
  void audit_invariants(const char* who = "DynamicPairSampler") const {
    const std::size_t k = w_.size();
    unsigned __int128 sum = 0;
    for (const std::uint64_t w : w_) sum += w;
    audit::check(sum == static_cast<unsigned __int128>(total_), who,
                 "total() == sum of slot weights",
                 audit::expected_got(static_cast<std::uint64_t>(sum), total_));
    std::vector<std::uint64_t> ref(k + 1, 0);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = i + 1; j <= k; j += j & (0 - j)) ref[j] += w_[i];
    for (std::size_t j = 1; j <= k; ++j)
      audit::check(ref[j] == tree_[j], who,
                   "Fenwick node agrees with rebuild from weights",
                   "node " + std::to_string(j) + ": " +
                       audit::expected_got(ref[j], tree_[j]));
    if (alias_valid_) {
      const unsigned __int128 cap = total_;
      std::vector<unsigned __int128> mass(k, 0);
      for (std::size_t b = 0; b < k; ++b) {
        audit::check(cut_[b] <= total_, who,
                     "alias threshold within bucket capacity",
                     "bucket " + std::to_string(b));
        audit::check(to_[b] < k, who, "alias donation target in range",
                     "bucket " + std::to_string(b));
        mass[b] += cut_[b];
        mass[to_[b]] += cap - cut_[b];
      }
      for (std::size_t i = 0; i < k; ++i)
        audit::check(mass[i] == static_cast<unsigned __int128>(w_[i]) * k,
                     who, "alias table redistributes exact slot mass",
                     "slot " + std::to_string(i));
    }
  }

  // Checkpoint face. The weights themselves are rebuilt deterministically
  // by the owning system (flush_weights from restored counts); what must
  // survive a round-trip is the draw-policy state — which face would serve
  // the next draw, and how far the amortization counter has run — because
  // the alias face consumes a different number of Rng draws per pick than
  // the Fenwick face. build_alias() is a pure function of the weights, so
  // re-running it reproduces the exact table.
  [[nodiscard]] bool alias_face() const noexcept { return alias_valid_; }
  [[nodiscard]] std::size_t draws_since_update() const noexcept {
    return draws_since_update_;
  }
  void restore_face(bool alias_valid, std::size_t draws_since_update) {
    draws_since_update_ = draws_since_update;
    if (alias_valid && w_.size() >= 2)
      build_alias();
    else
      alias_valid_ = false;
  }

  // Telemetry for tests and the bench harness.
  [[nodiscard]] std::size_t alias_builds() const noexcept {
    return alias_builds_;
  }
  [[nodiscard]] std::size_t alias_draws() const noexcept {
    return alias_draws_;
  }
  [[nodiscard]] std::size_t fenwick_draws() const noexcept {
    return fenwick_draws_;
  }

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  // Fenwick descent: smallest i with prefix(i+1) > pick, exact.
  std::size_t fenwick_pick(std::uint64_t pick) const {
    std::size_t idx = 0;
    for (std::size_t mask = top_; mask != 0; mask >>= 1) {
      const std::size_t next = idx + mask;
      if (next < tree_.size() && tree_[next] <= pick) {
        idx = next;
        pick -= tree_[next];
      }
    }
    if (idx >= w_.size())
      sampler_invariant_failure("DynamicPairSampler::fenwick_pick", pick,
                                total_);
    return idx;
  }

  // Vose's alias method on integer weights: bucket capacity W = total_,
  // per-slot mass r_i = w_i * k (exact in u128). Each bucket b keeps its
  // own slot below cut_[b] and donates the rest to to_[b]; stored
  // thresholds are <= W so they round-trip through u64.
  void build_alias() {
    const std::size_t k = w_.size();
    cut_.resize(k);
    to_.resize(k);
    std::vector<unsigned __int128> r(k);
    std::vector<std::uint32_t> small, large;
    small.reserve(k);
    large.reserve(k);
    const unsigned __int128 cap = total_;
    for (std::size_t i = 0; i < k; ++i) {
      r[i] = static_cast<unsigned __int128>(w_[i]) * k;
      (r[i] < cap ? small : large).push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      small.pop_back();
      const std::uint32_t g = large.back();
      cut_[s] = static_cast<std::uint64_t>(r[s]);
      to_[s] = g;
      r[g] -= cap - r[s];
      if (r[g] < cap) {
        large.pop_back();
        small.push_back(g);
      }
    }
    for (const std::uint32_t i : large) {
      cut_[i] = total_;
      to_[i] = i;
    }
    for (const std::uint32_t i : small) {  // r == cap exactly (fp-free)
      cut_[i] = total_;
      to_[i] = i;
    }
    alias_valid_ = true;
    ++alias_builds_;
  }

  std::vector<std::uint64_t> w_;
  std::vector<std::uint64_t> tree_;  // 1-indexed Fenwick partial sums
  std::uint64_t total_ = 0;
  std::size_t top_ = 1;  // highest power of two <= size()

  bool alias_valid_ = false;
  std::size_t draws_since_update_ = 0;
  std::vector<std::uint64_t> cut_;  // in-bucket threshold, <= total_
  std::vector<std::uint32_t> to_;   // donation target per bucket

  std::size_t alias_builds_ = 0;
  std::size_t alias_draws_ = 0;
  std::size_t fenwick_draws_ = 0;
};

}  // namespace ppfs

// Lightweight run statistics shared by tests and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "util/binio.hpp"

namespace ppfs {

// Streaming summary (count / mean / variance / max) without storing
// samples. Second moments use Welford's update with Chan et al.'s pairwise
// merge, so merging partial summaries is numerically stable and (up to
// floating rounding) order-insensitive.
class StreamStat {
 public:
  void add(double v) noexcept {
    const double mean_old = count_ ? sum_ / static_cast<double>(count_) : 0.0;
    ++count_;
    sum_ += v;
    m2_ += (v - mean_old) * (v - sum_ / static_cast<double>(count_));
    max_ = std::max(max_, v);
    min_ = count_ == 1 ? v : std::min(min_, v);
  }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? sum_ / count_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  // Population variance (and its root). 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  // Fold another summary in. Count/sum/extrema are exact whenever the
  // summed values make floating addition exact (integer-valued samples
  // below 2^53 — interaction counts, token counts, rollback tallies, which
  // is what the experiment layer feeds it); the second moment uses Chan's
  // parallel combination, associative up to floating rounding.
  void merge(const StreamStat& o) noexcept {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(o.count_);
    const double delta = o.sum_ / nb - sum_ / na;
    m2_ += o.m2_ + delta * delta * (na * nb / (na + nb));
    count_ += o.count_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
    min_ = std::min(min_, o.min_);
  }

  friend bool operator==(const StreamStat&, const StreamStat&) = default;

  // Bit-exact checkpoint round-trip (doubles as raw IEEE-754 words).
  void save_state(bin::Writer& w) const {
    w.var(count_);
    w.f64(sum_);
    w.f64(m2_);
    w.f64(max_);
    w.f64(min_);
  }
  void restore_state(bin::Reader& r) {
    count_ = r.var();
    sum_ = r.f64();
    m2_ = r.f64();
    max_ = r.f64();
    min_ = r.f64();
  }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double max_ = 0.0;
  double min_ = 0.0;
};

struct RunResult {
  std::size_t steps = 0;        // physical interactions driven
  bool converged = false;       // probe held for the stability window
  std::size_t omissions = 0;    // omissive interactions delivered
};

// Per-run accounting fed by the engines: how often each ordered rule
// (s, r) fired, how many scheduled interactions were no-ops, and when the
// run's convergence probe started holding for good. The native engine
// records one event per interaction; the batch engine feeds whole
// BatchDeltas (engine/batch/configuration.hpp), so a single call may cover
// millions of scheduler steps.
class RunStats {
 public:
  RunStats() = default;
  explicit RunStats(std::size_t num_states);

  void reset(std::size_t num_states);

  // A count-changing rule delta(s, r) fired `times` times.
  void record_fire(State s, State r, std::uint64_t times = 1);
  // `times` scheduled interactions left the configuration unchanged.
  void record_noops(std::uint64_t times) noexcept { noops_ += times; }

  // --- per-model omission accounting ---------------------------------------
  // `times` omissive interactions whose faulty outcome changed the
  // configuration (counts toward fires(s, r) and the omission tally).
  void record_omissive_fire(State s, State r, std::uint64_t times = 1);
  // `times` omissive interactions whose faulty outcome was a no-op (counts
  // toward noops and the omission tally).
  void record_omissive_noops(std::uint64_t times) noexcept {
    noops_ += times;
    omissions_ += times;
  }

  // Convergence-step tracking: report each probe evaluation with the
  // current interaction count. convergence_step() is the earliest step at
  // which the probe held and never reported false again.
  void record_probe(std::size_t step, bool holds) noexcept;

  // Fold another run's fire/no-op/omission accounting in (the auto engine
  // accumulates per-representation slices into one master record). Probe
  // and convergence tracking are deliberately NOT merged: only the stats
  // owner sees probe evaluations, and the folded-in slices never do.
  // Requires matching num_states (an empty *this adopts o's).
  void merge(const RunStats& o);

  [[nodiscard]] std::size_t num_states() const noexcept { return q_; }
  [[nodiscard]] std::uint64_t fires(State s, State r) const;
  [[nodiscard]] std::uint64_t total_fires() const noexcept { return total_fires_; }
  [[nodiscard]] std::uint64_t noops() const noexcept { return noops_; }
  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return total_fires_ + noops_;
  }
  // Omissive interactions delivered (no-op or not) and the subset that
  // changed the configuration.
  [[nodiscard]] std::uint64_t omissions() const noexcept { return omissions_; }
  [[nodiscard]] std::uint64_t omissive_fires() const noexcept {
    return omissive_fires_;
  }

  // kNoConvergence if the probe never held (or broke and never re-held).
  static constexpr std::size_t kNoConvergence = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t convergence_step() const noexcept;

  // The `k` most-fired rules, descending; ties broken by (s, r) order.
  struct RuleCount {
    State s;
    State r;
    std::uint64_t count;
    friend bool operator==(const RuleCount&, const RuleCount&) = default;
  };
  [[nodiscard]] std::vector<RuleCount> top_rules(std::size_t k) const;

  // Checkpoint round-trip: the full accounting state, including the probe
  // face (first_holding_/holding_) so a resumed run's convergence_step()
  // matches the uninterrupted run exactly.
  void save_state(bin::Writer& w) const;
  void restore_state(bin::Reader& r);

 private:
  std::size_t q_ = 0;
  std::vector<std::uint64_t> fires_;  // q_ * q_ dense, row = starter state
  std::uint64_t total_fires_ = 0;
  std::uint64_t noops_ = 0;
  std::uint64_t omissions_ = 0;
  std::uint64_t omissive_fires_ = 0;
  std::size_t first_holding_ = kNoConvergence;
  bool holding_ = false;
};

}  // namespace ppfs

// Lightweight run statistics shared by tests and benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ppfs {

// Streaming summary (count / mean / max) without storing samples.
class StreamStat {
 public:
  void add(double v) noexcept {
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
    min_ = count_ == 1 ? v : std::min(min_, v);
  }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? sum_ / count_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double min() const noexcept { return min_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
};

struct RunResult {
  std::size_t steps = 0;        // physical interactions driven
  bool converged = false;       // probe held for the stability window
  std::size_t omissions = 0;    // omissive interactions delivered
};

}  // namespace ppfs

#include "engine/native.hpp"

#include <stdexcept>

namespace ppfs {

NativeSystem::NativeSystem(std::shared_ptr<const Protocol> protocol,
                           std::vector<State> initial)
    : pop_(std::move(protocol), std::move(initial)) {
  if (const auto* tp = dynamic_cast<const TableProtocol*>(&pop_.protocol())) {
    table_ = tp->raw_table();
    q_ = tp->num_states();
  }
}

void NativeSystem::interact(const Interaction& ia) {
  if (ia.omissive)
    throw std::invalid_argument("NativeSystem: TW has no omissive interactions");
  ++steps_;
  if (table_ != nullptr) {
    auto& states = pop_;
    const State s = states.state(ia.starter);
    const State r = states.state(ia.reactor);
    const StatePair out = table_[static_cast<std::size_t>(s) * q_ + r];
    states.set_state(ia.starter, out.starter);
    states.set_state(ia.reactor, out.reactor);
    return;
  }
  pop_.interact(ia.starter, ia.reactor);
}

OneWaySystem::OneWaySystem(std::shared_ptr<const OneWayProtocol> protocol, Model model,
                           std::vector<State> initial)
    : protocol_(std::move(protocol)), model_(model), states_(std::move(initial)) {
  if (!protocol_) throw std::invalid_argument("OneWaySystem: null protocol");
  if (!is_one_way(model_))
    throw std::invalid_argument("OneWaySystem: model must be one-way");
  if (model_ == Model::IO && !protocol_->is_io())
    throw std::invalid_argument("OneWaySystem: protocol has g != id, IO forbids it");
  for (State q : states_) {
    if (q >= protocol_->num_states())
      throw std::invalid_argument("OneWaySystem: state out of range");
  }
}

void OneWaySystem::set_starter_omission_fn(std::function<State(State)> o) {
  if (!model_caps(model_).starter_detects_omission)
    throw std::invalid_argument("set_starter_omission_fn: model has no o function");
  o_ = std::move(o);
}

void OneWaySystem::set_reactor_omission_fn(std::function<State(State)> h) {
  if (!model_caps(model_).reactor_detects_omission)
    throw std::invalid_argument("set_reactor_omission_fn: model has no h function");
  h_ = std::move(h);
}

void OneWaySystem::interact(const Interaction& ia) {
  if (ia.starter == ia.reactor)
    throw std::invalid_argument("OneWaySystem: self-interaction");
  const State s = states_.at(ia.starter);
  const State r = states_.at(ia.reactor);
  if (!ia.omissive) {
    states_[ia.starter] = protocol_->g(s);
    states_[ia.reactor] = protocol_->f(s, r);
    return;
  }
  if (!is_omissive(model_))
    throw std::invalid_argument("OneWaySystem: omission in a non-omissive model");
  // Omissive outcome per the transition relations of §2.3.
  switch (model_) {
    case Model::I1:  // (g(as), ar)
      states_[ia.starter] = protocol_->g(s);
      break;
    case Model::I2:  // (g(as), g(ar))
      states_[ia.starter] = protocol_->g(s);
      states_[ia.reactor] = protocol_->g(r);
      break;
    case Model::I3:  // (g(as), h(ar))
      states_[ia.starter] = protocol_->g(s);
      states_[ia.reactor] = h_ ? h_(r) : r;
      break;
    case Model::I4:  // (o(as), g(ar))
      states_[ia.starter] = o_ ? o_(s) : s;
      states_[ia.reactor] = protocol_->g(r);
      break;
    default:
      throw std::logic_error("OneWaySystem: unexpected model");
  }
}

int OneWaySystem::consensus_output() const {
  const int first = protocol_->output(states_.front());
  if (first < 0) return -1;
  for (State q : states_) {
    if (protocol_->output(q) != first) return -1;
  }
  return first;
}

}  // namespace ppfs

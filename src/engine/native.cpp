#include "engine/native.hpp"

#include <stdexcept>
#include <utility>

namespace ppfs {

InteractionSystem::InteractionSystem(RuleMatrix rules, std::vector<State> initial)
    : rules_(std::move(rules)),
      pop_(rules_.protocol_ptr(), std::move(initial)) {}

void InteractionSystem::interact(const Interaction& ia) {
  if (ia.starter == ia.reactor)
    throw std::invalid_argument("InteractionSystem: self-interaction");
  PPFS_TIMER_BEGIN(t0, m_time_interact_);
  const InteractionClass cls = rules_.classify(ia);  // throws on bad omission
  const State s = pop_.state(ia.starter);
  const State r = pop_.state(ia.reactor);
  const StatePair out = rules_.outcome(cls, s, r);
  pop_.set_state(ia.starter, out.starter);
  pop_.set_state(ia.reactor, out.reactor);
  ++steps_;
  if (ia.omissive) ++omissions_;
#if PPFS_METRICS
  // ppfs-lint: allow(metric-macro): one fire/no-op comparison feeds two
  // counters under a shared null check, which the single-call PPFS_METRIC
  // macro cannot express; the #if above preserves the compile-out.
  if (m_fires_) {
    if (out.starter != s || out.reactor != r) m_fires_->add();
    else m_noops_->add();
  }
#endif
  PPFS_TIMER_END(t0, m_time_interact_);
}

void InteractionSystem::set_rules(RuleMatrix rules) {
  if (rules.num_states() != rules_.num_states())
    throw std::invalid_argument("InteractionSystem: state-space size mismatch");
  rules_ = std::move(rules);
}

NativeSystem::NativeSystem(std::shared_ptr<const Protocol> protocol,
                           std::vector<State> initial)
    : sys_(RuleMatrix::compile(std::move(protocol), Model::TW),
           std::move(initial)) {}

void NativeSystem::interact(const Interaction& ia) {
  if (ia.omissive)
    throw std::invalid_argument("NativeSystem: TW has no omissive interactions");
  sys_.interact(ia);
}

OneWaySystem::OneWaySystem(std::shared_ptr<const OneWayProtocol> protocol,
                           Model model, std::vector<State> initial)
    : protocol_(std::move(protocol)),
      model_(model),
      // Both arguments read `initial` and are indeterminately sequenced, so
      // the second must copy, not move.
      sys_(RuleMatrix::compile(protocol_, model_, initial), initial) {
  // Null protocols and out-of-range initial states are rejected by
  // RuleMatrix::compile and the Population inside sys_ respectively.
}

void OneWaySystem::set_starter_omission_fn(std::function<State(State)> o) {
  if (!model_caps(model_).starter_detects_omission)
    throw std::invalid_argument("set_starter_omission_fn: model " +
                                model_name(model_) + " has no o function");
  fns_.o = std::move(o);
  recompile();
}

void OneWaySystem::set_reactor_omission_fn(std::function<State(State)> h) {
  if (!model_caps(model_).reactor_detects_omission)
    throw std::invalid_argument("set_reactor_omission_fn: model " +
                                model_name(model_) + " has no h function");
  fns_.h = std::move(h);
  recompile();
}

void OneWaySystem::recompile() {
  sys_.set_rules(RuleMatrix::compile(protocol_, model_, sys_.states(), fns_));
}

int OneWaySystem::consensus_output() const { return sys_.consensus_output(); }

}  // namespace ppfs

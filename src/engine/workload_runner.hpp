// Convenience glue between Workloads (protocols/registry.hpp) and the run
// loop: build the probe a workload declares and execute it natively under
// the uniform scheduler. The native numbers are the baseline that every
// simulator-overhead experiment divides by.
#pragma once

#include <functional>

#include "engine/native.hpp"
#include "engine/runner.hpp"
#include "protocols/registry.hpp"

namespace ppfs {

// A probe over projected state counts, derived from the workload:
// either its custom `converged` functor or consensus on expected_output.
[[nodiscard]] std::function<bool(const std::vector<std::size_t>&,
                                 const Protocol&)>
workload_counts_probe(const Workload& w);

// Run the workload natively (two-way, no omissions). Returns the result;
// `converged` reflects the workload's own success criterion.
[[nodiscard]] RunResult run_native_workload(const Workload& w, std::uint64_t seed,
                                            const RunOptions& opt = {});

// Same run, but through the experiment layer (exp/scenario.hpp): the
// workload is wrapped in a single-trial ScenarioSpec and executed by
// exp::run_replica with the engine chosen by name — "native" replays the
// per-agent loop, "batch" advances the count chain under the uniform
// scheduler. The replica RNG stream is keyed off (spec, seed, trial 0), so
// the run is reproducible but not stream-compatible with a raw Rng(seed).
// If `stats_out` is non-null the engine's RunStats are copied there.
[[nodiscard]] RunResult run_workload_with_engine(const std::string& engine_kind,
                                                 const Workload& w,
                                                 std::uint64_t seed,
                                                 const RunOptions& opt = {},
                                                 RunStats* stats_out = nullptr);

}  // namespace ppfs

// Generic run loop: drive any system (native engine or simulator) with a
// scheduler until a convergence probe stabilizes or a step budget is hit.
//
// The probe is evaluated every `check_every` steps and must hold for
// `stable_checks` consecutive evaluations — the empirical counterpart of
// "the execution has entered a stable set of configurations".
#pragma once

#include <functional>

#include "engine/stats.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace ppfs {

struct RunOptions {
  std::size_t max_steps = 1'000'000;
  std::size_t check_every = 64;
  std::size_t stable_checks = 3;
};

// System must expose: void interact(const Interaction&).
// Probe: bool(const System&) — "the target stable set has been reached".
template <class System, class Probe>
RunResult run_until(System& sys, Scheduler& sched, Rng& rng, Probe&& probe,
                    const RunOptions& opt = {}) {
  RunResult res;
  std::size_t consecutive = 0;
  for (std::size_t step = 0; step < opt.max_steps; ++step) {
    const Interaction ia = sched.next(rng, step);
    if (ia.omissive) ++res.omissions;
    sys.interact(ia);
    ++res.steps;
    if ((step + 1) % opt.check_every == 0) {
      if (probe(static_cast<const System&>(sys))) {
        if (++consecutive >= opt.stable_checks) {
          res.converged = true;
          return res;
        }
      } else {
        consecutive = 0;
      }
    }
  }
  // Final check so tiny runs (max_steps < check_every) can still converge.
  res.converged = probe(static_cast<const System&>(sys));
  return res;
}

// Drive for exactly `steps` interactions, no probe.
template <class System>
RunResult run_steps(System& sys, Scheduler& sched, Rng& rng, std::size_t steps) {
  RunResult res;
  for (std::size_t step = 0; step < steps; ++step) {
    const Interaction ia = sched.next(rng, step);
    if (ia.omissive) ++res.omissions;
    sys.interact(ia);
    ++res.steps;
  }
  return res;
}

}  // namespace ppfs

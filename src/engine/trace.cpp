#include "engine/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace ppfs {

Trace::Trace(std::vector<Interaction> interactions)
    : interactions_(std::move(interactions)) {}

std::size_t Trace::omission_count() const {
  std::size_t c = 0;
  for (const auto& ia : interactions_)
    if (ia.omissive) ++c;
  return c;
}

void Trace::save(std::ostream& os, const std::string& comment) const {
  if (!comment.empty()) os << "# " << comment << '\n';
  for (const auto& ia : interactions_) {
    os << ia.starter << ' ' << ia.reactor;
    if (ia.omissive) {
      switch (ia.side) {
        case OmitSide::Both: os << " o"; break;
        case OmitSide::Starter: os << " os"; break;
        case OmitSide::Reactor: os << " or"; break;
      }
    }
    os << '\n';
  }
}

std::string Trace::to_string(const std::string& comment) const {
  std::ostringstream os;
  save(os, comment);
  return os.str();
}

Trace Trace::parse(std::istream& is) {
  Trace t;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    Interaction ia;
    std::string flag;
    if (!(ls >> ia.starter >> ia.reactor))
      throw std::invalid_argument("Trace::parse: bad line " + std::to_string(lineno));
    if (ls >> flag) {
      ia.omissive = true;
      if (flag == "o") {
        ia.side = OmitSide::Both;
      } else if (flag == "os") {
        ia.side = OmitSide::Starter;
      } else if (flag == "or") {
        ia.side = OmitSide::Reactor;
      } else {
        throw std::invalid_argument("Trace::parse: bad omission flag '" + flag +
                                    "' on line " + std::to_string(lineno));
      }
    }
    t.append(ia);
  }
  return t;
}

Trace Trace::parse_string(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

RecordingScheduler::RecordingScheduler(std::unique_ptr<Scheduler> inner,
                                       Trace* sink)
    : inner_(std::move(inner)), sink_(sink) {
  if (!inner_)
    throw std::invalid_argument("RecordingScheduler: null inner scheduler");
}

Interaction RecordingScheduler::next(Rng& rng, std::size_t step) {
  const Interaction ia = inner_->next(rng, step);
  if (sink_ != nullptr) {
    sink_->append(ia);
    ++recorded_;
  }
  return ia;
}

}  // namespace ppfs

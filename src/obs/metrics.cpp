#include "obs/metrics.hpp"

#include <sstream>

namespace ppfs::obs {

void MetricRegistry::merge(const MetricRegistry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : o.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : o.histograms_) histograms_[name].merge(h);
  for (const auto& [name, t] : o.timers_)
    timers_.try_emplace(name, SampledTimer(0)).first->second.merge(t);
}

std::string MetricRegistry::to_string() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_)
    out << name << " = " << c.value() << '\n';
  for (const auto& [name, g] : gauges_) out << name << " = " << g.value() << '\n';
  for (const auto& [name, h] : histograms_) {
    out << name << " = { n=" << h.count() << " mean=" << h.mean()
        << " min=" << (h.count() ? h.min() : 0) << " max=" << h.max()
        << " buckets=[";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket(b) == 0) continue;
      if (!first) out << ' ';
      first = false;
      out << Histogram::bucket_floor(b) << ':' << h.bucket(b);
    }
    out << "] }\n";
  }
  for (const auto& [name, t] : timers_)
    out << name << " = { events=" << t.events() << " sampled=" << t.sampled()
        << " est_s=" << t.estimated_seconds() << " }\n";
  return out.str();
}

}  // namespace ppfs::obs

// obs::FlightRecorder: a cheap per-run timeline. On an interaction-count
// cadence it snapshots a MetricRegistry plus a caller-filled configuration
// summary (distinct-state count, top-k state counts) into delta-encoded
// JSONL — one object per line, only changed values emitted, so long runs
// stay small and diffs between snapshots are the payload.
//
// The recorder is engine-agnostic: it knows registries and summaries, not
// engines (obs/ sits below engine/ in the layering; the run loop in
// engine/batch/dispatch.cpp does the engine-side gathering). Snapshots
// happen at run-loop slice boundaries — the recorder never slices the run
// itself, so attaching one does not change the interaction trajectory or
// Rng stream; the effective cadence is `every` rounded up to the run
// loop's check_every granularity.
//
// Timeline schema ("ppfs.flight.v1"), one JSON object per line:
//   i      absolute interaction count at the snapshot
//   di     interactions since the previous snapshot
//   states distinct live states
//   disp   dispersion rate: (states - prev states) / di
//   top    [[state_label, count], ...] descending, <= top_k entries
//   c      counter DELTAS since the previous snapshot (changed only)
//   g      gauge values (changed only)
//   h      histogram bucket deltas: name -> [[bucket_floor, delta], ...]
//   wall   sampled-timer estimates (only when include_timings — wall
//          clocks are nondeterministic and excluded from artifacts that
//          must be bit-identical across thread counts / machines)
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ppfs::obs {

struct TopState {
  std::string state;
  std::uint64_t count = 0;
  friend bool operator==(const TopState&, const TopState&) = default;
};

// Caller-filled (engines know their own universes; see
// Engine::fill_summary in engine/batch/dispatch.hpp).
struct ConfigSummary {
  std::uint64_t interactions = 0;
  std::uint64_t distinct_states = 0;
  std::vector<TopState> top_counts;  // descending by count
};

struct FlightRecorderOptions {
  // Snapshot cadence in interactions (rounded up to the run loop's slice
  // granularity — see header comment).
  std::uint64_t every = std::uint64_t{1} << 20;
  std::size_t top_k = 8;
  // Emit wall-clock timer estimates. Off by default: timelines are then
  // deterministic (bit-identical across --threads settings).
  bool include_timings = false;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions opt = {});

  [[nodiscard]] const FlightRecorderOptions& options() const noexcept {
    return opt_;
  }

  // Is a snapshot due at this interaction count? The run loop asks after
  // each slice; record() advances the next-due point to the following
  // multiple of `every` past `summary.interactions`.
  [[nodiscard]] bool due(std::uint64_t interactions) const noexcept {
    return interactions >= next_;
  }

  void record(const MetricRegistry& reg, const ConfigSummary& summary);

  [[nodiscard]] std::size_t snapshots() const noexcept { return lines_.size(); }
  [[nodiscard]] const std::vector<std::string>& lines() const noexcept {
    return lines_;
  }
  // All snapshot lines, newline-terminated (no header; callers that
  // multiplex replicas into one file prepend their own header lines).
  [[nodiscard]] std::string to_jsonl() const;
  void write(std::ostream& os) const;

 private:
  FlightRecorderOptions opt_;
  std::uint64_t next_;
  std::vector<std::string> lines_;

  // Previous-snapshot state for delta encoding.
  std::uint64_t last_interactions_ = 0;
  std::uint64_t last_distinct_ = 0;
  std::map<std::string, std::uint64_t> last_counters_;
  std::map<std::string, double> last_gauges_;
  std::map<std::string, std::array<std::uint64_t, Histogram::kBuckets>>
      last_buckets_;
};

}  // namespace ppfs::obs
